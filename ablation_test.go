package panda

import (
	"fmt"
	"testing"

	"panda/internal/query"
	"panda/internal/workload"
)

// TestAblationBudgetMatters shows that PANDA's Case-4b budget/truncation
// mechanism is what keeps intermediates at N^{3/2} on Example 1.8's
// worst-case inputs: with the budget disabled the run still produces a
// correct model, but materializes the quadratic join.
func TestAblationBudgetMatters(t *testing.T) {
	p := workload.PathRule()
	m := 64
	ins := workload.PathWorstCase(p, m)

	on, err := EvalRule(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := EvalRule(p, ins, nil, Options{DisableBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*RuleResult{"budget-on": on, "budget-off": off} {
		ok, err := ins.IsModel(p, res.Tables)
		if err != nil || !ok {
			t.Fatalf("%s: not a model (%v)", name, err)
		}
	}
	// Unbudgeted, the run leaves the 2^OBJ envelope (OBJ = 1.5·log m = 2^9
	// here) by a wide margin; budgeted it must stay within polylog of it
	// and be far cheaper.
	bound, _ := off.Bound.Float64() // 9 for m = 64
	envelope := 1 << uint(bound)    // 512
	if off.Stats.MaxIntermediate <= envelope {
		t.Fatalf("ablation did not leave the budget envelope: %d ≤ 2^OBJ = %d",
			off.Stats.MaxIntermediate, envelope)
	}
	if 8*on.Stats.MaxIntermediate > off.Stats.MaxIntermediate {
		t.Fatalf("budgeted run (%d) should be ≥ 8× cheaper than unbudgeted (%d)",
			on.Stats.MaxIntermediate, off.Stats.MaxIntermediate)
	}
	if on.Stats.Restarts == 0 {
		t.Fatal("budgeted run should have exercised Case 4b on this input")
	}
}

// BenchmarkAblationBudget quantifies the Case-4b effect across sizes.
func BenchmarkAblationBudget(b *testing.B) {
	p := workload.PathRule()
	for _, m := range []int{64, 256} {
		ins := workload.PathWorstCase(p, m)
		for _, mode := range []struct {
			name string
			opt  Options
		}{
			{"budget-on", Options{}},
			{"budget-off", Options{DisableBudget: true}},
		} {
			b.Run(fmt.Sprintf("%s/N=%d", mode.name, m), func(b *testing.B) {
				var maxInt int
				for i := 0; i < b.N; i++ {
					res, err := EvalRule(p, ins, nil, mode.opt)
					if err != nil {
						b.Fatal(err)
					}
					maxInt = res.Stats.MaxIntermediate
				}
				b.ReportMetric(float64(maxInt), "max-intermediate")
			})
		}
	}
}

// TestAblationModelSizeStillValid: even unbudgeted, outputs stay models on
// random inputs (the budget only affects performance, never correctness).
func TestAblationModelSizeStillValid(t *testing.T) {
	p := workload.PathRule()
	for seed := int64(0); seed < 5; seed++ {
		ins := RandomInstance(seed, &p.Schema, 40, 7)
		res, err := EvalRule(p, ins, nil, Options{DisableBudget: true})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := ins.IsModel(p, res.Tables)
		if err != nil || !ok {
			t.Fatalf("seed %d: not a model", seed)
		}
	}
	_ = query.ModelSize
}
