// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values). Each benchmark is self-contained; shapes
// (who wins, by what factor) are the reproduction target, not absolute
// times.
package panda

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"runtime"
	"testing"

	"panda/internal/baseline"
	"panda/internal/bitset"
	"panda/internal/bounds"
	"panda/internal/entropy"
	"panda/internal/flow"
	"panda/internal/query"
	"panda/internal/setfunc"
	"panda/internal/wcoj"
	"panda/internal/widths"
	"panda/internal/workload"
)

// BenchmarkTable1Bounds computes the Table 1 bound values for the
// representative query of each row (C4 under CC, Zhang–Yeung under CC+FD,
// Example 1.4's rule).
func BenchmarkTable1Bounds(b *testing.B) {
	q := workload.FourCycleQuery()
	ins := workload.AppendixABoundA(q, 32)
	dcs := ins.CardinalityConstraints(&q.Schema)
	p := workload.PathRule()
	pdcs := []flow.DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(1, 2), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(2, 3), LogN: big.NewRat(1, 1)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bounds(q, dcs); err != nil {
			b.Fatal(err)
		}
		if _, _, err := bounds.Theorem13Gap(); err != nil {
			b.Fatal(err)
		}
		if _, err := flow.MaximinBound(4, pdcs, p.Targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1ProofSequence builds and validates the Example 1.8 proof
// sequence (LP → witness → Theorem 5.9 construction).
func BenchmarkFigure1ProofSequence(b *testing.B) {
	dcs := []flow.DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(1, 2), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(2, 3), LogN: big.NewRat(1, 1)},
	}
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flow.MaximinBound(4, dcs, targets)
		if err != nil {
			b.Fatal(err)
		}
		seq, err := flow.ConstructProof(res.Lambda, res.Delta, res.Witness)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flow.ValidateProof(res.Lambda, res.Delta, seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Hierarchy checks the function-class hierarchy witnesses.
func BenchmarkFigure3Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h5 := setfunc.Figure5()
		if !h5.IsPolymatroid() {
			b.Fatal("fig5")
		}
		h6 := setfunc.Figure6()
		if !h6.IsPolymatroid() {
			b.Fatal("fig6")
		}
	}
}

// BenchmarkFigure4Widths computes the classic width hierarchy for the
// Figure 4 graph family.
func BenchmarkFigure4Widths(b *testing.B) {
	graphs := []*query.Conjunctive{
		workload.TriangleQuery(),
		workload.FourCycleQuery(),
		workload.CycleQuery(5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range graphs {
			if _, err := widths.Summarize(q.Hypergraph()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure9Grid evaluates the 3-axis bound grid on the 4-cycle.
func BenchmarkFigure9Grid(b *testing.B) {
	q := workload.FourCycleQuery()
	h := q.Hypergraph()
	one := big.NewRat(1, 1)
	var cc []flow.DC
	logs := make([]*big.Rat, len(h.Edges))
	for i, e := range h.Edges {
		cc = append(cc, flow.DC{X: 0, Y: e, LogN: one})
		logs[i] = one
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.IntegralCoverBound(h, logs); err != nil {
			b.Fatal(err)
		}
		if _, err := bounds.AGM(h, logs); err != nil {
			b.Fatal(err)
		}
		if _, err := bounds.Subadditive(4, cc); err != nil {
			b.Fatal(err)
		}
		if _, err := bounds.Polymatroid(4, cc); err != nil {
			b.Fatal(err)
		}
		if _, err := widths.FHTW(h); err != nil {
			b.Fatal(err)
		}
		if _, err := widths.Subw(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample12Bounds measures the tight-instance constructions of
// Appendix A (output sizes match the three bounds).
func BenchmarkExample12Bounds(b *testing.B) {
	q := workload.FourCycleQuery()
	for i := 0; i < b.N; i++ {
		insA := workload.AppendixABoundA(q, 32)
		if insA.FullJoin().Size() != 32*32 {
			b.Fatal("(a) not tight")
		}
		insC := workload.AppendixABoundC(q, 8)
		if insC.FullJoin().Size() != 8*8*8 {
			b.Fatal("(c) not tight")
		}
	}
}

// BenchmarkExample18PANDA runs PANDA on Example 1.4's rule over worst-case
// inputs of growing size; the work should scale like N^{3/2}.
func BenchmarkExample18PANDA(b *testing.B) {
	p := workload.PathRule()
	for _, m := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("N=%d", m), func(b *testing.B) {
			ins := workload.PathWorstCase(p, m)
			b.ResetTimer()
			var maxInt int
			for i := 0; i < b.N; i++ {
				res, err := EvalRule(p, ins, nil, Options{})
				if err != nil {
					b.Fatal(err)
				}
				maxInt = res.Stats.MaxIntermediate
			}
			b.ReportMetric(float64(maxInt), "max-intermediate")
			b.ReportMetric(math.Pow(float64(m), 1.5), "N^1.5")
		})
	}
}

// BenchmarkExample110SubwVsTree is the headline comparison: Boolean 4-cycle
// on adversarial inputs, PANDA's submodular-width plan vs the fixed
// tree-decomposition plan (N^{3/2} vs N²).
func BenchmarkExample110SubwVsTree(b *testing.B) {
	q := workload.BooleanFourCycle()
	for _, m := range []int{64, 128, 256} {
		ins := workload.CycleWorstCase(q, m)
		b.Run(fmt.Sprintf("panda-subw/m=%d", m), func(b *testing.B) {
			var maxInt int
			for i := 0; i < b.N; i++ {
				_, ans, st, err := EvalSubw(q, ins, nil, Options{})
				if err != nil || !ans {
					b.Fatalf("ans=%v err=%v", ans, err)
				}
				maxInt = st.MaxIntermediate
			}
			b.ReportMetric(float64(maxInt), "max-intermediate")
		})
		b.Run(fmt.Sprintf("tree-plan/m=%d", m), func(b *testing.B) {
			var maxInt int
			for i := 0; i < b.N; i++ {
				_, ans, st, err := baseline.EvalTreePlan(q, ins, nil)
				if err != nil || !ans {
					b.Fatalf("ans=%v err=%v", ans, err)
				}
				maxInt = st.MaxIntermediate
			}
			b.ReportMetric(float64(maxInt), "max-intermediate")
		})
	}
}

// BenchmarkExample74Gap computes the fhtw/subw gap for the m=1, k=2 member
// of the Example 7.4 family (the 4-cycle; the k=3 member runs in
// cmd/experiments ex74).
func BenchmarkExample74Gap(b *testing.B) {
	h := workload.Example74Graph(1, 2)
	for i := 0; i < b.N; i++ {
		f, err := widths.FHTW(h)
		if err != nil {
			b.Fatal(err)
		}
		s, err := widths.Subw(h)
		if err != nil {
			b.Fatal(err)
		}
		if f.Cmp(big.NewRat(2, 1)) != 0 || s.Cmp(big.NewRat(3, 2)) != 0 {
			b.Fatalf("fhtw=%v subw=%v", f, s)
		}
	}
}

// BenchmarkExample78DegreeAwareWidths computes da-fhtw and da-subw of the
// 4-cycle.
func BenchmarkExample78DegreeAwareWidths(b *testing.B) {
	q := workload.FourCycleQuery()
	var dcs []Constraint
	for i, a := range q.Atoms {
		dcs = append(dcs, Cardinality(a.Vars, 2, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DaFhtw(q, dcs); err != nil {
			b.Fatal(err)
		}
		if _, err := DaSubw(q, dcs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem13ZhangYeung certifies the polymatroid/entropic gap.
func BenchmarkTheorem13ZhangYeung(b *testing.B) {
	for i := 0; i < b.N; i++ {
		poly, ent, err := bounds.Theorem13Gap()
		if err != nil {
			b.Fatal(err)
		}
		if poly.Cmp(ent) <= 0 {
			b.Fatal("no gap")
		}
	}
}

// BenchmarkLemma44GroupSystem materializes a Chan–Yeung group instance
// (r = 6) and validates Lemma 4.3's degree formula.
func BenchmarkLemma44GroupSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := entropy.NewGroupSystem([][]int64{
			{0, 0, 1, 1, 2, 2},
			{0, 1, 0, 1, 0, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		rels, err := g.Instance([]bitset.Set{bitset.Of(0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		want, err := g.DegreeFormula(bitset.Of(0, 1), bitset.Of(0))
		if err != nil {
			b.Fatal(err)
		}
		if got := rels[0].Degree(bitset.Of(0, 1), bitset.Of(0)); big.NewInt(int64(got)).Cmp(want) != 0 {
			b.Fatalf("degree %d ≠ %v", got, want)
		}
	}
}

// BenchmarkLemma45 computes the disjunctive-rule gaps of Lemma 4.5.
func BenchmarkLemma45(b *testing.B) {
	n, dcs, targets := bounds.Lemma45Rule5()
	for i := 0; i < b.N; i++ {
		res, err := flow.MaximinBound(n, dcs, targets)
		if err != nil {
			b.Fatal(err)
		}
		if res.Bound.Cmp(big.NewRat(4, 1)) != 0 {
			b.Fatalf("bound %v", res.Bound)
		}
		if err := bounds.Verify64Identity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem59ProofConstruction measures proof-sequence construction
// on the triangle, 4-cycle and Example 1.4 inequalities.
func BenchmarkTheorem59ProofConstruction(b *testing.B) {
	type inst struct {
		n       int
		dcs     []flow.DC
		targets []bitset.Set
	}
	one := big.NewRat(1, 1)
	cases := []inst{
		{3, []flow.DC{
			{X: 0, Y: bitset.Of(0, 1), LogN: one},
			{X: 0, Y: bitset.Of(1, 2), LogN: one},
			{X: 0, Y: bitset.Of(0, 2), LogN: one},
		}, []bitset.Set{bitset.Full(3)}},
		{4, []flow.DC{
			{X: 0, Y: bitset.Of(0, 1), LogN: one},
			{X: 0, Y: bitset.Of(1, 2), LogN: one},
			{X: 0, Y: bitset.Of(2, 3), LogN: one},
		}, []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			res, err := flow.MaximinBound(c.n, c.dcs, c.targets)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := flow.ConstructProof(res.Lambda, res.Delta, res.Witness); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPreparedVsUnprepared demonstrates planning amortization on the
// triangle and four-cycle workloads: the unprepared path re-pays the LP
// solves and proof construction on every evaluation, the prepared path pays
// once, and a cache-hit Prepare costs only signature canonicalization.
func BenchmarkPreparedVsUnprepared(b *testing.B) {
	workloads := []struct {
		name string
		q    *Query
		seed int64
	}{
		{"triangle", workload.TriangleQuery(), 3},
		{"four-cycle", workload.FourCycleQuery(), 7},
	}
	for _, w := range workloads {
		ins := RandomInstance(w.seed, &w.q.Schema, 300, 30)
		b.Run(w.name+"/unprepared", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := EvalFhtw(w.q, ins, nil, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/prepared", func(b *testing.B) {
			pl := NewPlanner(8)
			pq, err := pl.PrepareForMode(w.q, ins, nil, ModeFhtw)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := pq.Eval(ins, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/prepare-hit", func(b *testing.B) {
			pl := NewPlanner(8)
			if _, err := pl.PrepareForMode(w.q, ins, nil, ModeFhtw); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.PrepareForMode(w.q, ins, nil, ModeFhtw); err != nil {
					b.Fatal(err)
				}
			}
			st := pl.Stats()
			if st.Hits != uint64(b.N) {
				b.Fatalf("expected %d cache hits, got %v", b.N, st)
			}
		})
	}
}

// BenchmarkParallelExecute measures the parallel bag-execution fan-out on
// the Boolean 4-cycle worst case (a subw plan with one PANDA rule per
// minimal bag transversal): the same cached plan executed sequentially
// (P=1) and through the bounded worker pool (P=NumCPU). The merge is
// deterministic, so both produce identical answers; the shape (parallel
// wall clock ≤ sequential on multi-rule plans) is the target.
func BenchmarkParallelExecute(b *testing.B) {
	q := workload.BooleanFourCycle()
	ins := workload.CycleWorstCase(q, 192)
	db := Open()
	defer db.Close()
	// Warm the plan cache so both arms measure pure execution.
	if _, err := db.Eval(q, ins, nil); err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("P=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := db.EvalContext(context.Background(), q, ins, nil, WithParallelism(par))
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("worst-case cycle instance reported empty")
				}
			}
		})
	}

	// One large rule: the full triangle join is a single PANDA rule, so the
	// per-rule fan-out above has nothing to parallelize — the speedup must
	// come from data-parallel partitioned execution (WithPartitions
	// co-partitions R and T on the shared variable and replicates S, one
	// rule execution per partition through the same pool). The arm names
	// are literal because CI asserts P=NumCPU is ≥2× P=1 on this case and
	// the row counts of both arms agree.
	b.Run("large-rule", func(b *testing.B) {
		tq := workload.TriangleQuery()
		tins := RandomInstance(11, &tq.Schema, 8192, 192)
		tdb := Open()
		defer tdb.Close()
		seq, err := tdb.Eval(tq, tins, nil) // also warms the plan cache
		if err != nil {
			b.Fatal(err)
		}
		par, err := tdb.Eval(tq, tins, nil,
			WithParallelism(runtime.NumCPU()), WithPartitions(runtime.NumCPU()))
		if err != nil {
			b.Fatal(err)
		}
		if seq.Rel.Size() != par.Rel.Size() {
			b.Fatalf("partitioned run diverges: %d rows vs %d sequential", par.Rel.Size(), seq.Rel.Size())
		}
		arms := []struct {
			name string
			par  int
		}{
			{"P=1", 1},
			{"P=NumCPU", runtime.NumCPU()},
		}
		for _, arm := range arms {
			b.Run(arm.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := tdb.EvalContext(context.Background(), tq, tins, nil,
						WithParallelism(arm.par), WithPartitions(arm.par))
					if err != nil {
						b.Fatal(err)
					}
					if res.Rel.Size() != seq.Rel.Size() {
						b.Fatalf("row count diverges: %d vs %d", res.Rel.Size(), seq.Rel.Size())
					}
				}
			})
		}
	})
}

// BenchmarkWCOJTriangle compares the generic worst-case-optimal join with
// PANDA on the triangle query (both are Õ(N^{3/2}) here).
func BenchmarkWCOJTriangle(b *testing.B) {
	q := workload.TriangleQuery()
	ins := RandomInstance(3, &q.Schema, 2000, 64)
	b.Run("wcoj", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wcoj.Join(&q.Schema, ins, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("panda", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := EvalFull(q, ins, nil, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFullFourCycleEvaluators compares the three full-query plans on a
// benign random instance.
func BenchmarkFullFourCycleEvaluators(b *testing.B) {
	q := workload.FourCycleQuery()
	ins := RandomInstance(7, &q.Schema, 500, 40)
	b.Run("EvalFull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := EvalFull(q, ins, nil, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EvalFhtw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := EvalFhtw(q, ins, nil, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EvalSubw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := EvalSubw(q, ins, nil, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TreePlan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := baseline.EvalTreePlan(q, ins, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
