package panda

import (
	"fmt"
	"math/big"

	"panda/internal/bounds"
	"panda/internal/flow"
	"panda/internal/query"
)

// BoundReport collects the size-bound hierarchy of a query under given
// constraints, all in log₂ units (a value β means |Q| ≤ 2^β). Entries that
// do not apply (e.g. AGM under proper degree constraints) are nil.
type BoundReport struct {
	Vertex        *big.Rat // n · log N
	IntegralCover *big.Rat // ρ(Q, N_F)      — cardinality constraints only
	AGM           *big.Rat // ρ*(Q, N_F)     — cardinality constraints only
	Polymatroid   *big.Rat // DAPB(Q): max h([n]) over Γn ∩ HDC
}

// toFlowDCs converts public constraints, validating them.
func toFlowDCs(s *Schema, dcs []Constraint) ([]flow.DC, error) {
	out := make([]flow.DC, len(dcs))
	for i, c := range dcs {
		if err := c.Validate(s.NumVars); err != nil {
			return nil, err
		}
		out[i] = flow.DC{X: c.X, Y: c.Y, LogN: c.LogN}
	}
	return out, nil
}

// Bounds computes the size-bound hierarchy for a full conjunctive query.
// Cardinality-only bounds (AGM, integral cover) are computed when every
// constraint is a cardinality constraint.
func Bounds(q *Query, dcs []Constraint) (*BoundReport, error) {
	fdcs, err := toFlowDCs(&q.Schema, dcs)
	if err != nil {
		return nil, err
	}
	rep := &BoundReport{}
	poly, err := bounds.Polymatroid(q.NumVars, fdcs)
	if err != nil {
		return nil, err
	}
	rep.Polymatroid = poly

	cardOnly := true
	maxLog := new(big.Rat)
	for _, c := range dcs {
		if !c.IsCardinality() {
			cardOnly = false
		}
		if c.LogN.Cmp(maxLog) > 0 {
			maxLog = c.LogN
		}
	}
	rep.Vertex = bounds.VertexBound(q.NumVars, maxLog)
	if cardOnly {
		h := q.Hypergraph()
		// Align per-edge logs with atoms: use each atom's tightest
		// cardinality constraint.
		logs := make([]*big.Rat, len(q.Atoms))
		for i, a := range q.Atoms {
			for _, c := range dcs {
				if c.Y == a.Vars && (logs[i] == nil || c.LogN.Cmp(logs[i]) < 0) {
					logs[i] = c.LogN
				}
			}
			if logs[i] == nil {
				return nil, fmt.Errorf("panda: atom %s has no cardinality constraint", a.Name)
			}
		}
		if rep.AGM, err = bounds.AGM(h, logs); err != nil {
			return nil, err
		}
		if rep.IntegralCover, err = bounds.IntegralCoverBound(h, logs); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RuleBound computes the polymatroid bound LogSizeBound_{Γn∩HDC}(P) of a
// disjunctive datalog rule (Theorem 1.5's Eq. 9), exactly.
func RuleBound(p *Rule, dcs []Constraint) (*big.Rat, error) {
	fdcs, err := toFlowDCs(&p.Schema, dcs)
	if err != nil {
		return nil, err
	}
	res, err := flow.MaximinBound(p.NumVars, fdcs, p.Targets)
	if err != nil {
		return nil, err
	}
	return res.Bound, nil
}

// InstanceCardinalities derives cardinality constraints from an instance.
func InstanceCardinalities(s *Schema, ins *Instance) []Constraint {
	return ins.CardinalityConstraints(s)
}

// CheckInstance verifies that an instance satisfies the constraints.
func CheckInstance(s *Schema, ins *Instance, dcs []Constraint) error {
	return ins.Check(s, dcs)
}

// ZhangYeungGap returns Theorem 1.3's two bounds for the Zhang–Yeung query
// in log N units: the polymatroid bound (4) and the certified entropic
// upper bound (43/11).
func ZhangYeungGap() (polymatroid, entropic *big.Rat, err error) {
	return bounds.Theorem13Gap()
}

var _ = query.LogOf // keep the query package linked for its documentation
