// Command benchjson converts `go test -bench` text output into the
// committed BENCH_PR.json schema, the perf-trajectory artifact CI uploads
// on every PR:
//
//	{
//	  "schema": "panda-bench/v1",
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64", "cpu": "…",
//	  "benchmarks": [
//	    {"pkg": "panda/internal/plan",
//	     "name": "BenchmarkPlanDecodeVsPrepare/decode",
//	     "procs": 8, "iterations": 3847, "ns_per_op": 133688.0,
//	     "metrics": {"B/op": 65536, "allocs/op": 112}}, …]
//	}
//
// Every `<value> <unit>` pair after the iteration count lands in metrics
// (ns/op additionally in the ns_per_op field), so custom b.ReportMetric
// units like max-intermediate survive. Input order is preserved; jq can
// diff two artifacts benchmark-by-benchmark.
//
// Usage: go test -bench=… ./… | benchjson [-o BENCH_PR.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed BENCH_PR.json shape.
type Report struct {
	Schema     string  `json:"schema"`
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// SchemaID names the artifact schema; bump on incompatible changes.
const SchemaID = "panda-bench/v1"

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)
	// procsSuffix is the trailing -GOMAXPROCS tag go test appends to the
	// benchmark name (sub-benchmark names may themselves contain dashes, so
	// only a final all-digits segment counts).
	procsSuffix = regexp.MustCompile(`-(\d+)$`)
)

// parse reads `go test -bench` output and collects the benchmark lines,
// tracking the pkg/cpu header lines interleaved between packages.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Schema: SchemaID,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
		}
		b := Bench{Pkg: pkg, Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		if sm := procsSuffix.FindStringSubmatch(b.Name); sm != nil {
			if p, err := strconv.Atoi(sm[1]); err == nil {
				b.Procs = p
				b.Name = strings.TrimSuffix(b.Name, sm[0])
			}
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: unpaired value/unit fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", fields[i], line, err)
			}
			unit := fields[i+1]
			b.Metrics[unit] = v
			if unit == "ns/op" {
				b.NsPerOp = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "write the JSON report here instead of stdout")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}
