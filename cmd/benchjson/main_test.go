package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: panda
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPreparedVsUnprepared/triangle/unprepared-8         	     226	   5294821 ns/op
BenchmarkPreparedVsUnprepared/triangle/prepare-hit-8        	  542169	      2208 ns/op
BenchmarkExample18PANDA/N=64-8                              	     100	    123456 ns/op	       512 max-intermediate	       512 N^1.5
PASS
ok  	panda	12.3s
goos: linux
goarch: amd64
pkg: panda/internal/plan
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPlanDecodeVsPrepare/cold-prepare-8                 	     188	   6351651 ns/op	  131072 B/op	    2048 allocs/op
BenchmarkPlanDecodeVsPrepare/decode-8                       	    8964	    133688 ns/op
PASS
ok  	panda/internal/plan	3.1s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaID {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}

	first := rep.Benchmarks[0]
	if first.Pkg != "panda" ||
		first.Name != "BenchmarkPreparedVsUnprepared/triangle/unprepared" ||
		first.Procs != 8 || first.Iterations != 226 || first.NsPerOp != 5294821 {
		t.Fatalf("first benchmark parsed wrong: %+v", first)
	}

	// Custom b.ReportMetric units survive into metrics.
	panda18 := rep.Benchmarks[2]
	if panda18.Name != "BenchmarkExample18PANDA/N=64" {
		t.Fatalf("name %q (the -procs strip must not eat N=64)", panda18.Name)
	}
	if panda18.Metrics["max-intermediate"] != 512 || panda18.Metrics["N^1.5"] != 512 {
		t.Fatalf("custom metrics lost: %+v", panda18.Metrics)
	}

	// The pkg header between packages retags later lines, and B/op and
	// allocs/op land in metrics.
	cold := rep.Benchmarks[3]
	if cold.Pkg != "panda/internal/plan" || cold.Metrics["B/op"] != 131072 || cold.Metrics["allocs/op"] != 2048 {
		t.Fatalf("cold-prepare parsed wrong: %+v", cold)
	}

	// The property the bench CI job asserts: decode ≪ cold prepare.
	decode := rep.Benchmarks[4]
	if decode.Name != "BenchmarkPlanDecodeVsPrepare/decode" || decode.NsPerOp >= cold.NsPerOp {
		t.Fatalf("decode parsed wrong: %+v", decode)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok  \tpanda\t1.0s\n--- BENCH: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(rep.Benchmarks))
	}
}

func TestParseRejectsMalformedBenchLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 100 nonsense ns/op extra\n")); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}
