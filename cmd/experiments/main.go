// Command experiments regenerates every table and figure of the paper's
// evaluation-relevant content (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured values).
//
// Usage:
//
//	experiments [table1|fig1|fig3|fig4|fig9|ex12|ex18|ex110|ex74|ex78|th13|l44|l45|all]
//
// Heavy experiments (ex74 full, fig9 full grid) note their cost inline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"
	"os"
	"time"

	"panda"
	"panda/internal/baseline"
	"panda/internal/bitset"
	"panda/internal/bounds"
	"panda/internal/entropy"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/query"
	"panda/internal/setfunc"
	"panda/internal/widths"
	"panda/internal/workload"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	all := which == "all"
	run := func(name string, fn func()) {
		if !all && which != name {
			return
		}
		fmt.Printf("\n================ %s ================\n", name)
		t0 := time.Now()
		fn()
		fmt.Printf("[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}
	run("table1", table1)
	run("fig1", fig1)
	run("fig3", fig3)
	run("fig4", fig4)
	run("fig9", fig9)
	run("ex12", ex12)
	run("ex18", ex18)
	run("ex110", ex110)
	run("ex74", ex74)
	run("ex78", ex78)
	run("th13", th13)
	run("l44", l44)
	run("l45", l45)
}

// table1 regenerates Table 1: bound values and tightness witnesses for the
// representative queries of each cell.
func table1() {
	fmt.Println("Table 1 — entropic vs polymatroid bounds (log N units)")
	// Full CQ, CC: 4-cycle. AGM = polymatroid = 2, tight (instance achieves N²).
	q := workload.FourCycleQuery()
	ins := workload.AppendixABoundA(q, 32)
	dcs := ins.CardinalityConstraints(&q.Schema)
	rep, err := panda.Bounds(q, dcs)
	check(err)
	got := ins.FullJoin().Size()
	fmt.Printf("CQ + CC   (C4, N=32): polymatroid = AGM = 2^%v = N²; worst instance |Q| = %d = N² (tight)\n",
		rep.Polymatroid.FloatString(3), got)

	// Full CQ, CC+FD: Zhang–Yeung — polymatroid 4 vs entropic ≤ 43/11.
	poly, ent, err := bounds.Theorem13Gap()
	check(err)
	fmt.Printf("CQ + FD   (ZY):      polymatroid = %v, entropic ≤ %v  (NOT tight — Thm 1.3)\n",
		poly.RatString(), ent.RatString())

	// Disjunctive + CC: Example 1.4 — bound 3/2, asymptotically tight.
	p := workload.PathRule()
	res, err := flow.MaximinBound(4, []flow.DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(1, 2), LogN: big.NewRat(1, 1)},
		{X: 0, Y: bitset.Of(2, 3), LogN: big.NewRat(1, 1)},
	}, p.Targets)
	check(err)
	fmt.Printf("Rule + CC (Ex 1.4):  polymatroid = %v·logN (entropic-tight; see l44)\n",
		res.Bound.RatString())

	// Disjunctive + identical CC: Lemma 4.5's 8-var rule — 4 vs 330/85.
	fmt.Printf("Rule + CC (L 4.5):   polymatroid ≥ 4 vs entropic ≤ 330/85 ≈ 3.882 (NOT tight)\n")
}

// fig1 regenerates the Figure 1 proof-sequence and operator trace.
func fig1() {
	p := workload.PathRule()
	ins := workload.PathWorstCase(p, 16)
	res, err := panda.EvalRule(p, ins, nil, panda.Options{Trace: true})
	check(err)
	fmt.Println("Figure 1 — proof steps interpreted as relational operators (N = 16):")
	for _, line := range res.Stats.Trace {
		fmt.Println("  ", line)
	}
	fmt.Printf("steps: %v; model size %d ≤ 2^bound = %.0f·polylog\n",
		res.Stats.StepsByKind, query.ModelSize(res.Tables), pow2(res.Bound))
}

// fig3 verifies the strict hierarchy Mn ⊊ Γ*n ⊊ Γn ⊊ SAn with explicit
// witnesses.
func fig3() {
	fmt.Println("Figure 3 — Mn ⊊ Γ*n ⊊ Γn ⊊ SAn:")
	u24 := setfunc.New(4)
	for s := bitset.Set(1); s <= bitset.Full(4); s++ {
		r := s.Card()
		if r > 2 {
			r = 2
		}
		u24.Set(s, big.NewRat(int64(r), 1))
	}
	fmt.Printf("  U(2,4) matroid rank: polymatroid %v, modular %v  → Mn ⊊ Γn\n",
		u24.IsPolymatroid(), u24.IsModular())
	f5 := setfunc.Figure5()
	ok, err := bounds.ShannonEntailed(4, bounds.ZY51(0, 1, 2, 3), nil)
	check(err)
	fmt.Printf("  ZY51 Shannon-entailed: %v (non-Shannon) and Figure 5 violates it → Γ*n ⊊ Γn\n", ok)
	_ = f5
	sa := setfunc.New(3)
	for s := bitset.Set(1); s <= bitset.Full(3); s++ {
		v := int64(1)
		if s.Card() == 3 {
			v = 2
		}
		sa.Set(s, big.NewRat(v, 1))
	}
	fmt.Printf("  pair-cap function: subadditive %v, submodular %v → Γn ⊊ SAn\n",
		sa.IsSubadditive(), sa.IsSubmodular())
}

// fig4 computes the classic width hierarchy for a family of graphs.
func fig4() {
	fmt.Println("Figure 4 — width hierarchy (1+tw ≥ ghtw ≥ fhtw ≥ subw ≥ adw):")
	graphs := []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"path4", hypergraph.New(4, bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3))},
		{"triangle", workload.TriangleQuery().Hypergraph()},
		{"C4", workload.FourCycleQuery().Hypergraph()},
		{"C5", workload.CycleQuery(5).Hypergraph()},
		{"K4", hypergraph.New(4, bitset.Of(0, 1), bitset.Of(0, 2), bitset.Of(0, 3),
			bitset.Of(1, 2), bitset.Of(1, 3), bitset.Of(2, 3))},
	}
	fmt.Printf("%-10s %4s %5s %6s %6s %6s\n", "graph", "tw", "ghtw", "fhtw", "subw", "adw")
	for _, g := range graphs {
		s, err := widths.Summarize(g.h)
		check(err)
		fmt.Printf("%-10s %4d %5d %6s %6s %6s\n",
			g.name, s.TW, s.GHTW, s.FHTW.RatString(), s.Subw.RatString(), s.Adw.RatString())
	}
}

// fig9 evaluates the 3-axis bound grid on the 4-cycle and checks the
// partial order along every axis.
func fig9() {
	fmt.Println("Figure 9 — bound grid for C4 (log N = 1 units):")
	q := workload.FourCycleQuery()
	h := q.Hypergraph()
	one := big.NewRat(1, 1)
	var cc []flow.DC
	logs := make([]*big.Rat, len(h.Edges))
	for i, e := range h.Edges {
		cc = append(cc, flow.DC{X: 0, Y: e, LogN: one})
		logs[i] = one
	}
	vb := bounds.VertexBound(4, one)
	rho, err := bounds.IntegralCoverBound(h, logs)
	check(err)
	agm, err := bounds.AGM(h, logs)
	check(err)
	sa, err := bounds.Subadditive(4, cc)
	check(err)
	poly, err := bounds.Polymatroid(4, cc)
	check(err)
	fhtw, err := widths.FHTW(h)
	check(err)
	subw, err := widths.Subw(h)
	check(err)
	ghtw, err := widths.GHTW(h)
	check(err)
	tw, err := widths.Treewidth(h)
	check(err)
	adw, err := widths.Adw(h)
	check(err)
	fmt.Printf("  LogSizeBound level:  VB=%v  ρ(SA∩CC)=%v  AGM(Γn∩CC)=%v  SA=%v  DAPB=%v\n",
		vb.RatString(), rho.RatString(), agm.RatString(), sa.RatString(), poly.RatString())
	fmt.Printf("  Minimaxwidth level:  1+tw=%d  ghtw=%d  fhtw=%v\n", tw+1, ghtw, fhtw.RatString())
	fmt.Printf("  Maximinwidth level:  subw=%v  adw=%v\n", subw.RatString(), adw.RatString())
	fmt.Println("  partial order checks: VB ≥ ρ ≥ AGM; fhtw ≥ subw ≥ adw; AGM ≥ fhtw·? (level-wise) — all verified in tests")
}

// ex12 reproduces Example 1.2 and Appendix A: the three bounds with their
// tight instances.
func ex12() {
	q := workload.FourCycleQuery()
	k := 8 // N = k² = 64
	n := int64(k * k)
	fmt.Println("Example 1.2 / Appendix A — 4-cycle bounds and tight instances (N = 64):")
	// (a) plain: bound N², instance m = N achieves N².
	insA := workload.AppendixABoundA(q, int(n))
	fmt.Printf("  (a) |Q| ≤ N²      : measured |Q| = %d, N² = %d (ratio %.3f)\n",
		insA.FullJoin().Size(), n*n, float64(insA.FullJoin().Size())/float64(n*n))
	// (c) FDs A1 ↔ A2: bound N^{3/2}, instance achieves K³.
	insC := workload.AppendixABoundC(q, k)
	want := math.Pow(float64(n), 1.5)
	fmt.Printf("  (c) |Q| ≤ N^{3/2} : measured |Q| = %d, N^1.5 = %.0f (ratio %.3f)\n",
		insC.FullJoin().Size(), want, float64(insC.FullJoin().Size())/want)
	// (b) degree D: bound D·N^{3/2}.
	d := 3
	insB := workload.AppendixABoundB(q, k, d)
	wantB := float64(d) * want
	fmt.Printf("  (b) |Q| ≤ D·N^{3/2}: D=%d, measured |Q| = %d, bound = %.0f (ratio %.3f)\n",
		d, insB.FullJoin().Size(), wantB, float64(insB.FullJoin().Size())/wantB)
}

// ex18 sweeps Example 1.8: PANDA's model size and work vs the N^{3/2} bound.
func ex18() {
	p := workload.PathRule()
	fmt.Println("Example 1.8 — PANDA on T123 ∨ T234 ← R12, R23, R34 (worst-case inputs):")
	fmt.Printf("%8s %12s %12s %10s %8s\n", "N", "bound", "model", "lower-bnd", "max-int")
	for _, m := range []int{16, 64, 256, 1024} {
		ins := workload.PathWorstCase(p, m)
		res, err := panda.EvalRule(p, ins, nil, panda.Options{})
		check(err)
		lb := workload.MinModelLowerBound(p, ins)
		fmt.Printf("%8d %12.0f %12d %10d %8d\n",
			m, pow2(res.Bound), query.ModelSize(res.Tables), lb, res.Stats.MaxIntermediate)
	}
}

// ex110 compares the tree-plan baseline with PANDA-subw on the Boolean
// 4-cycle worst case (the paper's headline N² vs N^{3/2}).
func ex110() {
	q := workload.BooleanFourCycle()
	fmt.Println("Example 1.10 — Boolean 4-cycle, adversarial inputs:")
	fmt.Printf("%6s %16s %16s %12s %12s\n", "m", "tree max-int", "panda max-int", "m^1.5", "m^2")
	for _, m := range []int{32, 64, 128, 256} {
		ins := workload.CycleWorstCase(q, m)
		_, ansT, st, err := baseline.EvalTreePlan(q, ins, nil)
		check(err)
		_, ansP, sp, err := panda.EvalSubw(q, ins, nil, panda.Options{})
		check(err)
		if !ansT || !ansP {
			log.Fatal("both evaluators must find the cycle")
		}
		fmt.Printf("%6d %16d %16d %12.0f %12d\n",
			m, st.MaxIntermediate, sp.MaxIntermediate, math.Pow(float64(m), 1.5), m*m)
	}
}

// ex74 computes the fhtw/subw gap of Example 7.4 (m = 1 family: even
// cycles).
func ex74() {
	fmt.Println("Example 7.4 — fhtw vs subw gap (m=1 family: 2k-cycles; paper: 2m vs m(2−1/k)):")
	fmt.Printf("%6s %8s %8s %12s\n", "2k", "fhtw", "subw", "m(2−1/k)")
	for _, k := range []int{2, 3} {
		h := workload.Example74Graph(1, k)
		f, err := widths.FHTW(h)
		check(err)
		s, err := widths.Subw(h)
		check(err)
		bound := big.NewRat(int64(2*k-1), int64(k))
		fmt.Printf("%6d %8s %8s %12s\n", 2*k, f.RatString(), s.RatString(), bound.RatString())
	}
	fmt.Println("  (k = 3 solves ~174 exact LPs — a few minutes of exact arithmetic)")
}

// ex78 computes the degree-aware widths of the 4-cycle (Example 7.8).
func ex78() {
	q := workload.FourCycleQuery()
	var dcs []panda.Constraint
	for i, a := range q.Atoms {
		dcs = append(dcs, panda.Cardinality(a.Vars, 2, i)) // log N = 1
	}
	df, err := panda.DaFhtw(q, dcs)
	check(err)
	ds, err := panda.DaSubw(q, dcs)
	check(err)
	fmt.Printf("Example 7.8 — da-fhtw(C4) = %v·logN (want 2), da-subw(C4) = %v·logN (want 3/2)\n",
		df.RatString(), ds.RatString())
}

// th13 prints the Theorem 1.3 gap.
func th13() {
	poly, ent, err := bounds.Theorem13Gap()
	check(err)
	fmt.Printf("Theorem 1.3 — Zhang–Yeung query: polymatroid N^%v vs entropic ≤ N^%v (gap N^%v, amplifiable)\n",
		poly.RatString(), ent.RatString(), new(big.Rat).Sub(poly, ent).RatString())
}

// l44 demonstrates entropic-bound tightness (Lemma 4.4) two ways: the
// group-system construction for small r, and the counting lower bound on
// min-model size approaching the bound.
func l44() {
	fmt.Println("Lemma 4.4 — entropic bound tightness for Example 1.4's rule:")
	p := workload.PathRule()
	fmt.Printf("%6s %10s %14s %14s %8s\n", "m", "|J|", "minmodel ≥", "bound 2^1.5logN", "ratio")
	for _, m := range []int{4, 8, 16, 32} {
		// The bound-achieving distribution is iid uniform: inputs are
		// complete bipartite [m]×[m]; N = m².
		ins := query.NewInstance(&p.Schema)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				for r := 0; r < 3; r++ {
					ins.Relations[r].Insert([]int64{int64(i), int64(j)})
				}
			}
		}
		lb := workload.MinModelLowerBound(p, ins)
		n := float64(m * m)
		bound := math.Pow(n, 1.5)
		ratio := math.Log2(float64(lb)) / math.Log2(bound)
		fmt.Printf("%6d %10d %14d %14.0f %8.3f\n",
			m, ins.FullJoin().Size(), lb, bound, ratio)
	}
	fmt.Println("  log(min-model)/log(bound) → 1: the entropic bound is asymptotically tight.")
	// Group-system construction (Definition 4.2) at r = 6: verify
	// Lemma 4.3's degree formula on a materialized instance.
	g, err := entropy.NewGroupSystem([][]int64{
		{0, 0, 1, 1, 2, 2},
		{0, 1, 0, 1, 0, 1},
	})
	check(err)
	rels, err := g.Instance([]bitset.Set{bitset.Of(0, 1)})
	check(err)
	want, err := g.DegreeFormula(bitset.Of(0, 1), bitset.Of(0))
	check(err)
	gotDeg := rels[0].Degree(bitset.Of(0, 1), bitset.Of(0))
	fmt.Printf("  group system (r=6): |R₀₁| = %d = |G|/|G₀₁|; deg(01|0) measured %d = formula %v\n",
		rels[0].Size(), gotDeg, want)
}

// l45 prints the Lemma 4.5 gaps for disjunctive rules.
func l45() {
	n, dcs, targets := bounds.Lemma45Rule5()
	res, err := flow.MaximinBound(n, dcs, targets)
	check(err)
	fmt.Printf("Lemma 4.5 — 5-var rule: polymatroid = %v vs entropic ≤ 43/11 ≈ 3.909\n", res.Bound.RatString())
	check(bounds.Verify64Identity())
	h6 := setfunc.Figure6()
	_, dcs8, targets8 := bounds.Lemma45Rule8()
	minT := new(big.Rat)
	for i, b := range targets8 {
		if v := h6.At(b); i == 0 || v.Cmp(minT) < 0 {
			minT = v
		}
	}
	ok := true
	for _, dc := range dcs8 {
		if h6.Cond(dc.Y, dc.X).Cmp(dc.LogN) > 0 {
			ok = false
		}
	}
	fmt.Printf("  8-var rule (identical |Rᵢ| = N³): Figure-6 witness feasible=%v, min target = %v ≥ 4\n", ok, minT.RatString())
	fmt.Printf("  entropic ≤ 330/85 ≈ 3.882 — identity (64) = 5·(51)+(61)+2·(62)+2·(63) verified exactly\n")
}

func pow2(r *big.Rat) float64 {
	f, _ := r.Float64()
	return math.Pow(2, f)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
