// Command panda is the CLI front end of the library: it parses a query
// file, reports size bounds and width parameters, and optionally evaluates
// the query over CSV relations. It is a thin shell over the panda.DB
// session API — evaluation opens a session, ingests the data directory
// into the catalog, and runs the query text through DB.Query.
//
// Usage:
//
//	panda bounds  <query-file>
//	panda widths  <query-file>
//	panda eval    [-j N] [-timeout D] <query-file> <data-dir>
//	panda explain [-timeout D] <query-file>         # proof sequence / plan trace
//	panda plan    [-timeout D] <query-file>         # reified prepared-query plan
//
// -j bounds how many independent rule executions run concurrently (0 picks
// the number of CPUs); -timeout aborts evaluation after a duration (e.g.
// 30s) via context cancellation.
//
// The query language (see internal/query):
//
//	Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A).
//	T1(A,B,C) v T2(B,C,D) :- R(A,B), S(B,C), T(C,D).
//	|R| <= 1000
//	deg(R: B | A) <= 5
//	fd(S: B -> C)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"panda"
	"panda/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("panda: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			usage()
		}
		log.Fatal(err)
	}
}

var errUsage = errors.New("usage")

// run dispatches one CLI invocation, writing its report to w. Factored out
// of main so the end-to-end tests can drive the exact production path.
func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return errUsage
	}
	cmd := args[0]
	fs := flag.NewFlagSet("panda "+cmd, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jobs := fs.Int("j", 1, "parallel rule executions per query (0 = NumCPU)")
	timeout := fs.Duration("timeout", 0, "abort evaluation after this duration (0 = none)")
	if err := fs.Parse(args[1:]); err != nil {
		return errUsage
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return errUsage
	}
	file := rest[0]
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	res, err := panda.Parse(string(src))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Reject flags a subcommand does not honor instead of silently
	// ignoring them: only eval executes rules in parallel, and the pure
	// analysis commands (bounds, widths) have no cancellable phase. The
	// check runs on the user-supplied value, before -j 0 is normalized to
	// NumCPU, so rejection does not depend on the core count.
	if *jobs != 1 && cmd != "eval" {
		return fmt.Errorf("flag -j applies to eval only")
	}
	if *timeout > 0 && (cmd == "bounds" || cmd == "widths") {
		return fmt.Errorf("flag -timeout applies to eval, explain and plan")
	}
	if *jobs == 0 {
		*jobs = runtime.NumCPU()
	}
	switch cmd {
	case "bounds":
		return cmdBounds(w, res)
	case "widths":
		return cmdWidths(w, res)
	case "eval":
		if len(rest) < 2 {
			return errUsage
		}
		return cmdEval(ctx, w, res, string(src), rest[1], *jobs)
	case "explain":
		return cmdExplain(ctx, w, res)
	case "plan":
		return cmdPlan(ctx, w, res)
	default:
		return errUsage
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  panda bounds  <query-file>
  panda widths  <query-file>
  panda eval    [-j N] [-timeout D] <query-file> <data-dir>
  panda explain [-timeout D] <query-file>
  panda plan    [-timeout D] <query-file>`)
	os.Exit(2)
}

// defaultCard is assumed for atoms with no declared cardinality so the
// data-independent planning LPs are bounded; `panda plan` reports the
// assumption.
const defaultCard = 1024

func fmtStep(s *query.Schema, st panda.ProofStep) string {
	w := st.W.RatString()
	switch st.Kind {
	case panda.StepSubmodularity:
		return fmt.Sprintf("%s·s[%s,%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	case panda.StepMonotonicity:
		return fmt.Sprintf("%s·m[%s⊂%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	case panda.StepComposition:
		return fmt.Sprintf("%s·c[%s,%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	default:
		return fmt.Sprintf("%s·d[%s,%s]", w, s.VarLabel(st.B), s.VarLabel(st.A))
	}
}

func printRulePlan(w io.Writer, s *query.Schema, idx int, rp *panda.RulePlan) {
	var targets []string
	for _, b := range rp.Targets {
		targets = append(targets, "T_"+s.VarLabel(b))
	}
	fmt.Fprintf(w, "rule %d: %s\n", idx, strings.Join(targets, " ∨ "))
	if rp.Trivial {
		fmt.Fprintln(w, "  trivial: ∅ target, answered by the unit table")
		return
	}
	fmt.Fprintf(w, "  bound: 2^%s\n", rp.Bound.FloatString(4))
	fmt.Fprintf(w, "  proof sequence (%d steps):\n", len(rp.Seq))
	for _, st := range rp.Seq {
		fmt.Fprintf(w, "    %s\n", fmtStep(s, st))
	}
}

func cmdPlan(ctx context.Context, w io.Writer, res *query.ParseResult) error {
	s := &res.Rule.Schema
	dcs, assumed := panda.DefaultCardinalities(s, res.Constraints, defaultCard)
	if len(assumed) > 0 {
		fmt.Fprintf(w, "# no cardinality declared for %s; assuming ≤ %d\n",
			strings.Join(assumed, ", "), defaultCard)
	}
	if res.Conj == nil {
		rp, err := panda.PrepareRule(res.Rule, dcs)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "prepared disjunctive rule:")
		printRulePlan(w, s, 0, rp)
		return nil
	}
	// Plan through a fresh session planner so the cache ops counters below
	// describe exactly this invocation's planning work; -timeout bounds
	// the LP solves through the context.
	pl := panda.NewPlanner(0)
	pq, err := pl.PrepareModeContext(ctx, res.Conj, dcs, panda.ModeAuto)
	if err != nil {
		return err
	}
	p := pq.Plan()
	widthName := map[panda.PlanMode]string{
		panda.ModeFull: "polymatroid bound",
		panda.ModeFhtw: "da-fhtw",
		panda.ModeSubw: "da-subw",
	}[p.Mode]
	fmt.Fprintf(w, "mode      : %v\n", p.Mode)
	fmt.Fprintf(w, "signature : %x (%d-byte canonical key)\n", keyDigest(p.Key), len(p.Key))
	fmt.Fprintf(w, "width     : %s = %s (log₂ units)\n", widthName, p.Width.FloatString(4))
	if p.Chosen >= 0 {
		td := p.TDs[p.Chosen]
		fmt.Fprintf(w, "tree decomposition (%d of %d enumerated):\n", p.Chosen+1, len(p.TDs))
		for i, b := range td.Bags {
			parent := "root"
			if td.Parent[i] >= 0 {
				parent = fmt.Sprintf("child of %s", s.VarLabel(td.Bags[td.Parent[i]]))
			}
			fmt.Fprintf(w, "  bag %s (%s)\n", s.VarLabel(b), parent)
		}
	} else if len(p.Transversals) > 0 {
		fmt.Fprintf(w, "bag universe: %d bags across %d tree decompositions, %d minimal transversals\n",
			len(p.Bags), len(p.TDs), len(p.Transversals))
	}
	covers, err := p.Covers()
	if err != nil {
		return err
	}
	for _, cov := range covers {
		var terms []string
		for j, wt := range cov.Weights {
			if wt.Sign() != 0 {
				terms = append(terms, fmt.Sprintf("%s=%s", s.Atoms[j].Name, wt.RatString()))
			}
		}
		fmt.Fprintf(w, "cover %s: ρ* = %s  [%s]\n", s.VarLabel(cov.Bag), cov.Value.RatString(), strings.Join(terms, " "))
	}
	for i, rp := range p.Rules {
		printRulePlan(w, s, i, rp)
	}
	// Cache ops counters: what this plan cost (lp-solves) and what a
	// server reusing the cache would save per hit (lp-saved accumulates).
	fmt.Fprintf(w, "planner   : %v\n", pl.Stats())
	return nil
}

// keyDigest is a short stable digest for displaying signature keys.
func keyDigest(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func cmdBounds(w io.Writer, res *query.ParseResult) error {
	if res.Conj != nil {
		rep, err := panda.Bounds(res.Conj, res.Constraints)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "size bounds (log₂ units; |Q| ≤ 2^value):")
		fmt.Fprintf(w, "  vertex bound      : %v\n", rep.Vertex.FloatString(4))
		if rep.IntegralCover != nil {
			fmt.Fprintf(w, "  integral cover ρ  : %v\n", rep.IntegralCover.FloatString(4))
			fmt.Fprintf(w, "  AGM bound ρ*      : %v\n", rep.AGM.FloatString(4))
		}
		fmt.Fprintf(w, "  polymatroid bound : %v\n", rep.Polymatroid.FloatString(4))
		return nil
	}
	b, err := panda.RuleBound(res.Rule, res.Constraints)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "disjunctive rule polymatroid bound: 2^%v\n", b.FloatString(4))
	return nil
}

func cmdWidths(w io.Writer, res *query.ParseResult) error {
	if res.Conj == nil {
		return errors.New("widths apply to conjunctive queries")
	}
	rep, err := panda.Widths(res.Conj)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tw   = %d\n", rep.Treewidth)
	fmt.Fprintf(w, "ghtw = %d\n", rep.GHTW)
	fmt.Fprintf(w, "fhtw = %v\n", rep.FHTW.RatString())
	fmt.Fprintf(w, "subw = %v\n", rep.Subw.RatString())
	fmt.Fprintf(w, "adw  = %v\n", rep.Adw.RatString())
	if len(res.Constraints) > 0 {
		df, err := panda.DaFhtw(res.Conj, res.Constraints)
		if err != nil {
			return err
		}
		ds, err := panda.DaSubw(res.Conj, res.Constraints)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "da-fhtw = %v (log₂ units)\n", df.FloatString(4))
		fmt.Fprintf(w, "da-subw = %v (log₂ units)\n", ds.FloatString(4))
	}
	return nil
}

// cmdEval is the DB path end to end: ingest each referenced <Atom>.csv
// into a session catalog, run the query text through Prepare +
// QueryContext, print the unified result. Every head shape — full,
// Boolean, proper projection (which previously fell through to the
// disjunctive branch and printed T_ tables) and disjunctive rules — routes
// through the same call. Only the atoms the query names are loaded, so
// unrelated files in the data directory are ignored; a relation's CSV may
// be empty (the atom arity comes from the query), but it must exist. The
// context carries the -timeout deadline; -j sets the rule-execution
// parallelism.
func cmdEval(ctx context.Context, w io.Writer, parsed *query.ParseResult, src, dir string, jobs int) error {
	db := panda.Open()
	defer db.Close()
	s := &parsed.Rule.Schema
	for i, a := range s.Atoms {
		if err := db.CreateRelation(a.Name, s.Arity(i)); err != nil {
			if errors.Is(err, panda.ErrRelationExists) {
				continue // self-join: both atoms read one table
			}
			return err
		}
		f, err := os.Open(filepath.Join(dir, a.Name+".csv"))
		if err != nil {
			return fmt.Errorf("relation %s: %w", a.Name, err)
		}
		_, err = db.LoadCSVContext(ctx, a.Name, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	stmt, err := db.Prepare(src)
	if err != nil {
		return err
	}
	res, err := stmt.QueryContext(ctx, panda.WithParallelism(jobs))
	if err != nil {
		return err
	}
	switch {
	case res.Mode == panda.ModeRule:
		targets := make([]panda.Set, 0, len(res.Tables))
		for b := range res.Tables {
			targets = append(targets, b)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, b := range targets {
			fmt.Fprintf(w, "# T_%s: %d tuples\n", s.VarLabel(b), res.Tables[b].Size())
		}
	case res.Rel == nil: // Boolean
		fmt.Fprintf(w, "%v  (max intermediate %d)\n", res.OK, res.Stats.MaxIntermediate)
	case res.Mode == panda.ModeFull:
		fmt.Fprintf(w, "# |Q| = %d  (bound 2^%v, max intermediate %d)\n",
			res.Size(), res.Bound.FloatString(3), res.Stats.MaxIntermediate)
		printRows(w, res.Rows())
	default: // proper projection (da-subw / da-fhtw)
		fmt.Fprintf(w, "# |Q| = %d  (%s 2^%v, max intermediate %d)\n",
			res.Size(), res.Mode, res.Width.FloatString(3), res.Stats.MaxIntermediate)
		printRows(w, res.Rows())
	}
	return nil
}

func printRows(w io.Writer, rows [][]panda.Value) {
	for _, row := range rows {
		strs := make([]string, len(row))
		for i, v := range row {
			strs[i] = strconv.FormatInt(v, 10)
		}
		fmt.Fprintln(w, strings.Join(strs, ","))
	}
}

func cmdExplain(ctx context.Context, w io.Writer, res *query.ParseResult) error {
	// Build a small synthetic instance to drive the planner and show the
	// operator trace.
	ins := panda.RandomInstance(1, &res.Rule.Schema, 32, 8)
	db := panda.Open()
	defer db.Close()
	r, err := db.EvalRuleContext(ctx, res.Rule, ins, res.Constraints, panda.WithTrace(true))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "polymatroid bound: 2^%v\n", r.Bound.FloatString(4))
	fmt.Fprintln(w, "operator trace on a 32-tuple synthetic instance:")
	for _, line := range r.Stats.Trace {
		fmt.Fprintln(w, "  ", line)
	}
	fmt.Fprintf(w, "steps: %v, joins %d, projections %d, partitions %d, restarts %d\n",
		r.Stats.StepsByKind, r.Stats.Joins, r.Stats.Projections, r.Stats.Partitions, r.Stats.Restarts)
	return nil
}
