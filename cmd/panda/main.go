// Command panda is the CLI front end of the library: it parses a query
// file, reports size bounds and width parameters, and optionally evaluates
// the query over CSV relations.
//
// Usage:
//
//	panda bounds  <query-file>
//	panda widths  <query-file>
//	panda eval    <query-file> <data-dir>   # data-dir holds <Atom>.csv files
//	panda explain <query-file>              # proof sequence / plan trace
//	panda plan    <query-file>              # reified prepared-query plan
//
// The query language (see internal/query):
//
//	Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A).
//	T1(A,B,C) v T2(B,C,D) :- R(A,B), S(B,C), T(C,D).
//	|R| <= 1000
//	deg(R: B | A) <= 5
//	fd(S: B -> C)
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"panda"
	"panda/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("panda: ")
	if len(os.Args) < 3 {
		usage()
	}
	cmd, file := os.Args[1], os.Args[2]
	src, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	res, err := panda.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	switch cmd {
	case "bounds":
		cmdBounds(res)
	case "widths":
		cmdWidths(res)
	case "eval":
		if len(os.Args) < 4 {
			usage()
		}
		cmdEval(res, os.Args[3])
	case "explain":
		cmdExplain(res)
	case "plan":
		cmdPlan(res)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  panda bounds  <query-file>
  panda widths  <query-file>
  panda eval    <query-file> <data-dir>
  panda explain <query-file>
  panda plan    <query-file>`)
	os.Exit(2)
}

// defaultCard is assumed for atoms with no declared cardinality so the
// planning LPs are bounded; `panda plan` reports the assumption.
const defaultCard = 1024

// completeConstraints appends |R| ≤ defaultCard for every atom lacking a
// cardinality constraint, returning the completed set and the atom names
// the default was assumed for.
func completeConstraints(s *query.Schema, dcs []panda.Constraint) ([]panda.Constraint, []string) {
	have := map[panda.Set]bool{}
	for _, c := range dcs {
		if c.IsCardinality() {
			have[c.Y] = true
		}
	}
	out := append([]panda.Constraint(nil), dcs...)
	var assumed []string
	for i, a := range s.Atoms {
		if !have[a.Vars] {
			out = append(out, panda.Cardinality(a.Vars, defaultCard, i))
			assumed = append(assumed, a.Name)
		}
	}
	return out, assumed
}

func fmtStep(s *query.Schema, st panda.ProofStep) string {
	w := st.W.RatString()
	switch st.Kind {
	case panda.StepSubmodularity:
		return fmt.Sprintf("%s·s[%s,%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	case panda.StepMonotonicity:
		return fmt.Sprintf("%s·m[%s⊂%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	case panda.StepComposition:
		return fmt.Sprintf("%s·c[%s,%s]", w, s.VarLabel(st.A), s.VarLabel(st.B))
	default:
		return fmt.Sprintf("%s·d[%s,%s]", w, s.VarLabel(st.B), s.VarLabel(st.A))
	}
}

func printRulePlan(s *query.Schema, idx int, rp *panda.RulePlan) {
	var targets []string
	for _, b := range rp.Targets {
		targets = append(targets, "T_"+s.VarLabel(b))
	}
	fmt.Printf("rule %d: %s\n", idx, strings.Join(targets, " ∨ "))
	if rp.Trivial {
		fmt.Println("  trivial: ∅ target, answered by the unit table")
		return
	}
	fmt.Printf("  bound: 2^%s\n", rp.Bound.FloatString(4))
	fmt.Printf("  proof sequence (%d steps):\n", len(rp.Seq))
	for _, st := range rp.Seq {
		fmt.Printf("    %s\n", fmtStep(s, st))
	}
}

func cmdPlan(res *query.ParseResult) {
	s := &res.Rule.Schema
	dcs, assumed := completeConstraints(s, res.Constraints)
	if len(assumed) > 0 {
		fmt.Printf("# no cardinality declared for %s; assuming ≤ %d\n",
			strings.Join(assumed, ", "), defaultCard)
	}
	if res.Conj == nil {
		rp, err := panda.PrepareRule(res.Rule, dcs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("prepared disjunctive rule:")
		printRulePlan(s, 0, rp)
		return
	}
	pq, err := panda.Prepare(res.Conj, dcs)
	if err != nil {
		log.Fatal(err)
	}
	p := pq.Plan()
	widthName := map[panda.PlanMode]string{
		panda.ModeFull: "polymatroid bound",
		panda.ModeFhtw: "da-fhtw",
		panda.ModeSubw: "da-subw",
	}[p.Mode]
	fmt.Printf("mode      : %v\n", p.Mode)
	fmt.Printf("signature : %x (%d-byte canonical key)\n", keyDigest(p.Key), len(p.Key))
	fmt.Printf("width     : %s = %s (log₂ units)\n", widthName, p.Width.FloatString(4))
	if p.Chosen >= 0 {
		td := p.TDs[p.Chosen]
		fmt.Printf("tree decomposition (%d of %d enumerated):\n", p.Chosen+1, len(p.TDs))
		for i, b := range td.Bags {
			parent := "root"
			if td.Parent[i] >= 0 {
				parent = fmt.Sprintf("child of %s", s.VarLabel(td.Bags[td.Parent[i]]))
			}
			fmt.Printf("  bag %s (%s)\n", s.VarLabel(b), parent)
		}
	} else if len(p.Transversals) > 0 {
		fmt.Printf("bag universe: %d bags across %d tree decompositions, %d minimal transversals\n",
			len(p.Bags), len(p.TDs), len(p.Transversals))
	}
	covers, err := p.Covers()
	if err != nil {
		log.Fatal(err)
	}
	for _, cov := range covers {
		var terms []string
		for j, w := range cov.Weights {
			if w.Sign() != 0 {
				terms = append(terms, fmt.Sprintf("%s=%s", s.Atoms[j].Name, w.RatString()))
			}
		}
		fmt.Printf("cover %s: ρ* = %s  [%s]\n", s.VarLabel(cov.Bag), cov.Value.RatString(), strings.Join(terms, " "))
	}
	for i, rp := range p.Rules {
		printRulePlan(s, i, rp)
	}
}

// keyDigest is a short stable digest for displaying signature keys.
func keyDigest(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func cmdBounds(res *query.ParseResult) {
	if res.Conj != nil {
		rep, err := panda.Bounds(res.Conj, res.Constraints)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("size bounds (log₂ units; |Q| ≤ 2^value):")
		fmt.Printf("  vertex bound      : %v\n", rep.Vertex.FloatString(4))
		if rep.IntegralCover != nil {
			fmt.Printf("  integral cover ρ  : %v\n", rep.IntegralCover.FloatString(4))
			fmt.Printf("  AGM bound ρ*      : %v\n", rep.AGM.FloatString(4))
		}
		fmt.Printf("  polymatroid bound : %v\n", rep.Polymatroid.FloatString(4))
		return
	}
	b, err := panda.RuleBound(res.Rule, res.Constraints)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disjunctive rule polymatroid bound: 2^%v\n", b.FloatString(4))
}

func cmdWidths(res *query.ParseResult) {
	if res.Conj == nil {
		log.Fatal("widths apply to conjunctive queries")
	}
	rep, err := panda.Widths(res.Conj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tw   = %d\n", rep.Treewidth)
	fmt.Printf("ghtw = %d\n", rep.GHTW)
	fmt.Printf("fhtw = %v\n", rep.FHTW.RatString())
	fmt.Printf("subw = %v\n", rep.Subw.RatString())
	fmt.Printf("adw  = %v\n", rep.Adw.RatString())
	if len(res.Constraints) > 0 {
		df, err := panda.DaFhtw(res.Conj, res.Constraints)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := panda.DaSubw(res.Conj, res.Constraints)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("da-fhtw = %v (log₂ units)\n", df.FloatString(4))
		fmt.Printf("da-subw = %v (log₂ units)\n", ds.FloatString(4))
	}
}

func loadInstance(s *query.Schema, dir string) (*panda.Instance, error) {
	ins := panda.NewInstance(s)
	for i, a := range s.Atoms {
		path := filepath.Join(dir, a.Name+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", a.Name, err)
		}
		for ln, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			parts := strings.Split(line, ",")
			if len(parts) != a.Vars.Card() {
				return nil, fmt.Errorf("%s line %d: %d fields, want %d", path, ln+1, len(parts), a.Vars.Card())
			}
			row := make([]panda.Value, len(parts))
			for k, p := range parts {
				v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s line %d: %v", path, ln+1, err)
				}
				row[k] = v
			}
			ins.Relations[i].Insert(row)
		}
	}
	return ins, nil
}

func cmdEval(res *query.ParseResult, dir string) {
	ins, err := loadInstance(&res.Rule.Schema, dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := panda.CheckInstance(&res.Rule.Schema, ins, res.Constraints); err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Conj != nil && res.Conj.IsFull():
		out, r, err := panda.EvalFull(res.Conj, ins, res.Constraints, panda.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# |Q| = %d  (bound 2^%v, max intermediate %d)\n",
			out.Size(), r.Bound.FloatString(3), r.Stats.MaxIntermediate)
		for _, row := range out.SortedRows() {
			strs := make([]string, len(row))
			for i, v := range row {
				strs[i] = strconv.FormatInt(v, 10)
			}
			fmt.Println(strings.Join(strs, ","))
		}
	case res.Conj != nil && res.Conj.IsBoolean():
		_, ans, stats, err := panda.EvalSubw(res.Conj, ins, res.Constraints, panda.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v  (max intermediate %d)\n", ans, stats.MaxIntermediate)
	default:
		r, err := panda.EvalRule(res.Rule, ins, res.Constraints, panda.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for b, t := range r.Tables {
			fmt.Printf("# T_%s: %d tuples\n", res.Rule.VarLabel(b), t.Size())
		}
	}
}

func cmdExplain(res *query.ParseResult) {
	// Build a small synthetic instance to drive the planner and show the
	// operator trace.
	ins := panda.RandomInstance(1, &res.Rule.Schema, 32, 8)
	r, err := panda.EvalRule(res.Rule, ins, res.Constraints, panda.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polymatroid bound: 2^%v\n", r.Bound.FloatString(4))
	fmt.Println("operator trace on a 32-tuple synthetic instance:")
	for _, line := range r.Stats.Trace {
		fmt.Println("  ", line)
	}
	fmt.Printf("steps: %v, joins %d, projections %d, partitions %d, restarts %d\n",
		r.Stats.StepsByKind, r.Stats.Joins, r.Stats.Projections, r.Stats.Partitions, r.Stats.Restarts)
}
