package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeWorkdir lays out a query file + CSV data directory in a temp dir and
// returns the directory; the CSVs exercise comments and blank lines.
func writeWorkdir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("R.csv", "1,2\n2,3\n# comment\n\n")
	write("S.csv", "2,5\n")
	write("notes.csv", "not,a,relation\n") // unreferenced files are ignored
	write("full.q", "Q(A,B,C) :- R(A,B), S(B,C).\n")
	write("proj.q", "Q(A,C) :- R(A,B), S(B,C).\n")
	write("bool.q", "Q() :- R(A,B), S(B,C).\n")
	write("rule.q", "T1(A,B) v T2(B,C) :- R(A,B), S(B,C).\n")
	write("bounds.q", "Q(A,B,C) :- R(A,B), S(B,C).\n|R| <= 4\n|S| <= 4\n")
	return dir
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// TestEvalGolden pins the CLI's stdout for every head shape the eval
// command routes — full, proper projection (the shape that used to fall
// through to the disjunctive branch and print T_ tables), Boolean, and a
// genuine disjunctive rule.
func TestEvalGolden(t *testing.T) {
	dir := writeWorkdir(t)
	q := func(name string) string { return filepath.Join(dir, name) }

	if got, want := runCLI(t, "eval", q("full.q"), dir),
		"# |Q| = 1  (bound 2^1.000, max intermediate 1)\n1,2,5\n"; got != want {
		t.Errorf("eval full:\n got %q\nwant %q", got, want)
	}
	// The routing fix: a proper projection prints projected answer rows.
	// Cost-based ModeAuto picks fhtw here: the query is acyclic, so the
	// fhtw and subw certificates tie and the cheaper plan wins.
	if got, want := runCLI(t, "eval", q("proj.q"), dir),
		"# |Q| = 1  (fhtw 2^1.000, max intermediate 0)\n1,5\n"; got != want {
		t.Errorf("eval projection:\n got %q\nwant %q", got, want)
	}
	if got, want := runCLI(t, "eval", q("bool.q"), dir),
		"true  (max intermediate 0)\n"; got != want {
		t.Errorf("eval boolean:\n got %q\nwant %q", got, want)
	}
	if got, want := runCLI(t, "eval", q("rule.q"), dir),
		"# T_AB: 2 tuples\n# T_BC: 0 tuples\n"; got != want {
		t.Errorf("eval rule:\n got %q\nwant %q", got, want)
	}
}

func TestBoundsGolden(t *testing.T) {
	dir := writeWorkdir(t)
	want := `size bounds (log₂ units; |Q| ≤ 2^value):
  vertex bound      : 6.0000
  integral cover ρ  : 4.0000
  AGM bound ρ*      : 4.0000
  polymatroid bound : 4.0000
`
	if got := runCLI(t, "bounds", filepath.Join(dir, "bounds.q")); got != want {
		t.Errorf("bounds:\n got %q\nwant %q", got, want)
	}
}

// signatureLine hides the content-dependent digest so the plan golden only
// pins the report structure and the exact plan facts.
var signatureLine = regexp.MustCompile(`signature : [0-9a-f]+ \(\d+-byte canonical key\)`)

func TestPlanGolden(t *testing.T) {
	dir := writeWorkdir(t)
	got := signatureLine.ReplaceAllString(
		runCLI(t, "plan", filepath.Join(dir, "bounds.q")), "signature : <sig>")
	want := `mode      : full
signature : <sig>
width     : polymatroid bound = 4.0000 (log₂ units)
cover ABC: ρ* = 2  [R=1 S=1]
rule 0: T_ABC
  bound: 2^4.0000
  proof sequence (3 steps):
    1·d[AB,B]
    1·s[AB,BC]
    1·c[BC,ABC]
planner   : hits=0 misses=1 evictions=0 lp-solves=1 lp-saved=0 plans-built=1
`
	if got != want {
		t.Errorf("plan:\n got %q\nwant %q", got, want)
	}
}

// TestEvalFlags: -j fans the independent rule executions out without
// changing the printed result, and -timeout aborts evaluation through
// context cancellation with the context's error.
func TestEvalFlags(t *testing.T) {
	dir := writeWorkdir(t)
	q := filepath.Join(dir, "bool.q")
	seq := runCLI(t, "eval", q, dir)
	par := runCLI(t, "eval", "-j", "0", q, dir)
	if par != seq {
		t.Errorf("parallel eval diverges:\n got %q\nwant %q", par, seq)
	}
	var buf strings.Builder
	if err := run([]string{"eval", "-timeout", "1ns", q, dir}, &buf); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: got %v, want context.DeadlineExceeded", err)
	}
}

// TestEvalErrors ports the historical loadInstance error coverage onto the
// DB ingest path: missing CSV, wrong arity, non-integer field.
func TestEvalErrors(t *testing.T) {
	dir := t.TempDir()
	qfile := filepath.Join(dir, "q.q")
	if err := os.WriteFile(qfile, []byte("Q(A,B) :- R(A,B).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"eval", qfile, dir}, &buf); err == nil {
		t.Fatal("missing CSV accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"eval", qfile, dir}, &buf); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte("1,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"eval", qfile, dir}, &buf); err == nil {
		t.Fatal("non-integer accepted")
	}
}
