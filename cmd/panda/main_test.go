package main

import (
	"os"
	"path/filepath"
	"testing"

	"panda"
)

func TestLoadInstance(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("R.csv", "1,2\n2,3\n# comment\n\n")
	write("S.csv", "2,5\n")
	res, err := panda.Parse(`Q(A,B,C) :- R(A,B), S(B,C).`)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := loadInstance(&res.Rule.Schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Relations[0].Size() != 2 || ins.Relations[1].Size() != 1 {
		t.Fatalf("sizes %d, %d", ins.Relations[0].Size(), ins.Relations[1].Size())
	}
	out, _, err := panda.EvalFull(res.Conj, ins, res.Constraints, panda.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 || !out.Contains([]panda.Value{1, 2, 5}) {
		t.Fatalf("eval: %v", out.SortedRows())
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	dir := t.TempDir()
	res, err := panda.Parse(`Q(A,B) :- R(A,B).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadInstance(&res.Rule.Schema, dir); err == nil {
		t.Fatal("missing CSV accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInstance(&res.Rule.Schema, dir); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte("1,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInstance(&res.Rule.Schema, dir); err == nil {
		t.Fatal("non-integer accepted")
	}
}
