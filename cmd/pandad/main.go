// Command pandad is the long-lived PANDA query server: one process holds a
// panda.DB session (catalog + shared plan cache) and answers HTTP/JSON
// query traffic through internal/server. Repeated queries — including
// variable renamings — are served from the plan cache with zero LP solves;
// GET /metrics exports the planner counters that prove it.
//
// Usage:
//
//	pandad [-addr :8080] [-j N] [-timeout D] [-planner-cap N] [-stmt-cap N]
//	       [-load-dir DIR] [-plan-dir DIR] [-snapshot-every D]
//	       [-shape-cap N] [-slow-query-threshold D] [-pprof]
//
// -j bounds how many independent rule executions run concurrently per query
// (0 picks the number of CPUs); -timeout caps each request's context (a
// query that overruns it is cancelled between proof steps and reported as
// 504); -planner-cap sizes the plan cache; -load-dir bootstraps the catalog
// from a directory of <relation>.csv files, the same convention as
// `panda eval`.
//
// -plan-dir makes the plan cache persistent: boot warm-loads the snapshot
// at DIR/plans.json (so queries planned by a previous run execute with
// zero LP solves — watch panda_planner_lp_solves_saved_total grow while
// panda_planner_lp_solves_total stays flat), and the cache is snapshotted
// back every -snapshot-every (0 disables the timer) plus once during
// graceful shutdown. The same snapshot format ships over GET/PUT
// /v1/plans, so a fleet can also be warmed over HTTP from one planning
// tier.
//
// Observability: GET /metrics exposes latency histograms and per-shape
// series keyed by plan signature digest (cardinality bounded by
// -shape-cap, with an "other" rollup); GET /v1/shapes is the JSON view.
// -slow-query-threshold emits one structured JSON line to stderr for every
// query at or over the threshold; -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, in-flight
// queries drain, the plan cache is snapshotted, then the session closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"panda"
	"panda/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pandad: ")

	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", 1, "parallel rule executions per query (0 = NumCPU)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
	plannerCap := flag.Int("planner-cap", 0, "plan-cache capacity (0 = default)")
	stmtCap := flag.Int("stmt-cap", 0, "prepared-statement cache capacity (0 = default)")
	loadDir := flag.String("load-dir", "", "bootstrap the catalog from *.csv files in this directory")
	planDir := flag.String("plan-dir", "", "persist the plan cache in this directory (warm-load on boot, snapshot on shutdown)")
	snapEvery := flag.Duration("snapshot-every", 5*time.Minute, "how often to snapshot the plan cache to -plan-dir (0 = only on shutdown)")
	drain := flag.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight queries")
	shapeCap := flag.Int("shape-cap", 0, "per-shape telemetry table capacity (0 = default)")
	slowQuery := flag.Duration("slow-query-threshold", 0, "log queries at least this slow as JSON lines on stderr (0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	name := flag.String("name", "", "replica identity reported by /v1/info (useful behind pandarouter)")
	flag.Parse()
	if *jobs == 0 {
		*jobs = runtime.NumCPU()
	}

	opts := []panda.Option{panda.WithPlannerCapacity(*plannerCap), panda.WithParallelism(*jobs)}
	if *planDir != "" {
		opts = append(opts, panda.WithPlanDir(*planDir))
	}
	db := panda.Open(opts...)
	defer db.Close()
	if *planDir != "" {
		stats, err := db.PlanLoadResult()
		switch {
		case err != nil:
			log.Printf("plan warm-load from %s failed (serving cold): %v", *planDir, err)
		case stats.Skipped > 0:
			log.Printf("plan warm-load from %s: %v — re-planning %d skipped signatures in the background", *planDir, stats, len(stats.SkippedKeys))
			// The cross-version migration shim: a snapshot written by an
			// older (or newer) binary names the signatures it had to drop,
			// and each key fully encodes its canonical query — so rebuild
			// them off the serving path instead of re-paying their LP
			// solves one traffic-time cache miss at a time. The key list
			// is bounded by the load-stats cap.
			if len(stats.SkippedKeys) > 0 {
				go func(keys []string) {
					n, solves, err := db.ReplanSignatures(context.Background(), keys)
					if err != nil {
						log.Printf("background replan: %d/%d signatures rebuilt (%d LP solves), aborted: %v", n, len(keys), solves, err)
						return
					}
					log.Printf("background replan: %d signatures rebuilt (%d LP solves)", n, solves)
				}(stats.SkippedKeys)
			}
		default:
			log.Printf("plan cache primed with %d plans from %s", stats.Loaded, *planDir)
		}
	}
	if *loadDir != "" {
		if err := db.LoadCSVDir(*loadDir); err != nil {
			log.Fatal(err)
		}
		infos, err := db.Relations()
		if err != nil {
			log.Fatal(err)
		}
		for _, in := range infos {
			log.Printf("loaded %s: arity %d, %d tuples", in.Name, in.Arity, in.Size)
		}
	}

	srv := server.New(server.Config{
		DB:                 db,
		Timeout:            *timeout,
		StmtCacheSize:      *stmtCap,
		ShapeTableSize:     *shapeCap,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       os.Stderr,
		Pprof:              *pprofOn,
		Name:               *name,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *planDir != "" && *snapEvery > 0 {
		go func() {
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := db.SnapshotPlans(); err != nil {
						log.Printf("plan snapshot: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (j=%d, timeout=%v)", *addr, *jobs, *timeout)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight queries")
	shctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("listener shutdown: %v", err)
	}
	if err := srv.Shutdown(shctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if *planDir != "" {
		if err := db.SnapshotPlans(); err != nil {
			log.Printf("plan snapshot: %v", err)
		} else {
			log.Printf("plan cache snapshotted: %d plans in %s", db.Planner().Len(), *planDir)
		}
	}
}
