// Command pandarouter fronts a fleet of pandad replicas with shape-affine
// routing and fleet-wide plan shipping. It speaks the pandad wire protocol,
// so clients point at the router exactly as they would at one pandad:
//
//	pandarouter -addr :8080 \
//	    -planner  http://planner:8080 \
//	    -replicas http://replica-a:8080,http://replica-b:8080
//
// Every /v1/query and /v1/plan is routed by the query's canonical shape
// (the renaming-invariant plan signature, computed on the router without
// catalog access or LP work) via rendezvous hashing, so each query shape
// consistently lands on one replica and the fleet's plan/stmt caches stay
// hot and disjoint. New shapes are planned once on the designated planning
// tier and the fresh plans are shipped to every replica (delta pulls over
// GET /v1/plans?since=, imports over PUT /v1/plans) before the query is
// forwarded — replicas serve with zero LP solves. Replicas are probed on
// /healthz; a failed or draining replica is failed over with one bounded
// retry per downed candidate, and its query shapes move wholesale to their
// next-ranked replica (rendezvous hashing moves nothing else).
//
// Catalog mutations are broadcast to the planning tier and all replicas.
// GET /metrics exposes per-replica and per-shape routing counters;
// GET /v1/info reports replica health and push watermarks.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"panda/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pandarouter: ")

	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	planner := flag.String("planner", "", "planning-tier base URL (required)")
	pushEvery := flag.Duration("push-every", 2*time.Second, "background plan delta push period")
	probeEvery := flag.Duration("probe-every", 500*time.Millisecond, "replica health probe period")
	proxyTimeout := flag.Duration("proxy-timeout", 30*time.Second, "per-attempt proxy deadline")
	drain := flag.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()

	var names []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			names = append(names, strings.TrimRight(r, "/"))
		}
	}
	rt, err := router.New(router.Config{
		Replicas:     names,
		Planner:      strings.TrimRight(*planner, "/"),
		PushEvery:    *pushEvery,
		ProbeEvery:   *probeEvery,
		ProxyTimeout: *proxyTimeout,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	hs := &http.Server{Addr: *addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (planner=%s, replicas=%s)", *addr, *planner, strings.Join(names, ","))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("listener shutdown: %v", err)
	}
}
