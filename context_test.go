package panda

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Tests for the context-first execution surface: cancellation/deadline
// plumbing through QueryContext, and golden parity between parallel and
// sequential execution (the -race runs of these tests double as the data
//-race check on the worker-pool fan-out).

// TestQueryContextPreCancelled: an already-cancelled context aborts before
// any planning or execution work.
func TestQueryContextPreCancelled(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 8)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, fourCycleSrc); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: got %v, want context.Canceled", err)
	}
	if st := db.PlannerStats(); st.Misses != 0 || st.LPSolves != 0 {
		t.Fatalf("cancelled query still planned: %v", st)
	}
	// EvalRuleContext honors the context too.
	p := PathRule()
	rins := RandomInstance(5, &p.Schema, 32, 8)
	if _, err := db.EvalRuleContext(ctx, p, rins, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled rule: got %v, want context.Canceled", err)
	}
}

// TestQueryContextMidExecutionCancel: cancelling while the engine is
// interpreting the proof sequence returns context.Canceled promptly — the
// run aborts at the next proof step instead of materializing the m² join.
func TestQueryContextMidExecutionCancel(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 400) // m² = 160000-tuple output if left to run
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	stmt, err := db.Prepare(fourCycleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = stmt.QueryContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-execution cancel: got %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation was not prompt: took %v", elapsed)
	}
}

// TestQueryContextDeadline: an expired deadline surfaces as
// context.DeadlineExceeded through the same path.
func TestQueryContextDeadline(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 400)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := db.QueryContext(ctx, fourCycleSrc); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: got %v, want context.DeadlineExceeded", err)
	}
}

// TestParallelGoldenParity: WithParallelism(NumCPU) must produce results
// byte-identical to sequential execution — rows, OK, width, and the merged
// stats (operator trace order included) — on every golden fixture.
func TestParallelGoldenParity(t *testing.T) {
	cores := runtime.NumCPU()
	if cores < 2 {
		cores = 2
	}
	fixtures := []struct {
		name string
		src  string
		load func(t *testing.T, db *DB)
		opts []Option
	}{
		{
			name: "4-cycle full",
			src:  fourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := FourCycleQuery()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 12))
			},
		},
		{
			name: "4-cycle full fhtw", // multi-bag fan-out with output rows
			src:  fourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := FourCycleQuery()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 12))
			},
			opts: []Option{WithMode(ModeFhtw)},
		},
		{
			name: "boolean 4-cycle", // subw: per-transversal fan-out
			src:  booleanFourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := BooleanFourCycle()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 16))
			},
		},
		{
			name: "triangle",
			src:  triangleSrc,
			load: func(t *testing.T, db *DB) {
				q := TriangleQuery()
				loadCatalog(t, db, &q.Schema, RandomInstance(8, &q.Schema, 50, 12))
			},
		},
		{
			name: "disjunctive path rule",
			src:  pathRuleSrc,
			load: func(t *testing.T, db *DB) {
				p := PathRule()
				loadCatalog(t, db, &p.Schema, RandomInstance(3, &p.Schema, 40, 8))
			},
		},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			db := Open(WithTrace(true))
			defer db.Close()
			fx.load(t, db)
			seq, err := db.Query(fx.src, fx.opts...)
			if err != nil {
				t.Fatal(err)
			}
			par, err := db.QueryContext(context.Background(), fx.src,
				append([]Option{WithParallelism(cores)}, fx.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Rows(), par.Rows()) {
				t.Fatalf("rows diverge: %d sequential vs %d parallel", len(seq.Rows()), len(par.Rows()))
			}
			if seq.OK != par.OK {
				t.Fatalf("OK diverges: %v vs %v", seq.OK, par.OK)
			}
			if seq.Width.Cmp(par.Width) != 0 || seq.Mode != par.Mode {
				t.Fatalf("certificate diverges: %v/%v vs %v/%v", seq.Width, seq.Mode, par.Width, par.Mode)
			}
			if seq.Stats.MaxIntermediate != par.Stats.MaxIntermediate {
				t.Fatalf("max intermediate diverges: %d vs %d",
					seq.Stats.MaxIntermediate, par.Stats.MaxIntermediate)
			}
			if !reflect.DeepEqual(seq.Stats.Trace, par.Stats.Trace) {
				t.Fatal("operator traces diverge: parallel merge is not deterministic")
			}
		})
	}
}

// TestParallelCancellation: a cancelled context aborts the worker pool and
// surfaces ctx.Err() from a parallel run as well. The fixture is the full
// 4-cycle worst case under ModeFhtw — each bag rule materializes an
// m²-tuple intermediate, so the run cannot finish before the cancel (the
// Boolean subw variant is exactly the query the paper makes fast, and
// completes too quickly to race a timer against).
func TestParallelCancellation(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 400)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := db.QueryContext(ctx, fourCycleSrc, WithParallelism(4), WithMode(ModeFhtw))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel cancel: got %v, want context.Canceled", err)
	}
}

// TestLoadCSVContext: ingest honors its context.
func TestLoadCSVContext(t *testing.T) {
	db := Open()
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.LoadCSVContext(ctx, "R", strings.NewReader("1,2\n")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest: got %v, want context.Canceled", err)
	}
	if _, err := db.Query("Q(A,B) :- R(A,B)."); !errors.Is(err, ErrUnknownRelation) {
		t.Fatal("cancelled ingest still created the relation")
	}
}
