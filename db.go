package panda

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"panda/internal/bitset"
	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

// DB is a long-lived query session in the spirit of database/sql: it owns a
// catalog of named relations (create / insert / CSV ingest / drop) and a
// shared Planner, and answers the textual query language through one
// unified path — db.Prepare(src) parses a query into a *Stmt, and
// stmt.QueryContext(ctx) / db.QueryContext(ctx, src) run cache-hit planning
// plus execution, returning a single *Result shape for full, Boolean and
// projection conjunctive queries and disjunctive datalog rules alike. The
// context-free Query/Eval forms delegate with context.Background();
// serving-grade callers should pass a context so queries honor
// cancellation and deadlines, and may set WithParallelism to fan a plan's
// independent rule executions out across goroutines.
//
// A DB is safe for concurrent use by multiple goroutines. The planning
// phase (LP solves, proof sequences, decomposition choice) is cached in the
// session's Planner keyed by a renaming-invariant canonical signature, so
// repeated traffic against an unchanged catalog — including queries that
// merely rename variables — pays planning once and executes with zero LP
// solves thereafter. (Mutating a relation a query reads changes its
// derived cardinality constraint and therefore the plan key: the next run
// replans against the new sizes, by design.)
type DB struct {
	mu       sync.RWMutex
	planner  *Planner
	catalog  map[string]*relation.Relation // column i ↔ attribute i
	version  uint64                        // bumped on every catalog mutation
	defaults config
	closed   bool

	// Watch maintainers register a wakeup channel here; every catalog
	// mutation (and Close) pokes each one with a non-blocking send. The
	// registry is guarded by its own mutex so notification never contends
	// with the catalog lock.
	watchMu   sync.Mutex
	watchers  map[uint64]chan struct{}
	nextWatch uint64

	// planLoad records what Open's WithPlanDir warm-load did, so embedders
	// (pandad's boot log) can surface skipped or failed snapshots instead
	// of silently serving cold.
	planLoadStats PlanCacheLoadStats
	planLoadErr   error
}

// config carries the tunables of a DB and of one query run. Functional
// options replace the bare Options struct at the DB surface; Open sets
// session defaults and each Query/Eval call may override them.
type config struct {
	mode          PlanMode
	core          Options
	parallelism   int
	partitions    int
	plannerCap    int
	planDir       string
	watchQueue    int
	watchFallback bool
}

// Option tunes a DB (at Open) or a single query run (at Prepare / Query /
// Eval), overriding the session defaults.
type Option func(*config)

// WithMode selects the evaluation strategy: ModeAuto (default) picks
// ModeFull for full queries and otherwise compares the exact fhtw and
// subw width certificates, committing the smaller (ties go to the cheaper
// fhtw execution); ModeFull / ModeFhtw / ModeSubw force a strategy.
// Disjunctive rules take no mode: an explicit per-call WithMode on a rule
// fails with ErrNotConjunctive, while a session-wide default set at Open
// is ignored for rules.
func WithMode(m PlanMode) Option { return func(c *config) { c.mode = m } }

// WithTrace records one line per relational operation in Result.Stats.Trace.
func WithTrace(on bool) Option { return func(c *config) { c.core.Trace = on } }

// WithCheckInvariants validates the degree-support invariant and the
// potential inequality before every engine step (slow; exact arithmetic).
func WithCheckInvariants(on bool) Option { return func(c *config) { c.core.CheckInvariants = on } }

// WithBudgetDisabled turns off the 2^OBJ composition budget (the ablation
// switch): outputs stay correct but the runtime guarantee is forfeited.
func WithBudgetDisabled(on bool) Option { return func(c *config) { c.core.DisableBudget = on } }

// WithStageTimings records wall-clock stage timings — prepare-wait,
// per-proof-step-kind engine time, rule fan-out, merge — into
// Result.Timings. Off by default; when off, the execution path makes no
// clock calls. Timings are observability data, not part of the
// deterministic result: they vary run to run even though the rows, Stats
// and trace stay byte-identical.
func WithStageTimings(on bool) Option { return func(c *config) { c.core.StageTimings = on } }

// WithParallelism bounds how many of a plan's independent tasks — per-bag
// (ModeFhtw) and per-transversal (ModeSubw) rule executions, per-partition
// executions of a single rule (see WithPartitions), and the final
// per-decomposition Yannakakis passes of ModeSubw — may run concurrently;
// n ≤ 1 (the default) executes sequentially. The pool size is chosen per
// plan by a cost model (task count × certificate bound × input
// cardinalities), so cheap plans skip the pool. The fan-out is
// deterministic — results are merged in rule-index-then-partition-index
// order, so the output rows, OK answer, Width and Stats are byte-identical
// to a sequential run of the same configuration. Usable both as a session
// default at Open and per call.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithPartitions splits each rule execution's data into n co-partitioned
// hash partitions: atoms covering the partition key (the most-covered join
// variable) are hash-partitioned on it, the rest are replicated, and the
// rule runs once per partition — inside the WithParallelism pool when one
// is configured. The merged result is exact: output rows, OK answer, width
// and mode match an unpartitioned run, and for a fixed n the run is fully
// deterministic at any parallelism (intermediate Stats may differ between
// different n — a partitioned proof does different, smaller work).
// n = 0 (the default) falls back to per-relation partition hints recorded
// with DB.SetPartitionHint; n = 1 forces unpartitioned execution even when
// hints are present. Usable both as a session default at Open and per call.
func WithPartitions(n int) Option { return func(c *config) { c.partitions = n } }

// WithPlannerCapacity sizes the session's plan-cache LRU (0 selects the
// default capacity). Effective at Open only.
func WithPlannerCapacity(n int) Option { return func(c *config) { c.plannerCap = n } }

// WithPlanDir makes the session's plan cache persistent under dir:
// Open warm-loads the snapshot at <dir>/plans.json when one exists
// (best-effort — a missing, stale-version or corrupted snapshot is skipped,
// never fatal), and SnapshotPlans writes the current cache back atomically.
// Queries whose plans were loaded execute with zero LP solves, which is the
// warm-restart guarantee pandad builds on. Effective at Open only.
func WithPlanDir(dir string) Option { return func(c *config) { c.planDir = dir } }

// withOptions folds a legacy Options struct into the config; the deprecated
// wrappers use it to route through the DB path unchanged.
func withOptions(o Options) Option { return func(c *config) { c.core = o } }

// Open creates an empty session. Options set session-wide defaults; per-call
// options on Query/Prepare/Eval override them.
func Open(opts ...Option) *DB {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{
		planner:  NewPlanner(cfg.plannerCap),
		catalog:  map[string]*relation.Relation{},
		defaults: cfg,
	}
	if cfg.planDir != "" {
		// Warm-load is best-effort by design: a fresh directory has no
		// snapshot yet, and a bad one must not keep the session from
		// opening. The outcome is recorded for PlanLoadResult so a failed
		// or partially skipped warm start stays observable.
		db.planLoadStats, db.planLoadErr = db.LoadPlanDir()
	}
	return db
}

// PlanLoadResult reports what the WithPlanDir warm-load at Open did: the
// load stats (entries loaded/skipped/duplicated, first rejection reason)
// and the container-level error, if any. Zero values mean no plan
// directory was configured or no snapshot existed yet.
func (db *DB) PlanLoadResult() (PlanCacheLoadStats, error) {
	return db.planLoadStats, db.planLoadErr
}

// newSession wraps an existing planner in a catalog-less DB; the deprecated
// package-level wrappers share the default planner through one of these.
func newSession(pl *Planner) *DB {
	return &DB{planner: pl, catalog: map[string]*relation.Relation{}}
}

// Close drops the catalog and marks the session closed; subsequent calls
// return ErrClosed. Closing an already-closed DB is a no-op.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.catalog = nil
	db.mu.Unlock()
	// Wake every watch maintainer so it observes the closed session and
	// terminates instead of blocking until the next mutation (which will
	// never come).
	db.notifyWatchers()
	return nil
}

// Planner exposes the session's shared planner (for stats and Reset).
func (db *DB) Planner() *Planner { return db.planner }

// PlannerStats snapshots the session planner's hit/miss/LP counters; a
// query server's ops surface polls this to watch cache effectiveness.
func (db *DB) PlannerStats() PlannerStats { return db.planner.Stats() }

// cfg materializes the effective config for one call.
func (db *DB) cfg(opts []Option) config {
	c := db.defaults
	for _, o := range opts {
		o(&c)
	}
	return c
}

// ---- Catalog ----

// RelationInfo describes one catalog relation.
type RelationInfo struct {
	Name  string
	Arity int
	Size  int
}

// MaxArity bounds catalog relation arities (the bitset variable universe).
const MaxArity = 32

func checkArity(arity int) error {
	if arity < 1 || arity > MaxArity {
		return fmt.Errorf("%w: arity %d outside [1, %d]", ErrArity, arity, MaxArity)
	}
	return nil
}

// CreateRelation adds an empty relation with the given arity to the
// catalog. It fails with ErrRelationExists on a duplicate name.
func (db *DB) CreateRelation(name string, arity int) error {
	if err := checkArity(arity); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.catalog[name]; dup {
		return fmt.Errorf("%w: %s", ErrRelationExists, name)
	}
	t := relation.New(name, bitset.Full(arity))
	db.catalog[name] = t
	db.version++
	t.Stamp(db.version)
	db.notifyWatchers()
	return nil
}

// SetPartitionHint records a partition count on a catalog relation: queries
// touching the relation default to executing data-parallel over k hash
// partitions (the largest hint among a query's relations wins; an explicit
// WithPartitions on the session or call overrides hints entirely). k ≤ 1
// clears the hint. The hint is metadata — it never changes query results,
// only how the work is split — but it does bump the relation's version so
// prepared statements re-bind and pick it up.
func (db *DB) SetPartitionHint(name string, k int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	t, ok := db.catalog[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	if k <= 1 {
		k = 0
	}
	if t.PartitionHint() == k {
		return nil
	}
	t.SetPartitionHint(k)
	db.version++
	t.Stamp(db.version)
	db.notifyWatchers()
	return nil
}

// DropRelation removes a relation from the catalog.
func (db *DB) DropRelation(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.catalog[name]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	delete(db.catalog, name)
	db.version++
	db.notifyWatchers()
	return nil
}

// Insert adds tuples (in the relation's declared column order) with set
// semantics; duplicates are ignored.
func (db *DB) Insert(name string, rows ...[]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	t, ok := db.catalog[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	// Validate every row before mutating so the insert is atomic: a
	// partial insert that errored out would otherwise leave the catalog
	// changed without a version bump, and cached statement snapshots
	// would keep serving the pre-insert state.
	arity := t.Attrs().Card()
	for _, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("%w: tuple %v has %d values, relation %s needs %d",
				ErrArity, row, len(row), name, arity)
		}
	}
	for _, row := range rows {
		t.Insert(row)
	}
	db.version++
	t.Stamp(db.version)
	db.notifyWatchers()
	return nil
}

// Relations lists the catalog, sorted by name. It fails with ErrClosed
// after Close so an empty catalog and a closed session stay
// distinguishable.
func (db *DB) Relations() ([]RelationInfo, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	out := make([]RelationInfo, 0, len(db.catalog))
	for name, t := range db.catalog {
		out = append(out, RelationInfo{Name: name, Arity: t.Attrs().Card(), Size: t.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ---- CSV ingest (lifted out of cmd/panda) ----

// LoadCSV reads comma-separated integer tuples into the named relation; it
// is LoadCSVContext under context.Background().
func (db *DB) LoadCSV(name string, r io.Reader) (int, error) {
	return db.LoadCSVContext(context.Background(), name, r)
}

// LoadCSVContext reads comma-separated integer tuples into the named
// relation, creating it (with the first row's arity) when absent. Blank
// lines and lines starting with # are skipped. The load is atomic: on any
// parse or arity error — or a cancelled context — nothing is inserted and
// no relation is created. It returns the number of data rows read (before
// set-semantics deduplication). Cancellation is checked periodically while
// parsing, so a large ingest aborts promptly with ctx.Err().
func (db *DB) LoadCSVContext(ctx context.Context, name string, r io.Reader) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	// Stage and validate every row before touching the catalog.
	var rows [][]Value
	var lines []int
	for ln, line := range strings.Split(string(data), "\n") {
		if ln%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		row := make([]Value, len(parts))
		for k, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("relation %s line %d: %v", name, ln+1, err)
			}
			row[k] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return 0, fmt.Errorf("%w: relation %s line %d: %d fields, want %d",
				ErrArity, name, ln+1, len(row), len(rows[0]))
		}
		rows = append(rows, row)
		lines = append(lines, ln+1)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	t := db.catalog[name]
	if t == nil {
		if len(rows) == 0 {
			return 0, fmt.Errorf("relation %s: no rows to infer an arity from", name)
		}
		if err := checkArity(len(rows[0])); err != nil {
			return 0, fmt.Errorf("relation %s line %d: %w", name, lines[0], err)
		}
		// A fresh relation gets the bulk path: the whole row set is known, so
		// build into preallocated columns instead of growing insert by insert.
		b := relation.NewBuilder(name, bitset.Full(len(rows[0])), len(rows))
		for _, row := range rows {
			b.Add(row)
		}
		t = b.Build()
		db.catalog[name] = t
	} else {
		if len(rows) > 0 && len(rows[0]) != t.Attrs().Card() {
			return 0, fmt.Errorf("%w: relation %s line %d: %d fields, want %d",
				ErrArity, name, lines[0], len(rows[0]), t.Attrs().Card())
		}
		for _, row := range rows {
			t.Insert(row)
		}
	}
	db.version++
	t.Stamp(db.version)
	db.notifyWatchers()
	return len(rows), nil
}

// LoadCSVFile loads one <name>.csv file; the relation name is the base name
// without the extension.
func (db *DB) LoadCSVFile(path string) (string, int, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	f, err := os.Open(path)
	if err != nil {
		return name, 0, err
	}
	defer f.Close()
	n, err := db.LoadCSV(name, f)
	if err != nil {
		return name, n, fmt.Errorf("%s: %w", path, err)
	}
	return name, n, nil
}

// LoadCSVDir loads every *.csv file in dir as a relation named after the
// file. This is the CLI's data-dir convention, available to any embedder.
// Each file loads atomically (see LoadCSV), but a failure mid-directory
// leaves relations from earlier files in the catalog.
func (db *DB) LoadCSVDir(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("panda: no *.csv files in %s", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, _, err := db.LoadCSVFile(p); err != nil {
			return err
		}
	}
	return nil
}

// ---- Plan persistence ----

// PlanSnapshotFile is the file name SnapshotPlans writes (and Open's
// warm-load reads) inside the WithPlanDir directory.
const PlanSnapshotFile = "plans.json"

// SavePlans writes the session planner's cached plans to w in the
// versioned panda-plan-cache format. Another session — a restarted server,
// or a replica fed from a planning tier — re-seeds from it with LoadPlans
// and answers the covered queries with zero LP solves.
func (db *DB) SavePlans(w io.Writer) error {
	if db.isClosed() {
		return ErrClosed
	}
	return db.planner.SaveCache(w)
}

// LoadPlans imports a plan-cache snapshot into the session planner.
// Entries with a format-version or digest mismatch — or keys the cache
// already holds — are skipped, never fatal; the stats report the split and
// the first rejection reason.
func (db *DB) LoadPlans(r io.Reader) (PlanCacheLoadStats, error) {
	if db.isClosed() {
		return PlanCacheLoadStats{}, ErrClosed
	}
	return db.planner.LoadCache(r)
}

// SavePlansSince writes only the plans installed after the given cache
// clock — see DB.PlanClock. since = 0 is a full snapshot. The fleet tier
// pulls deltas with this (via GET /v1/plans?since=) so pushes to replicas
// stay proportional to what was planned since the last pull, not to the
// whole cache.
func (db *DB) SavePlansSince(w io.Writer, since uint64) error {
	if db.isClosed() {
		return ErrClosed
	}
	return db.planner.SaveCacheSince(w, since)
}

// PlanClock reports the session planner's cache clock: a monotone count of
// plan installs (fresh builds plus imports; never reset). A consumer that
// remembers the clock from a snapshot envelope and later calls
// SavePlansSince with it receives exactly the plans installed in between.
func (db *DB) PlanClock() uint64 {
	if db.isClosed() {
		return 0
	}
	return db.planner.CacheClock()
}

// ReplanSignatures rebuilds plans from their canonical signature keys — the
// cross-version migration shim. A signature key completely encodes its
// canonical query shape, constraint set and mode, so the dropped entries a
// version-mismatched snapshot reports in SkippedKeys can be re-planned here
// (paying their LP solves once, off the traffic path) instead of lazily at
// query time. Keys already cached are free no-ops. It returns the number of
// plans now live for the given keys and the total LP solves paid; the first
// unparseable or unplannable key aborts with an error (the keys come from
// our own snapshots, so any failure is worth surfacing loudly).
func (db *DB) ReplanSignatures(ctx context.Context, keys []string) (replanned int, lpSolves int, err error) {
	if db.isClosed() {
		return 0, 0, ErrClosed
	}
	for _, key := range keys {
		solves, err := db.planner.inner.ReplanKey(ctx, key)
		if err != nil {
			return replanned, lpSolves, err
		}
		replanned++
		lpSolves += solves
	}
	return replanned, lpSolves, nil
}

// PlanDir returns the plan-persistence directory configured at Open, or ""
// when the session is not persistent.
func (db *DB) PlanDir() string { return db.defaults.planDir }

// LoadPlanDir loads the PlanSnapshotFile snapshot from the configured plan
// directory. A missing snapshot is not an error (the directory simply has
// not been written yet); a session without a plan directory is.
func (db *DB) LoadPlanDir() (PlanCacheLoadStats, error) {
	dir := db.defaults.planDir
	if dir == "" {
		return PlanCacheLoadStats{}, fmt.Errorf("panda: session has no plan directory (use WithPlanDir)")
	}
	f, err := os.Open(filepath.Join(dir, PlanSnapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return PlanCacheLoadStats{}, nil
		}
		return PlanCacheLoadStats{}, err
	}
	defer f.Close()
	return db.LoadPlans(f)
}

// SnapshotPlans writes the current plan cache to the configured plan
// directory, atomically: the snapshot lands in a temporary file first and
// is renamed over PlanSnapshotFile, so a crash mid-write can never leave a
// truncated snapshot for the next boot (truncation would be skipped on
// load anyway — the envelope digests see to that — but the previous
// snapshot surviving intact is strictly better).
func (db *DB) SnapshotPlans() error {
	dir := db.defaults.planDir
	if dir == "" {
		return fmt.Errorf("panda: session has no plan directory (use WithPlanDir)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, PlanSnapshotFile+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := db.SavePlans(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, PlanSnapshotFile))
}

// ---- Mutation notification & per-relation ticks ----

// registerWatcher adds a wakeup channel to the notification registry and
// returns its id. The channel has capacity 1 and is poked with non-blocking
// sends, so a slow consumer coalesces bursts instead of backing up mutators.
func (db *DB) registerWatcher() (uint64, chan struct{}) {
	ch := make(chan struct{}, 1)
	db.watchMu.Lock()
	defer db.watchMu.Unlock()
	if db.watchers == nil {
		db.watchers = map[uint64]chan struct{}{}
	}
	db.nextWatch++
	id := db.nextWatch
	db.watchers[id] = ch
	return id, ch
}

// unregisterWatcher removes a wakeup channel from the registry.
func (db *DB) unregisterWatcher(id uint64) {
	db.watchMu.Lock()
	defer db.watchMu.Unlock()
	delete(db.watchers, id)
}

// notifyWatchers pokes every registered watch maintainer. Sends are
// non-blocking: a maintainer that has not yet drained its previous poke
// already knows it must re-examine the catalog.
func (db *DB) notifyWatchers() {
	db.watchMu.Lock()
	defer db.watchMu.Unlock()
	for _, ch := range db.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// schemaTickLocked returns the max per-relation catalog tick over the
// schema's referenced relations (0 when none are present). Callers hold
// db.mu.
func (db *DB) schemaTickLocked(s *Schema) uint64 {
	var max uint64
	for _, a := range s.Atoms {
		if t, ok := db.catalog[a.Name]; ok {
			if tk := t.Tick(); tk > max {
				max = tk
			}
		}
	}
	return max
}

// schemaTick reports the catalog tick a statement over s depends on: the
// max per-relation tick across the relations the schema actually
// references. Mutations to unrelated relations leave it unchanged, so a
// memoized snapshot stays valid across them; any mutation to a referenced
// relation — including a drop+recreate, which stamps a strictly newer tick
// — moves it forward. A referenced relation missing from the catalog fails
// with ErrUnknownRelation.
func (db *DB) schemaTick(s *Schema) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, ErrClosed
	}
	for _, a := range s.Atoms {
		if _, ok := db.catalog[a.Name]; !ok {
			return 0, fmt.Errorf("%w: %s", ErrUnknownRelation, a.Name)
		}
	}
	return db.schemaTickLocked(s), nil
}

// bindInstance snapshots the catalog into an Instance for the schema,
// returning the schema tick (max referenced-relation tick) the snapshot
// reflects; the read lock is held for the duration of the copy (an O(arity)
// column snapshot per atom on the common path — see query.BindInstance).
func (db *DB) bindInstance(s *Schema) (*Instance, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, 0, ErrClosed
	}
	ins, err := query.BindInstance(s, func(name string) (*relation.Relation, bool) {
		t, ok := db.catalog[name]
		return t, ok
	})
	if err == nil {
		// Bound relations are fresh copies: carry the catalog partition
		// hints over so hint-driven data-parallel execution sees them.
		for i, a := range s.Atoms {
			if t, ok := db.catalog[a.Name]; ok {
				ins.Relations[i].SetPartitionHint(t.PartitionHint())
			}
		}
	}
	return ins, db.schemaTickLocked(s), err
}

// ---- Query paths ----

// QueryContext parses and runs src against the catalog: Prepare +
// Stmt.QueryContext in one call. The context governs both planning (a
// cache miss abandons its LP solves when ctx expires) and execution (the
// engine checks cancellation between proof steps); a cancelled or expired
// context aborts the query with ctx.Err(). Repeated traffic still hits the
// plan cache — the planner keys on the canonical query signature, not on
// the Stmt identity.
func (db *DB) QueryContext(ctx context.Context, src string, opts ...Option) (*Result, error) {
	stmt, err := db.Prepare(src, opts...)
	if err != nil {
		return nil, err
	}
	return stmt.QueryContext(ctx)
}

// Query is QueryContext under context.Background().
func (db *DB) Query(src string, opts ...Option) (*Result, error) {
	return db.QueryContext(context.Background(), src, opts...)
}

// EvalContext runs a programmatically built conjunctive query against an
// explicit instance under ctx, sharing the session's plan cache. Missing
// atom cardinalities are derived from the instance; dcs may be nil.
func (db *DB) EvalContext(ctx context.Context, q *Query, ins *Instance, dcs []Constraint, opts ...Option) (*Result, error) {
	return db.evalConjunctive(ctx, q, ins, dcs, db.cfg(opts))
}

// Eval is EvalContext under context.Background().
func (db *DB) Eval(q *Query, ins *Instance, dcs []Constraint, opts ...Option) (*Result, error) {
	return db.EvalContext(context.Background(), q, ins, dcs, opts...)
}

// EvalRuleContext runs PANDA on a programmatically built disjunctive rule
// against an explicit instance under ctx, returning the unified Result
// shape (Mode == ModeRule; the model lives in Result.Tables). An explicit
// WithMode in opts fails with ErrNotConjunctive.
func (db *DB) EvalRuleContext(ctx context.Context, p *Rule, ins *Instance, dcs []Constraint, opts ...Option) (*Result, error) {
	if err := rejectExplicitMode(opts); err != nil {
		return nil, err
	}
	return db.evalRule(ctx, p, ins, dcs, db.cfg(opts))
}

// EvalRule is EvalRuleContext under context.Background().
func (db *DB) EvalRule(p *Rule, ins *Instance, dcs []Constraint, opts ...Option) (*Result, error) {
	return db.EvalRuleContext(context.Background(), p, ins, dcs, opts...)
}

func (db *DB) isClosed() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.closed
}

// executor materializes the core executor one call runs with.
func (cfg config) executor() *core.Executor {
	return &core.Executor{Parallelism: cfg.parallelism, Partitions: cfg.partitions, Opt: cfg.core}
}

// prepareConjunctive is the shared planning preamble of the execute
// (evalConjunctive) and dry-run (Stmt.ExplainContext) paths: mode
// validation plus cache-hit planning against the instance's completed
// constraint set. One body keeps an explain from ever diverging from the
// query it describes.
func (db *DB) prepareConjunctive(ctx context.Context, q *Query, ins *Instance, dcs []Constraint, cfg config) (*plan.Plan, error) {
	if cfg.mode == ModeFull && !q.IsFull() {
		return nil, fmt.Errorf("panda: ModeFull needs a full query (free %s)", q.VarLabel(q.Free))
	}
	return db.planner.inner.PrepareContext(ctx, q, core.CompleteConstraints(&q.Schema, ins, dcs), cfg.mode)
}

func (db *DB) evalConjunctive(ctx context.Context, q *Query, ins *Instance, dcs []Constraint, cfg config) (*Result, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	var prepStart time.Time
	if cfg.core.StageTimings {
		prepStart = time.Now()
	}
	p, err := db.prepareConjunctive(ctx, q, ins, dcs, cfg)
	if err != nil {
		return nil, err
	}
	var prepWait time.Duration
	if cfg.core.StageTimings {
		prepWait = time.Since(prepStart)
	}
	ex, err := cfg.executor().Execute(ctx, p, ins)
	if err != nil {
		return nil, err
	}
	if ex.Timings != nil {
		ex.Timings.PrepareWait = prepWait
	}
	out := projectFree(ex.Out, p.Free)
	ok := ex.NonEmpty
	if out != nil {
		ok = out.Size() > 0
	}
	var cols []string
	if out != nil {
		for _, v := range p.Free.Vars() {
			cols = append(cols, q.VarLabel(bitset.Of(v)))
		}
	}
	return &Result{
		Rel:       out,
		Columns:   cols,
		OK:        ok,
		Width:     ex.Width,
		Mode:      ex.Mode,
		Tables:    ex.Tables,
		Bound:     ex.Bound,
		Stats:     ex.Stats,
		Signature: SignatureDigest(p.Key),
		Timings:   ex.Timings,
	}, nil
}

func (db *DB) evalRule(ctx context.Context, p *Rule, ins *Instance, dcs []Constraint, cfg config) (*Result, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	res, err := cfg.executor().EvalDisjunctive(ctx, p, ins, dcs)
	if err != nil {
		return nil, err
	}
	ok := false
	for _, t := range res.Tables {
		if t.Size() > 0 {
			ok = true
			break
		}
	}
	return &Result{
		OK:      ok,
		Width:   res.Bound,
		Mode:    ModeRule,
		Tables:  res.Tables,
		Bound:   res.Bound,
		Stats:   res.Stats,
		Timings: res.Timings,
	}, nil
}
