package panda

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadCatalog copies an instance's relations into the session catalog,
// rows in ascending-variable column order (the instance convention).
func loadCatalog(t *testing.T, db *DB, s *Schema, ins *Instance) {
	t.Helper()
	for i, a := range s.Atoms {
		if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil && !errors.Is(err, ErrRelationExists) {
			t.Fatal(err)
		}
		if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
			t.Fatal(err)
		}
	}
}

// fourCycleSrc writes the 4-cycle in ascending-variable argument order so
// catalog columns line up with the workload instance's storage.
const fourCycleSrc = `Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`
const booleanFourCycleSrc = `Q() :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`
const triangleSrc = `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`
const pathRuleSrc = `T1(A1,A2,A3) v T2(A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4).`

// TestDBParityFourCycle: the deprecated EvalFull wrapper, the programmatic
// DB path and the textual catalog path agree on the paper's running
// example — rows, bound and non-emptiness.
func TestDBParityFourCycle(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 12)

	out, rr, err := EvalFull(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer db.Close()
	res, err := db.Eval(q, ins, nil, WithMode(ModeFull))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.SortedRows(), res.Rows()) {
		t.Fatalf("DB.Eval diverges from EvalFull: %d vs %d rows", out.Size(), res.Size())
	}
	if rr.Bound.Cmp(res.Bound) != 0 || res.Width.Cmp(res.Bound) != 0 {
		t.Fatalf("bounds diverge: %v vs %v (width %v)", rr.Bound, res.Bound, res.Width)
	}
	if res.Mode != ModeFull || !res.OK {
		t.Fatalf("mode %v ok %v", res.Mode, res.OK)
	}

	loadCatalog(t, db, &q.Schema, ins)
	tres, err := db.Query(fourCycleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.SortedRows(), tres.Rows()) {
		t.Fatalf("db.Query diverges from EvalFull: %d vs %d rows", out.Size(), tres.Size())
	}
}

// TestDBParityBooleanFourCycle: EvalSubw wrapper vs DB paths on the
// Boolean variant.
func TestDBParityBooleanFourCycle(t *testing.T) {
	q := BooleanFourCycle()
	ins := CycleWorstCase(q, 16)

	_, ans, stats, err := EvalSubw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer db.Close()
	res, err := db.Eval(q, ins, nil, WithMode(ModeSubw))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel != nil || res.OK != ans || res.Mode != ModeSubw {
		t.Fatalf("DB boolean diverges: rel=%v ok=%v mode=%v", res.Rel, res.OK, res.Mode)
	}
	if res.Stats.MaxIntermediate != stats.MaxIntermediate {
		t.Fatalf("stats diverge: %d vs %d", res.Stats.MaxIntermediate, stats.MaxIntermediate)
	}
	loadCatalog(t, db, &q.Schema, ins)
	tres, err := db.Query(booleanFourCycleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if tres.Rel != nil || tres.OK != ans {
		t.Fatalf("textual boolean diverges: rel=%v ok=%v", tres.Rel, tres.OK)
	}
}

// TestDBParityTriangle: Eval and EvalFhtw wrappers vs DB paths on the
// triangle join.
func TestDBParityTriangle(t *testing.T) {
	q := TriangleQuery()
	ins := RandomInstance(8, &q.Schema, 50, 12)

	want, wantOK, err := Eval(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer db.Close()
	res, err := db.Eval(q, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != wantOK || !reflect.DeepEqual(want.SortedRows(), res.Rows()) {
		t.Fatalf("DB.Eval diverges from Eval: %d vs %d rows", want.Size(), res.Size())
	}
	fw, fOK, _, err := EvalFhtw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := db.Eval(q, ins, nil, WithMode(ModeFhtw))
	if err != nil {
		t.Fatal(err)
	}
	if fres.OK != fOK || !reflect.DeepEqual(fw.SortedRows(), fres.Rows()) || fres.Mode != ModeFhtw {
		t.Fatal("DB fhtw diverges from EvalFhtw")
	}
	loadCatalog(t, db, &q.Schema, ins)
	tres, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.SortedRows(), tres.Rows()) {
		t.Fatal("textual triangle diverges")
	}
}

// TestDBParityPathRule: EvalRule wrapper vs DB paths on the Example 1.4
// disjunctive rule — same bound, same model tables.
func TestDBParityPathRule(t *testing.T) {
	p := PathRule()
	ins := RandomInstance(5, &p.Schema, 30, 6)

	rr, err := EvalRule(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer db.Close()
	res, err := db.EvalRule(p, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeRule || res.Bound.Cmp(rr.Bound) != 0 || res.Width.Cmp(rr.Bound) != 0 {
		t.Fatalf("rule result shape: mode=%v bound=%v want %v", res.Mode, res.Bound, rr.Bound)
	}
	if len(res.Tables) != len(rr.Tables) {
		t.Fatalf("%d tables vs %d", len(res.Tables), len(rr.Tables))
	}
	for b, tb := range rr.Tables {
		if !tb.Equal(res.Tables[b]) {
			t.Fatalf("table %v diverges", b)
		}
	}
	ok, err := ins.IsModel(p, res.Tables)
	if err != nil || !ok {
		t.Fatalf("DB rule tables are not a model: %v %v", ok, err)
	}

	loadCatalog(t, db, &p.Schema, ins)
	tres, err := db.Query(pathRuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if tres.Mode != ModeRule || tres.Bound.Cmp(rr.Bound) != 0 {
		t.Fatalf("textual rule bound %v, want %v", tres.Bound, rr.Bound)
	}
	ok, err = ins.IsModel(p, tres.Tables)
	if err != nil || !ok {
		t.Fatalf("textual rule tables are not a model: %v %v", ok, err)
	}
}

// TestDBRenamedQueryCacheHit: a query that merely renames variables is
// answered from the plan cache with zero additional LP solves.
func TestDBRenamedQueryCacheHit(t *testing.T) {
	q := TriangleQuery()
	ins := RandomInstance(11, &q.Schema, 40, 10)
	db := Open(WithPlannerCapacity(8))
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)

	first, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	s0 := db.PlannerStats()
	if s0.Misses == 0 || s0.LPSolves == 0 {
		t.Fatalf("first query should have planned: %v", s0)
	}
	renamed, err := db.Query(`Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	s1 := db.PlannerStats()
	if s1.Hits != s0.Hits+1 || s1.Misses != s0.Misses || s1.LPSolves != s0.LPSolves || s1.PlansBuilt != s0.PlansBuilt {
		t.Fatalf("renamed query was not a free cache hit: %v then %v", s0, s1)
	}
	if !reflect.DeepEqual(first.Rows(), renamed.Rows()) {
		t.Fatal("renamed query answer diverges")
	}
}

// TestInsertAtomic: a batch containing an arity error inserts nothing — a
// partial insert would mutate the catalog without bumping its version, so
// cached statement snapshots and fresh queries would see different data.
func TestInsertAtomic(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{1, 2}, []Value{3}); !errors.Is(err, ErrArity) {
		t.Fatalf("mixed-arity batch: got %v, want ErrArity", err)
	}
	infos, err := db.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Size != 0 {
		t.Fatalf("failed batch left %d rows behind", infos[0].Size)
	}
}

// TestDBCatalog exercises the catalog lifecycle and its sentinel errors.
func TestDBCatalog(t *testing.T) {
	db := Open()
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation("R", 2); !errors.Is(err, ErrRelationExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := db.CreateRelation("bad", 0); !errors.Is(err, ErrArity) {
		t.Fatalf("zero arity: %v", err)
	}
	if err := db.Insert("R", []Value{1, 2}, []Value{1, 2}, []Value{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{1}); !errors.Is(err, ErrArity) {
		t.Fatalf("bad arity insert: %v", err)
	}
	if err := db.Insert("missing", []Value{1, 2}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("insert into missing: %v", err)
	}
	infos, err := db.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "R" || infos[0].Arity != 2 || infos[0].Size != 2 {
		t.Fatalf("catalog: %+v", infos)
	}
	if err := db.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("R"); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("double drop: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation("S", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := db.Query("Q(A,B) :- S(A,B)."); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
	if _, err := db.Relations(); !errors.Is(err, ErrClosed) {
		t.Fatalf("relations after close: %v", err)
	}
}

// TestDBLoadCSV: reader ingest with comments, dedupe and inferred arity;
// mismatched rows fail with ErrArity.
func TestDBLoadCSV(t *testing.T) {
	db := Open()
	defer db.Close()
	n, err := db.LoadCSV("R", strings.NewReader("1,2\n# comment\n\n 1 , 2 \n3,4\n"))
	if err != nil || n != 3 {
		t.Fatalf("LoadCSV: n=%d err=%v", n, err)
	}
	infos, err := db.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Arity != 2 || infos[0].Size != 2 { // dedupe kept 2
		t.Fatalf("after CSV: %+v", infos)
	}
	if _, err := db.LoadCSV("R", strings.NewReader("1,2,3\n")); !errors.Is(err, ErrArity) {
		t.Fatalf("ragged row: %v", err)
	}
	if _, err := db.LoadCSV("X", strings.NewReader("1,z\n")); err == nil {
		t.Fatal("non-integer accepted")
	}
	// Failed loads are atomic: no partial rows, no auto-created relation.
	if _, err := db.LoadCSV("R", strings.NewReader("9,9\n1,2,3\n")); !errors.Is(err, ErrArity) {
		t.Fatalf("ragged file: %v", err)
	}
	got, err := db.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size != 2 {
		t.Fatalf("failed load was not atomic: %+v", got)
	}
}

// TestStmtSnapshotInvalidation: a prepared statement reuses its bound
// snapshot while the catalog is unchanged and rebinds after a mutation.
func TestStmtSnapshotInvalidation(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("Q(A,B) :- R(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := stmt.Query()
	if err != nil || r1.Size() != 1 {
		t.Fatalf("first query: %v %v", r1, err)
	}
	r2, err := stmt.Query()
	if err != nil || r2.Size() != 1 {
		t.Fatalf("cached query: %v %v", r2, err)
	}
	if err := db.Insert("R", []Value{3, 4}); err != nil {
		t.Fatal(err)
	}
	r3, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3.Rows(), [][]Value{{1, 2}, {3, 4}}) {
		t.Fatalf("snapshot not invalidated by insert: %v", r3.Rows())
	}
	if err := db.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("query after drop: %v", err)
	}
}

// TestDBLoadCSVDir: the data-dir convention loads one relation per file.
func TestDBLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{"R.csv": "1,2\n", "S.csv": "2,3\n2,4\n"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db := Open()
	defer db.Close()
	if err := db.LoadCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("Q(A,B,C) :- R(A,B), S(B,C).")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows(), [][]Value{{1, 2, 3}, {1, 2, 4}}) {
		t.Fatalf("rows: %v", res.Rows())
	}
	if err := db.LoadCSVDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestDBSentinelErrors: the query path reports structured errors callers
// can dispatch on with errors.Is.
func TestDBSentinelErrors(t *testing.T) {
	db := Open()
	defer db.Close()
	if _, err := db.Prepare("Q(A,B) :- R(A,B)."); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
	if err := db.CreateRelation("R", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare("Q(A,B) :- R(A,B)."); !errors.Is(err, ErrArity) {
		t.Fatalf("arity mismatch: %v", err)
	}
	if err := db.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare("T1(A) v T2(B) :- R(A,B).", WithMode(ModeSubw)); !errors.Is(err, ErrNotConjunctive) {
		t.Fatalf("mode on rule: %v", err)
	}
	if _, err := db.Query("Q(A) :- R(A,B).", WithMode(ModeFull)); err == nil {
		t.Fatal("ModeFull accepted a projection query")
	}
	// Planning without cardinality constraints leaves the LP unbounded.
	if _, err := NewPlanner(4).Prepare(TriangleQuery(), nil); !errors.Is(err, ErrUnboundedLP) {
		t.Fatalf("unbounded LP: %v", err)
	}
	q := PathRule()
	if _, err := RuleBound(q, []Constraint{Cardinality(Vars(0, 1), 8, 0)}); !errors.Is(err, ErrUnboundedLP) {
		t.Fatalf("unbounded rule bound: %v", err)
	}
}

// TestDBArgumentOrderBinding: atom argument order is honored when binding
// catalog rows — R(B,A) reads stored columns as (B, A).
func TestDBArgumentOrderBinding(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("Q(A,B) :- R(B,A).")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows(), [][]Value{{2, 1}}) {
		t.Fatalf("argument order ignored: %v", res.Rows())
	}
	// A repeated variable is the diagonal selection.
	if err := db.Insert("R", []Value{5, 5}); err != nil {
		t.Fatal(err)
	}
	diag, err := db.Query("Q(A) :- R(A,A).")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diag.Rows(), [][]Value{{5}}) {
		t.Fatalf("diagonal selection: %v", diag.Rows())
	}
}

// TestDBConcurrent: concurrent Query, Prepare+Query and Insert traffic on
// one session is race-free (run under -race in CI) and stays correct. The
// writes go to a relation the query does not reference: mutating a
// referenced relation changes its instance-derived cardinality constraint,
// which is part of the plan-cache key, so those queries would replan (by
// design) and the hit-count assertion would depend on scheduling.
func TestDBConcurrent(t *testing.T) {
	q := TriangleQuery()
	ins := RandomInstance(21, &q.Schema, 30, 8)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	if err := db.CreateRelation("W", 2); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 4; i++ {
				if g%2 == 0 {
					if _, err := db.Query(triangleSrc); err != nil {
						done <- err
						return
					}
				} else {
					if _, err := stmt.Query(); err != nil {
						done <- err
						return
					}
				}
				if err := db.Insert("W", []Value{Value(100 + g), Value(200 + i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlannerStats()
	// The 16 db.Query calls each consult the planner (fresh Stmt per call);
	// the prepared statement consults it between 1 and 16 times — once its
	// result memo warms, repeated stmt.Query calls over the unchanged
	// referenced relations skip planning (and execution) entirely, and how
	// many calls race ahead of the first memo store depends on scheduling.
	if st.Misses != 1 {
		t.Fatalf("32 queries over an unchanged catalog should plan once: %v", st)
	}
	if st.Hits < 16 || st.Hits > 31 {
		t.Fatalf("expected 16–31 plan-cache hits (db.Query path + pre-memo stmt calls): %v", st)
	}
}

// TestDefaultPlannerLifecycle: SetDefaultPlannerCapacity resets the shared
// cache behind the deprecated helpers, and DefaultPlannerStats observes it.
func TestDefaultPlannerLifecycle(t *testing.T) {
	defer SetDefaultPlannerCapacity(0) // leave a fresh default for other tests
	SetDefaultPlannerCapacity(4)
	if st := DefaultPlannerStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("fresh default planner has counters: %v", st)
	}
	q := TriangleQuery()
	ins := RandomInstance(3, &q.Schema, 20, 6)
	if _, _, err := Eval(q, ins, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	st := DefaultPlannerStats()
	if st.Misses == 0 {
		t.Fatalf("Eval did not go through the default planner: %v", st)
	}
	if _, _, err := Eval(q, ins, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	st2 := DefaultPlannerStats()
	if st2.Hits != st.Hits+1 || st2.LPSolves != st.LPSolves {
		t.Fatalf("repeat Eval was not a free cache hit: %v then %v", st, st2)
	}
	SetDefaultPlannerCapacity(4)
	if st := DefaultPlannerStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("reset did not clear counters: %v", st)
	}
}
