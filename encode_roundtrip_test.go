package panda

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"panda/internal/bitset"
	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/workload"
)

// The round-trip property over the golden fixtures: a plan that crossed the
// wire must execute byte-identically to the freshly prepared one — same
// rows, same width certificate, same committed mode, same engine stats
// (trace included). This is the codec's whole contract: shipping a plan to
// a replica or a restarted process changes nothing about what it computes.

// conjFixtures are the conjunctive golden fixtures of the db/e2e suites.
func conjFixtures() []struct {
	name string
	q    *query.Conjunctive
	ins  *query.Instance
} {
	triangle := workload.TriangleQuery()
	fourCycle := workload.FourCycleQuery()
	boolCycle := workload.BooleanFourCycle()
	return []struct {
		name string
		q    *query.Conjunctive
		ins  *query.Instance
	}{
		{"triangle", triangle, RandomInstance(3, &triangle.Schema, 120, 24)},
		{"four-cycle", fourCycle, workload.AppendixABoundA(fourCycle, 16)},
		{"boolean-four-cycle", boolCycle, workload.CycleWorstCase(boolCycle, 32)},
	}
}

func TestPlanRoundTripExecutionParity(t *testing.T) {
	ex := &core.Executor{Opt: Options{Trace: true}}
	for _, fx := range conjFixtures() {
		for _, mode := range []PlanMode{ModeAuto, ModeFhtw, ModeSubw} {
			if mode == ModeFhtw && fx.q.IsBoolean() {
				// Covered by auto; keep the matrix small.
				continue
			}
			cons := core.CompleteConstraints(&fx.q.Schema, fx.ins, nil)
			p, _, err := plan.Prepare(fx.q, cons, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", fx.name, mode, err)
			}
			var buf bytes.Buffer
			if err := plan.EncodePlan(&buf, p); err != nil {
				t.Fatalf("%s/%v: encode: %v", fx.name, mode, err)
			}
			decoded, err := plan.DecodePlan(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%v: decode: %v", fx.name, mode, err)
			}

			want, err := ex.Execute(context.Background(), p, fx.ins)
			if err != nil {
				t.Fatalf("%s/%v: execute fresh: %v", fx.name, mode, err)
			}
			got, err := ex.Execute(context.Background(), decoded, fx.ins)
			if err != nil {
				t.Fatalf("%s/%v: execute decoded: %v", fx.name, mode, err)
			}
			if got.Mode != want.Mode {
				t.Fatalf("%s/%v: mode %v ≠ %v", fx.name, mode, got.Mode, want.Mode)
			}
			if got.Width.Cmp(want.Width) != 0 {
				t.Fatalf("%s/%v: width %v ≠ %v", fx.name, mode, got.Width, want.Width)
			}
			if got.NonEmpty != want.NonEmpty {
				t.Fatalf("%s/%v: ok %v ≠ %v", fx.name, mode, got.NonEmpty, want.NonEmpty)
			}
			switch {
			case (got.Out == nil) != (want.Out == nil):
				t.Fatalf("%s/%v: one execution produced rows, the other none", fx.name, mode)
			case got.Out != nil:
				if !reflect.DeepEqual(got.Out.SortedRows(), want.Out.SortedRows()) {
					t.Fatalf("%s/%v: rows differ after round trip", fx.name, mode)
				}
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("%s/%v: stats differ after round trip:\n%+v\n%+v", fx.name, mode, got.Stats, want.Stats)
			}
		}
	}
}

// TestRuleRoundTripExecutionParity covers the disjunctive fixtures: the
// path rule of Example 1.4 and a two-target rule over the triangle body.
func TestRuleRoundTripExecutionParity(t *testing.T) {
	pathRule := workload.PathRule()
	triangle := workload.TriangleQuery()
	disjunctive := &query.Disjunctive{
		Schema:  triangle.Schema,
		Targets: []bitset.Set{bitset.Of(0, 1), bitset.Of(1, 2)},
	}
	fixtures := []struct {
		name string
		p    *query.Disjunctive
		ins  *query.Instance
	}{
		{"path-rule", pathRule, workload.PathWorstCase(pathRule, 64)},
		{"disjunctive", disjunctive, RandomInstance(9, &triangle.Schema, 80, 16)},
	}
	ex := &core.Executor{Opt: Options{Trace: true}}
	for _, fx := range fixtures {
		cons := core.CompleteConstraints(&fx.p.Schema, fx.ins, nil)
		pr, _, err := plan.PrepareRule(&fx.p.Schema, cons, fx.p.Targets)
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		var buf bytes.Buffer
		if err := plan.EncodeRule(&buf, pr); err != nil {
			t.Fatalf("%s: encode: %v", fx.name, err)
		}
		decoded, err := plan.DecodeRule(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", fx.name, err)
		}
		want, err := ex.ExecuteRule(context.Background(), &fx.p.Schema, pr, cons, fx.ins)
		if err != nil {
			t.Fatalf("%s: execute fresh: %v", fx.name, err)
		}
		got, err := ex.ExecuteRule(context.Background(), &fx.p.Schema, decoded, cons, fx.ins)
		if err != nil {
			t.Fatalf("%s: execute decoded: %v", fx.name, err)
		}
		if got.Bound.Cmp(want.Bound) != 0 {
			t.Fatalf("%s: bound %v ≠ %v", fx.name, got.Bound, want.Bound)
		}
		if len(got.Tables) != len(want.Tables) {
			t.Fatalf("%s: %d tables ≠ %d", fx.name, len(got.Tables), len(want.Tables))
		}
		for b, wt := range want.Tables {
			gt, ok := got.Tables[b]
			if !ok {
				t.Fatalf("%s: decoded run missing target %v", fx.name, b)
			}
			if !reflect.DeepEqual(gt.SortedRows(), wt.SortedRows()) {
				t.Fatalf("%s: target %v rows differ after round trip", fx.name, b)
			}
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("%s: stats differ after round trip:\n%+v\n%+v", fx.name, got.Stats, want.Stats)
		}
	}
}

// TestDBPlanPersistence drives the facade path end to end: a session with
// WithPlanDir pays planning once, snapshots, and a second session over the
// same directory answers the same (and a renamed) query with zero LP
// solves. This is the library-level version of pandad's warm restart.
func TestDBPlanPersistence(t *testing.T) {
	dir := t.TempDir()
	seed := func(db *DB) {
		t.Helper()
		for _, rel := range []struct {
			name string
			rows [][]Value
		}{
			{"R", [][]Value{{1, 2}, {2, 3}}},
			{"S", [][]Value{{2, 5}, {3, 7}}},
		} {
			if err := db.CreateRelation(rel.name, 2); err != nil {
				t.Fatal(err)
			}
			if err := db.Insert(rel.name, rel.rows...); err != nil {
				t.Fatal(err)
			}
		}
	}
	const src = `Q(A,B,C) :- R(A,B), S(B,C).`

	db1 := Open(WithPlanDir(dir))
	seed(db1)
	res1, err := db1.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if st := db1.PlannerStats(); st.LPSolves == 0 {
		t.Fatalf("cold session did no planning: %v", st)
	}
	if err := db1.SnapshotPlans(); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, PlanSnapshotFile)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	db2 := Open(WithPlanDir(dir))
	defer db2.Close()
	seed(db2)
	res2, err := db2.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Query(`Q(X,Y,Z) :- R(X,Y), S(Y,Z).`); err != nil {
		t.Fatal(err)
	}
	st := db2.PlannerStats()
	if st.LPSolves != 0 || st.Misses != 0 {
		t.Fatalf("warm session did planning work: %v", st)
	}
	if st.Hits != 2 || st.LPSolvesSaved == 0 {
		t.Fatalf("warm session hits=%d lp-saved=%d, want 2 hits and lp-saved > 0", st.Hits, st.LPSolvesSaved)
	}
	if !reflect.DeepEqual(res1.Rows(), res2.Rows()) || res1.Width.Cmp(res2.Width) != 0 {
		t.Fatal("warm-restart result differs from the cold run")
	}

	// A catalog change (different sizes → different constraint set) keys a
	// different signature: the warm plan must NOT be served for it.
	if err := db2.Insert("R", []Value{9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Query(src); err != nil {
		t.Fatal(err)
	}
	if st := db2.PlannerStats(); st.Misses != 1 {
		t.Fatalf("resized catalog should replan, got %v", st)
	}
}

// TestDBLoadPlanDirMissing: a configured-but-empty plan directory is not an
// error; an unconfigured session is.
func TestDBLoadPlanDirMissing(t *testing.T) {
	db := Open(WithPlanDir(t.TempDir()))
	defer db.Close()
	stats, err := db.LoadPlanDir()
	if err != nil || stats.Loaded != 0 {
		t.Fatalf("empty dir: stats=%v err=%v", stats, err)
	}
	bare := Open()
	defer bare.Close()
	if _, err := bare.LoadPlanDir(); err == nil {
		t.Fatal("LoadPlanDir without WithPlanDir should fail")
	}
	if err := bare.SnapshotPlans(); err == nil {
		t.Fatal("SnapshotPlans without WithPlanDir should fail")
	}
}
