package panda

import (
	"errors"

	"panda/internal/flow"
	"panda/internal/plan"
	"panda/internal/query"
)

// Structured sentinel errors of the DB surface. Every error returned by the
// catalog and Query paths wraps one of these where applicable, so callers
// dispatch with errors.Is instead of matching message text.
var (
	// ErrClosed reports use of a DB after Close.
	ErrClosed = errors.New("panda: database is closed")

	// ErrUnknownRelation reports a query atom or catalog operation naming
	// a relation the session does not hold.
	ErrUnknownRelation = query.ErrUnknownRelation

	// ErrRelationExists reports CreateRelation on a name already in the
	// catalog.
	ErrRelationExists = errors.New("panda: relation already exists")

	// ErrArity reports a tuple, CSV row or atom whose arity disagrees with
	// the relation's declared arity.
	ErrArity = query.ErrArity

	// ErrUnboundedLP reports that planning's polymatroid-bound LP is
	// unbounded: the constraint set does not bound every target, typically
	// because an atom lacks a cardinality constraint. The catalog-bound
	// Query path cannot hit it (instance cardinalities are always added);
	// it surfaces from Planner.Prepare and RuleBound with incomplete
	// constraint sets.
	ErrUnboundedLP = flow.ErrUnbounded

	// ErrNotConjunctive reports a Stmt method that needs a conjunctive
	// query applied to a disjunctive rule (e.g. an explicit WithMode).
	ErrNotConjunctive = errors.New("panda: statement is a disjunctive rule")

	// ErrPlanVersion reports an encoded plan or plan-cache snapshot whose
	// format version is not PlanFormatVersion. Cache loads skip such
	// entries; strict importers (the server's PUT /v1/plans) reject them.
	ErrPlanVersion = plan.ErrCodecVersion

	// ErrPlanDigest reports an encoded plan whose payload bytes disagree
	// with the digest recorded in its envelope.
	ErrPlanDigest = plan.ErrCodecDigest
)
