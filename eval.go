package panda

// Eval answers any conjunctive query:
//
//   - full queries via PANDA + semijoin reduction (Corollary 7.10),
//   - Boolean and proper projection queries via the cost-based ModeAuto
//     choice: the planner builds both the fhtw (Corollary 7.11) and subw
//     (Theorem 1.9) candidates and commits the one with the smaller exact
//     width certificate; projections are projected onto the free
//     variables. (The paper's free-connex refinement of Section 8 would
//     avoid materializing the full join; see the discussion there.)
//
// The returned relation is nil for Boolean queries; the bool answers
// non-emptiness in every case.
//
// Deprecated: use DB.Eval / DB.EvalContext (programmatic queries) or
// DB.Query / DB.QueryContext (textual queries); the ModeAuto dispatch is
// identical and the unified Result also carries the width certificate and
// stats.
func Eval(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, bool, error) {
	res, err := pkgDB().Eval(q, ins, dcs, WithMode(ModeAuto), withOptions(opt))
	if err != nil {
		return nil, false, err
	}
	return res.Rel, res.OK, nil
}
