package panda

// Eval answers any conjunctive query:
//
//   - full queries via PANDA + semijoin reduction (Corollary 7.10),
//   - Boolean queries via the submodular-width plan (Theorem 1.9),
//   - proper projection queries by evaluating the join at the submodular
//     width and projecting onto the free variables. (The paper's
//     free-connex refinement of Section 8 would avoid materializing the
//     full join; see the discussion there.)
//
// The returned relation is nil for Boolean queries; the bool answers
// non-emptiness in every case.
//
// Deprecated: use DB.Eval (programmatic queries) or DB.Query (textual
// queries); the ModeAuto dispatch is identical and the unified Result also
// carries the width certificate and stats.
func Eval(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, bool, error) {
	res, err := pkgDB().Eval(q, ins, dcs, WithMode(ModeAuto), withOptions(opt))
	if err != nil {
		return nil, false, err
	}
	return res.Rel, res.OK, nil
}
