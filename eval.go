package panda

import (
	"fmt"
)

// Eval answers any conjunctive query:
//
//   - full queries via PANDA + semijoin reduction (Corollary 7.10),
//   - Boolean queries via the submodular-width plan (Theorem 1.9),
//   - proper projection queries by evaluating the full join at the
//     submodular width and projecting onto the free variables. (The paper's
//     free-connex refinement of Section 8 would avoid materializing the
//     full join; see the discussion there.)
//
// The returned relation is nil for Boolean queries; the bool answers
// non-emptiness in every case.
func Eval(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, bool, error) {
	switch {
	case q.IsBoolean():
		_, ans, _, err := EvalSubw(q, ins, dcs, opt)
		return nil, ans, err
	case q.IsFull():
		out, _, err := EvalFull(q, ins, dcs, opt)
		if err != nil {
			return nil, false, err
		}
		return out, out.Size() > 0, nil
	default:
		if !q.Free.SubsetOf(AllVars(q.NumVars)) {
			return nil, false, fmt.Errorf("panda: free set %v outside universe", q.Free)
		}
		full, _, _, err := EvalSubw(&Query{Schema: q.Schema, Free: AllVars(q.NumVars)}, ins, dcs, opt)
		if err != nil {
			return nil, false, err
		}
		out := full.Project(q.Free)
		return out, out.Size() > 0, nil
	}
}
