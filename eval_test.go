package panda

import (
	"testing"

	"panda/internal/workload"
)

// TestEvalDispatch covers the three dispatch arms of Eval.
func TestEvalDispatch(t *testing.T) {
	// Full.
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 8)
	out, ne, err := Eval(q, ins, nil, Options{})
	if err != nil || !ne || out.Size() != 64 {
		t.Fatalf("full: %v %v %v", out, ne, err)
	}
	// Boolean.
	qb := BooleanFourCycle()
	_, ne, err = Eval(qb, CycleWorstCase(qb, 8), nil, Options{})
	if err != nil || !ne {
		t.Fatalf("boolean: %v %v", ne, err)
	}
	// Projection: Q(A1, A3) over the worst case — A2 = A4 = 0 always, so
	// the projection is the full [m]×[m] grid.
	qp := FourCycleQuery()
	qp.Free = Vars(0, 2)
	out, ne, err = Eval(qp, CycleWorstCase(qp, 8), nil, Options{})
	if err != nil || !ne {
		t.Fatalf("projection: %v %v", ne, err)
	}
	if out.Size() != 64 || out.Attrs() != Vars(0, 2) {
		t.Fatalf("projection result: %d tuples over %v", out.Size(), out.Attrs())
	}
}

// TestEvalProjectionMatchesBruteForce on random instances.
func TestEvalProjectionMatchesBruteForce(t *testing.T) {
	q := workload.TriangleQuery()
	q.Free = Vars(0, 1)
	for seed := int64(0); seed < 6; seed++ {
		ins := RandomInstance(seed, &q.Schema, 30, 5)
		out, _, err := Eval(q, ins, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ins.FullJoin().Project(Vars(0, 1))
		if !out.Equal(want) {
			t.Fatalf("seed %d: %d vs %d tuples", seed, out.Size(), want.Size())
		}
	}
}
