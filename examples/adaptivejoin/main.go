// Adaptive join (Example 1.10): the Boolean 4-cycle on adversarial inputs.
// A fixed tree decomposition must materialize N² intermediate tuples; the
// submodular-width plan (PANDA over four disjunctive rules, Theorem 1.9)
// stays near N^{3/2}. This example measures both.
package main

import (
	"fmt"
	"log"
	"time"

	"panda"
	"panda/internal/baseline"
)

func main() {
	q := panda.BooleanFourCycle()
	db := panda.Open()
	defer db.Close()
	fmt.Println("Boolean 4-cycle on R12=R34=[m]×[1], R23=R41=[1]×[m]")
	fmt.Println("m      tree-plan max-int   time        PANDA-subw max-int   time")
	for _, m := range []int{32, 64, 128, 256} {
		ins := panda.CycleWorstCase(q, m)

		t0 := time.Now()
		_, ansTree, st, err := baseline.EvalTreePlan(q, ins, nil)
		if err != nil {
			log.Fatal(err)
		}
		treeTime := time.Since(t0)

		t0 = time.Now()
		res, err := db.Eval(q, ins, nil, panda.WithMode(panda.ModeSubw))
		if err != nil {
			log.Fatal(err)
		}
		pandaTime := time.Since(t0)

		if !ansTree || !res.OK {
			log.Fatalf("m=%d: both must report a cycle", m)
		}
		fmt.Printf("%-6d %-19d %-11v %-20d %v\n",
			m, st.MaxIntermediate, treeTime.Round(time.Microsecond),
			res.Stats.MaxIntermediate, pandaTime.Round(time.Microsecond))
	}
	fmt.Println("\ntree-plan grows like m²; PANDA-subw like m^{3/2} (Theorem 1.9).")
}
