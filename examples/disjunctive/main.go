// Disjunctive datalog with PANDA: reproduces Examples 1.4–1.8 and the
// operator trace of Figure 1. The rule
//
//	T123(A1,A2,A3) ∨ T234(A2,A3,A4) ← R12(A1,A2), R23(A2,A3), R34(A3,A4)
//
// has polymatroid bound N^{3/2}; PANDA computes a model within that size by
// interpreting a Shannon-flow proof sequence as joins, projections and
// heavy/light partitions.
package main

import (
	"fmt"
	"log"
	"math"

	"panda"
)

func main() {
	p := panda.PathRule()
	db := panda.Open()
	defer db.Close()
	for _, m := range []int{16, 64, 256, 1024} {
		ins := panda.NewInstance(&p.Schema)
		for i := 0; i < m; i++ {
			v := panda.Value(i)
			ins.Relations[0].Insert([]panda.Value{v, 0}) // R12 = [m]×[1]
			ins.Relations[1].Insert([]panda.Value{0, v}) // R23 = [1]×[m]
			ins.Relations[2].Insert([]panda.Value{v, 0}) // R34 = [m]×[1]
		}
		res, err := db.EvalRule(p, ins, nil, panda.WithTrace(m == 16))
		if err != nil {
			log.Fatal(err)
		}
		model := 0
		for _, t := range res.Tables {
			if t.Size() > model {
				model = t.Size()
			}
		}
		bound, _ := res.Bound.Float64()
		fmt.Printf("N=%4d  bound=2^%.2f (=%8.0f)  model size=%6d  joins=%d partitions=%d\n",
			m, bound, math.Pow(2, bound), model, res.Stats.Joins, res.Stats.Partitions)
		if m == 16 {
			fmt.Println("  Figure-1 style operator trace:")
			for _, line := range res.Stats.Trace {
				fmt.Println("   ", line)
			}
		}
	}
}
