// Quickstart for the DB session API: open a session, ingest the paper's
// 4-cycle worst case (Example 1.10) into the catalog, and answer the query
// text — full and Boolean — through one unified QueryContext path with a
// deadline and parallel rule execution. Size bounds and width parameters
// round out the tour.
//
// Migrating from the historical free functions:
//
//	EvalFull(q, ins, dcs, opt) → db.Eval(q, ins, dcs, WithMode(ModeFull))
//	EvalSubw(q, ins, dcs, opt) → db.Eval(q, ins, dcs, WithMode(ModeSubw))
//	EvalRule(p, ins, dcs, opt) → db.EvalRule(p, ins, dcs)
//	Prepare / PrepareFor       → db.Prepare(src) / db.Planner()
//	Options{Trace: true}       → WithTrace(true)
//
// and onto the context-first surface (Query/Eval delegate to these with
// context.Background()):
//
//	db.Query(src)     → db.QueryContext(ctx, src)
//	stmt.Query()      → stmt.QueryContext(ctx)
//	db.Eval(q, …)     → db.EvalContext(ctx, q, …)
//	db.EvalRule(p, …) → db.EvalRuleContext(ctx, p, …)
//	db.LoadCSV(n, r)  → db.LoadCSVContext(ctx, n, r)
//	sequential bags   → WithParallelism(runtime.NumCPU()) (same bytes out)
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"panda"
)

func main() {
	// Q(A1,A2,A3,A4) ← R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4):
	// the 4-cycle of Example 1.2, over the adversarial instance of
	// Example 1.10 with m = 64 (R12 = R34 = [m]×[1], R23 = R41 = [1]×[m]).
	const m = 64
	db := panda.Open()
	defer db.Close()
	for _, name := range []string{"R12", "R23", "R34", "R41"} {
		if err := db.CreateRelation(name, 2); err != nil {
			log.Fatal(err)
		}
	}
	for i := int64(0); i < m; i++ {
		for name, row := range map[string][]panda.Value{
			"R12": {i, 0}, "R23": {0, i}, "R34": {i, 0}, "R41": {i, 0},
		} {
			if err := db.Insert(name, row); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Prepare once; the session's plan cache makes repeats free. Queries
	// run context-first: this one gets a deadline, and cancellation is
	// checked between the engine's proof steps, so a runaway query stops
	// promptly with ctx.Err() instead of running to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stmt, err := db.Prepare(`Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stmt.QueryContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-cycle query, all |R| =", m)
	fmt.Printf("  |Q| = %d (= m² = %d), PANDA bound 2^%v, max intermediate %d\n",
		res.Size(), m*m, res.Bound.FloatString(3), res.Stats.MaxIntermediate)

	// The Boolean variant runs at the submodular width (cost-based
	// ModeAuto picks it from the width certificates: subw 3/2 beats fhtw
	// 2), so intermediates stay near N^{3/2} instead of N² (Example 1.10).
	// Its per-transversal PANDA rules are independent: WithParallelism
	// fans them out across a worker pool with a deterministic merge — the
	// answer is byte-identical to a sequential run.
	bres, err := db.QueryContext(ctx, `Q() :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`,
		panda.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Boolean 4-cycle: %v via %v, max intermediate %d (m^1.5 = %.0f, m² = %d)\n",
		bres.OK, bres.Mode, bres.Stats.MaxIntermediate, math.Pow(float64(m), 1.5), m*m)

	// Size bounds under the instance's cardinality constraints, and the
	// Figure 4 width hierarchy — the analysis side of the facade.
	q := panda.FourCycleQuery()
	dcs := panda.InstanceCardinalities(&q.Schema, panda.CycleWorstCase(q, m))
	rep, err := panda.Bounds(q, dcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  vertex bound      : 2^%v\n", rep.Vertex.FloatString(3))
	fmt.Printf("  integral cover ρ  : 2^%v\n", rep.IntegralCover.FloatString(3))
	fmt.Printf("  AGM bound ρ*      : 2^%v\n", rep.AGM.FloatString(3))
	fmt.Printf("  polymatroid bound : 2^%v\n", rep.Polymatroid.FloatString(3))
	w, err := panda.Widths(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  widths: tw=%d ghtw=%d fhtw=%v subw=%v adw=%v\n",
		w.Treewidth, w.GHTW, w.FHTW.RatString(), w.Subw.RatString(), w.Adw.RatString())

	// Cache effectiveness: re-running the prepared statement (or any
	// renaming of the query) costs zero LP solves.
	if _, err := stmt.Query(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  planner: %v\n", db.PlannerStats())
}
