// Quickstart: declare the paper's 4-cycle query (Example 1.2), compute its
// size bounds and width parameters, and evaluate it with PANDA.
package main

import (
	"fmt"
	"log"
	"math"

	"panda"
)

func main() {
	// Q(A1,A2,A3,A4) ← R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1).
	q := panda.FourCycleQuery()

	// The adversarial instance of Example 1.10 with m = 64:
	// R12 = R34 = [m]×[1], R23 = R41 = [1]×[m].
	m := 64
	ins := panda.CycleWorstCase(q, m)

	// Size bounds under the instance's cardinality constraints.
	dcs := panda.InstanceCardinalities(&q.Schema, ins)
	rep, err := panda.Bounds(q, dcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-cycle query, all |R| =", m)
	fmt.Printf("  vertex bound      : 2^%v\n", rep.Vertex.FloatString(3))
	fmt.Printf("  integral cover ρ  : 2^%v\n", rep.IntegralCover.FloatString(3))
	fmt.Printf("  AGM bound ρ*      : 2^%v\n", rep.AGM.FloatString(3))
	fmt.Printf("  polymatroid bound : 2^%v\n", rep.Polymatroid.FloatString(3))

	// Width parameters (Figure 4 / Corollary 7.5 hierarchy).
	w, err := panda.Widths(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  widths: tw=%d ghtw=%d fhtw=%v subw=%v adw=%v\n",
		w.Treewidth, w.GHTW, w.FHTW.RatString(), w.Subw.RatString(), w.Adw.RatString())

	// Evaluate with PANDA (Corollary 7.10) — output is exactly Q.
	out, res, err := panda.EvalFull(q, ins, nil, panda.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  |Q| = %d (= m² = %d), PANDA bound 2^%v, max intermediate %d\n",
		out.Size(), m*m, res.Bound.FloatString(3), res.Stats.MaxIntermediate)

	// The submodular-width plan answers the Boolean variant while keeping
	// intermediates near N^{3/2} instead of N² (Example 1.10).
	qb := panda.BooleanFourCycle()
	_, ans, stats, err := panda.EvalSubw(qb, panda.CycleWorstCase(qb, m), nil, panda.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Boolean 4-cycle: %v, max intermediate %d (m^1.5 = %.0f, m² = %d)\n",
		ans, stats.MaxIntermediate, math.Pow(float64(m), 1.5), m*m)
}
