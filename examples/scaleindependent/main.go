// Scale-independent query processing (the Section 1.1 motivation, after
// Armbrust et al.): with declared degree constraints, the polymatroid bound
// on a per-user query is a constant independent of the database size, and
// PANDA's work tracks the bound, not the data.
//
// Query: answers(u, f, m) ← User(u), Follows(u, f), Posts(f, m)
// with deg(Follows: f|u) ≤ 50 and deg(Posts: m|f) ≤ 20: at most
// 50·20 = 1000 answers per user, no matter how large the site grows.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"panda"
)

func main() {
	const maxFollows, maxPosts = 50, 20
	s := panda.Schema{
		NumVars:  3,
		VarNames: []string{"u", "f", "m"},
		Atoms: []panda.Atom{
			{Name: "User", Vars: panda.Vars(0)},
			{Name: "Follows", Vars: panda.Vars(0, 1)},
			{Name: "Posts", Vars: panda.Vars(1, 2)},
		},
	}
	q := &panda.Query{Schema: s, Free: panda.AllVars(3)}
	rng := rand.New(rand.NewSource(1))
	db := panda.Open()
	defer db.Close()

	fmt.Println("users in DB   |Follows|   |Posts|   bound   |answers(u)|   max intermediate")
	for _, users := range []int{100, 1000, 10000} {
		ins := panda.NewInstance(&s)
		// One fixed user of interest.
		ins.Relations[0].Insert([]panda.Value{0})
		for u := 0; u < users; u++ {
			nf := 1 + rng.Intn(maxFollows)
			for k := 0; k < nf; k++ {
				ins.Relations[1].Insert([]panda.Value{panda.Value(u), panda.Value(rng.Intn(users))})
			}
		}
		for f := 0; f < users; f++ {
			np := 1 + rng.Intn(maxPosts)
			for k := 0; k < np; k++ {
				ins.Relations[2].Insert([]panda.Value{panda.Value(f), panda.Value(rng.Intn(1 << 20))})
			}
		}
		dcs := []panda.Constraint{
			panda.Cardinality(panda.Vars(0), 1, 0), // the user of interest
			panda.Degree(panda.Vars(0), panda.Vars(0, 1), maxFollows, 1),
			panda.Degree(panda.Vars(1), panda.Vars(1, 2), maxPosts, 2),
		}
		if err := panda.CheckInstance(&s, ins, dcs); err != nil {
			log.Fatal(err)
		}
		res, err := db.Eval(q, ins, dcs, panda.WithMode(panda.ModeFull))
		if err != nil {
			log.Fatal(err)
		}
		b, _ := res.Bound.Float64()
		fmt.Printf("%-13d %-11d %-9d 2^%-5.1f %-14d %d\n",
			users, ins.Relations[1].Size(), ins.Relations[2].Size(),
			b, res.Size(), res.Stats.MaxIntermediate)
		if math.Pow(2, b) > maxFollows*maxPosts*1.01 {
			log.Fatalf("bound exceeded the scale-independent budget of %d", maxFollows*maxPosts)
		}
	}
	fmt.Printf("\nThe bound stays ≤ %d·%d = %d while the database grows 100×.\n",
		maxFollows, maxPosts, maxFollows*maxPosts)
}
