// Command server is a minimal HTTP client for pandad, the long-lived PANDA
// query server. Start the server first:
//
//	go run ./cmd/pandad -addr :8080
//
// then run this client:
//
//	go run ./examples/server -addr http://localhost:8080
//
// It creates two relations, inserts tuples, runs the same query twice —
// the repeat is served from the plan cache with zero additional LP solves,
// which the /metrics scrape at the end shows — asks /v1/plan for the
// committed mode and width certificate without executing, opens a standing
// query on POST /v1/watch and prints the delta line the server pushes when
// a catalog insert completes a new join result, and fetches /v1/shapes to
// show the per-shape telemetry the runs landed on.
//
// The same client drives a pandarouter fleet unchanged — the router speaks
// the pandad protocol. Boot a planning tier, two replicas and the router:
//
//	go run ./cmd/pandad -addr :8081 -name planner   &
//	go run ./cmd/pandad -addr :8082 -name replica-a &
//	go run ./cmd/pandad -addr :8083 -name replica-b &
//	go run ./cmd/pandarouter -addr :8080 -planner http://localhost:8081 \
//	    -replicas http://localhost:8082,http://localhost:8083 &
//
// then point the client at the router and name the replicas so it can
// report the fleet-wide plan amortization at the end:
//
//	go run ./examples/server -addr http://localhost:8080 \
//	    -replicas http://localhost:8082,http://localhost:8083
//
// The fleet report shows each replica answering with zero LP solves —
// plans were built once on the planning tier and shipped over PUT
// /v1/plans before the queries arrived.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "http://localhost:8080", "pandad (or pandarouter) base URL")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs: report fleet plan amortization after the demo")
	flag.Parse()

	// Ingest: named relations with declared arities, then tuples.
	must(post(*addr+"/v1/relations", `{"name":"R","arity":2}`))
	must(post(*addr+"/v1/relations", `{"name":"S","arity":2}`))
	must(post(*addr+"/v1/relations/R/rows", `{"rows":[[1,2],[2,3]]}`))
	must(post(*addr+"/v1/relations/S/rows", `{"rows":[[2,5],[3,7]]}`))

	const query = `Q(A,B,C) :- R(A,B), S(B,C).`

	// Dry-run prepare: the committed strategy and exact width certificate.
	plan, err := get(*addr + "/v1/plan?q=" + url.QueryEscape(query))
	must(plan, err)
	fmt.Printf("plan      : %s", plan)

	// First execution pays the LP solves; the repeat plans for free.
	body, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := post(*addr+"/v1/query", string(body))
		must(resp, err)
		fmt.Printf("answer %d  : %s", i+1, firstLine(resp))
	}

	// Standing query: /v1/watch answers with a snapshot line, then pushes
	// one NDJSON delta line per maintenance round as the catalog mutates —
	// semi-naive maintenance on the pinned plan, zero further LP solves.
	watchDemo(*addr, query)

	// The planner counters prove the second run was a cache hit.
	metrics, err := get(*addr + "/metrics")
	must(metrics, err)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "panda_planner_") && !strings.HasPrefix(line, "#") {
			fmt.Println("metric    :", line)
		}
	}

	// Per-shape telemetry: both executions collapse onto one signature
	// digest, so the shape table reports a single entry with two requests
	// and its latency quantiles.
	shapes, err := get(*addr + "/v1/shapes")
	must(shapes, err)
	var view struct {
		Shapes []struct {
			Digest string            `json:"digest"`
			Reqs   map[string]uint64 `json:"requests"`
			Rows   uint64            `json:"rows"`
			Lat    struct {
				P50 float64 `json:"p50_seconds"`
				P99 float64 `json:"p99_seconds"`
			} `json:"latency"`
		} `json:"shapes"`
	}
	if err := json.Unmarshal([]byte(shapes), &view); err != nil {
		log.Fatal(err)
	}
	for _, sh := range view.Shapes {
		fmt.Printf("shape     : digest=%s requests=%v rows=%d p50=%.6fs p99=%.6fs\n",
			sh.Digest, sh.Reqs, sh.Rows, sh.Lat.P50, sh.Lat.P99)
	}

	// Fleet report: with -addr pointing at a pandarouter and -replicas
	// naming its backends, /v1/info on each replica shows the division of
	// labor — every LP solve happened on the planning tier, the replicas
	// served shipped plans (lp_solves 0, lp_solves_saved > 0).
	if *replicas == "" {
		return
	}
	for _, rep := range strings.Split(*replicas, ",") {
		rep = strings.TrimRight(strings.TrimSpace(rep), "/")
		if rep == "" {
			continue
		}
		info, err := get(rep + "/v1/info")
		must(info, err)
		var iv struct {
			Name    string `json:"name"`
			Planner struct {
				Hits          uint64 `json:"hits"`
				LPSolves      uint64 `json:"lp_solves"`
				LPSolvesSaved uint64 `json:"lp_solves_saved"`
			} `json:"planner"`
		}
		if err := json.Unmarshal([]byte(info), &iv); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica   : %s (%s) hits=%d lp_solves=%d lp_solves_saved=%d\n",
			iv.Name, rep, iv.Planner.Hits, iv.Planner.LPSolves, iv.Planner.LPSolvesSaved)
	}
}

// watchDemo opens a standing query, completes a new join pair in the
// catalog, and prints the snapshot and delta lines the stream pushes. A
// pandarouter front-end does not (yet) route /v1/watch, so a non-200
// answer just skips the demo.
func watchDemo(addr, query string) {
	body, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Printf("watch     : unavailable at %s (%d) — skipping the standing-query demo\n", addr, resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	if sc.Scan() {
		fmt.Printf("watch     : %s\n", sc.Text()) // the snapshot line
	}
	// R(4,5) alone completes nothing; S(5,9) then closes the join and the
	// server pushes {"tick":…,"ok":true,"rows":[[4,5,9]]}.
	must(post(addr+"/v1/relations/R/rows", `{"rows":[[4,5]]}`))
	must(post(addr+"/v1/relations/S/rows", `{"rows":[[5,9]]}`))
	if sc.Scan() {
		fmt.Printf("delta     : %s\n", sc.Text())
	}
}

func post(url, body string) (string, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
		return "", fmt.Errorf("%s: %d %s", url, resp.StatusCode, b)
	}
	return string(b), nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("%s: %d %s", url, resp.StatusCode, b)
	}
	return string(b), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i+1]
	}
	return s + "\n"
}

func must(_ string, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
