// Zhang–Yeung gap (Theorem 1.3): the polymatroid bound is provably not
// tight once functional dependencies enter. For the Zhang–Yeung query the
// polymatroid bound is N⁴ while the true (entropic) bound is at most
// N^{43/11}; the gap is certified exactly — the Figure 5 closure
// polymatroid attains 4·log N yet violates the Zhang–Yeung non-Shannon
// inequality.
package main

import (
	"fmt"
	"log"
	"math/big"

	"panda"
	"panda/internal/bitset"
	"panda/internal/bounds"
	"panda/internal/setfunc"
)

func main() {
	poly, ent, err := panda.ZhangYeungGap()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Zhang–Yeung query (Eq. 49): K(A,B,X,Y,C) with keys")
	fmt.Println("  AB, AXY, BXY, AC, XC, YC; |R..V| ≤ N³, |W| ≤ N²")
	fmt.Printf("  polymatroid bound : N^%v\n", poly.RatString())
	fmt.Printf("  entropic bound    : ≤ N^%v (≈ N^%v)\n", ent.RatString(), ent.FloatString(4))
	gap := new(big.Rat).Sub(poly, ent)
	fmt.Printf("  gap exponent      : %v — amplifiable to N^s by taking s·11 copies\n", gap.RatString())

	// The witness: Figure 5's closure polymatroid.
	h := setfunc.Figure5()
	fmt.Printf("\nFigure 5 polymatroid: IsPolymatroid=%v, h(ABXYC)=%v\n",
		h.IsPolymatroid(), h.At(bitset.Full(5)).RatString())

	// It violates the Zhang–Yeung non-Shannon inequality (51):
	zy := bounds.ZY51(0, 1, 2, 3)
	val := new(big.Rat)
	for z, c := range zy {
		val.Add(val, new(big.Rat).Mul(c, h.At(z)))
	}
	fmt.Printf("ZY functional on Figure 5: %v (< 0 ⇒ violates the entropic inequality)\n", val.RatString())

	// And ZY51 is genuinely non-Shannon: not entailed by Shannon alone.
	shannon, err := bounds.ShannonEntailed(4, bounds.ZY51(0, 1, 2, 3), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZY51 entailed by Shannon inequalities alone: %v (expected false)\n", shannon)
}
