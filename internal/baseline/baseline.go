// Package baseline implements the classic tree-decomposition-first
// evaluation strategy the paper contrasts PANDA with (Section 1.4 and
// Example 1.10): pick one tree decomposition, materialize every bag by
// directly joining the input relations it contains, then run Yannakakis.
// On adversarial inputs this pays the full fhtw cost (N² for the 4-cycle)
// because the strategy is stuck with its single tree.
package baseline

import (
	"fmt"

	"panda/internal/bitset"
	"panda/internal/hypergraph"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/yannakakis"
)

// Stats reports the cost drivers of a tree-plan run.
type Stats struct {
	MaxIntermediate int
	BagSizes        []int
}

// EvalTreePlan evaluates a full or Boolean conjunctive query with the
// fixed-decomposition plan. If td is nil, the decomposition minimizing the
// worst-case bag materialization (by fractional-cover heuristics: here
// simply the first enumerated) is used. Returns the output relation (nil
// for Boolean), the Boolean answer, and stats.
func EvalTreePlan(q *query.Conjunctive, ins *query.Instance, td *hypergraph.Decomposition) (*relation.Relation, bool, *Stats, error) {
	h := q.Hypergraph()
	if td == nil {
		tds, err := h.AllDecompositions()
		if err != nil {
			return nil, false, nil, err
		}
		if len(tds) == 0 {
			return nil, false, nil, fmt.Errorf("baseline: no tree decomposition")
		}
		td = tds[0]
	}
	if err := td.Validate(h); err != nil {
		return nil, false, nil, err
	}
	stats := &Stats{}
	bags := make([]*relation.Relation, len(td.Bags))
	for i, b := range td.Bags {
		t, err := materializeBag(q, ins, b)
		if err != nil {
			return nil, false, nil, err
		}
		if t.Size() > stats.MaxIntermediate {
			stats.MaxIntermediate = t.Size()
		}
		stats.BagSizes = append(stats.BagSizes, t.Size())
		bags[i] = t
	}
	if q.IsBoolean() {
		ok, err := yannakakis.NonEmpty(bags, td.Parent)
		return nil, ok, stats, err
	}
	out, err := yannakakis.Join(bags, td.Parent)
	if err != nil {
		return nil, false, nil, err
	}
	return out, out.Size() > 0, stats, nil
}

// materializeBag joins the projections of all input relations overlapping
// the bag — the textbook bag computation whose worst case is what width
// parameters measure.
func materializeBag(q *query.Conjunctive, ins *query.Instance, b bitset.Set) (*relation.Relation, error) {
	var acc *relation.Relation
	covered := bitset.Set(0)
	for i, a := range q.Atoms {
		ov := a.Vars.Intersect(b)
		if ov == 0 {
			continue
		}
		p := ins.Relations[i].Project(ov)
		if acc == nil {
			acc = p
		} else {
			acc = acc.Join(p)
		}
		covered = covered.Union(ov)
	}
	if acc == nil || covered != b {
		return nil, fmt.Errorf("baseline: bag %v not covered by atoms", b)
	}
	return acc, nil
}
