package baseline

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

func fourCycle() *query.Conjunctive {
	s := query.Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []query.Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
			{Name: "R41", Vars: bitset.Of(3, 0)},
		},
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(4)}
}

func TestTreePlanCorrect(t *testing.T) {
	q := fourCycle()
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		ins := query.NewInstance(&q.Schema)
		for i := range ins.Relations {
			for k := 0; k < 20; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5))})
			}
		}
		out, _, _, err := EvalTreePlan(q, ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(ins.FullJoin()) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

// TestTreePlanWorstCaseQuadratic demonstrates the Example 1.10 lower bound:
// for EACH tree decomposition there exists an adversarial instance on which
// it materializes a bag of size ≥ m² — the reason the fhtw-plan costs N²
// where PANDA pays N^{3/2}.
func TestTreePlanWorstCaseQuadratic(t *testing.T) {
	q := fourCycle()
	q.Free = 0 // Boolean
	m := 40
	// Instance A (the paper's): R12 = R34 = [m]×[1], R23 = R41 = [1]×[m].
	insA := query.NewInstance(&q.Schema)
	// Instance B: rotated by one position, killing the other tree.
	insB := query.NewInstance(&q.Schema)
	for i := 0; i < m; i++ {
		v := relation.Value(i)
		insA.Relations[0].Insert([]relation.Value{v, 0}) // R12(A1,A2) = [m]×[1]
		insA.Relations[1].Insert([]relation.Value{0, v}) // R23(A2,A3) = [1]×[m]
		insA.Relations[2].Insert([]relation.Value{v, 0}) // R34(A3,A4) = [m]×[1]
		insA.Relations[3].Insert([]relation.Value{v, 0}) // R41(A4,A1) = [1]×[m] (cols A1,A4)

		insB.Relations[0].Insert([]relation.Value{0, v}) // R12 = [1]×[m]
		insB.Relations[1].Insert([]relation.Value{v, 0}) // R23 = [m]×[1]
		insB.Relations[2].Insert([]relation.Value{0, v}) // R34 = [1]×[m]
		insB.Relations[3].Insert([]relation.Value{0, v}) // R41 = [m]×[1] (cols A1,A4)
	}
	h := q.Hypergraph()
	tds, err := h.AllDecompositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 2 {
		t.Fatalf("want the two Figure-2 decompositions, got %d", len(tds))
	}
	for ti, td := range tds {
		worst := 0
		for _, ins := range []*query.Instance{insA, insB} {
			_, ans, stats, err := EvalTreePlan(q, ins, td)
			if err != nil {
				t.Fatal(err)
			}
			if !ans {
				t.Fatalf("tree %d: cycle exists", ti)
			}
			if stats.MaxIntermediate > worst {
				worst = stats.MaxIntermediate
			}
		}
		if worst < m*m {
			t.Fatalf("tree %d: worst intermediate %d < m² = %d over both adversarial instances",
				ti, worst, m*m)
		}
	}
}

func TestTreePlanBoolean(t *testing.T) {
	q := fourCycle()
	q.Free = 0
	ins := query.NewInstance(&q.Schema)
	_, ans, _, err := EvalTreePlan(q, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans {
		t.Fatal("empty instance answered true")
	}
}
