// Package bitset implements subsets of a small variable universe [n] as
// bitmasks. Throughout the repository a variable set S ⊆ [n] (n ≤ 16) is a
// Set whose bit i is 1 iff variable i ∈ S. The empty set is 0.
package bitset

import (
	"math/bits"
	"sort"
	"strings"
)

// Set is a subset of [n] for n ≤ 16, encoded as a bitmask.
type Set uint32

// Of builds a Set from the listed variable indices.
func Of(vars ...int) Set {
	var s Set
	for _, v := range vars {
		s |= 1 << uint(v)
	}
	return s
}

// Full returns the full set [n] = {0, …, n−1}.
func Full(n int) Set { return Set(1<<uint(n)) - 1 }

// Singleton returns {v}.
func Singleton(v int) Set { return 1 << uint(v) }

// Card returns |s|.
func (s Set) Card() int { return bits.OnesCount32(uint32(s)) }

// Empty reports whether s = ∅.
func (s Set) Empty() bool { return s == 0 }

// Contains reports whether v ∈ s.
func (s Set) Contains(v int) bool { return s&(1<<uint(v)) != 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Add returns s ∪ {v}.
func (s Set) Add(v int) Set { return s | 1<<uint(v) }

// Remove returns s \ {v}.
func (s Set) Remove(v int) Set { return s &^ (1 << uint(v)) }

// Incomparable reports whether s ⊥ t, i.e. s ⊄ t and t ⊄ s and s ≠ t.
// This is the paper's I ⊥ J relation (I ⊄ J and J ⊄ I).
func (s Set) Incomparable(t Set) bool { return !s.SubsetOf(t) && !t.SubsetOf(s) }

// Vars returns the elements of s in increasing order.
func (s Set) Vars() []int {
	out := make([]int, 0, s.Card())
	for m := s; m != 0; {
		v := bits.TrailingZeros32(uint32(m))
		out = append(out, v)
		m &= m - 1
	}
	return out
}

// Min returns the smallest element of s, or -1 if s is empty.
func (s Set) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(s))
}

// Subsets calls fn on every subset of s (including ∅ and s itself).
// Enumeration is in increasing mask order restricted to s.
func (s Set) Subsets(fn func(Set)) {
	sub := Set(0)
	for {
		fn(sub)
		if sub == s {
			return
		}
		sub = (sub - s) & s
	}
}

// String renders s using the default variable names A0, A1, ….
func (s Set) String() string { return s.Label(nil) }

// Label renders s using the given variable names (falling back to Ai).
// The empty set renders as "∅".
func (s Set) Label(names []string) string {
	if s == 0 {
		return "∅"
	}
	var parts []string
	for _, v := range s.Vars() {
		if v < len(names) {
			parts = append(parts, names[v])
		} else {
			parts = append(parts, "A"+itoa(v))
		}
	}
	return strings.Join(parts, "")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Sorted returns the sets sorted by (cardinality, mask value); useful for
// deterministic iteration in tests and printed reports.
func Sorted(sets []Set) []Set {
	out := append([]Set(nil), sets...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Card() != out[j].Card() {
			return out[i].Card() < out[j].Card()
		}
		return out[i] < out[j]
	})
	return out
}
