package bitset

import (
	"testing"
	"testing/quick"
)

func TestOfAndVars(t *testing.T) {
	s := Of(0, 2, 5)
	if s.Card() != 3 {
		t.Fatalf("Card = %d, want 3", s.Card())
	}
	want := []int{0, 2, 5}
	got := s.Vars()
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestFull(t *testing.T) {
	if Full(4) != Of(0, 1, 2, 3) {
		t.Fatalf("Full(4) = %v", Full(4))
	}
	if Full(0) != 0 {
		t.Fatalf("Full(0) = %v", Full(0))
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(0, 1, 2), Of(1, 2, 3)
	if a.Union(b) != Of(0, 1, 2, 3) {
		t.Errorf("union wrong")
	}
	if a.Intersect(b) != Of(1, 2) {
		t.Errorf("intersect wrong")
	}
	if a.Minus(b) != Of(0) {
		t.Errorf("minus wrong")
	}
	if !a.Incomparable(b) {
		t.Errorf("a ⊥ b expected")
	}
	if a.Incomparable(a) {
		t.Errorf("a ⊥ a unexpected")
	}
	if Of(1).Incomparable(a) {
		t.Errorf("{1} ⊥ a unexpected: {1} ⊂ a")
	}
}

func TestSubsetRelations(t *testing.T) {
	a := Of(1, 3)
	if !a.SubsetOf(Of(0, 1, 2, 3)) {
		t.Errorf("subset expected")
	}
	if !a.ProperSubsetOf(Of(1, 2, 3)) {
		t.Errorf("proper subset expected")
	}
	if a.ProperSubsetOf(a) {
		t.Errorf("a ⊂ a unexpected")
	}
	if !Set(0).SubsetOf(a) {
		t.Errorf("∅ ⊆ a expected")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := Set(0).Add(3).Add(1)
	if !s.Contains(3) || !s.Contains(1) || s.Contains(0) {
		t.Fatalf("contains wrong: %v", s)
	}
	s = s.Remove(3)
	if s != Of(1) {
		t.Fatalf("remove wrong: %v", s)
	}
	s = s.Remove(3) // removing an absent element is a no-op
	if s != Of(1) {
		t.Fatalf("remove absent changed set: %v", s)
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := Of(0, 2, 3)
	var count int
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) {
		count++
		if !sub.SubsetOf(s) {
			t.Errorf("enumerated non-subset %v of %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
	})
	if count != 8 {
		t.Fatalf("enumerated %d subsets, want 8", count)
	}
}

func TestSubsetsOfEmpty(t *testing.T) {
	var count int
	Set(0).Subsets(func(Set) { count++ })
	if count != 1 {
		t.Fatalf("∅ has %d subsets, want 1", count)
	}
}

func TestMin(t *testing.T) {
	if Set(0).Min() != -1 {
		t.Errorf("Min(∅) = %d", Set(0).Min())
	}
	if Of(3, 5).Min() != 3 {
		t.Errorf("Min = %d, want 3", Of(3, 5).Min())
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 1).Label([]string{"X", "Y"}); got != "XY" {
		t.Errorf("Label = %q", got)
	}
	if got := Set(0).String(); got != "∅" {
		t.Errorf("String(∅) = %q", got)
	}
	if got := Of(10).String(); got != "A10" {
		t.Errorf("String = %q", got)
	}
}

func TestSorted(t *testing.T) {
	in := []Set{Of(0, 1, 2), Of(3), Of(0, 1), Of(1)}
	out := Sorted(in)
	if out[0] != Of(1) || out[1] != Of(3) || out[2] != Of(0, 1) || out[3] != Of(0, 1, 2) {
		t.Fatalf("Sorted = %v", out)
	}
	// input unchanged
	if in[0] != Of(0, 1, 2) {
		t.Fatalf("Sorted mutated input")
	}
}

// Property: union is the smallest set containing both, and De Morgan-ish
// identities hold on the 16-variable universe.
func TestQuickSetIdentities(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := Set(x), Set(y)
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if a.Intersect(b).Union(a.Minus(b)) != a {
			return false
		}
		if a.Card()+b.Card() != u.Card()+a.Intersect(b).Card() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Incomparable is symmetric and irreflexive, and equivalent to the
// definitional form.
func TestQuickIncomparable(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := Set(x), Set(y)
		def := !(a.SubsetOf(b)) && !(b.SubsetOf(a))
		return a.Incomparable(b) == def && a.Incomparable(b) == b.Incomparable(a) && !a.Incomparable(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
