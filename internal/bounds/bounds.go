// Package bounds implements the output-size bounds of Sections 2–4: the
// vertex bound (28), integral edge cover bound (29), AGM / fractional edge
// cover bound (30), the subadditive-cone bound of Proposition 3.2, the
// degree-aware polymatroid bound DAPB (39), and the Zhang–Yeung machinery
// behind Theorem 1.3 / Lemma 4.5 (polymatroid vs entropic gap).
//
// All bounds are computed exactly over rationals, in log₂ units: a bound
// value β means |Q| ≤ 2^β.
package bounds

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/lp"
)

// VertexBound returns log VB(Q) = n·log N (Eq. 28).
func VertexBound(n int, logN *big.Rat) *big.Rat {
	return new(big.Rat).Mul(big.NewRat(int64(n), 1), logN)
}

// IntegralCoverBound returns ρ(Q, (N_F)) (Eq. 32): the cheapest integral
// edge cover weighted by log N_F, computed by exact set-cover DP over
// vertex subsets (edge multiplicities allowed; costs may differ per edge).
func IntegralCoverBound(h *hypergraph.Hypergraph, logNs []*big.Rat) (*big.Rat, error) {
	if len(logNs) != len(h.Edges) {
		return nil, fmt.Errorf("bounds: %d edges but %d sizes", len(h.Edges), len(logNs))
	}
	full := bitset.Full(h.N)
	size := int(full) + 1
	dp := make([]*big.Rat, size)
	dp[0] = new(big.Rat)
	for s := bitset.Set(0); s <= full; s++ {
		if dp[s] == nil {
			continue
		}
		for j, e := range h.Edges {
			t := s.Union(e)
			c := new(big.Rat).Add(dp[s], logNs[j])
			if dp[t] == nil || c.Cmp(dp[t]) < 0 {
				dp[t] = c
			}
		}
	}
	if dp[full] == nil {
		return nil, fmt.Errorf("bounds: edges do not cover all vertices")
	}
	return dp[full], nil
}

// AGM returns the AGM bound ρ*(Q, (N_F)) (Eq. 33): the fractional edge
// cover LP with per-edge weights log N_F, solved exactly.
func AGM(h *hypergraph.Hypergraph, logNs []*big.Rat) (*big.Rat, error) {
	if len(logNs) != len(h.Edges) {
		return nil, fmt.Errorf("bounds: %d edges but %d sizes", len(h.Edges), len(logNs))
	}
	prob := lp.NewProblem(len(h.Edges), false)
	for j, w := range logNs {
		prob.SetObj(j, w)
	}
	one := big.NewRat(1, 1)
	for v := 0; v < h.N; v++ {
		row := map[int]*big.Rat{}
		for j, e := range h.Edges {
			if e.Contains(v) {
				row[j] = one
			}
		}
		if len(row) == 0 {
			return nil, fmt.Errorf("bounds: vertex %d uncovered", v)
		}
		prob.AddConstraint(row, lp.Ge, one)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("bounds: AGM LP %v", sol.Status)
	}
	return sol.Objective, nil
}

// Polymatroid returns the degree-aware polymatroid bound DAPB(Q) of
// Eq. (39): max{h([n]) | h ∈ Γn ∩ HDC}, solved exactly. For pure
// cardinality constraints this equals the AGM bound (Proposition 3.2).
func Polymatroid(n int, dcs []flow.DC) (*big.Rat, error) {
	res, err := flow.MaximinBound(n, dcs, []bitset.Set{bitset.Full(n)})
	if err != nil {
		return nil, err
	}
	return res.Bound, nil
}

// Modular returns max{h([n]) | h ∈ Mn ∩ HCC} for cardinality constraints:
// by LP duality this is again the AGM bound (proof of Prop 3.2 /
// Lemma 3.1). Computed directly as an LP over vertex weights.
func Modular(n int, dcs []flow.DC) (*big.Rat, error) {
	prob := lp.NewProblem(n, true)
	one := big.NewRat(1, 1)
	for v := 0; v < n; v++ {
		prob.SetObj(v, one)
	}
	covered := bitset.Set(0)
	for _, dc := range dcs {
		if dc.X != 0 {
			return nil, fmt.Errorf("bounds: Modular needs cardinality constraints only")
		}
		row := map[int]*big.Rat{}
		for _, v := range dc.Y.Vars() {
			row[v] = one
		}
		covered = covered.Union(dc.Y)
		prob.AddConstraint(row, lp.Le, dc.LogN)
	}
	if covered != bitset.Full(n) {
		return nil, fmt.Errorf("bounds: constraints do not cover all variables")
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("bounds: modular LP %v", sol.Status)
	}
	return sol.Objective, nil
}

// Subadditive returns max{h([n]) | h ∈ SAn ∩ HCC}: the bound over the
// subadditive cone, which Proposition 3.2 (Eq. 43) proves equal to the
// integral edge cover bound. The LP uses all pairwise subadditivity rows
// h(X∪Y) ≤ h(X) + h(Y) plus elemental monotonicity.
func Subadditive(n int, dcs []flow.DC) (*big.Rat, error) {
	full := bitset.Full(n)
	nv := int(full) // variables h(Z), Z = 1..full (h(∅) = 0 implicit)
	idx := func(z bitset.Set) int { return int(z) - 1 }
	prob := lp.NewProblem(nv, true)
	prob.SetObj(idx(full), big.NewRat(1, 1))
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	// Subadditivity h(X∪Y) − h(X) − h(Y) ≤ 0 for incomparable X, Y.
	for x := bitset.Set(1); x <= full; x++ {
		for y := x + 1; y <= full; y++ {
			if !x.Incomparable(y) {
				continue
			}
			u := x.Union(y)
			row := map[int]*big.Rat{}
			add := func(z bitset.Set, c *big.Rat) {
				if cur, ok := row[idx(z)]; ok {
					cur.Add(cur, c)
				} else {
					row[idx(z)] = new(big.Rat).Set(c)
				}
			}
			add(u, one)
			add(x, negOne)
			add(y, negOne)
			prob.AddConstraint(row, lp.Le, new(big.Rat))
		}
	}
	// Elemental monotonicity h(S) ≤ h(S ∪ {i}).
	for s := bitset.Set(1); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			row := map[int]*big.Rat{
				idx(s):        new(big.Rat).Set(one),
				idx(s.Add(i)): new(big.Rat).Set(negOne),
			}
			prob.AddConstraint(row, lp.Le, new(big.Rat))
		}
	}
	for _, dc := range dcs {
		if dc.X != 0 {
			return nil, fmt.Errorf("bounds: Subadditive needs cardinality constraints only")
		}
		row := map[int]*big.Rat{idx(dc.Y): new(big.Rat).Set(one)}
		prob.AddConstraint(row, lp.Le, dc.LogN)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("bounds: subadditive LP %v (constraints must cover all variables)", sol.Status)
	}
	return sol.Objective, nil
}
