package bounds

import (
	"math/big"
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/setfunc"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func fourCycle() *hypergraph.Hypergraph {
	return hypergraph.New(4,
		bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3), bitset.Of(3, 0))
}

func triangle() *hypergraph.Hypergraph {
	return hypergraph.New(3, bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(0, 2))
}

func unitLogs(h *hypergraph.Hypergraph) []*big.Rat {
	out := make([]*big.Rat, len(h.Edges))
	for i := range out {
		out[i] = rat(1, 1)
	}
	return out
}

func ccDCs(h *hypergraph.Hypergraph) []flow.DC {
	var out []flow.DC
	for _, e := range h.Edges {
		out = append(out, flow.DC{X: 0, Y: e, LogN: rat(1, 1)})
	}
	return out
}

func TestVertexBound(t *testing.T) {
	if VertexBound(4, rat(1, 1)).Cmp(rat(4, 1)) != 0 {
		t.Fatal("VB(4, logN=1) should be 4")
	}
}

func TestAGMTriangle(t *testing.T) {
	got, err := AGM(triangle(), unitLogs(triangle()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("AGM(triangle) = %v, want 3/2", got)
	}
}

func TestAGMFourCycle(t *testing.T) {
	got, err := AGM(fourCycle(), unitLogs(fourCycle()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("AGM(C4) = %v, want 2 (Example 1.2(a))", got)
	}
}

func TestIntegralCoverBound(t *testing.T) {
	got, err := IntegralCoverBound(triangle(), unitLogs(triangle()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("ρ(triangle) = %v, want 2", got)
	}
	// Weighted: make one edge cheap.
	logs := []*big.Rat{rat(1, 10), rat(1, 1), rat(1, 1)}
	got, err = IntegralCoverBound(triangle(), logs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(11, 10)) != 0 {
		t.Fatalf("weighted ρ = %v, want 11/10", got)
	}
	if _, err := IntegralCoverBound(hypergraph.New(2, bitset.Of(0)), []*big.Rat{rat(1, 1)}); err == nil {
		t.Fatal("uncoverable accepted")
	}
}

// TestProposition32 verifies the bound collapses of Proposition 3.2 on
// random hypergraphs with random cardinality constraints:
//
//	Modular = Polymatroid = AGM (Eq. 45)  and  Subadditive = ρ (Eq. 43).
func TestProposition32(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(2)
		var edges []bitset.Set
		var logs []*big.Rat
		for v := 0; v < n; v++ { // spanning edges
			edges = append(edges, bitset.Of(v, (v+1)%n))
			logs = append(logs, rat(int64(1+rng.Intn(3)), 1))
		}
		for k := 0; k < rng.Intn(3); k++ {
			var e bitset.Set
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					e = e.Add(v)
				}
			}
			if e.Card() >= 2 {
				edges = append(edges, e)
				logs = append(logs, rat(int64(1+rng.Intn(3)), 1))
			}
		}
		h := hypergraph.New(n, edges...)
		var dcs []flow.DC
		for i, e := range edges {
			dcs = append(dcs, flow.DC{X: 0, Y: e, LogN: logs[i]})
		}
		agm, err := AGM(h, logs)
		if err != nil {
			t.Fatal(err)
		}
		poly, err := Polymatroid(n, dcs)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := Modular(n, dcs)
		if err != nil {
			t.Fatal(err)
		}
		if agm.Cmp(poly) != 0 || agm.Cmp(mod) != 0 {
			t.Fatalf("trial %d: AGM=%v poly=%v modular=%v — Prop 3.2 (45) fails", trial, agm, poly, mod)
		}
		sa, err := Subadditive(n, dcs)
		if err != nil {
			t.Fatal(err)
		}
		rho, err := IntegralCoverBound(h, logs)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Cmp(rho) != 0 {
			t.Fatalf("trial %d: SA bound %v ≠ integral cover %v — Prop 3.2 (43) fails", trial, sa, rho)
		}
		if agm.Cmp(sa) > 0 {
			t.Fatalf("trial %d: AGM %v > SA %v", trial, agm, sa)
		}
	}
}

// TestModularization is Lemma 3.1: max h(B) over Γn∩HCC equals the modular
// maximum for arbitrary B, checked by restricting the modular LP to B.
func TestModularization(t *testing.T) {
	h := fourCycle()
	dcs := ccDCs(h)
	for _, b := range []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(0, 2), bitset.Full(4)} {
		r, err := flow.MaximinBound(4, dcs, []bitset.Set{b})
		if err != nil {
			t.Fatal(err)
		}
		// Modular maximum restricted to B: LP over vertex weights.
		obj := map[bitset.Set]*big.Rat{b: rat(1, 1)}
		lin, _, err := flow.LinearBound(4, dcs, obj)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bound.Cmp(lin) != 0 {
			t.Fatalf("B=%v: maximin %v ≠ linear %v", b, r.Bound, lin)
		}
	}
}

// TestZhangYeungGap is Theorem 1.3: polymatroid bound 4 vs entropic 43/11.
func TestZhangYeungGap(t *testing.T) {
	poly, ent, err := Theorem13Gap()
	if err != nil {
		t.Fatal(err)
	}
	if poly.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("polymatroid bound = %v, want 4", poly)
	}
	if ent.Cmp(rat(43, 11)) != 0 {
		t.Fatalf("entropic bound = %v, want 43/11", ent)
	}
	if poly.Cmp(ent) <= 0 {
		t.Fatal("no gap: Theorem 1.3 fails")
	}
	// The Figure 5 polymatroid certifies the polymatroid bound is attained.
	h5 := setfunc.Figure5()
	n, dcs := ZhangYeungQuery()
	for _, dc := range dcs {
		if h5.Cond(dc.Y, dc.X).Cmp(dc.LogN) > 0 {
			t.Fatalf("Figure 5 violates constraint (%v,%v)", dc.X, dc.Y)
		}
	}
	if h5.At(bitset.Full(n)).Cmp(poly) != 0 {
		t.Fatalf("Figure 5 achieves %v, LP says %v", h5.At(bitset.Full(n)), poly)
	}
}

// TestZY51NotShannon: the ZY functional itself must NOT be entailed by
// Shannon inequalities alone (it is non-Shannon), but must be entailed
// given itself as an axiom.
func TestZY51NotShannon(t *testing.T) {
	f := ZY51(0, 1, 2, 3)
	ok, err := ShannonEntailed(4, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ZY51 claimed to be a Shannon-type inequality")
	}
	ok, err = ShannonEntailed(4, f, []Functional{ZY51(0, 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ZY51 not entailed by itself")
	}
}

// TestLemma45 verifies both halves of Lemma 4.5.
func TestLemma45(t *testing.T) {
	// 5-variable rule: polymatroid bound exactly 4 > 43/11.
	n, dcs, targets := Lemma45Rule5()
	res, err := flow.MaximinBound(n, dcs, targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("5-var disjunctive polymatroid bound = %v, want 4", res.Bound)
	}
	// Entropic side: (59) entailed by ZY51 + Shannon.
	ok, err := ShannonEntailed(5, ZY59(0, 1, 2, 3, 4), []Functional{ZY51(0, 1, 2, 3)})
	if err != nil || !ok {
		t.Fatalf("ZY59 entailment: ok=%v err=%v", ok, err)
	}
	// 8-variable rule with identical cardinalities: the Figure 6
	// polymatroid certifies bound ≥ 4 while (64) gives entropic ≤ 330/85.
	if err := Verify64Identity(); err != nil {
		t.Fatal(err)
	}
	n8, dcs8, targets8 := Lemma45Rule8()
	h6 := setfunc.Figure6()
	for _, dc := range dcs8 {
		if h6.Cond(dc.Y, dc.X).Cmp(dc.LogN) > 0 {
			t.Fatalf("Figure 6 violates constraint on %v", dc.Y)
		}
	}
	minT := new(big.Rat)
	for i, b := range targets8 {
		v := h6.At(b)
		if i == 0 || v.Cmp(minT) < 0 {
			minT = v
		}
	}
	if minT.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("Figure 6 min target = %v, want 4", minT)
	}
	ent := rat(330, 85)
	if minT.Cmp(ent) <= 0 {
		t.Fatal("no gap in the identical-cardinality case")
	}
	_ = n8
}

// TestSubadditiveVsAGM: SA relaxation can only be larger.
func TestSubadditiveVsAGM(t *testing.T) {
	h := triangle()
	dcs := ccDCs(h)
	sa, err := Subadditive(3, dcs)
	if err != nil {
		t.Fatal(err)
	}
	agm, err := AGM(h, unitLogs(h))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Cmp(agm) < 0 {
		t.Fatalf("SA %v < AGM %v", sa, agm)
	}
	// Triangle: SA bound = ρ = 2 > AGM = 3/2 — the strict gap of the
	// hierarchy.
	if sa.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("SA(triangle) = %v, want 2", sa)
	}
}
