package bounds

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/lp"
)

// Functional is a signed linear functional Σ_Z c_Z·h(Z) on set functions.
type Functional map[bitset.Set]*big.Rat

func (f Functional) add(z bitset.Set, c *big.Rat) {
	if z == 0 || c.Sign() == 0 {
		return
	}
	cur, ok := f[z]
	if !ok {
		cur = new(big.Rat)
		f[z] = cur
	}
	cur.Add(cur, c)
	if cur.Sign() == 0 {
		delete(f, z)
	}
}

// AddScaled adds s·g into f.
func (f Functional) AddScaled(g Functional, s *big.Rat) {
	for z, c := range g {
		f.add(z, new(big.Rat).Mul(c, s))
	}
}

// Equal reports coefficient-wise equality.
func (f Functional) Equal(g Functional) bool {
	if len(f) != len(g) {
		return false
	}
	for z, c := range f {
		d, ok := g[z]
		if !ok || c.Cmp(d) != 0 {
			return false
		}
	}
	return true
}

// ZY51 builds the Zhang–Yeung functional (RHS − LHS of inequality (51)) on
// the variables a, b, x, y of an n-variable universe: the non-Shannon
// inequality asserts this functional is ≥ 0 on all entropic functions
// (but not on all polymatroids — Figure 5 violates it):
//
//	3h(XY)+3h(AX)+3h(AY)+h(BX)+h(BY)
//	  − h(A) − 2h(X) − 2h(Y) − h(AB) − 4h(AXY) − h(BXY) ≥ 0.
func ZY51(a, b, x, y int) Functional {
	f := Functional{}
	r := func(v int64) *big.Rat { return big.NewRat(v, 1) }
	f.add(bitset.Of(x, y), r(3))
	f.add(bitset.Of(a, x), r(3))
	f.add(bitset.Of(a, y), r(3))
	f.add(bitset.Of(b, x), r(1))
	f.add(bitset.Of(b, y), r(1))
	f.add(bitset.Of(a), r(-1))
	f.add(bitset.Of(x), r(-2))
	f.add(bitset.Of(y), r(-2))
	f.add(bitset.Of(a, b), r(-1))
	f.add(bitset.Of(a, x, y), r(-4))
	f.add(bitset.Of(b, x, y), r(-1))
	return f
}

// ZY59 builds the functional of inequality (59) on variables a, b, x, y, c:
//
//	3h(XY)+3h(AX)+3h(AY)+h(BX)+h(BY)+5h(C)
//	  − h(AB) − 4h(AXY) − h(BXY) − h(AC) − 2h(XC) − 2h(YC) ≥ 0
//
// valid for all entropic functions (derived in Lemma 4.5 from ZY51 plus
// three Shannon submodularities); the Figure 5 polymatroid violates it.
func ZY59(a, b, x, y, c int) Functional {
	f := Functional{}
	r := func(v int64) *big.Rat { return big.NewRat(v, 1) }
	f.add(bitset.Of(x, y), r(3))
	f.add(bitset.Of(a, x), r(3))
	f.add(bitset.Of(a, y), r(3))
	f.add(bitset.Of(b, x), r(1))
	f.add(bitset.Of(b, y), r(1))
	f.add(bitset.Of(c), r(5))
	f.add(bitset.Of(a, b), r(-1))
	f.add(bitset.Of(a, x, y), r(-4))
	f.add(bitset.Of(b, x, y), r(-1))
	f.add(bitset.Of(a, c), r(-1))
	f.add(bitset.Of(x, c), r(-2))
	f.add(bitset.Of(y, c), r(-2))
	return f
}

// ShannonEntailed reports whether target = Σ tᵢ·axiomᵢ + (non-negative
// combination of elemental Shannon generators) for some t ≥ 0 — i.e.
// whether the inequality target ≥ 0 follows from the axioms plus
// Shannon-type inequalities. Solved as an exact LP feasibility problem over
// the coefficient equations.
func ShannonEntailed(n int, target Functional, axioms []Functional) (bool, error) {
	type sigVar struct {
		s    bitset.Set
		i, j int
	}
	type muVar struct {
		x bitset.Set
		i int
	}
	var sigs []sigVar
	var mus []muVar
	full := bitset.Full(n)
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			mus = append(mus, muVar{x: s, i: i})
			for j := i + 1; j < n; j++ {
				if s.Contains(j) {
					continue
				}
				sigs = append(sigs, sigVar{s: s, i: i, j: j})
			}
		}
	}
	offSig := len(axioms)
	offMu := offSig + len(sigs)
	nv := offMu + len(mus)
	prob := lp.NewProblem(nv, false)
	rows := map[bitset.Set]map[int]*big.Rat{}
	addCoef := func(z bitset.Set, v int, c *big.Rat) {
		if z == 0 || c.Sign() == 0 {
			return
		}
		row, ok := rows[z]
		if !ok {
			row = map[int]*big.Rat{}
			rows[z] = row
		}
		cur, ok := row[v]
		if !ok {
			cur = new(big.Rat)
			row[v] = cur
		}
		cur.Add(cur, c)
	}
	for ai, ax := range axioms {
		for z, c := range ax {
			addCoef(z, ai, c)
		}
	}
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	// Elemental submodularity generator: h(S∪i)+h(S∪j)−h(S∪ij)−h(S) ≥ 0.
	for v, sv := range sigs {
		i, j := sv.s.Add(sv.i), sv.s.Add(sv.j)
		addCoef(i, offSig+v, one)
		addCoef(j, offSig+v, one)
		addCoef(i.Union(j), offSig+v, negOne)
		addCoef(i.Intersect(j), offSig+v, negOne)
	}
	// Elemental monotonicity generator: h(S∪i)−h(S) ≥ 0.
	for v, mv := range mus {
		addCoef(mv.x.Add(mv.i), offMu+v, one)
		addCoef(mv.x, offMu+v, negOne)
	}
	for z := bitset.Set(1); z <= full; z++ {
		row := rows[z]
		b, ok := target[z]
		if !ok {
			b = new(big.Rat)
		}
		if row == nil {
			if b.Sign() != 0 {
				return false, nil
			}
			continue
		}
		prob.AddConstraint(row, lp.Eq, b)
	}
	sol, err := prob.Solve()
	if err != nil {
		return false, err
	}
	return sol.Status == lp.Optimal, nil
}

// ZhangYeungQuery returns the universe size, degree constraints (in log N
// units) and the full-set target of the Zhang–Yeung query (49) used by
// Theorem 1.3: variables A,B,X,Y,C = 0..4; cardinalities
// |R|=…=|V| ≤ N³, |W| ≤ N², and the six keys of K as FDs.
func ZhangYeungQuery() (n int, dcs []flow.DC) {
	const a, b, x, y, c = 0, 1, 2, 3, 4
	full := bitset.Full(5)
	three := big.NewRat(3, 1)
	two := big.NewRat(2, 1)
	zero := new(big.Rat)
	dcs = []flow.DC{
		{X: 0, Y: bitset.Of(x, y), LogN: three}, // R(X,Y)
		{X: 0, Y: bitset.Of(a, x), LogN: three}, // S(A,X)
		{X: 0, Y: bitset.Of(a, y), LogN: three}, // T(A,Y)
		{X: 0, Y: bitset.Of(b, x), LogN: three}, // U(B,X)
		{X: 0, Y: bitset.Of(b, y), LogN: three}, // V(B,Y)
		{X: 0, Y: bitset.Of(c), LogN: two},      // W(C)
		// Keys of K(A,B,X,Y,C): each determines the whole tuple.
		{X: bitset.Of(a, b), Y: full, LogN: zero},
		{X: bitset.Of(a, x, y), Y: full, LogN: zero},
		{X: bitset.Of(b, x, y), Y: full, LogN: zero},
		{X: bitset.Of(a, c), Y: full, LogN: zero},
		{X: bitset.Of(x, c), Y: full, LogN: zero},
		{X: bitset.Of(y, c), Y: full, LogN: zero},
	}
	return 5, dcs
}

// Theorem13Gap computes the two sides of Theorem 1.3 for the Zhang–Yeung
// query: the exact polymatroid bound (4·log N) and the entropic upper
// bound (43/11·log N) certified by verifying that inequality (50)'s
// functional is entailed by ZY51 plus Shannon inequalities.
// Both values are in log N units.
func Theorem13Gap() (polymatroid, entropic *big.Rat, err error) {
	n, dcs := ZhangYeungQuery()
	polymatroid, err = Polymatroid(n, dcs)
	if err != nil {
		return nil, nil, err
	}
	// Entropic: 11·h(ABXYC) ≤ Σ constraint terms (50). With the key FDs
	// all conditional terms vanish, so
	// 11·log|Q| ≤ 3·3+3·3+3·3+3+3+5·2 = 43. Verify the derivation:
	// the (50) functional equals ZY59 which must be Shannon-entailed by
	// ZY51.
	const a, b, x, y, c = 0, 1, 2, 3, 4
	ok, err := ShannonEntailed(5, ZY59(a, b, x, y, c), []Functional{ZY51(a, b, x, y)})
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("bounds: inequality (59) is not entailed by ZY51 + Shannon")
	}
	entropic = big.NewRat(43, 11)
	return polymatroid, entropic, nil
}

// Lemma45Rule5 returns the 5-variable disjunctive rule data of Lemma 4.5's
// first part: targets {AB, AXY, BXY, AC, XC, YC} with the cardinality
// constraints of the rule (|R₁..₅| ≤ N³, |R₆| ≤ N²).
func Lemma45Rule5() (n int, dcs []flow.DC, targets []bitset.Set) {
	const a, b, x, y, c = 0, 1, 2, 3, 4
	three := big.NewRat(3, 1)
	two := big.NewRat(2, 1)
	dcs = []flow.DC{
		{X: 0, Y: bitset.Of(x, y), LogN: three},
		{X: 0, Y: bitset.Of(a, x), LogN: three},
		{X: 0, Y: bitset.Of(a, y), LogN: three},
		{X: 0, Y: bitset.Of(b, x), LogN: three},
		{X: 0, Y: bitset.Of(b, y), LogN: three},
		{X: 0, Y: bitset.Of(c), LogN: two},
	}
	targets = []bitset.Set{
		bitset.Of(a, b), bitset.Of(a, x, y), bitset.Of(b, x, y),
		bitset.Of(a, c), bitset.Of(x, c), bitset.Of(y, c),
	}
	return 5, dcs, targets
}

// Verify64Identity checks by exact coefficient arithmetic that the
// 8-variable non-Shannon inequality (64) of Lemma 4.5 equals
// 5·(51) + 1·(61) + 2·(62) + 2·(63), where (61)–(63) are ZY59 instances on
// the primed copy with C replaced by A, X, Y respectively. Combined with
// the n=5 entailment check of ZY59 this certifies (64) without an
// 8-variable LP.
func Verify64Identity() error {
	const a, b, x, y, a2, b2, x2, y2 = 0, 1, 2, 3, 4, 5, 6, 7
	r := func(v int64) *big.Rat { return big.NewRat(v, 1) }
	combo := Functional{}
	combo.AddScaled(ZY51(a, b, x, y), r(5))
	combo.AddScaled(ZY59(a2, b2, x2, y2, a), r(1))
	combo.AddScaled(ZY59(a2, b2, x2, y2, x), r(2))
	combo.AddScaled(ZY59(a2, b2, x2, y2, y), r(2))

	// Inequality (64), RHS − LHS.
	want := Functional{}
	// RHS: 5[3XY+3AX+3AY+BX+BY+3X'Y'+3A'X'+3A'Y'+B'X'+B'Y'].
	for _, e := range []struct {
		s bitset.Set
		c int64
	}{
		{bitset.Of(x, y), 15}, {bitset.Of(a, x), 15}, {bitset.Of(a, y), 15},
		{bitset.Of(b, x), 5}, {bitset.Of(b, y), 5},
		{bitset.Of(x2, y2), 15}, {bitset.Of(a2, x2), 15}, {bitset.Of(a2, y2), 15},
		{bitset.Of(b2, x2), 5}, {bitset.Of(b2, y2), 5},
	} {
		want.add(e.s, r(e.c))
	}
	// LHS (negated): 5[AB+4AXY+BXY+A'B'+4A'X'Y'+B'X'Y'] + A'A+2X'A+2Y'A
	// + 2A'X+4X'X+4Y'X + 2A'Y+4X'Y+4Y'Y.
	for _, e := range []struct {
		s bitset.Set
		c int64
	}{
		{bitset.Of(a, b), -5}, {bitset.Of(a, x, y), -20}, {bitset.Of(b, x, y), -5},
		{bitset.Of(a2, b2), -5}, {bitset.Of(a2, x2, y2), -20}, {bitset.Of(b2, x2, y2), -5},
		{bitset.Of(a2, a), -1}, {bitset.Of(x2, a), -2}, {bitset.Of(y2, a), -2},
		{bitset.Of(a2, x), -2}, {bitset.Of(x2, x), -4}, {bitset.Of(y2, x), -4},
		{bitset.Of(a2, y), -2}, {bitset.Of(x2, y), -4}, {bitset.Of(y2, y), -4},
	} {
		want.add(e.s, r(e.c))
	}
	// The paper's (51) contribution carries −5h(A)−10h(X)−10h(Y) while the
	// ZY59 instances contribute +5h(A)+10h(X)+10h(Y); they cancel in (64).
	if !combo.Equal(want) {
		return fmt.Errorf("bounds: (64) ≠ 5·(51) + (61) + 2·(62) + 2·(63)")
	}
	return nil
}

// Lemma45Rule8 returns the 8-variable rule (65): ten cardinality
// constraints |Rᵢ| ≤ N³ and fifteen targets. Its entropic bound is at most
// 330/85·log N by inequality (64), while the Figure 6 polymatroid shows the
// polymatroid bound is ≥ 4·log N.
func Lemma45Rule8() (n int, dcs []flow.DC, targets []bitset.Set) {
	const a, b, x, y, a2, b2, x2, y2 = 0, 1, 2, 3, 4, 5, 6, 7
	three := big.NewRat(3, 1)
	for _, e := range []bitset.Set{
		bitset.Of(x, y), bitset.Of(a, x), bitset.Of(a, y), bitset.Of(b, x), bitset.Of(b, y),
		bitset.Of(x2, y2), bitset.Of(a2, x2), bitset.Of(a2, y2), bitset.Of(b2, x2), bitset.Of(b2, y2),
	} {
		dcs = append(dcs, flow.DC{X: 0, Y: e, LogN: three})
	}
	targets = []bitset.Set{
		bitset.Of(a, b), bitset.Of(a, x, y), bitset.Of(b, x, y),
		bitset.Of(a2, b2), bitset.Of(a2, x2, y2), bitset.Of(b2, x2, y2),
		bitset.Of(a2, a), bitset.Of(x2, a), bitset.Of(y2, a),
		bitset.Of(a2, x), bitset.Of(x2, x), bitset.Of(y2, x),
		bitset.Of(a2, y), bitset.Of(x2, y), bitset.Of(y2, y),
	}
	return 8, dcs, targets
}
