package core

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/yannakakis"
)

// toFlowDCs converts query constraints into the flow package's form,
// validating shapes and attaching guards.
func toFlowDCs(s *query.Schema, dcs []query.DegreeConstraint) ([]flow.DC, error) {
	out := make([]flow.DC, len(dcs))
	for i, c := range dcs {
		if err := c.Validate(s.NumVars); err != nil {
			return nil, err
		}
		out[i] = flow.DC{X: c.X, Y: c.Y, LogN: c.LogN}
	}
	return out, nil
}

// withAtomCardinalities appends (∅, F, |R_F|) for every atom whose exact
// cardinality constraint is missing — these are always true of the instance
// and can only tighten the bound.
func withAtomCardinalities(s *query.Schema, ins *query.Instance, dcs []query.DegreeConstraint) []query.DegreeConstraint {
	have := map[bitset.Set]bool{}
	for _, c := range dcs {
		if c.IsCardinality() {
			have[c.Y] = true
		}
	}
	out := append([]query.DegreeConstraint(nil), dcs...)
	for i, a := range s.Atoms {
		if !have[a.Vars] {
			out = append(out, query.Cardinality(a.Vars, int64(ins.Relations[i].Size()), i))
		}
	}
	return out
}

// unitRelation returns the nullary relation {()}.
func unitRelation() *relation.Relation {
	r := relation.New("T∅", 0)
	r.Insert([]relation.Value{})
	return r
}

// EvalDisjunctive runs PANDA (Algorithm 1) on a disjunctive datalog rule:
// it solves the polymatroid bound LP (Lemma 5.2), extracts a witness
// (Proposition 5.4), constructs a proof sequence (Theorem 5.9), and
// interprets it over the instance. The returned tables form a model of the
// rule whose per-table sizes are governed by the bound (Theorem 1.7).
//
// Every constraint must be guarded by an atom; callers who only know
// relation sizes can pass nil dcs (atom cardinalities are always added).
func EvalDisjunctive(p *query.Disjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*Result, error) {
	if len(p.Targets) == 0 {
		return nil, fmt.Errorf("core: rule has no targets")
	}
	if len(ins.Relations) != len(p.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(p.Atoms))
	}
	stats := newStats()
	// A target ∅ admits the trivial minimal model {()} (Section 1.3).
	for _, b := range p.Targets {
		if b == 0 {
			return &Result{
				Tables: map[bitset.Set]*relation.Relation{0: unitRelation()},
				Bound:  new(big.Rat),
				Stats:  stats,
			}, nil
		}
	}
	dcs = withAtomCardinalities(&p.Schema, ins, dcs)
	for _, c := range dcs {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		if !c.Y.SubsetOf(p.Atoms[c.Guard].Vars) {
			return nil, fmt.Errorf("core: atom %s cannot guard constraint on %v",
				p.Atoms[c.Guard].Name, c.Y)
		}
	}
	fdcs, err := toFlowDCs(&p.Schema, dcs)
	if err != nil {
		return nil, err
	}
	res, err := flow.MaximinBound(p.NumVars, fdcs, p.Targets)
	if err != nil {
		return nil, err
	}
	seq, err := flow.ConstructProof(res.Lambda, res.Delta, res.Witness)
	if err != nil {
		return nil, err
	}
	e := &engine{
		n:       p.NumVars,
		targets: dedupeSets(p.Targets),
		objLog:  res.Bound,
		opt:     opt,
		stats:   stats,
		schema:  &p.Schema,
	}
	e.objFloat, _ = res.Bound.Float64()
	// Initial frame: constraints with their guards; supports for the δ
	// coordinates pick the smallest bound among matching constraints.
	f := &frame{
		cons:    make([]rtCon, len(dcs)),
		support: map[flow.Pair]int{},
		lambda:  res.Lambda.Clone(),
		delta:   res.Delta.Clone(),
		seq:     seq,
	}
	for i, c := range dcs {
		f.cons[i] = rtCon{x: c.X, y: c.Y, logN: c.LogN, guard: ins.Relations[c.Guard]}
		f.cons[i].nFloat, _ = c.LogN.Float64()
	}
	for p0 := range f.delta {
		for i, c := range f.cons {
			if c.x == p0.X && c.y == p0.Y {
				f.setSupport(p0, i, f.cons)
			}
		}
		if _, ok := f.support[p0]; !ok {
			return nil, fmt.Errorf("core: initial δ%v has no matching constraint", p0)
		}
	}
	tables, err := e.run(f)
	if err != nil {
		return nil, err
	}
	// Present every target, empty when no subproblem delivered it.
	for _, b := range e.targets {
		if _, ok := tables[b]; !ok {
			tables[b] = relation.New(fmt.Sprintf("T_%s", p.VarLabel(b)), b)
		}
	}
	return &Result{Tables: tables, Bound: res.Bound, Stats: stats}, nil
}

func dedupeSets(in []bitset.Set) []bitset.Set {
	seen := map[bitset.Set]bool{}
	var out []bitset.Set
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// EvalFull answers a full conjunctive query exactly (Corollary 7.10):
// PANDA with the single target [n], then a semijoin reduction with every
// input relation removes spurious tuples.
func EvalFull(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, *Result, error) {
	if !q.IsFull() {
		return nil, nil, fmt.Errorf("core: EvalFull needs a full query")
	}
	res, err := EvalDisjunctive(q.AsRule(), ins, dcs, opt)
	if err != nil {
		return nil, nil, err
	}
	t := res.Tables[bitset.Full(q.NumVars)]
	for _, r := range ins.Relations {
		t = t.Semijoin(r)
	}
	return t, res, nil
}

// widthPlan holds the shared tree-decomposition machinery of the
// Corollary 7.11 / 7.13 evaluators.
type widthPlan struct {
	tds      []*hypergraph.Decomposition
	bags     []bitset.Set       // distinct bag universe
	bagIdx   map[bitset.Set]int // bag → index in bags
	tdBags   [][]int            // per decomposition: indices into bags
	universe []bitset.Set       // alias of bags (transversal universe)
}

func newWidthPlan(q *query.Conjunctive) (*widthPlan, error) {
	h := q.Hypergraph()
	if !h.CoversAll() {
		return nil, fmt.Errorf("core: query body does not cover all variables")
	}
	tds, err := h.AllDecompositions()
	if err != nil {
		return nil, err
	}
	pl := &widthPlan{tds: tds, bagIdx: map[bitset.Set]int{}}
	for _, d := range tds {
		var idxs []int
		for _, b := range d.Bags {
			i, ok := pl.bagIdx[b]
			if !ok {
				i = len(pl.bags)
				pl.bagIdx[b] = i
				pl.bags = append(pl.bags, b)
			}
			idxs = append(idxs, i)
		}
		pl.tdBags = append(pl.tdBags, idxs)
	}
	pl.universe = pl.bags
	return pl, nil
}

// reduceWithInputs semijoins t with every input relation sharing attributes.
func reduceWithInputs(t *relation.Relation, ins *query.Instance) *relation.Relation {
	for _, r := range ins.Relations {
		if t.Attrs().Intersect(r.Attrs()) != 0 {
			t = t.Semijoin(r)
		} else if r.Size() == 0 {
			return relation.New(t.Name, t.Attrs()) // empty input empties Q
		}
	}
	return t
}

// EvalFhtw evaluates a full or Boolean conjunctive query with the
// degree-aware fractional-hypertree-width plan of Corollary 7.11: pick the
// tree decomposition minimizing the worst per-bag polymatroid bound, run
// PANDA once per bag, semijoin-reduce, then Yannakakis.
// For Boolean queries the returned relation is nil and the bool is the
// answer; for full queries the relation is the exact output.
func EvalFhtw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	pl, err := newWidthPlan(q)
	if err != nil {
		return nil, false, nil, err
	}
	alldcs := withAtomCardinalities(&q.Schema, ins, dcs)
	fdcs, err := toFlowDCs(&q.Schema, alldcs)
	if err != nil {
		return nil, false, nil, err
	}
	// Choose the decomposition with the smallest worst-bag bound.
	bagBound := make([]*big.Rat, len(pl.bags))
	for i, b := range pl.bags {
		r, err := flow.MaximinBound(q.NumVars, fdcs, []bitset.Set{b})
		if err != nil {
			return nil, false, nil, err
		}
		bagBound[i] = r.Bound
	}
	best, bestVal := -1, new(big.Rat)
	for ti := range pl.tds {
		worst := new(big.Rat)
		for _, bi := range pl.tdBags[ti] {
			if bagBound[bi].Cmp(worst) > 0 {
				worst = bagBound[bi]
			}
		}
		if best == -1 || worst.Cmp(bestVal) < 0 {
			best, bestVal = ti, worst
		}
	}
	td := pl.tds[best]
	stats := newStats()
	rels := make([]*relation.Relation, len(td.Bags))
	for i, b := range td.Bags {
		rule := &query.Disjunctive{Schema: q.Schema, Targets: []bitset.Set{b}}
		res, err := EvalDisjunctive(rule, ins, dcs, opt)
		if err != nil {
			return nil, false, nil, err
		}
		accumulate(stats, res.Stats)
		rels[i] = reduceWithInputs(res.Tables[b], ins)
	}
	if q.IsBoolean() {
		ok, err := yannakakis.NonEmpty(rels, td.Parent)
		return nil, ok, stats, err
	}
	out, err := yannakakis.Join(rels, td.Parent)
	if err != nil {
		return nil, false, nil, err
	}
	return out, out.Size() > 0, stats, nil
}

// EvalSubw evaluates a full or Boolean conjunctive query at the
// degree-aware submodular width (Theorem 1.9 / Corollary 7.13): one
// disjunctive datalog rule per inclusion-minimal bag transversal
// (Lemma 7.12), per-bag tables unioned across rules, semijoin-reduced, and
// every tree decomposition whose bags are all available is evaluated with
// Yannakakis; the union of the per-tree results is exactly Q.
func EvalSubw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	pl, err := newWidthPlan(q)
	if err != nil {
		return nil, false, nil, err
	}
	transversals, err := hypergraph.MinimalTransversals(pl.universe, pl.tdBags)
	if err != nil {
		return nil, false, nil, err
	}
	stats := newStats()
	tables := map[bitset.Set]*relation.Relation{}
	for _, tr := range transversals {
		targets := make([]bitset.Set, len(tr))
		for i, bi := range tr {
			targets[i] = pl.bags[bi]
		}
		rule := &query.Disjunctive{Schema: q.Schema, Targets: targets}
		res, err := EvalDisjunctive(rule, ins, dcs, opt)
		if err != nil {
			return nil, false, nil, err
		}
		accumulate(stats, res.Stats)
		mergeTables(tables, res.Tables)
	}
	// Semijoin-reduce every bag table with the inputs.
	for b, t := range tables {
		tables[b] = reduceWithInputs(t, ins)
	}
	// Evaluate every decomposition whose bags all have tables; union.
	var out *relation.Relation
	answer := false
	evaluated := 0
	for ti, td := range pl.tds {
		rels := make([]*relation.Relation, len(td.Bags))
		ok := true
		for i, bi := range pl.tdBags[ti] {
			t, have := tables[pl.bags[bi]]
			if !have {
				ok = false
				break
			}
			rels[i] = t
		}
		if !ok {
			continue
		}
		evaluated++
		if q.IsBoolean() {
			ne, err := yannakakis.NonEmpty(rels, td.Parent)
			if err != nil {
				return nil, false, nil, err
			}
			answer = answer || ne
			continue
		}
		j, err := yannakakis.Join(rels, td.Parent)
		if err != nil {
			return nil, false, nil, err
		}
		if out == nil {
			out = j
		} else {
			out = out.Union(j)
		}
	}
	if evaluated == 0 {
		return nil, false, nil, fmt.Errorf("core: no tree decomposition fully covered by transversal bags")
	}
	if q.IsBoolean() {
		return nil, answer, stats, nil
	}
	return out, out.Size() > 0, stats, nil
}

func accumulate(dst, src *Stats) {
	for k, v := range src.StepsByKind {
		dst.StepsByKind[k] += v
	}
	dst.Joins += src.Joins
	dst.Projections += src.Projections
	dst.Partitions += src.Partitions
	dst.Subproblems += src.Subproblems
	dst.Restarts += src.Restarts
	dst.BaseCases += src.BaseCases
	if src.MaxIntermediate > dst.MaxIntermediate {
		dst.MaxIntermediate = src.MaxIntermediate
	}
	dst.Trace = append(dst.Trace, src.Trace...)
}
