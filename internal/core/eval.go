package core

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/yannakakis"
)

// This file is the data-dependent half of the prepare/execute split: the
// planning phase (LP solves, proof-sequence construction, decomposition
// choice) lives in internal/plan and produces a reified plan.Plan; Execute
// interprets that plan over a concrete instance. EvalDisjunctive, EvalFull,
// EvalFhtw and EvalSubw are thin wrappers that prepare and execute in one
// call, preserving their historical signatures and behavior.

// CompleteConstraints appends (∅, F, |R_F|) for every atom whose exact
// cardinality constraint is missing — these are always true of the instance
// and can only tighten the bound. The result is a complete constraint set
// suitable for plan.Prepare.
func CompleteConstraints(s *query.Schema, ins *query.Instance, dcs []query.DegreeConstraint) []query.DegreeConstraint {
	have := map[bitset.Set]bool{}
	for _, c := range dcs {
		if c.IsCardinality() {
			have[c.Y] = true
		}
	}
	out := append([]query.DegreeConstraint(nil), dcs...)
	for i, a := range s.Atoms {
		if !have[a.Vars] {
			out = append(out, query.Cardinality(a.Vars, int64(ins.Relations[i].Size()), i))
		}
	}
	return out
}

// unitRelation returns the nullary relation {()}.
func unitRelation() *relation.Relation {
	r := relation.New("T∅", 0)
	r.Insert([]relation.Value{})
	return r
}

// trivialResult is the Section 1.3 answer for a rule with an ∅ target.
func trivialResult() *Result {
	return &Result{
		Tables: map[bitset.Set]*relation.Relation{0: unitRelation()},
		Bound:  new(big.Rat),
		Stats:  newStats(),
	}
}

// ExecuteRule runs the data-dependent phase of one prepared disjunctive
// rule over an instance: the proof sequence is interpreted step by step by
// the PANDA engine, with the constraint set bound to the instance's
// relations as guards. The prepared rule is not mutated, so one rule may be
// executed concurrently by many goroutines.
func ExecuteRule(s *query.Schema, pr *plan.PreparedRule, cons []query.DegreeConstraint, ins *query.Instance, opt Options) (*Result, error) {
	if len(ins.Relations) != len(s.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(s.Atoms))
	}
	if pr.Trivial {
		return trivialResult(), nil
	}
	stats := newStats()
	e := &engine{
		n:       s.NumVars,
		targets: dedupeSets(pr.Targets),
		objLog:  pr.Bound,
		opt:     opt,
		stats:   stats,
		schema:  s,
	}
	e.objFloat, _ = pr.Bound.Float64()
	// Initial frame: constraints with their guards; supports for the δ
	// coordinates pick the smallest bound among matching constraints.
	f := &frame{
		cons:    make([]rtCon, len(cons)),
		support: map[flow.Pair]int{},
		lambda:  pr.Lambda.Clone(),
		delta:   pr.Delta.Clone(),
		seq:     pr.Seq,
	}
	for i, c := range cons {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		f.cons[i] = rtCon{x: c.X, y: c.Y, logN: c.LogN, guard: ins.Relations[c.Guard]}
		f.cons[i].nFloat, _ = c.LogN.Float64()
	}
	for p0 := range f.delta {
		for i, c := range f.cons {
			if c.x == p0.X && c.y == p0.Y {
				f.setSupport(p0, i, f.cons)
			}
		}
		if _, ok := f.support[p0]; !ok {
			return nil, fmt.Errorf("core: initial δ%v has no matching constraint", p0)
		}
	}
	tables, err := e.run(f)
	if err != nil {
		return nil, err
	}
	// Present every target, empty when no subproblem delivered it.
	for _, b := range e.targets {
		if _, ok := tables[b]; !ok {
			tables[b] = relation.New(fmt.Sprintf("T_%s", s.VarLabel(b)), b)
		}
	}
	return &Result{Tables: tables, Bound: pr.Bound, Stats: stats}, nil
}

// EvalDisjunctive runs PANDA (Algorithm 1) on a disjunctive datalog rule:
// it solves the polymatroid bound LP (Lemma 5.2), extracts a witness
// (Proposition 5.4), constructs a proof sequence (Theorem 5.9), and
// interprets it over the instance. The returned tables form a model of the
// rule whose per-table sizes are governed by the bound (Theorem 1.7).
//
// Every constraint must be guarded by an atom; callers who only know
// relation sizes can pass nil dcs (atom cardinalities are always added).
// This is the one-shot prepare+execute path; callers with repeated traffic
// should use plan.PrepareRule once and ExecuteRule per instance.
func EvalDisjunctive(p *query.Disjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*Result, error) {
	if len(p.Targets) == 0 {
		return nil, fmt.Errorf("core: rule has no targets")
	}
	if len(ins.Relations) != len(p.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(p.Atoms))
	}
	// A target ∅ admits the trivial minimal model {()} (Section 1.3).
	for _, b := range p.Targets {
		if b == 0 {
			return trivialResult(), nil
		}
	}
	dcs = CompleteConstraints(&p.Schema, ins, dcs)
	for _, c := range dcs {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		if !c.Y.SubsetOf(p.Atoms[c.Guard].Vars) {
			return nil, fmt.Errorf("core: atom %s cannot guard constraint on %v",
				p.Atoms[c.Guard].Name, c.Y)
		}
	}
	pr, _, err := plan.PrepareRule(&p.Schema, dcs, p.Targets)
	if err != nil {
		return nil, err
	}
	return ExecuteRule(&p.Schema, pr, dcs, ins, opt)
}

func dedupeSets(in []bitset.Set) []bitset.Set {
	seen := map[bitset.Set]bool{}
	var out []bitset.Set
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ExecResult is the outcome of executing a reified plan over an instance.
// Every mode fills Out/NonEmpty/Width/Mode/Stats uniformly, so callers can
// assemble a mode-independent answer without reaching back into the plan.
type ExecResult struct {
	// Out is the output relation; nil for Boolean queries.
	Out *relation.Relation
	// NonEmpty answers non-emptiness in every mode.
	NonEmpty bool
	// Tables are the raw model tables of the PANDA rule (ModeFull only).
	Tables map[bitset.Set]*relation.Relation
	// Bound is the rule's polymatroid bound (ModeFull only).
	Bound *big.Rat
	// Width is the executed plan's width certificate in log₂ units.
	Width *big.Rat
	// Mode is the strategy the executed plan encoded.
	Mode plan.Mode
	// Stats accumulates the engine work across all executed rules.
	Stats *Stats
}

// Execute runs the data-dependent phase of a prepared plan over an
// instance. The plan is treated as immutable: concurrent Execute calls on a
// shared plan are safe.
func Execute(p *plan.Plan, ins *query.Instance, opt Options) (*ExecResult, error) {
	ex, err := execute(p, ins, opt)
	if err != nil {
		return nil, err
	}
	ex.Width, ex.Mode = p.Width, p.Mode
	return ex, nil
}

func execute(p *plan.Plan, ins *query.Instance, opt Options) (*ExecResult, error) {
	if len(ins.Relations) != len(p.Schema.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms",
			len(ins.Relations), len(p.Schema.Atoms))
	}
	switch p.Mode {
	case plan.ModeFull:
		res, err := ExecuteRule(&p.Schema, p.Rules[0], p.Cons, ins, opt)
		if err != nil {
			return nil, err
		}
		// Semijoin reduction with every input removes spurious tuples
		// (Corollary 7.10).
		t := res.Tables[bitset.Full(p.Schema.NumVars)]
		for _, r := range ins.Relations {
			t = t.Semijoin(r)
		}
		return &ExecResult{Out: t, NonEmpty: t.Size() > 0, Tables: res.Tables, Bound: res.Bound, Stats: res.Stats}, nil

	case plan.ModeFhtw:
		td := p.TDs[p.Chosen]
		stats := newStats()
		rels := make([]*relation.Relation, len(td.Bags))
		for i, b := range td.Bags {
			res, err := ExecuteRule(&p.Schema, p.Rules[i], p.Cons, ins, opt)
			if err != nil {
				return nil, err
			}
			accumulate(stats, res.Stats)
			rels[i] = reduceWithInputs(res.Tables[b], ins)
		}
		if p.Free == 0 {
			ok, err := yannakakis.NonEmpty(rels, td.Parent)
			if err != nil {
				return nil, err
			}
			return &ExecResult{NonEmpty: ok, Stats: stats}, nil
		}
		out, err := yannakakis.Join(rels, td.Parent)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats}, nil

	case plan.ModeSubw:
		stats := newStats()
		tables := map[bitset.Set]*relation.Relation{}
		for _, pr := range p.Rules {
			res, err := ExecuteRule(&p.Schema, pr, p.Cons, ins, opt)
			if err != nil {
				return nil, err
			}
			accumulate(stats, res.Stats)
			mergeTables(tables, res.Tables)
		}
		// Semijoin-reduce every bag table with the inputs.
		for b, t := range tables {
			tables[b] = reduceWithInputs(t, ins)
		}
		// Evaluate every decomposition whose bags all have tables; union.
		var out *relation.Relation
		answer := false
		evaluated := 0
		for ti, td := range p.TDs {
			rels := make([]*relation.Relation, len(td.Bags))
			ok := true
			for i, bi := range p.TDBags[ti] {
				t, have := tables[p.Bags[bi]]
				if !have {
					ok = false
					break
				}
				rels[i] = t
			}
			if !ok {
				continue
			}
			evaluated++
			if p.Free == 0 {
				ne, err := yannakakis.NonEmpty(rels, td.Parent)
				if err != nil {
					return nil, err
				}
				answer = answer || ne
				continue
			}
			j, err := yannakakis.Join(rels, td.Parent)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = j
			} else {
				out = out.Union(j)
			}
		}
		if evaluated == 0 {
			return nil, fmt.Errorf("core: no tree decomposition fully covered by transversal bags")
		}
		if p.Free == 0 {
			return &ExecResult{NonEmpty: answer, Stats: stats}, nil
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats}, nil
	}
	return nil, fmt.Errorf("core: plan mode %v is not executable", p.Mode)
}

// reduceWithInputs semijoins t with every input relation sharing attributes.
func reduceWithInputs(t *relation.Relation, ins *query.Instance) *relation.Relation {
	for _, r := range ins.Relations {
		if t.Attrs().Intersect(r.Attrs()) != 0 {
			t = t.Semijoin(r)
		} else if r.Size() == 0 {
			return relation.New(t.Name, t.Attrs()) // empty input empties Q
		}
	}
	return t
}

// EvalFull answers a full conjunctive query exactly (Corollary 7.10):
// PANDA with the single target [n], then a semijoin reduction with every
// input relation removes spurious tuples. Thin wrapper over
// plan.Prepare(ModeFull) + Execute.
func EvalFull(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, *Result, error) {
	if !q.IsFull() {
		return nil, nil, fmt.Errorf("core: EvalFull needs a full query")
	}
	if len(ins.Relations) != len(q.Atoms) {
		return nil, nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(q.Atoms))
	}
	p, _, err := plan.Prepare(q, CompleteConstraints(&q.Schema, ins, dcs), plan.ModeFull)
	if err != nil {
		return nil, nil, err
	}
	ex, err := Execute(p, ins, opt)
	if err != nil {
		return nil, nil, err
	}
	return ex.Out, &Result{Tables: ex.Tables, Bound: ex.Bound, Stats: ex.Stats}, nil
}

// EvalFhtw evaluates a full or Boolean conjunctive query with the
// degree-aware fractional-hypertree-width plan of Corollary 7.11: pick the
// tree decomposition minimizing the worst per-bag polymatroid bound, run
// PANDA once per bag, semijoin-reduce, then Yannakakis.
// For Boolean queries the returned relation is nil and the bool is the
// answer; for full queries the relation is the exact output.
// Thin wrapper over plan.Prepare(ModeFhtw) + Execute.
func EvalFhtw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	return evalPlanned(q, ins, dcs, opt, plan.ModeFhtw)
}

// EvalSubw evaluates a full or Boolean conjunctive query at the
// degree-aware submodular width (Theorem 1.9 / Corollary 7.13): one
// disjunctive datalog rule per inclusion-minimal bag transversal
// (Lemma 7.12), per-bag tables unioned across rules, semijoin-reduced, and
// every tree decomposition whose bags are all available is evaluated with
// Yannakakis; the union of the per-tree results is exactly Q.
// Thin wrapper over plan.Prepare(ModeSubw) + Execute.
func EvalSubw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	return evalPlanned(q, ins, dcs, opt, plan.ModeSubw)
}

func evalPlanned(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options, mode plan.Mode) (*relation.Relation, bool, *Stats, error) {
	if len(ins.Relations) != len(q.Atoms) {
		return nil, false, nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(q.Atoms))
	}
	p, _, err := plan.Prepare(q, CompleteConstraints(&q.Schema, ins, dcs), mode)
	if err != nil {
		return nil, false, nil, err
	}
	ex, err := Execute(p, ins, opt)
	if err != nil {
		return nil, false, nil, err
	}
	return ex.Out, ex.NonEmpty, ex.Stats, nil
}

func accumulate(dst, src *Stats) {
	for k, v := range src.StepsByKind {
		dst.StepsByKind[k] += v
	}
	dst.Joins += src.Joins
	dst.Projections += src.Projections
	dst.Partitions += src.Partitions
	dst.Subproblems += src.Subproblems
	dst.Restarts += src.Restarts
	dst.BaseCases += src.BaseCases
	if src.MaxIntermediate > dst.MaxIntermediate {
		dst.MaxIntermediate = src.MaxIntermediate
	}
	dst.Trace = append(dst.Trace, src.Trace...)
}
