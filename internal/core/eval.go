package core

import (
	"context"
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

// This file is the data-dependent half of the prepare/execute split: the
// planning phase (LP solves, proof-sequence construction, decomposition
// choice) lives in internal/plan and produces a reified plan.Plan; the
// Executor in executor.go interprets that plan over a concrete instance
// under a context. The free functions here — Execute, ExecuteRule,
// EvalDisjunctive, EvalFull, EvalFhtw, EvalSubw — are thin wrappers that
// run a sequential Executor under context.Background(), preserving their
// historical signatures and behavior.

// CompleteConstraints appends (∅, F, |R_F|) for every atom whose exact
// cardinality constraint is missing — these are always true of the instance
// and can only tighten the bound. The result is a complete constraint set
// suitable for plan.Prepare.
func CompleteConstraints(s *query.Schema, ins *query.Instance, dcs []query.DegreeConstraint) []query.DegreeConstraint {
	have := map[bitset.Set]bool{}
	for _, c := range dcs {
		if c.IsCardinality() {
			have[c.Y] = true
		}
	}
	out := append([]query.DegreeConstraint(nil), dcs...)
	for i, a := range s.Atoms {
		if !have[a.Vars] {
			out = append(out, query.Cardinality(a.Vars, int64(ins.Relations[i].Size()), i))
		}
	}
	return out
}

// unitRelation returns the nullary relation {()}.
func unitRelation() *relation.Relation {
	r := relation.New("T∅", 0)
	r.Insert([]relation.Value{})
	return r
}

// trivialResult is the Section 1.3 answer for a rule with an ∅ target.
func trivialResult() *Result {
	return &Result{
		Tables: map[bitset.Set]*relation.Relation{0: unitRelation()},
		Bound:  new(big.Rat),
		Stats:  newStats(),
	}
}

// ExecuteRule runs the data-dependent phase of one prepared disjunctive
// rule over an instance with a sequential Executor and no cancellation; see
// Executor.ExecuteRule for the context-aware form.
func ExecuteRule(s *query.Schema, pr *plan.PreparedRule, cons []query.DegreeConstraint, ins *query.Instance, opt Options) (*Result, error) {
	return (&Executor{Opt: opt}).ExecuteRule(context.Background(), s, pr, cons, ins)
}

// EvalDisjunctive runs PANDA (Algorithm 1) on a disjunctive datalog rule
// with a sequential Executor and no cancellation; see
// Executor.EvalDisjunctive for the context-aware form.
//
// Every constraint must be guarded by an atom; callers who only know
// relation sizes can pass nil dcs (atom cardinalities are always added).
func EvalDisjunctive(p *query.Disjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*Result, error) {
	return (&Executor{Opt: opt}).EvalDisjunctive(context.Background(), p, ins, dcs)
}

func dedupeSets(in []bitset.Set) []bitset.Set {
	seen := map[bitset.Set]bool{}
	var out []bitset.Set
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ExecResult is the outcome of executing a reified plan over an instance.
// Every mode fills Out/NonEmpty/Width/Mode/Stats uniformly, so callers can
// assemble a mode-independent answer without reaching back into the plan.
type ExecResult struct {
	// Out is the output relation; nil for Boolean queries.
	Out *relation.Relation
	// NonEmpty answers non-emptiness in every mode.
	NonEmpty bool
	// Tables are the raw model tables of the PANDA rule (ModeFull only).
	Tables map[bitset.Set]*relation.Relation
	// Bound is the rule's polymatroid bound (ModeFull only).
	Bound *big.Rat
	// Width is the executed plan's width certificate in log₂ units.
	Width *big.Rat
	// Mode is the strategy the executed plan encoded.
	Mode plan.Mode
	// Stats accumulates the engine work across all executed rules.
	Stats *Stats
	// Timings holds per-stage wall-clock timings (per-proof-step-kind
	// engine time, rule fan-out, merge); nil unless Options.StageTimings
	// was set. Unlike Stats, timings vary run to run.
	Timings *Timings
}

// Execute runs the data-dependent phase of a prepared plan over an instance
// with a sequential Executor and no cancellation; see Executor.Execute for
// the context-aware, parallel form. The plan is treated as immutable:
// concurrent Execute calls on a shared plan are safe.
func Execute(p *plan.Plan, ins *query.Instance, opt Options) (*ExecResult, error) {
	return (&Executor{Opt: opt}).Execute(context.Background(), p, ins)
}

// reduceWithInputs semijoins t with every input relation sharing attributes.
func reduceWithInputs(t *relation.Relation, ins *query.Instance) *relation.Relation {
	for _, r := range ins.Relations {
		if t.Attrs().Intersect(r.Attrs()) != 0 {
			t = t.Semijoin(r)
		} else if r.Size() == 0 {
			return relation.New(t.Name, t.Attrs()) // empty input empties Q
		}
	}
	return t
}

// EvalFull answers a full conjunctive query exactly (Corollary 7.10):
// PANDA with the single target [n], then a semijoin reduction with every
// input relation removes spurious tuples. Thin wrapper over
// plan.Prepare(ModeFull) + Execute.
func EvalFull(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, *Result, error) {
	if !q.IsFull() {
		return nil, nil, fmt.Errorf("core: EvalFull needs a full query")
	}
	if len(ins.Relations) != len(q.Atoms) {
		return nil, nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(q.Atoms))
	}
	p, _, err := plan.Prepare(q, CompleteConstraints(&q.Schema, ins, dcs), plan.ModeFull)
	if err != nil {
		return nil, nil, err
	}
	ex, err := Execute(p, ins, opt)
	if err != nil {
		return nil, nil, err
	}
	return ex.Out, &Result{Tables: ex.Tables, Bound: ex.Bound, Stats: ex.Stats}, nil
}

// EvalFhtw evaluates a full or Boolean conjunctive query with the
// degree-aware fractional-hypertree-width plan of Corollary 7.11: pick the
// tree decomposition minimizing the worst per-bag polymatroid bound, run
// PANDA once per bag, semijoin-reduce, then Yannakakis.
// For Boolean queries the returned relation is nil and the bool is the
// answer; for full queries the relation is the exact output.
// Thin wrapper over plan.Prepare(ModeFhtw) + Execute.
func EvalFhtw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	return evalPlanned(q, ins, dcs, opt, plan.ModeFhtw)
}

// EvalSubw evaluates a full or Boolean conjunctive query at the
// degree-aware submodular width (Theorem 1.9 / Corollary 7.13): one
// disjunctive datalog rule per inclusion-minimal bag transversal
// (Lemma 7.12), per-bag tables unioned across rules, semijoin-reduced, and
// every tree decomposition whose bags are all available is evaluated with
// Yannakakis; the union of the per-tree results is exactly Q.
// Thin wrapper over plan.Prepare(ModeSubw) + Execute.
func EvalSubw(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options) (*relation.Relation, bool, *Stats, error) {
	return evalPlanned(q, ins, dcs, opt, plan.ModeSubw)
}

func evalPlanned(q *query.Conjunctive, ins *query.Instance, dcs []query.DegreeConstraint, opt Options, mode plan.Mode) (*relation.Relation, bool, *Stats, error) {
	if len(ins.Relations) != len(q.Atoms) {
		return nil, false, nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(q.Atoms))
	}
	p, _, err := plan.Prepare(q, CompleteConstraints(&q.Schema, ins, dcs), mode)
	if err != nil {
		return nil, false, nil, err
	}
	ex, err := Execute(p, ins, opt)
	if err != nil {
		return nil, false, nil, err
	}
	return ex.Out, ex.NonEmpty, ex.Stats, nil
}

func accumulate(dst, src *Stats) {
	for k, v := range src.StepsByKind {
		dst.StepsByKind[k] += v
	}
	dst.Joins += src.Joins
	dst.Projections += src.Projections
	dst.Partitions += src.Partitions
	dst.Subproblems += src.Subproblems
	dst.Restarts += src.Restarts
	dst.BaseCases += src.BaseCases
	if src.MaxIntermediate > dst.MaxIntermediate {
		dst.MaxIntermediate = src.MaxIntermediate
	}
	dst.Trace = append(dst.Trace, src.Trace...)
}
