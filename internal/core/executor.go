package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/yannakakis"
)

// Executor runs the data-dependent phase of prepared plans. It is the
// context-first execution surface of the engine: an Executor is configured
// once (parallelism, data partitioning, plus the engine tunables in
// Options) and reused across runs, and every run takes a context.Context
// that is checked between proof steps, between rule executions, and between
// Yannakakis passes — a cancelled or expired context aborts the run
// promptly with ctx.Err().
//
// When Parallelism > 1, independent work fans out across a bounded worker
// pool: the per-bag (ModeFhtw) and per-transversal (ModeSubw) rule
// executions, the per-partition executions of a single rule when Partitions
// > 1, and the final per-decomposition Yannakakis passes of ModeSubw (they
// are independent unions). The pool size is chosen per plan by a cost model
// — task count × 2^width × total input cardinality — so cheap plans skip
// the pool entirely. The fan-out is deterministic: results are merged in
// rule-index-then-partition-index order (and decomposition-index order for
// the Yannakakis passes), so the output relation, OK answer, Width and
// Stats (including the operator trace) are byte-identical to a sequential
// run of the same configuration. The first genuine error cancels the
// sibling executions.
//
// When Partitions > 1 (or the instance's relations carry partition hints),
// a single rule execution's data is hash-split into co-partitioned
// sub-instances (query.PartitionInstance): atoms covering the partition key
// are partitioned, the rest are replicated, and the rule runs once per
// partition. The merged result is exact — the final output rows, OK answer
// and Width certificate match an unpartitioned run — though intermediate
// model tables and Stats may differ from the K=1 shape (a partitioned proof
// does different, smaller work); for a fixed partition count the run is
// fully deterministic across any parallelism.
//
// The zero value is a valid sequential executor with default Options.
// Executors are stateless between runs and safe for concurrent use.
type Executor struct {
	// Parallelism bounds how many tasks (rule × partition executions,
	// per-decomposition Yannakakis passes) may run concurrently; values
	// ≤ 1 mean sequential execution.
	Parallelism int
	// Partitions splits each rule execution's data into this many hash
	// partitions. 0 (the default) consults the instance relations'
	// recorded partition hints; 1 forces unpartitioned execution even
	// when hints are present.
	Partitions int
	// Opt tunes every PANDA rule execution (trace, invariant checks,
	// budget ablation).
	Opt Options
}

// ExecuteRule runs the data-dependent phase of one prepared disjunctive
// rule over an instance: the proof sequence is interpreted step by step by
// the PANDA engine, with the constraint set bound to the instance's
// relations as guards, checking ctx between steps. The prepared rule is not
// mutated, so one rule may be executed concurrently by many goroutines.
func (ex *Executor) ExecuteRule(ctx context.Context, s *query.Schema, pr *plan.PreparedRule, cons []query.DegreeConstraint, ins *query.Instance) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ins.Relations) != len(s.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(s.Atoms))
	}
	if pr.Trivial {
		return trivialResult(), nil
	}
	stats := newStats()
	var timings *Timings
	if ex.Opt.StageTimings {
		timings = newTimings()
	}
	e := &engine{
		ctx:     ctx,
		n:       s.NumVars,
		targets: dedupeSets(pr.Targets),
		objLog:  pr.Bound,
		opt:     ex.Opt,
		stats:   stats,
		timings: timings,
		schema:  s,
	}
	e.objFloat, _ = pr.Bound.Float64()
	// Initial frame: constraints with their guards; supports for the δ
	// coordinates pick the smallest bound among matching constraints.
	f := &frame{
		cons:    make([]rtCon, len(cons)),
		support: map[flow.Pair]int{},
		lambda:  pr.Lambda.Clone(),
		delta:   pr.Delta.Clone(),
		seq:     pr.Seq,
	}
	for i, c := range cons {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		f.cons[i] = rtCon{x: c.X, y: c.Y, logN: c.LogN, guard: ins.Relations[c.Guard]}
		f.cons[i].nFloat, _ = c.LogN.Float64()
	}
	for p0 := range f.delta {
		for i, c := range f.cons {
			if c.x == p0.X && c.y == p0.Y {
				f.setSupport(p0, i, f.cons)
			}
		}
		if _, ok := f.support[p0]; !ok {
			return nil, fmt.Errorf("core: initial δ%v has no matching constraint", p0)
		}
	}
	tables, err := e.run(f)
	if err != nil {
		return nil, err
	}
	// Present every target, empty when no subproblem delivered it.
	for _, b := range e.targets {
		if _, ok := tables[b]; !ok {
			tables[b] = relation.New(fmt.Sprintf("T_%s", s.VarLabel(b)), b)
		}
	}
	return &Result{Tables: tables, Bound: pr.Bound, Stats: stats, Timings: timings}, nil
}

// executePartitionedRule runs one prepared rule once per co-partitioned
// sub-instance through the worker pool and merges the per-partition model
// tables and stats in partition-index order. The union of per-partition
// models is a model of the full instance (every satisfying assignment lands
// in exactly one partition), so the merged Result obeys the same contract
// as a single ExecuteRule call.
func (ex *Executor) executePartitionedRule(ctx context.Context, s *query.Schema, pr *plan.PreparedRule, cons []query.DegreeConstraint, subs []*query.Instance) (*Result, error) {
	ress := make([]*Result, len(subs))
	bound, _ := pr.Bound.Float64()
	workers := ex.poolSize(len(subs), fanoutCost(len(subs), bound, subs[0]))
	err := ex.forEach(ctx, workers, len(subs), func(cctx context.Context, j int) error {
		res, err := ex.ExecuteRule(cctx, s, pr, cons, subs[j])
		if err != nil {
			return err
		}
		ress[j] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRuleResults(pr, ress), nil
}

// mergeRuleResults folds per-partition rule results in partition order into
// one Result (set-semantics table unions, stats and timings accumulated).
func mergeRuleResults(pr *plan.PreparedRule, ress []*Result) *Result {
	out := &Result{Tables: map[bitset.Set]*relation.Relation{}, Bound: pr.Bound, Stats: newStats()}
	for _, res := range ress {
		accumulate(out.Stats, res.Stats)
		mergeTables(out.Tables, res.Tables)
		if res.Timings != nil {
			if out.Timings == nil {
				out.Timings = newTimings()
			}
			out.Timings.Accumulate(res.Timings)
		}
	}
	return out
}

// EvalDisjunctive runs PANDA (Algorithm 1) on a disjunctive datalog rule:
// it solves the polymatroid bound LP (Lemma 5.2), extracts a witness
// (Proposition 5.4), constructs a proof sequence (Theorem 5.9), and
// interprets it over the instance, honoring ctx throughout. With Partitions
// > 1 the rule executes once per co-partitioned sub-instance and the model
// tables are merged in partition order.
//
// This is the one-shot prepare+execute path; callers with repeated traffic
// should use plan.PrepareRule once and ExecuteRule per instance.
func (ex *Executor) EvalDisjunctive(ctx context.Context, p *query.Disjunctive, ins *query.Instance, dcs []query.DegreeConstraint) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(p.Targets) == 0 {
		return nil, fmt.Errorf("core: rule has no targets")
	}
	if len(ins.Relations) != len(p.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(p.Atoms))
	}
	// A target ∅ admits the trivial minimal model {()} (Section 1.3).
	for _, b := range p.Targets {
		if b == 0 {
			return trivialResult(), nil
		}
	}
	dcs = CompleteConstraints(&p.Schema, ins, dcs)
	for _, c := range dcs {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		if !c.Y.SubsetOf(p.Atoms[c.Guard].Vars) {
			return nil, fmt.Errorf("core: atom %s cannot guard constraint on %v",
				p.Atoms[c.Guard].Name, c.Y)
		}
	}
	var prepStart time.Time
	if ex.Opt.StageTimings {
		prepStart = time.Now()
	}
	pr, _, err := plan.PrepareRuleContext(ctx, &p.Schema, dcs, p.Targets)
	if err != nil {
		return nil, err
	}
	var prepWait time.Duration
	if ex.Opt.StageTimings {
		prepWait = time.Since(prepStart)
	}
	var res *Result
	if subs := ex.subInstances(&p.Schema, ins); subs != nil {
		res, err = ex.executePartitionedRule(ctx, &p.Schema, pr, dcs, subs)
	} else {
		res, err = ex.ExecuteRule(ctx, &p.Schema, pr, dcs, ins)
	}
	if err == nil && res.Timings != nil {
		res.Timings.PrepareWait = prepWait
	}
	return res, err
}

// Execute runs the data-dependent phase of a prepared plan over an
// instance. The plan is treated as immutable: concurrent Execute calls on a
// shared plan are safe.
func (ex *Executor) Execute(ctx context.Context, p *plan.Plan, ins *query.Instance) (*ExecResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := ex.execute(ctx, p, ins)
	if err != nil {
		return nil, err
	}
	res.Width, res.Mode = p.Width, p.Mode
	return res, nil
}

// subInstances materializes the co-partitioned sub-instances one run fans
// out over, or nil for unpartitioned execution. An explicit Partitions
// setting wins; 0 falls back to the partition hints recorded on the
// instance's relations (catalog entries carry them).
func (ex *Executor) subInstances(s *query.Schema, ins *query.Instance) []*query.Instance {
	k := ex.Partitions
	if k == 0 {
		k = query.PartitionHint(ins)
	}
	return query.PartitionInstance(s, ins, k)
}

// fanoutCost estimates the work of one fan-out in row-units for the pool
// cost model: task count × 2^width × total input cardinality. The width
// exponent is clamped so adversarial certificates cannot overflow.
func fanoutCost(nTasks int, widthLog float64, ins *query.Instance) float64 {
	rows := 0
	for _, r := range ins.Relations {
		rows += r.Size()
	}
	if widthLog > 40 {
		widthLog = 40
	}
	if widthLog < 0 {
		widthLog = 0
	}
	return float64(nTasks) * math.Exp2(widthLog) * float64(rows)
}

// parallelCostFloor is the fan-out cost (see fanoutCost) below which the
// pool is skipped: scheduling goroutines for a plan this cheap costs more
// than it saves. Results are identical either way — the pool size never
// affects the deterministic merge.
const parallelCostFloor = 1 << 15

// poolSize picks the worker count for a fan-out of n tasks whose estimated
// cost is cost: sequential when parallelism is off, the fan-out is trivial,
// or the cost model says the plan is too cheap to amortize the pool.
func (ex *Executor) poolSize(n int, cost float64) int {
	if ex.Parallelism <= 1 || n <= 1 || cost < parallelCostFloor {
		return 1
	}
	if ex.Parallelism < n {
		return ex.Parallelism
	}
	return n
}

func (ex *Executor) execute(ctx context.Context, p *plan.Plan, ins *query.Instance) (*ExecResult, error) {
	if len(ins.Relations) != len(p.Schema.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms",
			len(ins.Relations), len(p.Schema.Atoms))
	}
	// Stage clocks: tick() banks the elapsed wall-clock since the previous
	// tick and restarts the clock; a nil-safe no-op when timings are off.
	var t0 time.Time
	timed := ex.Opt.StageTimings
	tick := func() time.Duration {
		if !timed {
			return 0
		}
		d := time.Since(t0)
		t0 = time.Now()
		return d
	}
	if timed {
		t0 = time.Now()
	}
	// Data-parallel split: subs[j] is the j-th co-partitioned sub-instance;
	// nil means one task per rule over the full instance. Every mode below
	// fans (rule × partition) tasks out through the pool and merges in
	// rule-index-then-partition-index order.
	subs := ex.subInstances(&p.Schema, ins)
	nParts := 1
	if subs != nil {
		nParts = len(subs)
	}
	taskIns := func(j int) *query.Instance {
		if subs == nil {
			return ins
		}
		return subs[j]
	}
	width, _ := p.Width.Float64()

	switch p.Mode {
	case plan.ModeFull:
		full := bitset.Full(p.Schema.NumVars)
		ress := make([]*Result, nParts)
		reduced := make([]*relation.Relation, nParts)
		workers := ex.poolSize(nParts, fanoutCost(nParts, width, ins))
		err := ex.forEach(ctx, workers, nParts, func(cctx context.Context, j int) error {
			res, err := ex.ExecuteRule(cctx, &p.Schema, p.Rules[0], p.Cons, taskIns(j))
			if err != nil {
				return err
			}
			ress[j] = res
			// Semijoin reduction with every input removes spurious tuples
			// (Corollary 7.10). The inputs are the full relations — reducing
			// inside the worker is sound because ⋉ distributes over the
			// partition union — so the union of reduced partition tables is
			// exactly the full join.
			reduced[j] = reduceWithInputs(res.Tables[full], ins)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if nParts == 1 {
			res, t := ress[0], reduced[0]
			tm := res.Timings
			if tm != nil {
				tm.RuleFanout = tick()
				tm.Merge = tick()
			}
			return &ExecResult{Out: t, NonEmpty: t.Size() > 0, Tables: res.Tables, Bound: res.Bound, Stats: res.Stats, Timings: tm}, nil
		}
		// Partitioned: merge stats in partition order; the partition outputs
		// are disjoint (each fixes its key's hash bucket), and their union is
		// both the exact join and — the target being the full variable set —
		// the canonical model, so it serves as the run's model table without
		// a serial union of the larger unreduced per-partition tables.
		stats := newStats()
		var tm *Timings
		for _, res := range ress {
			accumulate(stats, res.Stats)
			if res.Timings != nil {
				if tm == nil {
					tm = newTimings()
				}
				tm.Accumulate(res.Timings)
			}
		}
		if tm != nil {
			tm.RuleFanout = tick()
		}
		t := reduced[0]
		for j := 1; j < nParts; j++ {
			t = t.Union(reduced[j])
		}
		if tm != nil {
			tm.Merge = tick()
		}
		tables := map[bitset.Set]*relation.Relation{full: t}
		return &ExecResult{Out: t, NonEmpty: t.Size() > 0, Tables: tables, Bound: ress[0].Bound, Stats: stats, Timings: tm}, nil

	case plan.ModeFhtw:
		td := p.TDs[p.Chosen]
		// The (bag × partition) rules are independent until the Yannakakis
		// pass: execute and semijoin-reduce them through the worker pool
		// (the reduction distributes over the partition union), then merge
		// stats in bag-then-partition order so the outcome matches
		// sequential runs.
		n := len(td.Bags) * nParts
		ress := make([]*Result, n)
		reduced := make([]*relation.Relation, n)
		workers := ex.poolSize(n, fanoutCost(n, width, ins))
		err := ex.forEach(ctx, workers, n, func(cctx context.Context, t int) error {
			bi, pj := t/nParts, t%nParts
			res, err := ex.ExecuteRule(cctx, &p.Schema, p.Rules[bi], p.Cons, taskIns(pj))
			if err != nil {
				return err
			}
			ress[t] = res
			reduced[t] = reduceWithInputs(res.Tables[td.Bags[bi]], ins)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var tm *Timings
		if timed {
			tm = newTimings()
			tm.RuleFanout = tick()
		}
		stats := newStats()
		for _, res := range ress {
			accumulate(stats, res.Stats)
			if tm != nil {
				tm.Accumulate(res.Timings)
			}
		}
		rels := make([]*relation.Relation, len(td.Bags))
		for bi := range td.Bags {
			t := reduced[bi*nParts]
			for pj := 1; pj < nParts; pj++ {
				t = t.Union(reduced[bi*nParts+pj])
			}
			rels[bi] = t
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p.Free == 0 {
			ok, err := yannakakis.NonEmptyContext(ctx, rels, td.Parent)
			if err != nil {
				return nil, err
			}
			if tm != nil {
				tm.Merge = tick()
			}
			return &ExecResult{NonEmpty: ok, Stats: stats, Timings: tm}, nil
		}
		out, err := yannakakis.JoinContext(ctx, rels, td.Parent)
		if err != nil {
			return nil, err
		}
		if tm != nil {
			tm.Merge = tick()
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats, Timings: tm}, nil

	case plan.ModeSubw:
		// One rule per inclusion-minimal transversal × one task per
		// partition; the tasks are independent, so they fan out, and their
		// tables are merged in rule-index-then-partition-index order
		// afterwards (set-semantics unions, deterministic).
		n := len(p.Rules) * nParts
		ress := make([]*Result, n)
		workers := ex.poolSize(n, fanoutCost(n, width, ins))
		err := ex.forEach(ctx, workers, n, func(cctx context.Context, t int) error {
			ri, pj := t/nParts, t%nParts
			res, err := ex.ExecuteRule(cctx, &p.Schema, p.Rules[ri], p.Cons, taskIns(pj))
			if err != nil {
				return err
			}
			ress[t] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		var tm *Timings
		if timed {
			tm = newTimings()
			tm.RuleFanout = tick()
		}
		stats := newStats()
		tables := map[bitset.Set]*relation.Relation{}
		for _, res := range ress {
			accumulate(stats, res.Stats)
			if tm != nil {
				tm.Accumulate(res.Timings)
			}
			mergeTables(tables, res.Tables)
		}
		// Semijoin-reduce every bag table with the full inputs.
		for b, t := range tables {
			tables[b] = reduceWithInputs(t, ins)
		}
		// Evaluate every decomposition whose bags all have tables. The
		// per-decomposition Yannakakis passes are independent unions, so
		// they fan out through the pool too, and are merged in
		// decomposition-index order: the OK answer ORs and the output
		// unions exactly as the sequential loop did.
		type tdPass struct {
			ti   int
			rels []*relation.Relation
		}
		var passes []tdPass
		for ti := range p.TDs {
			rels := make([]*relation.Relation, len(p.TDs[ti].Bags))
			ok := true
			for i, bi := range p.TDBags[ti] {
				t, have := tables[p.Bags[bi]]
				if !have {
					ok = false
					break
				}
				rels[i] = t
			}
			if ok {
				passes = append(passes, tdPass{ti: ti, rels: rels})
			}
		}
		if len(passes) == 0 {
			return nil, fmt.Errorf("core: no tree decomposition fully covered by transversal bags")
		}
		answers := make([]bool, len(passes))
		outs := make([]*relation.Relation, len(passes))
		workers = ex.poolSize(len(passes), fanoutCost(len(passes), width, ins))
		err = ex.forEach(ctx, workers, len(passes), func(cctx context.Context, i int) error {
			td := p.TDs[passes[i].ti]
			if p.Free == 0 {
				ne, err := yannakakis.NonEmptyContext(cctx, passes[i].rels, td.Parent)
				if err != nil {
					return err
				}
				answers[i] = ne
				return nil
			}
			j, err := yannakakis.JoinContext(cctx, passes[i].rels, td.Parent)
			if err != nil {
				return err
			}
			outs[i] = j
			return nil
		})
		if err != nil {
			return nil, err
		}
		var out *relation.Relation
		answer := false
		for i := range passes {
			answer = answer || answers[i]
			if outs[i] == nil {
				continue
			}
			if out == nil {
				out = outs[i]
			} else {
				out = out.Union(outs[i])
			}
		}
		if tm != nil {
			tm.Merge = tick()
		}
		if p.Free == 0 {
			return &ExecResult{NonEmpty: answer, Stats: stats, Timings: tm}, nil
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats, Timings: tm}, nil
	}
	return nil, fmt.Errorf("core: plan mode %v is not executable", p.Mode)
}

// forEach runs fn(ctx, i) for i in [0, n), sequentially when workers ≤ 1,
// and through a bounded worker pool otherwise. The first genuine error
// cancels the sibling executions; the error returned is deterministic — the
// lowest-index genuine failure wins over the cancellations it propagated,
// and the parent context's error wins when the run as a whole was cancelled
// from outside.
func (ex *Executor) forEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(cctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return first
}
