package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/yannakakis"
)

// Executor runs the data-dependent phase of prepared plans. It is the
// context-first execution surface of the engine: an Executor is configured
// once (parallelism plus the engine tunables in Options) and reused across
// runs, and every run takes a context.Context that is checked between proof
// steps, between rule executions, and between Yannakakis passes — a
// cancelled or expired context aborts the run promptly with ctx.Err().
//
// When Parallelism > 1, the independent per-bag (ModeFhtw) and
// per-transversal (ModeSubw) rule executions fan out across a bounded
// worker pool. The fan-out is deterministic: per-rule results are merged in
// rule-index order, so the output relation, OK answer, Width and Stats
// (including the operator trace) are byte-identical to a sequential run.
// The first genuine error cancels the sibling executions.
//
// The zero value is a valid sequential executor with default Options.
// Executors are stateless between runs and safe for concurrent use.
type Executor struct {
	// Parallelism bounds how many rule executions may run concurrently;
	// values ≤ 1 mean sequential execution.
	Parallelism int
	// Opt tunes every PANDA rule execution (trace, invariant checks,
	// budget ablation).
	Opt Options
}

// ExecuteRule runs the data-dependent phase of one prepared disjunctive
// rule over an instance: the proof sequence is interpreted step by step by
// the PANDA engine, with the constraint set bound to the instance's
// relations as guards, checking ctx between steps. The prepared rule is not
// mutated, so one rule may be executed concurrently by many goroutines.
func (ex *Executor) ExecuteRule(ctx context.Context, s *query.Schema, pr *plan.PreparedRule, cons []query.DegreeConstraint, ins *query.Instance) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ins.Relations) != len(s.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(s.Atoms))
	}
	if pr.Trivial {
		return trivialResult(), nil
	}
	stats := newStats()
	var timings *Timings
	if ex.Opt.StageTimings {
		timings = newTimings()
	}
	e := &engine{
		ctx:     ctx,
		n:       s.NumVars,
		targets: dedupeSets(pr.Targets),
		objLog:  pr.Bound,
		opt:     ex.Opt,
		stats:   stats,
		timings: timings,
		schema:  s,
	}
	e.objFloat, _ = pr.Bound.Float64()
	// Initial frame: constraints with their guards; supports for the δ
	// coordinates pick the smallest bound among matching constraints.
	f := &frame{
		cons:    make([]rtCon, len(cons)),
		support: map[flow.Pair]int{},
		lambda:  pr.Lambda.Clone(),
		delta:   pr.Delta.Clone(),
		seq:     pr.Seq,
	}
	for i, c := range cons {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		f.cons[i] = rtCon{x: c.X, y: c.Y, logN: c.LogN, guard: ins.Relations[c.Guard]}
		f.cons[i].nFloat, _ = c.LogN.Float64()
	}
	for p0 := range f.delta {
		for i, c := range f.cons {
			if c.x == p0.X && c.y == p0.Y {
				f.setSupport(p0, i, f.cons)
			}
		}
		if _, ok := f.support[p0]; !ok {
			return nil, fmt.Errorf("core: initial δ%v has no matching constraint", p0)
		}
	}
	tables, err := e.run(f)
	if err != nil {
		return nil, err
	}
	// Present every target, empty when no subproblem delivered it.
	for _, b := range e.targets {
		if _, ok := tables[b]; !ok {
			tables[b] = relation.New(fmt.Sprintf("T_%s", s.VarLabel(b)), b)
		}
	}
	return &Result{Tables: tables, Bound: pr.Bound, Stats: stats, Timings: timings}, nil
}

// EvalDisjunctive runs PANDA (Algorithm 1) on a disjunctive datalog rule:
// it solves the polymatroid bound LP (Lemma 5.2), extracts a witness
// (Proposition 5.4), constructs a proof sequence (Theorem 5.9), and
// interprets it over the instance, honoring ctx throughout.
//
// This is the one-shot prepare+execute path; callers with repeated traffic
// should use plan.PrepareRule once and ExecuteRule per instance.
func (ex *Executor) EvalDisjunctive(ctx context.Context, p *query.Disjunctive, ins *query.Instance, dcs []query.DegreeConstraint) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(p.Targets) == 0 {
		return nil, fmt.Errorf("core: rule has no targets")
	}
	if len(ins.Relations) != len(p.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms", len(ins.Relations), len(p.Atoms))
	}
	// A target ∅ admits the trivial minimal model {()} (Section 1.3).
	for _, b := range p.Targets {
		if b == 0 {
			return trivialResult(), nil
		}
	}
	dcs = CompleteConstraints(&p.Schema, ins, dcs)
	for _, c := range dcs {
		if c.Guard < 0 || c.Guard >= len(ins.Relations) {
			return nil, fmt.Errorf("core: constraint on %v lacks a guard atom", c.Y)
		}
		if !c.Y.SubsetOf(p.Atoms[c.Guard].Vars) {
			return nil, fmt.Errorf("core: atom %s cannot guard constraint on %v",
				p.Atoms[c.Guard].Name, c.Y)
		}
	}
	var prepStart time.Time
	if ex.Opt.StageTimings {
		prepStart = time.Now()
	}
	pr, _, err := plan.PrepareRuleContext(ctx, &p.Schema, dcs, p.Targets)
	if err != nil {
		return nil, err
	}
	var prepWait time.Duration
	if ex.Opt.StageTimings {
		prepWait = time.Since(prepStart)
	}
	res, err := ex.ExecuteRule(ctx, &p.Schema, pr, dcs, ins)
	if err == nil && res.Timings != nil {
		res.Timings.PrepareWait = prepWait
	}
	return res, err
}

// Execute runs the data-dependent phase of a prepared plan over an
// instance. The plan is treated as immutable: concurrent Execute calls on a
// shared plan are safe.
func (ex *Executor) Execute(ctx context.Context, p *plan.Plan, ins *query.Instance) (*ExecResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := ex.execute(ctx, p, ins)
	if err != nil {
		return nil, err
	}
	res.Width, res.Mode = p.Width, p.Mode
	return res, nil
}

func (ex *Executor) execute(ctx context.Context, p *plan.Plan, ins *query.Instance) (*ExecResult, error) {
	if len(ins.Relations) != len(p.Schema.Atoms) {
		return nil, fmt.Errorf("core: instance has %d relations for %d atoms",
			len(ins.Relations), len(p.Schema.Atoms))
	}
	// Stage clocks: tick() banks the elapsed wall-clock since the previous
	// tick and restarts the clock; a nil-safe no-op when timings are off.
	var t0 time.Time
	timed := ex.Opt.StageTimings
	tick := func() time.Duration {
		if !timed {
			return 0
		}
		d := time.Since(t0)
		t0 = time.Now()
		return d
	}
	if timed {
		t0 = time.Now()
	}
	switch p.Mode {
	case plan.ModeFull:
		res, err := ex.ExecuteRule(ctx, &p.Schema, p.Rules[0], p.Cons, ins)
		if err != nil {
			return nil, err
		}
		tm := res.Timings
		if tm != nil {
			tm.RuleFanout = tick()
		}
		// Semijoin reduction with every input removes spurious tuples
		// (Corollary 7.10).
		t := res.Tables[bitset.Full(p.Schema.NumVars)]
		for _, r := range ins.Relations {
			t = t.Semijoin(r)
		}
		if tm != nil {
			tm.Merge = tick()
		}
		return &ExecResult{Out: t, NonEmpty: t.Size() > 0, Tables: res.Tables, Bound: res.Bound, Stats: res.Stats, Timings: tm}, nil

	case plan.ModeFhtw:
		td := p.TDs[p.Chosen]
		// The per-bag rules are independent until the Yannakakis pass:
		// execute and semijoin-reduce them through the worker pool, then
		// merge stats in bag order so the outcome matches sequential runs.
		ress := make([]*Result, len(td.Bags))
		rels := make([]*relation.Relation, len(td.Bags))
		err := ex.forEachRule(ctx, len(td.Bags), func(ctx context.Context, i int) error {
			res, err := ex.ExecuteRule(ctx, &p.Schema, p.Rules[i], p.Cons, ins)
			if err != nil {
				return err
			}
			ress[i] = res
			rels[i] = reduceWithInputs(res.Tables[td.Bags[i]], ins)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var tm *Timings
		if timed {
			tm = newTimings()
			tm.RuleFanout = tick()
		}
		stats := newStats()
		for _, res := range ress {
			accumulate(stats, res.Stats)
			if tm != nil {
				tm.Accumulate(res.Timings)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p.Free == 0 {
			ok, err := yannakakis.NonEmpty(rels, td.Parent)
			if err != nil {
				return nil, err
			}
			if tm != nil {
				tm.Merge = tick()
			}
			return &ExecResult{NonEmpty: ok, Stats: stats, Timings: tm}, nil
		}
		out, err := yannakakis.Join(rels, td.Parent)
		if err != nil {
			return nil, err
		}
		if tm != nil {
			tm.Merge = tick()
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats, Timings: tm}, nil

	case plan.ModeSubw:
		// One rule per inclusion-minimal transversal; the rules are
		// independent, so they fan out, and their tables are merged in rule
		// order afterwards (set-semantics unions, deterministic).
		ress := make([]*Result, len(p.Rules))
		err := ex.forEachRule(ctx, len(p.Rules), func(ctx context.Context, i int) error {
			res, err := ex.ExecuteRule(ctx, &p.Schema, p.Rules[i], p.Cons, ins)
			if err != nil {
				return err
			}
			ress[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		var tm *Timings
		if timed {
			tm = newTimings()
			tm.RuleFanout = tick()
		}
		stats := newStats()
		tables := map[bitset.Set]*relation.Relation{}
		for _, res := range ress {
			accumulate(stats, res.Stats)
			if tm != nil {
				tm.Accumulate(res.Timings)
			}
			mergeTables(tables, res.Tables)
		}
		// Semijoin-reduce every bag table with the inputs.
		for b, t := range tables {
			tables[b] = reduceWithInputs(t, ins)
		}
		// Evaluate every decomposition whose bags all have tables; union.
		var out *relation.Relation
		answer := false
		evaluated := 0
		for ti, td := range p.TDs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rels := make([]*relation.Relation, len(td.Bags))
			ok := true
			for i, bi := range p.TDBags[ti] {
				t, have := tables[p.Bags[bi]]
				if !have {
					ok = false
					break
				}
				rels[i] = t
			}
			if !ok {
				continue
			}
			evaluated++
			if p.Free == 0 {
				ne, err := yannakakis.NonEmpty(rels, td.Parent)
				if err != nil {
					return nil, err
				}
				answer = answer || ne
				continue
			}
			j, err := yannakakis.Join(rels, td.Parent)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = j
			} else {
				out = out.Union(j)
			}
		}
		if evaluated == 0 {
			return nil, fmt.Errorf("core: no tree decomposition fully covered by transversal bags")
		}
		if tm != nil {
			tm.Merge = tick()
		}
		if p.Free == 0 {
			return &ExecResult{NonEmpty: answer, Stats: stats, Timings: tm}, nil
		}
		return &ExecResult{Out: out, NonEmpty: out.Size() > 0, Stats: stats, Timings: tm}, nil
	}
	return nil, fmt.Errorf("core: plan mode %v is not executable", p.Mode)
}

// forEachRule runs fn(ctx, i) for i in [0, n), sequentially when the
// executor's parallelism (or n) is 1, and through a bounded worker pool
// otherwise. The first genuine error cancels the sibling executions; the
// error returned is deterministic — the lowest-index genuine failure wins
// over the cancellations it propagated, and the parent context's error wins
// when the run as a whole was cancelled from outside.
func (ex *Executor) forEachRule(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := ex.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(cctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return first
}
