// Package core implements PANDA (Proof-Assisted eNtropic Degree-Aware), the
// paper's Algorithm 1: a proof sequence for a Shannon flow inequality is
// interpreted step by step as relational operations — submodularity is pure
// bookkeeping, monotonicity is a projection, decomposition is a heavy/light
// degree partition spawning subproblems (Lemma 6.1), and composition is a
// join, guarded by the 2^OBJ budget with Case-4b restarts via inequality
// truncation (Lemma 5.11). The wrappers in eval.go lift PANDA to full and
// Boolean conjunctive queries at the degree-aware fractional-hypertree and
// submodular widths (Corollaries 7.10, 7.11, 7.13 / Theorem 1.9).
package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/query"
	"panda/internal/relation"
)

// Stats reports what a PANDA run did; used by the experiment harness to
// regenerate Figure 1 and to validate Theorem 1.7's accounting.
type Stats struct {
	StepsByKind     map[string]int
	Joins           int
	Projections     int
	Partitions      int
	Subproblems     int
	Restarts        int
	BaseCases       int
	MaxIntermediate int
	Trace           []string
}

func newStats() *Stats { return &Stats{StepsByKind: map[string]int{}} }

// Timings attributes wall-clock time to the stages of one execution:
// planning wait, per-proof-step-kind engine work, the rule fan-out, and the
// post-fan-out merge. Unlike Stats, timings are inherently nondeterministic
// run to run, so they live outside Stats — the byte-identical-merge
// guarantee of parallel execution covers Stats but not Timings. Collection
// is gated by Options.StageTimings; when off, the engine makes no clock
// calls at all.
type Timings struct {
	// PrepareWait is the time the run spent waiting for its plan: a plan-
	// cache hit costs microseconds, a miss pays the LP solves. Filled by
	// the facade (the executor never sees planning).
	PrepareWait time.Duration
	// Steps maps each proof-step kind (submodularity, monotonicity,
	// decomposition, composition) to the engine time it consumed,
	// excluding nested subproblem runs — a child's steps account for
	// themselves.
	Steps map[string]time.Duration
	// RuleFanout is the wall-clock of the rule fan-out phase: every
	// per-bag / per-transversal rule execution, including pool scheduling.
	// Under parallelism this is wall time, not the sum of per-rule work.
	RuleFanout time.Duration
	// Merge is the wall-clock of the post-fan-out merge: stats
	// accumulation, semijoin reductions and Yannakakis passes.
	Merge time.Duration
}

func newTimings() *Timings { return &Timings{Steps: map[string]time.Duration{}} }

// Accumulate folds src into t (per-step sums; stage sums).
func (t *Timings) Accumulate(src *Timings) {
	if src == nil {
		return
	}
	for k, d := range src.Steps {
		t.Steps[k] += d
	}
	t.PrepareWait += src.PrepareWait
	t.RuleFanout += src.RuleFanout
	t.Merge += src.Merge
}

// Seconds flattens the timings into float64 seconds per stage, the shape a
// serving layer exposes (JSON responses, slow-query logs).
func (t *Timings) Seconds() map[string]float64 {
	out := map[string]float64{
		"prepare_wait": t.PrepareWait.Seconds(),
		"rule_fanout":  t.RuleFanout.Seconds(),
		"merge":        t.Merge.Seconds(),
	}
	for k, d := range t.Steps {
		out["step_"+k] = d.Seconds()
	}
	return out
}

// stepTimer attributes wall-clock to one proof-step kind. Recursive step
// handlers (decomposition, Case-4b composition) pause it around the nested
// e.run so child steps are not double-counted. A nil timer (timings
// disabled) makes every method a no-op.
type stepTimer struct {
	e    *engine
	kind string
	t0   time.Time
}

func (e *engine) startStep(kind string) *stepTimer {
	if e.timings == nil {
		return nil
	}
	return &stepTimer{e: e, kind: kind, t0: time.Now()}
}

// pause banks the elapsed segment; resume starts a new one.
func (t *stepTimer) pause() {
	if t != nil {
		t.e.timings.Steps[t.kind] += time.Since(t.t0)
	}
}

func (t *stepTimer) resume() {
	if t != nil {
		t.t0 = time.Now()
	}
}

// Options tunes a PANDA run.
type Options struct {
	// Trace records one line per relational operation in Stats.Trace.
	Trace bool
	// CheckInvariants validates the degree-support invariant and the
	// potential inequality (85) before every step (used by tests; exact
	// rational arithmetic).
	CheckInvariants bool
	// DisableBudget is an ablation switch: Case 4 compositions always
	// join (Case 4b never fires). Outputs remain correct models, but the
	// Theorem 1.7 runtime guarantee is forfeited — on adversarial inputs
	// intermediates blow up to the fhtw regime. Used by the ablation
	// benchmarks.
	DisableBudget bool
	// StageTimings records wall-clock stage timings (per-step-kind engine
	// time, rule fan-out, merge) into Result.Timings / ExecResult.Timings.
	// Off by default: the disabled path makes no clock calls.
	StageTimings bool
}

// Result is the outcome of a disjunctive-rule evaluation.
type Result struct {
	// Tables maps every target B to a computed table T_B; their union over
	// targets is a model of the rule.
	Tables map[bitset.Set]*relation.Relation
	// Bound is the exact polymatroid bound LogSizeBound_{Γn∩HDC}(P) in
	// log₂ units.
	Bound *big.Rat
	Stats *Stats
	// Timings holds per-stage wall-clock timings; nil unless
	// Options.StageTimings was set.
	Timings *Timings
}

// rtCon is a runtime degree constraint (Z, W, N_{W|Z}) with its guard.
type rtCon struct {
	x, y   bitset.Set
	logN   *big.Rat
	nFloat float64
	guard  *relation.Relation
}

type engine struct {
	ctx      context.Context
	n        int
	targets  []bitset.Set
	objLog   *big.Rat
	objFloat float64
	opt      Options
	stats    *Stats
	timings  *Timings // nil unless opt.StageTimings
	schema   *query.Schema
	restarts int
}

// frame is the state of one subproblem.
type frame struct {
	cons    []rtCon
	support map[flow.Pair]int // positive δ coordinate → supporting constraint
	lambda  flow.Vec
	delta   flow.Vec
	seq     flow.ProofSequence
}

const budgetSlack = 1e-6

func (e *engine) tracef(format string, args ...interface{}) {
	if e.opt.Trace {
		e.stats.Trace = append(e.stats.Trace, fmt.Sprintf(format, args...))
	}
}

func (e *engine) note(r *relation.Relation) *relation.Relation {
	if r.Size() > e.stats.MaxIntermediate {
		e.stats.MaxIntermediate = r.Size()
	}
	return r
}

func (e *engine) label(s bitset.Set) string {
	if e.schema != nil {
		return e.schema.VarLabel(s)
	}
	return s.String()
}

// setSupport records con as support for pair p if it is better (smaller
// bound) than the current one.
func (f *frame) setSupport(p flow.Pair, con int, cons []rtCon) {
	if cur, ok := f.support[p]; ok && cons[cur].logN.Cmp(cons[con].logN) <= 0 {
		return
	}
	f.support[p] = con
}

func (f *frame) dropIfZero(p flow.Pair) {
	if f.delta.Get(p).Sign() == 0 {
		delete(f.support, p)
	}
}

// checkInvariants verifies the degree-support invariant (Fig. 8) and the
// potential inequality (85) exactly.
func (e *engine) checkInvariants(f *frame) error {
	potential := new(big.Rat)
	for p, v := range f.delta {
		if v.Sign() <= 0 {
			continue
		}
		ci, ok := f.support[p]
		if !ok {
			return fmt.Errorf("core: positive δ%v has no support", p)
		}
		c := f.cons[ci]
		if !c.x.SubsetOf(p.X) || !c.y.SubsetOf(p.Y) || c.y.Minus(c.x) != p.Y.Minus(p.X) {
			return fmt.Errorf("core: support (%v,%v) malformed for %v", c.x, c.y, p)
		}
		if c.guard == nil || !c.y.SubsetOf(c.guard.Attrs()) {
			return fmt.Errorf("core: support for %v has no usable guard", p)
		}
		potential.Add(potential, new(big.Rat).Mul(v, c.logN))
	}
	budget := new(big.Rat).Mul(f.lambda.L1(), e.objLog)
	if potential.Cmp(budget) > 0 {
		// Allow the slack introduced by dyadic log rounding.
		diff, _ := new(big.Rat).Sub(potential, budget).Float64()
		if diff > budgetSlack {
			return fmt.Errorf("core: potential %v exceeds ‖λ‖·OBJ = %v", potential, budget)
		}
	}
	if l1 := f.lambda.L1(); l1.Sign() <= 0 || l1.Cmp(big.NewRat(1, 1)) > 0 {
		return fmt.Errorf("core: invariant (84) violated: ‖λ‖ = %v", l1)
	}
	return nil
}

// run executes the proof sequence on the given frame, returning tables per
// target whose union (across sibling subproblems) models the rule.
func (e *engine) run(f *frame) (map[bitset.Set]*relation.Relation, error) {
	for {
		// Cancellation is checked between proof steps: each step is one
		// relational operation, so a cancelled context aborts before the
		// next join/projection/partition rather than mid-operation.
		if err := e.ctx.Err(); err != nil {
			return nil, err
		}
		if e.opt.CheckInvariants {
			if err := e.checkInvariants(f); err != nil {
				return nil, err
			}
		}
		// Base case (Algorithm 1, line 1): a relation whose schema is
		// exactly a target.
		for _, b := range e.targets {
			for _, c := range f.cons {
				if c.guard != nil && c.guard.Attrs() == b {
					e.stats.BaseCases++
					e.tracef("base: return %s as T_%s", c.guard.Name, e.label(b))
					return map[bitset.Set]*relation.Relation{b: c.guard}, nil
				}
			}
		}
		if len(f.seq) == 0 {
			return e.finish(f)
		}
		step := f.seq[0]
		f.seq = f.seq[1:]
		e.stats.StepsByKind[step.Kind.String()]++
		st := e.startStep(step.Kind.String())
		switch step.Kind {
		case flow.Submodularity:
			err := e.stepSubmodularity(f, step)
			st.pause()
			if err != nil {
				return nil, err
			}
		case flow.Monotonicity:
			err := e.stepMonotonicity(f, step)
			st.pause()
			if err != nil {
				return nil, err
			}
		case flow.Decomposition:
			return e.stepDecomposition(f, step, st)
		case flow.Composition:
			done, out, err := e.stepComposition(f, step, st)
			if err != nil {
				return nil, err
			}
			if done {
				return out, nil
			}
		}
	}
}

// finish handles an exhausted proof sequence: by Definition 5.7(4),
// δ_ℓ ≥ λ, so every target with λ_B > 0 holds a supported marginal whose
// guard projects onto the target.
func (e *engine) finish(f *frame) (map[bitset.Set]*relation.Relation, error) {
	for _, b := range e.targets {
		if f.lambda.Get(flow.Marginal(b)).Sign() <= 0 {
			continue
		}
		ci, ok := f.support[flow.Marginal(b)]
		if !ok {
			continue
		}
		g := f.cons[ci].guard
		t := e.note(g.Project(b))
		e.stats.BaseCases++
		e.tracef("finish: return Π_%s(%s) as T_%s", e.label(b), g.Name, e.label(b))
		return map[bitset.Set]*relation.Relation{b: t}, nil
	}
	return nil, fmt.Errorf("core: proof sequence exhausted with no deliverable target (λ = %v, δ = %v)",
		f.lambda, f.delta)
}

// stepSubmodularity (Case 1): pure bookkeeping — the relation associated
// with h(I|I∩J) becomes associated with h(I∪J|J); same supporting guard.
func (e *engine) stepSubmodularity(f *frame, step flow.Step) error {
	i, j := step.A, step.B
	src := flow.Pair{X: i.Intersect(j), Y: i}
	ci, ok := f.support[src]
	if !ok {
		return fmt.Errorf("core: submodularity step %v lacks support for %v", step, src)
	}
	if err := step.Apply(f.delta); err != nil {
		return err
	}
	tgt := flow.Pair{X: j, Y: i.Union(j)}
	f.setSupport(tgt, ci, f.cons)
	f.dropIfZero(src)
	e.tracef("submodularity: %v → %v (guard %s)", src, tgt, f.cons[ci].guard.Name)
	return nil
}

// stepMonotonicity (Case 2): h(Y) → h(X) materializes Π_X(guard).
func (e *engine) stepMonotonicity(f *frame, step flow.Step) error {
	x, y := step.A, step.B
	src := flow.Marginal(y)
	ci, ok := f.support[src]
	if !ok {
		return fmt.Errorf("core: monotonicity step %v lacks support for %v", step, src)
	}
	if err := step.Apply(f.delta); err != nil {
		return err
	}
	f.dropIfZero(src)
	if x == 0 {
		// h(Y) → h(∅): the term is discarded; nothing to materialize.
		e.tracef("monotonicity: drop %v", src)
		return nil
	}
	g := f.cons[ci].guard
	p := e.note(g.Project(x))
	e.stats.Projections++
	nc := rtCon{x: 0, y: x, logN: query.LogOf(int64(p.Size())), guard: p}
	nc.nFloat, _ = nc.logN.Float64()
	f.cons = append(f.cons, nc)
	f.setSupport(flow.Marginal(x), len(f.cons)-1, f.cons)
	e.tracef("monotonicity: %s := Π_%s(%s), |%s| = %d", p.Name, e.label(x), g.Name, p.Name, p.Size())
	return nil
}

// stepDecomposition (Case 3): h(Y) → h(X) + h(Y|X) partitions the guard by
// X-degree (Lemma 6.1) and spawns one subproblem per bucket; results are
// unioned per target.
func (e *engine) stepDecomposition(f *frame, step flow.Step, st *stepTimer) (map[bitset.Set]*relation.Relation, error) {
	x, y := step.A, step.B
	src := flow.Marginal(y)
	ci, ok := f.support[src]
	if !ok {
		st.pause()
		return nil, fmt.Errorf("core: decomposition step %v lacks support for %v", step, src)
	}
	g := f.cons[ci].guard
	buckets := partitionByProjDegree(g, y, x)
	e.stats.Partitions++
	e.tracef("decomposition: partition %s by deg(%s|%s) into %d buckets",
		g.Name, e.label(y), e.label(x), len(buckets))
	out := map[bitset.Set]*relation.Relation{}
	for _, bk := range buckets {
		e.stats.Subproblems++
		child := &frame{
			cons:    make([]rtCon, len(f.cons), len(f.cons)+2),
			support: make(map[flow.Pair]int, len(f.support)+2),
			lambda:  f.lambda.Clone(),
			delta:   f.delta.Clone(),
			seq:     f.seq,
		}
		copy(child.cons, f.cons)
		for p, c := range f.support {
			child.support[p] = c
		}
		// Replace g by the bucket everywhere it guards a constraint
		// (degrees only shrink on subsets, so every bound stays valid).
		for k := range child.cons {
			if child.cons[k].guard == g {
				child.cons[k].guard = bk
			}
		}
		if err := step.Apply(child.delta); err != nil {
			return nil, err
		}
		child.dropIfZero(src)
		py := bk.Project(y)
		nx := int64(py.Project(x).Size())
		dyx := int64(py.Degree(y, x))
		cx := rtCon{x: 0, y: x, logN: query.LogOf(nx), guard: bk}
		cx.nFloat, _ = cx.logN.Float64()
		cyx := rtCon{x: x, y: y, logN: query.LogOf(dyx), guard: bk}
		cyx.nFloat, _ = cyx.logN.Float64()
		child.cons = append(child.cons, cx, cyx)
		if x != 0 {
			child.setSupport(flow.Marginal(x), len(child.cons)-2, child.cons)
		}
		child.setSupport(flow.Pair{X: x, Y: y}, len(child.cons)-1, child.cons)
		// The child run accounts for its own steps; the timer only covers
		// this step's partitioning and bucket bookkeeping.
		st.pause()
		res, err := e.run(child)
		st.resume()
		if err != nil {
			st.pause()
			return nil, err
		}
		mergeTables(out, res)
	}
	st.pause()
	return out, nil
}

// stepComposition (Case 4): h(X) + h(Y|X) → h(Y). Within budget the join is
// materialized (4a); over budget the inequality is truncated and the proof
// sequence rebuilt (4b).
func (e *engine) stepComposition(f *frame, step flow.Step, st *stepTimer) (bool, map[bitset.Set]*relation.Relation, error) {
	x, y := step.A, step.B
	srcX := flow.Marginal(x)
	srcYX := flow.Pair{X: x, Y: y}
	cxi, okX := f.support[srcX]
	cyi, okY := f.support[srcYX]
	if !okX || !okY {
		st.pause()
		return false, nil, fmt.Errorf("core: composition step %v lacks supports (%v:%v, %v:%v)",
			step, srcX, okX, srcYX, okY)
	}
	cx, cy := f.cons[cxi], f.cons[cyi]
	if e.opt.DisableBudget || cx.nFloat+cy.nFloat <= e.objFloat+budgetSlack {
		// Case 4a: perform the join T(A_Y) := Π_X(R) ⋈ Π_W(S) with
		// W = cy.y; the support invariant gives X ∪ W = Y.
		defer st.pause()
		r, s := cx.guard, cy.guard
		t := e.note(r.Project(x).Join(s.Project(cy.y)))
		e.stats.Joins++
		if t.Attrs() != y {
			return false, nil, fmt.Errorf("core: join schema %v ≠ %v", t.Attrs(), y)
		}
		if err := step.Apply(f.delta); err != nil {
			return false, nil, err
		}
		nc := rtCon{x: 0, y: y, logN: query.LogOf(int64(t.Size())), guard: t}
		nc.nFloat, _ = nc.logN.Float64()
		f.cons = append(f.cons, nc)
		f.setSupport(flow.Marginal(y), len(f.cons)-1, f.cons)
		f.dropIfZero(srcX)
		f.dropIfZero(srcYX)
		e.tracef("composition: %s := Π_%s(%s) ⋈ Π_%s(%s), |T| = %d",
			t.Name, e.label(x), r.Name, e.label(cy.y), s.Name, t.Size())
		return false, nil, nil
	}
	// Case 4b: the join would blow the budget; truncate and restart. The
	// restart's own steps account for themselves, so the timer stops once
	// the truncated child frame is built.
	e.tracef("composition: skip join on %v (n=%.3f+%.3f > OBJ=%.3f); truncate at %v",
		y, cx.nFloat, cy.nFloat, e.objFloat, e.label(y))
	child, err := e.truncateAndRestart(f, step, y)
	st.pause()
	if err != nil {
		return false, nil, err
	}
	out, err := e.run(child)
	return true, out, err
}

// truncateAndRestart builds the Case-4b child frame: the inequality is
// truncated at y (Lemma 5.11), a fresh proof sequence is constructed, and
// the supports of the surviving δ coordinates are carried over.
func (e *engine) truncateAndRestart(f *frame, step flow.Step, y bitset.Set) (*frame, error) {
	e.stats.Restarts++
	e.restarts++
	if e.restarts > 10000 {
		return nil, fmt.Errorf("core: too many Case-4b restarts")
	}
	delta := f.delta.Clone()
	if err := step.Apply(delta); err != nil {
		return nil, err
	}
	wit, err := flow.FindWitness(e.n, f.lambda, delta)
	if err != nil {
		return nil, fmt.Errorf("core: case 4b witness: %w", err)
	}
	tr, err := flow.Truncate(f.lambda, delta, wit, y, step.W)
	if err != nil {
		return nil, fmt.Errorf("core: case 4b truncate: %w", err)
	}
	if tr.Lambda.L1().Sign() <= 0 {
		return nil, fmt.Errorf("core: truncation left no targets (‖λ'‖ = 0)")
	}
	seq, err := flow.ConstructProof(tr.Lambda, tr.Delta, tr.Witness)
	if err != nil {
		return nil, fmt.Errorf("core: case 4b proof: %w", err)
	}
	// Rebuild supports for the surviving coordinates.
	support := map[flow.Pair]int{}
	for p, v := range tr.Delta {
		if v.Sign() <= 0 {
			continue
		}
		if ci, ok := f.support[p]; ok {
			support[p] = ci
		} else {
			return nil, fmt.Errorf("core: truncated δ%v lost its support", p)
		}
	}
	return &frame{cons: f.cons, support: support, lambda: tr.Lambda, delta: tr.Delta, seq: seq}, nil
}

func mergeTables(dst, src map[bitset.Set]*relation.Relation) {
	for b, r := range src {
		if cur, ok := dst[b]; ok {
			dst[b] = cur.Union(r)
		} else {
			dst[b] = r
		}
	}
}

// partitionByProjDegree partitions R's tuples by the degree bucket of their
// A_X value computed over T = Π_Y(R) (Lemma 6.1 applied to the guard
// relation, keeping R's full schema so it can keep guarding its other
// constraints).
func partitionByProjDegree(r *relation.Relation, y, x bitset.Set) []*relation.Relation {
	t := r.Project(y)
	parts := t.PartitionByDegree(y, x)
	if x == 0 || x == y {
		// Degenerate split: single bucket with the whole relation.
		return []*relation.Relation{r.Clone(r.Name + "[all]")}
	}
	out := make([]*relation.Relation, len(parts))
	// Assign each tuple of R to the bucket holding its Π_X value; keys stay
	// on the interned-id plane (all relations here derive from r and share
	// its intern table).
	rowKeyPos := make([]int, 0, x.Card())
	for i, c := range r.Cols() {
		if x.Contains(c) {
			rowKeyPos = append(rowKeyPos, i)
		}
	}
	bucketOf := map[string]int{}
	for bi, p := range parts {
		px := p.Project(x)
		w := len(px.Cols())
		cols := make([][]uint32, w)
		for c := range cols {
			cols[c] = px.Column(c)
		}
		buf := make([]uint32, w)
		for i := 0; i < px.Size(); i++ {
			for c := range cols {
				buf[c] = cols[c][i]
			}
			bucketOf[idKey(buf)] = bi
		}
		out[bi] = relation.New(fmt.Sprintf("%s[b%d]", r.Name, bi), r.Attrs())
	}
	rCols := make([][]uint32, len(r.Cols()))
	for c := range rCols {
		rCols[c] = r.Column(c)
	}
	keyBuf := make([]uint32, len(rowKeyPos))
	rowBuf := make([]uint32, len(rCols))
	for i := 0; i < r.Size(); i++ {
		for j, p := range rowKeyPos {
			keyBuf[j] = rCols[p][i]
		}
		if bi, ok := bucketOf[idKey(keyBuf)]; ok {
			for c := range rCols {
				rowBuf[c] = rCols[c][i]
			}
			out[bi].InsertIDs(rowBuf)
		}
	}
	return out
}

// idKey encodes an id-tuple as a map key.
func idKey(ids []uint32) string {
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		b[4*i] = byte(id)
		b[4*i+1] = byte(id >> 8)
		b[4*i+2] = byte(id >> 16)
		b[4*i+3] = byte(id >> 24)
	}
	return string(b)
}
