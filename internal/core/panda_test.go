package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

// pathRuleSchema builds Example 1.4's rule:
// T123(A1,A2,A3) ∨ T234(A2,A3,A4) ← R12(A1,A2), R23(A2,A3), R34(A3,A4).
func pathRule() *query.Disjunctive {
	s := query.Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []query.Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
		},
	}
	return &query.Disjunctive{
		Schema:  s,
		Targets: []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)},
	}
}

// fourCycleQuery builds Example 1.2's full 4-cycle query.
func fourCycleQuery() *query.Conjunctive {
	s := query.Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []query.Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
			{Name: "R41", Vars: bitset.Of(3, 0)},
		},
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(4)}
}

func randomPathInstance(rng *rand.Rand, p *query.Disjunctive, n, dom int) *query.Instance {
	ins := query.NewInstance(&p.Schema)
	for i := range ins.Relations {
		for k := 0; k < n; k++ {
			ins.Relations[i].Insert([]relation.Value{
				relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))})
		}
	}
	return ins
}

// worstCasePathInstance is the Example 1.10 adversarial input restricted to
// the path body: R12 = [m]×[1], R23 = [1]×[m], R34 = [m]×[1].
func worstCasePathInstance(p *query.Disjunctive, m int) *query.Instance {
	ins := query.NewInstance(&p.Schema)
	for i := 0; i < m; i++ {
		ins.Relations[0].Insert([]relation.Value{relation.Value(i), 0})
		ins.Relations[1].Insert([]relation.Value{0, relation.Value(i)})
		ins.Relations[2].Insert([]relation.Value{relation.Value(i), 0})
	}
	return ins
}

func TestPandaPathRuleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := pathRule()
	for trial := 0; trial < 15; trial++ {
		ins := randomPathInstance(rng, p, 20+rng.Intn(30), 6)
		res, err := EvalDisjunctive(p, ins, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok, err := ins.IsModel(p, res.Tables)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: PANDA output is not a model", trial)
		}
	}
}

// TestPandaExample18 runs the paper's Example 1.8 end to end: the bound is
// N^{3/2} and the computed model respects it (up to the polylog factor,
// here checked with constant 4).
func TestPandaExample18(t *testing.T) {
	p := pathRule()
	for _, m := range []int{16, 64, 256} {
		ins := worstCasePathInstance(p, m)
		res, err := EvalDisjunctive(p, ins, nil, Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		ok, err := ins.IsModel(p, res.Tables)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("m=%d: not a model", m)
		}
		wantBound, _ := res.Bound.Float64()
		gotLog := math.Log2(float64(query.ModelSize(res.Tables)))
		if gotLog > wantBound+2.1 { // ≤ 4·2^bound
			t.Fatalf("m=%d: model size 2^%.2f exceeds bound 2^%.2f", m, gotLog, wantBound)
		}
		// Bound must be exactly (3/2)·log2 N.
		want := new(big.Rat).Mul(big.NewRat(3, 2), query.LogOf(int64(ins.MaxSize())))
		if res.Bound.Cmp(want) != 0 {
			t.Fatalf("m=%d: bound %v, want %v", m, res.Bound, want)
		}
	}
}

// TestDegreeSupportInvariant (Figure 8): invariant checking is on for a
// skewed instance that forces partitioning.
func TestDegreeSupportInvariant(t *testing.T) {
	p := pathRule()
	ins := query.NewInstance(&p.Schema)
	// R34 heavily skewed on A3 → decomposition buckets matter.
	for i := 0; i < 64; i++ {
		ins.Relations[0].Insert([]relation.Value{relation.Value(i), relation.Value(i % 4)})
		ins.Relations[1].Insert([]relation.Value{relation.Value(i % 4), relation.Value(i % 8)})
		ins.Relations[2].Insert([]relation.Value{0, relation.Value(i)}) // one heavy A3
	}
	for i := 0; i < 32; i++ {
		ins.Relations[2].Insert([]relation.Value{relation.Value(1 + i), relation.Value(i)})
	}
	res, err := EvalDisjunctive(p, ins, nil, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ins.IsModel(p, res.Tables)
	if err != nil || !ok {
		t.Fatalf("model check: %v %v", ok, err)
	}
}

func TestPandaEmptyInput(t *testing.T) {
	p := pathRule()
	ins := query.NewInstance(&p.Schema)
	res, err := EvalDisjunctive(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if query.ModelSize(res.Tables) != 0 {
		t.Fatalf("empty input should give empty model, got %d", query.ModelSize(res.Tables))
	}
}

func TestPandaEmptyTargetTrivial(t *testing.T) {
	p := pathRule()
	p.Targets = append(p.Targets, 0) // Boolean-style target
	ins := randomPathInstance(rand.New(rand.NewSource(4)), p, 10, 4)
	res, err := EvalDisjunctive(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0] == nil || res.Tables[0].Size() != 1 {
		t.Fatal("∅ target should be the unit relation")
	}
	if res.Bound.Sign() != 0 {
		t.Fatalf("bound should be 0, got %v", res.Bound)
	}
}

// TestEvalFullTriangle verifies Corollary 7.10 on the triangle query
// against a direct join.
func TestEvalFullTriangle(t *testing.T) {
	s := query.Schema{
		NumVars:  3,
		VarNames: []string{"A", "B", "C"},
		Atoms: []query.Atom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
			{Name: "T", Vars: bitset.Of(0, 2)},
		},
	}
	q := &query.Conjunctive{Schema: s, Free: bitset.Full(3)}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		ins := query.NewInstance(&s)
		for i := range ins.Relations {
			for k := 0; k < 30; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6))})
			}
		}
		got, res, err := EvalFull(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ins.FullJoin()
		if !got.Equal(want) {
			t.Fatalf("trial %d: PANDA %d tuples, direct join %d", trial, got.Size(), want.Size())
		}
		// AGM exponent of the triangle is 3/2.
		wantBound := new(big.Rat).Mul(big.NewRat(3, 2), query.LogOf(int64(ins.MaxSize())))
		if res.Bound.Cmp(wantBound) > 0 {
			t.Fatalf("trial %d: bound %v exceeds AGM %v", trial, res.Bound, wantBound)
		}
	}
}

// TestEvalFullFourCycle verifies EvalFull, EvalFhtw and EvalSubw against the
// direct join on random 4-cycle instances.
func TestEvalFullFourCycle(t *testing.T) {
	q := fourCycleQuery()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		ins := query.NewInstance(&q.Schema)
		for i := range ins.Relations {
			for k := 0; k < 25; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5))})
			}
		}
		want := ins.FullJoin()

		got, _, err := EvalFull(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("EvalFull: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d EvalFull: %d vs %d tuples", trial, got.Size(), want.Size())
		}

		gotF, _, _, err := EvalFhtw(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("EvalFhtw: %v", err)
		}
		if !gotF.Equal(want) {
			t.Fatalf("trial %d EvalFhtw: %d vs %d tuples", trial, gotF.Size(), want.Size())
		}

		gotS, _, _, err := EvalSubw(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("EvalSubw: %v", err)
		}
		if !gotS.Equal(want) {
			t.Fatalf("trial %d EvalSubw: %d vs %d tuples", trial, gotS.Size(), want.Size())
		}
	}
}

// TestEvalBooleanFourCycleWorstCase reproduces Example 1.10: on the
// adversarial instance (R12 = R34 = [m]×[1], R23 = R41 = [1]×[m]) the
// Boolean 4-cycle is true, and PANDA's intermediates stay near N^{3/2}
// while any single tree decomposition would materialize N² tuples.
func TestEvalBooleanFourCycleWorstCase(t *testing.T) {
	q := fourCycleQuery()
	q.Free = 0 // Boolean
	for _, m := range []int{8, 32, 64} {
		ins := query.NewInstance(&q.Schema)
		for i := 0; i < m; i++ {
			v := relation.Value(i)
			ins.Relations[0].Insert([]relation.Value{v, 0}) // R12(A1,A2) = [m]×[1]
			ins.Relations[1].Insert([]relation.Value{0, v}) // R23(A2,A3) = [1]×[m]
			ins.Relations[2].Insert([]relation.Value{v, 0}) // R34(A3,A4) = [m]×[1]
			ins.Relations[3].Insert([]relation.Value{v, 0}) // R41(A4,A1) = [1]×[m]: A4=0, A1=v
		}
		_, ans, stats, err := EvalSubw(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !ans {
			t.Fatalf("m=%d: 4-cycle exists but answer is false", m)
		}
		limit := 8 * int(math.Pow(float64(m), 1.5))
		if stats.MaxIntermediate > limit {
			t.Fatalf("m=%d: intermediate %d exceeds ~N^1.5 = %d", m, stats.MaxIntermediate, limit)
		}
	}
}

func TestEvalBooleanFalse(t *testing.T) {
	q := fourCycleQuery()
	q.Free = 0
	ins := query.NewInstance(&q.Schema)
	// Edges that cannot close a cycle: R41 uses values never produced.
	ins.Relations[0].Insert([]relation.Value{1, 2})
	ins.Relations[1].Insert([]relation.Value{2, 3})
	ins.Relations[2].Insert([]relation.Value{3, 4})
	ins.Relations[3].Insert([]relation.Value{9, 9})
	_, ans, _, err := EvalSubw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans {
		t.Fatal("no 4-cycle exists but answer is true")
	}
	_, ansF, _, err := EvalFhtw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ansF {
		t.Fatal("EvalFhtw: no 4-cycle exists but answer is true")
	}
}

// TestPandaWithFDs checks Example 1.2(c): with A1 ↔ A2 FDs the full
// 4-cycle bound drops to N^{3/2}, and evaluation stays correct on an
// FD-satisfying instance.
func TestPandaWithFDs(t *testing.T) {
	q := fourCycleQuery()
	ins := query.NewInstance(&q.Schema)
	m := 32
	for i := 0; i < m; i++ {
		v := relation.Value(i)
		ins.Relations[0].Insert([]relation.Value{v, v}) // A1 = A2: satisfies both FDs
		ins.Relations[1].Insert([]relation.Value{v, relation.Value(int(v) % 5)})
		ins.Relations[2].Insert([]relation.Value{relation.Value(int(v) % 5), v})
		ins.Relations[3].Insert([]relation.Value{v, v})
	}
	dcs := []query.DegreeConstraint{
		query.FD(bitset.Of(0), bitset.Of(1), 0),
		query.FD(bitset.Of(1), bitset.Of(0), 0),
	}
	if err := ins.Check(&q.Schema, dcs); err != nil {
		t.Fatalf("instance violates FDs: %v", err)
	}
	got, res, err := EvalFull(q, ins, dcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ins.FullJoin()
	if !got.Equal(want) {
		t.Fatalf("FD eval: %d vs %d tuples", got.Size(), want.Size())
	}
	wantBound := new(big.Rat).Mul(big.NewRat(3, 2), query.LogOf(int64(ins.MaxSize())))
	if res.Bound.Cmp(wantBound) > 0 {
		t.Fatalf("bound with FDs %v exceeds (3/2)logN = %v", res.Bound, wantBound)
	}
}

// TestPandaBudget (Theorem 1.7): every intermediate stays within
// poly-log · 2^OBJ on random instances.
func TestPandaBudget(t *testing.T) {
	p := pathRule()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		ins := randomPathInstance(rng, p, 40, 8)
		res, err := EvalDisjunctive(p, ins, nil, Options{CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := res.Bound.Float64()
		if lim := 8 * math.Pow(2, b); float64(res.Stats.MaxIntermediate) > lim {
			t.Fatalf("trial %d: intermediate %d > 8·2^OBJ = %.0f", trial, res.Stats.MaxIntermediate, lim)
		}
	}
}

// TestPandaDegreeConstraintRule uses a proper degree constraint as in
// Example 1.2(b) and verifies the run stays a model.
func TestPandaDegreeConstraintRule(t *testing.T) {
	p := pathRule()
	ins := query.NewInstance(&p.Schema)
	m, d := 36, 3
	for i := 0; i < m; i++ {
		// R12: each A1 has exactly d partners → deg(A1A2|A1) ≤ d.
		for k := 0; k < d; k++ {
			ins.Relations[0].Insert([]relation.Value{relation.Value(i), relation.Value((i + k) % m)})
		}
		ins.Relations[1].Insert([]relation.Value{relation.Value(i), relation.Value(i % 7)})
		ins.Relations[2].Insert([]relation.Value{relation.Value(i % 7), relation.Value(i)})
	}
	dcs := []query.DegreeConstraint{
		query.Degree(bitset.Of(0), bitset.Of(0, 1), int64(d), 0),
	}
	if err := ins.Check(&p.Schema, dcs); err != nil {
		t.Fatal(err)
	}
	res, err := EvalDisjunctive(p, ins, dcs, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ins.IsModel(p, res.Tables)
	if err != nil || !ok {
		t.Fatalf("model: %v %v", ok, err)
	}
}

func TestEvalErrors(t *testing.T) {
	p := pathRule()
	ins := query.NewInstance(&p.Schema)
	// Guard mismatch: constraint variables outside the guard atom.
	bad := []query.DegreeConstraint{query.Cardinality(bitset.Of(0, 3), 5, 0)}
	if _, err := EvalDisjunctive(p, ins, bad, Options{}); err == nil {
		t.Fatal("unguardable constraint accepted")
	}
	if _, err := EvalDisjunctive(&query.Disjunctive{Schema: p.Schema}, ins, nil, Options{}); err == nil {
		t.Fatal("rule without targets accepted")
	}
	q := fourCycleQuery()
	q.Free = bitset.Of(0) // neither full nor handled by EvalFull
	if _, _, err := EvalFull(q, query.NewInstance(&q.Schema), nil, Options{}); err == nil {
		t.Fatal("non-full query accepted by EvalFull")
	}
}

// TestTraceExample18 regenerates the Figure 1 operator trace shape: the
// proof-sequence interpretation must include at least one partition or
// join, and tracing records it.
func TestTraceExample18(t *testing.T) {
	p := pathRule()
	ins := worstCasePathInstance(p, 16)
	res, err := EvalDisjunctive(p, ins, nil, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Trace) == 0 {
		t.Fatal("trace is empty")
	}
	if res.Stats.Joins == 0 && res.Stats.BaseCases == 0 {
		t.Fatal("no join and no base case: nothing was computed?")
	}
}
