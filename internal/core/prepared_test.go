package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"panda/internal/bitset"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

func triangleQuery() *query.Conjunctive {
	s := query.Schema{
		NumVars:  3,
		VarNames: []string{"A", "B", "C"},
		Atoms: []query.Atom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
			{Name: "T", Vars: bitset.Of(0, 2)},
		},
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(3)}
}

func randomBinaryInstance(seed int64, s *query.Schema, n, dom int) *query.Instance {
	rng := rand.New(rand.NewSource(seed))
	ins := query.NewInstance(s)
	for i := range ins.Relations {
		// Exactly n distinct tuples, so instances built with the same n
		// produce identical cardinality constraints (needs dom² ≥ n).
		for ins.Relations[i].Size() < n {
			ins.Relations[i].Insert([]relation.Value{
				relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))})
		}
	}
	return ins
}

// TestPreparedMatchesUnprepared is the golden comparison of the acceptance
// criteria: for the triangle and four-cycle workloads, prepare+execute must
// return exactly the rows of the one-shot EvalFhtw/EvalSubw/EvalFull paths.
func TestPreparedMatchesUnprepared(t *testing.T) {
	cases := []struct {
		name string
		q    *query.Conjunctive
		seed int64
	}{
		{"triangle", triangleQuery(), 11},
		{"four-cycle", fourCycleQuery(), 23},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ins := randomBinaryInstance(tc.seed, &tc.q.Schema, 60, 12)
			cons := CompleteConstraints(&tc.q.Schema, ins, nil)

			wantRel, wantOK, _, err := EvalFhtw(tc.q, ins, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p, _, err := plan.Prepare(tc.q, cons, plan.ModeFhtw)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := Execute(p, ins, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ex.NonEmpty != wantOK || !reflect.DeepEqual(ex.Out.SortedRows(), wantRel.SortedRows()) {
				t.Fatalf("fhtw prepared path diverges: %d rows vs %d", ex.Out.Size(), wantRel.Size())
			}

			wantRel, wantOK, _, err = EvalSubw(tc.q, ins, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p, _, err = plan.Prepare(tc.q, cons, plan.ModeSubw)
			if err != nil {
				t.Fatal(err)
			}
			ex, err = Execute(p, ins, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ex.NonEmpty != wantOK || !reflect.DeepEqual(ex.Out.SortedRows(), wantRel.SortedRows()) {
				t.Fatalf("subw prepared path diverges: %d rows vs %d", ex.Out.Size(), wantRel.Size())
			}

			wantRel, wantRes, err := EvalFull(tc.q, ins, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p, _, err = plan.Prepare(tc.q, cons, plan.ModeFull)
			if err != nil {
				t.Fatal(err)
			}
			ex, err = Execute(p, ins, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ex.Out.SortedRows(), wantRel.SortedRows()) {
				t.Fatalf("full prepared path diverges: %d rows vs %d", ex.Out.Size(), wantRel.Size())
			}
			if ex.Bound.Cmp(wantRes.Bound) != 0 {
				t.Fatalf("full prepared bound %v ≠ %v", ex.Bound, wantRes.Bound)
			}
			// The ground truth: the brute-force join.
			if want := ins.FullJoin().SortedRows(); !reflect.DeepEqual(ex.Out.SortedRows(), want) {
				t.Fatalf("prepared output ≠ brute-force join")
			}
		})
	}
}

// TestPreparedBooleanMatches: the Boolean four-cycle on the adversarial
// instance, prepared vs unprepared.
func TestPreparedBooleanMatches(t *testing.T) {
	q := fourCycleQuery()
	q.Free = 0
	ins := randomBinaryInstance(5, &q.Schema, 40, 10)
	cons := CompleteConstraints(&q.Schema, ins, nil)
	_, want, _, err := EvalSubw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := plan.Prepare(q, cons, plan.ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Execute(p, ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NonEmpty != want || ex.Out != nil {
		t.Fatalf("prepared Boolean answer %v (rel %v), want %v (nil)", ex.NonEmpty, ex.Out, want)
	}
}

// TestPreparedRenamedCacheHit: a cache-hit plan for a variable-renamed
// query must still produce the exact query answer when executed.
func TestPreparedRenamedCacheHit(t *testing.T) {
	pl := plan.NewPlanner(8)
	q1 := fourCycleQuery()
	ins1 := randomBinaryInstance(7, &q1.Schema, 50, 10)
	cons1 := CompleteConstraints(&q1.Schema, ins1, nil)
	if _, err := pl.Prepare(q1, cons1, plan.ModeFhtw); err != nil {
		t.Fatal(err)
	}
	// The same 4-cycle with rotated variable roles and shuffled atoms:
	// edges (1,2),(2,3),(3,0),(0,1) listed out of order.
	s2 := query.Schema{
		NumVars:  4,
		VarNames: []string{"W", "X", "Y", "Z"},
		Atoms: []query.Atom{
			{Name: "E3", Vars: bitset.Of(3, 0)},
			{Name: "E1", Vars: bitset.Of(1, 2)},
			{Name: "E2", Vars: bitset.Of(2, 3)},
			{Name: "E0", Vars: bitset.Of(0, 1)},
		},
	}
	q2 := &query.Conjunctive{Schema: s2, Free: bitset.Full(4)}
	ins2 := randomBinaryInstance(9, &s2, 50, 10)
	cons2 := CompleteConstraints(&s2, ins2, nil)
	// Equal sizes everywhere (same n) keep the constraint multiset
	// isomorphic, so this must hit.
	p2, err := pl.Prepare(q2, cons2, plan.ModeFhtw)
	if err != nil {
		t.Fatal(err)
	}
	if st := pl.Stats(); st.Hits != 1 {
		t.Fatalf("renamed query did not hit the cache: %v", st)
	}
	ex, err := Execute(p2, ins2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ins2.FullJoin().SortedRows()
	if !reflect.DeepEqual(ex.Out.SortedRows(), want) {
		t.Fatalf("rebound plan answer has %d rows, brute force %d", ex.Out.Size(), len(want))
	}
}

// TestPreparedConcurrentEval: one shared plan executed from many
// goroutines over distinct instances; run with -race to certify the plan is
// read-only during execution.
func TestPreparedConcurrentEval(t *testing.T) {
	pl := plan.NewPlanner(4)
	q := triangleQuery()
	probe := randomBinaryInstance(1, &q.Schema, 30, 8)
	cons := CompleteConstraints(&q.Schema, probe, nil)
	p, err := pl.Prepare(q, cons, plan.ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Same sizes as the probe so the plan's constraints hold.
			ins := randomBinaryInstance(int64(100+g), &q.Schema, 30, 8)
			for i := 0; i < 3; i++ {
				ex, err := Execute(p, ins, Options{})
				if err != nil {
					errs <- err
					return
				}
				want := ins.FullJoin().SortedRows()
				if !reflect.DeepEqual(ex.Out.SortedRows(), want) {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent execute diverged from brute force" }
