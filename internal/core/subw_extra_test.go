package core

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

// fiveCycle builds the C5 query — odd cycle, five tree decompositions,
// exercising the multi-transversal machinery beyond the paper's C4.
func fiveCycle() *query.Conjunctive {
	s := query.Schema{NumVars: 5}
	for i := 0; i < 5; i++ {
		s.Atoms = append(s.Atoms, query.Atom{
			Name: "E" + string(rune('0'+i)),
			Vars: bitset.Of(i, (i+1)%5),
		})
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(5)}
}

func TestEvalSubwFiveCycle(t *testing.T) {
	q := fiveCycle()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 3; trial++ {
		ins := query.NewInstance(&q.Schema)
		for i := range ins.Relations {
			for k := 0; k < 20; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4))})
			}
		}
		want := ins.FullJoin()
		got, _, _, err := EvalSubw(q, ins, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: subw eval %d vs %d tuples", trial, got.Size(), want.Size())
		}
	}
}

func TestEvalFhtwFiveCycleBoolean(t *testing.T) {
	q := fiveCycle()
	q.Free = 0
	ins := query.NewInstance(&q.Schema)
	// A single 5-cycle 0→1→2→3→4→0 on constant values.
	for i := range ins.Relations {
		ins.Relations[i].Insert([]relation.Value{7, 7})
	}
	_, ans, _, err := EvalFhtw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Fatal("self-loop 5-cycle exists")
	}
}

// TestEvalDisjunctiveThreeTargets exercises a rule with three targets,
// where λ mass may split unevenly.
func TestEvalDisjunctiveThreeTargets(t *testing.T) {
	s := query.Schema{
		NumVars: 4,
		Atoms: []query.Atom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
			{Name: "T", Vars: bitset.Of(2, 3)},
		},
	}
	p := &query.Disjunctive{
		Schema: s,
		Targets: []bitset.Set{
			bitset.Of(0, 1), bitset.Of(1, 2, 3), bitset.Of(0, 2),
		},
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		ins := query.NewInstance(&s)
		for i := range ins.Relations {
			for k := 0; k < 25; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5))})
			}
		}
		res, err := EvalDisjunctive(p, ins, nil, Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok, err := ins.IsModel(p, res.Tables)
		if err != nil || !ok {
			t.Fatalf("trial %d: not a model (%v)", trial, err)
		}
	}
}

// TestEvalDisjunctiveDuplicateTargets: duplicated targets are deduped.
func TestEvalDisjunctiveDuplicateTargets(t *testing.T) {
	p := pathRule()
	p.Targets = append(p.Targets, p.Targets[0])
	ins := randomPathInstance(rand.New(rand.NewSource(81)), p, 20, 5)
	res, err := EvalDisjunctive(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ins.IsModel(p, res.Tables)
	if err != nil || !ok {
		t.Fatalf("model: %v %v", ok, err)
	}
}

// TestEvalFullDegreeBoundExample12b runs the full bound-(b) pipeline: the
// degree-constrained 4-cycle where |Q| ≤ D·N^{3/2} (Example 1.2(b)) on its
// tight instance.
func TestEvalFullDegreeBoundExample12b(t *testing.T) {
	q := fourCycleQuery()
	k, d := 5, 2
	ins := query.NewInstance(&q.Schema)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if (j-i%k+k)%k < d {
				ins.Relations[0].Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			}
			ins.Relations[1].Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			ins.Relations[2].Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			ins.Relations[3].Insert([]relation.Value{relation.Value(j), relation.Value(i)})
		}
	}
	dcs := []query.DegreeConstraint{
		query.Degree(bitset.Of(0), bitset.Of(0, 1), int64(d), 0),
		query.Degree(bitset.Of(1), bitset.Of(0, 1), int64(d), 0),
	}
	if err := ins.Check(&q.Schema, dcs); err != nil {
		t.Fatal(err)
	}
	got, _, err := EvalFull(q, ins, dcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ins.FullJoin()
	if !got.Equal(want) {
		t.Fatalf("eval %d vs %d tuples", got.Size(), want.Size())
	}
	if want.Size() != d*k*k*k {
		t.Fatalf("tight instance yields %d, want D·K³ = %d", want.Size(), d*k*k*k)
	}
}
