package core

import (
	"context"
	"reflect"
	"testing"

	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

// TestStageTimingsPopulated: with Options.StageTimings set, a disjunctive
// run attributes wall-clock time to prepare-wait, per-step-kind engine
// work, fan-out and merge — and the step counts in Stats bound which step
// kinds may appear.
func TestStageTimingsPopulated(t *testing.T) {
	p := pathRule()
	ins := worstCasePathInstance(p, 64)
	ex := &Executor{Opt: Options{StageTimings: true}}
	res, err := ex.EvalDisjunctive(context.Background(), p, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm == nil {
		t.Fatal("StageTimings on but Timings nil")
	}
	if tm.PrepareWait <= 0 {
		t.Errorf("PrepareWait = %v, want > 0 (the LP solve is real work)", tm.PrepareWait)
	}
	if len(tm.Steps) == 0 {
		t.Error("no per-step-kind timings for a PANDA run")
	}
	for kind, d := range tm.Steps {
		if d < 0 {
			t.Errorf("step %s has negative time %v", kind, d)
		}
		if res.Stats.StepsByKind[kind] == 0 {
			t.Errorf("timed step kind %s never counted in Stats", kind)
		}
	}
	sec := tm.Seconds()
	for _, key := range []string{"prepare_wait", "rule_fanout", "merge"} {
		if _, ok := sec[key]; !ok {
			t.Errorf("Seconds() missing %q: %v", key, sec)
		}
	}
}

// TestStageTimingsOffIsNil: the default path allocates no Timings and the
// result is otherwise identical — the instrumentation must be free when
// disabled and must never perturb the deterministic Stats.
func TestStageTimingsOffIsNil(t *testing.T) {
	p := pathRule()
	ins := worstCasePathInstance(p, 64)
	off, err := (&Executor{}).EvalDisjunctive(context.Background(), p, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if off.Timings != nil {
		t.Fatal("StageTimings off but Timings non-nil")
	}
	on, err := (&Executor{Opt: Options{StageTimings: true}}).EvalDisjunctive(context.Background(), p, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Stats, on.Stats) {
		t.Fatalf("timing instrumentation changed Stats:\noff %+v\non  %+v", *off.Stats, *on.Stats)
	}
}

// TestStageTimingsParallelConjunctive: the parallel ModeSubw path
// accumulates engine time across rules and records fan-out and merge, while
// Stats stay byte-identical to the sequential run (the determinism contract
// Timings is explicitly excluded from).
func TestStageTimingsParallelConjunctive(t *testing.T) {
	q := fourCycleQuery()
	q.Free = 0
	ins := query.NewInstance(&q.Schema)
	for i := 0; i < 32; i++ {
		v := relation.Value(i)
		ins.Relations[0].Insert([]relation.Value{v, 0})
		ins.Relations[1].Insert([]relation.Value{0, v})
		ins.Relations[2].Insert([]relation.Value{v, 0})
		ins.Relations[3].Insert([]relation.Value{v, 0})
	}
	pl, _, err := plan.Prepare(q, CompleteConstraints(&q.Schema, ins, nil), plan.ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := (&Executor{Opt: Options{StageTimings: true}}).Execute(context.Background(), pl, ins)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Executor{Parallelism: 4, Opt: Options{StageTimings: true}}).Execute(context.Background(), pl, ins)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*ExecResult{"sequential": seq, "parallel": par} {
		if r.Timings == nil {
			t.Fatalf("%s: Timings nil", name)
		}
		if len(r.Timings.Steps) == 0 {
			t.Errorf("%s: no per-step timings", name)
		}
	}
	if seq.Stats.MaxIntermediate != par.Stats.MaxIntermediate || seq.NonEmpty != par.NonEmpty {
		t.Fatal("parallel run diverged from sequential with timings on")
	}
}
