// Package entropy implements the information-theoretic substrate of
// Section 4: finite joint distributions with exact marginal-entropy
// queries, empirical (uniform) distributions of relations, and the
// Chan–Yeung group-characterizable database construction (Definition 4.2,
// Lemma 4.3) used to prove the asymptotic tightness of the entropic bound
// (Lemma 4.4). Entropies are float64 (they involve logarithms); everything
// combinatorial (group sizes, degrees) is exact.
package entropy

import (
	"fmt"
	"math"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/relation"
)

// Distribution is a finite joint distribution over n integer variables.
type Distribution struct {
	N     int
	Rows  [][]int64 // support tuples
	Probs []float64 // probabilities, summing to ~1
}

// Uniform builds the uniform distribution over the given tuples.
func Uniform(n int, rows [][]int64) *Distribution {
	d := &Distribution{N: n, Rows: rows, Probs: make([]float64, len(rows))}
	for i := range rows {
		d.Probs[i] = 1 / float64(len(rows))
	}
	return d
}

// FromRelation builds the uniform distribution over a relation's tuples,
// with variable i of the distribution = attribute cols[i].
func FromRelation(r *relation.Relation) *Distribution {
	rows := make([][]int64, 0, r.Size())
	for t := range r.All() {
		rows = append(rows, append([]int64(nil), t...))
	}
	return Uniform(len(r.Cols()), rows)
}

// Marginal returns the marginal entropy H(A_S) in bits. Variables are
// positions 0..N−1.
func (d *Distribution) Marginal(s bitset.Set) float64 {
	if s == 0 {
		return 0
	}
	vars := s.Vars()
	acc := map[string]float64{}
	key := make([]byte, 8*len(vars))
	for i, row := range d.Rows {
		for k, v := range vars {
			val := row[v]
			for b := 0; b < 8; b++ {
				key[8*k+b] = byte(val >> (8 * b))
			}
		}
		acc[string(key)] += d.Probs[i]
	}
	h := 0.0
	for _, p := range acc {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Vector returns the full entropy vector indexed by subset mask — an
// entropic function (a point of Γ*_n, up to float error).
func (d *Distribution) Vector() []float64 {
	full := bitset.Full(d.N)
	out := make([]float64, int(full)+1)
	for s := bitset.Set(1); s <= full; s++ {
		out[s] = d.Marginal(s)
	}
	return out
}

// IsApproxPolymatroid checks the elemental Shannon inequalities on a float
// entropy vector within tolerance — every entropic vector must pass
// (Proposition 2.3).
func IsApproxPolymatroid(v []float64, n int, tol float64) bool {
	full := bitset.Full(n)
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			if v[s.Add(i)] < v[s]-tol {
				return false
			}
			for j := i + 1; j < n; j++ {
				if s.Contains(j) {
					continue
				}
				if v[s.Add(i)]+v[s.Add(j)] < v[s.Add(i).Add(j)]+v[s]-tol {
					return false
				}
			}
		}
	}
	return true
}

// GroupSystem is the Chan–Yeung construction: the symmetric group S_m
// acting on the m columns of a matrix whose rows are the variables;
// G_i is the stabilizer of row i.
type GroupSystem struct {
	N    int
	M    int       // number of columns
	Rows [][]int64 // n rows × m columns
}

// NewGroupSystem validates and wraps a matrix.
func NewGroupSystem(rows [][]int64) (*GroupSystem, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("entropy: empty matrix")
	}
	m := len(rows[0])
	for _, r := range rows {
		if len(r) != m {
			return nil, fmt.Errorf("entropy: ragged matrix")
		}
	}
	return &GroupSystem{N: len(rows), M: m, Rows: rows}, nil
}

// StabilizerOrder returns |G_F| = Π_{joint values} (multiplicity)!, the
// order of the subgroup fixing all rows in F (permutations may only
// permute identical columns of the F-submatrix). F = ∅ gives |G| = m!.
func (g *GroupSystem) StabilizerOrder(f bitset.Set) *big.Int {
	counts := map[string]int{}
	key := make([]byte, 0, 8*f.Card())
	for c := 0; c < g.M; c++ {
		key = key[:0]
		for _, r := range f.Vars() {
			v := g.Rows[r][c]
			for b := 0; b < 8; b++ {
				key = append(key, byte(v>>(8*b)))
			}
		}
		counts[string(key)]++
	}
	out := big.NewInt(1)
	for _, c := range counts {
		out.Mul(out, factorial(c))
	}
	return out
}

func factorial(k int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= k; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

// DegreeFormula returns |G_Z| / |G_Y| — by Lemma 4.3 the exact degree
// deg_{R_Y}(Y | a_Z) for every tuple a_Z, for Z ⊂ Y.
func (g *GroupSystem) DegreeFormula(y, z bitset.Set) (*big.Int, error) {
	gz := g.StabilizerOrder(z)
	gy := g.StabilizerOrder(y)
	q, r := new(big.Int).QuoRem(gz, gy, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("entropy: |G_Z| not divisible by |G_Y| (G_Y ⊄ G_Z?)")
	}
	return q, nil
}

// Instance materializes the relations R_F for the requested attribute sets
// by enumerating all m! permutations (Definition 4.2): the coset g·G_i is
// identified with the permuted row vector j ↦ rows[i][g⁻¹(j)], hashed to an
// integer value. Feasible for m ≤ 8.
func (g *GroupSystem) Instance(schemas []bitset.Set) ([]*relation.Relation, error) {
	if g.M > 8 {
		return nil, fmt.Errorf("entropy: %d! permutations is too many (m ≤ 8)", g.M)
	}
	rels := make([]*relation.Relation, len(schemas))
	for i, f := range schemas {
		rels[i] = relation.New(fmt.Sprintf("R%v", f), f)
	}
	// Coset ids: hash permuted row → dense id per variable.
	ids := make([]map[string]int64, g.N)
	for i := range ids {
		ids[i] = map[string]int64{}
	}
	cosetID := func(v int, perm []int) int64 {
		key := make([]byte, 8*g.M)
		for j := 0; j < g.M; j++ {
			// σ ∈ g·G_v ⟺ they induce the same relabeled row
			// j ↦ rows[v][g⁻¹(j)].
			val := g.Rows[v][perm[j]]
			for b := 0; b < 8; b++ {
				key[8*j+b] = byte(val >> (8 * b))
			}
		}
		m := ids[v]
		id, ok := m[string(key)]
		if !ok {
			id = int64(len(m))
			m[string(key)] = id
		}
		return id
	}
	perm := make([]int, g.M)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == g.M {
			for ri, f := range schemas {
				t := make([]relation.Value, 0, f.Card())
				for _, v := range f.Vars() {
					t = append(t, cosetID(v, perm))
				}
				rels[ri].Insert(t)
			}
			return
		}
		for i := k; i < g.M; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return rels, nil
}
