package entropy

import (
	"math"
	"math/big"
	"testing"

	"panda/internal/bitset"
	"panda/internal/relation"
)

func TestUniformEntropy(t *testing.T) {
	// Two iid fair bits: H(A)=H(B)=1, H(AB)=2.
	d := Uniform(2, [][]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	if h := d.Marginal(bitset.Of(0)); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(A) = %v, want 1", h)
	}
	if h := d.Marginal(bitset.Of(0, 1)); math.Abs(h-2) > 1e-12 {
		t.Fatalf("H(AB) = %v, want 2", h)
	}
	if h := d.Marginal(0); h != 0 {
		t.Fatalf("H(∅) = %v", h)
	}
}

func TestPerfectlyCorrelated(t *testing.T) {
	// A = B uniform: H(A) = H(B) = H(AB) = 1.
	d := Uniform(2, [][]int64{{0, 0}, {1, 1}})
	for _, s := range []bitset.Set{bitset.Of(0), bitset.Of(1), bitset.Of(0, 1)} {
		if h := d.Marginal(s); math.Abs(h-1) > 1e-12 {
			t.Fatalf("H(%v) = %v, want 1", s, h)
		}
	}
}

func TestVectorIsPolymatroid(t *testing.T) {
	// An arbitrary correlated distribution must produce a (float)
	// polymatroid — Proposition 2.3's Γ*n ⊆ Γn, checked numerically.
	d := Uniform(3, [][]int64{{0, 0, 1}, {0, 1, 1}, {1, 0, 0}, {1, 1, 1}, {2, 0, 0}})
	v := d.Vector()
	if !IsApproxPolymatroid(v, 3, 1e-9) {
		t.Fatal("entropy vector violates Shannon inequalities")
	}
}

func TestFromRelation(t *testing.T) {
	r := relation.New("R", bitset.Of(0, 2))
	r.Insert([]relation.Value{1, 5})
	r.Insert([]relation.Value{2, 5})
	d := FromRelation(r)
	if d.N != 2 || len(d.Rows) != 2 {
		t.Fatalf("distribution %+v", d)
	}
	// Second column is constant: H = 0.
	if h := d.Marginal(bitset.Of(1)); math.Abs(h) > 1e-12 {
		t.Fatalf("H(const) = %v", h)
	}
}

func TestStabilizerOrders(t *testing.T) {
	// Matrix with 4 columns; row 0 = (0,0,1,1): |G_0| = 2!·2! = 4.
	g, err := NewGroupSystem([][]int64{{0, 0, 1, 1}, {0, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.StabilizerOrder(bitset.Of(0)); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("|G_0| = %v, want 4", got)
	}
	// Both rows together: all 4 columns distinct → trivial stabilizer.
	if got := g.StabilizerOrder(bitset.Of(0, 1)); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("|G_01| = %v, want 1", got)
	}
	// |G| = |G_∅| = 4! = 24.
	if got := g.StabilizerOrder(0); got.Cmp(big.NewInt(24)) != 0 {
		t.Fatalf("|G| = %v, want 24", got)
	}
}

// TestLemma43DegreeFormula materializes the instance and checks that the
// measured degrees equal |G_Z|/|G_Y| exactly, and that relation sizes equal
// |G|/|G_F|.
func TestLemma43DegreeFormula(t *testing.T) {
	g, err := NewGroupSystem([][]int64{{0, 0, 1, 1}, {0, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	schemas := []bitset.Set{bitset.Of(0), bitset.Of(1), bitset.Of(0, 1)}
	rels, err := g.Instance(schemas)
	if err != nil {
		t.Fatal(err)
	}
	// |R_F| = |G| / |G_F|.
	gAll := g.StabilizerOrder(0)
	for i, f := range schemas {
		want := new(big.Int).Quo(gAll, g.StabilizerOrder(f))
		if big.NewInt(int64(rels[i].Size())).Cmp(want) != 0 {
			t.Fatalf("|R_%v| = %d, want %v", f, rels[i].Size(), want)
		}
	}
	// deg_{R_{01}}(01 | 0) = |G_0| / |G_01| = 4.
	want, err := g.DegreeFormula(bitset.Of(0, 1), bitset.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	got := rels[2].Degree(bitset.Of(0, 1), bitset.Of(0))
	if big.NewInt(int64(got)).Cmp(want) != 0 {
		t.Fatalf("measured degree %d ≠ formula %v", got, want)
	}
}

// TestGroupEntropyMatchesUniformMatrix: the Chan–Yeung construction starts
// from a distribution written as a matrix with r·p(a) column copies; the
// joint relation R_[n] must have size |G|/|G_[n]| = multinomial(r; counts),
// consistent with the entropy scaling of Lemma 4.4.
func TestGroupMultinomialSize(t *testing.T) {
	// Distribution on 2 bits uniform over {00, 01, 10, 11}, r = 4 → one
	// column per outcome; |R_{01}| = 4!/1 = 24.
	g, err := NewGroupSystem([][]int64{{0, 0, 1, 1}, {0, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rels, err := g.Instance([]bitset.Set{bitset.Of(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if rels[0].Size() != 24 {
		t.Fatalf("|R_01| = %d, want 24", rels[0].Size())
	}
}

func TestGroupSystemErrors(t *testing.T) {
	if _, err := NewGroupSystem(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := NewGroupSystem([][]int64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	g, _ := NewGroupSystem([][]int64{{0, 1, 2, 3, 4, 5, 6, 7, 8}})
	if _, err := g.Instance([]bitset.Set{bitset.Of(0)}); err == nil {
		t.Fatal("9! permutations accepted")
	}
}

// TestGroupFDCondition (Lemma 4.3, last part): with row 1 a function of
// row 0, the FD {0} → {1} holds in the materialized instance.
func TestGroupFDCondition(t *testing.T) {
	// Row 1 = row 0 mod 2 → functionally determined.
	g, err := NewGroupSystem([][]int64{{0, 1, 2, 3}, {0, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rels, err := g.Instance([]bitset.Set{bitset.Of(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if d := rels[0].Degree(bitset.Of(0, 1), bitset.Of(0)); d != 1 {
		t.Fatalf("FD violated: degree %d", d)
	}
	// Formula agrees: |G_0|/|G_01| = 1.
	want, err := g.DegreeFormula(bitset.Of(0, 1), bitset.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	if want.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("formula says %v", want)
	}
}
