// Package faq implements the Section 8 extension: FAQ-SS / SumProd queries
// over a single commutative semiring [2, 5],
//
//	Q(A_F) = ⊕_{a_{[n]∖F}} ⊗_{S∈E} ψ_S(A_S),
//
// evaluated by variable elimination along a tree decomposition whose
// non-free variables are eliminated first (a free-connex ordering). With
// the Boolean semiring this is Boolean conjunctive query evaluation; with
// the counting semiring it counts answers; with the tropical semiring it
// solves min-plus problems — all through the same algorithm, which is how
// the paper argues PANDA's width guarantees carry over to aggregates.
package faq

import (
	"fmt"

	"panda/internal/bitset"
	"panda/internal/relation"
)

// Semiring is a commutative semiring (⊕, ⊗, 0̄, 1̄) over values of type V.
type Semiring[V any] struct {
	Zero V // additive identity (annihilates nothing; absent tuples)
	One  V // multiplicative identity
	Add  func(a, b V) V
	Mul  func(a, b V) V
}

// Counting is the (ℕ, +, ×) semiring.
func Counting() Semiring[int64] {
	return Semiring[int64]{
		Zero: 0, One: 1,
		Add: func(a, b int64) int64 { return a + b },
		Mul: func(a, b int64) int64 { return a * b },
	}
}

// Boolean is the ({0,1}, ∨, ∧) semiring.
func Boolean() Semiring[bool] {
	return Semiring[bool]{
		Zero: false, One: true,
		Add: func(a, b bool) bool { return a || b },
		Mul: func(a, b bool) bool { return a && b },
	}
}

// Tropical is the (ℝ∪{∞}, min, +) semiring, encoded with a large sentinel.
func Tropical() Semiring[float64] {
	const inf = 1e300
	return Semiring[float64]{
		Zero: inf, One: 0,
		Add: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		Mul: func(a, b float64) float64 { return a + b },
	}
}

// Factor is a weighted relation ψ_S: tuples over Vars with semiring
// weights; absent tuples carry weight 0̄.
type Factor[V any] struct {
	Vars    bitset.Set
	cols    []int
	weights map[string]V
	rows    [][]relation.Value
}

// NewFactor creates an empty factor over the given variables.
func NewFactor[V any](vars bitset.Set) *Factor[V] {
	return &Factor[V]{Vars: vars, cols: vars.Vars(), weights: map[string]V{}}
}

// FromRelation lifts a relation to a factor with weight 1̄ per tuple.
func FromRelation[V any](sr Semiring[V], r *relation.Relation) *Factor[V] {
	f := NewFactor[V](r.Attrs())
	for t := range r.All() {
		f.Set(t, sr.One)
	}
	return f
}

func key(t []relation.Value) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		for k := 0; k < 8; k++ {
			b[8*i+k] = byte(v >> (8 * k))
		}
	}
	return string(b)
}

// Set assigns a weight to a tuple (in sorted-variable column order).
func (f *Factor[V]) Set(t []relation.Value, w V) {
	if len(t) != len(f.cols) {
		panic(fmt.Sprintf("faq: tuple arity %d, want %d", len(t), len(f.cols)))
	}
	k := key(t)
	if _, ok := f.weights[k]; !ok {
		f.rows = append(f.rows, append([]relation.Value(nil), t...))
	}
	f.weights[k] = w
}

// Weight returns the tuple's weight and whether it is present.
func (f *Factor[V]) Weight(t []relation.Value) (V, bool) {
	w, ok := f.weights[key(t)]
	return w, ok
}

// Size returns the number of explicit tuples.
func (f *Factor[V]) Size() int { return len(f.rows) }

// Multiply computes the factor product ψ ⊗ φ over the union schema
// (a weighted natural join).
func Multiply[V any](sr Semiring[V], a, b *Factor[V]) *Factor[V] {
	common := a.Vars.Intersect(b.Vars)
	out := NewFactor[V](a.Vars.Union(b.Vars))
	// Index b by common attrs.
	bPos := positions(b.cols, common)
	idx := map[string][]int{}
	for i, t := range b.rows {
		k := key(sub(t, bPos))
		idx[k] = append(idx[k], i)
	}
	aPos := positions(a.cols, common)
	outFromA := mapping(out.cols, a.cols)
	outFromB := mapping(out.cols, b.cols)
	buf := make([]relation.Value, len(out.cols))
	for _, ta := range a.rows {
		wa := a.weights[key(ta)]
		for _, bi := range idx[key(sub(ta, aPos))] {
			tb := b.rows[bi]
			for i := range buf {
				if outFromA[i] >= 0 {
					buf[i] = ta[outFromA[i]]
				} else {
					buf[i] = tb[outFromB[i]]
				}
			}
			w := sr.Mul(wa, b.weights[key(tb)])
			if old, ok := out.Weight(buf); ok {
				w = sr.Add(old, w) // duplicate joins cannot occur, but stay safe
			}
			out.Set(buf, w)
		}
	}
	return out
}

// Marginalize computes ⊕ over the variables in elim, keeping Vars∖elim.
func Marginalize[V any](sr Semiring[V], f *Factor[V], elim bitset.Set) *Factor[V] {
	keep := f.Vars.Minus(elim)
	out := NewFactor[V](keep)
	pos := positions(f.cols, keep)
	for _, t := range f.rows {
		s := sub(t, pos)
		w := f.weights[key(t)]
		if old, ok := out.Weight(s); ok {
			w = sr.Add(old, w)
		}
		out.Set(s, w)
	}
	return out
}

func positions(cols []int, x bitset.Set) []int {
	var out []int
	for i, c := range cols {
		if x.Contains(c) {
			out = append(out, i)
		}
	}
	return out
}

func sub(t []relation.Value, pos []int) []relation.Value {
	s := make([]relation.Value, len(pos))
	for i, p := range pos {
		s[i] = t[p]
	}
	return s
}

func mapping(outCols, inCols []int) []int {
	m := make([]int, len(outCols))
	for i, c := range outCols {
		m[i] = -1
		for j, d := range inCols {
			if d == c {
				m[i] = j
			}
		}
	}
	return m
}

// Query is a SumProd query: factors over [n], with Free variables kept.
type Query[V any] struct {
	N       int
	Free    bitset.Set
	Factors []*Factor[V]
}

// Eval answers the query by variable elimination: non-free variables are
// eliminated one at a time (min-degree-style greedy order), multiplying the
// factors containing the variable and marginalizing it out; finally the
// remaining factors are multiplied. The result is a factor over Free.
// For Free = ∅ the result holds the scalar answer at the empty tuple.
func Eval[V any](sr Semiring[V], q *Query[V]) (*Factor[V], error) {
	factors := append([]*Factor[V](nil), q.Factors...)
	if len(factors) == 0 {
		return nil, fmt.Errorf("faq: no factors")
	}
	var covered bitset.Set
	for _, f := range factors {
		covered = covered.Union(f.Vars)
	}
	if !q.Free.SubsetOf(covered) {
		return nil, fmt.Errorf("faq: free variables %v not covered", q.Free.Minus(covered))
	}
	elim := covered.Minus(q.Free)
	for elim != 0 {
		// Greedy: eliminate the variable whose combined factor has the
		// fewest participating factors (a standard min-width heuristic;
		// the paper's free-connex tree decompositions correspond to
		// particular orderings).
		bestV, bestCount := -1, 1<<30
		for _, v := range elim.Vars() {
			c := 0
			for _, f := range factors {
				if f.Vars.Contains(v) {
					c++
				}
			}
			if c < bestCount {
				bestV, bestCount = v, c
			}
		}
		v := bestV
		var acc *Factor[V]
		var rest []*Factor[V]
		for _, f := range factors {
			if !f.Vars.Contains(v) {
				rest = append(rest, f)
				continue
			}
			if acc == nil {
				acc = f
			} else {
				acc = Multiply(sr, acc, f)
			}
		}
		if acc == nil {
			return nil, fmt.Errorf("faq: variable %d in no factor", v)
		}
		rest = append(rest, Marginalize(sr, acc, bitset.Singleton(v)))
		factors = rest
		elim = elim.Remove(v)
	}
	acc := factors[0]
	for _, f := range factors[1:] {
		acc = Multiply(sr, acc, f)
	}
	// Project away any stray variables (factors may cover more than Free
	// if a free variable shares a factor with eliminated ones).
	if acc.Vars != q.Free {
		acc = Marginalize(sr, acc, acc.Vars.Minus(q.Free))
	}
	return acc, nil
}

// Count answers the counting FAQ for a conjunctive query instance: the
// number of output tuples of the full join projected to Free… with
// multiplicity semantics of the counting semiring (i.e. the number of
// valuations of all variables extending each free tuple).
func Count(n int, free bitset.Set, rels []*relation.Relation) (*Factor[int64], error) {
	sr := Counting()
	q := &Query[int64]{N: n, Free: free}
	for _, r := range rels {
		q.Factors = append(q.Factors, FromRelation(sr, r))
	}
	return Eval(sr, q)
}
