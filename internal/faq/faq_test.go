package faq

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/workload"
)

func TestCountingTriangles(t *testing.T) {
	// Count triangles in a small graph via the counting semiring.
	q := workload.TriangleQuery()
	ins := query.NewInstance(&q.Schema)
	edges := [][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {0, 3}, {1, 3}} // K4
	for _, e := range edges {
		ins.Relations[0].Insert([]relation.Value{e[0], e[1]})
		ins.Relations[1].Insert([]relation.Value{e[0], e[1]})
		ins.Relations[2].Insert([]relation.Value{e[0], e[1]})
	}
	out, err := Count(3, 0, ins.Relations)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.Weight([]relation.Value{})
	if !ok {
		t.Fatal("no scalar result")
	}
	// Ordered triangles of K4 with edges as ordered pairs (i<j):
	// R(a,b), S(b,c), T(a,c) with all pairs increasing — count = C(4,3) = 4.
	if got != 4 {
		t.Fatalf("triangle count = %d, want 4", got)
	}
}

func TestCountMatchesJoinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	q := workload.TriangleQuery()
	for trial := 0; trial < 15; trial++ {
		ins := query.NewInstance(&q.Schema)
		for i := range ins.Relations {
			for k := 0; k < 25; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5))})
			}
		}
		out, err := Count(3, 0, ins.Relations)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out.Weight([]relation.Value{})
		want := int64(ins.FullJoin().Size())
		if got != want {
			t.Fatalf("trial %d: count %d ≠ join size %d", trial, got, want)
		}
	}
}

func TestFreeVariables(t *testing.T) {
	// Q(A) = #{(B): R(A,B) ∧ S(B)} — counting with one free variable.
	sr := Counting()
	r := NewFactor[int64](bitset.Of(0, 1))
	r.Set([]relation.Value{1, 10}, 1)
	r.Set([]relation.Value{1, 20}, 1)
	r.Set([]relation.Value{2, 10}, 1)
	s := NewFactor[int64](bitset.Of(1))
	s.Set([]relation.Value{10}, 1)
	s.Set([]relation.Value{20}, 1)
	out, err := Eval(sr, &Query[int64]{N: 2, Free: bitset.Of(0), Factors: []*Factor[int64]{r, s}})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := out.Weight([]relation.Value{1}); w != 2 {
		t.Fatalf("Q(1) = %d, want 2", w)
	}
	if w, _ := out.Weight([]relation.Value{2}); w != 1 {
		t.Fatalf("Q(2) = %d, want 1", w)
	}
}

func TestBooleanSemiring(t *testing.T) {
	sr := Boolean()
	r := FromRelation(sr, relTuples(bitset.Of(0, 1), [][2]int64{{1, 2}}))
	s := FromRelation(sr, relTuples(bitset.Of(1, 2), [][2]int64{{2, 3}}))
	out, err := Eval(sr, &Query[bool]{N: 3, Free: 0, Factors: []*Factor[bool]{r, s}})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := out.Weight([]relation.Value{}); !ok || !w {
		t.Fatalf("Boolean FAQ = %v, %v; want true", w, ok)
	}
	// Disconnect: no result tuple survives at weight 1̄, so the scalar is
	// absent (0̄).
	s2 := FromRelation(sr, relTuples(bitset.Of(1, 2), [][2]int64{{9, 9}}))
	out, err = Eval(sr, &Query[bool]{N: 3, Free: 0, Factors: []*Factor[bool]{r, s2}})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := out.Weight([]relation.Value{}); ok && w {
		t.Fatal("Boolean FAQ should be false")
	}
}

func TestTropicalShortestPath(t *testing.T) {
	// Min-plus: shortest 2-hop path weight from node 1 to node 3 through
	// factors W1(A,B), W2(B,C) — an FAQ-SS over the tropical semiring.
	sr := Tropical()
	w1 := NewFactor[float64](bitset.Of(0, 1))
	w1.Set([]relation.Value{1, 2}, 5)
	w1.Set([]relation.Value{1, 4}, 2)
	w2 := NewFactor[float64](bitset.Of(1, 2))
	w2.Set([]relation.Value{2, 3}, 1)
	w2.Set([]relation.Value{4, 3}, 7)
	out, err := Eval(sr, &Query[float64]{N: 3, Free: bitset.Of(0, 2), Factors: []*Factor[float64]{w1, w2}})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := out.Weight([]relation.Value{1, 3})
	if !ok {
		t.Fatal("no path found")
	}
	if w != 6 { // min(5+1, 2+7) = 6
		t.Fatalf("shortest 2-hop weight = %v, want 6", w)
	}
}

func TestFourCycleCount(t *testing.T) {
	// Counting 4-cycles on the adversarial instance: m² cycles.
	q := workload.FourCycleQuery()
	ins := workload.CycleWorstCase(q, 9)
	out, err := Count(4, 0, ins.Relations)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := out.Weight([]relation.Value{})
	if got != 81 {
		t.Fatalf("4-cycle count = %d, want 81", got)
	}
}

func TestEvalErrors(t *testing.T) {
	sr := Counting()
	if _, err := Eval(sr, &Query[int64]{N: 1, Free: 0}); err == nil {
		t.Fatal("no factors accepted")
	}
	f := NewFactor[int64](bitset.Of(0))
	f.Set([]relation.Value{1}, 1)
	if _, err := Eval(sr, &Query[int64]{N: 2, Free: bitset.Of(1), Factors: []*Factor[int64]{f}}); err == nil {
		t.Fatal("uncovered free variable accepted")
	}
}

func relTuples(attrs bitset.Set, rows [][2]int64) *relation.Relation {
	r := relation.New("R", attrs)
	for _, row := range rows {
		r.Insert([]relation.Value{row[0], row[1]})
	}
	return r
}
