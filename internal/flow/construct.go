package flow

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
)

// ConstructProof builds a proof sequence for the Shannon flow inequality
// 〈λ,h〉 ≤ 〈δ,h〉 given a witness (σ,µ), following the constructive proof of
// Theorem 5.9. The unit-weight induction of the paper is run in batched
// form: each iteration moves t = min(available masses) instead of 1/D,
// a run-length compression that preserves every invariant and keeps
// sequences short. The inputs are not modified.
func ConstructProof(lambda, delta Vec, w *Witness) (ProofSequence, error) {
	if err := CheckWitness(lambda, delta, w); err != nil {
		return nil, fmt.Errorf("flow: construct: %w", err)
	}
	lam := lambda.Clone()
	del := delta.Clone()
	wit := w.Clone()
	var seq ProofSequence

	emit := func(s Step) error {
		if err := s.Apply(del); err != nil {
			return err
		}
		seq = append(seq, s)
		return nil
	}

	const maxIter = 200000
	for iter := 0; ; iter++ {
		if lam.L1().Sign() == 0 {
			return seq, nil
		}
		if iter > maxIter {
			return nil, fmt.Errorf("flow: proof construction exceeded %d iterations", maxIter)
		}
		// Pick Z with δ_{Z|∅} > 0, preferring one that pays off a target
		// (case a) for shorter sequences.
		var zSel bitset.Set
		found, caseA := false, false
		for _, p := range del.Pairs() {
			if p.X != 0 || del.Get(p).Sign() <= 0 {
				continue
			}
			if lam.Get(Marginal(p.Y)).Sign() > 0 {
				zSel, found, caseA = p.Y, true, true
				break
			}
			if !found {
				zSel, found = p.Y, true
			}
		}
		if !found {
			return nil, fmt.Errorf("flow: no marginal δ term available but ‖λ‖ = %v > 0", lam.L1())
		}
		z := zSel
		zm := Marginal(z)

		if caseA { // Case (a): deliver mass to target Z.
			t := minRat(lam.Get(zm), del.Get(zm))
			lam.Sub(zm, t)
			del.Sub(zm, t)
			continue
		}
		in := Inflows(del, wit)
		inZ, ok := in[z]
		if !ok {
			inZ = new(big.Rat)
		}
		if inZ.Sign() > 0 { // Case (b): burn surplus.
			t := minRat(inZ, del.Get(zm))
			del.Sub(zm, t)
			continue
		}
		// Case (c): inflow(Z) = 0 with δ_{Z|∅} > 0 — find a negative
		// contributor to inflow(Z) and emit the corresponding step(s).
		// (c1) µ_{X,Z} > 0 for some X ⊂ Z.
		handled := false
		for _, p := range pairKeysSorted(wit.Mu) {
			if p.Y != z || wit.Mu[p].Sign() <= 0 {
				continue
			}
			t := minRat(del.Get(zm), wit.Mu[p])
			if err := emit(Step{Kind: Monotonicity, W: t, A: p.X, B: z}); err != nil {
				return nil, err
			}
			wit.Mu[p].Sub(wit.Mu[p], t)
			handled = true
			break
		}
		if handled {
			continue
		}
		// (c2) δ_{Y|Z} > 0 for some Y ⊃ Z.
		for _, p := range del.Pairs() {
			if p.X != z || del.Get(p).Sign() <= 0 {
				continue
			}
			t := minRat(del.Get(zm), del.Get(p))
			if err := emit(Step{Kind: Composition, W: t, A: z, B: p.Y}); err != nil {
				return nil, err
			}
			handled = true
			break
		}
		if handled {
			continue
		}
		// (c3) σ_{Z,J} > 0 for some J ⊥ Z.
		for _, sp := range sigKeysSorted(wit.Sigma) {
			v := wit.Sigma[sp]
			if v.Sign() <= 0 {
				continue
			}
			var j bitset.Set
			switch z {
			case sp.I:
				j = sp.J
			case sp.J:
				j = sp.I
			default:
				continue
			}
			t := minRat(del.Get(zm), v)
			if x := z.Intersect(j); x != 0 {
				if err := emit(Step{Kind: Decomposition, W: t, A: x, B: z}); err != nil {
					return nil, err
				}
			}
			if err := emit(Step{Kind: Submodularity, W: t, A: z, B: j}); err != nil {
				return nil, err
			}
			v.Sub(v, t)
			handled = true
			break
		}
		if !handled {
			return nil, fmt.Errorf("flow: stuck at Z=%v: inflow 0, no negative contributor (witness inconsistent)", z)
		}
	}
}

func minRat(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

func pairKeysSorted(m map[Pair]*big.Rat) []Pair {
	v := Vec(m)
	return v.Pairs()
}

func sigKeysSorted(m map[SigPair]*big.Rat) []SigPair {
	out := make([]SigPair, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic order by (I, J).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.I > b.I || (a.I == b.I && a.J > b.J) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
