package flow

import (
	"math/big"
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/setfunc"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

// exampleC4DCs builds the cardinality constraints of Example 1.4: three
// binary relations of size ≤ N, normalized to log N = 1.
// Variables A1..A4 = 0..3.
func exampleC4DCs() []DC {
	one := rat(1, 1)
	return []DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one}, // R12
		{X: 0, Y: bitset.Of(1, 2), LogN: one}, // R23
		{X: 0, Y: bitset.Of(2, 3), LogN: one}, // R34
	}
}

func TestVecBasics(t *testing.T) {
	v := NewVec()
	p := Marginal(bitset.Of(0, 1))
	v.Add(p, rat(1, 2))
	v.Add(p, rat(1, 2))
	if v.Get(p).Cmp(rat(1, 1)) != 0 {
		t.Fatalf("Get = %v", v.Get(p))
	}
	v.Sub(p, rat(1, 1))
	if len(v) != 0 {
		t.Fatal("zero coordinates must be deleted")
	}
	v.Add(p, rat(2, 3))
	v.Add(Pair{X: bitset.Of(0), Y: bitset.Of(0, 1)}, rat(1, 3))
	if v.L1().Cmp(rat(1, 1)) != 0 {
		t.Fatalf("L1 = %v", v.L1())
	}
	c := v.Clone()
	c.Sub(p, rat(2, 3))
	if v.Get(p).Sign() == 0 {
		t.Fatal("Clone not deep")
	}
}

func TestCommonDenominator(t *testing.T) {
	v := NewVec()
	v.Add(Marginal(bitset.Of(0)), rat(1, 6))
	w := NewVec()
	w.Add(Marginal(bitset.Of(1)), rat(3, 4))
	d := CommonDenominator(v, w)
	if d.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("D = %v, want 12", d)
	}
}

// TestExample16Witness verifies the witness/inflow machinery on the paper's
// Example 1.6 inequality:
// h(A1A2A3) + h(A2A3A4) ≤ h(A1A2) + h(A2A3) + h(A3A4).
func exampleIneq() (Vec, Vec) {
	lam := NewVec()
	lam.Add(Marginal(bitset.Of(0, 1, 2)), rat(1, 1))
	lam.Add(Marginal(bitset.Of(1, 2, 3)), rat(1, 1))
	del := NewVec()
	del.Add(Marginal(bitset.Of(0, 1)), rat(1, 1))
	del.Add(Marginal(bitset.Of(1, 2)), rat(1, 1))
	del.Add(Marginal(bitset.Of(2, 3)), rat(1, 1))
	return lam, del
}

func TestFindWitnessExample16(t *testing.T) {
	lam, del := exampleIneq()
	w, err := FindWitness(4, lam, del)
	if err != nil {
		t.Fatalf("FindWitness: %v", err)
	}
	if err := CheckWitness(lam, del, w); err != nil {
		t.Fatalf("CheckWitness: %v", err)
	}
}

func TestFindWitnessRejectsInvalid(t *testing.T) {
	// h(A1A2A3) ≤ h(A1A2) is NOT a Shannon flow inequality.
	lam := NewVec()
	lam.Add(Marginal(bitset.Of(0, 1, 2)), rat(1, 1))
	del := NewVec()
	del.Add(Marginal(bitset.Of(0, 1)), rat(1, 1))
	if _, err := FindWitness(3, lam, del); err == nil {
		t.Fatal("witness found for an invalid inequality")
	}
}

// TestExample18ProofSequence reproduces Figure 1: a proof sequence for
// Example 1.6's inequality exists, validates, and holds on sampled
// polymatroids.
func TestExample18ProofSequence(t *testing.T) {
	lam, del := exampleIneq()
	w, err := FindWitness(4, lam, del)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ConstructProof(lam, del, w)
	if err != nil {
		t.Fatalf("ConstructProof: %v", err)
	}
	if len(seq) == 0 {
		t.Fatal("empty proof sequence for a non-trivial inequality")
	}
	if _, err := ValidateProof(lam, del, seq); err != nil {
		t.Fatalf("ValidateProof: %v", err)
	}
	// The paper's hand-built sequence (Example 1.8) has 5 steps; ours may
	// differ but must stay short.
	if len(seq) > 12 {
		t.Errorf("proof sequence unexpectedly long: %d steps: %v", len(seq), seq)
	}
	// Every step must not increase 〈δ,h〉 on polymatroids, and the
	// inequality must hold on random polymatroids.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		h := setfunc.RandomCoverage(rng, 4, 6)
		if !HoldsOn(lam, del, h) {
			t.Fatalf("inequality fails on a polymatroid")
		}
		for _, s := range seq {
			if s.EvalDrop(h).Sign() < 0 {
				t.Fatalf("step %v increases 〈δ,h〉 on a polymatroid", s)
			}
		}
	}
}

func TestStepApplyRejectsOverdraw(t *testing.T) {
	del := NewVec()
	del.Add(Marginal(bitset.Of(0)), rat(1, 2))
	s := Step{Kind: Monotonicity, W: rat(1, 1), A: 0, B: bitset.Of(0)}
	// A = ∅ ⊂ B: consumes h(B), produces nothing.
	if err := s.Apply(del); err == nil {
		t.Fatal("overdraw not rejected")
	}
}

func TestStepValidate(t *testing.T) {
	if err := (Step{Kind: Submodularity, W: rat(1, 1), A: bitset.Of(0), B: bitset.Of(0, 1)}).Validate(); err == nil {
		t.Fatal("submodularity with comparable sets accepted")
	}
	if err := (Step{Kind: Composition, W: rat(1, 1), A: bitset.Of(0, 1), B: bitset.Of(0)}).Validate(); err == nil {
		t.Fatal("composition with X ⊃ Y accepted")
	}
	if err := (Step{Kind: Monotonicity, W: rat(-1, 1), A: 0, B: bitset.Of(0)}).Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestMaximinExample14 reproduces Examples 1.4/1.6: the polymatroid bound of
// the disjunctive rule T123 ∨ T234 ← R12, R23, R34 with |R| ≤ N is exactly
// (3/2)·log N.
func TestMaximinExample14(t *testing.T) {
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	res, err := MaximinBound(4, exampleC4DCs(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("bound = %v, want 3/2", res.Bound)
	}
	// λ sums to 1 over the two targets (by symmetry 1/2 each, but any
	// optimal split is allowed).
	if res.Lambda.L1().Cmp(rat(1, 1)) != 0 {
		t.Fatalf("‖λ‖₁ = %v, want 1", res.Lambda.L1())
	}
	// The witness must certify the inequality.
	if err := CheckWitness(res.Lambda, res.Delta, res.Witness); err != nil {
		t.Fatalf("witness: %v", err)
	}
	// h* must be a polymatroid achieving min_B h(B) = 3/2 within constraints.
	if !res.HStar.IsPolymatroid() {
		t.Fatal("h* is not a polymatroid")
	}
	for _, dc := range exampleC4DCs() {
		if res.HStar.Cond(dc.Y, dc.X).Cmp(dc.LogN) > 0 {
			t.Fatalf("h* violates constraint on %v", dc.Y)
		}
	}
	for _, b := range targets {
		if res.HStar.At(b).Cmp(res.Bound) < 0 {
			t.Fatalf("h*(%v) = %v < bound", b, res.HStar.At(b))
		}
	}
	// Potential identity (82): Σ δ·n = bound (pre-scaling ‖λ‖ was 1 here).
	sum := new(big.Rat)
	for k, dc := range exampleC4DCs() {
		sum.Add(sum, new(big.Rat).Mul(res.DeltaByCon[k], dc.LogN))
	}
	if sum.Cmp(res.Bound) != 0 {
		t.Fatalf("Σ δ·n = %v ≠ bound %v", sum, res.Bound)
	}
}

// TestMaximinFullConjunctive computes the AGM exponent of the 4-cycle: the
// single-target bound for [4] under all four edges ≤ N is 2·log N
// (Example 1.2(a)).
func TestMaximinFullConjunctive(t *testing.T) {
	one := rat(1, 1)
	dcs := []DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one},
		{X: 0, Y: bitset.Of(1, 2), LogN: one},
		{X: 0, Y: bitset.Of(2, 3), LogN: one},
		{X: 0, Y: bitset.Of(3, 0), LogN: one},
	}
	res, err := MaximinBound(4, dcs, []bitset.Set{bitset.Full(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("bound = %v, want 2", res.Bound)
	}
}

// TestMaximinWithFDs reproduces Example 1.2(c): with FDs A1→A2 and A2→A1 the
// 4-cycle output bound drops to (3/2)·log N.
func TestMaximinWithFDs(t *testing.T) {
	one := rat(1, 1)
	zero := new(big.Rat)
	dcs := []DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one},
		{X: 0, Y: bitset.Of(1, 2), LogN: one},
		{X: 0, Y: bitset.Of(2, 3), LogN: one},
		{X: 0, Y: bitset.Of(3, 0), LogN: one},
		{X: bitset.Of(0), Y: bitset.Of(0, 1), LogN: zero}, // A1 → A2
		{X: bitset.Of(1), Y: bitset.Of(0, 1), LogN: zero}, // A2 → A1
	}
	res, err := MaximinBound(4, dcs, []bitset.Set{bitset.Full(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("bound with FDs = %v, want 3/2", res.Bound)
	}
}

// TestMaximinDegreeConstraints reproduces Example 1.2(b): degree bounds
// deg(A1A2|A1) ≤ D and deg(A1A2|A2) ≤ D with D = N^{1/4} give bound
// |Q| ≤ D·N^{3/2} → exponent 7/4 in log N units.
func TestMaximinDegreeConstraints(t *testing.T) {
	one := rat(1, 1)
	quarter := rat(1, 4) // log D = (1/4)·log N
	dcs := []DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one},
		{X: 0, Y: bitset.Of(1, 2), LogN: one},
		{X: 0, Y: bitset.Of(2, 3), LogN: one},
		{X: 0, Y: bitset.Of(3, 0), LogN: one},
		{X: bitset.Of(0), Y: bitset.Of(0, 1), LogN: quarter},
		{X: bitset.Of(1), Y: bitset.Of(0, 1), LogN: quarter},
	}
	res, err := MaximinBound(4, dcs, []bitset.Set{bitset.Full(4)})
	if err != nil {
		t.Fatal(err)
	}
	want := rat(7, 4) // 3/2 + 1/4
	if res.Bound.Cmp(want) != 0 {
		t.Fatalf("bound = %v, want %v", res.Bound, want)
	}
}

func TestMaximinUnbounded(t *testing.T) {
	// No constraint on variable 1 → bound is infinite.
	dcs := []DC{{X: 0, Y: bitset.Of(0), LogN: rat(1, 1)}}
	if _, err := MaximinBound(2, dcs, []bitset.Set{bitset.Full(2)}); err == nil {
		t.Fatal("unbounded problem not detected")
	}
}

func TestMaximinEmptyTarget(t *testing.T) {
	res, err := MaximinBound(2, []DC{{X: 0, Y: bitset.Of(0, 1), LogN: rat(1, 1)}},
		[]bitset.Set{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Sign() != 0 {
		t.Fatalf("bound for ∅ target = %v, want 0", res.Bound)
	}
}

// TestProofFromMaximin runs the full pipeline (LP → witness → proof
// sequence) on Example 1.4 and validates against sampled polymatroids.
func TestProofFromMaximin(t *testing.T) {
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	res, err := MaximinBound(4, exampleC4DCs(), targets)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ConstructProof(res.Lambda, res.Delta, res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateProof(res.Lambda, res.Delta, seq); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		h := setfunc.RandomCoverage(rng, 4, 5)
		if !HoldsOn(res.Lambda, res.Delta, h) {
			t.Fatal("maximin inequality fails on polymatroid")
		}
	}
}

// TestProofSequenceRandom is the Theorem 5.9 property test: random valid
// Shannon flow inequalities (built from random maximin LPs) always admit a
// proof sequence that validates, and the proved inequality holds on random
// polymatroids.
func TestProofSequenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(2)
		full := bitset.Full(n)
		var dcs []DC
		// Random edges covering all vertices.
		for v := 0; v < n; v++ {
			e := bitset.Singleton(v)
			for u := 0; u < n; u++ {
				if u != v && rng.Intn(2) == 0 {
					e = e.Add(u)
				}
			}
			dcs = append(dcs, DC{X: 0, Y: e, LogN: rat(int64(1+rng.Intn(3)), 1)})
		}
		// Occasionally a proper degree constraint.
		if rng.Intn(2) == 0 {
			e := dcs[0].Y
			if e.Card() >= 2 {
				x := bitset.Singleton(e.Min())
				dcs = append(dcs, DC{X: x, Y: e, LogN: rat(1, 2)})
			}
		}
		// Random targets.
		var targets []bitset.Set
		for k := 0; k < 1+rng.Intn(2); k++ {
			var b bitset.Set
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					b = b.Add(v)
				}
			}
			if b == 0 {
				b = full
			}
			targets = append(targets, b)
		}
		res, err := MaximinBound(n, dcs, targets)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seq, err := ConstructProof(res.Lambda, res.Delta, res.Witness)
		if err != nil {
			t.Fatalf("trial %d: ConstructProof: %v", trial, err)
		}
		if _, err := ValidateProof(res.Lambda, res.Delta, seq); err != nil {
			t.Fatalf("trial %d: ValidateProof: %v", trial, err)
		}
		for k := 0; k < 5; k++ {
			h := setfunc.RandomCoverage(rng, n, 5)
			if !HoldsOn(res.Lambda, res.Delta, h) {
				t.Fatalf("trial %d: inequality fails on polymatroid", trial)
			}
		}
	}
}

// TestTruncate checks Lemma 5.11's postconditions on Example 1.4's
// inequality.
func TestTruncate(t *testing.T) {
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	res, err := MaximinBound(4, exampleC4DCs(), targets)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at one of the δ marginals.
	var y bitset.Set
	var avail *big.Rat
	for _, p := range res.Delta.Pairs() {
		if p.X == 0 {
			y, avail = p.Y, res.Delta.Get(p)
			break
		}
	}
	if y == 0 {
		t.Fatal("no marginal δ to truncate")
	}
	amount := new(big.Rat).Set(avail)
	tr, err := Truncate(res.Lambda, res.Delta, res.Witness, y, amount)
	if err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	// (b) component-wise domination.
	if !res.Lambda.GE(tr.Lambda) || !res.Delta.GE(tr.Delta) {
		t.Fatal("truncation must not increase λ or δ")
	}
	// (c) exact decrements.
	wantDelta := new(big.Rat).Sub(res.Delta.Get(Marginal(y)), amount)
	if tr.Delta.Get(Marginal(y)).Cmp(wantDelta) != 0 {
		t.Fatalf("δ'_{Y|∅} = %v, want %v", tr.Delta.Get(Marginal(y)), wantDelta)
	}
	lo := new(big.Rat).Sub(res.Lambda.L1(), amount)
	if tr.Lambda.L1().Cmp(lo) < 0 {
		t.Fatalf("‖λ'‖ = %v < ‖λ‖ − amount = %v", tr.Lambda.L1(), lo)
	}
	// (a) the truncated inequality is still provable end-to-end.
	if tr.Lambda.L1().Sign() > 0 {
		seq, err := ConstructProof(tr.Lambda, tr.Delta, tr.Witness)
		if err != nil {
			t.Fatalf("proof of truncated inequality: %v", err)
		}
		if _, err := ValidateProof(tr.Lambda, tr.Delta, seq); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTruncateRandom fuzzes Truncate over random maximin instances.
func TestTruncateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		var dcs []DC
		for v := 0; v < n; v++ {
			e := bitset.Singleton(v).Add((v + 1) % n)
			dcs = append(dcs, DC{X: 0, Y: e, LogN: rat(int64(1+rng.Intn(2)), 1)})
		}
		targets := []bitset.Set{bitset.Full(n)}
		res, err := MaximinBound(n, dcs, targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Delta.Pairs() {
			if p.X != 0 {
				continue
			}
			half := new(big.Rat).Mul(res.Delta.Get(p), rat(1, 2))
			if half.Sign() == 0 {
				continue
			}
			tr, err := Truncate(res.Lambda, res.Delta, res.Witness, p.Y, half)
			if err != nil {
				t.Fatalf("trial %d truncate at %v: %v", trial, p.Y, err)
			}
			if err := CheckWitness(tr.Lambda, tr.Delta, tr.Witness); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			break
		}
	}
}

// TestInflowContributions exercises Figure 7's bookkeeping: each kind of
// multiplier contributes to inflow with the documented signs.
func TestInflowContributions(t *testing.T) {
	one := rat(1, 1)
	// δ_{Y|X} with X ≠ ∅: +1 at Y, −1 at X.
	del := NewVec()
	x, y := bitset.Of(0), bitset.Of(0, 1)
	del.Add(Pair{X: x, Y: y}, one)
	in := Inflows(del, NewWitness())
	if in[y].Cmp(one) != 0 || in[x].Cmp(rat(-1, 1)) != 0 {
		t.Fatalf("δ inflow: %v", in)
	}
	// σ_{I,J}: +1 at I∩J and I∪J, −1 at I and J.
	w := NewWitness()
	i, j := bitset.Of(0, 1), bitset.Of(1, 2)
	w.Sigma[Sig(i, j)] = one
	in = Inflows(NewVec(), w)
	if in[i.Intersect(j)].Cmp(one) != 0 || in[i.Union(j)].Cmp(one) != 0 {
		t.Fatalf("σ inflow positive parts: %v", in)
	}
	if in[i].Cmp(rat(-1, 1)) != 0 || in[j].Cmp(rat(-1, 1)) != 0 {
		t.Fatalf("σ inflow negative parts: %v", in)
	}
	// µ_{X,Y}: +1 at X, −1 at Y.
	w = NewWitness()
	w.Mu[Pair{X: x, Y: y}] = one
	in = Inflows(NewVec(), w)
	if in[x].Cmp(one) != 0 || in[y].Cmp(rat(-1, 1)) != 0 {
		t.Fatalf("µ inflow: %v", in)
	}
}

func TestTightenMakesInflowsTight(t *testing.T) {
	lam, del := exampleIneq()
	w, err := FindWitness(4, lam, del)
	if err != nil {
		t.Fatal(err)
	}
	Tighten(lam, del, w)
	in := Inflows(del, w)
	for z, v := range in {
		if z == 0 {
			continue
		}
		if v.Cmp(lam.Get(Marginal(z))) != 0 {
			t.Fatalf("inflow(%v) = %v ≠ λ = %v after Tighten", z, v, lam.Get(Marginal(z)))
		}
	}
}
