package flow

import (
	"math/big"
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/setfunc"
)

// l1Sigma and l1Mu compute ‖σ‖₁ and ‖µ‖₁ of a witness.
func l1Sigma(w *Witness) *big.Rat {
	s := new(big.Rat)
	for _, v := range w.Sigma {
		s.Add(s, v)
	}
	return s
}

func l1Mu(w *Witness) *big.Rat {
	s := new(big.Rat)
	for _, v := range w.Mu {
		s.Add(s, v)
	}
	return s
}

// TestProofLengthBound checks Theorem 5.9's length guarantee: our batched
// construction must produce at most D·(3‖σ‖₁ + ‖δ‖₁ + ‖µ‖₁) steps (the
// paper's unit construction attains exactly that; batching can only
// shorten).
func TestProofLengthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		var dcs []DC
		for v := 0; v < n; v++ {
			dcs = append(dcs, DC{
				X: 0, Y: bitset.Of(v, (v+1)%n),
				LogN: big.NewRat(int64(1+rng.Intn(3)), int64(1+rng.Intn(2))),
			})
		}
		res, err := MaximinBound(n, dcs, []bitset.Set{bitset.Full(n)})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ConstructProof(res.Lambda, res.Delta, res.Witness)
		if err != nil {
			t.Fatal(err)
		}
		// Length bound with the witness's own norms.
		bound := new(big.Rat).Mul(big.NewRat(3, 1), l1Sigma(res.Witness))
		bound.Add(bound, res.Delta.L1())
		bound.Add(bound, l1Mu(res.Witness))
		d := CommonDenominator(res.Lambda, res.Delta)
		for _, v := range res.Witness.Sigma {
			one := NewVec()
			one.Add(Marginal(bitset.Of(0)), v)
			d.Mul(d, new(big.Int).Div(CommonDenominator(one), new(big.Int).GCD(nil, nil, d, CommonDenominator(one))))
		}
		bound.Mul(bound, new(big.Rat).SetInt(d))
		limit := new(big.Rat).SetInt64(int64(len(seq)))
		if limit.Cmp(bound) > 0 {
			t.Fatalf("trial %d: %d steps exceeds D(3‖σ‖+‖δ‖+‖µ‖) = %v",
				trial, len(seq), bound)
		}
	}
}

// TestWitnessRebalance (Figure 10 / Appendix B.1 spirit): FindWitness
// minimizes ‖σ‖₁+‖µ‖₁, and the resulting witnesses on the paper's
// inequalities satisfy the Corollary B.6/B.7 norm bounds
// ‖µ‖₁ ≤ n·‖λ‖₁ and 2‖σ‖₁+‖δ‖₁ ≤ n³·‖λ‖₁.
func TestWitnessRebalance(t *testing.T) {
	lam, del := exampleIneq()
	w, err := FindWitness(4, lam, del)
	if err != nil {
		t.Fatal(err)
	}
	n := big.NewRat(4, 1)
	nCubed := big.NewRat(64, 1)
	lamL1 := lam.L1()
	muBound := new(big.Rat).Mul(n, lamL1)
	if l1Mu(w).Cmp(muBound) > 0 {
		t.Fatalf("‖µ‖ = %v > n·‖λ‖ = %v", l1Mu(w), muBound)
	}
	lhs := new(big.Rat).Mul(big.NewRat(2, 1), l1Sigma(w))
	lhs.Add(lhs, del.L1())
	saBound := new(big.Rat).Mul(nCubed, lamL1)
	if lhs.Cmp(saBound) > 0 {
		t.Fatalf("2‖σ‖+‖δ‖ = %v > n³·‖λ‖ = %v", lhs, saBound)
	}
}

// TestProofSequenceOnMatroidRanks validates constructed sequences against a
// second polymatroid family (matroid ranks) beyond coverage functions.
func TestProofSequenceOnMatroidRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lam, del := exampleIneq()
	w, err := FindWitness(4, lam, del)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ConstructProof(lam, del, w)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		h := setfunc.RandomMatroidRank(rng, 4)
		if !HoldsOn(lam, del, h) {
			t.Fatal("inequality fails on matroid rank")
		}
		for _, s := range seq {
			if s.EvalDrop(h).Sign() < 0 {
				t.Fatalf("step %v increases the bound on a matroid rank", s)
			}
		}
	}
}

// TestStepStringAndKinds covers the printing paths used by traces.
func TestStepStringAndKinds(t *testing.T) {
	one := big.NewRat(1, 1)
	steps := []Step{
		{Kind: Submodularity, W: one, A: bitset.Of(0, 1), B: bitset.Of(1, 2)},
		{Kind: Monotonicity, W: one, A: bitset.Of(0), B: bitset.Of(0, 1)},
		{Kind: Composition, W: one, A: bitset.Of(0), B: bitset.Of(0, 1)},
		{Kind: Decomposition, W: one, A: bitset.Of(0), B: bitset.Of(0, 1)},
	}
	for _, s := range steps {
		if s.String() == "" || s.Kind.String() == "" {
			t.Fatal("empty rendering")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("valid step rejected: %v", err)
		}
	}
}

// TestVecString covers deterministic rendering.
func TestVecString(t *testing.T) {
	v := NewVec()
	if v.String() != "0" {
		t.Fatalf("empty vec renders %q", v.String())
	}
	v.Add(Marginal(bitset.Of(0, 1)), big.NewRat(3, 2))
	v.Add(Pair{X: bitset.Of(0), Y: bitset.Of(0, 1)}, big.NewRat(1, 1))
	if v.String() == "" {
		t.Fatal("non-empty vec renders empty")
	}
}
