package flow

import (
	"errors"
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/lp"
	"panda/internal/setfunc"
)

// ErrUnbounded reports that the polymatroid-bound LP is unbounded: the
// constraint set does not bound every target, typically because an atom
// lacks a cardinality constraint. The facade re-exports it as
// panda.ErrUnboundedLP.
var ErrUnbounded = errors.New("flow: bound is unbounded (+∞)")

// DC is a degree constraint (X, Y, N_{Y|X}) in log form: h(Y|X) ≤ LogN.
// Cardinality constraints have X = ∅; FDs have LogN = 0.
type DC struct {
	X, Y bitset.Set
	LogN *big.Rat
}

// MaximinResult is the full output of the Lemma 5.2 / Proposition 5.4
// pipeline: the polymatroid bound value, the λ of the linearized objective,
// the dual δ (per input constraint and merged by conditional pair), the
// witness (σ,µ), and the optimal polymatroid h*.
type MaximinResult struct {
	Bound      *big.Rat   // LogSizeBound_{Γn∩HDC} = max_h min_B h(B)
	Lambda     Vec        // ‖λ‖₁ = 1, support on targets
	Delta      Vec        // merged by (X,Y); Σ n·δ ≤ Bound with equality pre-scaling
	DeltaByCon []*big.Rat // δ per input constraint, aligned with dcs
	Witness    *Witness
	HStar      *setfunc.Func // optimal polymatroid achieving the bound
}

// MaximinBound solves LogSizeBound_{Γn∩HDC}(targets) = max_{h∈Γn∩HDC}
// min_B h(B) exactly, per Eq. (7)/(9). One LP solve (the dual form (72),
// with Γn presented by its elemental inequalities) yields the bound, the λ
// of Lemma 5.2, the dual (δ,σ,µ) of LP (73) — a witness by
// Proposition 5.4 — and the optimal polymatroid h* (from the LP duals).
// The returned vectors are scaled so ‖λ‖₁ = 1 (invariant (84)).
func MaximinBound(n int, dcs []DC, targets []bitset.Set) (*MaximinResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("flow: no targets")
	}
	full := bitset.Full(n)
	for _, dc := range dcs {
		if !dc.X.ProperSubsetOf(dc.Y) || !dc.Y.SubsetOf(full) {
			return nil, fmt.Errorf("flow: bad constraint X=%v Y=%v", dc.X, dc.Y)
		}
		if dc.LogN == nil || dc.LogN.Sign() < 0 {
			return nil, fmt.Errorf("flow: constraint needs LogN ≥ 0")
		}
	}
	// A target ∅ forces the bound to 0: h(∅) = 0 for every polymatroid.
	// Callers special-case ∅ targets (the model {()} is always valid).
	for _, b := range targets {
		if b == 0 {
			return &MaximinResult{
				Bound:      new(big.Rat),
				Lambda:     NewVec(),
				Delta:      NewVec(),
				DeltaByCon: make([]*big.Rat, len(dcs)),
				Witness:    NewWitness(),
				HStar:      setfunc.New(n),
			}, nil
		}
	}
	// Deduplicate targets.
	tset := map[bitset.Set]bool{}
	var tlist []bitset.Set
	for _, b := range targets {
		if !tset[b] {
			tset[b] = true
			tlist = append(tlist, b)
		}
	}

	// Variable layout: δ (per constraint) | σ (elemental) | µ (elemental) | z (per target).
	type sigVar struct {
		s    bitset.Set
		i, j int
	}
	type muVar struct {
		x bitset.Set
		i int
	}
	var sigs []sigVar
	var mus []muVar
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			mus = append(mus, muVar{x: s, i: i})
			for j := i + 1; j < n; j++ {
				if s.Contains(j) {
					continue
				}
				sigs = append(sigs, sigVar{s: s, i: i, j: j})
			}
		}
	}
	offSig := len(dcs)
	offMu := offSig + len(sigs)
	offZ := offMu + len(mus)
	nv := offZ + len(tlist)

	prob := lp.NewProblem(nv, false)
	for k, dc := range dcs {
		prob.SetObj(k, dc.LogN)
	}
	rows := make([]map[int]*big.Rat, 1<<uint(n))
	addCoef := func(z bitset.Set, v int, c int64) {
		if z == 0 {
			return
		}
		if rows[z] == nil {
			rows[z] = map[int]*big.Rat{}
		}
		r, ok := rows[z][v]
		if !ok {
			r = new(big.Rat)
			rows[z][v] = r
		}
		r.Add(r, big.NewRat(c, 1))
	}
	for k, dc := range dcs {
		addCoef(dc.Y, k, 1)
		addCoef(dc.X, k, -1)
	}
	for v, sv := range sigs {
		i, j := sv.s.Add(sv.i), sv.s.Add(sv.j)
		addCoef(i.Intersect(j), offSig+v, 1)
		addCoef(i.Union(j), offSig+v, 1)
		addCoef(i, offSig+v, -1)
		addCoef(j, offSig+v, -1)
	}
	for v, mv := range mus {
		addCoef(mv.x, offMu+v, 1)
		addCoef(mv.x.Add(mv.i), offMu+v, -1)
	}
	for t, b := range tlist {
		addCoef(b, offZ+t, -1) // inflow(B) ≥ z_B
	}
	zero := new(big.Rat)
	one := big.NewRat(1, 1)
	rowOf := make(map[bitset.Set]int)
	for z := bitset.Set(1); z <= full; z++ {
		row := rows[z]
		if row == nil {
			continue // 0 ≥ 0
		}
		rowOf[z] = prob.AddConstraint(row, lp.Ge, zero)
	}
	zrow := map[int]*big.Rat{}
	for t := range tlist {
		zrow[offZ+t] = one
	}
	prob.AddConstraint(zrow, lp.Ge, one) // 1ᵀz ≥ 1 (Lemma 5.3's dual row)

	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		// Dual infeasible ⟺ the primal max is unbounded: the constraints do
		// not bound some target.
		return nil, fmt.Errorf("%w: constraints do not bound every target", ErrUnbounded)
	default:
		return nil, fmt.Errorf("flow: unexpected LP status %v", sol.Status)
	}

	res := &MaximinResult{
		Bound:      new(big.Rat).Set(sol.Objective),
		Lambda:     NewVec(),
		Delta:      NewVec(),
		DeltaByCon: make([]*big.Rat, len(dcs)),
		Witness:    NewWitness(),
	}
	// Scale so ‖λ‖₁ = 1 (the LP only enforces Σz ≥ 1; scaling everything
	// by 1/‖z‖₁ preserves witness feasibility and only tightens Σ n·δ).
	norm := new(big.Rat)
	for t := range tlist {
		norm.Add(norm, sol.X[offZ+t])
	}
	scale := big.NewRat(1, 1)
	if norm.Cmp(one) > 0 {
		scale.Inv(norm)
	}
	for t, b := range tlist {
		v := new(big.Rat).Mul(sol.X[offZ+t], scale)
		if v.Sign() > 0 {
			res.Lambda.Add(Marginal(b), v)
		}
	}
	for k, dc := range dcs {
		v := new(big.Rat).Mul(sol.X[k], scale)
		res.DeltaByCon[k] = v
		if v.Sign() > 0 {
			res.Delta.Add(Pair{X: dc.X, Y: dc.Y}, v)
		}
	}
	for v, sv := range sigs {
		x := new(big.Rat).Mul(sol.X[offSig+v], scale)
		if x.Sign() > 0 {
			res.Witness.Sigma[Sig(sv.s.Add(sv.i), sv.s.Add(sv.j))] = x
		}
	}
	for v, mv := range mus {
		x := new(big.Rat).Mul(sol.X[offMu+v], scale)
		if x.Sign() > 0 {
			res.Witness.Mu[Pair{X: mv.x, Y: mv.x.Add(mv.i)}] = x
		}
	}
	// h* from the exact LP duals: Dual[row Z] = h*(Z).
	res.HStar = setfunc.New(n)
	for z, row := range rowOf {
		res.HStar.Set(z, sol.Dual[row])
	}
	return res, nil
}

// LinearBound solves max Σ_B c_B·h(B) over Γn ∩ HDC exactly — the
// right-hand side of Lemma 5.2's Eq. (68) for a fixed λ = c. Returns the
// optimum and the optimal polymatroid.
func LinearBound(n int, dcs []DC, objective map[bitset.Set]*big.Rat) (*big.Rat, *setfunc.Func, error) {
	lam := NewVec()
	var targets []bitset.Set
	for b, c := range objective {
		if c.Sign() < 0 {
			return nil, nil, fmt.Errorf("flow: negative objective weight")
		}
		if c.Sign() > 0 && b != 0 {
			lam.Add(Marginal(b), c)
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		return new(big.Rat), setfunc.New(n), nil
	}
	// Solve via the primal formulation's dual with fixed λ: minimize Σ n·δ
	// subject to inflow(Z) ≥ λ_Z. Reuse MaximinBound machinery by scaling:
	// for a fixed positive combination, max Σ c_B h(B) has the same dual
	// rows but with RHS λ instead of the z variables. We build it directly.
	full := bitset.Full(n)
	type sigVar struct {
		s    bitset.Set
		i, j int
	}
	type muVar struct {
		x bitset.Set
		i int
	}
	var sigs []sigVar
	var mus []muVar
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			mus = append(mus, muVar{x: s, i: i})
			for j := i + 1; j < n; j++ {
				if s.Contains(j) {
					continue
				}
				sigs = append(sigs, sigVar{s: s, i: i, j: j})
			}
		}
	}
	offSig := len(dcs)
	offMu := offSig + len(sigs)
	nv := offMu + len(mus)
	prob := lp.NewProblem(nv, false)
	for k, dc := range dcs {
		prob.SetObj(k, dc.LogN)
	}
	rows := make([]map[int]*big.Rat, 1<<uint(n))
	addCoef := func(z bitset.Set, v int, c int64) {
		if z == 0 {
			return
		}
		if rows[z] == nil {
			rows[z] = map[int]*big.Rat{}
		}
		r, ok := rows[z][v]
		if !ok {
			r = new(big.Rat)
			rows[z][v] = r
		}
		r.Add(r, big.NewRat(c, 1))
	}
	for k, dc := range dcs {
		addCoef(dc.Y, k, 1)
		addCoef(dc.X, k, -1)
	}
	for v, sv := range sigs {
		i, j := sv.s.Add(sv.i), sv.s.Add(sv.j)
		addCoef(i.Intersect(j), offSig+v, 1)
		addCoef(i.Union(j), offSig+v, 1)
		addCoef(i, offSig+v, -1)
		addCoef(j, offSig+v, -1)
	}
	for v, mv := range mus {
		addCoef(mv.x, offMu+v, 1)
		addCoef(mv.x.Add(mv.i), offMu+v, -1)
	}
	rowOf := map[bitset.Set]int{}
	for z := bitset.Set(1); z <= full; z++ {
		row := rows[z]
		b := lam.Get(Marginal(z))
		if row == nil && b.Sign() <= 0 {
			continue
		}
		if row == nil {
			row = map[int]*big.Rat{}
		}
		rowOf[z] = prob.AddConstraint(row, lp.Ge, b)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("flow: linear bound LP %v (unbounded primal?)", sol.Status)
	}
	h := setfunc.New(n)
	for z, row := range rowOf {
		h.Set(z, sol.Dual[row])
	}
	return new(big.Rat).Set(sol.Objective), h, nil
}
