package flow

import (
	"math/big"
	"testing"

	"panda/internal/bitset"
)

// TestMaximinTriangleAGM: the single-target bound of the triangle equals
// its AGM exponent 3/2 (Prop 3.2 seen from the flow side).
func TestMaximinTriangleAGM(t *testing.T) {
	one := rat(1, 1)
	dcs := []DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one},
		{X: 0, Y: bitset.Of(1, 2), LogN: one},
		{X: 0, Y: bitset.Of(0, 2), LogN: one},
	}
	res, err := MaximinBound(3, dcs, []bitset.Set{bitset.Full(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("triangle bound = %v, want 3/2", res.Bound)
	}
	// The whole pipeline round-trips.
	seq, err := ConstructProof(res.Lambda, res.Delta, res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateProof(res.Lambda, res.Delta, seq); err != nil {
		t.Fatal(err)
	}
}

// TestMaximinDuplicateTargets: duplicates must not change the bound.
func TestMaximinDuplicateTargets(t *testing.T) {
	dcs := exampleC4DCs()
	a := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	b := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3), bitset.Of(0, 1, 2)}
	ra, err := MaximinBound(4, dcs, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MaximinBound(4, dcs, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Bound.Cmp(rb.Bound) != 0 {
		t.Fatalf("duplicate targets changed the bound: %v vs %v", ra.Bound, rb.Bound)
	}
}

// TestMaximinFDOnlyBoundZero: if FDs collapse everything to a constant, the
// bound is 0.
func TestMaximinFDOnlyBoundZero(t *testing.T) {
	zero := new(big.Rat)
	dcs := []DC{
		{X: 0, Y: bitset.Of(0), LogN: zero},               // |Π_0| ≤ 1
		{X: bitset.Of(0), Y: bitset.Of(0, 1), LogN: zero}, // 0 → 1
	}
	res, err := MaximinBound(2, dcs, []bitset.Set{bitset.Full(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound.Sign() != 0 {
		t.Fatalf("bound = %v, want 0", res.Bound)
	}
}

// TestMaximinBadInputs covers validation.
func TestMaximinBadInputs(t *testing.T) {
	if _, err := MaximinBound(2, nil, nil); err == nil {
		t.Fatal("no targets accepted")
	}
	bad := []DC{{X: bitset.Of(0, 1), Y: bitset.Of(0, 1), LogN: rat(1, 1)}}
	if _, err := MaximinBound(2, bad, []bitset.Set{bitset.Full(2)}); err == nil {
		t.Fatal("X = Y accepted")
	}
	neg := []DC{{X: 0, Y: bitset.Of(0, 1), LogN: rat(-1, 1)}}
	if _, err := MaximinBound(2, neg, []bitset.Set{bitset.Full(2)}); err == nil {
		t.Fatal("negative log bound accepted")
	}
}

// TestLinearBoundMatchesMaximinSingle: LinearBound with weight 1 on one set
// equals the single-target maximin bound.
func TestLinearBoundMatchesMaximinSingle(t *testing.T) {
	dcs := exampleC4DCs()
	b := bitset.Of(0, 1, 2)
	res, err := MaximinBound(4, dcs, []bitset.Set{b})
	if err != nil {
		t.Fatal(err)
	}
	lin, h, err := LinearBound(4, dcs, map[bitset.Set]*big.Rat{b: rat(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Cmp(res.Bound) != 0 {
		t.Fatalf("linear %v ≠ maximin %v", lin, res.Bound)
	}
	if !h.IsPolymatroid() {
		t.Fatal("LinearBound h* not a polymatroid")
	}
	if h.At(b).Cmp(lin) != 0 {
		t.Fatalf("h*(B) = %v ≠ bound %v", h.At(b), lin)
	}
}

// TestLinearBoundZeroObjective returns 0 for an empty objective.
func TestLinearBoundZeroObjective(t *testing.T) {
	v, _, err := LinearBound(3, nil, nil)
	if err != nil || v.Sign() != 0 {
		t.Fatalf("%v %v", v, err)
	}
}

// TestHStarAchievesMinimum: the optimal polymatroid's minimum over targets
// equals the bound exactly (complementary slackness made visible).
func TestHStarAchievesMinimum(t *testing.T) {
	dcs := exampleC4DCs()
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	res, err := MaximinBound(4, dcs, targets)
	if err != nil {
		t.Fatal(err)
	}
	min := res.HStar.At(targets[0])
	for _, b := range targets[1:] {
		if v := res.HStar.At(b); v.Cmp(min) < 0 {
			min = v
		}
	}
	if min.Cmp(res.Bound) != 0 {
		t.Fatalf("min_B h*(B) = %v ≠ bound %v", min, res.Bound)
	}
}
