package flow

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/setfunc"
)

// StepKind enumerates the four proof-step rules (13)–(16) of the paper.
type StepKind int

// Proof-step kinds.
const (
	// Submodularity s_{I,J}: h(I|I∩J) → h(I∪J|J)   (rule 13)
	Submodularity StepKind = iota
	// Monotonicity m_{X,Y}: h(Y) → h(X), X ⊂ Y     (rule 14)
	Monotonicity
	// Composition c_{X,Y}: h(X) + h(Y|X) → h(Y)    (rule 15)
	Composition
	// Decomposition d_{Y,X}: h(Y) → h(X) + h(Y|X)  (rule 16)
	Decomposition
)

func (k StepKind) String() string {
	switch k {
	case Submodularity:
		return "submodularity"
	case Monotonicity:
		return "monotonicity"
	case Composition:
		return "composition"
	default:
		return "decomposition"
	}
}

// Step is one weighted proof step (Definition 5.7). For Submodularity, A and
// B are the incomparable sets I and J; for the other kinds A = X ⊂ B = Y.
type Step struct {
	Kind StepKind
	W    *big.Rat
	A, B bitset.Set
}

func (s Step) String() string {
	switch s.Kind {
	case Submodularity:
		return fmt.Sprintf("%v·s[%v,%v]", s.W.RatString(), s.A, s.B)
	case Monotonicity:
		return fmt.Sprintf("%v·m[%v⊂%v]", s.W.RatString(), s.A, s.B)
	case Composition:
		return fmt.Sprintf("%v·c[%v,%v]", s.W.RatString(), s.A, s.B)
	default:
		return fmt.Sprintf("%v·d[%v,%v]", s.W.RatString(), s.B, s.A)
	}
}

// Moves returns the coordinate updates of the step as (consumed, produced)
// pair lists: applying the step adds W to each produced coordinate and
// subtracts W from each consumed coordinate of δ. Terms h(∅) are identically
// zero and are dropped (they arise when X = ∅, e.g. in d_{Y,∅}).
func (s Step) Moves() (consumed, produced []Pair) {
	keep := func(ps ...Pair) []Pair {
		out := ps[:0]
		for _, p := range ps {
			if p.Y != 0 {
				out = append(out, p)
			}
		}
		return out
	}
	switch s.Kind {
	case Submodularity:
		i, j := s.A, s.B
		return keep(Pair{X: i.Intersect(j), Y: i}), keep(Pair{X: j, Y: i.Union(j)})
	case Monotonicity:
		return keep(Marginal(s.B)), keep(Marginal(s.A))
	case Composition:
		return keep(Marginal(s.A), Pair{X: s.A, Y: s.B}), keep(Marginal(s.B))
	default: // Decomposition
		return keep(Marginal(s.B)), keep(Marginal(s.A), Pair{X: s.A, Y: s.B})
	}
}

// Validate checks the structural side conditions of the step.
func (s Step) Validate() error {
	if s.W == nil || s.W.Sign() <= 0 {
		return fmt.Errorf("flow: step weight must be positive")
	}
	switch s.Kind {
	case Submodularity:
		if !s.A.Incomparable(s.B) {
			return fmt.Errorf("flow: submodularity needs I ⊥ J, got %v, %v", s.A, s.B)
		}
	default:
		if !s.A.ProperSubsetOf(s.B) {
			return fmt.Errorf("flow: %v needs X ⊂ Y, got %v, %v", s.Kind, s.A, s.B)
		}
	}
	return nil
}

// Apply performs δ ← δ + W·f for the step's move vector f, returning an
// error if any consumed coordinate would go negative (violating
// Definition 5.7(3)).
func (s Step) Apply(delta Vec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	consumed, produced := s.Moves()
	for _, p := range consumed {
		if delta.Get(p).Cmp(s.W) < 0 {
			return fmt.Errorf("flow: step %v consumes %v but δ has only %v", s, p, delta.Get(p))
		}
	}
	for _, p := range consumed {
		delta.Sub(p, s.W)
	}
	for _, p := range produced {
		delta.Add(p, s.W)
	}
	return nil
}

// EvalDrop computes the amount by which the step decreases 〈δ,h〉 on an
// exact set function (must be ≥ 0 for every polymatroid by inequalities
// (77)–(80)).
func (s Step) EvalDrop(h *setfunc.Func) *big.Rat {
	consumed, produced := s.Moves()
	drop := new(big.Rat)
	for _, p := range consumed {
		drop.Add(drop, h.Cond(p.Y, p.X))
	}
	for _, p := range produced {
		drop.Sub(drop, h.Cond(p.Y, p.X))
	}
	drop.Mul(drop, s.W)
	return drop
}

// ProofSequence is a sequence of weighted steps (Definition 5.7).
type ProofSequence []Step

// ValidateProof checks that seq is a proof sequence for 〈λ,h〉 ≤ 〈δ,h〉:
// starting from δ, every prefix stays non-negative and the final vector
// dominates λ. Returns the final vector δ_ℓ.
func ValidateProof(lambda, delta Vec, seq ProofSequence) (Vec, error) {
	cur := delta.Clone()
	for i, s := range seq {
		if err := s.Apply(cur); err != nil {
			return nil, fmt.Errorf("flow: step %d: %w", i, err)
		}
	}
	if !cur.GE(lambda) {
		return nil, fmt.Errorf("flow: final δ_ℓ = %v does not dominate λ = %v", cur, lambda)
	}
	return cur, nil
}

// Eval computes 〈v, h〉 = Σ_p v_p·h(Y_p|X_p) exactly.
func Eval(v Vec, h *setfunc.Func) *big.Rat {
	s := new(big.Rat)
	tmp := new(big.Rat)
	for p, w := range v {
		s.Add(s, tmp.Mul(w, h.Cond(p.Y, p.X)))
	}
	return s
}

// HoldsOn reports whether 〈λ,h〉 ≤ 〈δ,h〉 holds on the given set function
// (used by property tests with sampled polymatroids).
func HoldsOn(lambda, delta Vec, h *setfunc.Func) bool {
	return Eval(lambda, h).Cmp(Eval(delta, h)) <= 0
}
