package flow

import (
	"fmt"
	"math/big"

	"panda/internal/bitset"
)

// TruncateResult carries the truncated inequality of Lemma 5.11.
type TruncateResult struct {
	Lambda  Vec
	Delta   Vec
	Witness *Witness
}

// Truncate implements Lemma 5.11: given a Shannon flow inequality
// 〈λ,h〉 ≤ 〈δ,h〉 with witness (σ,µ), ‖λ‖₁ > 0 and δ_{Y|∅} ≥ amount > 0, it
// produces (λ′, δ′, σ′, µ′) such that
//
//	(a) 〈λ′,h〉 ≤ 〈δ′,h〉 is a Shannon flow inequality witnessed by (σ′,µ′),
//	(b) λ′ ≤ λ and δ′ ≤ δ component-wise,
//	(c) ‖λ′‖₁ ≥ ‖λ‖₁ − amount and δ′_{Y|∅} = δ_{Y|∅} − amount.
//
// The witness is first tightened (Definition 5.10), then the flow deficit
// created at Y is walked down — through λ, µ, conditioned δ or σ — exactly
// as in the paper's proof, with batched chunk sizes. Inputs are not
// modified.
func Truncate(lambda, delta Vec, w *Witness, y bitset.Set, amount *big.Rat) (*TruncateResult, error) {
	if amount.Sign() <= 0 {
		return nil, fmt.Errorf("flow: truncate amount must be positive")
	}
	ym := Marginal(y)
	if delta.Get(ym).Cmp(amount) < 0 {
		return nil, fmt.Errorf("flow: δ_{%v|∅} = %v < amount %v", y, delta.Get(ym), amount)
	}
	if err := CheckWitness(lambda, delta, w); err != nil {
		return nil, fmt.Errorf("flow: truncate: %w", err)
	}
	lam := lambda.Clone()
	del := delta.Clone()
	wit := w.Clone()
	Tighten(lam, del, wit)

	del.Sub(ym, amount)
	// Deficit worklist: sets whose inflow now falls short of λ.
	deficits := map[bitset.Set]*big.Rat{y: new(big.Rat).Set(amount)}

	pop := func() (bitset.Set, *big.Rat, bool) {
		var best bitset.Set
		found := false
		for z, d := range deficits {
			if d.Sign() <= 0 {
				delete(deficits, z)
				continue
			}
			if !found || z < best {
				best, found = z, true
			}
		}
		if !found {
			return 0, nil, false
		}
		return best, deficits[best], true
	}
	push := func(z bitset.Set, t *big.Rat) {
		if z == 0 {
			return // h(∅) carries no constraint; deficit vanishes
		}
		d, ok := deficits[z]
		if !ok {
			d = new(big.Rat)
			deficits[z] = d
		}
		d.Add(d, t)
	}

	const maxIter = 200000
	for iter := 0; ; iter++ {
		z, d, ok := pop()
		if !ok {
			break
		}
		if iter > maxIter {
			return nil, fmt.Errorf("flow: truncation exceeded %d iterations", maxIter)
		}
		// (0) absorb into λ_Z.
		if lz := lam.Get(Marginal(z)); lz.Sign() > 0 {
			t := minRat(d, lz)
			lam.Sub(Marginal(z), t)
			d.Sub(d, t)
			continue
		}
		// (1) reduce µ_{X,Z}, moving the deficit to X.
		handled := false
		for _, p := range pairKeysSorted(wit.Mu) {
			if p.Y != z || wit.Mu[p].Sign() <= 0 {
				continue
			}
			t := minRat(d, wit.Mu[p])
			wit.Mu[p].Sub(wit.Mu[p], t)
			d.Sub(d, t)
			push(p.X, t)
			handled = true
			break
		}
		if handled {
			continue
		}
		// (2) reduce δ_{Y'|Z}, moving the deficit to Y'.
		for _, p := range del.Pairs() {
			if p.X != z || del.Get(p).Sign() <= 0 {
				continue
			}
			t := minRat(d, del.Get(p))
			del.Sub(p, t)
			d.Sub(d, t)
			push(p.Y, t)
			handled = true
			break
		}
		if handled {
			continue
		}
		// (3) reduce σ_{Z,J}, raise µ_{Z∩J,J}, move the deficit to Z∪J.
		for _, sp := range sigKeysSorted(wit.Sigma) {
			v := wit.Sigma[sp]
			if v.Sign() <= 0 {
				continue
			}
			var j bitset.Set
			switch z {
			case sp.I:
				j = sp.J
			case sp.J:
				j = sp.I
			default:
				continue
			}
			t := minRat(d, v)
			v.Sub(v, t)
			d.Sub(d, t)
			x := z.Intersect(j)
			if x != j { // µ_{X,J} needs X ⊂ J; X = Z∩J ⊂ J since Z ⊥ J
				mu := Pair{X: x, Y: j}
				r, ok := wit.Mu[mu]
				if !ok {
					r = new(big.Rat)
					wit.Mu[mu] = r
				}
				r.Add(r, t)
			}
			push(z.Union(j), t)
			handled = true
			break
		}
		if !handled {
			return nil, fmt.Errorf("flow: truncation stuck at %v with deficit %v", z, d)
		}
	}
	res := &TruncateResult{Lambda: lam, Delta: del, Witness: wit}
	if err := CheckWitness(lam, del, wit); err != nil {
		return nil, fmt.Errorf("flow: truncation produced invalid witness: %w", err)
	}
	return res, nil
}
