// Package flow implements the Shannon-flow-inequality machinery of
// Section 5 of the paper: conditional-polymatroid term vectors, witnesses
// (Proposition 5.4/5.6), the inflow bookkeeping of Eq. (74), proof-sequence
// construction (Theorem 5.9), proof-sequence validation, truncation
// (Lemma 5.11), and the maximin-to-linear reformulation (Lemma 5.2) solved
// by exact LP.
package flow

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"panda/internal/bitset"
)

// Pair indexes a conditional term h(Y|X) with X ⊂ Y; X = ∅ gives the
// unconditional h(Y). This is the paper's index set P (Definition 5.5).
type Pair struct {
	X, Y bitset.Set
}

// Valid reports whether X ⊂ Y.
func (p Pair) Valid() bool { return p.X.ProperSubsetOf(p.Y) }

func (p Pair) String() string {
	if p.X == 0 {
		return fmt.Sprintf("h(%v)", p.Y)
	}
	return fmt.Sprintf("h(%v|%v)", p.Y, p.X)
}

// Marginal builds the unconditional pair (∅, Y).
func Marginal(y bitset.Set) Pair { return Pair{X: 0, Y: y} }

// Vec is a sparse non-negative rational vector over conditional pairs —
// the λ and δ of Definition 5.1, extended to Q₊^P (Section 5.2).
type Vec map[Pair]*big.Rat

// NewVec returns an empty vector.
func NewVec() Vec { return Vec{} }

// Get returns the coordinate value (zero if absent). The returned value
// must not be mutated.
func (v Vec) Get(p Pair) *big.Rat {
	if r, ok := v[p]; ok {
		return r
	}
	return new(big.Rat)
}

// Add adds w to coordinate p in place, deleting coordinates that reach 0.
func (v Vec) Add(p Pair, w *big.Rat) {
	r, ok := v[p]
	if !ok {
		r = new(big.Rat)
		v[p] = r
	}
	r.Add(r, w)
	if r.Sign() == 0 {
		delete(v, p)
	}
}

// Sub subtracts w from coordinate p in place.
func (v Vec) Sub(p Pair, w *big.Rat) {
	v.Add(p, new(big.Rat).Neg(w))
}

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	for p, r := range v {
		out[p] = new(big.Rat).Set(r)
	}
	return out
}

// L1 returns Σ |v_p| (coordinates are expected non-negative).
func (v Vec) L1() *big.Rat {
	s := new(big.Rat)
	for _, r := range v {
		if r.Sign() >= 0 {
			s.Add(s, r)
		} else {
			s.Sub(s, r)
		}
	}
	return s
}

// NonNegative reports whether every coordinate is ≥ 0.
func (v Vec) NonNegative() bool {
	for _, r := range v {
		if r.Sign() < 0 {
			return false
		}
	}
	return true
}

// GE reports whether v ≥ w component-wise.
func (v Vec) GE(w Vec) bool {
	for p, r := range w {
		if v.Get(p).Cmp(r) < 0 {
			return false
		}
	}
	return true
}

// Pairs returns the support sorted by (|Y|, Y, X) for deterministic
// iteration.
func (v Vec) Pairs() []Pair {
	out := make([]Pair, 0, len(v))
	for p := range v {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y.Card() != b.Y.Card() {
			return a.Y.Card() < b.Y.Card()
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return out
}

func (v Vec) String() string {
	var parts []string
	for _, p := range v.Pairs() {
		parts = append(parts, fmt.Sprintf("%v·%v", v[p].RatString(), p))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// CommonDenominator returns the least common multiple of the denominators
// of all coordinates of the given vectors (the paper's D).
func CommonDenominator(vs ...Vec) *big.Int {
	d := big.NewInt(1)
	g := new(big.Int)
	for _, v := range vs {
		for _, r := range v {
			den := r.Denom()
			g.GCD(nil, nil, d, den)
			d.Div(d, g)
			d.Mul(d, den)
		}
	}
	return d
}
