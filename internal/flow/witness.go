package flow

import (
	"fmt"
	"math/big"
	"sort"

	"panda/internal/bitset"
	"panda/internal/lp"
)

// SigPair indexes a submodularity multiplier σ_{I,J} with I ⊥ J; stored in
// canonical order I < J.
type SigPair struct {
	I, J bitset.Set
}

// Sig builds a canonical SigPair.
func Sig(i, j bitset.Set) SigPair {
	if i > j {
		i, j = j, i
	}
	return SigPair{I: i, J: j}
}

// Witness is the (σ, µ) of Definition 5.8: multipliers certifying via
// Proposition 5.6 that 〈λ,h〉 ≤ 〈δ,h〉 is a Shannon flow inequality.
type Witness struct {
	Sigma map[SigPair]*big.Rat
	Mu    map[Pair]*big.Rat // µ_{X,Y} for X ⊂ Y (X may be ∅)
}

// NewWitness returns an empty witness.
func NewWitness() *Witness {
	return &Witness{Sigma: map[SigPair]*big.Rat{}, Mu: map[Pair]*big.Rat{}}
}

// Clone returns a deep copy.
func (w *Witness) Clone() *Witness {
	out := NewWitness()
	for k, v := range w.Sigma {
		out.Sigma[k] = new(big.Rat).Set(v)
	}
	for k, v := range w.Mu {
		out.Mu[k] = new(big.Rat).Set(v)
	}
	return out
}

func addTo(m map[bitset.Set]*big.Rat, z bitset.Set, v *big.Rat) {
	r, ok := m[z]
	if !ok {
		r = new(big.Rat)
		m[z] = r
	}
	r.Add(r, v)
}

func subFrom(m map[bitset.Set]*big.Rat, z bitset.Set, v *big.Rat) {
	addTo(m, z, new(big.Rat).Neg(v))
}

// Inflows computes inflow(Z) for every Z per Eq. (74):
//
//	inflow(Z) = Σ_X δ_{Z|X} − Σ_Y δ_{Y|Z} + Σ_{I⊥J, I∩J=Z} σ_{I,J}
//	          + Σ_{I⊥J, I∪J=Z} σ_{I,J} − Σ_{J⊥Z} σ_{Z,J}
//	          − Σ_{X⊂Z} µ_{X,Z} + Σ_{Z⊂Y} µ_{Z,Y}.
//
// Entries not in the map are zero.
func Inflows(delta Vec, w *Witness) map[bitset.Set]*big.Rat {
	in := map[bitset.Set]*big.Rat{}
	for p, v := range delta {
		addTo(in, p.Y, v)
		if p.X != 0 {
			subFrom(in, p.X, v)
		}
	}
	if w == nil {
		return in
	}
	for sp, v := range w.Sigma {
		addTo(in, sp.I.Intersect(sp.J), v)
		addTo(in, sp.I.Union(sp.J), v)
		subFrom(in, sp.I, v)
		subFrom(in, sp.J, v)
	}
	for p, v := range w.Mu {
		if p.X != 0 {
			addTo(in, p.X, v)
		}
		subFrom(in, p.Y, v)
	}
	return in
}

// CheckWitness verifies Proposition 5.6: inflow(Z) ≥ λ_Z for all Z ≠ ∅ and
// non-negativity of (δ, σ, µ). A nil error means (σ,µ) witnesses
// 〈λ,h〉 ≤ 〈δ,h〉.
func CheckWitness(lambda, delta Vec, w *Witness) error {
	if !lambda.NonNegative() || !delta.NonNegative() {
		return fmt.Errorf("flow: negative coordinates in λ or δ")
	}
	for _, v := range w.Sigma {
		if v.Sign() < 0 {
			return fmt.Errorf("flow: negative σ entry")
		}
	}
	for _, v := range w.Mu {
		if v.Sign() < 0 {
			return fmt.Errorf("flow: negative µ entry")
		}
	}
	for p := range lambda {
		if p.X != 0 {
			return fmt.Errorf("flow: λ has conditioned coordinate %v", p)
		}
	}
	in := Inflows(delta, w)
	for p, lv := range lambda {
		iv, ok := in[p.Y]
		if !ok {
			iv = new(big.Rat)
		}
		if iv.Cmp(lv) < 0 {
			return fmt.Errorf("flow: inflow(%v) = %v < λ = %v", p.Y, iv, lv)
		}
	}
	for z, iv := range in {
		if z == 0 {
			continue
		}
		if iv.Cmp(lambda.Get(Marginal(z))) < 0 {
			return fmt.Errorf("flow: inflow(%v) = %v < λ = %v", z, iv, lambda.Get(Marginal(z)))
		}
	}
	return nil
}

// Tighten raises µ_{∅,Z} to make every inflow equality hold exactly
// (Definition 5.10): whenever inflow(Z) > λ_Z the surplus is drained
// through the monotonicity multiplier µ_{∅,Z}, which only lowers
// inflow(Z). The witness is modified in place.
func Tighten(lambda, delta Vec, w *Witness) {
	in := Inflows(delta, w)
	zs := make([]bitset.Set, 0, len(in))
	for z := range in {
		zs = append(zs, z)
	}
	sort.Slice(zs, func(i, j int) bool { return zs[i] < zs[j] })
	for _, z := range zs {
		if z == 0 {
			continue
		}
		surplus := new(big.Rat).Sub(in[z], lambda.Get(Marginal(z)))
		if surplus.Sign() > 0 {
			p := Pair{X: 0, Y: z}
			r, ok := w.Mu[p]
			if !ok {
				r = new(big.Rat)
				w.Mu[p] = r
			}
			r.Add(r, surplus)
		}
	}
}

// FindWitness searches for a witness (σ, µ) over the elemental Shannon
// inequalities certifying that 〈λ,h〉 ≤ 〈δ,h〉 is a Shannon flow inequality
// on [n]. Because the elemental inequalities generate Γn, a witness exists
// iff the inequality is valid (Farkas / Proposition 5.4); the witness is
// obtained by exact LP, minimizing ‖σ‖₁ + ‖µ‖₁ to keep proof sequences
// short. Returns an error when the inequality is not valid.
func FindWitness(n int, lambda, delta Vec) (*Witness, error) {
	type sigVar struct {
		s    bitset.Set
		i, j int
	}
	type muVar struct {
		x bitset.Set
		i int
	}
	var sigs []sigVar
	var mus []muVar
	full := bitset.Full(n)
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			mus = append(mus, muVar{x: s, i: i})
			for j := i + 1; j < n; j++ {
				if s.Contains(j) {
					continue
				}
				sigs = append(sigs, sigVar{s: s, i: i, j: j})
			}
		}
	}
	nv := len(sigs) + len(mus)
	prob := lp.NewProblem(nv, false)
	one := big.NewRat(1, 1)
	for v := 0; v < nv; v++ {
		prob.SetObj(v, one)
	}
	// Row per Z: inflow(Z) ≥ λ_Z, with the δ part moved to the RHS.
	rows := map[bitset.Set]map[int]*big.Rat{}
	addCoef := func(z bitset.Set, v int, c int64) {
		if z == 0 {
			return
		}
		row, ok := rows[z]
		if !ok {
			row = map[int]*big.Rat{}
			rows[z] = row
		}
		r, ok := row[v]
		if !ok {
			r = new(big.Rat)
			row[v] = r
		}
		r.Add(r, big.NewRat(c, 1))
	}
	for v, sv := range sigs {
		i, j := sv.s.Add(sv.i), sv.s.Add(sv.j)
		addCoef(i.Intersect(j), v, 1)
		addCoef(i.Union(j), v, 1)
		addCoef(i, v, -1)
		addCoef(j, v, -1)
	}
	for v, mv := range mus {
		x, y := mv.x, mv.x.Add(mv.i)
		addCoef(x, len(sigs)+v, 1)
		addCoef(y, len(sigs)+v, -1)
	}
	rhs := map[bitset.Set]*big.Rat{}
	setRHS := func(z bitset.Set, v *big.Rat) {
		r, ok := rhs[z]
		if !ok {
			r = new(big.Rat)
			rhs[z] = r
		}
		r.Add(r, v)
	}
	for p, v := range lambda {
		setRHS(p.Y, v)
	}
	for p, v := range delta {
		setRHS(p.Y, new(big.Rat).Neg(v))
		if p.X != 0 {
			setRHS(p.X, v)
		}
	}
	for z := bitset.Set(1); z <= full; z++ {
		row := rows[z]
		if row == nil {
			row = map[int]*big.Rat{}
		}
		b, ok := rhs[z]
		if !ok {
			b = new(big.Rat)
		}
		// Skip trivially satisfied empty rows with b ≤ 0.
		if len(row) == 0 && b.Sign() <= 0 {
			continue
		}
		prob.AddConstraint(row, lp.Ge, b)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("flow: no witness exists (LP %v): inequality is not a Shannon flow inequality", sol.Status)
	}
	w := NewWitness()
	for v, sv := range sigs {
		if sol.X[v].Sign() > 0 {
			w.Sigma[Sig(sv.s.Add(sv.i), sv.s.Add(sv.j))] = new(big.Rat).Set(sol.X[v])
		}
	}
	for v, mv := range mus {
		if sol.X[len(sigs)+v].Sign() > 0 {
			w.Mu[Pair{X: mv.x, Y: mv.x.Add(mv.i)}] = new(big.Rat).Set(sol.X[len(sigs)+v])
		}
	}
	return w, nil
}
