// Package hypergraph implements multi-hypergraphs, tree decompositions and
// the combinatorial machinery of Sections 2.1.3 and 7 of the paper:
// enumeration of the non-redundant, non-dominated tree decompositions TD(H)
// (via variable orderings, Proposition 2.9), GYO-based join-tree
// construction for acyclic schemas, and enumeration of minimal bag
// transversals (the inclusion-minimal images of the "bag selector" maps β of
// Lemma 7.12, which drive the submodular-width computation).
package hypergraph

import (
	"fmt"
	"sort"

	"panda/internal/bitset"
)

// Hypergraph is a multi-hypergraph H = ([n], E); Edges may repeat.
type Hypergraph struct {
	N     int
	Edges []bitset.Set
}

// New builds a hypergraph over n vertices with the given edges.
func New(n int, edges ...bitset.Set) *Hypergraph {
	return &Hypergraph{N: n, Edges: append([]bitset.Set(nil), edges...)}
}

// Vertices returns the full vertex set [n].
func (h *Hypergraph) Vertices() bitset.Set { return bitset.Full(h.N) }

// Restrict returns H_B = (B, {F ∩ B | F ∈ E}) per Definition 2.7, with
// empty intersections dropped.
func (h *Hypergraph) Restrict(b bitset.Set) *Hypergraph {
	r := &Hypergraph{N: h.N}
	for _, e := range h.Edges {
		if x := e.Intersect(b); x != 0 {
			r.Edges = append(r.Edges, x)
		}
	}
	return r
}

// CoversAll reports whether every vertex of [n] appears in some edge.
func (h *Hypergraph) CoversAll() bool {
	var u bitset.Set
	for _, e := range h.Edges {
		u = u.Union(e)
	}
	return u == bitset.Full(h.N)
}

// Decomposition is a tree decomposition: Bags[i] = χ(tᵢ) and Parent[i] is
// the index of the parent node (−1 for the root).
type Decomposition struct {
	Bags   []bitset.Set
	Parent []int
}

// Validate checks the two tree-decomposition properties of Definition 2.5:
// every edge is contained in some bag, and for every vertex the set of bags
// containing it forms a connected subtree.
func (d *Decomposition) Validate(h *Hypergraph) error {
	if len(d.Bags) == 0 {
		return fmt.Errorf("hypergraph: decomposition has no bags")
	}
	if len(d.Parent) != len(d.Bags) {
		return fmt.Errorf("hypergraph: %d bags but %d parent entries", len(d.Bags), len(d.Parent))
	}
	for _, e := range h.Edges {
		ok := false
		for _, b := range d.Bags {
			if e.SubsetOf(b) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("hypergraph: edge %v not covered by any bag", e)
		}
	}
	// Connectivity per vertex: count connected components of the induced
	// forest; must be exactly 1 for each vertex that occurs.
	for v := 0; v < h.N; v++ {
		components := 0
		for i, b := range d.Bags {
			if !b.Contains(v) {
				continue
			}
			p := d.Parent[i]
			if p == -1 || !d.Bags[p].Contains(v) {
				components++
			}
		}
		occurs := false
		for _, b := range d.Bags {
			if b.Contains(v) {
				occurs = true
			}
		}
		if occurs && components != 1 {
			return fmt.Errorf("hypergraph: vertex %d induces %d subtree components", v, components)
		}
	}
	return nil
}

// Width returns max over bags of g(bag) for a caller-supplied bag cost.
func (d *Decomposition) Width(g func(bitset.Set) float64) float64 {
	best := 0.0
	for _, b := range d.Bags {
		if w := g(b); w > best {
			best = w
		}
	}
	return best
}

// key returns a canonical identifier of the decomposition's bag set.
func (d *Decomposition) key() string {
	bags := bitset.Sorted(d.Bags)
	s := make([]byte, 0, 4*len(bags))
	for _, b := range bags {
		s = append(s, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	}
	return string(s)
}

// FromOrdering builds the tree decomposition induced by a variable
// elimination ordering (the standard construction referenced in
// Proposition 2.9), then removes redundant bags (bags contained in another
// bag are merged into it).
func (h *Hypergraph) FromOrdering(order []int) *Decomposition {
	n := h.N
	// Eliminate variables one at a time; bag of v = {v} ∪ current
	// neighborhood of v.
	edges := append([]bitset.Set(nil), h.Edges...)
	bags := make([]bitset.Set, 0, n)
	for _, v := range order {
		nb := bitset.Singleton(v)
		rest := edges[:0]
		for _, e := range edges {
			if e.Contains(v) {
				nb = nb.Union(e)
			} else {
				rest = append(rest, e)
			}
		}
		edges = append(rest, nb.Remove(v))
		bags = append(bags, nb)
	}
	// Parent of bag_i: the bag of the earliest-eliminated vertex among
	// bag_i \ {v_i} (standard clique-tree construction).
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	parent := make([]int, len(bags))
	for i := range bags {
		rem := bags[i].Remove(order[i])
		parent[i] = -1
		best := -1
		for _, u := range rem.Vars() {
			if best == -1 || pos[u] < best {
				best = pos[u]
			}
		}
		if best != -1 {
			parent[i] = best
		}
	}
	d := &Decomposition{Bags: bags, Parent: parent}
	return d.removeRedundant()
}

// removeRedundant merges bags that are subsets of a neighboring bag,
// producing a non-redundant decomposition with the same coverage.
func (d *Decomposition) removeRedundant() *Decomposition {
	bags := append([]bitset.Set(nil), d.Bags...)
	parent := append([]int(nil), d.Parent...)
	for {
		merged := false
		for i := range bags {
			if bags[i] == 0 {
				continue
			}
			p := parent[i]
			// Merge child into parent if subset (or vice versa).
			if p >= 0 && bags[p] != 0 {
				if bags[i].SubsetOf(bags[p]) {
					reparent(parent, i, p)
					bags[i] = 0
					merged = true
					continue
				}
				if bags[p].SubsetOf(bags[i]) {
					bags[p] = bags[i]
					reparent(parent, i, p)
					bags[i] = 0
					merged = true
					continue
				}
			}
		}
		if !merged {
			break
		}
	}
	// Compact.
	idx := map[int]int{}
	var nb []bitset.Set
	for i, b := range bags {
		if b != 0 {
			idx[i] = len(nb)
			nb = append(nb, b)
		}
	}
	np := make([]int, len(nb))
	for i, b := range bags {
		if b == 0 {
			continue
		}
		p := parent[i]
		for p >= 0 && bags[p] == 0 {
			p = parent[p]
		}
		if p < 0 {
			np[idx[i]] = -1
		} else {
			np[idx[i]] = idx[p]
		}
	}
	return &Decomposition{Bags: nb, Parent: np}
}

func reparent(parent []int, from, to int) {
	for j := range parent {
		if parent[j] == from {
			parent[j] = to
		}
	}
	if parent[from] == to {
		parent[from] = -1
	}
}

// maxOrderings bounds the factorial enumeration in AllDecompositions.
const maxOrderings = 500000

// AllDecompositions enumerates the set TD(H) of Section 2.1.3: tree
// decompositions arising from variable orderings, deduplicated by bag set,
// keeping only the refinement-minimal ones (a decomposition is dropped when
// a strictly finer one exists, i.e. one dominated by it in the sense of the
// paper; dropped decompositions are never preferable under any monotone
// cost, so minimax/maximin widths are unaffected).
func (h *Hypergraph) AllDecompositions() ([]*Decomposition, error) {
	n := h.N
	count := 1
	for i := 2; i <= n; i++ {
		count *= i
		if count > maxOrderings {
			return nil, fmt.Errorf("hypergraph: %d vertices yield too many orderings", n)
		}
	}
	seen := map[string]*Decomposition{}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			d := h.FromOrdering(order)
			seen[d.key()] = d
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)

	all := make([]*Decomposition, 0, len(seen))
	for _, d := range seen {
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key() < all[j].key() })

	// Keep only refinement-minimal decompositions: drop d when some other
	// d' ≠ d is dominated by d (every bag of d' fits in a bag of d) but d
	// is not dominated by d'.
	dominatedBy := func(d1, d2 *Decomposition) bool {
		for _, b1 := range d1.Bags {
			ok := false
			for _, b2 := range d2.Bags {
				if b1.SubsetOf(b2) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	var out []*Decomposition
	for i, d := range all {
		minimal := true
		for j, d2 := range all {
			if i == j {
				continue
			}
			if dominatedBy(d2, d) && !dominatedBy(d, d2) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, d)
		}
	}
	return out, nil
}

// JoinTree builds a join tree over the given relation schemas if they form
// an α-acyclic hypergraph, using GYO elimination. Parent[i] = −1 marks the
// root. Returns an error when the schema set is cyclic.
func JoinTree(schemas []bitset.Set) ([]int, error) {
	n := len(schemas)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	removed := make([]bool, n)
	remaining := n
	for remaining > 1 {
		progress := false
		for i := 0; i < n && remaining > 1; i++ {
			if removed[i] {
				continue
			}
			// Vertices of i appearing in other remaining schemas.
			var shared bitset.Set
			for j := 0; j < n; j++ {
				if j == i || removed[j] {
					continue
				}
				shared = shared.Union(schemas[i].Intersect(schemas[j]))
			}
			// i is an ear if its shared part fits inside a single other
			// remaining schema, which becomes its parent ("witness").
			for j := 0; j < n; j++ {
				if j == i || removed[j] {
					continue
				}
				if shared.SubsetOf(schemas[j]) {
					parent[i] = j
					removed[i] = true
					remaining--
					progress = true
					break
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("hypergraph: schemas are not α-acyclic")
		}
	}
	return parent, nil
}

// maxTransversals bounds the output of MinimalTransversals.
const maxTransversals = 20000

// MinimalTransversals enumerates the inclusion-minimal transversals of the
// given set family: sets (of element indices into universe) intersecting
// every family member. Elements are identified by position in universe.
// This realizes the inclusion-minimal images of the bag-selector maps β of
// Lemma 7.12: picking one bag per tree decomposition, minimized, which is
// exactly the collection B over which the submodular width maximizes.
func MinimalTransversals(universe []bitset.Set, family [][]int) ([][]int, error) {
	var out [][]int
	cur := []int{}
	covered := make([]bool, len(family))
	var rec func(fi int) error
	rec = func(fi int) error {
		for fi < len(family) && covered[fi] {
			fi++
		}
		if fi == len(family) {
			// Minimality check: every chosen element must uniquely cover
			// some family member.
			sel := map[int]bool{}
			for _, e := range cur {
				sel[e] = true
			}
			for _, e := range cur {
				unique := false
				for _, members := range family {
					cnt, hasE := 0, false
					for _, m := range members {
						if sel[m] {
							cnt++
							if m == e {
								hasE = true
							}
						}
					}
					if hasE && cnt == 1 {
						unique = true
						break
					}
				}
				if !unique {
					return nil // non-minimal
				}
			}
			key := append([]int(nil), cur...)
			sort.Ints(key)
			for _, prev := range out {
				if equalInts(prev, key) {
					return nil
				}
			}
			out = append(out, key)
			if len(out) > maxTransversals {
				return fmt.Errorf("hypergraph: more than %d minimal transversals", maxTransversals)
			}
			return nil
		}
		for _, e := range family[fi] {
			already := false
			for _, c := range cur {
				if c == e {
					already = true
					break
				}
			}
			if already {
				continue
			}
			cur = append(cur, e)
			// Mark family members newly covered by e.
			var marked []int
			for gi := fi; gi < len(family); gi++ {
				if covered[gi] {
					continue
				}
				for _, m := range family[gi] {
					if m == e {
						covered[gi] = true
						marked = append(marked, gi)
						break
					}
				}
			}
			if err := rec(fi + 1); err != nil {
				return err
			}
			for _, gi := range marked {
				covered[gi] = false
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
