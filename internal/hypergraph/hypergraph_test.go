package hypergraph

import (
	"math/rand"
	"sort"
	"testing"

	"panda/internal/bitset"
)

// fourCycle is the running-example query of the paper (Example 1.2):
// R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1) with vertices 0..3.
func fourCycle() *Hypergraph {
	return New(4,
		bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3), bitset.Of(3, 0))
}

func triangle() *Hypergraph {
	return New(3, bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(0, 2))
}

func TestRestrict(t *testing.T) {
	h := fourCycle()
	r := h.Restrict(bitset.Of(0, 1, 2))
	want := []bitset.Set{bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2), bitset.Of(0)}
	if len(r.Edges) != len(want) {
		t.Fatalf("Restrict edges = %v", r.Edges)
	}
	for i := range want {
		if r.Edges[i] != want[i] {
			t.Fatalf("Restrict edges = %v, want %v", r.Edges, want)
		}
	}
}

func TestFromOrderingValid(t *testing.T) {
	h := fourCycle()
	d := h.FromOrdering([]int{0, 1, 2, 3})
	if err := d.Validate(h); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestFourCycleTreeDecompositions reproduces Figure 2: the 4-cycle has
// exactly two non-dominated tree decompositions, with bag sets
// {A1A2A3, A3A4A1} and {A2A3A4, A4A1A2}.
func TestFourCycleTreeDecompositions(t *testing.T) {
	h := fourCycle()
	tds, err := h.AllDecompositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 2 {
		for _, d := range tds {
			t.Logf("bags: %v", d.Bags)
		}
		t.Fatalf("got %d decompositions, want 2 (Figure 2)", len(tds))
	}
	var keys []string
	for _, d := range tds {
		if err := d.Validate(h); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		bags := bitset.Sorted(d.Bags)
		if len(bags) != 2 {
			t.Fatalf("decomposition has %d bags, want 2: %v", len(bags), bags)
		}
		keys = append(keys, bags[0].String()+"|"+bags[1].String())
	}
	sort.Strings(keys)
	// Tree 1: {A1,A2,A3} and {A3,A4,A1}; Tree 2: {A2,A3,A4} and {A4,A1,A2}.
	want := []string{"A0A1A2|A0A2A3", "A0A1A3|A1A2A3"}
	if keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("decompositions = %v, want %v", keys, want)
	}
}

func TestTriangleDecompositions(t *testing.T) {
	h := triangle()
	tds, err := h.AllDecompositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 1 || len(tds[0].Bags) != 1 || tds[0].Bags[0] != bitset.Of(0, 1, 2) {
		t.Fatalf("triangle should have the single trivial decomposition, got %+v", tds)
	}
}

// TestSixCycleDecompositionCount checks the Catalan-number claim of
// Proposition 2.9: minimal non-redundant tree decompositions of an n-cycle
// correspond to triangulations of an n-gon, Catalan(n−2) many. For n=6
// that is C(4) = 14.
func TestSixCycleDecompositionCount(t *testing.T) {
	h := New(6,
		bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3),
		bitset.Of(3, 4), bitset.Of(4, 5), bitset.Of(5, 0))
	tds, err := h.AllDecompositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 14 {
		t.Fatalf("6-cycle has %d minimal decompositions, want Catalan(4) = 14", len(tds))
	}
	for _, d := range tds {
		if err := d.Validate(h); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if len(d.Bags) != 4 {
			t.Fatalf("triangulation should have 4 triangles, got %v", d.Bags)
		}
		for _, b := range d.Bags {
			if b.Card() != 3 {
				t.Fatalf("non-triangle bag %v", b)
			}
		}
	}
}

func TestWidth(t *testing.T) {
	d := &Decomposition{Bags: []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(2, 3)}, Parent: []int{-1, 0}}
	w := d.Width(func(b bitset.Set) float64 { return float64(b.Card()) })
	if w != 3 {
		t.Fatalf("Width = %v, want 3", w)
	}
}

func TestJoinTreeAcyclic(t *testing.T) {
	// A path schema is acyclic.
	schemas := []bitset.Set{bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3)}
	parent, err := JoinTree(schemas)
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	for i, p := range parent {
		if p == -1 {
			roots++
		} else if p == i {
			t.Fatalf("self-parent at %d", i)
		}
	}
	if roots != 1 {
		t.Fatalf("join tree has %d roots, want 1: %v", roots, parent)
	}
}

func TestJoinTreeCyclic(t *testing.T) {
	if _, err := JoinTree(triangle().Edges); err == nil {
		t.Fatal("triangle schemas should not have a join tree")
	}
	if _, err := JoinTree(fourCycle().Edges); err == nil {
		t.Fatal("4-cycle schemas should not have a join tree")
	}
}

func TestJoinTreeBags(t *testing.T) {
	// Bags of a 4-cycle tree decomposition are acyclic.
	schemas := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(0, 2, 3)}
	parent, err := JoinTree(schemas)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent) != 2 {
		t.Fatalf("parent = %v", parent)
	}
}

// TestMinimalTransversalsFourCycle reproduces the four disjunctive rules of
// Example 1.10: the minimal transversals of the two tree decompositions'
// bag sets are the four pairs {123,341}×{234,412}.
func TestMinimalTransversalsFourCycle(t *testing.T) {
	// Universe: bag 0 = A1A2A3, 1 = A3A4A1, 2 = A2A3A4, 3 = A4A1A2.
	universe := []bitset.Set{
		bitset.Of(0, 1, 2), bitset.Of(0, 2, 3), bitset.Of(1, 2, 3), bitset.Of(0, 1, 3),
	}
	family := [][]int{{0, 1}, {2, 3}} // one bag from each decomposition
	ts, err := MinimalTransversals(universe, family)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d transversals, want 4: %v", len(ts), ts)
	}
	for _, tr := range ts {
		if len(tr) != 2 {
			t.Fatalf("transversal %v should have 2 elements", tr)
		}
	}
}

func TestMinimalTransversalsSharedBag(t *testing.T) {
	// When one element hits every family member, it is the unique minimal
	// transversal of size 1 (and supersets are pruned).
	family := [][]int{{0, 1}, {0, 2}}
	ts, err := MinimalTransversals(nil, family)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"[0]": true, "[1 2]": true}
	if len(ts) != 2 {
		t.Fatalf("transversals = %v, want {0} and {1,2}", ts)
	}
	for _, tr := range ts {
		s := intsKey(tr)
		if !want[s] {
			t.Fatalf("unexpected transversal %v", tr)
		}
	}
}

func intsKey(a []int) string {
	s := "["
	for i, v := range a {
		if i > 0 {
			s += " "
		}
		s += string(rune('0' + v))
	}
	return s + "]"
}

func TestCoversAll(t *testing.T) {
	if !fourCycle().CoversAll() {
		t.Fatal("4-cycle covers all vertices")
	}
	if New(3, bitset.Of(0, 1)).CoversAll() {
		t.Fatal("vertex 2 is uncovered")
	}
}

// Property test: decompositions built from random orderings of random
// connected hypergraphs always validate.
func TestRandomOrderingsProduceValidDecompositions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(4)
		var edges []bitset.Set
		// A spanning path guarantees every vertex is covered.
		for v := 0; v+1 < n; v++ {
			edges = append(edges, bitset.Of(v, v+1))
		}
		for k := 0; k < rng.Intn(4); k++ {
			var e bitset.Set
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					e = e.Add(v)
				}
			}
			if e.Card() >= 2 {
				edges = append(edges, e)
			}
		}
		h := New(n, edges...)
		order := rng.Perm(n)
		d := h.FromOrdering(order)
		if err := d.Validate(h); err != nil {
			t.Fatalf("trial %d: %v (order %v, edges %v)", trial, err, order, edges)
		}
	}
}
