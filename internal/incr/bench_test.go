package incr

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/workload"
)

// BenchmarkIncrementalMaintain prices one semi-naive maintenance round
// against the full re-execution it replaces, on the triangle at growing
// base sizes with a fixed small delta. The gap is the whole point of the
// standing-query tier: maintenance cost tracks the delta and its join
// neighborhood, full re-execution tracks the base data — the CI bench job
// asserts maintain is ≥5× cheaper at the largest size.
func BenchmarkIncrementalMaintain(b *testing.B) {
	const deltaRows = 16
	for _, n := range []int{512, 2048, 8192} {
		q := workload.TriangleQuery()
		var dcs []query.DegreeConstraint
		for i, a := range q.Atoms {
			dcs = append(dcs, query.Cardinality(a.Vars, int64(n+deltaRows), i))
		}
		p, _, err := plan.Prepare(q, dcs, plan.ModeFull)
		if err != nil {
			b.Fatal(err)
		}
		exec := &core.Executor{}
		s := &q.Schema

		// Base data: n random edges per relation over a domain dense enough
		// that the full join does real work.
		const dom = 256
		rng := rand.New(rand.NewSource(97))
		full := query.NewInstance(s)
		fill := func(r *relation.Relation, rows int) *relation.Relation {
			d := relation.New("Δ"+r.Name, r.Attrs())
			for k := 0; k < rows; {
				row := []relation.Value{relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))}
				if r.Contains(row) {
					continue
				}
				r.Insert(row)
				d.Insert(row)
				k++
			}
			return d
		}
		for _, r := range full.Relations {
			fill(r, n)
		}
		// The delta: deltaRows fresh rows per relation, already appended to
		// full (Maintain's contract — full is the NEW instance).
		deltas := make([]*relation.Relation, len(s.Atoms))
		for i, r := range full.Relations {
			deltas[i] = fill(r, deltaRows)
		}

		ctx := context.Background()
		b.Run(fmt.Sprintf("n=%d/maintain", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Maintain(ctx, exec, p, s, full, deltas); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/full", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Execute(ctx, p, full); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
