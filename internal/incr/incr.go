// Package incr implements semi-naive incremental maintenance for prepared
// conjunctive plans over insert-only deltas.
//
// For a monotone conjunctive query Q = π_F(R_1 ⋈ … ⋈ R_k), any output
// tuple that is new after inserts uses at least one newly inserted row at
// some atom position i. So the new outputs are covered by the union over i
// of Q evaluated on the "mixed" instance that restricts atom i to its
// delta Δ_i and leaves every other atom at its full NEW extension:
//
//	Q(I_new) \ Q(I_old)  ⊆  ⋃_i Q(R_1', …, Δ_i, …, R_k')
//
// and every mixed result is a subset of Q(I_new), so dedup-merging the
// union into the old materialization reproduces Q(I_new) exactly — without
// ever re-executing over the full instance. Each non-delta atom is further
// semijoin-reduced against Δ_i on shared variables (sound: the atom's
// support row in any output tuple agrees with a Δ_i row on exactly those
// variables), which makes a maintenance round cost proportional to the
// delta and its join neighborhood instead of the total data size.
//
// The plan is treated as immutable and is NOT re-prepared: maintenance
// executes the same pinned plan the standing query was planned with, so a
// maintenance round performs zero LP solves. Executing a plan whose
// cardinality constraints are stale is sound — PANDA's model-hood is
// data-independent; the constraints only govern the runtime bound — which
// the parity tests pin down.
//
// Insert-only soundness is the contract: deletions and relation
// drop/recreate are outside this package and must be handled by the caller
// with a full re-execution and a materialization reset.
package incr

import (
	"context"
	"fmt"

	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

// Round is the outcome of one maintenance round.
type Round struct {
	// Delta holds the candidate new output tuples, projected onto the
	// plan's free variables; nil when the plan is Boolean (no output
	// relation) or when no atom had a delta. Tuples already present in the
	// caller's materialization are included — the caller's dedup-merge
	// decides what is genuinely new.
	Delta *relation.Relation
	// NonEmpty reports whether any mixed execution produced tuples; for
	// Boolean plans this is the semi-naive increment of the OK answer
	// (OK_new = OK_old ∨ NonEmpty).
	NonEmpty bool
	// AtomsExecuted counts the mixed-instance plan executions performed
	// (atoms whose delta was non-empty).
	AtomsExecuted int
	// Partitions sums the data-parallel fan-out of the round's mixed
	// executions: each execution contributes the partition count it runs
	// with (the executor's explicit setting, else the hint carried by the
	// mixed instance) when that count exceeds 1. 0 means every execution
	// ran unpartitioned.
	Partitions int
}

// Maintain runs one semi-naive maintenance round: full is the bound NEW
// instance (deltas already appended), deltas[i] the per-atom delta relation
// (nil or empty to skip atom i; same schema as full.Relations[i]). The
// prepared plan p must belong to the schema s and is executed as-is — no
// replanning, no LP solves.
func Maintain(ctx context.Context, exec *core.Executor, p *plan.Plan, s *query.Schema, full *query.Instance, deltas []*relation.Relation) (*Round, error) {
	if len(full.Relations) != len(s.Atoms) || len(deltas) != len(s.Atoms) {
		return nil, fmt.Errorf("incr: instance has %d relations and %d deltas for %d atoms",
			len(full.Relations), len(deltas), len(s.Atoms))
	}
	round := &Round{}
	for i, d := range deltas {
		if d == nil || d.Size() == 0 {
			continue
		}
		mixed := &query.Instance{Relations: make([]*relation.Relation, len(s.Atoms))}
		for j, r := range full.Relations {
			switch {
			case j == i:
				mixed.Relations[j] = d
			case r.Attrs().Intersect(d.Attrs()) != 0:
				// Only rows agreeing with some delta row on the shared
				// variables can support a new output tuple.
				mixed.Relations[j] = r.Semijoin(d)
			default:
				mixed.Relations[j] = r
			}
			// Delta and semijoined relations are freshly built and would
			// otherwise carry no partition hint, leaving every mixed
			// execution unpartitioned no matter how large the delta round
			// is: thread the source relation's hint through so hint-driven
			// data-parallel fan-out applies to maintenance like it does to
			// one-shot queries.
			if mixed.Relations[j] != r {
				mixed.Relations[j].SetPartitionHint(r.PartitionHint())
			}
		}
		if k := exec.Partitions; k > 1 {
			round.Partitions += k
		} else if k == 0 {
			if h := query.PartitionHint(mixed); h > 1 {
				round.Partitions += h
			}
		}
		ex, err := exec.Execute(ctx, p, mixed)
		if err != nil {
			return nil, err
		}
		round.AtomsExecuted++
		round.NonEmpty = round.NonEmpty || ex.NonEmpty
		out := ex.Out
		if out != nil && p.Free != 0 && p.Free != out.Attrs() {
			out = out.Project(p.Free)
		}
		if out == nil {
			continue
		}
		if round.Delta == nil {
			round.Delta = relation.New("Δ"+s.Atoms[0].Name, out.Attrs())
		}
		round.Delta.InsertAll(out)
	}
	return round, nil
}
