package incr

import (
	"context"
	"math/rand"
	"testing"

	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/workload"
)

// run executes the plan over an instance and returns the output projected
// onto the free variables — the reference a maintained materialization must
// match exactly.
func run(t *testing.T, exec *core.Executor, p *plan.Plan, ins *query.Instance) (*relation.Relation, bool) {
	t.Helper()
	ex, err := exec.Execute(context.Background(), p, ins)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.Out
	if out != nil && p.Free != 0 && p.Free != out.Attrs() {
		out = out.Project(p.Free)
	}
	return out, ex.NonEmpty
}

// maintainParity grows an instance batch by batch, maintains a
// materialization with semi-naive rounds against the pinned plan, and
// checks it equals a from-scratch execution after every batch.
func maintainParity(t *testing.T, q *query.Conjunctive, mode plan.Mode, seed int64) {
	t.Helper()
	p, _, err := plan.Prepare(q, testConstraints(q), mode)
	if err != nil {
		t.Fatal(err)
	}
	exec := &core.Executor{}
	s := &q.Schema
	full := query.NewInstance(s)

	// Seed data, then the initial materialization from one full run.
	rng := rand.New(rand.NewSource(seed))
	insertRandom(rng, full, nil, 20)
	mat, ok := run(t, exec, p, full)

	for batch := 0; batch < 6; batch++ {
		deltas := make([]*relation.Relation, len(s.Atoms))
		for i, a := range s.Atoms {
			deltas[i] = relation.New("Δ"+a.Name, a.Vars)
		}
		insertRandom(rng, full, deltas, 5+rng.Intn(8))
		round, err := Maintain(context.Background(), exec, p, s, full, deltas)
		if err != nil {
			t.Fatal(err)
		}
		if round.Delta != nil {
			if mat == nil {
				mat = relation.New("mat", round.Delta.Attrs())
			}
			for _, row := range round.Delta.Rows() {
				mat.Insert(row)
			}
		}
		ok = ok || round.NonEmpty

		want, wantOK := run(t, exec, p, full)
		if want == nil {
			if ok != wantOK {
				t.Fatalf("batch %d: maintained OK=%v, full run OK=%v", batch, ok, wantOK)
			}
			continue
		}
		if mat == nil || !mat.Equal(want) {
			got := 0
			if mat != nil {
				got = mat.Size()
			}
			t.Fatalf("batch %d: maintained %d rows, full run %d rows", batch, got, want.Size())
		}
		if ok != wantOK {
			t.Fatalf("batch %d: maintained OK=%v, full run OK=%v", batch, ok, wantOK)
		}
	}
}

// testConstraints derives per-atom cardinality constraints large enough for
// the whole growth run, so the pinned plan stays within its declared
// bounds; staleness of the exact values is part of what the parity asserts.
func testConstraints(q *query.Conjunctive) []query.DegreeConstraint {
	var dcs []query.DegreeConstraint
	for i, a := range q.Atoms {
		dcs = append(dcs, query.Cardinality(a.Vars, 1024, i))
	}
	return dcs
}

// insertRandom inserts n random tuples into every relation of full (set
// semantics) and records the genuinely new rows in deltas when non-nil.
func insertRandom(rng *rand.Rand, full *query.Instance, deltas []*relation.Relation, n int) {
	for i, r := range full.Relations {
		arity := r.Attrs().Card()
		for k := 0; k < n; k++ {
			row := make([]relation.Value, arity)
			for j := range row {
				row[j] = relation.Value(rng.Intn(6))
			}
			if r.Contains(row) {
				continue
			}
			r.Insert(row)
			if deltas != nil {
				deltas[i].Insert(row)
			}
		}
	}
}

func TestMaintainParityTriangleFull(t *testing.T) {
	maintainParity(t, workload.TriangleQuery(), plan.ModeFull, 1)
}

func TestMaintainParityTriangleProjection(t *testing.T) {
	q := workload.TriangleQuery()
	q.Free = q.Atoms[0].Vars // π_{A,B} of the triangle
	maintainParity(t, q, plan.ModeAuto, 2)
}

func TestMaintainParityFourCycleFhtw(t *testing.T) {
	q := workload.FourCycleQuery()
	maintainParity(t, q, plan.ModeFhtw, 3)
}

func TestMaintainParityFourCycleSubw(t *testing.T) {
	q := workload.FourCycleQuery()
	maintainParity(t, q, plan.ModeSubw, 4)
}

func TestMaintainParityBooleanFourCycle(t *testing.T) {
	maintainParity(t, workload.BooleanFourCycle(), plan.ModeAuto, 5)
}

// TestMaintainSkipsEmptyDeltas pins the fast path: a round with no deltas
// executes nothing.
func TestMaintainSkipsEmptyDeltas(t *testing.T) {
	q := workload.TriangleQuery()
	p, _, err := plan.Prepare(q, testConstraints(q), plan.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	full := query.NewInstance(&q.Schema)
	deltas := make([]*relation.Relation, len(q.Atoms))
	round, err := Maintain(context.Background(), &core.Executor{}, p, &q.Schema, full, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if round.AtomsExecuted != 0 || round.Delta != nil || round.NonEmpty {
		t.Fatalf("empty round executed %d atoms, delta %v", round.AtomsExecuted, round.Delta)
	}
}

// TestMaintainThreadsPartitionHints pins the hint plumbing: the delta and
// semijoined relations a maintenance round builds are fresh, so without
// explicit threading they would carry no partition hint and every mixed
// execution would run unpartitioned regardless of how the catalog is
// configured. With hints on the full relations the round must fan out
// (observable as per-partition engine runs) and still produce exactly the
// delta of the unhinted round.
func TestMaintainThreadsPartitionHints(t *testing.T) {
	q := workload.TriangleQuery()
	p, _, err := plan.Prepare(q, testConstraints(q), plan.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	s := &q.Schema

	build := func(hint int) (*query.Instance, []*relation.Relation) {
		rng := rand.New(rand.NewSource(11))
		full := query.NewInstance(s)
		insertRandom(rng, full, nil, 40)
		deltas := make([]*relation.Relation, len(s.Atoms))
		for i, a := range s.Atoms {
			deltas[i] = relation.New("Δ"+a.Name, a.Vars)
		}
		insertRandom(rng, full, deltas, 12)
		for _, r := range full.Relations {
			r.SetPartitionHint(hint)
		}
		return full, deltas
	}

	fullPlain, deltasPlain := build(0)
	plain, err := Maintain(context.Background(), &core.Executor{}, p, s, fullPlain, deltasPlain)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Partitions != 0 {
		t.Fatalf("unhinted round ran %d partitioned executions, want 0", plain.Partitions)
	}

	fullHint, deltasHint := build(3)
	hinted, err := Maintain(context.Background(), &core.Executor{}, p, s, fullHint, deltasHint)
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Partitions == 0 {
		t.Fatal("hinted round ran no partitioned executions: hints were not threaded to the mixed instances")
	}
	if hinted.NonEmpty != plain.NonEmpty || hinted.AtomsExecuted != plain.AtomsExecuted {
		t.Fatalf("hinted round diverged: NonEmpty %v/%v, atoms %d/%d",
			hinted.NonEmpty, plain.NonEmpty, hinted.AtomsExecuted, plain.AtomsExecuted)
	}
	switch {
	case plain.Delta == nil:
		if hinted.Delta != nil && hinted.Delta.Size() > 0 {
			t.Fatal("hinted round produced a delta the unhinted round did not")
		}
	case hinted.Delta == nil || !hinted.Delta.Equal(plain.Delta):
		t.Fatal("hinted round's delta differs from the unhinted round's")
	}
}
