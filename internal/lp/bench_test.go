package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

// BenchmarkSimplexFractionalCover solves a mid-size covering LP.
func BenchmarkSimplexFractionalCover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const vars, rows = 30, 25
	one := big.NewRat(1, 1)
	build := func() *Problem {
		p := NewProblem(vars, false)
		for j := 0; j < vars; j++ {
			p.SetObj(j, big.NewRat(int64(1+rng.Intn(4)), 1))
		}
		for i := 0; i < rows; i++ {
			c := map[int]*big.Rat{i % vars: one}
			for j := 0; j < vars; j++ {
				if rng.Intn(3) == 0 {
					c[j] = one
				}
			}
			p.AddConstraint(c, Ge, one)
		}
		return p
	}
	probs := make([]*Problem, 8)
	for i := range probs {
		probs[i] = build()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := probs[i%len(probs)].Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", sol, err)
		}
	}
}

// BenchmarkSimplexPolymatroidShape mimics the structure of the maximin LPs
// (many ±1 columns, equality coupling rows) to track the exact-arithmetic
// cost.
func BenchmarkSimplexPolymatroidShape(b *testing.B) {
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	const vars = 120
	p := NewProblem(vars, false)
	for j := 0; j < vars; j++ {
		p.SetObj(j, big.NewRat(int64(1+j%5), int64(1+j%3)))
	}
	// Coupling equalities x_{2i} = x_{2i+1} plus a covering row.
	for i := 0; i+1 < vars; i += 2 {
		p.AddConstraint(map[int]*big.Rat{i: one, i + 1: negOne}, Eq, new(big.Rat))
	}
	cover := map[int]*big.Rat{}
	for j := 0; j < vars; j++ {
		cover[j] = one
	}
	p.AddConstraint(cover, Ge, big.NewRat(10, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", sol, err)
		}
	}
}
