// Package lp implements an exact linear-programming solver over rational
// numbers (math/big.Rat) using the two-phase primal simplex method with
// Bland's anti-cycling rule.
//
// Exactness matters here: the Shannon-flow machinery of the paper (Section 5)
// turns optimal *dual* solutions of polymatroid linear programs into Farkas
// witnesses (Proposition 5.4) and then into proof sequences (Theorem 5.9),
// and those constructions require exact rational arithmetic — a common
// denominator D of all dual values drives the algorithm. Floating point would
// break both feasibility checks and termination arguments.
//
// The solver returns both a primal optimal solution and an exact dual
// solution satisfying strong duality, which callers use as witnesses.
package lp

import (
	"fmt"
	"math/big"
)

// Sense is the relation of a constraint row.
type Sense int

// Constraint senses.
const (
	Le Sense = iota // Σ aj·xj ≤ b
	Ge              // Σ aj·xj ≥ b
	Eq              // Σ aj·xj = b
)

func (s Sense) String() string {
	switch s {
	case Le:
		return "≤"
	case Ge:
		return "≥"
	default:
		return "="
	}
}

// Constraint is a single sparse row Σ_j Coef[j]·x_j  Sense  RHS.
type Constraint struct {
	Coef  map[int]*big.Rat
	Sense Sense
	RHS   *big.Rat
}

// Problem is a linear program over variables x_0 … x_{NumVars−1} ≥ 0.
type Problem struct {
	NumVars  int
	Maximize bool
	Obj      map[int]*big.Rat // sparse objective; missing entries are 0
	Cons     []Constraint
}

// NewProblem returns an empty problem with n non-negative variables.
func NewProblem(n int, maximize bool) *Problem {
	return &Problem{NumVars: n, Maximize: maximize, Obj: map[int]*big.Rat{}}
}

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c *big.Rat) { p.Obj[j] = new(big.Rat).Set(c) }

// AddConstraint appends a constraint with the given sparse coefficients.
// The coefficient map is copied.
func (p *Problem) AddConstraint(coef map[int]*big.Rat, sense Sense, rhs *big.Rat) int {
	cp := make(map[int]*big.Rat, len(coef))
	for j, c := range coef {
		if c.Sign() != 0 {
			cp[j] = new(big.Rat).Set(c)
		}
	}
	p.Cons = append(p.Cons, Constraint{Coef: cp, Sense: sense, RHS: new(big.Rat).Set(rhs)})
	return len(p.Cons) - 1
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution holds an exact optimal solution.
//
// Dual[i] is the multiplier of constraint i, signed so that
// Σ_i Dual[i]·RHS_i equals Objective (strong duality holds exactly). For a
// maximization problem Dual[i] ≥ 0 on ≤ rows and ≤ 0 on ≥ rows; for a
// minimization problem the signs flip (≥ rows carry Dual[i] ≥ 0).
type Solution struct {
	Status    Status
	Objective *big.Rat
	X         []*big.Rat
	Dual      []*big.Rat
}

// tableau is the working state of the simplex method.
type tableau struct {
	rows     [][]*big.Rat // m active rows, each of length cols+1 (last = rhs)
	m        int          // number of rows
	cols     int          // number of columns excluding rhs
	basis    []int        // basic variable per row
	active   []bool       // rows still active (false = redundant, removed)
	art      []bool       // per column: is artificial
	nStruct  int          // structural variable count
	initBase []int        // initial basis column of each row (slack or artificial)
	sigma    []int        // ±1 sign applied to each original row
}

var ratOne = big.NewRat(1, 1)

// Solve runs two-phase simplex and returns an exact optimal solution, or a
// solution whose Status reports infeasibility/unboundedness.
func (p *Problem) Solve() (*Solution, error) {
	if p.NumVars < 0 {
		return nil, fmt.Errorf("lp: negative variable count %d", p.NumVars)
	}
	t := p.build()

	// Phase 1: maximize −Σ artificials. Reduced-cost row for the phase-1
	// objective: r_j = Σ_{rows with artificial basic} −T[i][j] − c1_j.
	needPhase1 := false
	for i := 0; i < t.m; i++ {
		if t.art[t.basis[i]] {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		c1 := make([]*big.Rat, t.cols)
		for j := 0; j < t.cols; j++ {
			if t.art[j] {
				c1[j] = new(big.Rat).Neg(ratOne)
			} else {
				c1[j] = new(big.Rat)
			}
		}
		r, z := t.reducedCosts(c1)
		if err := t.iterate(r, z, false, nil); err != nil {
			return nil, err
		}
		if z.Sign() < 0 {
			return &Solution{Status: Infeasible}, nil
		}
		t.pivotOutArtificials()
	}

	// Phase 2 objective (always maximize internally).
	c2 := make([]*big.Rat, t.cols)
	for j := 0; j < t.cols; j++ {
		c2[j] = new(big.Rat)
	}
	for j, c := range p.Obj {
		if j < 0 || j >= p.NumVars {
			return nil, fmt.Errorf("lp: objective variable %d out of range", j)
		}
		if p.Maximize {
			c2[j].Set(c)
		} else {
			c2[j].Neg(c)
		}
	}
	r, z := t.reducedCosts(c2)
	unbounded := false
	if err := t.iterate(r, z, true, func() { unbounded = true }); err != nil {
		return nil, err
	}
	if unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	sol := &Solution{Status: Optimal, Objective: new(big.Rat).Set(z)}
	if !p.Maximize {
		sol.Objective.Neg(sol.Objective)
	}
	sol.X = make([]*big.Rat, p.NumVars)
	for j := range sol.X {
		sol.X[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		if b := t.basis[i]; b < t.nStruct {
			sol.X[b].Set(t.rows[i][t.cols])
		}
	}
	// Dual values: w_i = reduced cost under the initial basis column of row
	// i (its cost coefficient is 0 in phase 2), then undo the row sign and
	// the min→max objective flip.
	sol.Dual = make([]*big.Rat, len(p.Cons))
	for i := range p.Cons {
		d := new(big.Rat)
		if t.active[i] {
			d.Set(r[t.initBase[i]])
			if t.sigma[i] < 0 {
				d.Neg(d)
			}
			if !p.Maximize {
				d.Neg(d)
			}
		}
		sol.Dual[i] = d
	}
	return sol, nil
}

// build canonicalizes the problem into equality form with slacks/surpluses
// and artificials, every row having non-negative RHS and the identity as the
// initial basis.
func (p *Problem) build() *tableau {
	m := len(p.Cons)
	t := &tableau{
		m:        m,
		nStruct:  p.NumVars,
		basis:    make([]int, m),
		active:   make([]bool, m),
		initBase: make([]int, m),
		sigma:    make([]int, m),
	}
	type rowPlan struct {
		needSlack    bool // +1 slack (≤ after canonicalization)
		needSurplus  bool // −1 surplus (≥ after canonicalization)
		needArtifice bool
	}
	plans := make([]rowPlan, m)
	sense := make([]Sense, m)
	for i, c := range p.Cons {
		t.sigma[i] = 1
		t.active[i] = true
		s := c.Sense
		neg := false
		if s == Ge { // flip to ≤
			neg, s = true, Le
		}
		rhsNeg := c.RHS.Sign() < 0
		if neg {
			rhsNeg = c.RHS.Sign() > 0
		}
		if rhsNeg { // flip sign to make RHS ≥ 0
			neg = !neg
			if s == Le {
				s = Ge
			}
		}
		if neg {
			t.sigma[i] = -1
		}
		sense[i] = s
		switch s {
		case Le:
			plans[i].needSlack = true
		case Ge:
			plans[i].needSurplus = true
			plans[i].needArtifice = true
		case Eq:
			plans[i].needArtifice = true
		}
	}
	// Column layout: structural | slack/surplus | artificial.
	nSlack := 0
	for _, pl := range plans {
		if pl.needSlack || pl.needSurplus {
			nSlack++
		}
	}
	nArt := 0
	for _, pl := range plans {
		if pl.needArtifice {
			nArt++
		}
	}
	t.cols = p.NumVars + nSlack + nArt
	t.art = make([]bool, t.cols)
	for j := p.NumVars + nSlack; j < t.cols; j++ {
		t.art[j] = true
	}
	t.rows = make([][]*big.Rat, m)
	slackAt, artAt := p.NumVars, p.NumVars+nSlack
	for i, c := range p.Cons {
		row := make([]*big.Rat, t.cols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for j, v := range c.Coef {
			if t.sigma[i] > 0 {
				row[j].Set(v)
			} else {
				row[j].Neg(v)
			}
		}
		if t.sigma[i] > 0 {
			row[t.cols].Set(c.RHS)
		} else {
			row[t.cols].Neg(c.RHS)
		}
		pl := plans[i]
		if pl.needSlack {
			row[slackAt].SetInt64(1)
			t.basis[i], t.initBase[i] = slackAt, slackAt
			slackAt++
		}
		if pl.needSurplus {
			row[slackAt].SetInt64(-1)
			slackAt++
		}
		if pl.needArtifice {
			row[artAt].SetInt64(1)
			t.basis[i], t.initBase[i] = artAt, artAt
			artAt++
		}
		t.rows[i] = row
	}
	return t
}

// reducedCosts computes r_j = c_B·B⁻¹·A_j − c_j for every column of the
// current tableau along with the objective value z = c_B·B⁻¹·b.
func (t *tableau) reducedCosts(c []*big.Rat) ([]*big.Rat, *big.Rat) {
	r := make([]*big.Rat, t.cols)
	for j := range r {
		r[j] = new(big.Rat).Neg(c[j])
	}
	z := new(big.Rat)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		cb := c[t.basis[i]]
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			if t.rows[i][j].Sign() != 0 {
				r[j].Add(r[j], tmp.Mul(cb, t.rows[i][j]))
			}
		}
		z.Add(z, tmp.Mul(cb, t.rows[i][t.cols]))
	}
	return r, z
}

// iterate runs simplex pivots until optimal (all reduced costs ≥ 0) or
// unbounded. The reduced-cost row r and objective z are updated in place.
// When barArtificial is set, artificial columns may not enter the basis
// (phase 2). onUnbounded, if non-nil, is invoked instead of returning an
// error.
func (t *tableau) iterate(r []*big.Rat, z *big.Rat, barArtificial bool, onUnbounded func()) error {
	maxIter := 50000 + 200*(t.m+t.cols)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return fmt.Errorf("lp: simplex exceeded %d iterations (cycling?)", maxIter)
		}
		// Bland's rule: entering = smallest index with negative reduced
		// cost. (Dantzig's most-negative rule was measured to blow up
		// rational coefficient sizes on the polymatroid LPs; Bland keeps
		// fill-in small and guarantees termination.)
		enter := -1
		for j := 0; j < t.cols; j++ {
			if barArtificial && t.art[j] {
				continue
			}
			if r[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Leaving: min ratio rhs/col over positive col entries; ties broken
		// by smallest basis variable index (Bland).
		leave := -1
		best := new(big.Rat)
		ratio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.rows[i][enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rows[i][t.cols], t.rows[i][enter])
			if leave == -1 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best.Set(ratio)
			}
		}
		if leave == -1 {
			if onUnbounded != nil {
				onUnbounded()
				return nil
			}
			return fmt.Errorf("lp: unbounded")
		}
		t.pivot(leave, enter, r, z)
	}
}

// pivot makes column enter basic in row leave, updating all rows and the
// reduced-cost row.
func (t *tableau) pivot(leave, enter int, r []*big.Rat, z *big.Rat) {
	prow := t.rows[leave]
	pval := new(big.Rat).Set(prow[enter])
	inv := new(big.Rat).Inv(pval)
	for j := 0; j <= t.cols; j++ {
		if prow[j].Sign() != 0 {
			prow[j].Mul(prow[j], inv)
		}
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == leave || !t.active[i] {
			continue
		}
		f := t.rows[i][enter]
		if f.Sign() == 0 {
			continue
		}
		fv := new(big.Rat).Set(f)
		row := t.rows[i]
		for j := 0; j <= t.cols; j++ {
			if prow[j].Sign() != 0 {
				row[j].Sub(row[j], tmp.Mul(fv, prow[j]))
			}
		}
	}
	if r != nil {
		f := new(big.Rat).Set(r[enter])
		if f.Sign() != 0 {
			for j := 0; j < t.cols; j++ {
				if prow[j].Sign() != 0 {
					r[j].Sub(r[j], tmp.Mul(f, prow[j]))
				}
			}
			z.Sub(z, tmp.Mul(f, prow[t.cols]))
		}
	}
	t.basis[leave] = enter
}

// pivotOutArtificials removes artificial variables left basic at value zero
// after phase 1, either by pivoting a non-artificial column in or by marking
// the row redundant.
func (t *tableau) pivotOutArtificials() {
	for i := 0; i < t.m; i++ {
		if !t.active[i] || !t.art[t.basis[i]] {
			continue
		}
		pivCol := -1
		for j := 0; j < t.cols; j++ {
			if !t.art[j] && t.rows[i][j].Sign() != 0 {
				pivCol = j
				break
			}
		}
		if pivCol == -1 {
			// Row is 0 = 0 over non-artificial columns: redundant.
			t.active[i] = false
			continue
		}
		t.pivot(i, pivCol, nil, nil)
	}
}
