package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func coef(pairs ...interface{}) map[int]*big.Rat {
	m := map[int]*big.Rat{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(int)] = pairs[i+1].(*big.Rat)
	}
	return m
}

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func checkObjective(t *testing.T, sol *Solution, want *big.Rat) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Objective.Cmp(want) != 0 {
		t.Fatalf("objective = %v, want %v", sol.Objective, want)
	}
}

// checkStrongDuality verifies Σ Dual[i]·b_i == Objective exactly.
func checkStrongDuality(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	sum := new(big.Rat)
	tmp := new(big.Rat)
	for i, c := range p.Cons {
		sum.Add(sum, tmp.Mul(sol.Dual[i], c.RHS))
	}
	if sum.Cmp(sol.Objective) != 0 {
		t.Fatalf("dual objective %v ≠ primal objective %v", sum, sol.Objective)
	}
}

// checkDualFeasible verifies A^T y (≥ c for max / ≤ c for min) and the sign
// conventions documented on Solution.
func checkDualFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	for j := 0; j < p.NumVars; j++ {
		lhs := new(big.Rat)
		tmp := new(big.Rat)
		for i, c := range p.Cons {
			if a, ok := c.Coef[j]; ok {
				lhs.Add(lhs, tmp.Mul(sol.Dual[i], a))
			}
		}
		cj := new(big.Rat)
		if v, ok := p.Obj[j]; ok {
			cj.Set(v)
		}
		if p.Maximize && lhs.Cmp(cj) < 0 {
			t.Fatalf("dual infeasible at var %d: %v < %v", j, lhs, cj)
		}
		if !p.Maximize && lhs.Cmp(cj) > 0 {
			t.Fatalf("dual infeasible at var %d: %v > %v", j, lhs, cj)
		}
	}
	for i, c := range p.Cons {
		s := sol.Dual[i].Sign()
		switch {
		case p.Maximize && c.Sense == Le && s < 0:
			t.Fatalf("dual[%d] = %v < 0 on ≤ row of max problem", i, sol.Dual[i])
		case p.Maximize && c.Sense == Ge && s > 0:
			t.Fatalf("dual[%d] = %v > 0 on ≥ row of max problem", i, sol.Dual[i])
		case !p.Maximize && c.Sense == Ge && s < 0:
			t.Fatalf("dual[%d] = %v < 0 on ≥ row of min problem", i, sol.Dual[i])
		case !p.Maximize && c.Sense == Le && s > 0:
			t.Fatalf("dual[%d] = %v > 0 on ≤ row of min problem", i, sol.Dual[i])
		}
	}
}

func checkPrimalFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	for j, x := range sol.X {
		if x.Sign() < 0 {
			t.Fatalf("x[%d] = %v < 0", j, x)
		}
	}
	for i, c := range p.Cons {
		lhs := new(big.Rat)
		tmp := new(big.Rat)
		for j, a := range c.Coef {
			lhs.Add(lhs, tmp.Mul(a, sol.X[j]))
		}
		cmp := lhs.Cmp(c.RHS)
		switch c.Sense {
		case Le:
			if cmp > 0 {
				t.Fatalf("row %d violated: %v > %v", i, lhs, c.RHS)
			}
		case Ge:
			if cmp < 0 {
				t.Fatalf("row %d violated: %v < %v", i, lhs, c.RHS)
			}
		case Eq:
			if cmp != 0 {
				t.Fatalf("row %d violated: %v ≠ %v", i, lhs, c.RHS)
			}
		}
	}
}

func checkAll(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	checkPrimalFeasible(t, p, sol)
	checkDualFeasible(t, p, sol)
	checkStrongDuality(t, p, sol)
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, obj=12.
	p := NewProblem(2, true)
	p.SetObj(0, r(3, 1))
	p.SetObj(1, r(2, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Le, r(4, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(3, 1)), Le, r(6, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(12, 1))
	if sol.X[0].Cmp(r(4, 1)) != 0 || sol.X[1].Sign() != 0 {
		t.Fatalf("X = %v", sol.X)
	}
	checkAll(t, p, sol)
}

func TestSimpleMin(t *testing.T) {
	// min x + 2y s.t. x + y ≥ 3, y ≥ 1 → x=2, y=1, obj=4.
	p := NewProblem(2, false)
	p.SetObj(0, r(1, 1))
	p.SetObj(1, r(2, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Ge, r(3, 1))
	p.AddConstraint(coef(1, r(1, 1)), Ge, r(1, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(4, 1))
	checkAll(t, p, sol)
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 2, x ≤ 1 → obj = 2.
	p := NewProblem(2, true)
	p.SetObj(0, r(1, 1))
	p.SetObj(1, r(1, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Eq, r(2, 1))
	p.AddConstraint(coef(0, r(1, 1)), Le, r(1, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(2, 1))
	checkAll(t, p, sol)
}

func TestNegativeRHS(t *testing.T) {
	// max −x s.t. −x ≤ −2 (i.e. x ≥ 2) → x = 2, obj = −2.
	p := NewProblem(1, true)
	p.SetObj(0, r(-1, 1))
	p.AddConstraint(coef(0, r(-1, 1)), Le, r(-2, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(-2, 1))
	checkAll(t, p, sol)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1, true)
	p.SetObj(0, r(1, 1))
	p.AddConstraint(coef(0, r(1, 1)), Le, r(1, 1))
	p.AddConstraint(coef(0, r(1, 1)), Ge, r(2, 1))
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2, true)
	p.SetObj(0, r(1, 1))
	p.AddConstraint(coef(1, r(1, 1)), Le, r(1, 1))
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	// max 10x1 − 57x2 − 9x3 − 24x4 (Beale's cycling example)
	p := NewProblem(4, true)
	p.SetObj(0, r(10, 1))
	p.SetObj(1, r(-57, 1))
	p.SetObj(2, r(-9, 1))
	p.SetObj(3, r(-24, 1))
	p.AddConstraint(coef(0, r(1, 2), 1, r(-11, 2), 2, r(-5, 2), 3, r(9, 1)), Le, r(0, 1))
	p.AddConstraint(coef(0, r(1, 2), 1, r(-3, 2), 2, r(-1, 2), 3, r(1, 1)), Le, r(0, 1))
	p.AddConstraint(coef(0, r(1, 1)), Le, r(1, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(1, 1))
	checkAll(t, p, sol)
}

func TestExactRationals(t *testing.T) {
	// max x s.t. 3x ≤ 1 → x = 1/3 exactly.
	p := NewProblem(1, true)
	p.SetObj(0, r(1, 1))
	p.AddConstraint(coef(0, r(3, 1)), Le, r(1, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(1, 3))
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows produce a redundant row after phase 1.
	p := NewProblem(2, true)
	p.SetObj(0, r(1, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Eq, r(2, 1))
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Eq, r(2, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(2, 1))
	checkPrimalFeasible(t, p, sol)
	checkStrongDuality(t, p, sol)
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem (zero objective) with equalities.
	p := NewProblem(3, false)
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Eq, r(1, 1))
	p.AddConstraint(coef(1, r(1, 1), 2, r(1, 1)), Eq, r(1, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(0, 1))
	checkPrimalFeasible(t, p, sol)
}

func TestFractionalEdgeCoverTriangle(t *testing.T) {
	// The AGM LP for the triangle query: min λ12+λ23+λ13 subject to each
	// vertex covered; optimum 3/2 (each λ = 1/2).
	p := NewProblem(3, false)
	for j := 0; j < 3; j++ {
		p.SetObj(j, r(1, 1))
	}
	p.AddConstraint(coef(0, r(1, 1), 2, r(1, 1)), Ge, r(1, 1)) // vertex 1 in edges 12, 13
	p.AddConstraint(coef(0, r(1, 1), 1, r(1, 1)), Ge, r(1, 1)) // vertex 2 in edges 12, 23
	p.AddConstraint(coef(1, r(1, 1), 2, r(1, 1)), Ge, r(1, 1)) // vertex 3 in edges 23, 13
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(3, 2))
	checkAll(t, p, sol)
}

func TestMinWithLeRows(t *testing.T) {
	// min −x s.t. x ≤ 5 → obj −5; ≤ row in a min problem carries Dual ≤ 0.
	p := NewProblem(1, false)
	p.SetObj(0, r(-1, 1))
	p.AddConstraint(coef(0, r(1, 1)), Le, r(5, 1))
	sol := mustSolve(t, p)
	checkObjective(t, sol, r(-5, 1))
	checkAll(t, p, sol)
}

// TestRandomDuality cross-checks primal/dual consistency on random LPs whose
// feasibility is guaranteed by construction (b ≥ 0, ≤ rows).
func TestRandomDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := NewProblem(n, true)
		for j := 0; j < n; j++ {
			p.SetObj(j, r(int64(rng.Intn(7)-2), 1))
		}
		for i := 0; i < m; i++ {
			c := map[int]*big.Rat{}
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					c[j] = r(int64(1+rng.Intn(4)), 1)
				}
			}
			// Guarantee boundedness: every variable appears in at least
			// one row with positive coefficient.
			c[rng.Intn(n)] = r(1, 1)
			p.AddConstraint(c, Le, r(int64(rng.Intn(10)), 1))
		}
		// One covering row per variable to bound the problem.
		all := map[int]*big.Rat{}
		for j := 0; j < n; j++ {
			all[j] = r(1, 1)
		}
		p.AddConstraint(all, Le, r(20, 1))
		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		checkAll(t, p, sol)
	}
}

// TestRandomMinDuality does the same for minimization problems with ≥ rows.
func TestRandomMinDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := NewProblem(n, false)
		for j := 0; j < n; j++ {
			p.SetObj(j, r(int64(1+rng.Intn(5)), 1))
		}
		for i := 0; i < m; i++ {
			c := map[int]*big.Rat{}
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					c[j] = r(int64(1+rng.Intn(4)), 1)
				}
			}
			c[rng.Intn(n)] = r(1, 1)
			p.AddConstraint(c, Ge, r(int64(rng.Intn(8)), 1))
		}
		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		checkAll(t, p, sol)
	}
}
