package plan

import (
	"bytes"
	"testing"
)

// BenchmarkPlanDecodeVsPrepare quantifies what plan shipping is worth: a
// warm restart (or an imported snapshot) pays DecodePlan where a cold boot
// pays the full planning phase — exact simplex solves plus proof-sequence
// construction. The 4-cycle subw plan is the headline workload; decode
// should be orders of magnitude cheaper than cold-prepare.
func BenchmarkPlanDecodeVsPrepare(b *testing.B) {
	q, cons := cycleQuery(4, nil, nil, 100)
	p, _, err := Prepare(q, cons, ModeSubw)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, p); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()

	b.Run("cold-prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Prepare(q, cons, ModeSubw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodePlan(bytes.NewReader(enc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode", func(b *testing.B) {
		var w bytes.Buffer
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := EncodePlan(&w, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
