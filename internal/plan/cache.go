package plan

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"panda/internal/query"
)

// Stats is a snapshot of a Planner's cache and planning counters.
type Stats struct {
	Hits       uint64 // Prepare calls answered from the cache (zero LP solves)
	Misses     uint64 // Prepare calls that built a fresh plan
	Evictions  uint64 // plans dropped by the LRU policy
	LPSolves   uint64 // exact simplex solves performed across all builds
	PlansBuilt uint64 // plans constructed (== Misses unless builds raced)
	// LPSolvesSaved is the cumulative count of exact simplex solves that
	// cache hits avoided: each hit adds the LP cost the entry's original
	// build paid. It is the ops-surface measure of what the cache is worth.
	LPSolvesSaved uint64
}

// DefaultCacheSize is the plan capacity of NewPlanner(0).
const DefaultCacheSize = 128

// maxExactsPerPlan bounds how many exact fingerprints (distinct query
// texts resolving to the same canonical plan) are registered per entry; at
// the cap the oldest fingerprint is evicted, so recently seen texts always
// take the fast path.
const maxExactsPerPlan = 16

// Planner prepares query plans through a concurrency-safe bounded cache
// keyed by the canonical signature of (query shape, free variables,
// constraint set, mode). A hit performs no LP solves and no proof
// construction — the cached canonical plan is rebound to the caller's
// variable space, which is pure bookkeeping. Repeat traffic with
// byte-identical query text takes an exact-fingerprint fast path that also
// skips signature canonicalization (the permutation search of
// Canonicalize), so steady-state hits cost one linear encoding plus the
// rebind.
//
// Eviction is cost-weighted (GreedyDual): each entry carries a priority of
// clock + lpCost, refreshed on every hit, and the entry with the lowest
// priority is evicted when the cache is over capacity, advancing the clock
// to the evicted priority. An expensive plan (many LP solves to rebuild)
// therefore outlives cheaper entries that were touched more recently; when
// build costs are equal the policy degenerates to plain LRU (ties are
// broken toward the least recently used entry).
type Planner struct {
	mu    sync.Mutex
	cap   int
	clock uint64 // GreedyDual aging clock, in LP-solve units
	// seq is the cache clock: a monotone counter bumped once per installed
	// entry (fresh build or import). Delta snapshots (SaveCacheSince) and
	// the fleet push loop compare watermarks against it; unlike the
	// GreedyDual clock it never moves backwards, not even on Reset, so a
	// remote watermark can never be fooled into skipping new entries.
	seq   uint64
	ll    *list.List               // front = most recently used
	index map[string]*list.Element // canonical Key → element; value is *entry
	exact map[string]*exactRef     // Fingerprint → entry + its signature
	stats Stats
}

type entry struct {
	key    string
	plan   *Plan    // canonical space
	exacts []string // fingerprints registered against this entry
	lpCost uint64   // LP solves the original build paid; credited per hit
	pri    uint64   // eviction priority: clock-at-touch + lpCost
	gen    uint64   // cache-clock value at install; SaveCacheSince filters on it
}

// exactRef remembers the signature a fingerprint resolved to, so later
// identical calls can rebind without re-canonicalizing.
type exactRef struct {
	el  *list.Element
	sig *Signature
}

// NewPlanner returns a Planner whose cache holds up to capacity plans
// (DefaultCacheSize when capacity ≤ 0).
func NewPlanner(capacity int) *Planner {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Planner{
		cap:   capacity,
		ll:    list.New(),
		index: map[string]*list.Element{},
		exact: map[string]*exactRef{},
	}
}

// registerExact links a fingerprint to an entry, evicting the entry's
// oldest fingerprint at the cap; caller holds pl.mu.
func (pl *Planner) registerExact(el *list.Element, fp string, sig *Signature) {
	ent := el.Value.(*entry)
	if _, dup := pl.exact[fp]; dup {
		return
	}
	if len(ent.exacts) >= maxExactsPerPlan {
		delete(pl.exact, ent.exacts[0])
		ent.exacts = ent.exacts[1:]
	}
	pl.exact[fp] = &exactRef{el: el, sig: sig}
	ent.exacts = append(ent.exacts, fp)
}

// evictionScanWindow bounds how many entries (from the LRU end) one
// eviction examines, keeping eviction O(1) in the cache capacity. Within
// the window the choice is exact GreedyDual; an expensive entry outside it
// is by definition recently used and not at risk.
const evictionScanWindow = 32

// evictOverCap drops entries beyond capacity, choosing the victim by
// lowest GreedyDual priority (clock-at-touch + LP build cost) rather than
// pure recency; scanning starts at the LRU end so equal-cost entries fall
// back to LRU order. The clock advances to the victim's priority, which is
// what ages the survivors: an untouched entry's head start shrinks with
// every eviction until only its build cost protects it. Caller holds pl.mu.
func (pl *Planner) evictOverCap() {
	for pl.ll.Len() > pl.cap {
		victim := pl.ll.Back()
		for el, n := victim.Prev(), 1; el != nil && n < evictionScanWindow; el, n = el.Prev(), n+1 {
			if el.Value.(*entry).pri < victim.Value.(*entry).pri {
				victim = el
			}
		}
		pl.ll.Remove(victim)
		ent := victim.Value.(*entry)
		delete(pl.index, ent.key)
		for _, fp := range ent.exacts {
			delete(pl.exact, fp)
		}
		if ent.pri > pl.clock {
			pl.clock = ent.pri
		}
		pl.stats.Evictions++
	}
}

// Prepare returns a plan for q under cons, reusing a cached plan when one
// exists for the canonical signature. The returned plan is always in the
// caller's variable space and safe for concurrent Execute calls.
func (pl *Planner) Prepare(q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) (*Plan, error) {
	return pl.PrepareContext(context.Background(), q, cons, mode)
}

// PrepareContext is Prepare honoring ctx: a cache hit never blocks on it,
// but a miss threads the context into the underlying planning phase so its
// LP solves can be abandoned when the caller goes away.
func (pl *Planner) PrepareContext(ctx context.Context, q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) (*Plan, error) {
	if pl == nil {
		p, _, err := PrepareContext(ctx, q, cons, mode)
		return p, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate before encoding so cache keys only ever describe
	// well-formed inputs.
	if err := validateQuery(q, cons); err != nil {
		return nil, err
	}
	mode = ResolveMode(q, mode)
	fp := Fingerprint(q, cons, mode)
	pl.mu.Lock()
	if ref, ok := pl.exact[fp]; ok {
		pl.ll.MoveToFront(ref.el)
		ent := ref.el.Value.(*entry)
		ent.pri = pl.clock + ent.lpCost
		cached := ent.plan
		sig := ref.sig
		pl.stats.Hits++
		pl.stats.LPSolvesSaved += ent.lpCost
		pl.mu.Unlock()
		return cached.fromCanonical(sig, &q.Schema, q.Free), nil
	}
	pl.mu.Unlock()

	// First sighting of this query text: canonicalize (outside the lock —
	// the permutation search can be expensive) and look up by signature.
	sig, err := Canonicalize(q, cons, mode)
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	if el, ok := pl.index[sig.Key]; ok {
		pl.ll.MoveToFront(el)
		pl.registerExact(el, fp, sig)
		ent := el.Value.(*entry)
		ent.pri = pl.clock + ent.lpCost
		cached := ent.plan
		pl.stats.Hits++
		pl.stats.LPSolvesSaved += ent.lpCost
		pl.mu.Unlock()
		return cached.fromCanonical(sig, &q.Schema, q.Free), nil
	}
	pl.stats.Misses++
	pl.mu.Unlock()

	p, bs, err := PrepareContext(ctx, q, cons, mode)
	if err != nil {
		return nil, err
	}
	p.Key = sig.Key
	canon := p.toCanonical(sig)
	pl.mu.Lock()
	pl.stats.LPSolves += uint64(bs.LPSolves)
	pl.stats.PlansBuilt++
	el, ok := pl.index[sig.Key]
	if ok {
		// A concurrent build won the race; adopt its entry.
		pl.ll.MoveToFront(el)
		ent := el.Value.(*entry)
		ent.pri = pl.clock + ent.lpCost
	} else {
		cost := uint64(bs.LPSolves)
		pl.seq++
		el = pl.ll.PushFront(&entry{key: sig.Key, plan: canon, lpCost: cost, pri: pl.clock + cost, gen: pl.seq})
		pl.index[sig.Key] = el
	}
	pl.registerExact(el, fp, sig)
	pl.evictOverCap()
	pl.mu.Unlock()
	return p, nil
}

// Stats returns a snapshot of the planner's counters.
func (pl *Planner) Stats() Stats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.stats
}

// Len reports how many plans the cache currently holds.
func (pl *Planner) Len() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ll.Len()
}

// Keys returns the cached signature keys, most recently used first; useful
// for tests asserting the LRU eviction order.
func (pl *Planner) Keys() []string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]string, 0, pl.ll.Len())
	for el := pl.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Reset empties the cache and zeroes the counters. The cache clock is NOT
// reset: it only ever moves forward, so delta watermarks held by remote
// pushers stay sound across a Reset (the re-added entries get fresh, higher
// generations and are exported again).
func (pl *Planner) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.ll.Init()
	pl.index = map[string]*list.Element{}
	pl.exact = map[string]*exactRef{}
	pl.stats = Stats{}
	pl.clock = 0
}

// CacheClock reports the cache clock: the number of entry installs (fresh
// builds plus imports) this planner has performed. SaveCacheSince(w, c)
// with a clock captured earlier exports exactly the entries installed in
// between; the fleet push loop uses it as its per-replica watermark.
func (pl *Planner) CacheClock() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.seq
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d lp-solves=%d lp-saved=%d plans-built=%d",
		s.Hits, s.Misses, s.Evictions, s.LPSolves, s.LPSolvesSaved, s.PlansBuilt)
}
