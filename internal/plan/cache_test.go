package plan

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlannerHitSkipsLP: the second Prepare of an identical query must be a
// cache hit with zero additional LP solves — the acceptance criterion of
// the prepared-query subsystem.
func TestPlannerHitSkipsLP(t *testing.T) {
	pl := NewPlanner(8)
	q, cons := cycleQuery(4, nil, nil, 100)
	if _, err := pl.Prepare(q, cons, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.LPSolves == 0 {
		t.Fatalf("after first Prepare: %v", st)
	}
	solved := st.LPSolves
	p2, err := pl.Prepare(q, cons, ModeFhtw)
	if err != nil {
		t.Fatal(err)
	}
	st = pl.Stats()
	if st.Hits != 1 {
		t.Fatalf("second Prepare was not a hit: %v", st)
	}
	if st.LPSolves != solved {
		t.Fatalf("cache hit ran %d LP solves", st.LPSolves-solved)
	}
	if p2 == nil || p2.Width == nil || len(p2.Rules) == 0 {
		t.Fatal("hit returned a hollow plan")
	}
}

// TestLPSolvesSavedAccounting: every hit credits the LP cost the entry's
// original build paid, so a server's ops surface can read off what the
// cache is worth in solver work.
func TestLPSolvesSavedAccounting(t *testing.T) {
	pl := NewPlanner(8)
	q, cons := cycleQuery(4, nil, nil, 100)
	if _, err := pl.Prepare(q, cons, ModeSubw); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.LPSolvesSaved != 0 {
		t.Fatalf("build credited savings: %v", st)
	}
	cost := st.LPSolves
	if cost == 0 {
		t.Fatal("build reported zero LP solves")
	}
	const hits = 3
	for i := 0; i < hits; i++ {
		if _, err := pl.Prepare(q, cons, ModeSubw); err != nil {
			t.Fatal(err)
		}
	}
	st = pl.Stats()
	if st.Hits != hits || st.LPSolvesSaved != hits*cost {
		t.Fatalf("after %d hits: saved %d, want %d (%v)", hits, st.LPSolvesSaved, hits*cost, st)
	}
}

// TestPlannerRenamedHit: a variable-renamed query must hit the cache and
// come back rebound to its own variable space.
func TestPlannerRenamedHit(t *testing.T) {
	pl := NewPlanner(8)
	q1, c1 := cycleQuery(4, nil, nil, 100)
	p1, err := pl.Prepare(q1, c1, ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	q2, c2 := cycleQuery(4, []int{2, 0, 3, 1}, []int{1, 3, 0, 2}, 100)
	p2, err := pl.Prepare(q2, c2, ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("renamed query missed: %v", st)
	}
	if p1.Width.Cmp(p2.Width) != 0 {
		t.Fatalf("widths diverge: %v vs %v", p1.Width, p2.Width)
	}
	// The rebound plan must live in q2's space: every rule target and bag
	// is a union of q2 atom variable sets, and guards index q2's atoms.
	for _, r := range p2.Rules {
		for _, b := range r.Targets {
			covered := b
			for _, a := range q2.Atoms {
				covered = covered.Minus(a.Vars)
			}
			if covered != 0 {
				t.Fatalf("target %v outside q2's atom universe", b)
			}
		}
	}
	for _, c := range p2.Cons {
		if c.Guard < 0 || c.Guard >= len(q2.Atoms) || !c.Y.SubsetOf(q2.Atoms[c.Guard].Vars) {
			t.Fatalf("rebound constraint %+v has an invalid guard", c)
		}
	}
	if len(p2.Schema.Atoms) != len(q2.Atoms) {
		t.Fatal("rebound schema lost atoms")
	}
	for i, a := range p2.Schema.Atoms {
		if a.Name != q2.Atoms[i].Name || a.Vars != q2.Atoms[i].Vars {
			t.Fatalf("rebound schema atom %d is %+v, want %+v", i, a, q2.Atoms[i])
		}
	}
}

// TestPlannerExactFastPath: first sighting of a reordered query goes
// through canonicalization and hits the shared canonical entry; a repeat of
// the same text takes the exact fast path. Both rebinds must be valid in
// the caller's space.
func TestPlannerExactFastPath(t *testing.T) {
	pl := NewPlanner(8)
	q1, c1 := cycleQuery(4, nil, nil, 100)
	q2, c2 := cycleQuery(4, nil, []int{2, 0, 3, 1}, 100)
	if _, err := pl.Prepare(q1, c1, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	check := func(p *Plan) {
		t.Helper()
		for _, c := range p.Cons {
			if c.Guard < 0 || c.Guard >= len(q2.Atoms) || !c.Y.SubsetOf(q2.Atoms[c.Guard].Vars) {
				t.Fatalf("rebound constraint %+v invalid for q2", c)
			}
		}
	}
	p2a, err := pl.Prepare(q2, c2, ModeFhtw) // canonical-path hit
	if err != nil {
		t.Fatal(err)
	}
	check(p2a)
	p2b, err := pl.Prepare(q2, c2, ModeFhtw) // exact fast-path hit
	if err != nil {
		t.Fatal(err)
	}
	check(p2b)
	st := pl.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("expected 2 hits / 1 miss, got %v", st)
	}
}

// TestPlannerCostWeightedEviction: eviction weighs the recorded LP build
// cost, so an expensive plan outlives cheaper entries prepared after it —
// the case pure LRU gets wrong for a server whose hot set exceeds the cap.
func TestPlannerCostWeightedEviction(t *testing.T) {
	pl := NewPlanner(2)
	qE, cE := cycleQuery(4, nil, nil, 100)
	if _, err := pl.Prepare(qE, cE, ModeSubw); err != nil {
		t.Fatal(err)
	}
	costE := pl.Stats().LPSolves
	qA, cA := cycleQuery(3, nil, nil, 4)
	if _, err := pl.Prepare(qA, cA, ModeFull); err != nil {
		t.Fatal(err)
	}
	costA := pl.Stats().LPSolves - costE
	if costE <= costA {
		t.Fatalf("fixture assumption broken: subw 4-cycle cost %d not above full 3-cycle cost %d", costE, costA)
	}
	// A third (cheap) plan forces an eviction. The expensive subw plan is
	// the least recently used entry, but the cheap triangle plan must be
	// the victim.
	qB, cB := cycleQuery(3, nil, nil, 8)
	if _, err := pl.Prepare(qB, cB, ModeFull); err != nil {
		t.Fatal(err)
	}
	if ev := pl.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	misses := pl.Stats().Misses
	if _, err := pl.Prepare(qE, cE, ModeSubw); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats(); got.Misses != misses {
		t.Fatalf("expensive plan was evicted despite its cost: %v", got)
	}
	if _, err := pl.Prepare(qA, cA, ModeFull); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats().Misses; got != misses+1 {
		t.Fatalf("cheap plan should have been the victim (misses %d → %d)", misses, got)
	}
}

// TestPlannerLRUEviction: with equal build costs the cost-weighted policy
// degenerates to plain LRU — the least recently used plan is evicted first,
// and touching a plan refreshes it.
func TestPlannerLRUEviction(t *testing.T) {
	pl := NewPlanner(2)
	mk := func(card int64) (string, error) {
		q, cons := cycleQuery(3, nil, nil, card)
		p, err := pl.Prepare(q, cons, ModeFull)
		if err != nil {
			return "", err
		}
		return p.Key, nil
	}
	kA, err := mk(4)
	if err != nil {
		t.Fatal(err)
	}
	kB, err := mk(8)
	if err != nil {
		t.Fatal(err)
	}
	// Touch A so B becomes least recently used.
	if _, err := mk(4); err != nil {
		t.Fatal(err)
	}
	kC, err := mk(16)
	if err != nil {
		t.Fatal(err)
	}
	keys := pl.Keys()
	if len(keys) != 2 || keys[0] != kC || keys[1] != kA {
		t.Fatalf("LRU order %v, want [C=%s A=%s]", keys, kC, kA)
	}
	st := pl.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// B was evicted: preparing it again must miss.
	misses := st.Misses
	if _, err := mk(8); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats().Misses; got != misses+1 {
		t.Fatalf("evicted plan did not miss (misses %d → %d)", misses, got)
	}
	if pl.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2", pl.Len())
	}
	_ = kB
}

// TestPlannerConcurrent hammers one planner from many goroutines mixing
// repeated and distinct queries; run with -race.
func TestPlannerConcurrent(t *testing.T) {
	pl := NewPlanner(4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				card := int64(4 << uint(i%3)) // three distinct signatures
				q, cons := cycleQuery(4, nil, nil, card)
				p, err := pl.Prepare(q, cons, ModeFhtw)
				if err != nil {
					errs <- err
					return
				}
				if p.Width == nil || len(p.Rules) == 0 {
					errs <- fmt.Errorf("goroutine %d got hollow plan", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Hits+st.Misses != 64 {
		t.Fatalf("hits+misses = %d, want 64 (%v)", st.Hits+st.Misses, st)
	}
	if st.Misses < 3 {
		t.Fatalf("expected at least 3 misses for 3 signatures: %v", st)
	}
}

// TestPlannerReset clears state.
func TestPlannerReset(t *testing.T) {
	pl := NewPlanner(2)
	q, cons := cycleQuery(3, nil, nil, 4)
	if _, err := pl.Prepare(q, cons, ModeFull); err != nil {
		t.Fatal(err)
	}
	pl.Reset()
	if pl.Len() != 0 || pl.Stats() != (Stats{}) {
		t.Fatal("Reset left state behind")
	}
}
