package plan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// decodeEnvelope pulls the envelope back out of a snapshot for assertions.
func decodeSnapEnv(t *testing.T, data []byte) *cacheEnvelope {
	t.Helper()
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	return &env
}

// TestSaveCacheSinceDelta: the cache clock ticks once per installed entry,
// SaveCacheSince exports exactly the entries newer than the watermark, and
// the envelope records the clock the selection was made at.
func TestSaveCacheSinceDelta(t *testing.T) {
	pl := NewPlanner(8)
	qa, ca := cycleQuery(4, nil, nil, 100)
	if _, err := pl.Prepare(qa, ca, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	c1 := pl.CacheClock()
	if c1 != 1 {
		t.Fatalf("clock after first install = %d, want 1", c1)
	}
	qb, cb := cycleQuery(3, nil, nil, 50)
	if _, err := pl.Prepare(qb, cb, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	if got := pl.CacheClock(); got != 2 {
		t.Fatalf("clock after second install = %d, want 2", got)
	}
	// A cache hit installs nothing and must not move the clock.
	if _, err := pl.Prepare(qa, ca, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	if got := pl.CacheClock(); got != 2 {
		t.Fatalf("clock moved on a cache hit: %d", got)
	}

	var full, delta, empty bytes.Buffer
	if err := pl.SaveCache(&full); err != nil {
		t.Fatal(err)
	}
	if err := pl.SaveCacheSince(&delta, c1); err != nil {
		t.Fatal(err)
	}
	if err := pl.SaveCacheSince(&empty, 2); err != nil {
		t.Fatal(err)
	}
	fe, de, ee := decodeSnapEnv(t, full.Bytes()), decodeSnapEnv(t, delta.Bytes()), decodeSnapEnv(t, empty.Bytes())
	if len(fe.Entries) != 2 || fe.Clock != 2 {
		t.Fatalf("full snapshot: %d entries clock %d, want 2/2", len(fe.Entries), fe.Clock)
	}
	if len(de.Entries) != 1 || de.Clock != 2 {
		t.Fatalf("delta since %d: %d entries clock %d, want 1/2", c1, len(de.Entries), de.Clock)
	}
	if len(ee.Entries) != 0 || ee.Clock != 2 {
		t.Fatalf("empty delta: %d entries clock %d, want 0/2", len(ee.Entries), ee.Clock)
	}
	// The delta must carry the SECOND shape (the triangle), not the first.
	sigB := mustSig(t, qb, cb, ModeFhtw)
	if de.Entries[0].Key != sigB.Key {
		t.Fatalf("delta exported key %q, want the newer entry %q", de.Entries[0].Key, sigB.Key)
	}
}

// TestLoadCacheAdvancesClockAndMerges: imports tick the clock like fresh
// builds (so a replica's own exports include pushed entries), re-importing
// an overlapping delta never clobbers live entries, and the delta a replica
// would re-export after importing covers what it imported.
func TestLoadCacheAdvancesClockAndMerges(t *testing.T) {
	donor := NewPlanner(8)
	qa, ca := cycleQuery(4, nil, nil, 100)
	qb, cb := cycleQuery(3, nil, nil, 50)
	if _, err := donor.Prepare(qa, ca, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Prepare(qb, cb, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := donor.SaveCache(&snap); err != nil {
		t.Fatal(err)
	}

	replica := NewPlanner(8)
	stats, err := replica.LoadCache(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 2 || replica.CacheClock() != 2 {
		t.Fatalf("after import: %v, clock %d; want loaded=2 clock=2", stats, replica.CacheClock())
	}
	// Importing the same snapshot again: pure duplicates, clock unmoved.
	stats, err = replica.LoadCache(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 0 || stats.Duplicates != 2 || replica.CacheClock() != 2 {
		t.Fatalf("re-import: %v, clock %d; want duplicates=2 clock=2", stats, replica.CacheClock())
	}
	if replica.Len() != 2 {
		t.Fatalf("replica holds %d plans, want 2", replica.Len())
	}
}

// TestVersionMismatchReportsSkippedKeys: a FormatVersion bump must name
// every dropped signature, because those keys are what the migration shim
// re-plans in the background.
func TestVersionMismatchReportsSkippedKeys(t *testing.T) {
	donor := NewPlanner(8)
	q, cons := cycleQuery(4, nil, nil, 100)
	if _, err := donor.Prepare(q, cons, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	bad := tamperCache(t, buf.Bytes(), func(env *cacheEnvelope) { env.Version = FormatVersion + 1 })
	fresh := NewPlanner(8)
	stats, err := fresh.LoadCache(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(stats.FirstErr, ErrCodecVersion) {
		t.Fatalf("want ErrCodecVersion, got %v", stats.FirstErr)
	}
	want := mustSig(t, q, cons, ModeFhtw).Key
	if len(stats.SkippedKeys) != 1 || stats.SkippedKeys[0] != want {
		t.Fatalf("skipped keys %q, want [%q]", stats.SkippedKeys, want)
	}

	// The reported keys close the loop: re-planning them refills the cache
	// with zero traffic-time misses left to pay.
	for _, key := range stats.SkippedKeys {
		if _, err := fresh.ReplanKey(context.Background(), key); err != nil {
			t.Fatalf("replan %q: %v", key, err)
		}
	}
	if fresh.Len() != 1 {
		t.Fatalf("after replan: %d plans, want 1", fresh.Len())
	}
	solves := fresh.Stats().LPSolves
	if solves == 0 {
		t.Fatal("replan paid no LP solves (nothing was rebuilt)")
	}
	// A renaming of the original query must now be a pure hit.
	qr, cr := cycleQuery(4, []int{2, 3, 0, 1}, nil, 100)
	if _, err := fresh.Prepare(qr, cr, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	st := fresh.Stats()
	if st.LPSolves != solves || st.Hits != 1 {
		t.Fatalf("renamed query after replan was not a free hit: %v", st)
	}
}

// TestParseSignatureKeyRoundTrip: parsing a canonical key back into a query
// and re-canonicalizing must land on the identical key — the property that
// makes background replans serve the original traffic.
func TestParseSignatureKeyRoundTrip(t *testing.T) {
	q4, c4 := cycleQuery(4, nil, nil, 100)
	q3, c3 := cycleQuery(3, nil, nil, 7)
	qb, cb := cycleQuery(4, nil, nil, 100)
	qb.Free = 0 // Boolean 4-cycle: stays ModeAuto under resolution
	cases := []struct {
		name string
		key  string
	}{
		{"fhtw-4-cycle", mustSig(t, q4, c4, ModeFhtw).Key},
		{"subw-4-cycle", mustSig(t, q4, c4, ModeSubw).Key},
		{"full-triangle", mustSig(t, q3, c3, ModeFull).Key},
		{"auto-boolean-4-cycle", mustSig(t, qb, cb, ModeAuto).Key},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, cons, mode, err := ParseSignatureKey(tc.key)
			if err != nil {
				t.Fatal(err)
			}
			again := mustSig(t, q, cons, mode)
			if again.Key != tc.key {
				t.Fatalf("round trip diverged:\n in  %q\n out %q", tc.key, again.Key)
			}
		})
	}
}

// TestParseSignatureKeyRejectsGarbage: malformed keys fail loudly instead
// of planning nonsense.
func TestParseSignatureKeyRejectsGarbage(t *testing.T) {
	q4, c4 := cycleQuery(4, nil, nil, 100)
	good := mustSig(t, q4, c4, ModeFhtw).Key
	bad := []string{
		"",
		"not a key",
		"m9;n4;F0000000f;A:00000003;C",  // mode out of range
		"m2;n40;F0000000f;A:00000003;C", // variable count out of range
		"m2;n2;F0000000f;A:00000003;C",  // free set outside universe
		"m2;n4;F0000000f;A:00000003;C:00000001/00000003/5/g7",  // guard out of range
		"m2;n4;F0000000f;A:00000003;C:00000001/00000003/-1/g0", // negative log bound
		strings.Replace(good, ";C", "", 1),                     // missing section
	}
	for _, key := range bad {
		if _, _, _, err := ParseSignatureKey(key); err == nil {
			t.Errorf("ParseSignatureKey(%q) accepted garbage", key)
		}
	}
}
