package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/query"
)

// Plan serialization: a committed Plan is a closed value — bitsets, exact
// rationals, proof steps, tree decompositions — so it can outlive the
// process that paid its LP solves. The wire format is a JSON envelope
//
//	{"format": "panda-plan", "version": V, "digest": "<sha256 hex>", "plan": {…}}
//
// whose payload is digested byte-for-byte: Decode rejects a payload whose
// SHA-256 disagrees with the recorded digest (ErrCodecDigest) or whose
// format version is not this package's FormatVersion (ErrCodecVersion), and
// re-validates the decoded plan's internal indices so a corrupted-but-
// consistent file can never panic the execution engine. Encoding is
// deterministic (vector coordinates are sorted), so encoding the same plan
// twice yields identical bytes — the property the digest, the cache
// snapshot diffing and the round-trip tests all rely on.
//
// Exact rationals travel as big.Rat.RatString ("p/q" or "p"); variable sets
// travel as their bitmask. Nothing is lost: a decoded plan executes
// byte-identically to the freshly prepared one.

// FormatVersion is the wire-format version stamped into every encoded plan
// and cache snapshot. Bump it on any incompatible change to the payload
// shape; decoders reject other versions with ErrCodecVersion rather than
// guessing.
const FormatVersion = 1

const (
	planFormat  = "panda-plan"
	ruleFormat  = "panda-rule"
	cacheFormat = "panda-plan-cache"
)

// Codec sentinels: callers dispatch with errors.Is. Both mean "this payload
// is not trustworthy as written", never "the plan inside is semantically
// wrong" — semantic validation has its own plain errors.
var (
	// ErrCodecVersion reports an envelope whose format version is not
	// FormatVersion.
	ErrCodecVersion = errors.New("plan: unsupported plan format version")
	// ErrCodecDigest reports a payload whose SHA-256 digest disagrees with
	// the envelope's recorded digest.
	ErrCodecDigest = errors.New("plan: plan payload digest mismatch")
)

// ---- Wire shapes ----

type wireAtom struct {
	Name string `json:"name"`
	Vars uint32 `json:"vars"`
	Args []int  `json:"args,omitempty"`
}

type wireCon struct {
	X     uint32 `json:"x"`
	Y     uint32 `json:"y"`
	N     int64  `json:"n,omitempty"`
	LogN  string `json:"log_n"`
	Guard int    `json:"guard"`
}

type wireTD struct {
	Bags   []uint32 `json:"bags"`
	Parent []int    `json:"parent"`
}

// wireCoord is one sorted coordinate of a flow.Vec.
type wireCoord struct {
	X uint32 `json:"x"`
	Y uint32 `json:"y"`
	W string `json:"w"`
}

type wireStep struct {
	Kind int    `json:"kind"`
	W    string `json:"w"`
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
}

type wireRule struct {
	Targets []uint32    `json:"targets"`
	Trivial bool        `json:"trivial,omitempty"`
	Bound   string      `json:"bound"`
	Lambda  []wireCoord `json:"lambda,omitempty"`
	Delta   []wireCoord `json:"delta,omitempty"`
	Seq     []wireStep  `json:"seq,omitempty"`
}

type wirePlan struct {
	Mode         int        `json:"mode"`
	Key          string     `json:"key,omitempty"`
	NumVars      int        `json:"num_vars"`
	VarNames     []string   `json:"var_names,omitempty"`
	Atoms        []wireAtom `json:"atoms"`
	Free         uint32     `json:"free"`
	Cons         []wireCon  `json:"cons,omitempty"`
	Bags         []uint32   `json:"bags,omitempty"`
	TDs          []wireTD   `json:"tds,omitempty"`
	TDBags       [][]int    `json:"td_bags,omitempty"`
	Chosen       int        `json:"chosen"`
	Transversals [][]int    `json:"transversals,omitempty"`
	Rules        []wireRule `json:"rules"`
	Width        string     `json:"width"`
}

// envelope frames every top-level artifact of the codec.
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Digest  string          `json:"digest"`
	Payload json.RawMessage `json:"plan"`
}

// ---- Rat / set / vec helpers ----

func ratOut(r *big.Rat) string {
	if r == nil {
		return ""
	}
	return r.RatString()
}

func ratIn(s, field string) (*big.Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("plan: decode: %s is not a rational: %q", field, s)
	}
	return r, nil
}

func setsOut(sets []bitset.Set) []uint32 {
	out := make([]uint32, len(sets))
	for i, s := range sets {
		out[i] = uint32(s)
	}
	return out
}

func setsIn(masks []uint32) []bitset.Set {
	out := make([]bitset.Set, len(masks))
	for i, m := range masks {
		out[i] = bitset.Set(m)
	}
	return out
}

// vecOut flattens a flow.Vec into coordinates sorted by (X, Y) so the
// encoding is deterministic.
func vecOut(v flow.Vec) ([]wireCoord, error) {
	if v == nil {
		return nil, nil
	}
	out := make([]wireCoord, 0, len(v))
	for p, w := range v {
		if w == nil {
			return nil, fmt.Errorf("plan: encode: vector coordinate %v has a nil weight", p)
		}
		out = append(out, wireCoord{X: uint32(p.X), Y: uint32(p.Y), W: w.RatString()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out, nil
}

func vecIn(coords []wireCoord, field string) (flow.Vec, error) {
	if coords == nil {
		return nil, nil
	}
	v := flow.NewVec()
	for i, c := range coords {
		w, err := ratIn(c.W, fmt.Sprintf("%s[%d]", field, i))
		if err != nil {
			return nil, err
		}
		p := flow.Pair{X: bitset.Set(c.X), Y: bitset.Set(c.Y)}
		if _, dup := v[p]; dup {
			return nil, fmt.Errorf("plan: decode: duplicate %s coordinate %v", field, p)
		}
		v[p] = w
	}
	return v, nil
}

func ruleOut(pr *PreparedRule) (wireRule, error) {
	if pr == nil {
		return wireRule{}, errors.New("plan: encode: nil rule")
	}
	lam, err := vecOut(pr.Lambda)
	if err != nil {
		return wireRule{}, err
	}
	del, err := vecOut(pr.Delta)
	if err != nil {
		return wireRule{}, err
	}
	wr := wireRule{
		Targets: setsOut(pr.Targets),
		Trivial: pr.Trivial,
		Bound:   ratOut(pr.Bound),
		Lambda:  lam,
		Delta:   del,
	}
	for _, s := range pr.Seq {
		wr.Seq = append(wr.Seq, wireStep{Kind: int(s.Kind), W: ratOut(s.W), A: uint32(s.A), B: uint32(s.B)})
	}
	return wr, nil
}

func ruleIn(wr wireRule, idx int) (*PreparedRule, error) {
	pr := &PreparedRule{Targets: setsIn(wr.Targets), Trivial: wr.Trivial}
	var err error
	if pr.Bound, err = ratIn(wr.Bound, fmt.Sprintf("rules[%d].bound", idx)); err != nil {
		return nil, err
	}
	if pr.Lambda, err = vecIn(wr.Lambda, fmt.Sprintf("rules[%d].lambda", idx)); err != nil {
		return nil, err
	}
	if pr.Delta, err = vecIn(wr.Delta, fmt.Sprintf("rules[%d].delta", idx)); err != nil {
		return nil, err
	}
	for i, s := range wr.Seq {
		if s.Kind < int(flow.Submodularity) || s.Kind > int(flow.Decomposition) {
			return nil, fmt.Errorf("plan: decode: rules[%d].seq[%d] has unknown step kind %d", idx, i, s.Kind)
		}
		w, err := ratIn(s.W, fmt.Sprintf("rules[%d].seq[%d].w", idx, i))
		if err != nil {
			return nil, err
		}
		pr.Seq = append(pr.Seq, flow.Step{Kind: flow.StepKind(s.Kind), W: w, A: bitset.Set(s.A), B: bitset.Set(s.B)})
	}
	return pr, nil
}

// ---- Plan payload ----

func planOut(p *Plan) (*wirePlan, error) {
	if p == nil {
		return nil, errors.New("plan: encode: nil plan")
	}
	wp := &wirePlan{
		Mode:         int(p.Mode),
		Key:          p.Key,
		NumVars:      p.Schema.NumVars,
		VarNames:     p.Schema.VarNames,
		Free:         uint32(p.Free),
		Bags:         setsOut(p.Bags),
		TDBags:       p.TDBags,
		Chosen:       p.Chosen,
		Transversals: p.Transversals,
		Width:        ratOut(p.Width),
	}
	for _, a := range p.Schema.Atoms {
		wp.Atoms = append(wp.Atoms, wireAtom{Name: a.Name, Vars: uint32(a.Vars), Args: a.Args})
	}
	for _, c := range p.Cons {
		if c.LogN == nil {
			return nil, fmt.Errorf("plan: encode: constraint on %v has a nil LogN", c.Y)
		}
		wp.Cons = append(wp.Cons, wireCon{X: uint32(c.X), Y: uint32(c.Y), N: c.N, LogN: c.LogN.RatString(), Guard: c.Guard})
	}
	for _, td := range p.TDs {
		wp.TDs = append(wp.TDs, wireTD{Bags: setsOut(td.Bags), Parent: td.Parent})
	}
	for _, r := range p.Rules {
		wr, err := ruleOut(r)
		if err != nil {
			return nil, err
		}
		wp.Rules = append(wp.Rules, wr)
	}
	return wp, nil
}

func planIn(wp *wirePlan) (*Plan, error) {
	p := &Plan{
		Mode: Mode(wp.Mode),
		Key:  wp.Key,
		Schema: query.Schema{
			NumVars:  wp.NumVars,
			VarNames: wp.VarNames,
		},
		Free:         bitset.Set(wp.Free),
		Bags:         setsIn(wp.Bags),
		TDBags:       wp.TDBags,
		Chosen:       wp.Chosen,
		Transversals: wp.Transversals,
	}
	for _, a := range wp.Atoms {
		p.Schema.Atoms = append(p.Schema.Atoms, query.Atom{Name: a.Name, Vars: bitset.Set(a.Vars), Args: a.Args})
	}
	for i, c := range wp.Cons {
		logN, err := ratIn(c.LogN, fmt.Sprintf("cons[%d].log_n", i))
		if err != nil {
			return nil, err
		}
		p.Cons = append(p.Cons, query.DegreeConstraint{
			X: bitset.Set(c.X), Y: bitset.Set(c.Y), N: c.N, LogN: logN, Guard: c.Guard,
		})
	}
	for _, td := range wp.TDs {
		p.TDs = append(p.TDs, &hypergraph.Decomposition{Bags: setsIn(td.Bags), Parent: td.Parent})
	}
	for i, wr := range wp.Rules {
		r, err := ruleIn(wr, i)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	var err error
	if p.Width, err = ratIn(wp.Width, "width"); err != nil {
		return nil, err
	}
	if err := validateDecoded(p); err != nil {
		return nil, err
	}
	return p, nil
}

// validateDecoded re-checks every internal invariant the executor assumes,
// so a decoded plan is exactly as trustworthy as a freshly prepared one.
// The digest catches accidental corruption; this catches a well-formed file
// describing an inconsistent plan (it is a checksum, not a proof).
func validateDecoded(p *Plan) error {
	switch p.Mode {
	case ModeFull, ModeFhtw, ModeSubw:
	default:
		return fmt.Errorf("plan: decode: mode %d is not a committed plan mode", int(p.Mode))
	}
	q := &query.Conjunctive{Schema: p.Schema, Free: p.Free}
	if err := validateQuery(q, p.Cons); err != nil {
		return fmt.Errorf("plan: decode: %w", err)
	}
	full := bitset.Full(p.Schema.NumVars)
	for _, b := range p.Bags {
		if !b.SubsetOf(full) {
			return fmt.Errorf("plan: decode: bag %v outside the universe [%d]", b, p.Schema.NumVars)
		}
	}
	if len(p.TDBags) != len(p.TDs) {
		return fmt.Errorf("plan: decode: %d bag-index rows for %d decompositions", len(p.TDBags), len(p.TDs))
	}
	for ti, td := range p.TDs {
		if len(td.Parent) != len(td.Bags) || len(p.TDBags[ti]) != len(td.Bags) {
			return fmt.Errorf("plan: decode: decomposition %d has inconsistent shapes", ti)
		}
		for bi, idx := range p.TDBags[ti] {
			if idx < 0 || idx >= len(p.Bags) {
				return fmt.Errorf("plan: decode: decomposition %d bag index %d out of range", ti, idx)
			}
			if p.Bags[idx] != td.Bags[bi] {
				return fmt.Errorf("plan: decode: decomposition %d bag %d disagrees with the bag universe", ti, bi)
			}
		}
	}
	if p.Chosen < -1 || p.Chosen >= len(p.TDs) {
		return fmt.Errorf("plan: decode: chosen decomposition %d out of range", p.Chosen)
	}
	for ti, tr := range p.Transversals {
		for _, idx := range tr {
			if idx < 0 || idx >= len(p.Bags) {
				return fmt.Errorf("plan: decode: transversal %d bag index %d out of range", ti, idx)
			}
		}
	}
	switch p.Mode {
	case ModeFull:
		if len(p.Rules) != 1 {
			return fmt.Errorf("plan: decode: ModeFull plan carries %d rules, want 1", len(p.Rules))
		}
	case ModeFhtw:
		if p.Chosen < 0 {
			return errors.New("plan: decode: ModeFhtw plan has no chosen decomposition")
		}
		if len(p.Rules) != len(p.TDs[p.Chosen].Bags) {
			return fmt.Errorf("plan: decode: %d rules for %d chosen bags", len(p.Rules), len(p.TDs[p.Chosen].Bags))
		}
	case ModeSubw:
		if len(p.Rules) != len(p.Transversals) {
			return fmt.Errorf("plan: decode: %d rules for %d transversals", len(p.Rules), len(p.Transversals))
		}
	}
	for i, r := range p.Rules {
		if err := validateDecodedRule(r, full); err != nil {
			return fmt.Errorf("plan: decode: rule %d: %w", i, err)
		}
	}
	return nil
}

func validateDecodedRule(pr *PreparedRule, full bitset.Set) error {
	if len(pr.Targets) == 0 {
		return errors.New("no targets")
	}
	for _, t := range pr.Targets {
		if !t.SubsetOf(full) {
			return fmt.Errorf("target %v outside the universe", t)
		}
	}
	if pr.Bound == nil {
		return errors.New("missing bound")
	}
	if pr.Trivial {
		return nil
	}
	if len(pr.Lambda) == 0 || len(pr.Delta) == 0 {
		return errors.New("non-trivial rule with empty witness vectors")
	}
	for _, s := range pr.Seq {
		if s.W == nil {
			return errors.New("proof step with nil weight")
		}
		if !s.A.SubsetOf(full) || !s.B.SubsetOf(full) {
			return errors.New("proof step outside the universe")
		}
	}
	return nil
}

// ---- Envelope I/O ----

func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func encodeEnvelope(w io.Writer, format string, payload []byte) error {
	env := envelope{Format: format, Version: FormatVersion, Digest: digestOf(payload), Payload: payload}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// decodeEnvelope parses and verifies one envelope of the expected format,
// returning its raw payload bytes.
func decodeEnvelope(data []byte, format string) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("plan: decode: malformed envelope: %w", err)
	}
	return verifyEnvelope(&env, format)
}

func verifyEnvelope(env *envelope, format string) ([]byte, error) {
	if env.Format != format {
		return nil, fmt.Errorf("plan: decode: format %q, want %q", env.Format, format)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, env.Version, FormatVersion)
	}
	if digestOf(env.Payload) != env.Digest {
		return nil, ErrCodecDigest
	}
	return env.Payload, nil
}

// EncodePlan writes p to w in the versioned, digested wire format. The
// encoding is deterministic: the same plan always yields the same bytes.
func EncodePlan(w io.Writer, p *Plan) error {
	wp, err := planOut(p)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(wp)
	if err != nil {
		return err
	}
	return encodeEnvelope(w, planFormat, payload)
}

// DecodePlan reads one encoded plan from r, verifying the format version
// (ErrCodecVersion on mismatch), the payload digest (ErrCodecDigest) and
// every internal invariant the executor assumes. The returned plan is
// immutable and safe for concurrent Execute calls, exactly like the plan
// Prepare returned to the encoder.
func DecodePlan(r io.Reader) (*Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	payload, err := decodeEnvelope(data, planFormat)
	if err != nil {
		return nil, err
	}
	var wp wirePlan
	if err := json.Unmarshal(payload, &wp); err != nil {
		return nil, fmt.Errorf("plan: decode: malformed plan payload: %w", err)
	}
	return planIn(&wp)
}

// EncodeRule writes one prepared disjunctive rule to w; the wire format and
// integrity guarantees match EncodePlan's (rules are the "plan" of the
// disjunctive-datalog path, which has no surrounding Plan value).
func EncodeRule(w io.Writer, pr *PreparedRule) error {
	wr, err := ruleOut(pr)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(&wr)
	if err != nil {
		return err
	}
	return encodeEnvelope(w, ruleFormat, payload)
}

// DecodeRule reads one encoded prepared rule from r with the same
// version/digest checks as DecodePlan. The universe bound cannot be checked
// without a schema, so targets are validated against the 32-variable codec
// limit only; ExecuteRule re-validates against its schema.
func DecodeRule(r io.Reader) (*PreparedRule, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	payload, err := decodeEnvelope(data, ruleFormat)
	if err != nil {
		return nil, err
	}
	var wr wireRule
	if err := json.Unmarshal(payload, &wr); err != nil {
		return nil, fmt.Errorf("plan: decode: malformed rule payload: %w", err)
	}
	pr, err := ruleIn(wr, 0)
	if err != nil {
		return nil, err
	}
	if err := validateDecodedRule(pr, bitset.Full(32)); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	return pr, nil
}
