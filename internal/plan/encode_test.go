package plan

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
)

// encodePlan round-trips through the wire format, failing the test on any
// codec error.
func encodePlan(t *testing.T, p *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEncodeDeterministic: encoding the same plan twice must produce
// identical bytes (the digest and the snapshot diffing rely on it).
func TestEncodeDeterministic(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 100)
	for _, mode := range []Mode{ModeFull, ModeFhtw, ModeSubw} {
		p, _, err := Prepare(q, cons, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		a, b := encodePlan(t, p), encodePlan(t, p)
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: two encodings of the same plan differ", mode)
		}
	}
}

// TestEncodeDecodePlanFields: the decoded plan must carry every field of
// the original, exactly.
func TestEncodeDecodePlanFields(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 100)
	for _, mode := range []Mode{ModeFull, ModeFhtw, ModeSubw} {
		p, _, err := Prepare(q, cons, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got, err := DecodePlan(bytes.NewReader(encodePlan(t, p)))
		if err != nil {
			t.Fatalf("%v: decode: %v", mode, err)
		}
		if got.Mode != p.Mode || got.Key != p.Key || got.Free != p.Free || got.Chosen != p.Chosen {
			t.Fatalf("%v: header fields differ: %+v vs %+v", mode, got, p)
		}
		if got.Width.Cmp(p.Width) != 0 {
			t.Fatalf("%v: width %v ≠ %v", mode, got.Width, p.Width)
		}
		if len(got.Rules) != len(p.Rules) {
			t.Fatalf("%v: %d rules ≠ %d", mode, len(got.Rules), len(p.Rules))
		}
		for i, r := range p.Rules {
			g := got.Rules[i]
			if g.Bound.Cmp(r.Bound) != 0 || len(g.Seq) != len(r.Seq) ||
				len(g.Lambda) != len(r.Lambda) || len(g.Delta) != len(r.Delta) {
				t.Fatalf("%v: rule %d differs after round trip", mode, i)
			}
			for p0, w := range r.Lambda {
				if g.Lambda.Get(p0).Cmp(w) != 0 {
					t.Fatalf("%v: rule %d λ%v differs", mode, i, p0)
				}
			}
			for p0, w := range r.Delta {
				if g.Delta.Get(p0).Cmp(w) != 0 {
					t.Fatalf("%v: rule %d δ%v differs", mode, i, p0)
				}
			}
			for j, s := range r.Seq {
				gs := g.Seq[j]
				if gs.Kind != s.Kind || gs.A != s.A || gs.B != s.B || gs.W.Cmp(s.W) != 0 {
					t.Fatalf("%v: rule %d step %d differs", mode, i, j)
				}
			}
		}
		// The re-encoding of the decoded plan must be byte-identical.
		if !bytes.Equal(encodePlan(t, got), encodePlan(t, p)) {
			t.Fatalf("%v: re-encoding the decoded plan changed the bytes", mode)
		}
	}
}

// TestEncodeDecodeRule round-trips a prepared disjunctive rule.
func TestEncodeDecodeRule(t *testing.T) {
	s := &query.Schema{NumVars: 4, Atoms: []query.Atom{
		{Name: "R", Vars: bitset.Of(0, 1)},
		{Name: "S", Vars: bitset.Of(1, 2)},
		{Name: "T", Vars: bitset.Of(2, 3)},
	}}
	var cons []query.DegreeConstraint
	for i, a := range s.Atoms {
		cons = append(cons, query.Cardinality(a.Vars, 64, i))
	}
	targets := []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)}
	pr, _, err := PrepareRule(s, cons, targets)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeRule(&buf, pr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bound.Cmp(pr.Bound) != 0 || len(got.Seq) != len(pr.Seq) || len(got.Targets) != len(pr.Targets) {
		t.Fatalf("rule differs after round trip: %+v vs %+v", got, pr)
	}
}

// tamper unmarshals an envelope, applies fn, and re-marshals it.
func tamper(t *testing.T, data []byte, fn func(env map[string]any)) []byte {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	fn(env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// tamperCache edits a cache snapshot through the typed envelope, so the
// untouched entries' raw payload bytes (and digests) survive re-marshaling.
func tamperCache(t *testing.T, data []byte, fn func(env *cacheEnvelope)) []byte {
	t.Helper()
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	fn(&env)
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDecodeRejectsBadInput: wrong versions, digests, truncation and
// garbage must all be rejected cleanly, with the typed sentinels where they
// apply.
func TestDecodeRejectsBadInput(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 100)
	p, _, err := Prepare(q, cons, ModeFhtw)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodePlan(t, p)

	t.Run("wrong-version", func(t *testing.T) {
		bad := tamper(t, enc, func(env map[string]any) { env["version"] = FormatVersion + 1 })
		if _, err := DecodePlan(bytes.NewReader(bad)); !errors.Is(err, ErrCodecVersion) {
			t.Fatalf("err = %v, want ErrCodecVersion", err)
		}
	})
	t.Run("digest-mismatch", func(t *testing.T) {
		bad := tamper(t, enc, func(env map[string]any) {
			env["plan"] = json.RawMessage(`{"mode":1,"num_vars":1,"atoms":[{"name":"R","vars":1}],"free":1,"rules":[],"width":"0","chosen":-1}`)
		})
		if _, err := DecodePlan(bytes.NewReader(bad)); !errors.Is(err, ErrCodecDigest) {
			t.Fatalf("err = %v, want ErrCodecDigest", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodePlan(bytes.NewReader(enc[:len(enc)/2])); err == nil {
			t.Fatal("truncated input decoded without error")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, err := DecodePlan(strings.NewReader("not a plan at all")); err == nil {
			t.Fatal("garbage decoded without error")
		}
	})
	t.Run("wrong-format-tag", func(t *testing.T) {
		bad := tamper(t, enc, func(env map[string]any) { env["format"] = "panda-rule" })
		if _, err := DecodePlan(bytes.NewReader(bad)); err == nil {
			t.Fatal("format-tag mismatch decoded without error")
		}
	})
	t.Run("inconsistent-plan", func(t *testing.T) {
		// A digest-valid payload describing an out-of-range chosen
		// decomposition must fail semantic validation.
		var buf bytes.Buffer
		bad := *p
		bad.Chosen = len(p.TDs) + 3
		if err := EncodePlan(&buf, &bad); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePlan(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("inconsistent plan decoded without error")
		}
	})
}

// TestSaveLoadCacheWarmHit is the tentpole property: a planner re-seeded
// from a snapshot answers previously planned queries with zero LP solves,
// crediting LPSolvesSaved with the recorded build cost.
func TestSaveLoadCacheWarmHit(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 100)
	donor := NewPlanner(8)
	if _, err := donor.Prepare(q, cons, ModeSubw); err != nil {
		t.Fatal(err)
	}
	built := donor.Stats()
	if built.LPSolves == 0 {
		t.Fatal("donor paid no LP solves")
	}

	var buf bytes.Buffer
	if err := donor.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewPlanner(8)
	stats, err := fresh.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 1 || stats.Skipped != 0 {
		t.Fatalf("load stats %v, want loaded=1 skipped=0", stats)
	}
	if fresh.Len() != 1 {
		t.Fatalf("fresh planner holds %d plans, want 1", fresh.Len())
	}

	// The same query — and a renamed variant — must hit without planning.
	if _, err := fresh.Prepare(q, cons, ModeSubw); err != nil {
		t.Fatal(err)
	}
	qr, cr := cycleQuery(4, []int{2, 3, 0, 1}, nil, 100)
	if _, err := fresh.Prepare(qr, cr, ModeSubw); err != nil {
		t.Fatal(err)
	}
	st := fresh.Stats()
	if st.LPSolves != 0 || st.Misses != 0 {
		t.Fatalf("warm planner did planning work: %v", st)
	}
	if st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
	if st.LPSolvesSaved != 2*built.LPSolves {
		t.Fatalf("lp-saved = %d, want %d (2 hits × recorded cost %d)",
			st.LPSolvesSaved, 2*built.LPSolves, built.LPSolves)
	}
}

// TestLoadCacheSkipsBadEntries: a snapshot with one tampered entry loads
// the rest and reports the skip.
func TestLoadCacheSkipsBadEntries(t *testing.T) {
	donor := NewPlanner(8)
	q4, c4 := cycleQuery(4, nil, nil, 100)
	q3, c3 := cycleQuery(3, nil, nil, 100)
	if _, err := donor.Prepare(q4, c4, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Prepare(q3, c3, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}

	bad := tamperCache(t, buf.Bytes(), func(env *cacheEnvelope) {
		env.Entries[0].Digest = strings.Repeat("0", 64)
	})
	fresh := NewPlanner(8)
	stats, err := fresh.LoadCache(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 1 || stats.Skipped != 1 {
		t.Fatalf("load stats %v, want loaded=1 skipped=1", stats)
	}
	if !errors.Is(stats.FirstErr, ErrCodecDigest) {
		t.Fatalf("FirstErr = %v, want ErrCodecDigest", stats.FirstErr)
	}
	if fresh.Len() != 1 {
		t.Fatalf("planner holds %d plans, want 1", fresh.Len())
	}
}

// TestLoadCacheSkipsWholeSnapshotOnVersionMismatch: a snapshot from a
// different format version loads nothing, fails nothing.
func TestLoadCacheSkipsWholeSnapshotOnVersionMismatch(t *testing.T) {
	donor := NewPlanner(8)
	q, cons := cycleQuery(4, nil, nil, 100)
	if _, err := donor.Prepare(q, cons, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	bad := tamperCache(t, buf.Bytes(), func(env *cacheEnvelope) { env.Version = FormatVersion + 1 })
	fresh := NewPlanner(8)
	stats, err := fresh.LoadCache(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 0 || stats.Skipped != 1 || !errors.Is(stats.FirstErr, ErrCodecVersion) {
		t.Fatalf("load stats %v, want loaded=0 skipped=1 ErrCodecVersion", stats)
	}
	if fresh.Len() != 0 {
		t.Fatalf("planner holds %d plans, want 0", fresh.Len())
	}
	// Even an EMPTY snapshot at the wrong version must count a skip, so a
	// version mismatch can never read as a clean no-op.
	empty := strings.NewReader(`{"format":"panda-plan-cache","version":99,"entries":[]}`)
	stats, err = fresh.LoadCache(empty)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 || !errors.Is(stats.FirstErr, ErrCodecVersion) {
		t.Fatalf("empty wrong-version snapshot: stats %v, want skipped=1 ErrCodecVersion", stats)
	}
}

// TestLoadCachePreservesLiveEntries: an import never clobbers a plan the
// cache already holds, and malformed containers error without mutating.
func TestLoadCachePreservesLiveEntries(t *testing.T) {
	pl := NewPlanner(8)
	q, cons := cycleQuery(4, nil, nil, 100)
	if _, err := pl.Prepare(q, cons, ModeFhtw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pl.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	// Importing its own snapshot: the single key is already live.
	stats, err := pl.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 0 || stats.Skipped != 0 || stats.Duplicates != 1 {
		t.Fatalf("self-import stats %v, want loaded=0 skipped=0 duplicates=1", stats)
	}
	if pl.Len() != 1 {
		t.Fatalf("planner holds %d plans, want 1", pl.Len())
	}
	if _, err := pl.LoadCache(strings.NewReader("junk")); err == nil {
		t.Fatal("malformed container loaded without error")
	}
}

// TestLoadCacheRespectsCapacity: importing more plans than the cache holds
// evicts down to capacity.
func TestLoadCacheRespectsCapacity(t *testing.T) {
	donor := NewPlanner(8)
	for _, k := range []int{3, 4, 5} {
		q, cons := cycleQuery(k, nil, nil, 100)
		if _, err := donor.Prepare(q, cons, ModeFhtw); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := donor.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	small := NewPlanner(2)
	stats, err := small.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 3 {
		t.Fatalf("loaded %d, want 3", stats.Loaded)
	}
	if small.Len() != 2 {
		t.Fatalf("planner holds %d plans, want capacity 2", small.Len())
	}
	if small.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", small.Stats().Evictions)
	}
}
