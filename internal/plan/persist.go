package plan

import (
	"encoding/json"
	"fmt"
	"io"
)

// Cache persistence: a Planner's contents — canonical-space plans keyed by
// their renaming-invariant signatures, each with the LP cost its build paid
// — can be snapshotted to a writer and re-seeded into another Planner (a
// restarted process, or a replica fed by a planning tier). The snapshot is
// an envelope of independently digested entries:
//
//	{"format": "panda-plan-cache", "version": V, "entries": [
//	  {"key": "<canonical signature>", "lp_cost": N, "digest": "…", "plan": {…}}, …]}
//
// LoadCache is deliberately forgiving: an entry with a version or digest
// mismatch, a malformed payload, or an inconsistent plan is skipped — never
// fatal — so one stale or corrupted entry cannot keep a server from warm-
// starting on the rest. Each loaded entry re-seeds its GreedyDual eviction
// priority from the recorded LP cost, so an expensive imported plan is as
// eviction-resistant as it was in the donor process, and every later cache
// hit on it credits LPSolvesSaved with that same cost.

type cacheEnvelope struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Clock is the exporting planner's cache clock at snapshot time. A
	// delta consumer (the router's push loop) records it as its watermark
	// and asks for "entries newer than Clock" next time; full snapshots
	// carry it too, so the first delta after a full import starts correct.
	// Absent (0) in snapshots written before the field existed.
	Clock   uint64       `json:"clock,omitempty"`
	Entries []cacheEntry `json:"entries"`
}

type cacheEntry struct {
	Key    string          `json:"key"`
	LPCost uint64          `json:"lp_cost"`
	Digest string          `json:"digest"`
	Plan   json.RawMessage `json:"plan"`
}

// CacheLoadStats reports what a LoadCache call did. FirstErr records why
// the first skipped entry was rejected (nil when nothing was skipped);
// callers that must fail loudly on any rejection — e.g. an import endpoint
// — dispatch on it with errors.Is(…, ErrCodecVersion / ErrCodecDigest).
type CacheLoadStats struct {
	// Loaded counts entries installed into the cache.
	Loaded int
	// Skipped counts entries rejected for cause: a version or digest
	// mismatch, a malformed payload, or a key/signature disagreement.
	Skipped int
	// Duplicates counts entries whose key the cache already held — benign
	// (the live plan is identical by construction) and therefore not a
	// rejection.
	Duplicates int
	// FirstErr is the rejection reason of the first skipped entry.
	FirstErr error
	// SkippedKeys lists the canonical signature keys of the skipped
	// entries (capped at maxSkippedKeys). A signature key is a complete
	// encoding of the canonical query shape and constraint set, so a
	// caller can hand these to ReplanKey / DB.ReplanSignatures and rebuild
	// the dropped plans in the background instead of re-paying their LP
	// solves lazily at traffic time — the cross-version migration shim.
	SkippedKeys []string
}

// maxSkippedKeys bounds CacheLoadStats.SkippedKeys so a hostile snapshot
// full of junk entries cannot balloon the stats (or the background replan
// work a caller schedules from them).
const maxSkippedKeys = 512

func (s CacheLoadStats) String() string {
	if s.FirstErr != nil {
		return fmt.Sprintf("loaded=%d skipped=%d duplicates=%d (first: %v)", s.Loaded, s.Skipped, s.Duplicates, s.FirstErr)
	}
	return fmt.Sprintf("loaded=%d skipped=%d duplicates=%d", s.Loaded, s.Skipped, s.Duplicates)
}

// SaveCache writes every cached plan to w, most recently used first, in the
// versioned panda-plan-cache format. The snapshot is taken atomically with
// respect to concurrent Prepare calls; the (immutable) plans are then
// encoded outside the planner lock.
func (pl *Planner) SaveCache(w io.Writer) error {
	return pl.SaveCacheSince(w, 0)
}

// SaveCacheSince writes only the entries installed after the given cache
// clock — the delta seam the fleet push loop is built on. since = 0 is a
// full snapshot. The envelope records the planner's clock as of the
// snapshot, taken atomically with the entry selection, so a consumer that
// imports the delta and remembers the envelope clock sees every entry
// exactly once across successive pulls.
func (pl *Planner) SaveCacheSince(w io.Writer, since uint64) error {
	pl.mu.Lock()
	type snap struct {
		key    string
		lpCost uint64
		plan   *Plan
	}
	snaps := make([]snap, 0, pl.ll.Len())
	for el := pl.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*entry)
		if ent.gen <= since {
			continue
		}
		snaps = append(snaps, snap{key: ent.key, lpCost: ent.lpCost, plan: ent.plan})
	}
	clock := pl.seq
	pl.mu.Unlock()

	env := cacheEnvelope{Format: cacheFormat, Version: FormatVersion, Clock: clock}
	for _, s := range snaps {
		wp, err := planOut(s.plan)
		if err != nil {
			return fmt.Errorf("plan: save cache entry %q: %w", s.key, err)
		}
		payload, err := json.Marshal(wp)
		if err != nil {
			return fmt.Errorf("plan: save cache entry %q: %w", s.key, err)
		}
		env.Entries = append(env.Entries, cacheEntry{
			Key:    s.key,
			LPCost: s.lpCost,
			Digest: digestOf(payload),
			Plan:   payload,
		})
	}
	return json.NewEncoder(w).Encode(&env)
}

// LoadCache reads a panda-plan-cache snapshot from r and installs its
// entries. It returns an error only when the container itself is unreadable
// (I/O failure, malformed JSON, wrong format tag); individual entries are
// skipped — with the reason recorded in the returned stats — on a version
// or digest mismatch, a malformed or inconsistent plan, or a key that
// disagrees with its plan's recorded signature. A key the cache already
// holds counts as a (benign) duplicate: live entries are never clobbered
// by an import.
func (pl *Planner) LoadCache(r io.Reader) (CacheLoadStats, error) {
	var stats CacheLoadStats
	data, err := io.ReadAll(r)
	if err != nil {
		return stats, err
	}
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return stats, fmt.Errorf("plan: load cache: malformed envelope: %w", err)
	}
	if env.Format != cacheFormat {
		return stats, fmt.Errorf("plan: load cache: format %q, want %q", env.Format, cacheFormat)
	}
	skip := func(key string, err error) {
		stats.Skipped++
		if stats.FirstErr == nil {
			stats.FirstErr = err
		}
		if key != "" && len(stats.SkippedKeys) < maxSkippedKeys {
			stats.SkippedKeys = append(stats.SkippedKeys, key)
		}
	}
	if env.Version != FormatVersion {
		// A different format version makes the whole snapshot
		// untrustworthy; skip it all (counting at least one skip even for
		// an empty snapshot, so "nothing loaded because of a version
		// mismatch" is never mistaken for a clean no-op). The entry KEYS
		// are still trustworthy enough to report — a key is a plain string
		// whose worst failure mode is an unparseable replan request — so a
		// FormatVersion bump surfaces exactly which signatures it dropped.
		stats.Skipped = max(1, len(env.Entries))
		stats.FirstErr = fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, env.Version, FormatVersion)
		for _, ent := range env.Entries {
			if ent.Key != "" && len(stats.SkippedKeys) < maxSkippedKeys {
				stats.SkippedKeys = append(stats.SkippedKeys, ent.Key)
			}
		}
		return stats, nil
	}
	type loaded struct {
		key    string
		lpCost uint64
		plan   *Plan
	}
	var plans []loaded
	for i, ent := range env.Entries {
		if digestOf(ent.Plan) != ent.Digest {
			skip(ent.Key, fmt.Errorf("%w (entry %d)", ErrCodecDigest, i))
			continue
		}
		var wp wirePlan
		if err := json.Unmarshal(ent.Plan, &wp); err != nil {
			skip(ent.Key, fmt.Errorf("plan: load cache entry %d: malformed payload: %w", i, err))
			continue
		}
		p, err := planIn(&wp)
		if err != nil {
			skip(ent.Key, fmt.Errorf("plan: load cache entry %d: %w", i, err))
			continue
		}
		if p.Key != ent.Key || ent.Key == "" {
			skip(ent.Key, fmt.Errorf("plan: load cache entry %d: key disagrees with the plan's signature", i))
			continue
		}
		plans = append(plans, loaded{key: ent.Key, lpCost: ent.LPCost, plan: p})
	}

	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, l := range plans {
		if _, dup := pl.index[l.key]; dup {
			stats.Duplicates++
			continue
		}
		// Entries arrive most recently used first; PushBack preserves that
		// order below any live entries, and the GreedyDual priority is
		// re-seeded from the recorded LP cost so an expensive imported plan
		// keeps its eviction resistance. Imports advance the cache clock
		// like fresh builds do, so a replica's own delta exports (and its
		// /v1/info plan clock) reflect pushed entries.
		pl.seq++
		el := pl.ll.PushBack(&entry{key: l.key, plan: l.plan, lpCost: l.lpCost, pri: pl.clock + l.lpCost, gen: pl.seq})
		pl.index[l.key] = el
		stats.Loaded++
	}
	pl.evictOverCap()
	return stats, nil
}
