// Package plan reifies the data-independent half of PANDA as first-class,
// reusable query plans. The paper's evaluation algorithms (Corollaries
// 7.10/7.11/7.13, Theorem 1.9) factor into a planning phase — exact-rational
// LP solves (Lemma 5.2), Shannon-flow proof-sequence construction
// (Theorem 5.9), and tree-decomposition enumeration — and an execution phase
// that interprets the proof sequences over a concrete instance. A Plan
// captures everything the planning phase produces: the chosen tree
// decomposition(s), per-bag fractional edge covers, the PANDA proof sequence
// of every disjunctive rule, and a width certificate (the da-fhtw or da-subw
// value as an exact rational). internal/core.Execute runs the data-dependent
// phase against a Plan; a Planner caches Plans in a concurrency-safe LRU
// keyed by a canonical signature of (query shape, free variables, constraint
// set), so repeated traffic pays the (often exponential-in-query-size)
// planning cost once.
//
// This package is deliberately data-independent: it never touches
// internal/relation, so internal/core can layer execution on top of it
// without an import cycle.
package plan

import (
	"context"
	"fmt"
	"math/big"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/lp"
	"panda/internal/query"
)

// Mode selects which of the paper's evaluation strategies a Plan encodes.
type Mode int

const (
	// ModeAuto picks ModeFull for full queries; for every other query the
	// planner builds both the fhtw and subw candidates and keeps the one
	// whose exact width certificate is smaller (ties go to ModeFhtw, whose
	// single-decomposition execution does strictly less work).
	ModeAuto Mode = iota
	// ModeFull is PANDA + semijoin reduction (Corollary 7.10); full
	// queries only.
	ModeFull
	// ModeFhtw is the degree-aware fractional-hypertree-width plan
	// (Corollary 7.11): one disjunctive rule per bag of the best tree
	// decomposition.
	ModeFhtw
	// ModeSubw is the degree-aware submodular-width plan (Theorem 1.9 /
	// Corollary 7.13): one disjunctive rule per inclusion-minimal bag
	// transversal.
	ModeSubw
)

// ModeRule marks results produced by a disjunctive datalog rule rather
// than a conjunctive plan; it is never a valid planning mode.
const ModeRule Mode = -1

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFull:
		return "full"
	case ModeFhtw:
		return "fhtw"
	case ModeRule:
		return "rule"
	default:
		return "subw"
	}
}

// PreparedRule is the reified planning output for one disjunctive datalog
// rule: the polymatroid bound, the λ/δ pair of Lemma 5.2, and the proof
// sequence of Theorem 5.9. Execution clones Lambda and Delta before
// mutating, so a PreparedRule may be shared by concurrent executions.
type PreparedRule struct {
	// Targets are the rule heads ⋁ T_B.
	Targets []bitset.Set
	// Trivial marks a rule with an ∅ target, answered by the unit table
	// with no planning at all (Section 1.3).
	Trivial bool
	// Bound is LogSizeBound_{Γn∩HDC}(P) in log₂ units.
	Bound *big.Rat
	// Lambda, Delta are the scaled witness vectors (‖λ‖₁ = 1).
	Lambda, Delta flow.Vec
	// Seq is the proof sequence interpreted by the execution engine.
	Seq flow.ProofSequence
}

// Cover is an exact fractional edge cover of one bag: the classic ρ*(H_B)
// LP (Eq. 33) restricted to the bag, with per-atom weights.
type Cover struct {
	Bag     bitset.Set
	Weights []*big.Rat // aligned with the schema's atoms
	Value   *big.Rat   // ρ*(H_Bag)
}

// Plan is a fully reified query plan: every LP solve, proof sequence and
// decomposition choice made ahead of data. Plans are immutable after
// Prepare; executions must not mutate them.
type Plan struct {
	Mode Mode
	// Key is the canonical signature the plan cache indexes by; set only
	// on plans that went through a Planner (direct Prepare skips
	// canonicalization — the one-shot eval paths never need it).
	Key string
	// Schema and Free identify the query in the caller's variable space.
	Schema query.Schema
	Free   bitset.Set
	// Cons is the complete, validated constraint set (every atom carries a
	// cardinality constraint; every constraint is guarded).
	Cons []query.DegreeConstraint

	// Bags is the distinct bag universe across all tree decompositions;
	// TDs/TDBags index into it. Nil for ModeFull.
	Bags   []bitset.Set
	TDs    []*hypergraph.Decomposition
	TDBags [][]int
	// Chosen is the index of the selected decomposition (ModeFhtw), −1
	// otherwise.
	Chosen int
	// Transversals are the inclusion-minimal bag transversals driving the
	// ModeSubw rules, as indices into Bags.
	Transversals [][]int

	// Rules holds one prepared rule per execution unit: the single full
	// rule (ModeFull), one per chosen-decomposition bag (ModeFhtw), or one
	// per transversal (ModeSubw).
	Rules []*PreparedRule
	// Width is the plan's width certificate in log₂ units: the polymatroid
	// bound (ModeFull), the worst-bag bound of the chosen decomposition
	// (da-fhtw, ModeFhtw), or the worst rule bound (da-subw, ModeSubw).
	Width *big.Rat
}

// BuildStats reports the planning work a Prepare call performed; the plan
// cache uses it to prove that hits skip the LP entirely.
type BuildStats struct {
	LPSolves   int // exact simplex solves (maximin bounds + cover LPs)
	ProofSteps int // total proof-sequence length across rules
}

// ResolveMode maps ModeAuto to ModeFull for full queries. For non-full
// queries ModeAuto is returned unchanged: the concrete fhtw-vs-subw choice
// is cost-based, made inside Prepare from the width certificates, and the
// cache keys such queries under ModeAuto so the comparison runs once per
// signature.
func ResolveMode(q *query.Conjunctive, mode Mode) Mode {
	if mode == ModeAuto && q.IsFull() {
		return ModeFull
	}
	return mode
}

// validateSchema rejects variables outside the bitset universe before any
// bitmask arithmetic can panic on them.
func validateSchema(s *query.Schema) error {
	if s.NumVars < 0 || s.NumVars > 32 {
		return fmt.Errorf("plan: %d variables exceed the 32-bit set universe", s.NumVars)
	}
	full := bitset.Full(s.NumVars)
	for _, a := range s.Atoms {
		if !a.Vars.SubsetOf(full) {
			return fmt.Errorf("plan: atom %s uses variables %v outside the universe [%d]", a.Name, a.Vars, s.NumVars)
		}
	}
	return nil
}

// validateQuery checks the schema, free set and constraint guards.
func validateQuery(q *query.Conjunctive, cons []query.DegreeConstraint) error {
	if err := validateSchema(&q.Schema); err != nil {
		return err
	}
	if !q.Free.SubsetOf(bitset.Full(q.NumVars)) {
		return fmt.Errorf("plan: free set %v outside the universe [%d]", q.Free, q.NumVars)
	}
	return checkGuards(&q.Schema, cons)
}

// checkGuards validates every constraint's shape and guard against the
// schema (the schema-level equivalent of core's instance-side checks).
func checkGuards(s *query.Schema, cons []query.DegreeConstraint) error {
	for _, c := range cons {
		if err := c.Validate(s.NumVars); err != nil {
			return err
		}
		if c.Guard < 0 || c.Guard >= len(s.Atoms) {
			return fmt.Errorf("plan: constraint on %v lacks a guard atom", c.Y)
		}
		if !c.Y.SubsetOf(s.Atoms[c.Guard].Vars) {
			return fmt.Errorf("plan: atom %s cannot guard constraint on %v",
				s.Atoms[c.Guard].Name, c.Y)
		}
	}
	return nil
}

func toFlowDCs(s *query.Schema, dcs []query.DegreeConstraint) ([]flow.DC, error) {
	out := make([]flow.DC, len(dcs))
	for i, c := range dcs {
		if err := c.Validate(s.NumVars); err != nil {
			return nil, err
		}
		out[i] = flow.DC{X: c.X, Y: c.Y, LogN: c.LogN}
	}
	return out, nil
}

// PrepareRule runs the planning phase for a single disjunctive rule:
// polymatroid-bound LP, witness extraction and proof-sequence construction.
// The constraint set must be complete (guarded, with cardinalities); guards
// are validated here so a prepared rule is always executable.
func PrepareRule(s *query.Schema, cons []query.DegreeConstraint, targets []bitset.Set) (*PreparedRule, *BuildStats, error) {
	return PrepareRuleContext(context.Background(), s, cons, targets)
}

// PrepareRuleContext is PrepareRule honoring ctx: cancellation is checked
// before the LP solve, so an expired context aborts planning promptly.
func PrepareRuleContext(ctx context.Context, s *query.Schema, cons []query.DegreeConstraint, targets []bitset.Set) (*PreparedRule, *BuildStats, error) {
	bs := &BuildStats{}
	if err := validateSchema(s); err != nil {
		return nil, bs, err
	}
	full := bitset.Full(s.NumVars)
	for _, b := range targets {
		if !b.SubsetOf(full) {
			return nil, bs, fmt.Errorf("plan: target %v outside the universe [%d]", b, s.NumVars)
		}
	}
	if err := checkGuards(s, cons); err != nil {
		return nil, bs, err
	}
	pr, err := prepareRule(ctx, s, cons, targets, bs)
	return pr, bs, err
}

func prepareRule(ctx context.Context, s *query.Schema, cons []query.DegreeConstraint, targets []bitset.Set, bs *BuildStats) (*PreparedRule, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("plan: rule has no targets")
	}
	for _, b := range targets {
		if b == 0 {
			return &PreparedRule{Targets: targets, Trivial: true, Bound: new(big.Rat)}, nil
		}
	}
	fdcs, err := toFlowDCs(s, cons)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bs.LPSolves++
	res, err := flow.MaximinBound(s.NumVars, fdcs, targets)
	if err != nil {
		return nil, err
	}
	seq, err := flow.ConstructProof(res.Lambda, res.Delta, res.Witness)
	if err != nil {
		return nil, err
	}
	bs.ProofSteps += len(seq)
	return &PreparedRule{
		Targets: targets,
		Bound:   res.Bound,
		Lambda:  res.Lambda,
		Delta:   res.Delta,
		Seq:     seq,
	}, nil
}

// fractionalCover solves ρ*(H_B) exactly, returning the per-edge weights.
func fractionalCover(h *hypergraph.Hypergraph, b bitset.Set, bs *BuildStats) (Cover, error) {
	prob := lp.NewProblem(len(h.Edges), false)
	one := big.NewRat(1, 1)
	for j := range h.Edges {
		prob.SetObj(j, one)
	}
	for _, v := range b.Vars() {
		row := map[int]*big.Rat{}
		for j, e := range h.Edges {
			if e.Contains(v) {
				row[j] = one
			}
		}
		if len(row) == 0 {
			return Cover{}, fmt.Errorf("plan: bag vertex %d uncovered by any atom", v)
		}
		prob.AddConstraint(row, lp.Ge, one)
	}
	bs.LPSolves++
	sol, err := prob.Solve()
	if err != nil {
		return Cover{}, err
	}
	if sol.Status != lp.Optimal {
		return Cover{}, fmt.Errorf("plan: cover LP %v", sol.Status)
	}
	return Cover{Bag: b, Weights: sol.X, Value: sol.Objective}, nil
}

// Prepare runs the complete data-independent planning phase for q under the
// given constraint set and returns the reified plan. The constraint set must
// be complete: every constraint guarded by an atom and (for the LP to be
// bounded) every atom carrying a cardinality constraint —
// core.CompleteConstraints derives the latter from an instance.
//
// No instance is consulted: everything here can be cached and amortized
// across executions.
func Prepare(q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) (*Plan, *BuildStats, error) {
	return PrepareContext(context.Background(), q, cons, mode)
}

// PrepareContext is Prepare honoring ctx: cancellation is checked between
// the per-bag and per-transversal LP solves, so an expired context aborts a
// long planning phase between solves rather than after the whole batch.
func PrepareContext(ctx context.Context, q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) (*Plan, *BuildStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mode = ResolveMode(q, mode)
	bs := &BuildStats{}
	if err := ctx.Err(); err != nil {
		return nil, bs, err
	}
	if err := validateQuery(q, cons); err != nil {
		return nil, bs, err
	}
	p := &Plan{
		Mode:   mode,
		Schema: copySchema(&q.Schema),
		Free:   q.Free,
		Cons:   append([]query.DegreeConstraint(nil), cons...),
		Chosen: -1,
	}
	h := q.Hypergraph()
	switch mode {
	case ModeFull:
		if !q.IsFull() {
			return nil, bs, fmt.Errorf("plan: ModeFull needs a full query")
		}
		full := bitset.Full(q.NumVars)
		pr, err := prepareRule(ctx, &p.Schema, cons, []bitset.Set{full}, bs)
		if err != nil {
			return nil, bs, err
		}
		p.Rules = []*PreparedRule{pr}
		p.Width = pr.Bound
		return p, bs, nil
	case ModeFhtw, ModeSubw, ModeAuto:
		// fall through to the tree-decomposition machinery below; ModeAuto
		// builds both candidates and keeps the smaller certificate.
	default:
		return nil, bs, fmt.Errorf("plan: unknown mode %d", int(mode))
	}

	if !h.CoversAll() {
		return nil, bs, fmt.Errorf("plan: query body does not cover all variables")
	}
	tds, err := h.AllDecompositions()
	if err != nil {
		return nil, bs, err
	}
	p.TDs = tds
	bagIdx := map[bitset.Set]int{}
	for _, d := range tds {
		var idxs []int
		for _, b := range d.Bags {
			i, ok := bagIdx[b]
			if !ok {
				i = len(p.Bags)
				bagIdx[b] = i
				p.Bags = append(p.Bags, b)
			}
			idxs = append(idxs, i)
		}
		p.TDBags = append(p.TDBags, idxs)
	}
	fdcs, err := toFlowDCs(&q.Schema, cons)
	if err != nil {
		return nil, bs, err
	}

	// fhtw candidate: one LP per distinct bag; the results double as the
	// rule plans of the chosen decomposition (the simplex is deterministic,
	// so the reuse is behavior-preserving). Proof sequences are constructed
	// only if the candidate is committed.
	var bagRes []*flow.MaximinResult
	fhtwChosen := -1
	var fhtwWidth *big.Rat
	if mode == ModeFhtw || mode == ModeAuto {
		bagRes = make([]*flow.MaximinResult, len(p.Bags))
		for i, b := range p.Bags {
			if err := ctx.Err(); err != nil {
				return nil, bs, err
			}
			bs.LPSolves++
			r, err := flow.MaximinBound(q.NumVars, fdcs, []bitset.Set{b})
			if err != nil {
				return nil, bs, err
			}
			bagRes[i] = r
		}
		for ti := range p.TDs {
			worst := new(big.Rat)
			for _, bi := range p.TDBags[ti] {
				if bagRes[bi].Bound.Cmp(worst) > 0 {
					worst = bagRes[bi].Bound
				}
			}
			if fhtwChosen == -1 || worst.Cmp(fhtwWidth) < 0 {
				fhtwChosen, fhtwWidth = ti, worst
			}
		}
	}

	// subw candidate: one rule per inclusion-minimal bag transversal
	// (Lemma 7.12); the width certificate is the worst rule bound, which is
	// exactly the degree-aware submodular width. Only the bound LPs run
	// here — proof sequences, like the fhtw candidate's, are constructed
	// only if the candidate is committed.
	var trs [][]int
	var trTargets [][]bitset.Set
	var trRes []*flow.MaximinResult
	var subwWidth *big.Rat
	if mode == ModeSubw || mode == ModeAuto {
		trs, err = hypergraph.MinimalTransversals(p.Bags, p.TDBags)
		if err != nil {
			return nil, bs, err
		}
		subwWidth = new(big.Rat)
		for _, tr := range trs {
			if err := ctx.Err(); err != nil {
				return nil, bs, err
			}
			targets := make([]bitset.Set, len(tr))
			for i, bi := range tr {
				targets[i] = p.Bags[bi]
			}
			bs.LPSolves++
			r, err := flow.MaximinBound(q.NumVars, fdcs, targets)
			if err != nil {
				return nil, bs, err
			}
			trTargets = append(trTargets, targets)
			trRes = append(trRes, r)
			if r.Bound.Cmp(subwWidth) > 0 {
				subwWidth = r.Bound
			}
		}
	}

	if mode == ModeAuto {
		// Cost-based choice from the exact certificates: da-subw ≤ da-fhtw
		// always, so subw wins exactly when it is strictly smaller; on ties
		// the fhtw plan executes strictly less work (one decomposition, one
		// rule per bag, a single Yannakakis pass).
		if subwWidth.Cmp(fhtwWidth) < 0 {
			mode = ModeSubw
		} else {
			mode = ModeFhtw
		}
		p.Mode = mode
	}

	if mode == ModeSubw {
		p.Transversals = trs
		p.Width = subwWidth
		for ti, r := range trRes {
			seq, err := flow.ConstructProof(r.Lambda, r.Delta, r.Witness)
			if err != nil {
				return nil, bs, err
			}
			bs.ProofSteps += len(seq)
			p.Rules = append(p.Rules, &PreparedRule{
				Targets: trTargets[ti],
				Bound:   r.Bound,
				Lambda:  r.Lambda,
				Delta:   r.Delta,
				Seq:     seq,
			})
		}
		return p, bs, nil
	}

	p.Chosen = fhtwChosen
	p.Width = fhtwWidth
	td := p.TDs[fhtwChosen]
	for i, b := range td.Bags {
		r := bagRes[p.TDBags[fhtwChosen][i]]
		seq, err := flow.ConstructProof(r.Lambda, r.Delta, r.Witness)
		if err != nil {
			return nil, bs, err
		}
		bs.ProofSteps += len(seq)
		p.Rules = append(p.Rules, &PreparedRule{
			Targets: []bitset.Set{b},
			Bound:   r.Bound,
			Lambda:  r.Lambda,
			Delta:   r.Delta,
			Seq:     seq,
		})
	}
	return p, bs, nil
}

// Covers computes fractional edge covers for every bag the plan touches —
// the chosen decomposition's bags (ModeFhtw), the whole bag universe
// (ModeSubw), or the full variable set (ModeFull). Execution never needs
// them, so they are computed on demand (one small LP per bag) rather than
// in Prepare; the result is not memoized.
func (p *Plan) Covers() ([]Cover, error) {
	h := p.Schema.Hypergraph()
	var bags []bitset.Set
	switch {
	case p.Mode == ModeFull:
		bags = []bitset.Set{bitset.Full(p.Schema.NumVars)}
	case p.Chosen >= 0:
		bags = p.TDs[p.Chosen].Bags
	default:
		bags = p.Bags
	}
	bs := &BuildStats{}
	out := make([]Cover, 0, len(bags))
	for _, b := range bags {
		cov, err := fractionalCover(h, b, bs)
		if err != nil {
			return nil, err
		}
		out = append(out, cov)
	}
	return out, nil
}

func copySchema(s *query.Schema) query.Schema {
	return query.Schema{
		NumVars:  s.NumVars,
		VarNames: append([]string(nil), s.VarNames...),
		Atoms:    append([]query.Atom(nil), s.Atoms...),
	}
}
