package plan

import (
	"math/big"
	"testing"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/query"
	"panda/internal/widths"
)

type queryAtom = query.Atom

// TestPrepareFhtwWidthCertificate: with unit logs the fhtw plan's width
// certificate must equal the classic da-fhtw of the 4-cycle (2).
func TestPrepareFhtwWidthCertificate(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 2) // log₂ 2 = 1 per edge
	p, bs, err := Prepare(q, cons, ModeFhtw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Width.Cmp(big.NewRat(2, 1)) != 0 {
		t.Fatalf("fhtw width certificate %v, want 2", p.Width)
	}
	if bs.LPSolves == 0 {
		t.Fatal("Prepare reported zero LP solves")
	}
	if p.Chosen < 0 || p.Chosen >= len(p.TDs) {
		t.Fatalf("chosen decomposition %d out of range", p.Chosen)
	}
	td := p.TDs[p.Chosen]
	if len(p.Rules) != len(td.Bags) {
		t.Fatalf("%d rules for %d bags", len(p.Rules), len(td.Bags))
	}
	for i, r := range p.Rules {
		if len(r.Targets) != 1 || r.Targets[0] != td.Bags[i] {
			t.Fatalf("rule %d targets %v, want bag %v", i, r.Targets, td.Bags[i])
		}
		if len(r.Seq) == 0 {
			t.Fatalf("rule %d has an empty proof sequence", i)
		}
	}
	// The cross-check against the widths package.
	var dcs []flow.DC
	for _, c := range cons {
		dcs = append(dcs, flow.DC{X: c.X, Y: c.Y, LogN: c.LogN})
	}
	want, err := widths.DaFhtw(q.Hypergraph(), dcs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Width.Cmp(want) != 0 {
		t.Fatalf("plan width %v ≠ widths.DaFhtw %v", p.Width, want)
	}
}

// TestPrepareSubwWidthCertificate: the subw plan's certificate must equal
// da-subw (3/2 on the unit-log 4-cycle).
func TestPrepareSubwWidthCertificate(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 2)
	p, _, err := Prepare(q, cons, ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Width.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("subw width certificate %v, want 3/2", p.Width)
	}
	if len(p.Transversals) != len(p.Rules) {
		t.Fatalf("%d rules for %d transversals", len(p.Rules), len(p.Transversals))
	}
	var dcs []flow.DC
	for _, c := range cons {
		dcs = append(dcs, flow.DC{X: c.X, Y: c.Y, LogN: c.LogN})
	}
	want, err := widths.DaSubw(q.Hypergraph(), dcs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Width.Cmp(want) != 0 {
		t.Fatalf("plan width %v ≠ widths.DaSubw %v", p.Width, want)
	}
}

// TestPrepareCovers: every reified cover must actually cover its bag.
func TestPrepareCovers(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 100)
	for _, mode := range []Mode{ModeFull, ModeFhtw, ModeSubw} {
		p, _, err := Prepare(q, cons, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		covers, err := p.Covers()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(covers) == 0 {
			t.Fatalf("%v: no covers", mode)
		}
		for _, cov := range covers {
			for _, v := range cov.Bag.Vars() {
				total := new(big.Rat)
				for j, a := range q.Atoms {
					if a.Vars.Contains(v) {
						total.Add(total, cov.Weights[j])
					}
				}
				if total.Cmp(big.NewRat(1, 1)) < 0 {
					t.Fatalf("%v: cover of %v leaves vertex %d under-covered (%v)", mode, cov.Bag, v, total)
				}
			}
		}
	}
}

// TestPrepareModeAuto mirrors the facade dispatch.
func TestPrepareModeAuto(t *testing.T) {
	qf, cons := cycleQuery(4, nil, nil, 16)
	p, _, err := Prepare(qf, cons, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeFull {
		t.Fatalf("full query resolved to %v", p.Mode)
	}
	qb, cons := cycleQuery(4, nil, nil, 16)
	qb.Free = 0
	p, _, err = Prepare(qb, cons, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeSubw {
		t.Fatalf("Boolean query resolved to %v", p.Mode)
	}
}

// TestModeAutoCostBased: golden check that cost-based ModeAuto commits the
// strategy whose exact width certificate is the minimum of the fhtw and
// subw candidates, with ties going to the cheaper fhtw execution.
func TestModeAutoCostBased(t *testing.T) {
	check := func(name string, q *query.Conjunctive, cons []query.DegreeConstraint) {
		t.Helper()
		auto, _, err := Prepare(q, cons, ModeAuto)
		if err != nil {
			t.Fatalf("%s: auto: %v", name, err)
		}
		fh, _, err := Prepare(q, cons, ModeFhtw)
		if err != nil {
			t.Fatalf("%s: fhtw: %v", name, err)
		}
		sw, _, err := Prepare(q, cons, ModeSubw)
		if err != nil {
			t.Fatalf("%s: subw: %v", name, err)
		}
		min := fh.Width
		if sw.Width.Cmp(min) < 0 {
			min = sw.Width
		}
		if auto.Width.Cmp(min) != 0 {
			t.Fatalf("%s: auto certificate %v, want min(fhtw %v, subw %v)",
				name, auto.Width, fh.Width, sw.Width)
		}
		wantMode := ModeFhtw
		if sw.Width.Cmp(fh.Width) < 0 {
			wantMode = ModeSubw
		}
		if auto.Mode != wantMode {
			t.Fatalf("%s: auto chose %v (fhtw %v, subw %v), want %v",
				name, auto.Mode, fh.Width, sw.Width, wantMode)
		}
	}

	// Boolean 4-cycle: subw 3/2 strictly below fhtw 2 → ModeSubw.
	qb, cons := cycleQuery(4, nil, nil, 2)
	qb.Free = 0
	check("boolean 4-cycle", qb, cons)

	// Acyclic projection path: the certificates tie → ModeFhtw.
	qp := &query.Conjunctive{
		Schema: query.Schema{NumVars: 3, Atoms: []queryAtom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
		}},
		Free: bitset.Of(0, 2),
	}
	pcons := []query.DegreeConstraint{
		query.Cardinality(bitset.Of(0, 1), 16, 0),
		query.Cardinality(bitset.Of(1, 2), 16, 1),
	}
	check("acyclic path projection", qp, pcons)

	// Boolean 5-cycle: a second strict-win fixture at a different width.
	q5, cons5 := cycleQuery(5, nil, nil, 2)
	q5.Free = 0
	check("boolean 5-cycle", q5, cons5)
}

// TestPrepareErrors: malformed inputs are rejected before any LP runs.
func TestPrepareErrors(t *testing.T) {
	q, cons := cycleQuery(4, nil, nil, 8)
	// Unguarded constraint.
	c := cons[0]
	c.Guard = -1
	if _, _, err := Prepare(q, append(cons[1:len(cons):len(cons)], c), ModeFhtw); err == nil {
		t.Fatal("unguarded constraint accepted")
	}
	// Guard atom that cannot cover the constraint.
	c = cons[0]
	c.Guard = 2 // atom over other variables
	if c.Y.SubsetOf(q.Atoms[2].Vars) {
		t.Fatal("test setup: guard accidentally valid")
	}
	if _, _, err := Prepare(q, append(cons[1:len(cons):len(cons)], c), ModeFhtw); err == nil {
		t.Fatal("mismatched guard accepted")
	}
	// ModeFull on a non-full query.
	qb := *q
	qb.Free = bitset.Of(0)
	if _, _, err := Prepare(&qb, cons, ModeFull); err == nil {
		t.Fatal("ModeFull accepted a non-full query")
	}
	// Variables outside the universe must error, not panic (both in the
	// direct and the cached path).
	qf := *q
	qf.Free = q.Free.Add(10)
	if _, _, err := Prepare(&qf, cons, ModeAuto); err == nil {
		t.Fatal("free variable outside universe accepted")
	}
	if _, err := NewPlanner(2).Prepare(&qf, cons, ModeAuto); err == nil {
		t.Fatal("planner accepted free variable outside universe")
	}
	qa := *q
	qa.Schema.Atoms = append([]queryAtom(nil), q.Atoms...)
	qa.Schema.Atoms[0].Vars = qa.Atoms[0].Vars.Add(20)
	if _, _, err := Prepare(&qa, cons, ModeAuto); err == nil {
		t.Fatal("atom variable outside universe accepted")
	}
}

// TestRebindRoundTrip: caller → canonical → caller must be the identity on
// everything the executor consumes.
func TestRebindRoundTrip(t *testing.T) {
	q, cons := cycleQuery(4, []int{1, 3, 0, 2}, []int{3, 1, 0, 2}, 32)
	p, _, err := Prepare(q, cons, ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := Canonicalize(q, cons, ModeSubw)
	if err != nil {
		t.Fatal(err)
	}
	p.Key = sig.Key
	rt := p.toCanonical(sig).fromCanonical(sig, &q.Schema, q.Free)
	if rt.Key != p.Key || rt.Mode != p.Mode || rt.Free != p.Free {
		t.Fatal("round trip changed identity fields")
	}
	if rt.Width.Cmp(p.Width) != 0 {
		t.Fatalf("round trip changed width: %v → %v", p.Width, rt.Width)
	}
	// The bag universe must be preserved as a set.
	bags := map[bitset.Set]bool{}
	for _, b := range p.Bags {
		bags[b] = true
	}
	for _, b := range rt.Bags {
		if !bags[b] {
			t.Fatalf("round trip invented bag %v", b)
		}
	}
	if len(rt.Bags) != len(p.Bags) {
		t.Fatalf("round trip changed bag count %d → %d", len(p.Bags), len(rt.Bags))
	}
	// Constraints must be preserved as a multiset, with valid guards.
	type key struct {
		x, y  bitset.Set
		logN  string
		guard bitset.Set
	}
	count := map[key]int{}
	for _, c := range p.Cons {
		count[key{c.X, c.Y, c.LogN.RatString(), q.Atoms[c.Guard].Vars}]++
	}
	for _, c := range rt.Cons {
		count[key{c.X, c.Y, c.LogN.RatString(), rt.Schema.Atoms[c.Guard].Vars}]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("round trip changed constraint multiset at %+v (%+d)", k, v)
		}
	}
	// Every rule's proof sequence must survive with targets intact.
	if len(rt.Rules) != len(p.Rules) {
		t.Fatal("round trip changed rule count")
	}
	for i := range p.Rules {
		if len(rt.Rules[i].Seq) != len(p.Rules[i].Seq) {
			t.Fatalf("rule %d proof length changed", i)
		}
		if len(rt.Rules[i].Targets) != len(p.Rules[i].Targets) {
			t.Fatalf("rule %d target count changed", i)
		}
		for j, b := range p.Rules[i].Targets {
			if rt.Rules[i].Targets[j] != b {
				t.Fatalf("rule %d target %d changed: %v → %v", i, j, b, rt.Rules[i].Targets[j])
			}
		}
	}
}
