package plan

import (
	"fmt"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/query"
)

// The plan cache stores plans in canonical variable space so that a query
// that is a renaming of a cached one can reuse its plan. toCanonical and
// fromCanonical translate a Plan across the permutations recorded in a
// Signature. Immutable leaves (*big.Rat values, Parent slices) are shared;
// everything carrying variable or atom identity is rebuilt.

func invert(perm []int) []int {
	out := make([]int, len(perm))
	for i, p := range perm {
		out[p] = i
	}
	return out
}

func remapVec(v flow.Vec, m []int) flow.Vec {
	if v == nil {
		return nil
	}
	out := make(flow.Vec, len(v))
	for p, r := range v {
		out[flow.Pair{X: mapSet(p.X, m), Y: mapSet(p.Y, m)}] = r
	}
	return out
}

func remapSeq(seq flow.ProofSequence, m []int) flow.ProofSequence {
	out := make(flow.ProofSequence, len(seq))
	for i, s := range seq {
		s.A, s.B = mapSet(s.A, m), mapSet(s.B, m)
		out[i] = s
	}
	return out
}

func remapRule(pr *PreparedRule, m []int) *PreparedRule {
	targets := make([]bitset.Set, len(pr.Targets))
	for i, t := range pr.Targets {
		targets[i] = mapSet(t, m)
	}
	return &PreparedRule{
		Targets: targets,
		Trivial: pr.Trivial,
		Bound:   pr.Bound,
		Lambda:  remapVec(pr.Lambda, m),
		Delta:   remapVec(pr.Delta, m),
		Seq:     remapSeq(pr.Seq, m),
	}
}

func remapSets(sets []bitset.Set, m []int) []bitset.Set {
	out := make([]bitset.Set, len(sets))
	for i, s := range sets {
		out[i] = mapSet(s, m)
	}
	return out
}

func remapTDs(tds []*hypergraph.Decomposition, m []int) []*hypergraph.Decomposition {
	out := make([]*hypergraph.Decomposition, len(tds))
	for i, d := range tds {
		out[i] = &hypergraph.Decomposition{Bags: remapSets(d.Bags, m), Parent: d.Parent}
	}
	return out
}

// shared copies the index-structured fields that are invariant under
// renaming (they index into Bags/TDs, not into the variable universe).
func (p *Plan) shell() *Plan {
	return &Plan{
		Mode:         p.Mode,
		Key:          p.Key,
		Chosen:       p.Chosen,
		TDBags:       p.TDBags,
		Transversals: p.Transversals,
		Width:        p.Width,
	}
}

// toCanonical rewrites a caller-space plan into the canonical space of sig.
func (p *Plan) toCanonical(sig *Signature) *Plan {
	m := sig.VarPerm
	invAtom := invert(sig.AtomPerm)
	out := p.shell()
	atoms := make([]query.Atom, len(p.Schema.Atoms))
	for j, ci := range sig.AtomPerm {
		atoms[j] = query.Atom{Name: fmt.Sprintf("R%d", j), Vars: mapSet(p.Schema.Atoms[ci].Vars, m)}
	}
	out.Schema = query.Schema{NumVars: p.Schema.NumVars, Atoms: atoms}
	out.Free = mapSet(p.Free, m)
	out.Cons = make([]query.DegreeConstraint, len(p.Cons))
	for k, ci := range sig.ConsPerm {
		c := p.Cons[ci]
		c.X, c.Y = mapSet(c.X, m), mapSet(c.Y, m)
		if c.Guard >= 0 {
			c.Guard = invAtom[c.Guard]
		}
		out.Cons[k] = c
	}
	out.Bags = remapSets(p.Bags, m)
	out.TDs = remapTDs(p.TDs, m)
	out.Rules = make([]*PreparedRule, len(p.Rules))
	for i, r := range p.Rules {
		out.Rules[i] = remapRule(r, m)
	}
	return out
}

// fromCanonical rewrites a canonical-space plan into the caller space of
// sig, adopting the caller's schema (atom names and order, variable names).
func (p *Plan) fromCanonical(sig *Signature, s *query.Schema, free bitset.Set) *Plan {
	m := invert(sig.VarPerm)
	out := p.shell()
	out.Schema = copySchema(s)
	out.Free = free
	out.Cons = make([]query.DegreeConstraint, len(p.Cons))
	for k, c := range p.Cons {
		c.X, c.Y = mapSet(c.X, m), mapSet(c.Y, m)
		if c.Guard >= 0 {
			c.Guard = sig.AtomPerm[c.Guard]
		}
		out.Cons[k] = c
	}
	out.Bags = remapSets(p.Bags, m)
	out.TDs = remapTDs(p.TDs, m)
	out.Rules = make([]*PreparedRule, len(p.Rules))
	for i, r := range p.Rules {
		out.Rules[i] = remapRule(r, m)
	}
	return out
}
