package plan

import (
	"fmt"
	"sort"
	"strings"

	"panda/internal/bitset"
	"panda/internal/query"
)

// Signature is the canonical cache identity of a (query shape, free
// variables, constraint set, mode) quadruple. Two queries that differ only
// by a renaming of variables, a reordering of atoms, or a reordering of
// constraints produce the same Key; the permutations record how to move a
// plan between the caller's space and the canonical space.
type Signature struct {
	Key  string
	Mode Mode
	// VarPerm maps a caller variable v to its canonical index VarPerm[v].
	VarPerm []int
	// AtomPerm maps a canonical atom index j to the caller atom AtomPerm[j].
	AtomPerm []int
	// ConsPerm maps a canonical constraint index k to the caller
	// constraint ConsPerm[k].
	ConsPerm []int
}

// permLimit caps the number of candidate variable orderings explored while
// searching for the lexicographically minimal encoding. Queries whose
// automorphism classes explode past it fall back to a deterministic (but not
// rename-invariant) ordering — the cache stays correct, it just treats such
// renamings as distinct. Canonicalization only runs when a Prepare's exact
// fingerprint is unregistered (see Fingerprint and maxExactsPerPlan), so
// this bounds a per-new-query-text cost, not a per-Prepare cost.
const permLimit = 5040 // 7!

// Fingerprint is a strictly order-sensitive encoding of (q, cons, mode):
// the caller's exact variable numbering, atom order and constraint order,
// with no sorting and no permutation search. Only byte-identical Prepare
// calls share a fingerprint — any renaming OR reordering falls through to
// Canonicalize once, after which its own fingerprint is registered against
// the shared canonical entry. (Sorting here would be a bug: two queries
// with the same atom-mask multiset but different orders need different
// rebind permutations, so they must not share a fingerprint slot.)
func Fingerprint(q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "m%d;n%d;F%08x;A", int(ResolveMode(q, mode)), q.NumVars, uint32(q.Free))
	for _, a := range q.Atoms {
		fmt.Fprintf(&sb, ":%08x", uint32(a.Vars))
	}
	sb.WriteString(";C")
	for _, c := range cons {
		fmt.Fprintf(&sb, ":%08x/%08x/%s/g%d", uint32(c.X), uint32(c.Y), c.LogN.RatString(), c.Guard)
	}
	return sb.String()
}

// Canonicalize computes the canonical signature of (q, cons, mode).
func Canonicalize(q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) (*Signature, error) {
	mode = ResolveMode(q, mode)
	n := q.NumVars
	if n > 32 {
		return nil, fmt.Errorf("plan: %d variables exceed the bitset universe", n)
	}
	classes := varClasses(q, cons)
	best := ""
	var bestSig *Signature
	tryPerm := func(perm []int) {
		sig := encode(q, cons, mode, perm)
		if bestSig == nil || sig.Key < best {
			best, bestSig = sig.Key, sig
		}
	}
	if countPerms(classes) > permLimit {
		perm := make([]int, n)
		pos := 0
		for _, cl := range classes {
			for _, v := range cl {
				perm[v] = pos
				pos++
			}
		}
		tryPerm(perm)
	} else {
		forEachClassPerm(classes, n, tryPerm)
	}
	return bestSig, nil
}

// varClasses partitions variables into equivalence classes by an iterated
// structural invariant (free membership, atom arities, constraint roles,
// then Weisfeiler–Lehman-style neighbour refinement), ordered by invariant.
func varClasses(q *query.Conjunctive, cons []query.DegreeConstraint) [][]int {
	n := q.NumVars
	inv := make([]string, n)
	for v := 0; v < n; v++ {
		var parts []string
		if q.Free.Contains(v) {
			parts = append(parts, "f")
		}
		var arities []string
		for _, a := range q.Atoms {
			if a.Vars.Contains(v) {
				arities = append(arities, fmt.Sprintf("a%d", a.Vars.Card()))
			}
		}
		sort.Strings(arities)
		parts = append(parts, arities...)
		var roles []string
		for _, c := range cons {
			switch {
			case c.X.Contains(v):
				roles = append(roles, "x"+c.LogN.RatString())
			case c.Y.Contains(v):
				roles = append(roles, "y"+c.LogN.RatString())
			}
		}
		sort.Strings(roles)
		parts = append(parts, roles...)
		inv[v] = strings.Join(parts, ",")
	}
	// Refine by the multiset of co-occurring invariants until stable.
	for round := 0; round < n; round++ {
		next := make([]string, n)
		changedShape := false
		for v := 0; v < n; v++ {
			var nb []string
			for _, a := range q.Atoms {
				if !a.Vars.Contains(v) {
					continue
				}
				for _, u := range a.Vars.Vars() {
					if u != v {
						nb = append(nb, inv[u])
					}
				}
			}
			sort.Strings(nb)
			next[v] = inv[v] + "|" + strings.Join(nb, ";")
		}
		if classCount(next) != classCount(inv) {
			changedShape = true
		}
		inv = next
		if !changedShape {
			break
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return inv[order[a]] < inv[order[b]] })
	var classes [][]int
	for i := 0; i < n; {
		j := i
		for j < n && inv[order[j]] == inv[order[i]] {
			j++
		}
		classes = append(classes, order[i:j])
		i = j
	}
	return classes
}

func classCount(inv []string) int {
	seen := map[string]bool{}
	for _, s := range inv {
		seen[s] = true
	}
	return len(seen)
}

func countPerms(classes [][]int) int {
	total := 1
	for _, cl := range classes {
		f := 1
		for i := 2; i <= len(cl); i++ {
			f *= i
			if total*f > 4*permLimit {
				return 4 * permLimit
			}
		}
		total *= f
	}
	return total
}

// forEachClassPerm enumerates every variable ordering that assigns
// consecutive canonical positions to each class, permuting within classes.
func forEachClassPerm(classes [][]int, n int, fn func(perm []int)) {
	perm := make([]int, n)
	var rec func(ci, pos int)
	rec = func(ci, pos int) {
		if ci == len(classes) {
			fn(perm)
			return
		}
		cl := append([]int(nil), classes[ci]...)
		var permute func(k int)
		permute = func(k int) {
			if k == len(cl) {
				rec(ci+1, pos+len(cl))
				return
			}
			for i := k; i < len(cl); i++ {
				cl[k], cl[i] = cl[i], cl[k]
				perm[cl[k]] = pos + k
				permute(k + 1)
				cl[k], cl[i] = cl[i], cl[k]
			}
		}
		permute(0)
	}
	rec(0, 0)
}

// mapSet renames every element of s through perm.
func mapSet(s bitset.Set, perm []int) bitset.Set {
	var out bitset.Set
	for _, v := range s.Vars() {
		out = out.Add(perm[v])
	}
	return out
}

// encode builds the deterministic canonical encoding of the query under a
// fixed variable permutation, together with the induced atom and constraint
// orders.
func encode(q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode, perm []int) *Signature {
	// Atoms sort by renamed variable set; ties (identical atom shapes)
	// break by the multiset of constraints each atom guards, so that e.g.
	// two same-shape atoms with different cardinalities order canonically.
	type atomKey struct {
		idx  int
		mask bitset.Set
		tie  string
	}
	atoms := make([]atomKey, len(q.Atoms))
	for i, a := range q.Atoms {
		var guarded []string
		for _, c := range cons {
			if c.Guard == i {
				guarded = append(guarded,
					fmt.Sprintf("%08x/%08x/%s", uint32(mapSet(c.X, perm)), uint32(mapSet(c.Y, perm)), c.LogN.RatString()))
			}
		}
		sort.Strings(guarded)
		atoms[i] = atomKey{idx: i, mask: mapSet(a.Vars, perm), tie: strings.Join(guarded, "+")}
	}
	sort.SliceStable(atoms, func(a, b int) bool {
		if atoms[a].mask != atoms[b].mask {
			return atoms[a].mask < atoms[b].mask
		}
		return atoms[a].tie < atoms[b].tie
	})
	atomPerm := make([]int, len(atoms))
	invAtom := make([]int, len(atoms))
	for j, a := range atoms {
		atomPerm[j] = a.idx
		invAtom[a.idx] = j
	}
	type consKey struct {
		idx int
		enc string
	}
	cks := make([]consKey, len(cons))
	for i, c := range cons {
		g := -1
		if c.Guard >= 0 && c.Guard < len(invAtom) {
			g = invAtom[c.Guard]
		}
		cks[i] = consKey{idx: i, enc: fmt.Sprintf("%08x/%08x/%s/g%d",
			uint32(mapSet(c.X, perm)), uint32(mapSet(c.Y, perm)), c.LogN.RatString(), g)}
	}
	sort.SliceStable(cks, func(a, b int) bool { return cks[a].enc < cks[b].enc })
	consPerm := make([]int, len(cks))
	var sb strings.Builder
	fmt.Fprintf(&sb, "m%d;n%d;F%08x;A", int(mode), q.NumVars, uint32(mapSet(q.Free, perm)))
	for _, a := range atoms {
		fmt.Fprintf(&sb, ":%08x", uint32(a.mask))
	}
	sb.WriteString(";C")
	for k, c := range cks {
		consPerm[k] = c.idx
		sb.WriteString(":")
		sb.WriteString(c.enc)
	}
	return &Signature{
		Key:      sb.String(),
		Mode:     mode,
		VarPerm:  append([]int(nil), perm...),
		AtomPerm: atomPerm,
		ConsPerm: consPerm,
	}
}
