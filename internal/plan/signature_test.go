package plan

import (
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
)

// cycleQuery builds a full k-cycle query with the vertex order given by
// perm (perm[i] is the variable index playing role i) and atoms listed in
// atomOrder. Cardinality n is attached to every atom.
func cycleQuery(k int, perm []int, atomOrder []int, card int64) (*query.Conjunctive, []query.DegreeConstraint) {
	if perm == nil {
		perm = make([]int, k)
		for i := range perm {
			perm[i] = i
		}
	}
	atoms := make([]query.Atom, k)
	for i := 0; i < k; i++ {
		atoms[i] = query.Atom{
			Name: "R" + string(rune('0'+i)),
			Vars: bitset.Of(perm[i], perm[(i+1)%k]),
		}
	}
	if atomOrder != nil {
		reordered := make([]query.Atom, k)
		for i, j := range atomOrder {
			reordered[i] = atoms[j]
		}
		atoms = reordered
	}
	q := &query.Conjunctive{
		Schema: query.Schema{NumVars: k, Atoms: atoms},
		Free:   bitset.Full(k),
	}
	var cons []query.DegreeConstraint
	for i, a := range q.Atoms {
		cons = append(cons, query.Cardinality(a.Vars, card, i))
	}
	return q, cons
}

func mustSig(t *testing.T, q *query.Conjunctive, cons []query.DegreeConstraint, mode Mode) *Signature {
	t.Helper()
	sig, err := Canonicalize(q, cons, mode)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// TestSignatureRenameInvariant: renaming variables must not change the key.
func TestSignatureRenameInvariant(t *testing.T) {
	q1, c1 := cycleQuery(4, nil, nil, 100)
	// Rotate and swap the variable roles.
	q2, c2 := cycleQuery(4, []int{2, 3, 0, 1}, nil, 100)
	q3, c3 := cycleQuery(4, []int{3, 1, 2, 0}, nil, 100)
	s1 := mustSig(t, q1, c1, ModeFhtw)
	s2 := mustSig(t, q2, c2, ModeFhtw)
	s3 := mustSig(t, q3, c3, ModeFhtw)
	if s1.Key != s2.Key || s1.Key != s3.Key {
		t.Fatalf("renamed 4-cycles got distinct keys:\n%s\n%s\n%s", s1.Key, s2.Key, s3.Key)
	}
}

// TestSignatureAtomOrderInvariant: listing body atoms in another order must
// not change the key.
func TestSignatureAtomOrderInvariant(t *testing.T) {
	q1, c1 := cycleQuery(4, nil, nil, 64)
	q2, c2 := cycleQuery(4, nil, []int{2, 0, 3, 1}, 64)
	s1 := mustSig(t, q1, c1, ModeSubw)
	s2 := mustSig(t, q2, c2, ModeSubw)
	if s1.Key != s2.Key {
		t.Fatalf("atom reorder changed key:\n%s\n%s", s1.Key, s2.Key)
	}
}

// TestSignatureDistinguishes: modes, free sets and constraint values are
// all part of the identity.
func TestSignatureDistinguishes(t *testing.T) {
	q, c := cycleQuery(4, nil, nil, 100)
	base := mustSig(t, q, c, ModeFhtw)
	if s := mustSig(t, q, c, ModeSubw); s.Key == base.Key {
		t.Fatal("mode not part of the key")
	}
	qb := &query.Conjunctive{Schema: q.Schema, Free: 0}
	if s := mustSig(t, qb, c, ModeFhtw); s.Key == base.Key {
		t.Fatal("free set not part of the key")
	}
	_, c2 := cycleQuery(4, nil, nil, 200)
	if s := mustSig(t, q, c2, ModeFhtw); s.Key == base.Key {
		t.Fatal("constraint bounds not part of the key")
	}
}

// TestSignatureDistinguishesShape: the triangle and the 4-cycle must not
// collide.
func TestSignatureDistinguishesShape(t *testing.T) {
	q3, c3 := cycleQuery(3, nil, nil, 100)
	q4, c4 := cycleQuery(4, nil, nil, 100)
	if mustSig(t, q3, c3, ModeFhtw).Key == mustSig(t, q4, c4, ModeFhtw).Key {
		t.Fatal("triangle and 4-cycle collide")
	}
}

// TestFingerprintOrderSensitive: the exact-fingerprint fast path keys on
// byte identity. Queries with the same atom-mask multiset but a different
// atom order need different rebind permutations, so they must NOT share a
// fingerprint (regression: reusing the sorted canonical encoding here once
// rebound reordered queries with the wrong signature).
func TestFingerprintOrderSensitive(t *testing.T) {
	q1, c1 := cycleQuery(4, nil, nil, 100)
	q2, c2 := cycleQuery(4, nil, []int{2, 0, 3, 1}, 100)
	if Fingerprint(q1, c1, ModeFhtw) == Fingerprint(q2, c2, ModeFhtw) {
		t.Fatal("atom-reordered queries share a fingerprint")
	}
	if Fingerprint(q1, c1, ModeFhtw) != Fingerprint(q1, c1, ModeFhtw) {
		t.Fatal("fingerprint is not deterministic")
	}
	// Mode resolution is part of the fingerprint, so ModeAuto and its
	// resolution collapse to one slot.
	if Fingerprint(q1, c1, ModeAuto) != Fingerprint(q1, c1, ModeFull) {
		t.Fatal("ModeAuto and resolved mode fingerprint differently")
	}
}

// TestSignaturePermutationsAreValid: the recorded permutations must be
// bijections consistent with the caller's shapes.
func TestSignaturePermutationsAreValid(t *testing.T) {
	q, c := cycleQuery(5, []int{4, 2, 0, 3, 1}, []int{1, 0, 4, 2, 3}, 32)
	sig := mustSig(t, q, c, ModeSubw)
	seen := map[int]bool{}
	for _, p := range sig.VarPerm {
		if p < 0 || p >= 5 || seen[p] {
			t.Fatalf("VarPerm %v is not a permutation", sig.VarPerm)
		}
		seen[p] = true
	}
	seen = map[int]bool{}
	for _, p := range sig.AtomPerm {
		if p < 0 || p >= len(q.Atoms) || seen[p] {
			t.Fatalf("AtomPerm %v is not a permutation", sig.AtomPerm)
		}
		seen[p] = true
	}
	seen = map[int]bool{}
	for _, p := range sig.ConsPerm {
		if p < 0 || p >= len(c) || seen[p] {
			t.Fatalf("ConsPerm %v is not a permutation", sig.ConsPerm)
		}
		seen[p] = true
	}
}
