package plan

import (
	"context"
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"panda/internal/bitset"
	"panda/internal/query"
)

// Signature keys are a complete, self-contained encoding of a canonical
// query: mode, variable count, free set, atom variable sets and the full
// guarded constraint set (see encode in signature.go). That makes a key
// enough to REBUILD its plan from scratch — no query text, no catalog —
// which is what the cross-version migration shim needs: when a FormatVersion
// bump invalidates a snapshot, the skipped keys are parsed back into
// canonical queries and re-planned in the background instead of silently
// re-paying their LP solves one traffic-time cache miss at a time.

// ParseSignatureKey inverts the canonical signature encoding: it rebuilds
// the canonical query (synthetic R0, R1, … atom names, ascending argument
// order — the same shape toCanonical stores), the guarded constraint set
// (cardinalities carry N = 0, "log-bound only", which planning never needs
// more than) and the resolved mode. It fails on malformed keys and on keys
// with unguarded constraints, which no Planner-built plan can produce.
func ParseSignatureKey(key string) (*query.Conjunctive, []query.DegreeConstraint, Mode, error) {
	fail := func(why string) (*query.Conjunctive, []query.DegreeConstraint, Mode, error) {
		return nil, nil, 0, fmt.Errorf("plan: signature key %q: %s", key, why)
	}
	parts := strings.Split(key, ";")
	if len(parts) != 5 {
		return fail("want 5 ;-separated sections")
	}
	mode64, err := strconv.ParseInt(strings.TrimPrefix(parts[0], "m"), 10, 32)
	if err != nil || !strings.HasPrefix(parts[0], "m") {
		return fail("bad mode section")
	}
	mode := Mode(mode64)
	if mode < ModeAuto || mode > ModeSubw {
		return fail("mode out of range")
	}
	n, err := strconv.Atoi(strings.TrimPrefix(parts[1], "n"))
	if err != nil || !strings.HasPrefix(parts[1], "n") || n < 0 || n > 32 {
		return fail("bad variable-count section")
	}
	parseMask := func(s string) (bitset.Set, bool) {
		v, err := strconv.ParseUint(s, 16, 32)
		if err != nil || len(s) != 8 {
			return 0, false
		}
		m := bitset.Set(v)
		return m, m.SubsetOf(bitset.Full(n))
	}
	free, ok := parseMask(strings.TrimPrefix(parts[2], "F"))
	if !ok || !strings.HasPrefix(parts[2], "F") {
		return fail("bad free-set section")
	}
	if !strings.HasPrefix(parts[3], "A") {
		return fail("bad atom section")
	}
	var atoms []query.Atom
	if rest := strings.TrimPrefix(parts[3], "A"); rest != "" {
		for i, enc := range strings.Split(strings.TrimPrefix(rest, ":"), ":") {
			m, ok := parseMask(enc)
			if !ok {
				return fail("bad atom mask")
			}
			atoms = append(atoms, query.Atom{Name: fmt.Sprintf("R%d", i), Vars: m})
		}
	}
	if !strings.HasPrefix(parts[4], "C") {
		return fail("bad constraint section")
	}
	var cons []query.DegreeConstraint
	if rest := strings.TrimPrefix(parts[4], "C"); rest != "" {
		for _, enc := range strings.Split(strings.TrimPrefix(rest, ":"), ":") {
			// x/y/logN/gI, where logN is a RatString and may itself
			// contain one '/'.
			fields := strings.Split(enc, "/")
			if len(fields) < 4 || len(fields) > 5 {
				return fail("bad constraint encoding")
			}
			x, okX := parseMask(fields[0])
			y, okY := parseMask(fields[1])
			gs := fields[len(fields)-1]
			guard, err := strconv.Atoi(strings.TrimPrefix(gs, "g"))
			if !okX || !okY || err != nil || !strings.HasPrefix(gs, "g") {
				return fail("bad constraint fields")
			}
			if guard < 0 || guard >= len(atoms) {
				return fail("constraint guard out of range")
			}
			logN, ok := new(big.Rat).SetString(strings.Join(fields[2:len(fields)-1], "/"))
			if !ok || logN.Sign() < 0 {
				return fail("bad constraint log bound")
			}
			cons = append(cons, query.DegreeConstraint{X: x, Y: y, LogN: logN, Guard: guard})
		}
	}
	q := &query.Conjunctive{
		Schema: query.Schema{NumVars: n, Atoms: atoms},
		Free:   free,
	}
	if err := validateQuery(q, cons); err != nil {
		return nil, nil, 0, fmt.Errorf("plan: signature key %q: %w", key, err)
	}
	return q, cons, mode, nil
}

// ReplanKey rebuilds the plan a signature key describes and installs it in
// the cache (a no-op cache hit when the key is already live). Because the
// reconstructed query IS the canonical renaming, re-canonicalizing it lands
// on the same key, so a later Prepare for any renaming of the original
// query is a hit. It returns the number of LP solves the rebuild paid
// (zero when the key was already cached).
func (pl *Planner) ReplanKey(ctx context.Context, key string) (int, error) {
	q, cons, mode, err := ParseSignatureKey(key)
	if err != nil {
		return 0, err
	}
	before := pl.Stats().LPSolves
	if _, err := pl.PrepareContext(ctx, q, cons, mode); err != nil {
		return 0, fmt.Errorf("plan: replan %q: %w", key, err)
	}
	return int(pl.Stats().LPSolves - before), nil
}
