package query

import (
	"errors"
	"fmt"

	"panda/internal/relation"
)

// Named-relation binding: a catalog (any store of named tables) is bound to
// a schema by looking up each atom's relation by name and permuting stored
// rows — which are in the atom's declared argument order — into the sorted
// variable order the relational layer uses. This is the seam between a
// long-lived session owning named relations and the positional Instance the
// evaluators consume.

// Binding errors. Callers compare with errors.Is; the facade re-exports
// them as panda.ErrUnknownRelation and panda.ErrArity.
var (
	ErrUnknownRelation = errors.New("query: unknown relation")
	ErrArity           = errors.New("query: arity mismatch")
)

// ArgOrder returns atom i's variable indices in declared argument order:
// Args when the parser recorded them, the ascending variable order of Vars
// otherwise. The length of the result is the atom's declared arity.
func (s *Schema) ArgOrder(i int) []int {
	a := s.Atoms[i]
	if a.Args != nil {
		return a.Args
	}
	return a.Vars.Vars()
}

// Arity returns atom i's declared arity (repeated variables count per
// occurrence).
func (s *Schema) Arity(i int) int { return len(s.ArgOrder(i)) }

// Lookup resolves a relation name to its stored relation. Columns must be
// in the declared argument order of the atoms naming the relation.
type Lookup func(name string) (*relation.Relation, bool)

// RowsLookup resolves a relation name to decoded rows and an arity — the
// slow-plane variant of Lookup for callers that hold materialized deltas
// (standing-query rounds) rather than live relations.
type RowsLookup func(name string) (rows [][]relation.Value, arity int, ok bool)

// BindInstance builds an Instance for s from named tables: each atom's
// relation is resolved by name and its rows are permuted from declared
// argument order into sorted variable order. Atoms sharing a name share the
// stored rows (a self-join reads one table twice). An atom with a repeated
// variable, R(A,A), binds only the rows whose repeated positions agree —
// the selection the atom denotes.
//
// Binding stays on the interned-id plane. When an atom's declared argument
// order is already the ascending variable order (the common case), the
// bound relation is an O(arity) column snapshot of the stored one — no row
// is copied or re-hashed; permuted and repeated-variable atoms fall back to
// an id-level row copy.
//
// Errors wrap ErrUnknownRelation (no table of that name) or ErrArity (the
// table's arity differs from the atom's declared arity).
func BindInstance(s *Schema, lookup Lookup) (*Instance, error) {
	ins := NewInstance(s)
	for i, a := range s.Atoms {
		t, ok := lookup(a.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, a.Name)
		}
		order := s.ArgOrder(i)
		if len(t.Cols()) != len(order) {
			return nil, fmt.Errorf("%w: relation %s has arity %d, atom %s needs %d",
				ErrArity, a.Name, len(t.Cols()), a.Name, len(order))
		}
		vars := a.Vars.Vars()
		if identityOrder(order, vars) {
			ins.Relations[i] = t.SnapshotAs(a.Name, a.Vars)
			continue
		}
		// Permuted or repeated-variable atom: copy row ids through the
		// declared-order → sorted-order mapping, dropping rows whose
		// repeated positions disagree.
		pos := make(map[int]int, len(vars))
		for j, v := range vars {
			pos[v] = j
		}
		cols := make([][]uint32, len(order))
		for k := range cols {
			cols[k] = t.Column(k)
		}
		ids := make([]uint32, len(vars))
		set := make([]bool, len(vars))
		for ri := 0; ri < t.Size(); ri++ {
			for j := range set {
				set[j] = false
			}
			match := true
			for k, v := range order {
				j := pos[v]
				id := cols[k][ri]
				if set[j] && ids[j] != id {
					match = false // repeated variable with unequal values
					break
				}
				ids[j], set[j] = id, true
			}
			if match {
				ins.Relations[i].InsertIDs(ids)
			}
		}
	}
	return ins, nil
}

// identityOrder reports whether the declared argument order is exactly the
// ascending variable order with no repetitions.
func identityOrder(order, vars []int) bool {
	if len(order) != len(vars) {
		return false
	}
	for k := range order {
		if order[k] != vars[k] {
			return false
		}
	}
	return true
}

// BindInstanceRows is BindInstance over materialized rows: same permutation
// and repeated-variable semantics, sourced from decoded tuples. Each atom's
// row set is known up front, so relations are built in bulk through a
// relation.Builder sized to the delta.
func BindInstanceRows(s *Schema, lookup RowsLookup) (*Instance, error) {
	ins := NewInstance(s)
	for i, a := range s.Atoms {
		rows, arity, ok := lookup(a.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, a.Name)
		}
		order := s.ArgOrder(i)
		if arity != len(order) {
			return nil, fmt.Errorf("%w: relation %s has arity %d, atom %s needs %d",
				ErrArity, a.Name, arity, a.Name, len(order))
		}
		vars := a.Vars.Vars()
		pos := make(map[int]int, len(vars))
		for j, v := range vars {
			pos[v] = j
		}
		b := relation.NewBuilder(a.Name, a.Vars, len(rows))
		t := make([]relation.Value, len(vars))
		set := make([]bool, len(vars))
		for _, row := range rows {
			for j := range set {
				set[j] = false
			}
			match := true
			for k, v := range order {
				j := pos[v]
				if set[j] && t[j] != row[k] {
					match = false // repeated variable with unequal values
					break
				}
				t[j], set[j] = row[k], true
			}
			if match {
				b.Add(t)
			}
		}
		ins.Relations[i] = b.Build()
	}
	return ins, nil
}
