package query

import (
	"errors"
	"fmt"

	"panda/internal/relation"
)

// Named-relation binding: a catalog (any store of named tables) is bound to
// a schema by looking up each atom's relation by name and permuting stored
// rows — which are in the atom's declared argument order — into the sorted
// variable order the relational layer uses. This is the seam between a
// long-lived session owning named relations and the positional Instance the
// evaluators consume.

// Binding errors. Callers compare with errors.Is; the facade re-exports
// them as panda.ErrUnknownRelation and panda.ErrArity.
var (
	ErrUnknownRelation = errors.New("query: unknown relation")
	ErrArity           = errors.New("query: arity mismatch")
)

// ArgOrder returns atom i's variable indices in declared argument order:
// Args when the parser recorded them, the ascending variable order of Vars
// otherwise. The length of the result is the atom's declared arity.
func (s *Schema) ArgOrder(i int) []int {
	a := s.Atoms[i]
	if a.Args != nil {
		return a.Args
	}
	return a.Vars.Vars()
}

// Arity returns atom i's declared arity (repeated variables count per
// occurrence).
func (s *Schema) Arity(i int) int { return len(s.ArgOrder(i)) }

// Lookup resolves a relation name to its stored rows and arity. Rows must
// be in the declared argument order of the atoms naming the relation.
type Lookup func(name string) (rows [][]relation.Value, arity int, ok bool)

// BindInstance builds an Instance for s from named tables: each atom's
// relation is resolved by name and its rows are permuted from declared
// argument order into sorted variable order. Atoms sharing a name share the
// stored rows (a self-join reads one table twice). An atom with a repeated
// variable, R(A,A), binds only the rows whose repeated positions agree —
// the selection the atom denotes.
//
// Errors wrap ErrUnknownRelation (no table of that name) or ErrArity (the
// table's arity differs from the atom's declared arity).
func BindInstance(s *Schema, lookup Lookup) (*Instance, error) {
	ins := NewInstance(s)
	for i, a := range s.Atoms {
		rows, arity, ok := lookup(a.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, a.Name)
		}
		order := s.ArgOrder(i)
		if arity != len(order) {
			return nil, fmt.Errorf("%w: relation %s has arity %d, atom %s needs %d",
				ErrArity, a.Name, arity, a.Name, len(order))
		}
		vars := a.Vars.Vars()
		pos := make(map[int]int, len(vars))
		for j, v := range vars {
			pos[v] = j
		}
		t := make([]relation.Value, len(vars))
		set := make([]bool, len(vars))
		for _, row := range rows {
			for j := range set {
				set[j] = false
			}
			match := true
			for k, v := range order {
				j := pos[v]
				if set[j] && t[j] != row[k] {
					match = false // repeated variable with unequal values
					break
				}
				t[j], set[j] = row[k], true
			}
			if match {
				ins.Relations[i].Insert(t)
			}
		}
	}
	return ins, nil
}
