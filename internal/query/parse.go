package query

import (
	"fmt"
	"strconv"
	"strings"

	"panda/internal/bitset"
)

// ParseResult is the outcome of parsing a query file.
type ParseResult struct {
	Conj        *Conjunctive // nil if the head is disjunctive
	Rule        *Disjunctive // always set (a CQ is viewed as its rule)
	Constraints []DegreeConstraint
}

// Parse reads the small textual query language used by cmd/panda:
//
//	Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A).
//	T1(A,B,C) v T2(B,C,D) :- R(A,B), S(B,C), T(C,D).
//	|R| <= 100
//	deg(R: A,B | A) <= 5
//	fd(R: A -> B)
//
// The head `Q()` denotes a Boolean query. Lines starting with # are
// comments. Cardinality constraints default to each atom's instance size if
// omitted (callers decide).
func Parse(src string) (*ParseResult, error) {
	res := &ParseResult{}
	varIndex := map[string]int{}
	var varNames []string
	getVar := func(name string) int {
		if i, ok := varIndex[name]; ok {
			return i
		}
		i := len(varNames)
		varIndex[name] = i
		varNames = append(varNames, name)
		return i
	}
	var schema *Schema

	parseVarList := func(list string) (bitset.Set, error) {
		var s bitset.Set
		list = strings.TrimSpace(list)
		if list == "" {
			return 0, nil
		}
		for _, v := range strings.Split(list, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return 0, fmt.Errorf("query: empty variable name")
			}
			s = s.Add(getVar(v))
		}
		return s, nil
	}
	// parseAtom returns the atom name, the argument variable indices in
	// declared order (nil for an empty argument list) and their set.
	parseAtom := func(text string) (string, []int, bitset.Set, error) {
		open := strings.Index(text, "(")
		if open < 0 || !strings.HasSuffix(text, ")") {
			return "", nil, 0, fmt.Errorf("query: malformed atom %q", text)
		}
		name := strings.TrimSpace(text[:open])
		list := strings.TrimSpace(text[open+1 : len(text)-1])
		if list == "" {
			return name, nil, 0, nil
		}
		var args []int
		var s bitset.Set
		for _, v := range strings.Split(list, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return "", nil, 0, fmt.Errorf("query: empty variable name")
			}
			i := getVar(v)
			args = append(args, i)
			s = s.Add(i)
		}
		return name, args, s, nil
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(line, ".")
		switch {
		case strings.Contains(line, ":-"):
			if schema != nil {
				return nil, fmt.Errorf("line %d: multiple rules", ln+1)
			}
			parts := strings.SplitN(line, ":-", 2)
			head, body := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			// Head: either one atom (CQ) or atoms joined by " v ".
			var targets []bitset.Set
			headAtoms := splitAtoms(head, " v ")
			for _, h := range headAtoms {
				_, _, vars, err := parseAtom(h)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				targets = append(targets, vars)
			}
			var atoms []Atom
			for _, a := range splitAtoms(body, ",") {
				name, args, vars, err := parseAtom(a)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				if vars == 0 {
					return nil, fmt.Errorf("line %d: body atom %s has no variables", ln+1, name)
				}
				atoms = append(atoms, Atom{Name: name, Vars: vars, Args: args})
			}
			schema = &Schema{NumVars: len(varNames), Atoms: atoms}
			if len(headAtoms) == 1 {
				res.Conj = &Conjunctive{Schema: *schema, Free: targets[0]}
				res.Rule = res.Conj.AsRule()
				if targets[0] == 0 { // Boolean: single empty target
					res.Rule = &Disjunctive{Schema: *schema, Targets: []bitset.Set{0}}
				}
			} else {
				res.Rule = &Disjunctive{Schema: *schema, Targets: targets}
			}
		case strings.HasPrefix(line, "|"):
			// |R| <= 100
			if schema == nil {
				return nil, fmt.Errorf("line %d: constraint before rule", ln+1)
			}
			rest := strings.TrimPrefix(line, "|")
			i := strings.Index(rest, "|")
			if i < 0 {
				return nil, fmt.Errorf("line %d: malformed cardinality constraint", ln+1)
			}
			name := strings.TrimSpace(rest[:i])
			n, err := parseBound(rest[i+1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			g := schema.AtomIndex(name)
			if g < 0 {
				return nil, fmt.Errorf("line %d: unknown atom %q", ln+1, name)
			}
			res.Constraints = append(res.Constraints, Cardinality(schema.Atoms[g].Vars, n, g))
		case strings.HasPrefix(line, "deg("):
			// deg(R: A,B | A) <= 5
			if schema == nil {
				return nil, fmt.Errorf("line %d: constraint before rule", ln+1)
			}
			inner, bound, err := splitConstraint(line, "deg(")
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			name, spec, ok := strings.Cut(inner, ":")
			if !ok {
				return nil, fmt.Errorf("line %d: deg needs 'atom: Y | X'", ln+1)
			}
			ypart, xpart, ok := strings.Cut(spec, "|")
			if !ok {
				return nil, fmt.Errorf("line %d: deg needs 'Y | X'", ln+1)
			}
			y, err := parseVarList(ypart)
			if err != nil {
				return nil, err
			}
			x, err := parseVarList(xpart)
			if err != nil {
				return nil, err
			}
			g := schema.AtomIndex(strings.TrimSpace(name))
			if g < 0 {
				return nil, fmt.Errorf("line %d: unknown atom %q", ln+1, name)
			}
			res.Constraints = append(res.Constraints, Degree(x, y.Union(x), bound, g))
		case strings.HasPrefix(line, "fd("):
			// fd(R: A -> B)
			if schema == nil {
				return nil, fmt.Errorf("line %d: constraint before rule", ln+1)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(line, "fd("), ")")
			name, spec, ok := strings.Cut(inner, ":")
			if !ok {
				return nil, fmt.Errorf("line %d: fd needs 'atom: X -> Y'", ln+1)
			}
			xpart, ypart, ok := strings.Cut(spec, "->")
			if !ok {
				return nil, fmt.Errorf("line %d: fd needs 'X -> Y'", ln+1)
			}
			x, err := parseVarList(xpart)
			if err != nil {
				return nil, err
			}
			y, err := parseVarList(ypart)
			if err != nil {
				return nil, err
			}
			g := schema.AtomIndex(strings.TrimSpace(name))
			if g < 0 {
				return nil, fmt.Errorf("line %d: unknown atom %q", ln+1, name)
			}
			res.Constraints = append(res.Constraints, FD(x, y, g))
		default:
			return nil, fmt.Errorf("line %d: cannot parse %q", ln+1, line)
		}
	}
	if schema == nil {
		return nil, fmt.Errorf("query: no rule found")
	}
	schema.VarNames = varNames
	res.Rule.Schema.VarNames = varNames
	res.Rule.Schema.NumVars = len(varNames)
	if res.Conj != nil {
		res.Conj.Schema.VarNames = varNames
		res.Conj.Schema.NumVars = len(varNames)
	}
	return res, nil
}

// splitAtoms splits "R(A,B), S(B,C)" on sep respecting parentheses.
func splitAtoms(s, sep string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && strings.HasPrefix(s[i:], sep) {
			out = append(out, strings.TrimSpace(s[start:i]))
			i += len(sep) - 1
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func splitConstraint(line, prefix string) (inner string, bound int64, err error) {
	rest := strings.TrimPrefix(line, prefix)
	i := strings.LastIndex(rest, ")")
	if i < 0 {
		return "", 0, fmt.Errorf("missing )")
	}
	bound, err = parseBound(rest[i+1:])
	return rest[:i], bound, err
}

func parseBound(s string) (int64, error) {
	s = strings.TrimSpace(s)
	for _, op := range []string{"<=", "≤"} {
		s = strings.TrimSpace(strings.TrimPrefix(s, op))
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad bound %q", s)
	}
	return n, nil
}
