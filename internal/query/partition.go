package query

import (
	"panda/internal/bitset"
	"panda/internal/relation"
)

// Data-parallel co-partitioning: a single rule execution's data is split
// into k hash partitions so the same rule can run once per partition and
// the per-partition results can be merged deterministically. The split is
// exact for monotone (conjunctive / disjunctive-rule) semantics: every
// satisfying assignment fixes a value for the partition key, so its
// supporting rows in every key-covering atom land in the same bucket, and
// atoms not covering the key are replicated into every bucket. Hence
//
//	Q(I) = ⋃_{j<k} Q(I_j)   with   I_j ⊆ I,
//
// and for a disjunctive rule the union of per-partition models is a model
// of the full instance (the same one-atom-restriction argument semi-naive
// maintenance in internal/incr relies on).

// PartitionKey picks the deterministic partition key for a schema: the
// variable covered by the most atoms (ties broken toward the lowest
// variable id). It returns 0 (no key) when the schema has no atoms or no
// variables.
func PartitionKey(s *Schema) bitset.Set {
	bestVar, bestCover := -1, 0
	for v := 0; v < s.NumVars; v++ {
		cover := 0
		for _, a := range s.Atoms {
			if a.Vars.Contains(v) {
				cover++
			}
		}
		if cover > bestCover {
			bestVar, bestCover = v, cover
		}
	}
	if bestVar < 0 {
		return 0
	}
	return bitset.Singleton(bestVar)
}

// PartitionInstance splits ins into k co-partitioned sub-instances for s:
// every atom covering the partition key is hash-partitioned on the key
// (co-partitioned — equal key values share a bucket index across atoms),
// every other atom is replicated whole. It returns nil when k ≤ 1 or no
// partition key exists; otherwise exactly k sub-instances whose union of
// results reproduces the full result (see the package comment above).
// Sub-instance relations are shared, memoized partitions: read-only.
func PartitionInstance(s *Schema, ins *Instance, k int) []*Instance {
	if k <= 1 || len(ins.Relations) != len(s.Atoms) {
		return nil
	}
	key := PartitionKey(s)
	if key == 0 {
		return nil
	}
	parts := make([][]*relation.Relation, len(s.Atoms))
	for i, a := range s.Atoms {
		if key.SubsetOf(a.Vars) {
			parts[i] = ins.Relations[i].Partition(k, key)
		}
	}
	subs := make([]*Instance, k)
	for j := 0; j < k; j++ {
		sub := &Instance{Relations: make([]*relation.Relation, len(s.Atoms))}
		for i := range s.Atoms {
			if parts[i] != nil {
				sub.Relations[i] = parts[i][j]
			} else {
				sub.Relations[i] = ins.Relations[i]
			}
		}
		subs[j] = sub
	}
	return subs
}

// PartitionHint returns the largest partition count recorded on the
// instance's relations (see relation.SetPartitionHint) — the catalog-driven
// default the executor falls back to when no explicit partition count is
// configured.
func PartitionHint(ins *Instance) int {
	best := 0
	for _, r := range ins.Relations {
		if h := r.PartitionHint(); h > best {
			best = h
		}
	}
	return best
}
