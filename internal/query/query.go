// Package query defines the query-language layer of the reproduction:
// hypergraph schemas, full/Boolean conjunctive queries (Eq. 1), disjunctive
// datalog rules (Eq. 4), degree constraints (Definition 1.1/2.10) with their
// guards, and database instances. Cardinality constraints and functional
// dependencies are the special cases N_{Y|∅} and N_{Y|X} = 1 respectively.
package query

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"panda/internal/bitset"
	"panda/internal/hypergraph"
	"panda/internal/relation"
)

// Atom is one body atom R_F(A_F).
type Atom struct {
	Name string
	Vars bitset.Set
	// Args records the variable index at each declared argument position
	// (set by Parse; repeated variables allowed). Nil means the declared
	// order is the ascending variable order of Vars — the convention of
	// programmatically built schemas.
	Args []int
}

// Schema is the shared shape of queries and rules: a variable universe with
// named body atoms; its multi-hypergraph is ([n], {atom vars}).
type Schema struct {
	NumVars  int
	VarNames []string // optional; defaults to A0, A1, …
	Atoms    []Atom
}

// Hypergraph returns the multi-hypergraph of the schema.
func (s *Schema) Hypergraph() *hypergraph.Hypergraph {
	edges := make([]bitset.Set, len(s.Atoms))
	for i, a := range s.Atoms {
		edges[i] = a.Vars
	}
	return hypergraph.New(s.NumVars, edges...)
}

// VarLabel renders a variable set with the schema's names.
func (s *Schema) VarLabel(x bitset.Set) string { return x.Label(s.VarNames) }

// AtomIndex returns the index of the named atom, or −1.
func (s *Schema) AtomIndex(name string) int {
	for i, a := range s.Atoms {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Conjunctive is a conjunctive query. Free = full variable set for a full
// query (Eq. 1), ∅ for a Boolean query.
type Conjunctive struct {
	Schema
	Free bitset.Set
}

// IsFull reports whether every variable is free.
func (q *Conjunctive) IsFull() bool { return q.Free == bitset.Full(q.NumVars) }

// IsBoolean reports whether no variable is free.
func (q *Conjunctive) IsBoolean() bool { return q.Free == 0 }

// Disjunctive is a disjunctive datalog rule (Eq. 4):
// ⋁_{B∈Targets} T_B(A_B) ← ⋀_F R_F(A_F).
type Disjunctive struct {
	Schema
	Targets []bitset.Set
}

// AsRule views a full conjunctive query as the single-target rule of
// Section 3.1.
func (q *Conjunctive) AsRule() *Disjunctive {
	return &Disjunctive{Schema: q.Schema, Targets: []bitset.Set{bitset.Full(q.NumVars)}}
}

// DegreeConstraint is a triple (X, Y, N_{Y|X}) asserting
// deg(A_Y | A_X) ≤ N, together with the exact rational log₂ N used by the
// information-theoretic machinery. Guard is the index of a guarding atom
// (Definition 2.10), or −1 when the constraint is declared without a guard.
type DegreeConstraint struct {
	X, Y  bitset.Set
	N     int64    // 0 means "unknown count; use LogN only"
	LogN  *big.Rat // exact log₂ bound (may over-approximate log₂ N)
	Guard int
}

// IsCardinality reports whether the constraint is (∅, Y, N).
func (c DegreeConstraint) IsCardinality() bool { return c.X == 0 }

// IsFD reports whether the constraint is a functional dependency (N = 1).
func (c DegreeConstraint) IsFD() bool { return c.LogN.Sign() == 0 }

// Validate checks the shape X ⊂ Y and a non-negative log bound.
func (c DegreeConstraint) Validate(n int) error {
	if !c.X.ProperSubsetOf(c.Y) {
		return fmt.Errorf("query: degree constraint needs X ⊂ Y, got X=%v Y=%v", c.X, c.Y)
	}
	if !c.Y.SubsetOf(bitset.Full(n)) {
		return fmt.Errorf("query: constraint set %v outside universe [%d]", c.Y, n)
	}
	if c.LogN == nil || c.LogN.Sign() < 0 {
		return fmt.Errorf("query: constraint needs LogN ≥ 0")
	}
	return nil
}

// LogOf returns an exact-or-over-approximating rational for log₂ n.
// Powers of two are exact; other values are rounded up by ~1e-9, which only
// relaxes upper bounds (they remain sound).
func LogOf(n int64) *big.Rat {
	if n <= 1 {
		return new(big.Rat)
	}
	if n&(n-1) == 0 { // power of two: exact
		e := 0
		for m := n; m > 1; m >>= 1 {
			e++
		}
		return big.NewRat(int64(e), 1)
	}
	const denom = 1 << 30
	v := math.Log2(float64(n))
	num := int64(math.Ceil(v*denom)) + 1
	return big.NewRat(num, denom)
}

// Cardinality builds the cardinality constraint (∅, Y, N) guarded by atom g.
func Cardinality(y bitset.Set, n int64, guard int) DegreeConstraint {
	return DegreeConstraint{X: 0, Y: y, N: n, LogN: LogOf(n), Guard: guard}
}

// FD builds the functional dependency X → Y (degree bound 1) guarded by
// atom g; the constraint set is (X, X∪Y, 1) per Definition 1.1.
func FD(x, y bitset.Set, guard int) DegreeConstraint {
	return DegreeConstraint{X: x, Y: x.Union(y), N: 1, LogN: new(big.Rat), Guard: guard}
}

// Degree builds a general degree constraint (X, Y, N) guarded by atom g.
func Degree(x, y bitset.Set, n int64, guard int) DegreeConstraint {
	return DegreeConstraint{X: x, Y: y, N: n, LogN: LogOf(n), Guard: guard}
}

// Instance binds one relation to each atom of a schema.
type Instance struct {
	Relations []*relation.Relation
}

// NewInstance allocates empty relations matching the schema's atoms.
func NewInstance(s *Schema) *Instance {
	ins := &Instance{Relations: make([]*relation.Relation, len(s.Atoms))}
	for i, a := range s.Atoms {
		ins.Relations[i] = relation.New(a.Name, a.Vars)
	}
	return ins
}

// MaxSize returns N = max over relations of |R_F| (Eq. 27).
func (ins *Instance) MaxSize() int {
	best := 0
	for _, r := range ins.Relations {
		if r.Size() > best {
			best = r.Size()
		}
	}
	return best
}

// CardinalityConstraints derives (∅, F, |R_F|) for every atom from the
// instance, the constraints used when only relation sizes are known.
func (ins *Instance) CardinalityConstraints(s *Schema) []DegreeConstraint {
	out := make([]DegreeConstraint, len(s.Atoms))
	for i, a := range s.Atoms {
		out[i] = Cardinality(a.Vars, int64(ins.Relations[i].Size()), i)
	}
	return out
}

// Check verifies that the instance satisfies every guarded constraint,
// returning a descriptive error for the first violation.
func (ins *Instance) Check(s *Schema, dcs []DegreeConstraint) error {
	for _, c := range dcs {
		if err := c.Validate(s.NumVars); err != nil {
			return err
		}
		if c.Guard < 0 {
			continue
		}
		if c.Guard >= len(ins.Relations) {
			return fmt.Errorf("query: guard %d out of range", c.Guard)
		}
		r := ins.Relations[c.Guard]
		if !c.Y.SubsetOf(r.Attrs()) {
			return fmt.Errorf("query: guard %s (schema %v) cannot guard constraint on %v",
				r.Name, r.Attrs(), c.Y)
		}
		d := int64(r.Degree(c.Y, c.X))
		if c.N > 0 && d > c.N {
			return fmt.Errorf("query: constraint deg(%s|%s) ≤ %d violated: actual %d",
				s.VarLabel(c.Y), s.VarLabel(c.X), c.N, d)
		}
	}
	return nil
}

// FullJoin computes the join of all body atoms — the set of tuples
// satisfying the rule body. Exponential in general; used as ground truth in
// tests and for small examples.
func (ins *Instance) FullJoin() *relation.Relation {
	if len(ins.Relations) == 0 {
		return relation.New("⊤", 0)
	}
	// Join smallest-first for a bit of robustness.
	rels := append([]*relation.Relation(nil), ins.Relations...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Size() < rels[j].Size() })
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = acc.Join(r)
	}
	return acc
}

// IsModel reports whether the target tables form a model of the rule on
// this instance (Section 1.2): for every tuple t satisfying the body there
// is a target B with Π_B(t) ∈ T_B. Targets missing from the map are treated
// as empty.
func (ins *Instance) IsModel(p *Disjunctive, tables map[bitset.Set]*relation.Relation) (bool, error) {
	join := ins.FullJoin()
	full := bitset.Full(p.NumVars)
	if join.Attrs() != full {
		return false, fmt.Errorf("query: body covers %v, not the full universe %v", join.Attrs(), full)
	}
	for t := range join.All() {
		ok := false
		for _, b := range p.Targets {
			tb, present := tables[b]
			if !present {
				continue
			}
			pos := make([]relation.Value, 0, b.Card())
			for i, v := range full.Vars() {
				if b.Contains(v) {
					pos = append(pos, t[i])
				}
			}
			if tb.Contains(pos) {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// ModelSize returns max_B |T_B| over the provided tables (Eq. 5's inner max).
func ModelSize(tables map[bitset.Set]*relation.Relation) int {
	best := 0
	for _, t := range tables {
		if t.Size() > best {
			best = t.Size()
		}
	}
	return best
}
