package query

import (
	"math/big"
	"testing"

	"panda/internal/bitset"
	"panda/internal/relation"
)

// fourCycleSchema builds the paper's Example 1.2 query shape.
func fourCycleSchema() *Schema {
	return &Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
			{Name: "R41", Vars: bitset.Of(3, 0)},
		},
	}
}

func TestHypergraph(t *testing.T) {
	s := fourCycleSchema()
	h := s.Hypergraph()
	if h.N != 4 || len(h.Edges) != 4 {
		t.Fatalf("hypergraph %+v", h)
	}
}

func TestLogOf(t *testing.T) {
	if LogOf(1).Sign() != 0 || LogOf(0).Sign() != 0 {
		t.Fatal("log of 0/1 must be 0")
	}
	if LogOf(8).Cmp(big.NewRat(3, 1)) != 0 {
		t.Fatalf("log2 8 = %v, want exactly 3", LogOf(8))
	}
	if LogOf(1024).Cmp(big.NewRat(10, 1)) != 0 {
		t.Fatalf("log2 1024 = %v, want exactly 10", LogOf(1024))
	}
	// Non-powers are over-approximated: 2^LogOf(n) ≥ n, and within 1e-6.
	l := LogOf(1000)
	lo, hi := big.NewRat(9965784, 1000000), big.NewRat(9965790, 1000000)
	if l.Cmp(lo) < 0 || l.Cmp(hi) > 0 {
		t.Fatalf("log2 1000 = %v, want ≈ 9.9657843", l)
	}
}

func TestConstraintConstructors(t *testing.T) {
	c := Cardinality(bitset.Of(0, 1), 100, 0)
	if !c.IsCardinality() || c.IsFD() {
		t.Fatal("cardinality flags wrong")
	}
	f := FD(bitset.Of(0), bitset.Of(1), 0)
	if !f.IsFD() || f.IsCardinality() {
		t.Fatal("fd flags wrong")
	}
	if f.Y != bitset.Of(0, 1) {
		t.Fatalf("FD constraint set Y = %v, want X∪Y", f.Y)
	}
	if err := f.Validate(4); err != nil {
		t.Fatal(err)
	}
	bad := DegreeConstraint{X: bitset.Of(0, 1), Y: bitset.Of(0, 1), LogN: new(big.Rat)}
	if err := bad.Validate(4); err == nil {
		t.Fatal("X = Y should not validate")
	}
}

func TestInstanceCheck(t *testing.T) {
	s := fourCycleSchema()
	ins := NewInstance(s)
	for i := 0; i < 5; i++ {
		ins.Relations[0].Insert([]relation.Value{int64(i), 0})
	}
	ok := []DegreeConstraint{Cardinality(bitset.Of(0, 1), 5, 0)}
	if err := ins.Check(s, ok); err != nil {
		t.Fatalf("Check: %v", err)
	}
	tooSmall := []DegreeConstraint{Cardinality(bitset.Of(0, 1), 4, 0)}
	if err := ins.Check(s, tooSmall); err == nil {
		t.Fatal("violated cardinality constraint not detected")
	}
	// FD A2 → A1 is violated (several A1 values share A2 = 0).
	fd := []DegreeConstraint{FD(bitset.Of(1), bitset.Of(0), 0)}
	if err := ins.Check(s, fd); err == nil {
		t.Fatal("violated FD not detected")
	}
}

func TestFullJoinAndModel(t *testing.T) {
	s := &Schema{NumVars: 3, Atoms: []Atom{
		{Name: "R", Vars: bitset.Of(0, 1)},
		{Name: "S", Vars: bitset.Of(1, 2)},
	}}
	ins := NewInstance(s)
	ins.Relations[0].Insert([]relation.Value{1, 2})
	ins.Relations[1].Insert([]relation.Value{2, 3})
	ins.Relations[1].Insert([]relation.Value{2, 4})
	join := ins.FullJoin()
	if join.Size() != 2 {
		t.Fatalf("join size %d", join.Size())
	}
	rule := &Disjunctive{Schema: *s, Targets: []bitset.Set{bitset.Of(0, 1), bitset.Of(1, 2)}}
	// A model covering via the second target only.
	tb := relation.New("T12", bitset.Of(1, 2))
	tb.Insert([]relation.Value{2, 3})
	tb.Insert([]relation.Value{2, 4})
	ok, err := ins.IsModel(rule, map[bitset.Set]*relation.Relation{bitset.Of(1, 2): tb})
	if err != nil || !ok {
		t.Fatalf("IsModel = %v, %v", ok, err)
	}
	// Dropping one tuple breaks the model.
	tb2 := relation.New("T12", bitset.Of(1, 2))
	tb2.Insert([]relation.Value{2, 3})
	ok, err = ins.IsModel(rule, map[bitset.Set]*relation.Relation{bitset.Of(1, 2): tb2})
	if err != nil || ok {
		t.Fatalf("partial table accepted as model")
	}
}

func TestModelSize(t *testing.T) {
	a := relation.New("A", bitset.Of(0))
	a.Insert([]relation.Value{1})
	a.Insert([]relation.Value{2})
	b := relation.New("B", bitset.Of(1))
	b.Insert([]relation.Value{1})
	sz := ModelSize(map[bitset.Set]*relation.Relation{bitset.Of(0): a, bitset.Of(1): b})
	if sz != 2 {
		t.Fatalf("ModelSize = %d", sz)
	}
}

func TestParseConjunctive(t *testing.T) {
	src := `
# the 4-cycle
Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A4,A1).
|R12| <= 100
deg(R12: A2 | A1) <= 5
fd(R23: A2 -> A3)
`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conj == nil || !res.Conj.IsFull() {
		t.Fatalf("expected full CQ, got %+v", res.Conj)
	}
	if len(res.Rule.Schema.Atoms) != 4 || res.Rule.Schema.NumVars != 4 {
		t.Fatalf("schema %+v", res.Rule.Schema)
	}
	if len(res.Constraints) != 3 {
		t.Fatalf("constraints %+v", res.Constraints)
	}
	c := res.Constraints[1]
	if c.X != bitset.Of(0) || c.Y != bitset.Of(0, 1) || c.N != 5 {
		t.Fatalf("deg constraint %+v", c)
	}
	if !res.Constraints[2].IsFD() {
		t.Fatalf("fd constraint %+v", res.Constraints[2])
	}
}

func TestParseBoolean(t *testing.T) {
	res, err := Parse(`Q() :- R(A,B), S(B,C).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conj == nil || !res.Conj.IsBoolean() {
		t.Fatalf("expected Boolean query")
	}
	if len(res.Rule.Targets) != 1 || res.Rule.Targets[0] != 0 {
		t.Fatalf("Boolean rule targets = %v", res.Rule.Targets)
	}
}

func TestParseDisjunctive(t *testing.T) {
	res, err := Parse(`T1(A1,A2,A3) v T2(A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conj != nil {
		t.Fatal("disjunctive head should not produce a CQ")
	}
	if len(res.Rule.Targets) != 2 {
		t.Fatalf("targets %v", res.Rule.Targets)
	}
	if res.Rule.Targets[0] != bitset.Of(0, 1, 2) || res.Rule.Targets[1] != bitset.Of(1, 2, 3) {
		t.Fatalf("targets %v", res.Rule.Targets)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`nonsense`,
		`|R| <= 5`,                     // constraint before rule
		`Q(A) :- R(A). junk trailing.`, // second line unparsable
		`Q(A) :- R(A).` + "\n" + `|Missing| <= 5`,
		`Q(A) :- R().`, // body atom without variables
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
