package relation

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
)

func randomRelation(rng *rand.Rand, attrs bitset.Set, n, dom int) *Relation {
	r := New("B", attrs)
	k := attrs.Card()
	row := make([]Value, k)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rng.Intn(dom))
		}
		r.Insert(row)
	}
	return r
}

func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := randomRelation(rng, bitset.Of(0, 1), 5000, 200)
	s := randomRelation(rng, bitset.Of(1, 2), 5000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Join(s)
	}
}

func BenchmarkSemijoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := randomRelation(rng, bitset.Of(0, 1), 10000, 500)
	s := randomRelation(rng, bitset.Of(1, 2), 10000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Semijoin(s)
	}
}

func BenchmarkProject(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	r := randomRelation(rng, bitset.Of(0, 1, 2), 20000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Project(bitset.Of(0, 2))
	}
}

func BenchmarkPartitionByDegree(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	r := New("R", bitset.Of(0, 1))
	// Zipf-ish skew to exercise multiple buckets.
	for i := 0; i < 20000; i++ {
		x := rng.Intn(100)
		if rng.Intn(4) == 0 {
			x = 0
		}
		r.Insert([]Value{Value(x), Value(rng.Intn(5000))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PartitionByDegree(bitset.Of(0, 1), bitset.Of(0))
	}
}
