package relation

import (
	"panda/internal/bitset"
)

// Builder constructs a relation in bulk: rows are interned and deduplicated
// as they arrive into preallocated column vectors, and Build can lay the
// rows out in sorted order for deterministic storage. Use it when the whole
// row set is known up front (query binding, CSV ingest, test fixtures);
// incremental catalog writes keep using Relation.Insert.
type Builder struct {
	r *Relation
}

// NewBuilder starts a relation with the given schema, preallocating for
// sizeHint rows (0 is fine).
func NewBuilder(name string, attrs bitset.Set, sizeHint int) *Builder {
	r := New(name, attrs)
	if sizeHint > 0 {
		for c := range r.data {
			r.data[c] = make([]uint32, 0, sizeHint)
		}
		r.seen = make(map[uint64][]int32, sizeHint)
	}
	return &Builder{r: r}
}

// Add inserts one tuple in column order; duplicates are dropped.
func (b *Builder) Add(t []Value) { b.r.Insert(t) }

// AddIDs inserts one already-interned row; duplicates are dropped.
func (b *Builder) AddIDs(ids []uint32) { b.r.InsertIDs(ids) }

// Size returns the number of distinct rows added so far.
func (b *Builder) Size() int { return b.r.Size() }

// Build finalizes and returns the relation. The builder must not be used
// afterwards.
func (b *Builder) Build() *Relation {
	r := b.r
	b.r = nil
	return r
}

// BuildSorted finalizes like Build but with rows stored in lexicographic
// value order, so storage order — and therefore cursor iteration order —
// is deterministic regardless of insertion order.
func (b *Builder) BuildSorted() *Relation {
	r := b.r
	b.r = nil
	perm := r.sortedPerm()
	for c := range r.data {
		col := make([]uint32, r.nrows)
		for i, p := range perm {
			col[i] = r.data[c][int(p)]
		}
		r.data[c] = col
	}
	// Row indices moved: rebuild the dedup table lazily if ever needed.
	r.seen = nil
	r.mut++
	return r
}
