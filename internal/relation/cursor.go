package relation

import (
	"iter"
	"sort"
)

// Row is one decoded tuple in column order (sorted variable ids).
type Row = []Value

// Cursor is a zero-alloc reader over a relation's rows. The decode buffer
// is reused: the slice returned by Row is valid only until the next call to
// Next — copy it if it must outlive the iteration.
//
//	for c := r.NewCursor(); c.Next(); {
//		use(c.Row())
//	}
type Cursor struct {
	r   *Relation
	i   int
	buf []Value
}

// NewCursor returns a cursor positioned before the first row.
func (r *Relation) NewCursor() Cursor {
	return Cursor{r: r, i: -1, buf: make([]Value, len(r.cols))}
}

// Next advances to the next row; it returns false when exhausted.
func (c *Cursor) Next() bool {
	c.i++
	return c.i < c.r.nrows
}

// Row decodes the current row into the cursor's reused buffer.
func (c *Cursor) Row() Row {
	c.r.decodeInto(c.buf, c.i)
	return c.buf
}

// IDs copies the current row's interned ids into buf (which must have the
// relation's arity) — for callers that stay on the id plane.
func (c *Cursor) IDs(buf []uint32) []uint32 {
	return c.r.rowIDs(c.i, buf)
}

// All iterates the decoded rows in storage order. One buffer is reused for
// every yielded row: the slice is valid only for the body of the loop —
// copy it if it must be retained.
func (r *Relation) All() iter.Seq[Row] {
	return func(yield func(Row) bool) {
		buf := make([]Value, len(r.cols))
		for i := 0; i < r.nrows; i++ {
			r.decodeInto(buf, i)
			if !yield(buf) {
				return
			}
		}
	}
}

// AllSorted iterates the decoded rows in lexicographic value order, reusing
// one buffer like All. It sorts a row permutation, not the rows themselves.
func (r *Relation) AllSorted() iter.Seq[Row] {
	return func(yield func(Row) bool) {
		perm := r.sortedPerm()
		buf := make([]Value, len(r.cols))
		for _, i := range perm {
			r.decodeInto(buf, int(i))
			if !yield(buf) {
				return
			}
		}
	}
}

// sortedPerm returns the row indices in lexicographic decoded-value order.
func (r *Relation) sortedPerm() []int32 {
	perm := make([]int32, r.nrows)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := int(perm[a]), int(perm[b])
		for c := range r.data {
			vi, vj := r.in.ValueOf(r.data[c][i]), r.in.ValueOf(r.data[c][j])
			if vi != vj {
				return vi < vj
			}
		}
		return false
	})
	return perm
}

// decodeRange materializes rows [from, to) as boxed tuples backed by one
// flat allocation.
func (r *Relation) decodeRange(from, to int) [][]Value {
	n := to - from
	if n < 0 {
		n = 0
	}
	out := make([][]Value, n)
	w := len(r.cols)
	flat := make([]Value, n*w)
	for i := 0; i < n; i++ {
		buf := flat[i*w : (i+1)*w : (i+1)*w]
		r.decodeInto(buf, from+i)
		out[i] = buf
	}
	return out
}

// Rows returns a decoded copy of every tuple; callers own the result.
//
// Deprecated: Rows materializes size×arity boxed values on every call. Hot
// paths should iterate with All, AllSorted or NewCursor, or stay on the id
// plane via Column/InsertIDs.
func (r *Relation) Rows() [][]Value { return r.decodeRange(0, r.nrows) }

// SortedRows returns the tuples sorted lexicographically (for deterministic
// comparison in tests and reports). Like Rows, this materializes a copy.
func (r *Relation) SortedRows() [][]Value {
	perm := r.sortedPerm()
	out := make([][]Value, r.nrows)
	w := len(r.cols)
	flat := make([]Value, r.nrows*w)
	for i, p := range perm {
		buf := flat[i*w : (i+1)*w : (i+1)*w]
		r.decodeInto(buf, int(p))
		out[i] = buf
	}
	return out
}
