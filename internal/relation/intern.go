package relation

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Interner is a bijective mapping Value ⇄ dense uint32 id. All relations that
// may ever meet in a join, semijoin, union or equality check must share one
// interner so that id equality coincides with value equality; the package
// keeps a single process-wide table (Global) that relation.New wires in, so
// every relation built through the public API is automatically compatible.
//
// Intern is safe for concurrent use. ValueOf is lock-free: ids are decoded
// through an atomically published chunk directory whose chunks are
// preallocated at full size and never moved, so readers never observe a
// reallocation. An id handed to another goroutine through any of the usual
// synchronization points (db mutex, channel, goroutine start) is safe to
// decode there.
type Interner struct {
	mu     sync.RWMutex
	ids    map[Value]uint32
	n      uint32                    // next id to assign
	chunks atomic.Pointer[[][]Value] // directory; chunk c holds ids [c<<chunkBits, …)
}

const (
	chunkBits = 16
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	in := &Interner{ids: make(map[Value]uint32)}
	dir := make([][]Value, 0, 8)
	in.chunks.Store(&dir)
	return in
}

// Global is the process-wide intern table used by relation.New. Sharing one
// table across every DB keeps all relations on the id fast path; the id
// space is dense per process, not per catalog.
var Global = NewInterner()

// Intern returns the dense id for v, assigning the next free id on first
// sight. It panics if the table exceeds 2³² distinct values.
func (in *Interner) Intern(v Value) uint32 {
	in.mu.RLock()
	id, ok := in.ids[v]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[v]; ok {
		return id
	}
	id = in.n
	if id == ^uint32(0) {
		panic("relation: intern table overflow (2^32 distinct values)")
	}
	dir := *in.chunks.Load()
	c, off := int(id>>chunkBits), int(id&chunkMask)
	if c == len(dir) {
		// Publish a fresh directory with one more preallocated chunk. The
		// old directory stays valid for concurrent readers.
		next := make([][]Value, c+1, 2*(c+1))
		copy(next, dir)
		next[c] = make([]Value, chunkSize)
		in.chunks.Store(&next)
		dir = next
	}
	dir[c][off] = v
	in.ids[v] = id
	in.n = id + 1
	return id
}

// Lookup returns the id for v without assigning one; ok is false when v has
// never been interned (and therefore cannot appear in any relation using
// this table).
func (in *Interner) Lookup(v Value) (uint32, bool) {
	in.mu.RLock()
	id, ok := in.ids[v]
	in.mu.RUnlock()
	return id, ok
}

// ValueOf decodes an id back to its value. The id must have been returned by
// Intern on this table.
func (in *Interner) ValueOf(id uint32) Value {
	dir := *in.chunks.Load()
	return dir[id>>chunkBits][id&chunkMask]
}

// Len returns the number of distinct values interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return int(in.n)
}

// sameInterner panics unless the two relations decode through the same
// table; binary operators rely on id equality ⇔ value equality.
func sameInterner(r, s *Relation) {
	if r.in != s.in {
		panic(fmt.Sprintf("relation: %s and %s use different intern tables", r.Name, s.Name))
	}
}
