package relation

import (
	"math"
	"sync"
	"testing"

	"panda/internal/bitset"
)

// FuzzInternRoundTrip: Intern/ValueOf is a bijection — every int64,
// including negatives and the sentinels, decodes back to itself, re-interning
// returns the same id, and distinct values get distinct ids.
func FuzzInternRoundTrip(f *testing.F) {
	for _, seed := range []int64{0, 1, -1, 42, math.MaxInt64, math.MinInt64, math.MaxInt32, math.MinInt32, 1 << 40, -(1 << 40)} {
		f.Add(seed, seed+1)
	}
	in := NewInterner()
	var mu sync.Mutex
	f.Fuzz(func(t *testing.T, a, b int64) {
		mu.Lock()
		defer mu.Unlock()
		ida := in.Intern(a)
		idb := in.Intern(b)
		if got := in.ValueOf(ida); got != a {
			t.Fatalf("ValueOf(Intern(%d)) = %d", a, got)
		}
		if got := in.ValueOf(idb); got != b {
			t.Fatalf("ValueOf(Intern(%d)) = %d", b, got)
		}
		if in.Intern(a) != ida {
			t.Fatalf("re-intern of %d changed id", a)
		}
		if (a == b) != (ida == idb) {
			t.Fatalf("id equality diverges from value equality: %d→%d, %d→%d", a, ida, b, idb)
		}
		if id, ok := in.Lookup(a); !ok || id != ida {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", a, id, ok, ida)
		}
	})
}

// TestInternChunkGrowth crosses several chunk boundaries and checks decode
// under concurrent interning (the chunk directory republish path).
func TestInternChunkGrowth(t *testing.T) {
	in := NewInterner()
	const n = 3*chunkSize + 17
	ids := make([]uint32, n)
	for i := 0; i < n; i++ {
		ids[i] = in.Intern(int64(i * 3))
	}
	if in.Len() != n {
		t.Fatalf("Len = %d, want %d", in.Len(), n)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				if got := in.ValueOf(ids[i]); got != int64(i*3) {
					t.Errorf("ValueOf(%d) = %d, want %d", ids[i], got, i*3)
					return
				}
			}
			// Concurrent writers forcing directory growth.
			for i := 0; i < chunkSize/4; i++ {
				in.Intern(int64(-1 - g*chunkSize - i))
			}
		}(g)
	}
	wg.Wait()
}

// TestContainsUninternedValue: a value the table has never seen cannot be in
// any relation; Contains must answer false without interning it.
func TestContainsUninternedValue(t *testing.T) {
	r := New("R", bitset.Of(0))
	r.Insert([]Value{5})
	before := Global.Len()
	if r.Contains([]Value{math.MinInt64 + 12345}) {
		t.Fatal("Contains claimed a never-interned value")
	}
	if Global.Len() != before {
		t.Fatal("Contains interned its probe value")
	}
}

// TestSentinelValues: extreme int64 values survive storage and decode
// through a relation round trip.
func TestSentinelValues(t *testing.T) {
	r := New("R", bitset.Of(0, 1))
	rows := [][]Value{
		{math.MinInt64, math.MaxInt64},
		{-1, 0},
		{math.MaxInt64, math.MinInt64},
	}
	for _, row := range rows {
		r.Insert(row)
	}
	for _, row := range rows {
		if !r.Contains(row) {
			t.Fatalf("lost sentinel row %v", row)
		}
	}
	if r.Size() != len(rows) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(rows))
	}
	got := r.SortedRows()
	if got[0][0] != math.MinInt64 || got[len(got)-1][0] != math.MaxInt64 {
		t.Fatalf("sorted order wrong for sentinels: %v", got)
	}
}
