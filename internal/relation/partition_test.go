package relation

import (
	"reflect"
	"testing"

	"panda/internal/bitset"
)

// TestRowsCappedAgainstCallerAppend is the regression test for the live-
// slice bug: Rows() used to return the internal slice with spare capacity,
// so a caller append wrote into the same backing array the insert log's
// RowsSince subslices alias and the next Insert appends to. With the capped
// three-index slice, a caller append must reallocate: neither the caller's
// appended row nor a concurrently-held delta view may be clobbered.
func TestRowsCappedAgainstCallerAppend(t *testing.T) {
	r := New("R", bitset.Of(0, 1))
	r.Insert([]Value{1, 1})
	r.Insert([]Value{2, 2})
	r.Insert([]Value{3, 3}) // len 3, internal capacity 4: the trap is armed
	r.Stamp(1)

	v := r.Rows()
	if cap(v) != len(v) {
		t.Fatalf("Rows() exposes spare capacity: len %d cap %d", len(v), cap(v))
	}
	scratch := append(v, []Value{99, 99}) // must reallocate, not share backing

	r.Insert([]Value{4, 4})
	r.Stamp(2)

	// The caller's appended row survives the relation's own Insert.
	if !reflect.DeepEqual(scratch[3], []Value{99, 99}) {
		t.Fatalf("Insert clobbered a caller-appended row: %v", scratch[3])
	}
	// The delta view sees exactly the inserted row, not the caller's junk.
	delta := r.RowsSince(1)
	if len(delta) != 1 || !reflect.DeepEqual(delta[0], []Value{4, 4}) {
		t.Fatalf("RowsSince(1) = %v, want [[4 4]]", delta)
	}
	// And the reverse direction: appending to a held delta view must not
	// leak into rows the relation inserts afterwards.
	held := r.RowsSince(1)
	_ = append(held, []Value{77, 77})
	r.Insert([]Value{5, 5})
	if got := r.Rows()[4]; !reflect.DeepEqual(got, []Value{5, 5}) {
		t.Fatalf("caller append into a delta view clobbered row 5: %v", got)
	}
}

// TestMemoizedIndexInvalidation: Join/Semijoin answers must stay correct
// when rows arrive between calls — the memoized hash indexes and key sets
// are invalidated by row count.
func TestMemoizedIndexInvalidation(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {2, 20}})
	s := pairs("S", 1, 2, [][2]Value{{10, 100}})
	if got := r.Join(s).Size(); got != 1 {
		t.Fatalf("join size = %d, want 1", got)
	}
	if got := r.Semijoin(s).Size(); got != 1 {
		t.Fatalf("semijoin size = %d, want 1", got)
	}
	// Grow the build sides; a stale memo would miss the new matches.
	s.Insert([]Value{20, 200})
	if got := r.Join(s).Size(); got != 2 {
		t.Fatalf("join after insert = %d, want 2 (stale index?)", got)
	}
	if got := r.Semijoin(s).Size(); got != 2 {
		t.Fatalf("semijoin after insert = %d, want 2 (stale key set?)", got)
	}
}

// TestMemoizedIndexReuse: at an unchanged mutation tick the memoized
// structures are returned as-is (pointer-identical), not rebuilt.
func TestMemoizedIndexReuse(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {2, 20}, {3, 30}})
	on := bitset.Of(0)
	i1 := r.index(on)
	i2 := r.index(on)
	if reflect.ValueOf(i1).Pointer() != reflect.ValueOf(i2).Pointer() {
		t.Fatal("index rebuilt at unchanged mutation tick")
	}
	p1 := r.Partition(2, on)
	p2 := r.Partition(2, on)
	if p1[0] != p2[0] {
		// Same backing memo: identical *Relation buckets.
		t.Fatal("partitions rebuilt at unchanged mutation tick")
	}
	r.Insert([]Value{4, 40})
	if reflect.ValueOf(r.index(on)).Pointer() == reflect.ValueOf(i1).Pointer() {
		t.Fatal("index not invalidated by insert")
	}
	if p3 := r.Partition(2, on); p3[0] == p1[0] {
		t.Fatal("partitions not invalidated by insert")
	}
}

// TestMemoKeyedByMutationTick is the regression test for the row-count
// invalidation heuristic the memos used before: any future mutation that
// changes contents without changing cardinality (drop/recreate, swap,
// compaction) would have returned a stale index. The memos are now keyed by
// the monotone mutation tick: a duplicate insert (no accepted mutation)
// keeps them valid, while any accepted insert — even one that later
// restores the original cardinality — invalidates.
func TestMemoKeyedByMutationTick(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {2, 20}})
	on := bitset.Of(0)
	i1 := r.index(on)
	r.Insert([]Value{1, 10}) // duplicate: set semantics, tick unchanged
	if reflect.ValueOf(r.index(on)).Pointer() != reflect.ValueOf(i1).Pointer() {
		t.Fatal("duplicate insert invalidated the memo (tick should not move)")
	}
	if r.mut != 2 {
		t.Fatalf("mutation tick = %d after 2 accepted + 1 duplicate insert, want 2", r.mut)
	}
	// Equal cardinality at a later tick must still invalidate: compare the
	// memo of a recreated relation with the same row count but different
	// contents — lookups must reflect the new rows, not the old index.
	fresh := pairs("R", 0, 1, [][2]Value{{7, 70}, {8, 80}})
	s := pairs("S", 1, 2, [][2]Value{{70, 700}})
	if got := fresh.Join(s).Size(); got != 1 {
		t.Fatalf("recreated relation join = %d, want 1", got)
	}
	if fresh.mut != r.mut {
		t.Fatalf("equal-cardinality relations share a tick value (%d vs %d) — memos must live per object", fresh.mut, r.mut)
	}
}

// TestPartitionCoPartitioned: two relations partitioned with the same k on
// their shared attribute agree on bucket placement (equal key values land
// at equal bucket indices), every row lands in exactly one bucket, and the
// assignment is a pure function of the tuple values.
func TestPartitionCoPartitioned(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}})
	s := pairs("S", 0, 2, [][2]Value{{5, 55}, {4, 44}, {3, 33}, {2, 22}, {1, 11}})
	const k = 3
	on := bitset.Of(0)
	rp, sp := r.Partition(k, on), s.Partition(k, on)
	if len(rp) != k || len(sp) != k {
		t.Fatalf("partition counts: %d, %d, want %d", len(rp), len(sp), k)
	}
	bucketOf := func(parts []*Relation, a Value) int {
		found := -1
		for j, p := range parts {
			for _, row := range p.Rows() {
				if row[0] == a {
					if found >= 0 && found != j {
						t.Fatalf("key %d in two buckets", a)
					}
					found = j
				}
			}
		}
		if found < 0 {
			t.Fatalf("key %d in no bucket", a)
		}
		return found
	}
	total := 0
	for _, p := range rp {
		total += p.Size()
	}
	if total != r.Size() {
		t.Fatalf("partition row total %d ≠ %d", total, r.Size())
	}
	for a := Value(1); a <= 5; a++ {
		if bucketOf(rp, a) != bucketOf(sp, a) {
			t.Fatalf("key %d not co-partitioned", a)
		}
	}
	// k ≤ 1 degrades to the relation itself.
	if one := r.Partition(1, on); len(one) != 1 || one[0] != r {
		t.Fatal("Partition(1) should return the relation itself")
	}
}

// TestPartitionHintClamp: negative hints clamp to unset.
func TestPartitionHintClamp(t *testing.T) {
	r := New("R", bitset.Of(0))
	r.SetPartitionHint(-3)
	if r.PartitionHint() != 0 {
		t.Fatalf("negative hint not clamped: %d", r.PartitionHint())
	}
	r.SetPartitionHint(8)
	if r.PartitionHint() != 8 {
		t.Fatalf("hint = %d, want 8", r.PartitionHint())
	}
}
