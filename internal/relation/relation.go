// Package relation implements the in-memory relational substrate used by
// PANDA and the baseline evaluators: set-semantics relations over integer
// domains with natural join, projection, semijoin, union, degree statistics
// (Definition 2.10) and the heavy/light degree-bucket partitioning of
// Lemma 6.1.
package relation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"panda/internal/bitset"
)

// Value is a single attribute value.
type Value = int64

// Relation is a finite relation with set semantics. Attribute order inside
// tuples follows the sorted order of the schema's variable indices.
type Relation struct {
	Name  string
	attrs bitset.Set
	cols  []int // sorted variable ids; tuple positions follow this order
	rows  [][]Value
	seen  map[string]struct{}
	marks []tickMark

	// partHint is the partition count recorded for this relation (catalog
	// entries carry it so the executor can pick a data-parallel fan-out
	// without an explicit per-query option); 0 means unset.
	partHint int

	// memo caches derived read-only structures — hash indexes (Join build
	// side), semijoin key sets, and hash partitions — keyed by attribute
	// set and invalidated by row count, so a relation that is joined,
	// semijoin-reduced or partitioned repeatedly (standing-query rounds,
	// per-partition rule executions) hashes its rows once instead of once
	// per call. Guarded by its own mutex: executions share instance
	// relations across worker goroutines.
	memo struct {
		sync.Mutex
		indexes map[bitset.Set]*memoIndex
		keys    map[bitset.Set]*memoKeys
		parts   map[partMemoKey]*memoParts
	}
}

// memoIndex caches index(x) at a given row count.
type memoIndex struct {
	rows int
	idx  map[string][]int
}

// memoKeys caches the distinct-key set over an attribute subset at a given
// row count (the build side of Semijoin).
type memoKeys struct {
	rows int
	keys map[string]struct{}
}

// partMemoKey identifies a cached hash partitioning.
type partMemoKey struct {
	k  int
	on bitset.Set
}

// memoParts caches Partition(k, on) at a given row count.
type memoParts struct {
	rows  int
	parts []*Relation
}

// tickMark records that the relation held exactly `rows` tuples when the
// catalog tick `tick` was stamped. Because rows is append-only, the prefix
// rows[:rows] is immutable and RowsSince can answer "what arrived after
// tick T" as a subslice.
type tickMark struct {
	tick uint64
	rows int
}

// New returns an empty relation with the given schema.
func New(name string, attrs bitset.Set) *Relation {
	return &Relation{
		Name:  name,
		attrs: attrs,
		cols:  attrs.Vars(),
		seen:  map[string]struct{}{},
	}
}

// Attrs returns the relation's schema.
func (r *Relation) Attrs() bitset.Set { return r.attrs }

// Cols returns the tuple layout: variable ids in tuple-position order.
func (r *Relation) Cols() []int { return r.cols }

// Size returns the number of distinct tuples.
func (r *Relation) Size() int { return len(r.rows) }

// Rows exposes the tuples; callers must not mutate them. The slice is
// capped (three-index) so a caller append reallocates instead of writing
// into the live backing array — the same array the insert log's RowsSince
// subslices alias and the next Insert appends to.
func (r *Relation) Rows() [][]Value { return r.rows[:len(r.rows):len(r.rows)] }

// SetPartitionHint records the partition count for this relation (0 clears
// it). The executor uses the largest hint across a query's relations as the
// data-parallel fan-out when no explicit partition option is given.
func (r *Relation) SetPartitionHint(k int) {
	if k < 0 {
		k = 0
	}
	r.partHint = k
}

// PartitionHint returns the recorded partition count (0 when unset).
func (r *Relation) PartitionHint() int { return r.partHint }

func key(t []Value) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// Insert adds a tuple given in column order (sorted variable ids);
// duplicates are ignored. The slice is copied.
func (r *Relation) Insert(t []Value) {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.cols)))
	}
	k := key(t)
	if _, dup := r.seen[k]; dup {
		return
	}
	r.seen[k] = struct{}{}
	r.rows = append(r.rows, append([]Value(nil), t...))
}

// InsertMap adds a tuple given as a variable→value assignment covering the
// schema.
func (r *Relation) InsertMap(m map[int]Value) {
	t := make([]Value, len(r.cols))
	for i, c := range r.cols {
		v, ok := m[c]
		if !ok {
			panic(fmt.Sprintf("relation %s: missing attribute %d", r.Name, c))
		}
		t[i] = v
	}
	r.Insert(t)
}

// Stamp records that the relation's current contents correspond to the
// monotone catalog tick. Ticks must be stamped in increasing order. A
// re-stamp at an unchanged row count is a no-op: RowsSince for any tick at
// or past the existing mark already answers "nothing new", and keeping the
// older tick keeps Tick() stable across content-preserving mutations
// (duplicate-only inserts), so statement memoization survives them.
func (r *Relation) Stamp(tick uint64) {
	if n := len(r.marks); n > 0 && r.marks[n-1].rows == len(r.rows) {
		return
	}
	r.marks = append(r.marks, tickMark{tick: tick, rows: len(r.rows)})
}

// Tick returns the latest stamped catalog tick (0 if never stamped).
func (r *Relation) Tick() uint64 {
	if n := len(r.marks); n > 0 {
		return r.marks[n-1].tick
	}
	return 0
}

// RowsSince returns the tuples inserted strictly after catalog tick `tick`
// was stamped: everything past the newest mark with mark.tick ≤ tick, or
// all rows when no such mark exists. The result is a capped subslice of the
// append-only row log, so it stays valid — and stops growing — even as the
// relation keeps growing; callers must not mutate the tuples.
func (r *Relation) RowsSince(tick uint64) [][]Value {
	// Binary search: first mark with mark.tick > tick.
	i := sort.Search(len(r.marks), func(i int) bool { return r.marks[i].tick > tick })
	from := 0
	if i > 0 {
		from = r.marks[i-1].rows
	}
	return r.rows[from:len(r.rows):len(r.rows)]
}

// Contains reports whether the tuple (in column order) is present.
func (r *Relation) Contains(t []Value) bool {
	_, ok := r.seen[key(t)]
	return ok
}

// positions returns the tuple positions of the attributes in x (which must
// be a subset of the schema), in sorted-variable order.
func (r *Relation) positions(x bitset.Set) []int {
	if !x.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation %s: %v not in schema %v", r.Name, x, r.attrs))
	}
	pos := make([]int, 0, x.Card())
	for i, c := range r.cols {
		if x.Contains(c) {
			pos = append(pos, i)
		}
	}
	return pos
}

func subtuple(t []Value, pos []int) []Value {
	s := make([]Value, len(pos))
	for i, p := range pos {
		s[i] = t[p]
	}
	return s
}

// Project returns Π_X(r) for X ⊆ schema.
func (r *Relation) Project(x bitset.Set) *Relation {
	out := New(fmt.Sprintf("Π%v(%s)", x, r.Name), x)
	pos := r.positions(x)
	buf := make([]Value, len(pos))
	for _, t := range r.rows {
		for i, p := range pos {
			buf[i] = t[p]
		}
		out.Insert(buf)
	}
	return out
}

// index groups row indices by their key on the attribute set x. The result
// is memoized per attribute set and rebuilt only when the row count has
// changed since it was built; callers must treat it as read-only.
func (r *Relation) index(x bitset.Set) map[string][]int {
	r.memo.Lock()
	defer r.memo.Unlock()
	if m, ok := r.memo.indexes[x]; ok && m.rows == len(r.rows) {
		return m.idx
	}
	pos := r.positions(x)
	idx := make(map[string][]int, len(r.rows))
	buf := make([]Value, len(pos))
	for i, t := range r.rows {
		for j, p := range pos {
			buf[j] = t[p]
		}
		k := key(buf)
		idx[k] = append(idx[k], i)
	}
	if r.memo.indexes == nil {
		r.memo.indexes = map[bitset.Set]*memoIndex{}
	}
	r.memo.indexes[x] = &memoIndex{rows: len(r.rows), idx: idx}
	return idx
}

// keySet returns the distinct keys of Π_x(r) — the build side of a
// semijoin — memoized per attribute set and invalidated by row count.
func (r *Relation) keySet(x bitset.Set) map[string]struct{} {
	r.memo.Lock()
	defer r.memo.Unlock()
	if m, ok := r.memo.keys[x]; ok && m.rows == len(r.rows) {
		return m.keys
	}
	pos := r.positions(x)
	keys := make(map[string]struct{}, len(r.rows))
	buf := make([]Value, len(pos))
	for _, t := range r.rows {
		for j, p := range pos {
			buf[j] = t[p]
		}
		keys[key(buf)] = struct{}{}
	}
	if r.memo.keys == nil {
		r.memo.keys = map[bitset.Set]*memoKeys{}
	}
	r.memo.keys[x] = &memoKeys{rows: len(r.rows), keys: keys}
	return keys
}

// Join returns the natural join r ⋈ s.
func (r *Relation) Join(s *Relation) *Relation {
	common := r.attrs.Intersect(s.attrs)
	out := New(fmt.Sprintf("(%s⋈%s)", r.Name, s.Name), r.attrs.Union(s.attrs))
	// Build on the smaller side.
	build, probe := s, r
	if r.Size() < s.Size() {
		build, probe = r, s
	}
	idx := build.index(common)
	probePos := probe.positions(common)
	// Output tuple layout: union schema, sorted ids; map positions.
	outCols := out.cols
	fromProbe := make([]int, len(outCols))
	fromBuild := make([]int, len(outCols))
	for i, c := range outCols {
		fromProbe[i], fromBuild[i] = -1, -1
		for j, pc := range probe.cols {
			if pc == c {
				fromProbe[i] = j
			}
		}
		for j, bc := range build.cols {
			if bc == c {
				fromBuild[i] = j
			}
		}
	}
	buf := make([]Value, len(probePos))
	outBuf := make([]Value, len(outCols))
	for _, pt := range probe.rows {
		for j, p := range probePos {
			buf[j] = pt[p]
		}
		for _, bi := range idx[key(buf)] {
			bt := build.rows[bi]
			for i := range outCols {
				if fromProbe[i] >= 0 {
					outBuf[i] = pt[fromProbe[i]]
				} else {
					outBuf[i] = bt[fromBuild[i]]
				}
			}
			out.Insert(outBuf)
		}
	}
	return out
}

// Semijoin returns r ⋉ s: tuples of r matching some tuple of s on the
// common attributes. The key set over s is memoized (see keySet), so
// reducing many relations against one shared side — the ModeFull semijoin
// loop, incremental-maintenance rounds — hashes s once, not once per call.
func (r *Relation) Semijoin(s *Relation) *Relation {
	common := r.attrs.Intersect(s.attrs)
	sKeys := s.keySet(common)
	rPos := r.positions(common)
	out := New(fmt.Sprintf("(%s⋉%s)", r.Name, s.Name), r.attrs)
	for _, t := range r.rows {
		if _, ok := sKeys[key(subtuple(t, rPos))]; ok {
			out.Insert(t)
		}
	}
	return out
}

// Union returns r ∪ s; both must share the schema.
func (r *Relation) Union(s *Relation) *Relation {
	if r.attrs != s.attrs {
		panic(fmt.Sprintf("union schema mismatch: %v vs %v", r.attrs, s.attrs))
	}
	out := New(fmt.Sprintf("(%s∪%s)", r.Name, s.Name), r.attrs)
	for _, t := range r.rows {
		out.Insert(t)
	}
	for _, t := range s.rows {
		out.Insert(t)
	}
	return out
}

// Partition hash-partitions r into k buckets by the FNV-1a hash of each
// tuple's projection onto `on` (which must be a subset of the schema).
// The split is deterministic — a fixed function of the tuple values, never
// of insertion order or capacity — so two relations partitioned with the
// same k and the same shared attributes are co-partitioned: rows agreeing
// on `on` land in the same bucket index. Bucket relations are memoized per
// (k, on) and invalidated by row count; callers must treat them as
// read-only.
func (r *Relation) Partition(k int, on bitset.Set) []*Relation {
	if k <= 1 {
		return []*Relation{r}
	}
	mk := partMemoKey{k: k, on: on}
	r.memo.Lock()
	defer r.memo.Unlock()
	if m, ok := r.memo.parts[mk]; ok && m.rows == len(r.rows) {
		return m.parts
	}
	pos := r.positions(on)
	parts := make([]*Relation, k)
	for j := range parts {
		parts[j] = New(fmt.Sprintf("%s[p%d/%d]", r.Name, j, k), r.attrs)
	}
	for _, t := range r.rows {
		parts[hashBucket(t, pos, k)].Insert(t)
	}
	if r.memo.parts == nil {
		r.memo.parts = map[partMemoKey]*memoParts{}
	}
	r.memo.parts[mk] = &memoParts{rows: len(r.rows), parts: parts}
	return parts
}

// hashBucket maps a tuple's projection onto pos to a bucket in [0, k).
func hashBucket(t []Value, pos []int, k int) int {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range pos {
		binary.LittleEndian.PutUint64(b[:], uint64(t[p]))
		h.Write(b[:])
	}
	return int(h.Sum64() % uint64(k))
}

// Degree returns deg_r(Y|X) = max over X-tuples t of |Π_Y(σ_{X=t}(r))|,
// per Definition 2.10, with X ⊆ Y ⊆ schema. Degree(Y, ∅) = |Π_Y(r)|.
func (r *Relation) Degree(y, x bitset.Set) int {
	if !x.SubsetOf(y) || !y.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation %s: bad degree query Y=%v X=%v schema=%v", r.Name, y, x, r.attrs))
	}
	xPos := r.positions(x)
	yPos := r.positions(y)
	groups := map[string]map[string]struct{}{}
	for _, t := range r.rows {
		xk := key(subtuple(t, xPos))
		g, ok := groups[xk]
		if !ok {
			g = map[string]struct{}{}
			groups[xk] = g
		}
		g[key(subtuple(t, yPos))] = struct{}{}
	}
	best := 0
	for _, g := range groups {
		if len(g) > best {
			best = len(g)
		}
	}
	return best
}

// PartitionByDegree implements Lemma 6.1: it splits Π_Y(r) into at most
// 2·log₂|Π_Y(r)|+2 buckets such that in bucket j,
// |Π_X(bucket)| · max-degree(Y|X within bucket) ≤ |Π_Y(r)|.
// Bucket j collects X-tuples whose degree lies in [2^j, 2^{j+1}), halved
// again by X-value so that the product bound holds.
func (r *Relation) PartitionByDegree(y, x bitset.Set) []*Relation {
	t := r.Project(y)
	xPos := t.positions(x)
	// Group rows of t by X-value.
	groups := map[string][]int{}
	var orderKeys []string
	for i, row := range t.rows {
		k := key(subtuple(row, xPos))
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], i)
	}
	// log-degree bucket of each group.
	buckets := map[int][][]int{}
	for _, k := range orderKeys {
		g := groups[k]
		// Bucket j holds X-values whose degree lies in [2^j, 2^{j+1}).
		j := 0
		for (1 << uint(j+1)) <= len(g) {
			j++
		}
		buckets[j] = append(buckets[j], g)
	}
	var out []*Relation
	var js []int
	for j := range buckets {
		js = append(js, j)
	}
	sort.Ints(js)
	for _, j := range js {
		gs := buckets[j]
		// Split the groups of this bucket into two halves by X-value count
		// so each half has ≤ ⌈|groups|/2⌉ distinct X-values.
		half := (len(gs) + 1) / 2
		for part := 0; part < 2; part++ {
			lo, hi := 0, half
			if part == 1 {
				lo, hi = half, len(gs)
			}
			if lo >= hi {
				continue
			}
			sub := New(fmt.Sprintf("%s[deg2^%d.%d]", r.Name, j, part), y)
			for _, g := range gs[lo:hi] {
				for _, ri := range g {
					sub.Insert(t.rows[ri])
				}
			}
			out = append(out, sub)
		}
	}
	return out
}

// Clone returns a deep copy with a new name.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.attrs)
	for _, t := range r.rows {
		out.Insert(t)
	}
	return out
}

// SortedRows returns the tuples sorted lexicographically (for deterministic
// comparison in tests and reports).
func (r *Relation) SortedRows() [][]Value {
	out := make([][]Value, len(r.rows))
	copy(out, r.rows)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Equal reports whether two relations hold the same tuple set over the same
// schema.
func (r *Relation) Equal(s *Relation) bool {
	if r.attrs != s.attrs || r.Size() != s.Size() {
		return false
	}
	for _, t := range s.rows {
		if !r.Contains(t) {
			return false
		}
	}
	return true
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s(%v)[%d tuples]", r.Name, r.attrs, r.Size())
}
