// Package relation implements the in-memory relational substrate used by
// PANDA and the baseline evaluators: set-semantics relations over integer
// domains with natural join, projection, semijoin, union, degree statistics
// (Definition 2.10) and the heavy/light degree-bucket partitioning of
// Lemma 6.1.
//
// Storage is interned and columnar: every Value is mapped once to a dense
// uint32 id (see Interner) and a relation holds one []uint32 vector per
// attribute, so equality, dedup and index builds operate on machine words
// and iteration walks contiguous memory. Values are decoded back only at
// the read boundary (Cursor, All, Rows, SortedRows).
package relation

import (
	"fmt"
	"sort"
	"sync"

	"panda/internal/bitset"
)

// Value is a single attribute value.
type Value = int64

// Relation is a finite relation with set semantics. Attribute order inside
// tuples follows the sorted order of the schema's variable indices.
//
// Writes (Insert and friends) require external synchronization, as before;
// concurrent reads — including the internally-memoized index builds — are
// safe.
type Relation struct {
	Name  string
	attrs bitset.Set
	cols  []int // sorted variable ids; tuple positions follow this order
	in    *Interner

	data  [][]uint32 // one id vector per column, each of length nrows
	nrows int
	// seen dedups rows by the FNV hash of their id-tuple; each bucket holds
	// candidate row indices verified by column comparison. Built lazily:
	// operators whose output is unique by construction (Semijoin, Partition,
	// Clone, degree buckets, snapshots) skip it until the first membership
	// probe or dedup insert.
	seen map[uint64][]int32

	marks []tickMark
	// mut counts accepted inserts; derived-structure memos are keyed by it
	// (a strictly monotone per-relation tick, never fooled by equal row
	// counts the way a cardinality check could be).
	mut uint64

	// partHint is the partition count recorded for this relation (catalog
	// entries carry it so the executor can pick a data-parallel fan-out
	// without an explicit per-query option); 0 means unset.
	partHint int

	// scratch is reused by Insert to intern into; writes are externally
	// synchronized so a single buffer suffices.
	scratch []uint32

	// memo caches derived read-only structures — hash indexes (the build
	// side of Join and Semijoin) and hash partitions — keyed by attribute
	// set and invalidated by the mutation tick, so a relation that is
	// joined, semijoin-reduced or partitioned repeatedly (standing-query
	// rounds, per-partition rule executions) hashes its rows once instead
	// of once per call. Guarded by its own mutex: executions share instance
	// relations across worker goroutines.
	memo struct {
		sync.Mutex
		indexes map[bitset.Set]*memoIndex
		parts   map[partMemoKey]*memoParts
	}
}

// memoIndex caches index(x) at a given mutation tick.
type memoIndex struct {
	mut uint64
	idx map[uint64][]int32
}

// partMemoKey identifies a cached hash partitioning.
type partMemoKey struct {
	k  int
	on bitset.Set
}

// memoParts caches Partition(k, on) at a given mutation tick.
type memoParts struct {
	mut   uint64
	parts []*Relation
}

// tickMark records that the relation held exactly `rows` tuples when the
// catalog tick `tick` was stamped. Because row storage is append-only, the
// prefix [:rows] is immutable and RowsSince can answer "what arrived after
// tick T" by decoding the suffix.
type tickMark struct {
	tick uint64
	rows int
}

// FNV-1a constants; rows hash by folding 32-bit ids through the FNV-1a
// recurrence (word-at-a-time — collisions are resolved by id comparison).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// New returns an empty relation with the given schema, decoding through the
// process-wide intern table.
func New(name string, attrs bitset.Set) *Relation {
	cols := attrs.Vars()
	return &Relation{
		Name:  name,
		attrs: attrs,
		cols:  cols,
		in:    Global,
		data:  make([][]uint32, len(cols)),
	}
}

// Attrs returns the relation's schema.
func (r *Relation) Attrs() bitset.Set { return r.attrs }

// Cols returns the tuple layout: variable ids in tuple-position order.
func (r *Relation) Cols() []int { return r.cols }

// Size returns the number of distinct tuples.
func (r *Relation) Size() int { return r.nrows }

// Interner returns the intern table this relation decodes through.
func (r *Relation) Interner() *Interner { return r.in }

// Column returns the id vector of tuple position i; callers must treat it
// as read-only. Ids decode through Interner().ValueOf.
func (r *Relation) Column(i int) []uint32 { return r.data[i][:r.nrows:r.nrows] }

// SetPartitionHint records the partition count for this relation (0 clears
// it). The executor uses the largest hint across a query's relations as the
// data-parallel fan-out when no explicit partition option is given.
func (r *Relation) SetPartitionHint(k int) {
	if k < 0 {
		k = 0
	}
	r.partHint = k
}

// PartitionHint returns the recorded partition count (0 when unset).
func (r *Relation) PartitionHint() int { return r.partHint }

// hashIDs folds an id-tuple through FNV-1a.
func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return h
}

// rowHash hashes row i over all columns (the dedup key).
func (r *Relation) rowHash(i int) uint64 {
	h := uint64(fnvOffset64)
	for c := range r.data {
		h ^= uint64(r.data[c][i])
		h *= fnvPrime64
	}
	return h
}

// hashRowAt hashes row i over the given tuple positions.
func (r *Relation) hashRowAt(i int, pos []int) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range pos {
		h ^= uint64(r.data[p][i])
		h *= fnvPrime64
	}
	return h
}

// rowMatchIDs reports whether row i equals the id-tuple.
func (r *Relation) rowMatchIDs(i int, ids []uint32) bool {
	for c := range r.data {
		if r.data[c][i] != ids[c] {
			return false
		}
	}
	return true
}

// rowsMatchAt reports whether rows i and j agree on the given positions.
func (r *Relation) rowsMatchAt(i, j int, pos []int) bool {
	for _, p := range pos {
		if r.data[p][i] != r.data[p][j] {
			return false
		}
	}
	return true
}

// rowIDs copies row i's ids into buf.
func (r *Relation) rowIDs(i int, buf []uint32) []uint32 {
	buf = buf[:len(r.data)]
	for c := range r.data {
		buf[c] = r.data[c][i]
	}
	return buf
}

// decodeInto decodes row i into buf (which must have the relation's arity).
func (r *Relation) decodeInto(buf []Value, i int) {
	for c := range r.data {
		buf[c] = r.in.ValueOf(r.data[c][i])
	}
}

// ensureSeen builds the dedup table from the stored rows if it is absent.
func (r *Relation) ensureSeen() {
	if r.seen != nil {
		return
	}
	r.seen = make(map[uint64][]int32, r.nrows+1)
	for i := 0; i < r.nrows; i++ {
		h := r.rowHash(i)
		r.seen[h] = append(r.seen[h], int32(i))
	}
}

// appendIDs appends a row unconditionally, bumping the mutation tick.
func (r *Relation) appendIDs(ids []uint32) {
	for c := range r.data {
		r.data[c] = append(r.data[c], ids[c])
	}
	r.nrows++
	r.mut++
}

// appendUnique appends a row the caller guarantees is not present.
func (r *Relation) appendUnique(ids []uint32) {
	if r.seen != nil {
		h := hashIDs(ids)
		r.seen[h] = append(r.seen[h], int32(r.nrows))
	}
	r.appendIDs(ids)
}

// insertIDs appends a row unless present; reports whether it was new.
func (r *Relation) insertIDs(ids []uint32) bool {
	r.ensureSeen()
	h := hashIDs(ids)
	for _, i := range r.seen[h] {
		if r.rowMatchIDs(int(i), ids) {
			return false
		}
	}
	r.seen[h] = append(r.seen[h], int32(r.nrows))
	r.appendIDs(ids)
	return true
}

// containsIDs reports whether the id-tuple is present.
func (r *Relation) containsIDs(ids []uint32) bool {
	r.ensureSeen()
	for _, i := range r.seen[hashIDs(ids)] {
		if r.rowMatchIDs(int(i), ids) {
			return true
		}
	}
	return false
}

// Insert adds a tuple given in column order (sorted variable ids);
// duplicates are ignored. The slice is copied.
func (r *Relation) Insert(t []Value) {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.cols)))
	}
	if cap(r.scratch) < len(t) {
		r.scratch = make([]uint32, len(t))
	}
	ids := r.scratch[:len(t)]
	for i, v := range t {
		ids[i] = r.in.Intern(v)
	}
	r.insertIDs(ids)
}

// InsertIDs adds a row of already-interned ids (from this relation's intern
// table) in column order; duplicates are ignored. The slice is copied.
func (r *Relation) InsertIDs(ids []uint32) {
	if len(ids) != len(r.cols) {
		panic(fmt.Sprintf("relation %s: tuple arity %d, want %d", r.Name, len(ids), len(r.cols)))
	}
	r.insertIDs(ids)
}

// InsertMap adds a tuple given as a variable→value assignment covering the
// schema.
func (r *Relation) InsertMap(m map[int]Value) {
	t := make([]Value, len(r.cols))
	for i, c := range r.cols {
		v, ok := m[c]
		if !ok {
			panic(fmt.Sprintf("relation %s: missing attribute %d", r.Name, c))
		}
		t[i] = v
	}
	r.Insert(t)
}

// InsertAll merges every row of s (same schema, same intern table) into r.
func (r *Relation) InsertAll(s *Relation) {
	if r.attrs != s.attrs {
		panic(fmt.Sprintf("InsertAll schema mismatch: %v vs %v", r.attrs, s.attrs))
	}
	sameInterner(r, s)
	buf := make([]uint32, len(r.cols))
	for i := 0; i < s.nrows; i++ {
		r.insertIDs(s.rowIDs(i, buf))
	}
}

// Stamp records that the relation's current contents correspond to the
// monotone catalog tick. Ticks must be stamped in increasing order. A
// re-stamp at an unchanged row count is a no-op: RowsSince for any tick at
// or past the existing mark already answers "nothing new", and keeping the
// older tick keeps Tick() stable across content-preserving mutations
// (duplicate-only inserts), so statement memoization survives them.
func (r *Relation) Stamp(tick uint64) {
	if n := len(r.marks); n > 0 && r.marks[n-1].rows == r.nrows {
		return
	}
	r.marks = append(r.marks, tickMark{tick: tick, rows: r.nrows})
}

// Tick returns the latest stamped catalog tick (0 if never stamped).
func (r *Relation) Tick() uint64 {
	if n := len(r.marks); n > 0 {
		return r.marks[n-1].tick
	}
	return 0
}

// RowsSince returns the tuples inserted strictly after catalog tick `tick`
// was stamped: everything past the newest mark with mark.tick ≤ tick, or
// all rows when no such mark exists. The result is a freshly decoded copy —
// it stays valid, and stops growing, even as the relation keeps growing.
func (r *Relation) RowsSince(tick uint64) [][]Value {
	// Binary search: first mark with mark.tick > tick.
	i := sort.Search(len(r.marks), func(i int) bool { return r.marks[i].tick > tick })
	from := 0
	if i > 0 {
		from = r.marks[i-1].rows
	}
	return r.decodeRange(from, r.nrows)
}

// Contains reports whether the tuple (in column order) is present.
func (r *Relation) Contains(t []Value) bool {
	if len(t) != len(r.cols) {
		return false
	}
	ids := make([]uint32, len(t))
	for i, v := range t {
		id, ok := r.in.Lookup(v)
		if !ok {
			return false // value never interned ⇒ in no relation
		}
		ids[i] = id
	}
	return r.containsIDs(ids)
}

// positions returns the tuple positions of the attributes in x (which must
// be a subset of the schema), in sorted-variable order.
func (r *Relation) positions(x bitset.Set) []int {
	if !x.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation %s: %v not in schema %v", r.Name, x, r.attrs))
	}
	pos := make([]int, 0, x.Card())
	for i, c := range r.cols {
		if x.Contains(c) {
			pos = append(pos, i)
		}
	}
	return pos
}

// Project returns Π_X(r) for X ⊆ schema.
func (r *Relation) Project(x bitset.Set) *Relation {
	out := New(fmt.Sprintf("Π%v(%s)", x, r.Name), x)
	pos := r.positions(x)
	out.ensureSeen()
	buf := make([]uint32, len(pos))
	for i := 0; i < r.nrows; i++ {
		for j, p := range pos {
			buf[j] = r.data[p][i]
		}
		out.insertIDs(buf)
	}
	return out
}

// index groups row indices by the hash of their id-tuple on the attribute
// set x (buckets may mix hash-colliding keys; probes verify by id
// comparison). The result is memoized per attribute set against the
// mutation tick; callers must treat it as read-only.
func (r *Relation) index(x bitset.Set) map[uint64][]int32 {
	r.memo.Lock()
	defer r.memo.Unlock()
	if m, ok := r.memo.indexes[x]; ok && m.mut == r.mut {
		return m.idx
	}
	pos := r.positions(x)
	idx := make(map[uint64][]int32, r.nrows)
	for i := 0; i < r.nrows; i++ {
		h := r.hashRowAt(i, pos)
		idx[h] = append(idx[h], int32(i))
	}
	if r.memo.indexes == nil {
		r.memo.indexes = map[bitset.Set]*memoIndex{}
	}
	r.memo.indexes[x] = &memoIndex{mut: r.mut, idx: idx}
	return idx
}

// matchOn reports whether r's row i and s's row j agree position-wise on
// rPos/sPos (same attribute order, shared intern table assumed).
func (r *Relation) matchOn(i int, rPos []int, s *Relation, j int, sPos []int) bool {
	for t := range rPos {
		if r.data[rPos[t]][i] != s.data[sPos[t]][j] {
			return false
		}
	}
	return true
}

// Join returns the natural join r ⋈ s.
func (r *Relation) Join(s *Relation) *Relation {
	sameInterner(r, s)
	common := r.attrs.Intersect(s.attrs)
	out := New(fmt.Sprintf("(%s⋈%s)", r.Name, s.Name), r.attrs.Union(s.attrs))
	// Build on the smaller side.
	build, probe := s, r
	if r.Size() < s.Size() {
		build, probe = r, s
	}
	idx := build.index(common)
	probePos := probe.positions(common)
	buildPos := build.positions(common)
	// Output tuple layout: union schema, sorted ids; map positions.
	outCols := out.cols
	fromProbe := make([]int, len(outCols))
	fromBuild := make([]int, len(outCols))
	for i, c := range outCols {
		fromProbe[i], fromBuild[i] = -1, -1
		for j, pc := range probe.cols {
			if pc == c {
				fromProbe[i] = j
			}
		}
		for j, bc := range build.cols {
			if bc == c {
				fromBuild[i] = j
			}
		}
	}
	out.ensureSeen()
	outBuf := make([]uint32, len(outCols))
	for i := 0; i < probe.nrows; i++ {
		h := probe.hashRowAt(i, probePos)
		for _, bi := range idx[h] {
			if !build.matchOn(int(bi), buildPos, probe, i, probePos) {
				continue
			}
			for o := range outCols {
				if fromProbe[o] >= 0 {
					outBuf[o] = probe.data[fromProbe[o]][i]
				} else {
					outBuf[o] = build.data[fromBuild[o]][int(bi)]
				}
			}
			out.insertIDs(outBuf)
		}
	}
	return out
}

// Semijoin returns r ⋉ s: tuples of r matching some tuple of s on the
// common attributes. The index over s is memoized (see index), so reducing
// many relations against one shared side — the ModeFull semijoin loop,
// incremental-maintenance rounds — hashes s once, not once per call.
func (r *Relation) Semijoin(s *Relation) *Relation {
	sameInterner(r, s)
	common := r.attrs.Intersect(s.attrs)
	idx := s.index(common)
	rPos := r.positions(common)
	sPos := s.positions(common)
	out := New(fmt.Sprintf("(%s⋉%s)", r.Name, s.Name), r.attrs)
	buf := make([]uint32, len(r.cols))
	for i := 0; i < r.nrows; i++ {
		h := r.hashRowAt(i, rPos)
		for _, si := range idx[h] {
			if r.matchOn(i, rPos, s, int(si), sPos) {
				out.appendUnique(r.rowIDs(i, buf))
				break
			}
		}
	}
	return out
}

// Union returns r ∪ s; both must share the schema.
func (r *Relation) Union(s *Relation) *Relation {
	if r.attrs != s.attrs {
		panic(fmt.Sprintf("union schema mismatch: %v vs %v", r.attrs, s.attrs))
	}
	sameInterner(r, s)
	out := New(fmt.Sprintf("(%s∪%s)", r.Name, s.Name), r.attrs)
	out.ensureSeen()
	buf := make([]uint32, len(r.cols))
	for i := 0; i < r.nrows; i++ {
		out.appendUnique(r.rowIDs(i, buf))
	}
	for i := 0; i < s.nrows; i++ {
		out.insertIDs(s.rowIDs(i, buf))
	}
	return out
}

// Partition hash-partitions r into k buckets by the FNV-1a hash of each
// tuple's projection onto `on` (which must be a subset of the schema).
// The split is deterministic — a fixed function of the tuple values, never
// of insertion order, id assignment or capacity — so two relations
// partitioned with the same k and the same shared attributes are
// co-partitioned: rows agreeing on `on` land in the same bucket index.
// Bucket relations are memoized per (k, on) against the mutation tick;
// callers must treat them as read-only.
func (r *Relation) Partition(k int, on bitset.Set) []*Relation {
	if k <= 1 {
		return []*Relation{r}
	}
	mk := partMemoKey{k: k, on: on}
	r.memo.Lock()
	defer r.memo.Unlock()
	if m, ok := r.memo.parts[mk]; ok && m.mut == r.mut {
		return m.parts
	}
	pos := r.positions(on)
	parts := make([]*Relation, k)
	for j := range parts {
		parts[j] = New(fmt.Sprintf("%s[p%d/%d]", r.Name, j, k), r.attrs)
	}
	buf := make([]uint32, len(r.cols))
	for i := 0; i < r.nrows; i++ {
		parts[r.bucketOf(i, pos, k)].appendUnique(r.rowIDs(i, buf))
	}
	if r.memo.parts == nil {
		r.memo.parts = map[partMemoKey]*memoParts{}
	}
	r.memo.parts[mk] = &memoParts{mut: r.mut, parts: parts}
	return parts
}

// bucketOf maps row i's projection onto pos to a bucket in [0, k), hashing
// the decoded values byte-wise with FNV-1a (little-endian), bit-identical to
// the pre-columnar layout so partition contents are stable across releases.
func (r *Relation) bucketOf(i int, pos []int, k int) int {
	h := uint64(fnvOffset64)
	for _, p := range pos {
		v := uint64(r.in.ValueOf(r.data[p][i]))
		for s := uint(0); s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= fnvPrime64
		}
	}
	return int(h % uint64(k))
}

// groupRows partitions the row indices into groups agreeing on pos, in
// first-appearance order.
func (r *Relation) groupRows(pos []int) [][]int32 {
	var out [][]int32
	m := make(map[uint64][]int32, r.nrows)
	for i := 0; i < r.nrows; i++ {
		h := r.hashRowAt(i, pos)
		gi := -1
		for _, g := range m[h] {
			if r.rowsMatchAt(int(out[g][0]), i, pos) {
				gi = int(g)
				break
			}
		}
		if gi < 0 {
			gi = len(out)
			out = append(out, nil)
			m[h] = append(m[h], int32(gi))
		}
		out[gi] = append(out[gi], int32(i))
	}
	return out
}

// distinctAt counts the distinct projections of the given rows onto pos.
func (r *Relation) distinctAt(rows []int32, pos []int) int {
	m := make(map[uint64][]int32, len(rows))
	n := 0
	for _, i := range rows {
		h := r.hashRowAt(int(i), pos)
		dup := false
		for _, j := range m[h] {
			if r.rowsMatchAt(int(j), int(i), pos) {
				dup = true
				break
			}
		}
		if !dup {
			m[h] = append(m[h], i)
			n++
		}
	}
	return n
}

// Degree returns deg_r(Y|X) = max over X-tuples t of |Π_Y(σ_{X=t}(r))|,
// per Definition 2.10, with X ⊆ Y ⊆ schema. Degree(Y, ∅) = |Π_Y(r)|.
func (r *Relation) Degree(y, x bitset.Set) int {
	if !x.SubsetOf(y) || !y.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation %s: bad degree query Y=%v X=%v schema=%v", r.Name, y, x, r.attrs))
	}
	xPos := r.positions(x)
	yPos := r.positions(y)
	best := 0
	for _, g := range r.groupRows(xPos) {
		if d := r.distinctAt(g, yPos); d > best {
			best = d
		}
	}
	return best
}

// PartitionByDegree implements Lemma 6.1: it splits Π_Y(r) into at most
// 2·log₂|Π_Y(r)|+2 buckets such that in bucket j,
// |Π_X(bucket)| · max-degree(Y|X within bucket) ≤ |Π_Y(r)|.
// Bucket j collects X-tuples whose degree lies in [2^j, 2^{j+1}), halved
// again by X-value so that the product bound holds.
func (r *Relation) PartitionByDegree(y, x bitset.Set) []*Relation {
	t := r.Project(y)
	xPos := t.positions(x)
	// Groups of t's rows by X-value, in first-appearance order.
	groups := t.groupRows(xPos)
	// log-degree bucket of each group.
	buckets := map[int][][]int32{}
	for _, g := range groups {
		// Bucket j holds X-values whose degree lies in [2^j, 2^{j+1}).
		j := 0
		for (1 << uint(j+1)) <= len(g) {
			j++
		}
		buckets[j] = append(buckets[j], g)
	}
	var out []*Relation
	var js []int
	for j := range buckets {
		js = append(js, j)
	}
	sort.Ints(js)
	buf := make([]uint32, len(t.cols))
	for _, j := range js {
		gs := buckets[j]
		// Split the groups of this bucket into two halves by X-value count
		// so each half has ≤ ⌈|groups|/2⌉ distinct X-values.
		half := (len(gs) + 1) / 2
		for part := 0; part < 2; part++ {
			lo, hi := 0, half
			if part == 1 {
				lo, hi = half, len(gs)
			}
			if lo >= hi {
				continue
			}
			sub := New(fmt.Sprintf("%s[deg2^%d.%d]", r.Name, j, part), y)
			for _, g := range gs[lo:hi] {
				for _, ri := range g {
					sub.appendUnique(t.rowIDs(int(ri), buf))
				}
			}
			out = append(out, sub)
		}
	}
	return out
}

// Clone returns a deep copy with a new name.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.attrs)
	buf := make([]uint32, len(r.cols))
	for i := 0; i < r.nrows; i++ {
		out.appendUnique(r.rowIDs(i, buf))
	}
	return out
}

// Snapshot returns a read-mostly copy sharing r's column storage: O(arity)
// pointer copies instead of O(rows) re-hashing, which is what makes binding
// a catalog relation into a query instance cheap. Columns are
// capacity-capped, so a later append to either relation reallocates rather
// than aliasing; the snapshot rebuilds its dedup table lazily on first
// mutation or membership probe. Ticks, marks and hints are not carried
// over.
func (r *Relation) Snapshot(name string) *Relation {
	out := &Relation{
		Name:  name,
		attrs: r.attrs,
		cols:  r.cols,
		in:    r.in,
		data:  make([][]uint32, len(r.data)),
		nrows: r.nrows,
	}
	for c := range r.data {
		out.data[c] = r.data[c][:r.nrows:r.nrows]
	}
	return out
}

// SnapshotAs is Snapshot with the columns reinterpreted under a new schema
// of equal arity: position k of the new schema's sorted variables reads r's
// column k. This is how query binding renames a stored catalog relation
// ({0..arity-1}) onto an atom's variable set without touching a row.
func (r *Relation) SnapshotAs(name string, attrs bitset.Set) *Relation {
	if attrs.Card() != len(r.cols) {
		panic(fmt.Sprintf("relation %s: SnapshotAs arity %d, want %d", r.Name, attrs.Card(), len(r.cols)))
	}
	out := r.Snapshot(name)
	out.attrs = attrs
	out.cols = attrs.Vars()
	return out
}

// Equal reports whether two relations hold the same tuple set over the same
// schema.
func (r *Relation) Equal(s *Relation) bool {
	if r.attrs != s.attrs || r.Size() != s.Size() {
		return false
	}
	sameInterner(r, s)
	buf := make([]uint32, len(r.cols))
	for i := 0; i < s.nrows; i++ {
		if !r.containsIDs(s.rowIDs(i, buf)) {
			return false
		}
	}
	return true
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s(%v)[%d tuples]", r.Name, r.attrs, r.Size())
}
