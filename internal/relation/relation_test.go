package relation

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
)

func pairs(name string, a, b int, vals [][2]Value) *Relation {
	r := New(name, bitset.Of(a, b))
	for _, v := range vals {
		if a < b {
			r.Insert([]Value{v[0], v[1]})
		} else {
			r.Insert([]Value{v[1], v[0]})
		}
	}
	return r
}

func TestInsertDedup(t *testing.T) {
	r := New("R", bitset.Of(0, 1))
	r.Insert([]Value{1, 2})
	r.Insert([]Value{1, 2})
	r.Insert([]Value{2, 1})
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (set semantics)", r.Size())
	}
	if !r.Contains([]Value{1, 2}) || r.Contains([]Value{3, 3}) {
		t.Fatal("Contains wrong")
	}
}

func TestInsertMap(t *testing.T) {
	r := New("R", bitset.Of(2, 5))
	r.InsertMap(map[int]Value{5: 7, 2: 3})
	if !r.Contains([]Value{3, 7}) {
		t.Fatal("InsertMap stored wrong layout (cols must be sorted)")
	}
}

func TestProject(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {1, 20}, {2, 10}})
	p := r.Project(bitset.Of(0))
	if p.Size() != 2 || !p.Contains([]Value{1}) || !p.Contains([]Value{2}) {
		t.Fatalf("projection wrong: %v", p.SortedRows())
	}
	if p.Attrs() != bitset.Of(0) {
		t.Fatalf("projection schema %v", p.Attrs())
	}
	// Projection onto the full schema is identity.
	if !r.Project(r.Attrs()).Equal(r) {
		t.Fatal("full projection should equal r")
	}
}

func TestJoinBasic(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}, {2, 3}})
	s := pairs("S", 1, 2, [][2]Value{{2, 5}, {2, 6}, {9, 9}})
	j := r.Join(s)
	if j.Attrs() != bitset.Of(0, 1, 2) {
		t.Fatalf("join schema %v", j.Attrs())
	}
	want := [][]Value{{1, 2, 5}, {1, 2, 6}}
	if j.Size() != 2 {
		t.Fatalf("join = %v", j.SortedRows())
	}
	for _, w := range want {
		if !j.Contains(w) {
			t.Fatalf("missing %v in %v", w, j.SortedRows())
		}
	}
}

func TestJoinDisjointSchemasIsCrossProduct(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}, {3, 4}})
	s := New("S", bitset.Of(2))
	s.Insert([]Value{7})
	s.Insert([]Value{8})
	j := r.Join(s)
	if j.Size() != 4 {
		t.Fatalf("cross product size %d, want 4", j.Size())
	}
}

func TestJoinSameSchemaIsIntersection(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}, {3, 4}})
	s := pairs("S", 0, 1, [][2]Value{{1, 2}, {5, 6}})
	j := r.Join(s)
	if j.Size() != 1 || !j.Contains([]Value{1, 2}) {
		t.Fatalf("intersection = %v", j.SortedRows())
	}
}

func TestSemijoin(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}, {2, 3}, {4, 5}})
	s := New("S", bitset.Of(1))
	s.Insert([]Value{2})
	s.Insert([]Value{5})
	out := r.Semijoin(s)
	if out.Size() != 2 || !out.Contains([]Value{1, 2}) || !out.Contains([]Value{4, 5}) {
		t.Fatalf("semijoin = %v", out.SortedRows())
	}
}

func TestUnion(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}})
	s := pairs("S", 0, 1, [][2]Value{{1, 2}, {3, 4}})
	u := r.Union(s)
	if u.Size() != 2 {
		t.Fatalf("union size %d", u.Size())
	}
}

func TestDegree(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 10}, {1, 20}, {1, 30}, {2, 10}})
	if d := r.Degree(bitset.Of(0, 1), bitset.Of(0)); d != 3 {
		t.Fatalf("deg(01|0) = %d, want 3", d)
	}
	if d := r.Degree(bitset.Of(0, 1), bitset.Set(0)); d != 4 {
		t.Fatalf("deg(01|∅) = %d, want 4 (= |R|)", d)
	}
	if d := r.Degree(bitset.Of(0), bitset.Set(0)); d != 2 {
		t.Fatalf("deg(0|∅) = %d, want 2", d)
	}
}

// TestPartitionByDegree checks Lemma 6.1: the buckets partition Π_Y(r) and
// in each bucket |Π_X| · deg(Y|X) stays within a small constant of |Π_Y(r)|.
func TestPartitionByDegree(t *testing.T) {
	r := New("R", bitset.Of(0, 1))
	// Skewed: value 1 has degree 16, others degree 1.
	for i := 0; i < 16; i++ {
		r.Insert([]Value{1, Value(100 + i)})
	}
	for i := 0; i < 10; i++ {
		r.Insert([]Value{Value(2 + i), 0})
	}
	y, x := bitset.Of(0, 1), bitset.Of(0)
	parts := r.PartitionByDegree(y, x)
	total := 0
	for _, p := range parts {
		total += p.Size()
		nx := p.Project(x).Size()
		dg := p.Degree(y, x)
		if nx*dg > 2*r.Size() {
			t.Fatalf("bucket %s: |Πx|=%d · deg=%d > 2·|R|=%d", p.Name, nx, dg, 2*r.Size())
		}
	}
	if total != r.Size() {
		t.Fatalf("buckets cover %d tuples, want %d", total, r.Size())
	}
	// Heavy value 1 and light values must land in different buckets.
	if len(parts) < 2 {
		t.Fatalf("expected ≥ 2 buckets, got %d", len(parts))
	}
}

func TestPartitionByDegreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r := New("R", bitset.Of(0, 1))
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			r.Insert([]Value{Value(rng.Intn(12)), Value(rng.Intn(40))})
		}
		y, x := bitset.Of(0, 1), bitset.Of(0)
		parts := r.PartitionByDegree(y, x)
		total := 0
		seen := map[string]bool{}
		for _, p := range parts {
			total += p.Size()
			for _, row := range p.Rows() {
				k := ""
				for _, v := range row {
					k += string(rune(v)) + ","
				}
				if seen[k] {
					t.Fatalf("tuple %v in two buckets", row)
				}
				seen[k] = true
			}
			nx := p.Project(x).Size()
			dg := p.Degree(y, x)
			if nx*dg > 2*r.Size() {
				t.Fatalf("trial %d: bucket violates Lemma 6.1 bound: %d·%d > 2·%d",
					trial, nx, dg, r.Size())
			}
		}
		if total != r.Size() {
			t.Fatalf("trial %d: buckets cover %d ≠ %d", trial, total, r.Size())
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	r := pairs("R", 0, 1, [][2]Value{{1, 2}, {3, 4}})
	c := r.Clone("C")
	if !r.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Insert([]Value{5, 6})
	if r.Equal(c) {
		t.Fatal("clone insert leaked into original")
	}
}

// TestJoinCommutative: r ⋈ s == s ⋈ r on random inputs.
func TestJoinCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r := New("R", bitset.Of(0, 1))
		s := New("S", bitset.Of(1, 2))
		for i := 0; i < 30; i++ {
			r.Insert([]Value{Value(rng.Intn(5)), Value(rng.Intn(5))})
			s.Insert([]Value{Value(rng.Intn(5)), Value(rng.Intn(5))})
		}
		if !r.Join(s).Equal(s.Join(r)) {
			t.Fatal("join not commutative")
		}
	}
}

// TestJoinAgainstNestedLoop validates the hash join against a brute-force
// nested-loop join on random instances.
func TestJoinAgainstNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		r := New("R", bitset.Of(0, 1, 2))
		s := New("S", bitset.Of(1, 2, 3))
		for i := 0; i < 40; i++ {
			r.Insert([]Value{Value(rng.Intn(4)), Value(rng.Intn(4)), Value(rng.Intn(4))})
			s.Insert([]Value{Value(rng.Intn(4)), Value(rng.Intn(4)), Value(rng.Intn(4))})
		}
		j := r.Join(s)
		want := New("W", bitset.Of(0, 1, 2, 3))
		for _, rt := range r.Rows() {
			for _, st := range s.Rows() {
				// r cols: 0,1,2; s cols: 1,2,3.
				if rt[1] == st[0] && rt[2] == st[1] {
					want.Insert([]Value{rt[0], rt[1], rt[2], st[2]})
				}
			}
		}
		if !j.Equal(want) {
			t.Fatalf("trial %d: hash join %d tuples, nested loop %d", trial, j.Size(), want.Size())
		}
	}
}

func TestSemijoinIsProjectionOfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		r := New("R", bitset.Of(0, 1))
		s := New("S", bitset.Of(1, 2))
		for i := 0; i < 25; i++ {
			r.Insert([]Value{Value(rng.Intn(4)), Value(rng.Intn(4))})
			s.Insert([]Value{Value(rng.Intn(4)), Value(rng.Intn(4))})
		}
		if !r.Semijoin(s).Equal(r.Join(s).Project(r.Attrs())) {
			t.Fatal("semijoin ≠ Π(join)")
		}
	}
}

func TestTickMarksAndRowsSince(t *testing.T) {
	r := New("R", bitset.Of(0, 1))
	if r.Tick() != 0 {
		t.Fatalf("fresh relation tick = %d, want 0", r.Tick())
	}
	if got := len(r.RowsSince(0)); got != 0 {
		t.Fatalf("RowsSince(0) on empty = %d rows", got)
	}
	r.Stamp(1) // creation stamp at zero rows
	r.Insert([]Value{1, 2})
	r.Insert([]Value{3, 4})
	r.Stamp(2)
	r.Insert([]Value{5, 6})
	r.Insert([]Value{5, 6}) // duplicate: set semantics, no new row
	r.Stamp(3)
	r.Stamp(4) // no new rows: a no-op, Tick stays at the last real mark
	if r.Tick() != 3 {
		t.Fatalf("tick = %d, want 3", r.Tick())
	}
	// Since tick 1: everything after the creation stamp.
	if got := len(r.RowsSince(1)); got != 3 {
		t.Fatalf("RowsSince(1) = %d rows, want 3", got)
	}
	// Since tick 2: only the third insert.
	d := r.RowsSince(2)
	if len(d) != 1 || d[0][0] != 5 || d[0][1] != 6 {
		t.Fatalf("RowsSince(2) = %v, want [[5 6]]", d)
	}
	// Since ticks 3 and 4 (merged mark): empty either way.
	if len(r.RowsSince(3)) != 0 || len(r.RowsSince(4)) != 0 {
		t.Fatal("RowsSince past the newest mark should be empty")
	}
	// A tick older than every mark returns all rows.
	if got := len(r.RowsSince(0)); got != 3 {
		t.Fatalf("RowsSince(0) = %d rows, want 3", got)
	}
	// The delta subslice must not observe later growth (capped capacity).
	d = r.RowsSince(2)
	r.Insert([]Value{7, 8})
	r.Stamp(5)
	if len(d) != 1 {
		t.Fatalf("delta subslice grew to %d rows", len(d))
	}
	if got := len(r.RowsSince(4)); got != 1 {
		t.Fatalf("RowsSince(4) = %d rows, want 1", got)
	}
}
