package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"panda"
	"panda/internal/server"
)

// BenchmarkRouterProxyOverhead prices the routing tier: the same cache-hit
// /v1/query against a pandad directly vs through pandarouter (shape memo
// warm, so the router path adds one shape-cache lookup, one rendezvous
// ranking, and one proxied HTTP hop — no planner round-trips).
func BenchmarkRouterProxyOverhead(b *testing.B) {
	newServer := func() (*httptest.Server, func()) {
		db := panda.Open(panda.WithPlannerCapacity(64))
		q := panda.TriangleQuery()
		ins := panda.RandomInstance(11, &q.Schema, 40, 10)
		for i, a := range q.Schema.Atoms {
			if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil {
				b.Fatal(err)
			}
			if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
				b.Fatal(err)
			}
		}
		ts := httptest.NewServer(server.New(server.Config{DB: db}))
		return ts, func() { ts.Close(); db.Close() }
	}
	body := fmt.Sprintf(`{"query":%q}`, triangleSrc)
	drive := func(b *testing.B, url string) {
		b.Helper()
		client := &http.Client{}
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(url+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("query: %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}

	b.Run("direct", func(b *testing.B) {
		ts, done := newServer()
		defer done()
		drive(b, ts.URL) // first iteration plans; the rest are cache hits
	})
	b.Run("via-router", func(b *testing.B) {
		planner, pdone := newServer()
		defer pdone()
		replica, rdone := newServer()
		defer rdone()
		r, err := New(Config{
			Replicas:   []string{replica.URL},
			Planner:    planner.URL,
			PushEvery:  time.Hour,
			ProbeEvery: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		front := httptest.NewServer(r)
		defer front.Close()
		drive(b, front.URL)
	})
}
