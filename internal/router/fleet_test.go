package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"panda"
	"panda/internal/server"
)

// fleet is an in-process two-replica topology: one planning tier, two
// serving replicas (all real internal/server instances over real panda.DB
// sessions), and the router in front.
type fleet struct {
	router   *Router
	front    *httptest.Server
	planner  *node
	replicas []*node
}

type node struct {
	db  *panda.DB
	srv *server.Server
	ts  *httptest.Server
}

func newNode(t *testing.T, name string) *node {
	t.Helper()
	db := panda.Open(panda.WithPlannerCapacity(64))
	srv := server.New(server.Config{DB: db, Name: name})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		db.Close()
	})
	return &node{db: db, srv: srv, ts: ts}
}

func newFleet(t *testing.T) *fleet {
	t.Helper()
	f := &fleet{
		planner:  newNode(t, "planner"),
		replicas: []*node{newNode(t, "replica-a"), newNode(t, "replica-b")},
	}
	r, err := New(Config{
		Replicas:   []string{f.replicas[0].ts.URL, f.replicas[1].ts.URL},
		Planner:    f.planner.ts.URL,
		PushEvery:  time.Hour, // plans must arrive via the synchronous ensure path
		ProbeEvery: time.Hour, // health transitions are driven by the test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	f.router = r
	f.front = httptest.NewServer(r)
	t.Cleanup(f.front.Close)
	return f
}

// seed loads the triangle workload into the fleet THROUGH the router: the
// catalog mutations broadcast to the planning tier and both replicas.
func (f *fleet) seed(t *testing.T) (*panda.Query, *panda.Instance) {
	t.Helper()
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)
	for i, a := range q.Schema.Atoms {
		code, body := httpDo(t, http.MethodPost, f.front.URL+"/v1/relations",
			fmt.Sprintf(`{"name":%q,"arity":%d}`, a.Name, a.Vars.Card()))
		if code == http.StatusConflict {
			continue
		}
		if code != http.StatusCreated {
			t.Fatalf("create %s via router: %d %s", a.Name, code, body)
		}
		rows, err := json.Marshal(ins.Relations[i].Rows())
		if err != nil {
			t.Fatal(err)
		}
		code, body = httpDo(t, http.MethodPost, f.front.URL+"/v1/relations/"+a.Name+"/rows",
			fmt.Sprintf(`{"rows":%s}`, rows))
		if code != http.StatusOK {
			t.Fatalf("insert %s via router: %d %s", a.Name, code, body)
		}
	}
	return q, ins
}

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// mixedShapes is the traffic corpus: sixteen distinct conjunctive shapes
// (the plain triangle, a path join, and the triangle under fourteen
// different — sound, loose — cardinality bounds) so both replicas get
// shards with overwhelming probability.
func mixedShapes() []string {
	shapes := []string{
		`Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`,
		`Q(X,Z) :- R(X,Y), S(Y,Z).`,
	}
	for i := 0; i < 14; i++ {
		shapes = append(shapes, fmt.Sprintf("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).\n|R| <= %d", 50+5*i))
	}
	return shapes
}

type replicaShapes struct {
	Shapes []struct {
		Digest string `json:"digest"`
	} `json:"shapes"`
}

// TestFleetAmortizesPlanningAndSurvivesFailover is the headline e2e: with
// one planning tier and two replicas behind the router,
//
//  1. repeated mixed-shape traffic yields lp_solves_total == 0 on BOTH
//     replicas while lp_solves_saved_total climbs on each — every LP solve
//     in the fleet happened once, on the planner;
//  2. routing is shape-disjoint: each signature digest appears in exactly
//     one replica's /v1/shapes table;
//  3. rows match a direct single-process pandad on the same data;
//  4. draining one replica mid-traffic loses ZERO requests — the drained
//     replica's shard fails over to the survivor, which serves it from the
//     pushed plans, still without planning.
func TestFleetAmortizesPlanningAndSurvivesFailover(t *testing.T) {
	f := newFleet(t)
	q, ins := f.seed(t)

	// A direct pandad over the same data is the golden reference.
	direct := newNode(t, "direct")
	for i, a := range q.Schema.Atoms {
		code, _ := httpDo(t, http.MethodPost, direct.ts.URL+"/v1/relations",
			fmt.Sprintf(`{"name":%q,"arity":%d}`, a.Name, a.Vars.Card()))
		if code == http.StatusConflict {
			continue
		}
		rows, _ := json.Marshal(ins.Relations[i].Rows())
		httpDo(t, http.MethodPost, direct.ts.URL+"/v1/relations/"+a.Name+"/rows", fmt.Sprintf(`{"rows":%s}`, rows))
	}

	shapes := mixedShapes()
	queryRows := func(t *testing.T, base, src string) string {
		code, body := httpDo(t, http.MethodPost, base+"/v1/query", fmt.Sprintf(`{"query":%q}`, src))
		if code != http.StatusOK {
			t.Fatalf("query %q on %s: %d %s", src, base, code, body)
		}
		var res struct {
			OK   bool              `json:"ok"`
			Rows []json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatalf("bad response for %q: %v\n%s", src, err, body)
		}
		out, _ := json.Marshal(res.Rows)
		return string(out)
	}

	// Three rounds of the full corpus: round one plans (on the planner),
	// rounds two and three must be pure cache hits fleet-wide.
	for round := 0; round < 3; round++ {
		for _, src := range shapes {
			got := queryRows(t, f.front.URL, src)
			want := queryRows(t, direct.ts.URL, src)
			if got != want {
				t.Fatalf("round %d: rows for %q diverge from the direct server:\n got %s\nwant %s", round, src, got, want)
			}
		}
	}
	// A renaming of the triangle routes to the same replica and hits the
	// same plan.
	if got, want := queryRows(t, f.front.URL, `Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`),
		queryRows(t, direct.ts.URL, triangleSrc); got != want {
		t.Fatalf("renamed triangle rows %s, want %s", got, want)
	}

	// (1) Fleet-wide amortization: the planner paid every LP solve; the
	// replicas paid none and saved plenty.
	plannerStats := f.planner.db.PlannerStats()
	if plannerStats.LPSolves == 0 || plannerStats.Misses < uint64(len(shapes)) {
		t.Fatalf("planner stats %+v, want it to have planned all %d shapes", plannerStats, len(shapes))
	}
	for i, rep := range f.replicas {
		st := rep.db.PlannerStats()
		if st.LPSolves != 0 || st.Misses != 0 || st.PlansBuilt != 0 {
			t.Fatalf("replica %d did planning work: %+v", i, st)
		}
		if st.Hits < 1 || st.LPSolvesSaved < 1 {
			t.Fatalf("replica %d served no cached shapes: %+v (rerun: rendezvous starved it?)", i, st)
		}
	}

	// (2) Shape-disjoint routing: each execution digest is served by
	// exactly one replica.
	digests := make([]map[string]bool, len(f.replicas))
	for i, rep := range f.replicas {
		code, body := httpDo(t, http.MethodGet, rep.ts.URL+"/v1/shapes", "")
		if code != http.StatusOK {
			t.Fatalf("shapes on replica %d: %d", i, code)
		}
		var rs replicaShapes
		if err := json.Unmarshal([]byte(body), &rs); err != nil {
			t.Fatal(err)
		}
		digests[i] = map[string]bool{}
		for _, sh := range rs.Shapes {
			digests[i][sh.Digest] = true
		}
		if len(digests[i]) == 0 {
			t.Fatalf("replica %d served no shapes", i)
		}
	}
	for d := range digests[0] {
		if digests[1][d] {
			t.Fatalf("digest %s was served by both replicas — sharding is not disjoint", d)
		}
	}

	// (4) Drain one replica (what SIGTERM does to pandad) and rerun the
	// whole corpus: zero failed requests, and the survivor still plans
	// nothing because it holds every pushed plan.
	drained := f.replicas[0]
	survivor := f.replicas[1]
	if err := drained.srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, src := range shapes {
		got := queryRows(t, f.front.URL, src) // Fatals on any non-200
		want := queryRows(t, direct.ts.URL, src)
		if got != want {
			t.Fatalf("post-drain rows for %q diverge: got %s want %s", src, got, want)
		}
	}
	st := survivor.db.PlannerStats()
	if st.LPSolves != 0 || st.Misses != 0 {
		t.Fatalf("survivor planned after failover: %+v", st)
	}
	m := metricsText(t, f.front.URL)
	if !strings.Contains(m, fmt.Sprintf("panda_router_failovers_total{replica=%q} 1", drained.ts.URL)) {
		t.Fatalf("router metrics missing the drain failover:\n%s", m)
	}
	if !strings.Contains(m, "panda_router_no_healthy_replica_total 0") {
		t.Fatalf("router metrics report dropped requests:\n%s", m)
	}
}

// TestFleetMutationInvalidatesShapes: a catalog mutation changes the
// cardinality constraints embedded in plan signatures, so the router must
// re-warm and re-ship every shape it sees afterwards — and replicas still
// never plan.
func TestFleetMutationInvalidatesShapes(t *testing.T) {
	f := newFleet(t)
	f.seed(t)

	if code, body := httpDo(t, http.MethodPost, f.front.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("pre-mutation query: %d %s", code, body)
	}
	clockBefore := f.planner.db.PlanClock()

	// Grow R through the router: new cardinality, new signature.
	if code, body := httpDo(t, http.MethodPost, f.front.URL+"/v1/relations/R/rows", `{"rows":[[997,998],[998,999]]}`); code != http.StatusOK {
		t.Fatalf("mutation: %d %s", code, body)
	}
	if code, body := httpDo(t, http.MethodPost, f.front.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("post-mutation query: %d %s", code, body)
	}
	if clockAfter := f.planner.db.PlanClock(); clockAfter <= clockBefore {
		t.Fatalf("planner clock %d → %d; the mutated shape was not re-planned", clockBefore, clockAfter)
	}
	for i, rep := range f.replicas {
		if st := rep.db.PlannerStats(); st.LPSolves != 0 {
			t.Fatalf("replica %d planned after the mutation: %+v", i, st)
		}
	}
}
