package router

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// routerMetrics collects the router's own counters for /metrics: request
// counts by endpoint and status, per-replica/per-shard routing counts,
// failovers and retries, and the plan-shipping loop's activity. Per-shard
// series are bounded: at most maxRoutedShapes distinct shapes get their
// own labels, the rest roll up into shape="other".
type routerMetrics struct {
	mu            sync.Mutex
	requests      map[requestKey]uint64
	httpSum       map[string]float64 // endpoint → total seconds
	routed        map[routeKey]uint64
	routedShapes  map[string]bool
	failovers     map[string]uint64 // replica → times marked down
	quarantines   map[string]uint64 // replica → times quarantined for a lagging catalog
	pushEntries   map[string]uint64 // replica → plan entries pushed
	retries       uint64
	noHealthy     uint64
	ensures       uint64
	pushes        uint64
	plannerErrors uint64
}

type requestKey struct {
	endpoint string
	code     int
}

type routeKey struct {
	shape   string
	replica string
}

// maxRoutedShapes bounds the per-shard label cardinality.
const maxRoutedShapes = 512

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		requests:     map[requestKey]uint64{},
		httpSum:      map[string]float64{},
		routed:       map[routeKey]uint64{},
		routedShapes: map[string]bool{},
		failovers:    map[string]uint64{},
		quarantines:  map[string]uint64{},
		pushEntries:  map[string]uint64{},
	}
}

func (m *routerMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	m.httpSum[endpoint] += d.Seconds()
}

func (m *routerMetrics) addRouted(shape, replica string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.routedShapes[shape] {
		if len(m.routedShapes) >= maxRoutedShapes {
			shape = "other"
		} else {
			m.routedShapes[shape] = true
		}
	}
	m.routed[routeKey{shape, replica}]++
}

func (m *routerMetrics) addFailover(replica string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failovers[replica]++
}

func (m *routerMetrics) addQuarantine(replica string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.quarantines[replica]++
}

func (m *routerMetrics) addPushEntries(replica string, n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pushEntries[replica] += n
}

func (m *routerMetrics) addRetry()        { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *routerMetrics) addNoHealthy()    { m.mu.Lock(); m.noHealthy++; m.mu.Unlock() }
func (m *routerMetrics) addEnsure()       { m.mu.Lock(); m.ensures++; m.mu.Unlock() }
func (m *routerMetrics) addPush()         { m.mu.Lock(); m.pushes++; m.mu.Unlock() }
func (m *routerMetrics) addPlannerError() { m.mu.Lock(); m.plannerErrors++; m.mu.Unlock() }

// write renders the Prometheus text exposition. State is snapshotted under
// the lock and rendered after release, like pandad's collector.
func (m *routerMetrics) write(w io.Writer, r *Router) {
	m.mu.Lock()
	reqs := make(map[requestKey]uint64, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	routed := make(map[routeKey]uint64, len(m.routed))
	for k, v := range m.routed {
		routed[k] = v
	}
	failovers := make(map[string]uint64, len(m.failovers))
	for k, v := range m.failovers {
		failovers[k] = v
	}
	quarantines := make(map[string]uint64, len(m.quarantines))
	for k, v := range m.quarantines {
		quarantines[k] = v
	}
	pushEntries := make(map[string]uint64, len(m.pushEntries))
	for k, v := range m.pushEntries {
		pushEntries[k] = v
	}
	httpSum := make(map[string]float64, len(m.httpSum))
	for k, v := range m.httpSum {
		httpSum[k] = v
	}
	retries, noHealthy, ensures, pushes, plannerErrors :=
		m.retries, m.noHealthy, m.ensures, m.pushes, m.plannerErrors
	m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	rks := make([]requestKey, 0, len(reqs))
	for k := range reqs {
		rks = append(rks, k)
	}
	sort.Slice(rks, func(i, j int) bool {
		if rks[i].endpoint != rks[j].endpoint {
			return rks[i].endpoint < rks[j].endpoint
		}
		return rks[i].code < rks[j].code
	})
	fmt.Fprintf(w, "# HELP panda_router_requests_total Requests handled by the router, by endpoint and status code.\n# TYPE panda_router_requests_total counter\n")
	for _, k := range rks {
		fmt.Fprintf(w, "panda_router_requests_total{endpoint=%q,code=%q} %d\n", k.endpoint, strconv.Itoa(k.code), reqs[k])
	}

	eps := make([]string, 0, len(httpSum))
	for ep := range httpSum {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(w, "# HELP panda_router_request_seconds_total Cumulative request handling time, by endpoint.\n# TYPE panda_router_request_seconds_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(w, "panda_router_request_seconds_total{endpoint=%q} %g\n", ep, httpSum[ep])
	}

	sks := make([]routeKey, 0, len(routed))
	for k := range routed {
		sks = append(sks, k)
	}
	sort.Slice(sks, func(i, j int) bool {
		if sks[i].shape != sks[j].shape {
			return sks[i].shape < sks[j].shape
		}
		return sks[i].replica < sks[j].replica
	})
	fmt.Fprintf(w, "# HELP panda_router_shape_routed_total Requests routed, by shape (canonical signature digest, or rule:<hash>) and replica; overflow shapes roll up into shape=\"other\".\n# TYPE panda_router_shape_routed_total counter\n")
	for _, k := range sks {
		fmt.Fprintf(w, "panda_router_shape_routed_total{shape=%q,replica=%q} %d\n", k.shape, k.replica, routed[k])
	}

	fmt.Fprintf(w, "# HELP panda_router_replica_healthy Replica health as last probed (1 healthy, 0 down).\n# TYPE panda_router_replica_healthy gauge\n")
	for _, b := range r.replicas {
		v := 0
		if b.isHealthy() {
			v = 1
		}
		fmt.Fprintf(w, "panda_router_replica_healthy{replica=%q} %d\n", b.name, v)
	}

	fmt.Fprintf(w, "# HELP panda_router_replica_routable Whether traffic may be routed to the replica (1 = live and catalog in sync with the planner, 0 = down or quarantined).\n# TYPE panda_router_replica_routable gauge\n")
	for _, b := range r.replicas {
		v := 0
		if b.isRoutable() {
			v = 1
		}
		fmt.Fprintf(w, "panda_router_replica_routable{replica=%q} %d\n", b.name, v)
	}

	fmt.Fprintf(w, "# HELP panda_router_failovers_total Times a replica was marked down (probe failure or in-request error).\n# TYPE panda_router_failovers_total counter\n")
	names := make([]string, 0, len(failovers))
	for k := range failovers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "panda_router_failovers_total{replica=%q} %d\n", k, failovers[k])
	}

	fmt.Fprintf(w, "# HELP panda_router_quarantines_total Times a replica was quarantined for a catalog that lags the planning tier (missed mutation broadcast or stale restart).\n# TYPE panda_router_quarantines_total counter\n")
	names = names[:0]
	for k := range quarantines {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "panda_router_quarantines_total{replica=%q} %d\n", k, quarantines[k])
	}

	fmt.Fprintf(w, "# HELP panda_router_push_entries_total Plan-cache entries pushed to each replica by the delta loop.\n# TYPE panda_router_push_entries_total counter\n")
	names = names[:0]
	for k := range pushEntries {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "panda_router_push_entries_total{replica=%q} %d\n", k, pushEntries[k])
	}

	counter("panda_router_retries_total", "Proxy attempts beyond the first, across all requests (bounded failover).", retries)
	counter("panda_router_no_healthy_replica_total", "Requests answered 502 because no healthy replica remained.", noHealthy)
	counter("panda_router_shapes_ensured_total", "First-sighted shapes synchronously planned on the planning tier and shipped.", ensures)
	counter("panda_router_pushes_total", "Delta push cycles that shipped at least one plan entry.", pushes)
	counter("panda_router_planner_errors_total", "Failed planner interactions (warm-ups and delta pulls).", plannerErrors)
}
