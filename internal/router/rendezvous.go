package router

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) hashing assigns each routing key an
// ordered preference list over the replica set: every (replica, key) pair
// gets an independent pseudo-random score and the replicas are ranked by
// it. The properties the fleet tier leans on:
//
//   - Deterministic and order-free: the ranking depends only on the SET of
//     replica names, not the order they were configured in, so every router
//     (and every restart) agrees.
//   - Minimal disruption: when a replica leaves, only the keys that ranked
//     it first move — each to its previous second choice — and no key
//     moves between two surviving replicas. That is exactly the failover
//     behaviour that keeps the other replicas' plan/stmt caches hot.
//   - Balance: scores are i.i.d. across keys, so shards even out over a
//     query-shape corpus without any coordination or ring maintenance.

// score hashes a (replica, key) pair with FNV-1a 64. The NUL separator
// keeps ("ab","c") and ("a","bc") from colliding.
func score(replica, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(replica))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Rank orders replicas by descending rendezvous score for key, breaking
// (astronomically unlikely) score ties by name so the order is total. The
// returned slice is freshly allocated; replicas is not modified.
func Rank(replicas []string, key string) []string {
	type scored struct {
		name string
		s    uint64
	}
	ranked := make([]scored, len(replicas))
	for i, r := range replicas {
		ranked[i] = scored{name: r, s: score(r, key)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].name < ranked[j].name
	})
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.name
	}
	return out
}
