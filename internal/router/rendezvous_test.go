package router

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// corpusShapes builds a corpus of distinct routing shapes the way real
// traffic would: triangle queries under increasingly loose cardinality
// bounds (declared constraints are part of the canonical signature, so
// each bound is its own shape), plus a handful of structural variants.
func corpusShapes(t testing.TB, n int) []string {
	t.Helper()
	shapes := make([]string, 0, n)
	seen := map[string]bool{}
	add := func(src string) {
		s, conj, err := shapeOf(src, "")
		if err != nil || !conj {
			t.Fatalf("shapeOf(%q): conj=%t err=%v", src, conj, err)
		}
		if seen[s] {
			t.Fatalf("corpus shape collision for %q", src)
		}
		seen[s] = true
		shapes = append(shapes, s)
	}
	add(`Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`)
	add(`Q(X,Z) :- R(X,Y), S(Y,Z).`)
	add(`Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A).`)
	for i := 0; len(shapes) < n; i++ {
		add(fmt.Sprintf("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).\n|R| <= %d", 50+5*i))
	}
	return shapes
}

// TestRankDeterministicUnderPermutation: the ranking must depend only on
// the SET of replicas — any configuration order, any router instance, any
// restart agrees on who owns a shape.
func TestRankDeterministicUnderPermutation(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	rng := rand.New(rand.NewSource(7))
	for _, key := range corpusShapes(t, 20) {
		want := Rank(replicas, key)
		for trial := 0; trial < 10; trial++ {
			shuffled := append([]string(nil), replicas...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := Rank(shuffled, key); !reflect.DeepEqual(got, want) {
				t.Fatalf("Rank is order-sensitive for %q:\n %v\n %v", key, got, want)
			}
		}
	}
}

// TestRankMinimalDisruption: removing one replica moves ONLY the keys it
// owned (each to its previous second choice); no key moves between two
// surviving replicas. This is why a replica failure warms exactly one
// other replica's caches instead of reshuffling the whole fleet.
func TestRankMinimalDisruption(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:1", "http://c:1"}
	survivors := []string{"http://a:1", "http://b:1"}
	const gone = "http://c:1"
	shapes := corpusShapes(t, 200)
	moved := 0
	for _, key := range shapes {
		before := Rank(replicas, key)
		after := Rank(survivors, key)
		if before[0] != gone {
			if after[0] != before[0] {
				t.Fatalf("key %q moved from survivor %s to %s when %s left", key, before[0], after[0], gone)
			}
			continue
		}
		moved++
		// The departed replica's keys fall to their previous second choice.
		want := before[1]
		if after[0] != want {
			t.Fatalf("key %q owned by the departed replica moved to %s, want its second choice %s", key, after[0], want)
		}
	}
	if moved == 0 {
		t.Fatal("corpus gave the departed replica no keys; test is vacuous")
	}
}

// TestRankBalance: shards even out over a query-shape corpus without any
// coordination — each of three replicas owns a healthy share of 300
// distinct shapes.
func TestRankBalance(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:1", "http://c:1"}
	shapes := corpusShapes(t, 300)
	counts := map[string]int{}
	for _, key := range shapes {
		counts[Rank(replicas, key)[0]]++
	}
	for _, r := range replicas {
		if counts[r] < len(shapes)/6 || counts[r] > len(shapes)/2 {
			t.Fatalf("replica %s owns %d of %d shapes — outside [1/6, 1/2]: %v", r, counts[r], len(shapes), counts)
		}
	}
}

// TestRankTotalOrder: every replica appears exactly once in the ranking.
func TestRankTotalOrder(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, key := range corpusShapes(t, 10) {
		ranked := Rank(replicas, key)
		seen := map[string]bool{}
		for _, r := range ranked {
			seen[r] = true
		}
		if len(ranked) != len(replicas) || len(seen) != len(replicas) {
			t.Fatalf("Rank(%q) = %v is not a permutation of %v", key, ranked, replicas)
		}
	}
}

// TestShapeOfRenamingInvariant: variable renamings and atom reorderings of
// the same query compute the same routing shape — the property that makes
// a replica's exact-fingerprint and signature caches both hit for the
// whole renaming class the router sends it.
func TestShapeOfRenamingInvariant(t *testing.T) {
	variants := []string{
		`Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`,
		`Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`,
		`Q(C,A,B) :- T(C,B), R(C,A), S(A,B).`,
	}
	want, conj, err := shapeOf(variants[0], "")
	if err != nil || !conj {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		got, _, err := shapeOf(v, "")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("shapeOf(%q) = %s, want %s", v, got, want)
		}
	}
	// A different mode is a different shape (plans are cached per mode).
	subw, _, err := shapeOf(variants[0], "subw")
	if err != nil {
		t.Fatal(err)
	}
	if subw == want {
		t.Fatal("mode should distinguish routing shapes")
	}
	// Rules route by text hash, not signature.
	rule, conj, err := shapeOf(`T1(A) v T2(B) :- R(A,B).`, "")
	if err != nil {
		t.Fatal(err)
	}
	if conj || rule == "" {
		t.Fatalf("rule shape = (%q, conj=%t), want non-conjunctive text hash", rule, conj)
	}
}
