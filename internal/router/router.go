// Package router implements pandarouter: a signature-sharded routing tier
// over pandad replicas with fleet-wide plan shipping.
//
// PANDA's planning phase (the Shannon-flow LP solves) is data-independent
// and cacheable; PRs 1-6 made one process amortize it across repeated
// traffic. This tier amortizes it across a FLEET:
//
//	client ──▶ pandarouter ──rendezvous(shape)──▶ replica A  (plans: pushed, LP solves: 0)
//	                 │                        └─▶ replica B  (plans: pushed, LP solves: 0)
//	                 └──new shapes──▶ planning tier (pays every LP solve once)
//
// Every /v1/query and /v1/plan is routed by the query's canonical shape —
// the renaming-invariant signature computed WITHOUT catalog access or LP
// work — so each query shape consistently lands on one replica and every
// replica's plan/stmt caches stay hot and disjoint. The first time the
// router sees a shape it synchronously warms the designated planning tier
// (which pays the LP solves) and ships the resulting plans to all healthy
// replicas via the delta export (GET /v1/plans?since=<clock> on the
// planner, PUT /v1/plans on the replicas) before forwarding the query, so
// replicas never plan: their lp_solves_total stays 0 while
// lp_solves_saved_total climbs. A background push loop repeats the
// delta-pull/push on a timer, which is also how a replica that was briefly
// down catches up.
//
// Replicas are health-checked (GET /healthz) and failed over: a transport
// error or 503 marks the replica down and the request retries on the next-
// ranked healthy replica (rendezvous ranking makes that retry target
// deterministic, so a downed replica's shard moves wholesale to its second
// choice and nothing else reshuffles). When no replica remains the router
// answers 502 with the stable code "no_healthy_replica".
//
// Catalog mutations (relation create/drop, row/CSV ingest) are broadcast —
// planning tier first, then every replica — because plan signatures embed
// catalog cardinalities: after a mutation the planned-shape memo is
// dropped and the next query per shape re-warms and re-ships. A replica
// that misses a broadcast (down at the time, transport error, or a
// non-planner answer) has a diverged catalog and MUST NOT silently rejoin:
// every pandad counts its applied mutations as a catalog epoch reported on
// /healthz, and the probe loop quarantines any live replica whose epoch
// lags the planning tier's until it catches up (i.e. until an operator
// resyncs it — the resync mechanism itself is a recorded ROADMAP seam).
// A broadcast failure quarantines the replica immediately, without waiting
// for the next probe round.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Router.
type Config struct {
	// Replicas are the base URLs of the query-serving pandad fleet;
	// required, at least one. The URL doubles as the replica's rendezvous
	// identity, so keep it stable across router restarts.
	Replicas []string
	// Planner is the base URL of the designated planning tier (a pandad
	// that pays the LP solves for new shapes); required.
	Planner string
	// PushEvery is the background delta push period (default 2s).
	PushEvery time.Duration
	// ProbeEvery is the replica health-probe period (default 500ms).
	ProbeEvery time.Duration
	// ProxyTimeout caps each proxied attempt (default 30s).
	ProxyTimeout time.Duration
	// Client overrides the HTTP client (tests inject one).
	Client *http.Client
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// staleThreshold is how many consecutive probe rounds must observe a
// replica's catalog epoch behind the planner's before the replica is
// quarantined. One round of grace absorbs the probe that lands between a
// broadcast's planner leg and its replica legs (a real missed broadcast
// stays behind forever and trips the threshold on the next round); a
// broadcast failure skips the grace and quarantines immediately.
const staleThreshold = 2

// backend is one replica: its rendezvous identity plus live health state.
type backend struct {
	name string // base URL; also the rendezvous hash identity

	mu      sync.Mutex
	healthy bool
	// epoch is the catalog epoch the replica reported on its last probe.
	epoch uint64
	// staleRounds counts consecutive probe rounds with epoch behind the
	// planner's; at staleThreshold the replica is quarantined (live but
	// unroutable: it missed a catalog mutation and needs a resync).
	staleRounds int
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// isRoutable reports whether traffic may be sent to the replica: it must
// be live AND its catalog must not be known to lag the planning tier's.
func (b *backend) isRoutable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && b.staleRounds < staleThreshold
}

// setHealthy flips the liveness state, reporting whether it changed.
func (b *backend) setHealthy(v bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed := b.healthy != v
	b.healthy = v
	return changed
}

// setProbed records one probe observation against the planner's catalog
// epoch. It reports whether the replica just crossed into, or out of,
// quarantine. A replica AHEAD of the planner is not quarantined: that
// means the planner itself restarted with an older catalog, which is a
// planner problem (logged by the caller), not grounds to stop serving.
func (b *backend) setProbed(epoch, plannerEpoch uint64) (quarantined, recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	before := b.staleRounds >= staleThreshold
	b.epoch = epoch
	if epoch < plannerEpoch {
		b.staleRounds++
	} else {
		b.staleRounds = 0
	}
	after := b.staleRounds >= staleThreshold
	return !before && after, before && !after
}

// forceStale quarantines the replica immediately (a broadcast to it
// failed, so the router KNOWS its catalog diverged — no probe grace).
// It reports whether the state changed.
func (b *backend) forceStale() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed := b.staleRounds < staleThreshold
	b.staleRounds = staleThreshold
	return changed
}

func (b *backend) state() (healthy bool, epoch uint64, stale bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.epoch, b.staleRounds >= staleThreshold
}

// Router is the HTTP handler. Create one with New, stop it with Close.
type Router struct {
	replicas []*backend
	planner  string
	client   *http.Client
	timeout  time.Duration
	logf     func(string, ...any)
	shapes   *shapeCache
	metrics  *routerMetrics
	mux      *http.ServeMux
	start    time.Time

	// plannerEpoch is the planning tier's catalog epoch as last probed;
	// replicas whose epoch lags it are quarantined.
	plannerEpoch atomic.Uint64

	// pushMu serializes plan-shipping cycles (first-sighting ensures and
	// the background loop); watermarks is owned by it. It is never held
	// across the planner warm-up HTTP call, only across the delta
	// pull/push itself.
	pushMu sync.Mutex
	// watermarks maps replica name → the planner cache clock whose
	// entries that replica has already imported; the next delta pull asks
	// the planner for ?since=min(watermarks).
	watermarks map[string]uint64

	// plannedMu guards the planned memo and the in-flight warm-up table.
	// It is only ever held for map operations — memoized shapes check it
	// and move on without waiting behind any HTTP work.
	plannedMu sync.Mutex
	// planned memoizes routing shapes known to be planned fleet-wide;
	// dropped wholesale on catalog mutations (signatures embed
	// cardinalities) and when it outgrows plannedCap.
	planned    map[string]struct{}
	plannedCap int
	// warming single-flights planner warm-ups per shape: the first sighting
	// runs the warm-up, concurrent sightings of the SAME shape wait on its
	// channel (bounded by their own deadline), other shapes proceed.
	warming map[string]chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// maxProxyBodyBytes bounds a buffered request body (queries are small;
// ingest bodies are the big ones and 64 MiB matches pandad's import cap).
const maxProxyBodyBytes = 64 << 20

// defaultPlannedCap bounds the planned-shape memo.
const defaultPlannedCap = 1 << 16

// New builds the router, runs one synchronous probe round so the first
// request already knows who is alive, and starts the probe and push loops.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: at least one replica is required")
	}
	if cfg.Planner == "" {
		return nil, errors.New("router: a planner URL is required")
	}
	if cfg.PushEvery <= 0 {
		cfg.PushEvery = 2 * time.Second
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 500 * time.Millisecond
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 30 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Router{
		planner:    cfg.Planner,
		client:     cfg.Client,
		timeout:    cfg.ProxyTimeout,
		logf:       cfg.Logf,
		shapes:     newShapeCache(0),
		metrics:    newRouterMetrics(),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		watermarks: map[string]uint64{},
		planned:    map[string]struct{}{},
		plannedCap: defaultPlannedCap,
		warming:    map[string]chan struct{}{},
		stop:       make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, name := range cfg.Replicas {
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate replica %q", name)
		}
		seen[name] = true
		r.replicas = append(r.replicas, &backend{name: name, healthy: true})
	}
	r.routes()
	r.probeAll()
	r.wg.Add(2)
	go r.probeLoop(cfg.ProbeEvery)
	go r.pushLoop(cfg.PushEvery)
	return r, nil
}

// Close stops the probe and push loops. It does not drain in-flight
// requests; the owning http.Server's Shutdown does that.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

func (r *Router) routes() {
	r.mux.HandleFunc("POST /v1/query", r.observed("query", r.handleQuery))
	r.mux.HandleFunc("GET /v1/plan", r.observed("plan", r.handlePlan))
	r.mux.HandleFunc("GET /v1/plans", r.observed("plans", r.handleExportPlans))
	r.mux.HandleFunc("PUT /v1/plans", r.observed("plans", r.handleImportPlans))
	r.mux.HandleFunc("GET /v1/relations", r.observed("relations", r.proxyPlannerRead))
	r.mux.HandleFunc("GET /v1/shapes", r.observed("shapes", r.handleShapes))
	r.mux.HandleFunc("POST /v1/relations", r.observed("relations", r.handleMutation))
	r.mux.HandleFunc("DELETE /v1/relations/{name}", r.observed("relations", r.handleMutation))
	r.mux.HandleFunc("POST /v1/relations/{name}/rows", r.observed("rows", r.handleMutation))
	r.mux.HandleFunc("POST /v1/relations/{name}/csv", r.observed("csv", r.handleMutation))
	r.mux.HandleFunc("GET /metrics", r.observed("metrics", r.handleMetrics))
	r.mux.HandleFunc("GET /healthz", r.observed("healthz", r.handleHealthz))
	r.mux.HandleFunc("GET /v1/info", r.observed("info", r.handleInfo))
}

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// observed is the metrics middleware: request counts and latency by
// endpoint and status.
func (r *Router) observed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, req)
		r.metrics.observe(endpoint, sw.code, time.Since(start))
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// ---- Health probing ----

func (r *Router) probeLoop(every time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll runs one health round: the planning tier's catalog epoch is
// read first, then every replica's liveness AND epoch. A live replica
// whose epoch lags the planner's for staleThreshold consecutive rounds is
// quarantined — it missed a catalog mutation (the code path that marked it
// down has no way to replay the mutation) and answering 200 on /healthz is
// NOT evidence it caught up, so it stays out of rotation until its epoch
// matches again.
func (r *Router) probeAll() {
	if plannerUp, epoch := r.probe(r.planner); plannerUp {
		if prev := r.plannerEpoch.Swap(epoch); epoch < prev {
			// The planner came back with an older catalog than the fleet
			// has applied. Replicas are NOT quarantined for being ahead —
			// that would turn a planner restart into a total outage — but
			// fresh plans may now disagree with replica catalogs.
			r.logf("router: planner catalog epoch regressed %d → %d (planner restart with a stale catalog?)", prev, epoch)
		}
	}
	plannerEpoch := r.plannerEpoch.Load()
	for _, b := range r.replicas {
		healthy, epoch := r.probe(b.name)
		if b.setHealthy(healthy) {
			if healthy {
				r.logf("router: replica %s is back", b.name)
			} else {
				r.logf("router: replica %s is down", b.name)
				r.metrics.addFailover(b.name)
			}
		}
		if !healthy {
			continue
		}
		quarantined, recovered := b.setProbed(epoch, plannerEpoch)
		if quarantined {
			r.logf("router: replica %s is live but its catalog epoch %d lags the planner's %d; quarantined until resynced", b.name, epoch, plannerEpoch)
			r.metrics.addQuarantine(b.name)
		}
		if recovered {
			r.logf("router: replica %s caught up to catalog epoch %d; back in rotation", b.name, epoch)
		}
	}
}

// probe asks one base URL's /healthz with a short deadline, reporting
// liveness and the catalog epoch the body carries (0 when absent — older
// pandads and the unit-test stubs omit it, which compares as "never
// mutated" and is exactly right for them).
func (r *Router) probe(base string) (bool, uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, 0
	}
	var hb struct {
		CatalogEpoch uint64 `json:"catalog_epoch"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&hb)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, hb.CatalogEpoch
}

// markDown records an in-request health discovery (transport error or 503
// from a replica) so the very next candidate ranking already avoids it;
// the probe loop brings the replica back once /healthz answers again.
func (r *Router) markDown(b *backend) {
	if b.setHealthy(false) {
		r.logf("router: replica %s failed in-request, failing over", b.name)
		r.metrics.addFailover(b.name)
	}
}

// routableReplicas are the replicas traffic, broadcasts and plan pushes go
// to: live and not quarantined for a lagging catalog.
func (r *Router) routableReplicas() []*backend {
	out := make([]*backend, 0, len(r.replicas))
	for _, b := range r.replicas {
		if b.isRoutable() {
			out = append(out, b)
		}
	}
	return out
}

func (r *Router) backendByName(name string) *backend {
	for _, b := range r.replicas {
		if b.name == name {
			return b
		}
	}
	return nil
}

// ---- Plan shipping ----

func (r *Router) pushLoop(every time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
			r.pushMu.Lock()
			r.pullAndPush(ctx)
			r.pushMu.Unlock()
			cancel()
		}
	}
}

// ensurePlanned makes a first-sighted conjunctive shape safe to route:
// the planning tier is warmed synchronously (it pays the LP solves on its
// own cache miss), its fresh plans are delta-pulled and pushed to every
// routable replica, and the shape is memoized. Replicas therefore see the
// plan arrive BEFORE the query does and never plan themselves. Planner
// trouble degrades gracefully: the query still routes (the replica would
// plan as a last resort) and the shape stays un-memoized so the next
// sighting retries the warm-up.
//
// Warm-ups are single-flighted PER SHAPE and every planner interaction
// here runs under the router's proxy timeout, so a hung planner
// connection can stall at most the queries of the one shape being warmed
// — memoized shapes take the fast path without waiting behind any HTTP
// work, and concurrent sightings of the warming shape give up at their
// deadline instead of queueing behind the client's disconnect.
func (r *Router) ensurePlanned(ctx context.Context, shape, src, mode string) {
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	r.plannedMu.Lock()
	if _, ok := r.planned[shape]; ok {
		r.plannedMu.Unlock()
		return
	}
	if ch, ok := r.warming[shape]; ok {
		r.plannedMu.Unlock()
		// Another request is warming this exact shape; wait for it (so the
		// plan reaches the replica before our query does) but no longer
		// than our own deadline. Either way the query then routes: if the
		// warm-up failed, the replica plans as a last resort.
		select {
		case <-ch:
		case <-ctx.Done():
		}
		return
	}
	ch := make(chan struct{})
	r.warming[shape] = ch
	r.plannedMu.Unlock()
	defer func() {
		r.plannedMu.Lock()
		delete(r.warming, shape)
		r.plannedMu.Unlock()
		close(ch)
	}()

	u := r.planner + "/v1/plan?q=" + url.QueryEscape(src)
	if mode != "" {
		u += "&mode=" + url.QueryEscape(mode)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.metrics.addPlannerError()
		r.logf("router: planner warm-up for shape %s failed: %v", shape, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The planner rejected the query (parse error, unknown relation,
		// unbounded LP, …). The replica will reject it identically; memoize
		// nothing and let the query through to produce the real error.
		r.metrics.addPlannerError()
		return
	}
	r.metrics.addEnsure()
	r.pushMu.Lock()
	r.pullAndPush(ctx)
	r.pushMu.Unlock()
	r.plannedMu.Lock()
	if len(r.planned) >= r.plannedCap {
		r.planned = map[string]struct{}{}
	}
	r.planned[shape] = struct{}{}
	r.plannedMu.Unlock()
}

// pullAndPush pulls one delta from the planner (since the oldest routable
// replica watermark) and imports it into every routable replica that is
// behind the delta's clock. Over-delivery is harmless — imports never
// clobber live entries and duplicates are counted, not rejected — so one
// pull serves replicas at different watermarks. Caller holds pushMu.
//
// The planner's cache clock is in-memory and restarts near 0, while the
// router's watermarks only ever advance — so after a planner restart every
// watermark exceeds the planner's clock, deltas come back empty (or get
// skipped by the watermark guards) and newly planned shapes would never
// ship again, silently pushing replicas back onto their own LP solves. A
// pulled clock BELOW `since` can only mean such a restart: the watermarks
// are reset to 0 and the pull retried once so the full cache re-ships.
func (r *Router) pullAndPush(ctx context.Context) {
	if done := r.pullAndPushOnce(ctx); !done {
		r.pullAndPushOnce(ctx)
	}
}

// pullAndPushOnce runs one pull/push cycle; it reports false only when a
// planner clock regression was detected and the watermarks were reset, in
// which case the caller retries with the fresh state.
func (r *Router) pullAndPushOnce(ctx context.Context) bool {
	replicas := r.routableReplicas()
	if len(replicas) == 0 {
		return true
	}
	since := r.watermarks[replicas[0].name]
	for _, b := range replicas[1:] {
		if w := r.watermarks[b.name]; w < since {
			since = w
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/plans?since=%d", r.planner, since), nil)
	if err != nil {
		return true
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.metrics.addPlannerError()
		return true
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBodyBytes))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		r.metrics.addPlannerError()
		return true
	}
	var env struct {
		Clock   uint64            `json:"clock"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		r.metrics.addPlannerError()
		return true
	}
	if env.Clock < since {
		r.logf("router: planner cache clock regressed to %d (watermarks reached %d): planner restart, re-shipping the full cache", env.Clock, since)
		for name := range r.watermarks {
			r.watermarks[name] = 0
		}
		return false
	}
	if len(env.Entries) == 0 {
		// Nothing new: advance watermarks to the planner's clock so the
		// next pull stays cheap.
		for _, b := range replicas {
			if r.watermarks[b.name] < env.Clock {
				r.watermarks[b.name] = env.Clock
			}
		}
		return true
	}
	r.metrics.addPush()
	for _, b := range replicas {
		if r.watermarks[b.name] >= env.Clock {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.name+"/v1/plans", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			r.markDown(b)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// 200 (clean) and 422 (partial skip, reported loudly by the
		// replica) both mean the snapshot was processed; only transport
		// failures leave the watermark behind for a retry.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusUnprocessableEntity {
			r.watermarks[b.name] = env.Clock
			r.metrics.addPushEntries(b.name, uint64(len(env.Entries)))
			if resp.StatusCode == http.StatusUnprocessableEntity {
				r.logf("router: replica %s imported the delta with skips", b.name)
			}
		}
	}
	return true
}

// ---- Query / plan routing ----

type queryBody struct {
	Query string `json:"query"`
	Mode  string `json:"mode"`
}

// readBody buffers a bounded request body. An oversized body is answered
// 413 with its own stable code (matching pandad's import-cap convention);
// any other read failure is a plain 400.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxProxyBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", err)
		}
		return nil, false
	}
	return body, true
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	// Lenient decode: the router only needs the routing fields; the
	// replica stays the strict validator of the full body.
	var qb queryBody
	json.Unmarshal(body, &qb)
	shape := qb.Query // parse failures route by raw text; the replica reports the real error
	conjunctive := false
	if qb.Query != "" {
		if s, conj, err := r.shapes.shape(qb.Query, qb.Mode); err == nil {
			shape, conjunctive = s, conj
		}
	}
	if conjunctive {
		r.ensurePlanned(req.Context(), shape, qb.Query, qb.Mode)
	}
	r.routeWithFailover(w, req, shape, body)
}

func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	src := req.URL.Query().Get("q")
	mode := req.URL.Query().Get("mode")
	shape := src
	conjunctive := false
	if src != "" {
		if s, conj, err := r.shapes.shape(src, mode); err == nil {
			shape, conjunctive = s, conj
		}
	}
	if conjunctive {
		r.ensurePlanned(req.Context(), shape, src, mode)
	}
	r.routeWithFailover(w, req, shape, nil)
}

// routeWithFailover forwards the request to the healthy replicas in
// rendezvous order for shape: the first-ranked healthy replica gets the
// request; a transport error or 503 marks it down and the next-ranked one
// is tried (each downed replica costs exactly one bounded retry). When no
// healthy replica remains the answer is 502 "no_healthy_replica".
func (r *Router) routeWithFailover(w http.ResponseWriter, req *http.Request, shape string, body []byte) {
	names := make([]string, len(r.replicas))
	for i, b := range r.replicas {
		names[i] = b.name
	}
	attempts := 0
	for _, name := range Rank(names, shape) {
		b := r.backendByName(name)
		if !b.isRoutable() {
			continue
		}
		if attempts > 0 {
			r.metrics.addRetry()
		}
		attempts++
		ok := r.proxyOnce(w, req, b, shape, body)
		if ok {
			return
		}
	}
	r.metrics.addNoHealthy()
	writeError(w, http.StatusBadGateway, "no_healthy_replica",
		fmt.Errorf("no healthy replica for shape %s (%d attempted)", shape, attempts))
}

// proxyOnce sends the request to one replica. It reports false — without
// having written to w — when the replica should be failed over (transport
// error, or 503: the replica is draining or closed); any other response,
// success or error, is copied through verbatim as the request's outcome.
func (r *Router) proxyOnce(w http.ResponseWriter, req *http.Request, b *backend, shape string, body []byte) bool {
	ctx, cancel := context.WithTimeout(req.Context(), r.timeout)
	defer cancel()
	u := b.name + req.URL.Path
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, u, rd)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "proxy_error", err)
		return true
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(out)
	if err != nil {
		r.markDown(b)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		r.markDown(b)
		return false
	}
	r.metrics.addRouted(shape, b.name)
	copyResponse(w, resp)
	return true
}

// copyResponse relays status, content type and body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// ---- Plan export/import and catalog passthrough ----

// handleExportPlans proxies to the planning tier — the authoritative plan
// cache (replicas only ever hold subsets it pushed).
func (r *Router) handleExportPlans(w http.ResponseWriter, req *http.Request) {
	r.proxyTo(w, req, r.planner, nil)
}

// proxyPlannerRead forwards a read-only endpoint to the planning tier,
// which shares the fleet's catalog.
func (r *Router) proxyPlannerRead(w http.ResponseWriter, req *http.Request) {
	r.proxyTo(w, req, r.planner, nil)
}

// handleShapes aggregates per-shape telemetry across the fleet: every
// replica's /v1/shapes entries, each tagged with the replica that served
// it. Because routing is shape-disjoint, concatenation IS the merge — no
// digest appears under two replicas. Unreachable replicas are skipped
// (and marked down) so the fleet view degrades instead of failing.
func (r *Router) handleShapes(w http.ResponseWriter, req *http.Request) {
	type taggedShape = map[string]any
	out := struct {
		Shapes []taggedShape `json:"shapes"`
	}{Shapes: []taggedShape{}}
	for _, b := range r.replicas {
		if !b.isHealthy() {
			continue
		}
		ctx, cancel := context.WithTimeout(req.Context(), r.timeout)
		sub, err := http.NewRequestWithContext(ctx, http.MethodGet, b.name+"/v1/shapes", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := r.client.Do(sub)
		if err != nil {
			cancel()
			r.markDown(b)
			continue
		}
		var view struct {
			Shapes []taggedShape `json:"shapes"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, maxProxyBodyBytes)).Decode(&view)
		resp.Body.Close()
		cancel()
		if err != nil {
			r.logf("router: bad /v1/shapes from %s: %v", b.name, err)
			continue
		}
		for _, sh := range view.Shapes {
			sh["replica"] = b.name
			out.Shapes = append(out.Shapes, sh)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleImportPlans broadcasts an external snapshot to the planning tier
// and every healthy replica, answering with the planner's verdict.
func (r *Router) handleImportPlans(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	r.broadcast(w, req, body)
}

// handleMutation broadcasts a catalog mutation and invalidates the
// planned-shape memo: signatures embed catalog cardinalities, so plans for
// the new catalog state must be re-shipped shape by shape.
func (r *Router) handleMutation(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	r.broadcast(w, req, body)
	r.plannedMu.Lock()
	r.planned = map[string]struct{}{}
	r.plannedMu.Unlock()
}

// broadcast applies the request to the planning tier first (it must know
// the catalog before it can plan for it), then to every routable replica,
// and relays the planner's response. A replica that misses a mutation the
// planner applied — transport error, or any answer when the planner said
// 2xx and the replica did not — is serving a diverged catalog, so it is
// quarantined ON THE SPOT: marked down AND forced stale, which keeps the
// probe loop from auto-rejoining it on the next 200 /healthz. Its epoch
// stays behind the planner's, so it remains quarantined until a catalog
// resync brings the epochs back together.
func (r *Router) broadcast(w http.ResponseWriter, req *http.Request, body []byte) {
	plannerResp, err := r.send(req, r.planner, body)
	if err != nil {
		writeError(w, http.StatusBadGateway, "planner_unreachable", err)
		return
	}
	plannerApplied := plannerResp.status < 300
	for _, b := range r.routableReplicas() {
		resp, err := r.send(req, b.name, body)
		if err != nil {
			r.markDown(b)
			r.quarantine(b, fmt.Sprintf("broadcast %s %s failed: %v", req.Method, req.URL.Path, err), plannerApplied)
			continue
		}
		if resp.status != plannerResp.status {
			r.logf("router: broadcast %s %s: %s answered %d, planner %d", req.Method, req.URL.Path, b.name, resp.status, plannerResp.status)
			if plannerApplied && resp.status >= 300 {
				r.quarantine(b, fmt.Sprintf("broadcast %s %s answered %d while the planner applied it", req.Method, req.URL.Path, resp.status), true)
			}
		}
	}
	if ct := plannerResp.contentType; ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(plannerResp.status)
	w.Write(plannerResp.body)
}

// quarantine forces a replica out of rotation after a missed broadcast.
// When the planner did not actually apply the mutation either, nothing
// diverged — the replica is only logged, not quarantined.
func (r *Router) quarantine(b *backend, why string, diverged bool) {
	if !diverged {
		r.logf("router: replica %s: %s (planner rejected it too; catalogs agree)", b.name, why)
		return
	}
	if b.forceStale() {
		r.logf("router: replica %s: %s; quarantined until its catalog is resynced", b.name, why)
		r.metrics.addQuarantine(b.name)
	}
}

type sentResponse struct {
	status      int
	contentType string
	body        []byte
}

// send replays the request against one base URL, buffering the response.
func (r *Router) send(req *http.Request, base string, body []byte) (*sentResponse, error) {
	ctx, cancel := context.WithTimeout(req.Context(), r.timeout)
	defer cancel()
	u := base + req.URL.Path
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBodyBytes))
	if err != nil {
		return nil, err
	}
	return &sentResponse{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: b}, nil
}

// proxyTo forwards one request to a single base URL with no failover.
func (r *Router) proxyTo(w http.ResponseWriter, req *http.Request, base string, body []byte) {
	resp, err := r.send(req, base, body)
	if err != nil {
		writeError(w, http.StatusBadGateway, "planner_unreachable", err)
		return
	}
	if ct := resp.contentType; ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// ---- Router introspection ----

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (r *Router) handleInfo(w http.ResponseWriter, req *http.Request) {
	type replicaInfo struct {
		Name         string `json:"name"`
		Healthy      bool   `json:"healthy"`
		Quarantined  bool   `json:"quarantined"`
		CatalogEpoch uint64 `json:"catalog_epoch"`
		Watermark    uint64 `json:"watermark"`
	}
	r.plannedMu.Lock()
	planned := len(r.planned)
	r.plannedMu.Unlock()
	r.pushMu.Lock()
	reps := make([]replicaInfo, len(r.replicas))
	for i, b := range r.replicas {
		healthy, epoch, stale := b.state()
		reps[i] = replicaInfo{
			Name:         b.name,
			Healthy:      healthy,
			Quarantined:  stale,
			CatalogEpoch: epoch,
			Watermark:    r.watermarks[b.name],
		}
	}
	r.pushMu.Unlock()
	sort.Slice(reps, func(i, j int) bool { return reps[i].Name < reps[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{
		"role":                  "router",
		"planner":               r.planner,
		"planner_catalog_epoch": r.plannerEpoch.Load(),
		"replicas":              reps,
		"planned_shapes":        planned,
		"uptime_seconds":        time.Since(r.start).Seconds(),
	})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.metrics.write(w, r)
}
