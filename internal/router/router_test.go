package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const triangleSrc = `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`

// fakePlanner answers the planner interactions the router performs:
// /v1/plan warm-ups (scriptably hangable), /v1/plans delta pulls
// (scriptable body, empty by default — plan CONTENT is exercised by the
// in-process fleet test; these unit tests isolate routing and failover)
// and catalog mutations, which advance a catalog epoch reported on
// /healthz like the real pandad.
type fakePlanner struct {
	ts    *httptest.Server
	warms atomic.Int64
	epoch atomic.Uint64
	// planMode: "ok" answers warm-ups immediately, "hang" sleeps past the
	// router's proxy deadline.
	planMode atomic.Value
	// plansBody is the GET /v1/plans response, for scripting cache clocks.
	plansBody atomic.Value
}

func newFakePlanner(t *testing.T) *fakePlanner {
	t.Helper()
	f := &fakePlanner{}
	f.planMode.Store("ok")
	f.plansBody.Store(`{"format":"panda-plan-cache","version":1,"clock":0,"entries":[]}`)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","catalog_epoch":%d}`, f.epoch.Load())
	})
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		if f.planMode.Load() == "hang" {
			time.Sleep(2 * time.Second)
		}
		f.warms.Add(1)
		io.WriteString(w, `{"mode":"full","width":"1"}`)
	})
	mux.HandleFunc("GET /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, f.plansBody.Load().(string))
	})
	mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.epoch.Add(1)
		w.WriteHeader(http.StatusCreated)
		io.WriteString(w, `{"name":"R","arity":2}`)
	})
	mux.HandleFunc("POST /v1/relations/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.epoch.Add(1)
		io.WriteString(w, `{"rows":1}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// fakeReplica is a stub backend whose /v1/query behaviour is scripted.
type fakeReplica struct {
	ts      *httptest.Server
	queries atomic.Int64
	plans   atomic.Int64  // PUT /v1/plans imports received
	epoch   atomic.Uint64 // catalog epoch reported on /healthz
	// mode: "ok" answers 200 with the replica's URL in the body, "busy"
	// answers 503, "hang" sleeps past any proxy deadline.
	mode atomic.Value
	// mutMode: "ok" applies catalog mutations (epoch advances), "fail"
	// answers 500 without applying — the replica misses the broadcast.
	mutMode atomic.Value
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.mode.Store("ok")
	f.mutMode.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","catalog_epoch":%d}`, f.epoch.Load())
	})
	mux.HandleFunc("PUT /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		f.plans.Add(1)
		io.WriteString(w, `{"loaded":0,"skipped":0,"duplicates":0}`)
	})
	mutation := func(w http.ResponseWriter, r *http.Request, created bool) {
		io.Copy(io.Discard, r.Body)
		if f.mutMode.Load() == "fail" {
			w.WriteHeader(http.StatusInternalServerError)
			io.WriteString(w, `{"error":"disk on fire","code":"internal"}`)
			return
		}
		f.epoch.Add(1)
		if created {
			w.WriteHeader(http.StatusCreated)
		}
		io.WriteString(w, `{}`)
	}
	mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		mutation(w, r, true)
	})
	mux.HandleFunc("POST /v1/relations/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		mutation(w, r, false)
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		switch f.mode.Load() {
		case "busy":
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"server is shutting down","code":"shutting_down"}`)
		case "hang":
			time.Sleep(2 * time.Second)
		default:
			fmt.Fprintf(w, `{"ok":true,"served_by":%q}`, f.ts.URL)
		}
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// newTestRouter builds a router over the fakes with the loops effectively
// off (hour-long periods) so tests drive every transition explicitly.
func newTestRouter(t *testing.T, planner string, replicas ...*fakeReplica) *Router {
	t.Helper()
	names := make([]string, len(replicas))
	for i, f := range replicas {
		names[i] = f.ts.URL
	}
	r, err := New(Config{
		Replicas:     names,
		Planner:      planner,
		PushEvery:    time.Hour,
		ProbeEvery:   time.Hour,
		ProxyTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func postQuery(t *testing.T, base, src string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(fmt.Sprintf(`{"query":%q}`, src)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// rankedFakes orders the fakes by the router's own ranking for the
// triangle shape, so each test can script "the first choice" and "the
// second choice" deterministically despite httptest's random ports.
func rankedFakes(t *testing.T, fakes ...*fakeReplica) []*fakeReplica {
	t.Helper()
	shape, conj, err := shapeOf(triangleSrc, "")
	if err != nil || !conj {
		t.Fatal(err)
	}
	names := make([]string, len(fakes))
	byName := map[string]*fakeReplica{}
	for i, f := range fakes {
		names[i] = f.ts.URL
		byName[f.ts.URL] = f
	}
	out := make([]*fakeReplica, 0, len(fakes))
	for _, name := range Rank(names, shape) {
		out = append(out, byName[name])
	}
	return out
}

// TestRouterShapeAffinity: repeated queries for one shape land on one
// replica; the other replica never sees them.
func TestRouterShapeAffinity(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	for i := 0; i < 5; i++ {
		code, body := postQuery(t, ts.URL, triangleSrc)
		if code != http.StatusOK || !strings.Contains(body, ranked[0].ts.URL) {
			t.Fatalf("query %d: %d %s, want 200 from %s", i, code, body, ranked[0].ts.URL)
		}
	}
	if got := ranked[0].queries.Load(); got != 5 {
		t.Fatalf("first-ranked replica served %d queries, want 5", got)
	}
	if got := ranked[1].queries.Load(); got != 0 {
		t.Fatalf("second-ranked replica served %d queries, want 0", got)
	}
	// The planner was warmed exactly once: the shape memo absorbs repeats.
	if got := planner.warms.Load(); got != 1 {
		t.Fatalf("planner warmed %d times, want 1", got)
	}
}

// TestRouterFailoverOn503: the first-ranked replica answering 503 (a
// draining pandad) is marked down and the request retries on the next-
// ranked healthy replica — the client sees one clean 200.
func TestRouterFailoverOn503(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("busy")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("failover query: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
	// The downed replica is remembered: the next request goes straight to
	// the survivor, no second 503 round-trip.
	before := ranked[0].queries.Load()
	if code, _ := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK {
		t.Fatalf("post-failover query: %d", code)
	}
	if got := ranked[0].queries.Load(); got != before {
		t.Fatalf("downed replica was tried again (%d → %d requests)", before, got)
	}

	m := metricsText(t, ts.URL)
	if !strings.Contains(m, fmt.Sprintf("panda_router_failovers_total{replica=%q} 1", ranked[0].ts.URL)) {
		t.Fatalf("metrics missing the failover count:\n%s", m)
	}
	if !strings.Contains(m, "panda_router_retries_total 1") {
		t.Fatalf("metrics missing the bounded retry count:\n%s", m)
	}
}

// TestRouterFailoverOnTimeout: a hanging replica trips the per-attempt
// proxy deadline and fails over like a transport error.
func TestRouterFailoverOnTimeout(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("hang")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("timeout failover: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
}

// TestRouterNoHealthyReplica: when every candidate is down the router
// answers 502 with the stable JSON code, not a hung request or a raw
// proxy error.
func TestRouterNoHealthyReplica(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	a.mode.Store("busy")
	b.mode.Store("busy")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusBadGateway {
		t.Fatalf("all-down query: %d %s, want 502", code, body)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &errBody); err != nil || errBody.Code != "no_healthy_replica" {
		t.Fatalf("all-down body %s, want code no_healthy_replica", body)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, "panda_router_no_healthy_replica_total 1") {
		t.Fatalf("metrics missing the 502 count:\n%s", m)
	}
}

// TestRouterRecoversViaProbe: a downed replica that starts answering
// /healthz again is restored by the probe loop and serves its shard again.
func TestRouterRecoversViaProbe(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("busy")
	if code, _ := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK {
		t.Fatal("failover request failed")
	}
	ranked[0].mode.Store("ok")
	r.probeAll() // the loop is parked at an hour; drive one round by hand
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[0].ts.URL) {
		t.Fatalf("post-recovery query: %d %s, want 200 from the restored first choice %s", code, body, ranked[0].ts.URL)
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postRaw sends one request through the router without a test fatal on
// HTTP-level errors, for tests that assert on the status code directly.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRouterQuarantinesReplicaThatMissedBroadcast: a replica that fails a
// catalog-mutation broadcast (here: answers 500 while the planner applied
// the mutation) is serving a diverged catalog. It must be quarantined on
// the spot AND must NOT be auto-rejoined by the probe loop while its
// /healthz answers 200 — its catalog epoch still lags the planner's. Only
// once the epochs agree again (a resync) does it return to rotation.
func TestRouterQuarantinesReplicaThatMissedBroadcast(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mutMode.Store("fail")
	code, body := postRaw(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`)
	if code != http.StatusCreated {
		t.Fatalf("mutation through the router: %d %s, want the planner's 201", code, body)
	}

	// The first-ranked replica missed the mutation: its shard must fail
	// over even though it is live.
	for i := 0; i < 3; i++ {
		code, body := postQuery(t, ts.URL, triangleSrc)
		if code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
			t.Fatalf("query %d after missed broadcast: %d %s, want 200 from %s", i, code, body, ranked[1].ts.URL)
		}
	}
	if got := ranked[0].queries.Load(); got != 0 {
		t.Fatalf("diverged replica served %d queries, want 0", got)
	}

	// The probe loop must NOT rejoin it: /healthz is 200 but the catalog
	// epoch (0) lags the planner's (1).
	r.probeAll()
	r.probeAll()
	if code, body := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("post-probe query: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
	if got := ranked[0].queries.Load(); got != 0 {
		t.Fatalf("probe loop rejoined a diverged replica (%d queries served)", got)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, fmt.Sprintf("panda_router_quarantines_total{replica=%q} 1", ranked[0].ts.URL)) {
		t.Fatalf("metrics missing the quarantine count:\n%s", m)
	}
	if !strings.Contains(m, fmt.Sprintf("panda_router_replica_routable{replica=%q} 0", ranked[0].ts.URL)) {
		t.Fatalf("metrics still report the diverged replica routable:\n%s", m)
	}

	// Resync: the replica's catalog catches up (epoch matches again) and
	// the next probe round restores it.
	ranked[0].mutMode.Store("ok")
	ranked[0].epoch.Store(planner.epoch.Load())
	r.probeAll()
	if code, body := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK || !strings.Contains(body, ranked[0].ts.URL) {
		t.Fatalf("post-resync query: %d %s, want 200 from the restored %s", code, body, ranked[0].ts.URL)
	}
}

// TestRouterQuarantinesStaleRestartViaProbe: a replica that restarts with
// a pre-mutation catalog (epoch reset) answers /healthz 200 immediately,
// but the probe loop must keep it out of rotation — after one round of
// grace for the probe-during-broadcast race — because its epoch lags the
// planner's.
func TestRouterQuarantinesStaleRestartViaProbe(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	// One mutation lands everywhere: epochs agree at 1.
	if code, body := postRaw(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("mutation: %d %s", code, body)
	}
	ranked := rankedFakes(t, a, b)

	// "Restart" the first-ranked replica with its original (stale) catalog.
	ranked[0].epoch.Store(0)
	backend := r.backendByName(ranked[0].ts.URL)
	r.probeAll() // round 1: within grace, still routable
	if !backend.isRoutable() {
		t.Fatal("replica quarantined on the first mismatched probe; grace round missing")
	}
	r.probeAll() // round 2: quarantined
	if backend.isRoutable() {
		t.Fatal("replica with a stale catalog epoch was left in rotation")
	}
	if code, body := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("query after stale restart: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
	if got := ranked[0].queries.Load(); got != 0 {
		t.Fatalf("stale replica served %d queries, want 0", got)
	}
}

// TestRouterPlannerClockRegressionReships: the planner's cache clock is
// in-memory and restarts near 0, while router watermarks only advance. A
// pull that comes back with a clock BELOW the watermark means the planner
// restarted — the router must reset its watermarks and re-ship, not skip
// every delta forever (which would silently push replicas back onto their
// own LP solves).
func TestRouterPlannerClockRegressionReships(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)

	push := func() {
		r.pushMu.Lock()
		r.pullAndPush(context.Background())
		r.pushMu.Unlock()
	}
	watermark := func(f *fakeReplica) uint64 {
		r.pushMu.Lock()
		defer r.pushMu.Unlock()
		return r.watermarks[f.ts.URL]
	}

	planner.plansBody.Store(`{"format":"panda-plan-cache","version":1,"clock":5,"entries":[{"k":1}]}`)
	push()
	if a.plans.Load() != 1 || b.plans.Load() != 1 {
		t.Fatalf("first delta: %d/%d imports, want 1/1", a.plans.Load(), b.plans.Load())
	}
	if w := watermark(a); w != 5 {
		t.Fatalf("watermark %d after first delta, want 5", w)
	}

	// The planner restarts: its clock begins again at 1 with one freshly
	// planned entry that the fleet has never seen.
	planner.plansBody.Store(`{"format":"panda-plan-cache","version":1,"clock":1,"entries":[{"k":2}]}`)
	push()
	if a.plans.Load() != 2 || b.plans.Load() != 2 {
		t.Fatalf("post-restart delta was not re-shipped: %d/%d imports, want 2/2", a.plans.Load(), b.plans.Load())
	}
	if w := watermark(a); w != 1 {
		t.Fatalf("watermark %d after the planner restart, want 1", w)
	}
}

// TestRouterOversizedBody413: a /v1/query body over the proxy cap answers
// 413 with its own stable code, not a generic 400.
func TestRouterOversizedBody413(t *testing.T) {
	planner := newFakePlanner(t)
	a := newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(make([]byte, maxProxyBodyBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", resp.StatusCode, body)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Code != "body_too_large" {
		t.Fatalf("oversized body answer %s, want code body_too_large", body)
	}
	if got := a.queries.Load(); got != 0 {
		t.Fatalf("oversized body reached the replica (%d queries)", got)
	}
}

// TestRouterMemoizedShapeUnaffectedByHungWarmup: a hung planner connection
// during a first-sighting warm-up must not head-of-line block queries for
// shapes that are already memoized — warm-ups are single-flighted per
// shape, not serialized behind one global lock.
func TestRouterMemoizedShapeUnaffectedByHungWarmup(t *testing.T) {
	planner := newFakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.ts.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	// Memoize the triangle while the planner is responsive.
	if code, _ := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK {
		t.Fatal("memoizing query failed")
	}

	// Now the planner hangs on warm-ups, and a NEW shape arrives: its
	// warm-up stalls until the router-side deadline.
	planner.planMode.Store("hang")
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"query":"Q(X,Z) :- R(X,Y), S(Y,Z)."}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the warm-up get in flight

	// The memoized shape must answer promptly regardless.
	client := &http.Client{Timeout: 250 * time.Millisecond}
	resp, err := client.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query":%q}`, triangleSrc)))
	if err != nil {
		t.Fatalf("memoized query blocked behind the hung warm-up: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("memoized query during warm-up: %d", resp.StatusCode)
	}
	<-stalled
}
