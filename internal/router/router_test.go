package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const triangleSrc = `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`

// fakePlanner answers the two planner interactions the router performs:
// /v1/plan warm-ups and /v1/plans delta pulls (always empty here — plan
// CONTENT is exercised by the in-process fleet test; these unit tests
// isolate routing and failover).
func fakePlanner(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var warms atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		warms.Add(1)
		io.WriteString(w, `{"mode":"full","width":"1"}`)
	})
	mux.HandleFunc("GET /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"format":"panda-plan-cache","version":1,"clock":0,"entries":[]}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &warms
}

// fakeReplica is a stub backend whose /v1/query behaviour is scripted.
type fakeReplica struct {
	ts      *httptest.Server
	queries atomic.Int64
	// mode: "ok" answers 200 with the replica's URL in the body, "busy"
	// answers 503, "hang" sleeps past any proxy deadline.
	mode atomic.Value
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.mode.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("PUT /v1/plans", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, `{"loaded":0,"skipped":0,"duplicates":0}`)
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		switch f.mode.Load() {
		case "busy":
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"server is shutting down","code":"shutting_down"}`)
		case "hang":
			time.Sleep(2 * time.Second)
		default:
			fmt.Fprintf(w, `{"ok":true,"served_by":%q}`, f.ts.URL)
		}
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// newTestRouter builds a router over the fakes with the loops effectively
// off (hour-long periods) so tests drive every transition explicitly.
func newTestRouter(t *testing.T, planner string, replicas ...*fakeReplica) *Router {
	t.Helper()
	names := make([]string, len(replicas))
	for i, f := range replicas {
		names[i] = f.ts.URL
	}
	r, err := New(Config{
		Replicas:     names,
		Planner:      planner,
		PushEvery:    time.Hour,
		ProbeEvery:   time.Hour,
		ProxyTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func postQuery(t *testing.T, base, src string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(fmt.Sprintf(`{"query":%q}`, src)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// rankedFakes orders the fakes by the router's own ranking for the
// triangle shape, so each test can script "the first choice" and "the
// second choice" deterministically despite httptest's random ports.
func rankedFakes(t *testing.T, fakes ...*fakeReplica) []*fakeReplica {
	t.Helper()
	shape, conj, err := shapeOf(triangleSrc, "")
	if err != nil || !conj {
		t.Fatal(err)
	}
	names := make([]string, len(fakes))
	byName := map[string]*fakeReplica{}
	for i, f := range fakes {
		names[i] = f.ts.URL
		byName[f.ts.URL] = f
	}
	out := make([]*fakeReplica, 0, len(fakes))
	for _, name := range Rank(names, shape) {
		out = append(out, byName[name])
	}
	return out
}

// TestRouterShapeAffinity: repeated queries for one shape land on one
// replica; the other replica never sees them.
func TestRouterShapeAffinity(t *testing.T) {
	planner, warms := fakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	for i := 0; i < 5; i++ {
		code, body := postQuery(t, ts.URL, triangleSrc)
		if code != http.StatusOK || !strings.Contains(body, ranked[0].ts.URL) {
			t.Fatalf("query %d: %d %s, want 200 from %s", i, code, body, ranked[0].ts.URL)
		}
	}
	if got := ranked[0].queries.Load(); got != 5 {
		t.Fatalf("first-ranked replica served %d queries, want 5", got)
	}
	if got := ranked[1].queries.Load(); got != 0 {
		t.Fatalf("second-ranked replica served %d queries, want 0", got)
	}
	// The planner was warmed exactly once: the shape memo absorbs repeats.
	if got := warms.Load(); got != 1 {
		t.Fatalf("planner warmed %d times, want 1", got)
	}
}

// TestRouterFailoverOn503: the first-ranked replica answering 503 (a
// draining pandad) is marked down and the request retries on the next-
// ranked healthy replica — the client sees one clean 200.
func TestRouterFailoverOn503(t *testing.T) {
	planner, _ := fakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("busy")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("failover query: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
	// The downed replica is remembered: the next request goes straight to
	// the survivor, no second 503 round-trip.
	before := ranked[0].queries.Load()
	if code, _ := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK {
		t.Fatalf("post-failover query: %d", code)
	}
	if got := ranked[0].queries.Load(); got != before {
		t.Fatalf("downed replica was tried again (%d → %d requests)", before, got)
	}

	m := metricsText(t, ts.URL)
	if !strings.Contains(m, fmt.Sprintf("panda_router_failovers_total{replica=%q} 1", ranked[0].ts.URL)) {
		t.Fatalf("metrics missing the failover count:\n%s", m)
	}
	if !strings.Contains(m, "panda_router_retries_total 1") {
		t.Fatalf("metrics missing the bounded retry count:\n%s", m)
	}
}

// TestRouterFailoverOnTimeout: a hanging replica trips the per-attempt
// proxy deadline and fails over like a transport error.
func TestRouterFailoverOnTimeout(t *testing.T) {
	planner, _ := fakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("hang")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[1].ts.URL) {
		t.Fatalf("timeout failover: %d %s, want 200 from %s", code, body, ranked[1].ts.URL)
	}
}

// TestRouterNoHealthyReplica: when every candidate is down the router
// answers 502 with the stable JSON code, not a hung request or a raw
// proxy error.
func TestRouterNoHealthyReplica(t *testing.T) {
	planner, _ := fakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	a.mode.Store("busy")
	b.mode.Store("busy")
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusBadGateway {
		t.Fatalf("all-down query: %d %s, want 502", code, body)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &errBody); err != nil || errBody.Code != "no_healthy_replica" {
		t.Fatalf("all-down body %s, want code no_healthy_replica", body)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, "panda_router_no_healthy_replica_total 1") {
		t.Fatalf("metrics missing the 502 count:\n%s", m)
	}
}

// TestRouterRecoversViaProbe: a downed replica that starts answering
// /healthz again is restored by the probe loop and serves its shard again.
func TestRouterRecoversViaProbe(t *testing.T) {
	planner, _ := fakePlanner(t)
	a, b := newFakeReplica(t), newFakeReplica(t)
	r := newTestRouter(t, planner.URL, a, b)
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)

	ranked := rankedFakes(t, a, b)
	ranked[0].mode.Store("busy")
	if code, _ := postQuery(t, ts.URL, triangleSrc); code != http.StatusOK {
		t.Fatal("failover request failed")
	}
	ranked[0].mode.Store("ok")
	r.probeAll() // the loop is parked at an hour; drive one round by hand
	code, body := postQuery(t, ts.URL, triangleSrc)
	if code != http.StatusOK || !strings.Contains(body, ranked[0].ts.URL) {
		t.Fatalf("post-recovery query: %d %s, want 200 from the restored first choice %s", code, body, ranked[0].ts.URL)
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
