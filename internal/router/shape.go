package router

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"panda"
	"panda/internal/plan"
	"panda/internal/query"
)

// The router shards by query SHAPE, and it must name a query's shape
// without the catalog (it has no relations, no cardinalities) and without
// an LP solve. The trick is that the renaming-invariant canonicalization
// from internal/plan is a pure function of the parsed query and its
// declared constraints — a dry run of the same permutation search the
// planner's cache key uses, minus the completed per-atom cardinality
// constraints the replicas add from their (identical, fleet-wide) catalog.
// Two queries with the same execution-time signature digest therefore
// always compute the same routing key here, so each execution digest lands
// on exactly one replica: the shard-affinity invariant the e2e asserts.
//
// Disjunctive rules have no canonical signature (they are planned per rule,
// not cached by shape); they are routed by a hash of their normalized text,
// which is still deterministic across routers and sticky per rule.

// shapeOf computes the routing key for a query text under a mode string
// ("", auto, full, fhtw, subw). The boolean reports whether the query is
// conjunctive — only conjunctive shapes participate in plan shipping.
func shapeOf(src, mode string) (key string, conjunctive bool, err error) {
	m, err := parseMode(mode)
	if err != nil {
		return "", false, err
	}
	res, err := query.Parse(src)
	if err != nil {
		return "", false, err
	}
	if res.Conj == nil {
		h := fnv.New64a()
		h.Write([]byte(strings.TrimSpace(src)))
		return fmt.Sprintf("rule:%016x", h.Sum64()), false, nil
	}
	sig, err := plan.Canonicalize(res.Conj, res.Constraints, m)
	if err != nil {
		return "", false, err
	}
	return panda.SignatureDigest(sig.Key), true, nil
}

func parseMode(s string) (plan.Mode, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return plan.ModeAuto, nil
	case "full":
		return plan.ModeFull, nil
	case "fhtw":
		return plan.ModeFhtw, nil
	case "subw":
		return plan.ModeSubw, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want auto, full, fhtw or subw)", s)
}

// shapeCache memoizes (query text, mode) → routing shape so steady-state
// traffic skips the canonicalization permutation search, mirroring the
// replicas' exact-fingerprint fast path. Bounded LRU; safe for concurrent
// use.
type shapeCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	index map[string]*list.Element
}

type shapeEntry struct {
	text        string
	key         string
	conjunctive bool
}

// defaultShapeCacheSize bounds the router's text→shape memo table.
const defaultShapeCacheSize = 4096

func newShapeCache(capacity int) *shapeCache {
	if capacity <= 0 {
		capacity = defaultShapeCacheSize
	}
	return &shapeCache{cap: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

// shape resolves src+mode through the memo table, canonicalizing on a miss.
func (c *shapeCache) shape(src, mode string) (string, bool, error) {
	memoKey := mode + "\x00" + src
	c.mu.Lock()
	if el, ok := c.index[memoKey]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*shapeEntry)
		key, conj := ent.key, ent.conjunctive
		c.mu.Unlock()
		return key, conj, nil
	}
	c.mu.Unlock()

	key, conj, err := shapeOf(src, mode)
	if err != nil {
		return "", false, err
	}
	c.mu.Lock()
	if _, dup := c.index[memoKey]; !dup {
		c.index[memoKey] = c.ll.PushFront(&shapeEntry{text: memoKey, key: key, conjunctive: conj})
		for c.ll.Len() > c.cap {
			victim := c.ll.Back()
			c.ll.Remove(victim)
			delete(c.index, victim.Value.(*shapeEntry).text)
		}
	}
	c.mu.Unlock()
	return key, conj, nil
}
