package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"panda"
)

// BenchmarkServerQuery measures steady-state request throughput on the hot
// path: statement-cache hit, plan-cache hit (zero LP solves), execute,
// stream. Run with -benchtime to taste; CI runs it once as a smoke test.
func BenchmarkServerQuery(b *testing.B) {
	db := panda.Open()
	defer db.Close()
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(7, &q.Schema, 60, 12)
	for i, a := range q.Schema.Atoms {
		if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil && !errors.Is(err, panda.ErrRelationExists) {
			b.Fatal(err)
		}
		if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(Config{DB: db}))
	defer ts.Close()

	body := fmt.Sprintf(`{"query":%q}`, `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`)
	do := func() error {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // pay the one-time planning cost up front
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := do(); err != nil {
				// Fatal must not be called from a RunParallel worker.
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if st := db.PlannerStats(); st.Misses != 1 {
		b.Fatalf("benchmark traffic missed the plan cache: %v", st)
	}
}
