package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"panda"
)

// BenchmarkServerQuery measures steady-state request throughput on the hot
// path: statement-cache hit, plan-cache hit (zero LP solves), execute,
// stream. Run with -benchtime to taste; CI runs it once as a smoke test.
func BenchmarkServerQuery(b *testing.B) {
	db := panda.Open()
	defer db.Close()
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(7, &q.Schema, 60, 12)
	for i, a := range q.Schema.Atoms {
		if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil && !errors.Is(err, panda.ErrRelationExists) {
			b.Fatal(err)
		}
		if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(Config{DB: db}))
	defer ts.Close()

	body := fmt.Sprintf(`{"query":%q}`, `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`)
	do := func() error {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // pay the one-time planning cost up front
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := do(); err != nil {
				// Fatal must not be called from a RunParallel worker.
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if st := db.PlannerStats(); st.Misses != 1 {
		b.Fatalf("benchmark traffic missed the plan cache: %v", st)
	}
}

// BenchmarkMetricsOverhead isolates the cost the observability layer adds
// to one served query: the stage-timing clock reads plus the
// observe/observeQuery bookkeeping (histogram buckets, shape-table LRU).
// Engine-only measures the same query path through the facade with
// timings off — the delta between the two sub-benchmarks is the
// instrumentation tax, which must stay in the noise next to execution.
func BenchmarkMetricsOverhead(b *testing.B) {
	q := panda.TriangleQuery()
	src := `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`
	setup := func(b *testing.B) *panda.DB {
		b.Helper()
		db := panda.Open()
		b.Cleanup(func() { db.Close() })
		ins := panda.RandomInstance(7, &q.Schema, 60, 12)
		for i, a := range q.Schema.Atoms {
			if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil && !errors.Is(err, panda.ErrRelationExists) {
				b.Fatal(err)
			}
			if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	b.Run("engine-only", func(b *testing.B) {
		db := setup(b)
		st, err := db.Prepare(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Query(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Query(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		db := setup(b)
		srv := New(Config{DB: db})
		st, err := db.Prepare(src)
		if err != nil {
			b.Fatal(err)
		}
		run := func() {
			res, err := st.Query(panda.WithStageTimings(true))
			if err != nil {
				b.Fatal(err)
			}
			srv.metrics.observeQuery(res.Signature, res.Mode.String(), res.Size(), 0, false)
			srv.metrics.observe("query", http.StatusOK, 0)
		}
		run()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}
