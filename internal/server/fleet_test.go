package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"panda"
)

// infoJSON mirrors the /v1/info body the fleet tier consumes.
type infoJSON struct {
	Name          string  `json:"name"`
	FormatVersion int     `json:"format_version"`
	CatalogEpoch  uint64  `json:"catalog_epoch"`
	PlanClock     uint64  `json:"plan_clock"`
	PlansCached   int     `json:"plans_cached"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Planner       struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		LPSolves      uint64 `json:"lp_solves"`
		LPSolvesSaved uint64 `json:"lp_solves_saved"`
	} `json:"planner"`
	Replans struct {
		Keys     uint64 `json:"keys"`
		LPSolves uint64 `json:"lp_solves"`
	} `json:"replans"`
}

func getInfo(t *testing.T, base string) infoJSON {
	t.Helper()
	code, body := get(t, base+"/v1/info")
	if code != http.StatusOK {
		t.Fatalf("/v1/info: %d %s", code, body)
	}
	var info infoJSON
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/v1/info is not valid JSON: %v\n%s", err, body)
	}
	return info
}

// TestHealthzAndInfo: the probe pair the router depends on. /healthz is 200
// while serving and 503 once draining (the same admission gate every
// endpoint shares); /v1/info reports identity, format version and the plan
// clock that delta pulls are watermarked against.
func TestHealthzAndInfo(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Name: "replica-7"})
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while serving: %d %s", code, body)
	}

	info := getInfo(t, ts.URL)
	if info.Name != "replica-7" {
		t.Fatalf("info name %q, want replica-7", info.Name)
	}
	if info.FormatVersion != panda.PlanFormatVersion {
		t.Fatalf("info format_version %d, want %d", info.FormatVersion, panda.PlanFormatVersion)
	}
	if info.PlanClock != 0 || info.PlansCached != 0 {
		t.Fatalf("fresh server clock=%d cached=%d, want 0/0", info.PlanClock, info.PlansCached)
	}

	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)
	loadOverHTTP(t, ts.URL, &q.Schema, ins)
	if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	info = getInfo(t, ts.URL)
	if info.PlanClock != 1 || info.PlansCached != 1 || info.Planner.Misses != 1 {
		t.Fatalf("after one planned query: %+v, want clock=1 cached=1 misses=1", info)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"code":"shutting_down"`) {
		t.Fatalf("/healthz while draining: %d %s, want 503 shutting_down", code, body)
	}
}

// TestCatalogEpoch: the catalog epoch counts APPLIED mutations — create,
// insert, drop bump it; a rejected mutation and plain queries do not — and
// both /healthz and /v1/info report it. Two processes that answered the
// same broadcast sequence identically therefore report identical epochs,
// which is what lets the router quarantine a replica that missed one.
func TestCatalogEpoch(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	healthzEpoch := func() uint64 {
		t.Helper()
		code, body := get(t, ts.URL+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz: %d %s", code, body)
		}
		var hb struct {
			CatalogEpoch uint64 `json:"catalog_epoch"`
		}
		if err := json.Unmarshal([]byte(body), &hb); err != nil {
			t.Fatalf("/healthz body: %v\n%s", err, body)
		}
		return hb.CatalogEpoch
	}
	if e := healthzEpoch(); e != 0 {
		t.Fatalf("fresh server catalog epoch %d, want 0", e)
	}
	if code, body := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	if e := healthzEpoch(); e != 1 {
		t.Fatalf("epoch after create %d, want 1", e)
	}
	if code, body := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2]]}`); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, body)
	}
	if e := healthzEpoch(); e != 2 {
		t.Fatalf("epoch after insert %d, want 2", e)
	}
	// A REJECTED mutation applied nothing and must not advance the epoch.
	if code, _ := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", code)
	}
	// Queries are not mutations.
	if code, body := post(t, ts.URL+"/v1/query", `{"query":"Q(A,B) :- R(A,B)."}`); code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	if e := healthzEpoch(); e != 2 {
		t.Fatalf("epoch after rejected create + query %d, want 2", e)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/relations/R", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop: %d, want 204", resp.StatusCode)
	}
	if e := healthzEpoch(); e != 3 {
		t.Fatalf("epoch after drop %d, want 3", e)
	}
	if info := getInfo(t, ts.URL); info.CatalogEpoch != 3 {
		t.Fatalf("/v1/info catalog_epoch %d, want 3", info.CatalogEpoch)
	}
}

// TestExportPlansSince: GET /v1/plans?since=<clock> returns only the
// entries installed after that clock, and the envelope's clock is the next
// watermark — so a puller that chains envelope clocks sees each plan
// exactly once.
func TestExportPlansSince(t *testing.T) {
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)
	_, ts, _ := newTestServer(t, Config{})
	loadOverHTTP(t, ts.URL, &q.Schema, ins)

	if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("first shape: %d %s", code, raw)
	}
	c1 := getInfo(t, ts.URL).PlanClock

	// A second, different shape (a path join) installs a second plan.
	if code, raw := post(t, ts.URL+"/v1/query", `{"query":"Q(X,Z) :- R(X,Y), S(Y,Z)."}`); code != http.StatusOK {
		t.Fatalf("second shape: %d %s", code, raw)
	}

	type envJSON struct {
		Clock   uint64            `json:"clock"`
		Entries []json.RawMessage `json:"entries"`
	}
	fetch := func(url string) envJSON {
		t.Helper()
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("export %s: %d %s", url, code, body)
		}
		var env envJSON
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatal(err)
		}
		return env
	}
	full := fetch(ts.URL + "/v1/plans")
	if len(full.Entries) != 2 || full.Clock != 2 {
		t.Fatalf("full export: %d entries clock %d, want 2/2", len(full.Entries), full.Clock)
	}
	delta := fetch(fmt.Sprintf("%s/v1/plans?since=%d", ts.URL, c1))
	if len(delta.Entries) != 1 || delta.Clock != 2 {
		t.Fatalf("delta since %d: %d entries clock %d, want 1/2", c1, len(delta.Entries), delta.Clock)
	}
	empty := fetch(fmt.Sprintf("%s/v1/plans?since=%d", ts.URL, delta.Clock))
	if len(empty.Entries) != 0 {
		t.Fatalf("delta at the watermark returned %d entries, want 0", len(empty.Entries))
	}

	if code, body := get(t, ts.URL+"/v1/plans?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d %s, want 400", code, body)
	}
}

// TestImportVersionMismatchRepansInBackground: the cross-version migration
// shim end to end. A snapshot with a bumped FormatVersion is rejected with
// the dropped signature keys listed, the server re-plans those keys in the
// background, and once the rebuild lands the original query (planned under
// the OLD snapshot) is a pure cache hit — no traffic-time LP solves.
func TestImportVersionMismatchRepansInBackground(t *testing.T) {
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)
	_, tsA, _ := newTestServer(t, Config{})
	loadOverHTTP(t, tsA.URL, &q.Schema, ins)
	if code, raw := post(t, tsA.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("seed query: %d %s", code, raw)
	}
	code, snapshot := get(t, tsA.URL+"/v1/plans")
	if code != http.StatusOK {
		t.Fatal("export failed")
	}
	var env cacheSnapshotJSON
	if err := json.Unmarshal([]byte(snapshot), &env); err != nil {
		t.Fatal(err)
	}
	env.Version = panda.PlanFormatVersion + 1
	bad, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}

	_, tsB, dbB := newTestServer(t, Config{})
	loadOverHTTP(t, tsB.URL, &q.Schema, ins)
	code, body := putPlans(t, tsB.URL, string(bad))
	if code != http.StatusUnprocessableEntity || !strings.Contains(body, `"code":"plan_version"`) {
		t.Fatalf("import: %d %s, want 422 plan_version", code, body)
	}
	var resp struct {
		SkippedKeys []string `json:"skipped_keys"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.SkippedKeys) != 1 || resp.SkippedKeys[0] != env.Entries[0].Key {
		t.Fatalf("skipped_keys %q, want [%q]", resp.SkippedKeys, env.Entries[0].Key)
	}

	// The background replan is asynchronous; wait for it to land.
	deadline := time.Now().Add(10 * time.Second)
	var info infoJSON
	for {
		info = getInfo(t, tsB.URL)
		if info.Replans.Keys >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background replan never landed: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info.Replans.LPSolves == 0 || info.PlansCached != 1 {
		t.Fatalf("replan stats %+v, want lp_solves > 0 and one cached plan", info)
	}

	// The replanned signature now serves the original query — and a
	// renaming of it — with zero additional LP solves.
	lpBefore := dbB.PlannerStats().LPSolves
	for _, src := range []string{triangleSrc, `Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`} {
		if code, raw := post(t, tsB.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, src)); code != http.StatusOK {
			t.Fatalf("post-replan query %q: %d %s", src, code, raw)
		}
	}
	st := dbB.PlannerStats()
	if st.LPSolves != lpBefore || st.Hits < 2 {
		t.Fatalf("post-replan traffic was not free: lp %d→%d hits %d", lpBefore, st.LPSolves, st.Hits)
	}
}
