package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// metrics accumulates per-endpoint request counters and latency sums,
// rendered in the Prometheus text exposition format alongside the planner
// and statement-cache counters scraped live from the session. Everything is
// a counter (or a gauge derived from a live snapshot), so scrapes are cheap
// and the collector needs no histogram machinery.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64 // endpoint+status → count
	durSum   map[string]float64    // endpoint → total seconds
	durCount map[string]uint64     // endpoint → observations
}

type requestKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[requestKey]uint64{},
		durSum:   map[string]float64{},
		durCount: map[string]uint64{},
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	m.durSum[endpoint] += d.Seconds()
	m.durCount[endpoint]++
}

// write renders the full exposition. The Server passes in the live planner
// and statement-cache snapshots so the scrape reflects this instant, not
// the last request.
func (m *metrics) write(w io.Writer, s *Server) {
	st := s.db.PlannerStats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("panda_planner_hits_total", "Prepare calls answered from the plan cache (zero LP solves).", st.Hits)
	counter("panda_planner_misses_total", "Prepare calls that built a fresh plan.", st.Misses)
	counter("panda_planner_evictions_total", "Plans dropped by the cost-weighted eviction policy.", st.Evictions)
	counter("panda_planner_lp_solves_total", "Exact simplex solves performed across all plan builds.", st.LPSolves)
	counter("panda_planner_lp_solves_saved_total", "Simplex solves avoided by plan-cache hits.", st.LPSolvesSaved)
	counter("panda_planner_plans_built_total", "Plans constructed (misses, plus lost build races).", st.PlansBuilt)
	fmt.Fprintf(w, "# HELP panda_planner_cache_plans Plans currently held by the signature cache (including warm-loaded ones).\n# TYPE panda_planner_cache_plans gauge\npanda_planner_cache_plans %d\n", s.db.Planner().Len())

	entries, hits, misses := s.stmts.snapshot()
	fmt.Fprintf(w, "# HELP panda_stmt_cache_entries Prepared statements currently cached.\n# TYPE panda_stmt_cache_entries gauge\npanda_stmt_cache_entries %d\n", entries)
	counter("panda_stmt_cache_hits_total", "Query requests served by a cached statement.", hits)
	counter("panda_stmt_cache_misses_total", "Query requests that re-prepared their statement.", misses)

	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP panda_http_requests_total Requests served, by endpoint and status code.\n# TYPE panda_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "panda_http_requests_total{endpoint=%q,code=%q} %d\n", k.endpoint, strconv.Itoa(k.code), m.requests[k])
	}
	eps := make([]string, 0, len(m.durCount))
	for ep := range m.durCount {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(w, "# HELP panda_http_request_duration_seconds Request latency, by endpoint.\n# TYPE panda_http_request_duration_seconds summary\n")
	for _, ep := range eps {
		fmt.Fprintf(w, "panda_http_request_duration_seconds_sum{endpoint=%q} %g\n", ep, m.durSum[ep])
		fmt.Fprintf(w, "panda_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, m.durCount[ep])
	}
}
