package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// metrics accumulates the server's own telemetry: per-endpoint request
// counters, fixed-bucket latency histograms (HTTP and query-execution), and
// the per-shape table keyed by plan signature digest. The planner and
// statement-cache counters are scraped live from the session at render
// time. Scrapes never render while holding the lock: write snapshots the
// state under m.mu and releases it before touching the client's io.Writer,
// so a slow scraper cannot stall concurrent observe calls.
type metrics struct {
	mu        sync.Mutex
	requests  map[requestKey]uint64 // endpoint+status → count
	httpDur   map[string]*histogram // endpoint → request latency
	exec      histogram             // successful /v1/query execution latency
	truncated uint64                // responses truncated by max_rows
	shapes    *shapeTable           // top-K per-shape telemetry

	watchSubs    int64  // live /v1/watch subscriptions (gauge)
	watchDeltas  uint64 // delta lines streamed to subscribers
	watchResyncs uint64 // full-state resync lines streamed
}

type requestKey struct {
	endpoint string
	code     int
}

func newMetrics(shapeCap int) *metrics {
	return &metrics{
		requests: map[requestKey]uint64{},
		httpDur:  map[string]*histogram{},
		shapes:   newShapeTable(shapeCap),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	h, ok := m.httpDur[endpoint]
	if !ok {
		h = &histogram{}
		m.httpDur[endpoint] = h
	}
	h.observe(d.Seconds())
}

// observeQuery records one successful query execution against its shape.
func (m *metrics) observeQuery(digest, mode string, rows int, d time.Duration, truncated bool) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.exec.observe(sec)
	if truncated {
		m.truncated++
	}
	m.shapes.observe(digest, mode, uint64(rows), sec)
}

// watchOpened / watchClosed track the live-subscription gauge around a
// watch stream's lifetime.
func (m *metrics) watchOpened() {
	m.mu.Lock()
	m.watchSubs++
	m.mu.Unlock()
}

func (m *metrics) watchClosed() {
	m.mu.Lock()
	m.watchSubs--
	m.mu.Unlock()
}

// watchDelta counts one streamed delta line (and whether it was a resync).
func (m *metrics) watchDelta(resync bool) {
	m.mu.Lock()
	m.watchDeltas++
	if resync {
		m.watchResyncs++
	}
	m.mu.Unlock()
}

// shapeCapacity reports the top-K bound of the shape table; it is fixed at
// construction, so no lock is needed.
func (m *metrics) shapeCapacity() int { return m.shapes.cap }

// snapshotShapes exposes a consistent copy of the shape table for the
// /v1/shapes endpoint.
func (m *metrics) snapshotShapes() (shapes []*shapeStat, other *shapeStat, evicted uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shapes.snapshot()
}

// write renders the full exposition. The Server passes itself in so the
// planner and statement-cache gauges reflect this instant; the metrics
// state proper is deep-copied under the lock and rendered after release.
func (m *metrics) write(w io.Writer, s *Server) {
	// Live session counters: no m.mu involved.
	st := s.db.PlannerStats()
	plans := s.db.Planner().Len()
	entries, stmtHits, stmtMisses := s.stmts.snapshot()

	// Snapshot this collector's state; rendering happens after unlock so a
	// slow scraper never blocks concurrent observe calls.
	m.mu.Lock()
	reqs := make(map[requestKey]uint64, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	httpDur := make(map[string]*histogram, len(m.httpDur))
	for ep, h := range m.httpDur {
		httpDur[ep] = h.clone()
	}
	exec := m.exec.clone()
	truncated := m.truncated
	watchSubs, watchDeltas, watchResyncs := m.watchSubs, m.watchDeltas, m.watchResyncs
	shapes, other, evicted := m.shapes.snapshot()
	m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("panda_planner_hits_total", "Prepare calls answered from the plan cache (zero LP solves).", st.Hits)
	counter("panda_planner_misses_total", "Prepare calls that built a fresh plan.", st.Misses)
	counter("panda_planner_evictions_total", "Plans dropped by the cost-weighted eviction policy.", st.Evictions)
	counter("panda_planner_lp_solves_total", "Exact simplex solves performed across all plan builds.", st.LPSolves)
	counter("panda_planner_lp_solves_saved_total", "Simplex solves avoided by plan-cache hits.", st.LPSolvesSaved)
	counter("panda_planner_plans_built_total", "Plans constructed (misses, plus lost build races).", st.PlansBuilt)
	fmt.Fprintf(w, "# HELP panda_planner_cache_plans Plans currently held by the signature cache (including warm-loaded ones).\n# TYPE panda_planner_cache_plans gauge\npanda_planner_cache_plans %d\n", plans)

	fmt.Fprintf(w, "# HELP panda_stmt_cache_entries Prepared statements currently cached.\n# TYPE panda_stmt_cache_entries gauge\npanda_stmt_cache_entries %d\n", entries)
	counter("panda_stmt_cache_hits_total", "Query requests served by a cached statement.", stmtHits)
	counter("panda_stmt_cache_misses_total", "Query requests that re-prepared their statement.", stmtMisses)

	keys := make([]requestKey, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP panda_http_requests_total Requests served, by endpoint and status code.\n# TYPE panda_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "panda_http_requests_total{endpoint=%q,code=%q} %d\n", k.endpoint, strconv.Itoa(k.code), reqs[k])
	}

	eps := make([]string, 0, len(httpDur))
	for ep := range httpDur {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(w, "# HELP panda_http_request_duration_seconds Request latency, by endpoint.\n# TYPE panda_http_request_duration_seconds histogram\n")
	for _, ep := range eps {
		writeHistogram(w, "panda_http_request_duration_seconds", fmt.Sprintf("endpoint=%q", ep), httpDur[ep])
	}

	fmt.Fprintf(w, "# HELP panda_query_execution_seconds End-to-end execution latency of successful /v1/query requests.\n# TYPE panda_query_execution_seconds histogram\n")
	writeHistogram(w, "panda_query_execution_seconds", "", exec)

	counter("panda_query_rows_truncated_total", "Query responses truncated by a per-request max_rows limit.", truncated)

	fmt.Fprintf(w, "# HELP panda_watch_subscriptions Standing-query streams currently open on /v1/watch.\n# TYPE panda_watch_subscriptions gauge\npanda_watch_subscriptions %d\n", watchSubs)
	counter("panda_watch_deltas_total", "Maintenance delta lines streamed to watch subscribers.", watchDeltas)
	counter("panda_watch_resyncs_total", "Full-state resync lines streamed to watch subscribers (drop/recreate, queue overflow, rule rounds).", watchResyncs)

	// Per-shape series, keyed by plan signature digest with bounded
	// cardinality: at most the top-K live digests plus the "other" rollup.
	if other != nil {
		shapes = append(shapes, other)
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].digest < shapes[j].digest })
	fmt.Fprintf(w, "# HELP panda_query_shape_requests_total Successful queries by plan signature digest and committed mode; evicted shapes roll up into digest=\"other\".\n# TYPE panda_query_shape_requests_total counter\n")
	for _, sh := range shapes {
		modes := make([]string, 0, len(sh.requests))
		for mode := range sh.requests {
			modes = append(modes, mode)
		}
		sort.Strings(modes)
		for _, mode := range modes {
			fmt.Fprintf(w, "panda_query_shape_requests_total{digest=%q,mode=%q} %d\n", sh.digest, mode, sh.requests[mode])
		}
	}
	fmt.Fprintf(w, "# HELP panda_query_shape_rows_total Result rows served by plan signature digest.\n# TYPE panda_query_shape_rows_total counter\n")
	for _, sh := range shapes {
		fmt.Fprintf(w, "panda_query_shape_rows_total{digest=%q} %d\n", sh.digest, sh.rows)
	}
	fmt.Fprintf(w, "# HELP panda_query_shape_execution_seconds Execution latency by plan signature digest.\n# TYPE panda_query_shape_execution_seconds histogram\n")
	for _, sh := range shapes {
		writeHistogram(w, "panda_query_shape_execution_seconds", fmt.Sprintf("digest=%q", sh.digest), &sh.exec)
	}
	counter("panda_query_shape_evictions_total", "Shapes evicted from the top-K table into the \"other\" rollup.", evicted)
}

// writeHistogram renders one histogram series set in the Prometheus text
// format: cumulative buckets ending in +Inf (== _count), then _sum and
// _count. labels is either empty or a `name="value"` list without braces.
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range bucketBounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, h.count)
}
