package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"panda"
)

// labeledMetricValue extracts one labelled sample (exact label string
// match) from a Prometheus exposition; -1 when the series is absent.
func labeledMetricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// stripLE removes the le pair from a label string so bucket series can be
// keyed alongside their _sum/_count siblings: {endpoint="q",le="1"} →
// {endpoint="q"}, {le="1"} → "".
func stripLE(labels string) string {
	labels = regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(labels, "")
	labels = strings.Replace(labels, "{,", "{", 1)
	if labels == "{}" {
		return ""
	}
	return labels
}

// shapeRequestsTotal sums panda_query_shape_requests_total across modes
// for one digest.
func shapeRequestsTotal(t *testing.T, body, digest string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^panda_query_shape_requests_total\{digest="` + regexp.QuoteMeta(digest) + `",mode="[^"]*"\} (\d+)$`)
	var total float64
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		total += v
	}
	return total
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	return body
}

// TestMetricsExpositionConformance parses the whole /metrics body against
// the text-format rules a Prometheus scraper enforces: HELP/TYPE exactly
// once per family and before its samples, histogram buckets cumulative and
// monotone with le="+Inf" equal to _count, and every sample line
// well-formed. This is the regression net for the metric-type lie the
// seed shipped (a "summary" with no quantiles) — now every duration
// family must actually be a histogram.
func TestMetricsExpositionConformance(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &q.Schema, panda.RandomInstance(3, &q.Schema, 30, 8))
	for range 3 {
		if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
			t.Fatalf("query: %d %s", code, raw)
		}
	}
	body := scrape(t, ts.URL)

	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	leLabel := regexp.MustCompile(`le="([^"]*)"`)
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	type bucketState struct {
		prevLE  float64
		prevCum float64
		infCum  float64
		hasInf  bool
	}
	buckets := map[string]*bucketState{} // family+labels-without-le → state
	counts := map[string]float64{}       // family+labels → _count value

	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if helpSeen[name] {
				t.Errorf("duplicate HELP for %s", name)
			}
			helpSeen[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if _, dup := typeSeen[name]; dup {
				t.Errorf("duplicate TYPE for %s", name)
			}
			typeSeen[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !helpSeen[family] || typeSeen[family] == "" {
			t.Errorf("sample %s appears without preceding HELP+TYPE for family %s", name, family)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("sample %s has non-numeric value %q", name, valStr)
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if typeSeen[family] != "histogram" {
				t.Errorf("%s_bucket under TYPE %q", family, typeSeen[family])
			}
			le := leLabel.FindStringSubmatch(labels)
			if le == nil {
				t.Errorf("bucket without le label: %q", line)
				continue
			}
			key := family + stripLE(labels)
			st, ok := buckets[key]
			if !ok {
				st = &bucketState{prevLE: math.Inf(-1)}
				buckets[key] = st
			}
			if le[1] == "+Inf" {
				st.infCum, st.hasInf = val, true
			} else {
				bound, err := strconv.ParseFloat(le[1], 64)
				if err != nil {
					t.Errorf("unparseable le %q in %q", le[1], line)
					continue
				}
				if bound <= st.prevLE {
					t.Errorf("%s: bucket bounds not increasing (%g after %g)", key, bound, st.prevLE)
				}
				st.prevLE = bound
			}
			if val < st.prevCum {
				t.Errorf("%s: cumulative bucket counts decreased (%g after %g)", key, val, st.prevCum)
			}
			st.prevCum = val
		case strings.HasSuffix(name, "_count") && typeSeen[family] == "histogram":
			counts[family+labels] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if typ := typeSeen["panda_http_request_duration_seconds"]; typ != "histogram" {
		t.Errorf("panda_http_request_duration_seconds has TYPE %q, want histogram", typ)
	}
	if typ := typeSeen["panda_query_execution_seconds"]; typ != "histogram" {
		t.Errorf("panda_query_execution_seconds has TYPE %q, want histogram", typ)
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, st := range buckets {
		if !st.hasInf {
			t.Errorf("%s: no +Inf bucket", key)
			continue
		}
		if cnt, ok := counts[key]; !ok || cnt != st.infCum {
			t.Errorf("%s: le=\"+Inf\" (%g) != _count (%g)", key, st.infCum, cnt)
		}
	}
}

// TestShapeMetricsRenamingCollapse: two textually different queries that
// are variable renamings of each other share one canonical signature, so
// their traffic lands on one digest series — and a structurally distinct
// query gets its own.
func TestShapeMetricsRenamingCollapse(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	tri := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &tri.Schema, panda.RandomInstance(3, &tri.Schema, 30, 8))

	renamed := `Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`
	var sigs [2]string
	for i, src := range []string{triangleSrc, renamed} {
		code, qr, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q}`, src))
		if code != http.StatusOK {
			t.Fatalf("query %s: %d %s", src, code, raw)
		}
		if qr.Signature == "" {
			t.Fatalf("query %s: no signature in response", src)
		}
		sigs[i] = qr.Signature
	}
	if sigs[0] != sigs[1] {
		t.Fatalf("renamed query got different signature: %s vs %s", sigs[0], sigs[1])
	}

	// A structurally different shape (a 2-path) must not collapse onto it.
	code, qr, raw := queryHTTP(t, ts.URL, `{"query":"P(A,B,C) :- R(A,B), S(B,C)."}`)
	if code != http.StatusOK {
		t.Fatalf("path query: %d %s", code, raw)
	}
	if qr.Signature == "" || qr.Signature == sigs[0] {
		t.Fatalf("distinct shape shares signature %q", qr.Signature)
	}

	body := scrape(t, ts.URL)
	if got := shapeRequestsTotal(t, body, sigs[0]); got != 2 {
		t.Fatalf("requests for digest %s = %v, want 2 (renamings collapse onto one digest)", sigs[0], got)
	}
	if got := shapeRequestsTotal(t, body, qr.Signature); got != 1 {
		t.Fatalf("requests for digest %s = %v, want 1", qr.Signature, got)
	}
}

// TestShapeTableEviction drives more distinct shapes than the configured
// top-K capacity and asserts the overflow rolls up into digest="other"
// instead of growing the label space.
func TestShapeTableEviction(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{ShapeTableSize: 2})
	if code, raw := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create R: %d %s", code, raw)
	}
	if code, raw := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2],[2,3],[3,4]]}`); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, raw)
	}
	// Four structurally distinct shapes over R; capacity 2 forces two
	// evictions into "other".
	shapes := []string{
		`Q(A,B) :- R(A,B).`,
		`Q(A,B,C) :- R(A,B), R(B,C).`,
		`Q(A,B,C,D) :- R(A,B), R(B,C), R(C,D).`,
		`Q(A) :- R(A,A).`,
	}
	for _, src := range shapes {
		if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, src)); code != http.StatusOK {
			t.Fatalf("query %s: %d %s", src, code, raw)
		}
	}
	body := scrape(t, ts.URL)
	if got := shapeRequestsTotal(t, body, "other"); got != 2 {
		t.Fatalf(`digest="other" requests = %v, want 2`, got)
	}
	if got := metricValue(t, body, "panda_query_shape_evictions_total"); got != 2 {
		t.Fatalf("evictions = %v, want 2", got)
	}
	if n := strings.Count(body, "panda_query_shape_rows_total{"); n != 3 {
		t.Fatalf("shape rows series = %d, want 3 (2 live + other)", n)
	}

	// /v1/shapes reports the same bounded view.
	code, raw := get(t, ts.URL+"/v1/shapes")
	if code != http.StatusOK {
		t.Fatalf("/v1/shapes: %d %s", code, raw)
	}
	var view struct {
		Shapes []struct {
			Digest  string `json:"digest"`
			Total   uint64 `json:"total"`
			Latency struct {
				Count uint64 `json:"count"`
			} `json:"latency"`
		} `json:"shapes"`
		Other    *struct{ Total uint64 } `json:"other"`
		Capacity int                     `json:"capacity"`
		Evicted  uint64                  `json:"evicted"`
	}
	if err := json.Unmarshal([]byte(raw), &view); err != nil {
		t.Fatalf("/v1/shapes body: %v\n%s", err, raw)
	}
	if len(view.Shapes) != 2 || view.Capacity != 2 || view.Evicted != 2 {
		t.Fatalf("shapes=%d capacity=%d evicted=%d, want 2/2/2:\n%s", len(view.Shapes), view.Capacity, view.Evicted, raw)
	}
	if view.Other == nil || view.Other.Total != 2 {
		t.Fatalf("other rollup missing or wrong: %+v", view.Other)
	}
	for _, sh := range view.Shapes {
		if sh.Latency.Count != sh.Total {
			t.Fatalf("shape %s: latency count %d != total %d", sh.Digest, sh.Latency.Count, sh.Total)
		}
	}
}

// TestMaxRowsTruncation: a max_rows cap yields exactly that many rows, a
// "truncated":true marker, and one tick of the truncation counter; an
// uncapped repeat of the same query stays unmarked.
func TestMaxRowsTruncation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	tri := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &tri.Schema, panda.RandomInstance(3, &tri.Schema, 30, 8))

	code, full, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q}`, triangleSrc))
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if full.Truncated {
		t.Fatal("uncapped query reports truncated")
	}
	if len(full.Rows) < 2 {
		t.Fatalf("fixture too small to truncate: %d rows", len(full.Rows))
	}

	code, capped, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q,"max_rows":1}`, triangleSrc))
	if code != http.StatusOK {
		t.Fatalf("capped query: %d %s", code, raw)
	}
	if !capped.Truncated || len(capped.Rows) != 1 {
		t.Fatalf("capped query: truncated=%v rows=%d, want true/1\n%s", capped.Truncated, len(capped.Rows), raw)
	}
	if !reflect.DeepEqual(capped.Rows[0], full.Rows[0]) {
		t.Fatalf("capped rows are not a prefix: %v vs %v", capped.Rows[0], full.Rows[0])
	}

	body := scrape(t, ts.URL)
	if got := metricValue(t, body, "panda_query_rows_truncated_total"); got != 1 {
		t.Fatalf("panda_query_rows_truncated_total = %v, want 1", got)
	}
	sig := full.Signature
	if got := labeledMetricValue(t, body, fmt.Sprintf(`panda_query_shape_rows_total{digest=%q}`, sig)); got != float64(len(full.Rows)+1) {
		t.Fatalf("shape rows = %v, want %d (full run + 1 truncated row)", got, len(full.Rows)+1)
	}

	if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q,"max_rows":-1}`, triangleSrc)); code != http.StatusBadRequest {
		t.Fatalf("negative max_rows: %d %s, want 400", code, raw)
	}
}

// TestSlowQueryLog: with a zero-distance threshold every query logs one
// structured line carrying the digest, mode, rows and stage timings.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts, _ := newTestServer(t, Config{SlowQueryThreshold: 1, SlowQueryLog: &buf})
	tri := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &tri.Schema, panda.RandomInstance(3, &tri.Schema, 30, 8))

	code, qr, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q}`, triangleSrc))
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line emitted")
	}
	var rec slowQueryLine
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if !rec.SlowQuery || rec.Digest != qr.Signature || rec.Mode != qr.Mode {
		t.Fatalf("slow-query line mismatch: %+v vs response sig=%s mode=%s", rec, qr.Signature, qr.Mode)
	}
	if rec.Rows != len(qr.Rows) || rec.ElapsedSeconds <= 0 {
		t.Fatalf("slow-query line rows/elapsed: %+v", rec)
	}
	if len(rec.Timings) == 0 {
		t.Fatalf("slow-query line has no stage timings: %s", line)
	}
}

// TestQueryTimingsInResponse: every /v1/query response carries the
// wall-clock stage-timing map, and the engine stages show up for a query
// that actually runs proof steps.
func TestQueryTimingsInResponse(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := panda.BooleanFourCycle()
	loadOverHTTP(t, ts.URL, &q.Schema, panda.CycleWorstCase(q, 16))
	code, qr, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q}`, booleanFourCycleSrc))
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if qr.Timings == nil {
		t.Fatalf("no timings in response: %s", raw)
	}
	for _, key := range []string{"prepare_wait", "rule_fanout", "merge"} {
		if _, ok := qr.Timings[key]; !ok {
			t.Errorf("timings missing %q: %v", key, qr.Timings)
		}
	}
	var steps int
	for k := range qr.Timings {
		if strings.HasPrefix(k, "step_") {
			steps++
		}
	}
	if steps == 0 {
		t.Errorf("no per-step timings for a PANDA-mode query: %v", qr.Timings)
	}
}

// TestPprofGate: the profile endpoints exist only when Config.Pprof is on.
func TestPprofGate(t *testing.T) {
	_, off, _ := newTestServer(t, Config{})
	if code, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/ = %d, want 404", code)
	}
	_, on, _ := newTestServer(t, Config{Pprof: true})
	if code, body := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof on: /debug/pprof/ = %d", code)
	}
}

// TestConcurrentScrapeAndQuery hammers /metrics and /v1/shapes while query
// traffic over several shapes is in flight — under -race this is the proof
// that the snapshot-then-render scrape path and the shape table are sound,
// and afterwards the histogram count must equal the queries served.
func TestConcurrentScrapeAndQuery(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{ShapeTableSize: 2})
	tri := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &tri.Schema, panda.RandomInstance(3, &tri.Schema, 30, 8))

	queries := []string{
		triangleSrc,
		`Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`,
		`P(A,B,C) :- R(A,B), S(B,C).`,
		`P2(A,B) :- R(A,B), T(A,B).`,
	}
	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := range perWorker {
				src := queries[(w+i)%len(queries)]
				if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, src)); code != http.StatusOK {
					t.Errorf("query %s: %d %s", src, code, raw)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for range perWorker {
				scrape(t, ts.URL)
				if code, _ := get(t, ts.URL+"/v1/shapes"); code != http.StatusOK {
					t.Errorf("/v1/shapes: %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	body := scrape(t, ts.URL)
	want := float64(workers * perWorker)
	if got := metricValue(t, body, "panda_query_execution_seconds_count"); got != want {
		t.Fatalf("execution histogram count = %v, want %v", got, want)
	}
	var shapeTotal float64
	re := regexp.MustCompile(`(?m)^panda_query_shape_requests_total\{[^}]*\} (\d+)$`)
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		shapeTotal += v
	}
	if shapeTotal != want {
		t.Fatalf("sum of shape requests = %v, want %v (no observation lost to eviction)", shapeTotal, want)
	}
}
