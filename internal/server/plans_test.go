package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"panda"
)

// putPlans PUTs a plan-cache snapshot body to /v1/plans.
func putPlans(t *testing.T, base, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/plans", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// cacheSnapshotJSON mirrors the panda-plan-cache envelope closely enough to
// tamper with entry digests while preserving the raw payload bytes of the
// untouched entries.
type cacheSnapshotJSON struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Entries []struct {
		Key    string          `json:"key"`
		LPCost uint64          `json:"lp_cost"`
		Digest string          `json:"digest"`
		Plan   json.RawMessage `json:"plan"`
	} `json:"entries"`
}

// TestServerPlanShipping: the horizontal-serving seam end to end — a
// planning tier pays the LP solves once, exports its cache over GET
// /v1/plans, a fresh replica imports it over PUT /v1/plans, and the replica
// then answers the covered query (and a renaming of it) with zero LP
// solves, crediting lp_solves_saved instead.
func TestServerPlanShipping(t *testing.T) {
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)

	_, tsA, _ := newTestServer(t, Config{})
	loadOverHTTP(t, tsA.URL, &q.Schema, ins)
	if code, raw := post(t, tsA.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("planning-tier query: %d %s", code, raw)
	}
	code, snapshot := get(t, tsA.URL+"/v1/plans")
	if code != http.StatusOK {
		t.Fatalf("export: %d %s", code, snapshot)
	}

	_, tsB, dbB := newTestServer(t, Config{})
	loadOverHTTP(t, tsB.URL, &q.Schema, ins)
	code, body := putPlans(t, tsB.URL, snapshot)
	if code != http.StatusOK {
		t.Fatalf("import: %d %s", code, body)
	}
	var imp struct {
		Loaded  int `json:"loaded"`
		Skipped int `json:"skipped"`
	}
	if err := json.Unmarshal([]byte(body), &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Loaded < 1 || imp.Skipped != 0 {
		t.Fatalf("import stats %s, want loaded >= 1, skipped = 0", body)
	}
	_, m := get(t, tsB.URL+"/metrics")
	if got := metricValue(t, m, "panda_planner_cache_plans"); got < 1 {
		t.Fatalf("cache gauge %v after import, want >= 1", got)
	}

	for _, src := range []string{triangleSrc, `Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`} {
		if code, raw := post(t, tsB.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, src)); code != http.StatusOK {
			t.Fatalf("replica query %q: %d %s", src, code, raw)
		}
	}
	st := dbB.PlannerStats()
	if st.LPSolves != 0 || st.Misses != 0 {
		t.Fatalf("replica did planning work after import: %v", st)
	}
	if st.Hits < 2 || st.LPSolvesSaved == 0 {
		t.Fatalf("replica hits=%d lp-saved=%d, want hits >= 2 and lp-saved > 0", st.Hits, st.LPSolvesSaved)
	}

	// Re-importing the same snapshot is benign: duplicates, not errors.
	code, body = putPlans(t, tsB.URL, snapshot)
	if code != http.StatusOK || !strings.Contains(body, `"duplicates":`) {
		t.Fatalf("re-import: %d %s", code, body)
	}
}

// TestServerImportPlansRejects: a stale format version or a corrupted entry
// is rejected with 422 and a stable code token; a malformed container is a
// plain 400.
func TestServerImportPlansRejects(t *testing.T) {
	q := panda.TriangleQuery()
	ins := panda.RandomInstance(11, &q.Schema, 40, 10)
	_, tsA, _ := newTestServer(t, Config{})
	loadOverHTTP(t, tsA.URL, &q.Schema, ins)
	if code, raw := post(t, tsA.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("seed query: %d %s", code, raw)
	}
	code, snapshot := get(t, tsA.URL+"/v1/plans")
	if code != http.StatusOK {
		t.Fatal("export failed")
	}

	tamper := func(fn func(env *cacheSnapshotJSON)) string {
		var env cacheSnapshotJSON
		if err := json.Unmarshal([]byte(snapshot), &env); err != nil {
			t.Fatal(err)
		}
		fn(&env)
		out, err := json.Marshal(&env)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	t.Run("wrong-version", func(t *testing.T) {
		_, ts, _ := newTestServer(t, Config{})
		bad := tamper(func(env *cacheSnapshotJSON) { env.Version = panda.PlanFormatVersion + 1 })
		code, body := putPlans(t, ts.URL, bad)
		if code != http.StatusUnprocessableEntity || !strings.Contains(body, `"code":"plan_version"`) {
			t.Fatalf("got %d %s, want 422 plan_version", code, body)
		}
	})
	t.Run("digest-mismatch", func(t *testing.T) {
		_, ts, _ := newTestServer(t, Config{})
		bad := tamper(func(env *cacheSnapshotJSON) { env.Entries[0].Digest = strings.Repeat("0", 64) })
		code, body := putPlans(t, ts.URL, bad)
		if code != http.StatusUnprocessableEntity || !strings.Contains(body, `"code":"plan_digest"`) {
			t.Fatalf("got %d %s, want 422 plan_digest", code, body)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		_, ts, _ := newTestServer(t, Config{})
		code, body := putPlans(t, ts.URL, "not a snapshot")
		if code != http.StatusBadRequest {
			t.Fatalf("got %d %s, want 400", code, body)
		}
	})
}
