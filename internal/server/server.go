// Package server implements pandad's HTTP/JSON surface: a long-lived query
// service wrapping a single panda.DB session. One process answers repeated
// query traffic against a shared catalog and planner, which is where the
// paper's reusable width certificates pay off operationally — the first
// request for a query shape pays the LP solves, every later one (including
// variable renamings) plans for free, and /metrics exports exactly how much
// solver work the cache is saving.
//
// Endpoints:
//
//	POST   /v1/query                 run a query; rows stream as JSON (NDJSON with Accept: application/x-ndjson)
//	POST   /v1/watch                 open a standing query; NDJSON stream of snapshot + deltas
//	GET    /v1/plan?q=…[&mode=…]     dry-run prepare: committed mode + width certificate
//	GET    /v1/plans                 export the plan cache (panda-plan-cache snapshot)
//	PUT    /v1/plans                 import a snapshot; 422 on version/digest mismatch
//	GET    /v1/relations             list the catalog
//	POST   /v1/relations             create a relation {"name","arity"}
//	DELETE /v1/relations/{name}      drop a relation
//	POST   /v1/relations/{name}/rows insert tuples {"rows":[[…],…]}
//	POST   /v1/relations/{name}/csv  bulk-ingest a CSV body
//	GET    /metrics                  Prometheus text: planner, stmt cache, latency histograms, per-shape series
//	GET    /v1/shapes                JSON view of the per-shape table: requests, rows, latency quantiles
//	GET    /debug/pprof/…            net/http/pprof, only when Config.Pprof is set
//
// The plan-shipping pair is the horizontal-serving seam: one planning tier
// pays the LP solves, exports its cache with GET /v1/plans, and a fleet of
// replicas imports it with PUT /v1/plans — every replica then answers the
// covered query shapes with zero planning work, exactly as a pandad
// -plan-dir warm restart does from disk.
//
// Every request runs under its own context (bound straight to
// db.QueryContext), optionally capped by the configured per-request
// timeout; the structured panda sentinels map to distinct HTTP statuses so
// clients can dispatch without parsing messages.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"panda"
)

// Config assembles a Server.
type Config struct {
	// DB is the session the server fronts; required, and owned by the
	// caller (the server never closes it).
	DB *panda.DB
	// Timeout caps each request's context (0 = no per-request deadline).
	// A query that overruns it is cancelled between proof steps and
	// reported as 504 with the context error.
	Timeout time.Duration
	// Parallelism is the default per-query executor fan-out; a request
	// may override it. 0 leaves the session default in force.
	Parallelism int
	// StmtCacheSize bounds the prepared-statement cache (0 selects
	// DefaultStmtCacheSize).
	StmtCacheSize int
	// ShapeTableSize bounds the per-shape telemetry table: at most this
	// many live signature digests get their own /metrics series and
	// /v1/shapes entry; the least-recently-observed tail rolls up into the
	// "other" bucket. 0 selects the default (64).
	ShapeTableSize int
	// SlowQueryThreshold, when positive, turns on the slow-query log:
	// every successful /v1/query whose end-to-end execution takes at least
	// this long emits one structured JSON line to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (defaults to os.Stderr when a
	// threshold is set). Writes are serialized by the server.
	SlowQueryLog io.Writer
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: the profile endpoints expose internals and can be costly.
	Pprof bool
	// Name is the replica identity /v1/info reports; useful when many
	// pandad processes sit behind a router and an operator needs to know
	// which one answered. Empty is fine for single-process deployments.
	Name string
}

// Server is the HTTP handler. Create one with New; it is safe for
// concurrent use.
type Server struct {
	db          *panda.DB
	timeout     time.Duration
	parallelism int
	stmts       *stmtCache
	metrics     *metrics
	mux         *http.ServeMux
	name        string
	start       time.Time

	// Background re-planning (the cross-version migration shim): when an
	// import drops entries for a FormatVersion mismatch, their signature
	// keys are re-planned off the request path. replanWG is drained by
	// Shutdown so a terminating process never abandons half a migration.
	replanWG     sync.WaitGroup
	replanKeys   atomic.Uint64 // signatures rebuilt in the background
	replanSolves atomic.Uint64 // LP solves those rebuilds paid

	// catalogEpoch counts the catalog mutations this process has applied
	// (relation create/drop, row and CSV ingest over HTTP). Replicas behind
	// a router receive every mutation by broadcast, so a replica whose
	// epoch lags the planning tier's has missed one and is serving a
	// diverged catalog; the router reads the epoch off /healthz and keeps
	// such a replica out of rotation until it is resynced.
	catalogEpoch atomic.Uint64

	slowThreshold time.Duration
	slowMu        sync.Mutex
	slowLog       io.Writer

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
	// drainCh is closed when Shutdown begins, so endpoints that hold a
	// connection open indefinitely (the watch stream) terminate and let the
	// in-flight drain complete instead of wedging it.
	drainCh chan struct{}

	// queryStarted, when set, runs after a /v1/query request is admitted
	// and resolved to a statement, before execution; tests use it to hold
	// a query in flight deterministically.
	queryStarted func()
}

// New wires the routes around cfg.DB.
func New(cfg Config) *Server {
	s := &Server{
		db:            cfg.DB,
		timeout:       cfg.Timeout,
		parallelism:   cfg.Parallelism,
		stmts:         newStmtCache(cfg.StmtCacheSize),
		metrics:       newMetrics(cfg.ShapeTableSize),
		mux:           http.NewServeMux(),
		slowThreshold: cfg.SlowQueryThreshold,
		slowLog:       cfg.SlowQueryLog,
		name:          cfg.Name,
		start:         time.Now(),
		drainCh:       make(chan struct{}),
	}
	if s.slowThreshold > 0 && s.slowLog == nil {
		s.slowLog = os.Stderr
	}
	s.mux.HandleFunc("POST /v1/query", s.wrap("query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/watch", s.wrapStream("watch", s.handleWatch))
	s.mux.HandleFunc("GET /v1/plan", s.wrap("plan", s.handlePlan))
	s.mux.HandleFunc("GET /v1/plans", s.wrap("plans", s.handleExportPlans))
	s.mux.HandleFunc("PUT /v1/plans", s.wrap("plans", s.handleImportPlans))
	s.mux.HandleFunc("GET /v1/relations", s.wrap("relations", s.handleListRelations))
	s.mux.HandleFunc("POST /v1/relations", s.wrap("relations", s.mutating(s.handleCreateRelation)))
	s.mux.HandleFunc("DELETE /v1/relations/{name}", s.wrap("relations", s.mutating(s.handleDropRelation)))
	s.mux.HandleFunc("POST /v1/relations/{name}/rows", s.wrap("rows", s.mutating(s.handleInsertRows)))
	s.mux.HandleFunc("POST /v1/relations/{name}/csv", s.wrap("csv", s.mutating(s.handleLoadCSV)))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/shapes", s.wrap("shapes", s.handleShapes))
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/info", s.wrap("info", s.handleInfo))
	if cfg.Pprof {
		// Debug endpoints stay outside the metrics/drain middleware: they
		// are operator tools, not traffic.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admitting requests (new ones get 503) and waits for
// in-flight ones — including long-running queries — to drain, or for ctx to
// expire. It does not close the DB; the owner does that once Shutdown
// returns so draining queries never observe ErrClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.replanWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusWriter captures the response code for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach Flusher on the underlying
// writer through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap is the per-endpoint middleware: drain admission, in-flight
// accounting, the per-request deadline, and latency/status metrics.
func (s *Server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			writeError(sw, http.StatusServiceUnavailable, "shutting_down", errors.New("server is shutting down"))
			s.metrics.observe(endpoint, sw.code, time.Since(start))
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
		s.metrics.observe(endpoint, sw.code, time.Since(start))
	}
}

// wrapStream is wrap for endpoints that hold the connection open for as
// long as the client stays interested (the watch stream): same drain
// admission, in-flight accounting and metrics, but no per-request deadline
// — a standing query is supposed to outlive any sensible request timeout.
// Streams still terminate on shutdown: they select on s.drainCh.
func (s *Server) wrapStream(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			writeError(sw, http.StatusServiceUnavailable, "shutting_down", errors.New("server is shutting down"))
			s.metrics.observe(endpoint, sw.code, time.Since(start))
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()
		h(sw, r)
		s.metrics.observe(endpoint, sw.code, time.Since(start))
	}
}

// mutating wraps a catalog-mutation handler and advances the catalog epoch
// when the mutation was actually applied (a 2xx answer). A rejected
// mutation (conflict, unknown relation, malformed body) leaves the catalog
// — and therefore the epoch — untouched, so two processes that answered the
// same broadcast sequence identically report identical epochs.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sw.code < 300 {
			s.catalogEpoch.Add(1)
		}
	}
}

// ---- Error mapping ----

// statusOf maps the structured panda sentinels and context errors to
// distinct HTTP statuses; anything else (parse errors, malformed bodies) is
// a plain 400.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, panda.ErrUnknownRelation):
		return http.StatusNotFound // 404
	case errors.Is(err, panda.ErrRelationExists):
		return http.StatusConflict // 409
	case errors.Is(err, panda.ErrArity):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, panda.ErrUnboundedLP):
		return http.StatusFailedDependency // 424: constraint set does not bound the LP
	case errors.Is(err, panda.ErrClosed):
		return http.StatusServiceUnavailable // 503
	default:
		return http.StatusBadRequest // 400
	}
}

// codeOf names the sentinel for the JSON error body, so clients dispatch on
// a stable token instead of message text.
func codeOf(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, panda.ErrUnknownRelation):
		return "unknown_relation"
	case errors.Is(err, panda.ErrRelationExists):
		return "relation_exists"
	case errors.Is(err, panda.ErrArity):
		return "arity_mismatch"
	case errors.Is(err, panda.ErrUnboundedLP):
		return "unbounded_lp"
	case errors.Is(err, panda.ErrNotConjunctive):
		return "not_conjunctive"
	case errors.Is(err, panda.ErrClosed):
		return "closed"
	case errors.Is(err, panda.ErrPlanVersion):
		return "plan_version"
	case errors.Is(err, panda.ErrPlanDigest):
		return "plan_digest"
	default:
		return "bad_request"
	}
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	writeError(w, statusOf(err), codeOf(err), err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// ---- Statements ----

// stmt resolves query text through the bounded statement cache, preparing
// on a miss. Prepared statements rebind automatically after catalog
// mutations, so a hit can never serve stale data.
func (s *Server) stmt(src string) (*panda.Stmt, error) {
	if st, ok := s.stmts.get(src); ok {
		return st, nil
	}
	st, err := s.db.Prepare(src)
	if err != nil {
		return nil, err
	}
	s.stmts.put(src, st)
	return st, nil
}

func parseMode(s string) (panda.PlanMode, bool, error) {
	switch strings.ToLower(s) {
	case "":
		return panda.ModeAuto, false, nil
	case "auto":
		return panda.ModeAuto, true, nil
	case "full":
		return panda.ModeFull, true, nil
	case "fhtw":
		return panda.ModeFhtw, true, nil
	case "subw":
		return panda.ModeSubw, true, nil
	}
	return 0, false, fmt.Errorf("unknown mode %q (want auto, full, fhtw or subw)", s)
}

// ---- /v1/query ----

type queryRequest struct {
	// Query is the textual query (see internal/query): a conjunctive query
	// or a disjunctive datalog rule, with optional constraint lines.
	Query string `json:"query"`
	// Mode forces an evaluation strategy: auto (default), full, fhtw,
	// subw. Forcing a mode on a disjunctive rule is rejected.
	Mode string `json:"mode,omitempty"`
	// Parallelism overrides the server's per-query executor fan-out.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxRows, when positive, caps every streamed row array in the
	// response (the result rows, and each rule target's rows). A capped
	// response carries "truncated":true.
	MaxRows int `json:"max_rows,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.fail(w, errors.New("missing query text"))
		return
	}
	if req.MaxRows < 0 {
		s.fail(w, errors.New("max_rows must be non-negative"))
		return
	}
	mode, explicit, err := parseMode(req.Mode)
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := s.stmt(req.Query)
	if err != nil {
		s.fail(w, err)
		return
	}
	opts := []panda.Option{panda.WithStageTimings(true)}
	if explicit {
		opts = append(opts, panda.WithMode(mode))
	}
	if req.Parallelism > 0 {
		opts = append(opts, panda.WithParallelism(req.Parallelism))
	} else if s.parallelism > 0 {
		opts = append(opts, panda.WithParallelism(s.parallelism))
	}
	if s.queryStarted != nil {
		s.queryStarted()
	}
	start := time.Now()
	res, err := st.QueryContext(r.Context(), opts...)
	elapsed := time.Since(start)
	if err != nil {
		s.fail(w, err)
		return
	}
	var rows int
	var truncated bool
	if res.Mode != panda.ModeRule && wantsNDJSON(r) {
		// Rules carry per-target tables, not one row stream; they keep the
		// buffered JSON shape regardless of the Accept header.
		rows, truncated = s.writeResultNDJSON(w, res, req.MaxRows)
	} else {
		rows, truncated = s.writeResult(w, st, res, req.MaxRows)
	}
	digest := res.Signature
	if digest == "" {
		// Disjunctive rules are planned per rule, not cached by signature;
		// they share one shape bucket.
		digest = "rule"
	}
	s.metrics.observeQuery(digest, res.Mode.String(), rows, elapsed, truncated)
	if s.slowThreshold > 0 && elapsed >= s.slowThreshold {
		s.logSlowQuery(digest, res, rows, elapsed)
	}
}

// slowQueryLine is the JSON shape of one slow-query log record.
type slowQueryLine struct {
	SlowQuery      bool               `json:"slow_query"`
	Time           string             `json:"time"`
	Digest         string             `json:"digest"`
	Mode           string             `json:"mode"`
	Width          string             `json:"width,omitempty"`
	Rows           int                `json:"rows"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Timings        map[string]float64 `json:"timings,omitempty"`
}

// logSlowQuery emits one structured line for a query whose execution met
// the configured threshold. Lines are whole-record writes under a
// dedicated mutex, so concurrent slow queries never interleave bytes.
func (s *Server) logSlowQuery(digest string, res *panda.Result, rows int, elapsed time.Duration) {
	line := slowQueryLine{
		SlowQuery:      true,
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		Digest:         digest,
		Mode:           res.Mode.String(),
		Rows:           rows,
		ElapsedSeconds: elapsed.Seconds(),
	}
	if res.Width != nil {
		line.Width = res.Width.RatString()
	}
	if res.Timings != nil {
		line.Timings = res.Timings.Seconds()
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.slowMu.Lock()
	s.slowLog.Write(b)
	s.slowMu.Unlock()
}

// writeResult streams the unified Result as one JSON object. The scalar
// header lands first and rows are written tuple by tuple (flushed
// periodically), so a client can start consuming a large result while the
// tail is still being encoded. maxRows > 0 caps every streamed row array;
// a capped response carries "truncated":true. It reports the total rows
// streamed and whether anything was cut, for the per-shape telemetry.
func (s *Server) writeResult(w http.ResponseWriter, st *panda.Stmt, res *panda.Result, maxRows int) (rows int, truncated bool) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"mode":%q,"ok":%t`, res.Mode.String(), res.OK)
	if res.Width != nil {
		fmt.Fprintf(w, `,"width":%q`, res.Width.RatString())
	}
	// ResponseController reaches Flush through the statusWriter's Unwrap;
	// a direct type assertion would miss it.
	flush := http.NewResponseController(w)
	if res.Rel != nil {
		cols, _ := json.Marshal(res.Columns)
		fmt.Fprintf(w, `,"columns":%s,"rows":`, cols)
		n, cut := streamRows(w, flush, res.Iter(), maxRows)
		rows += n
		truncated = truncated || cut
	}
	if res.Mode == panda.ModeRule {
		n, cut := writeTables(w, flush, st, res.Tables, maxRows)
		rows += n
		truncated = truncated || cut
	}
	if truncated {
		io.WriteString(w, `,"truncated":true`)
	}
	if res.Stats != nil {
		stats, err := json.Marshal(res.Stats)
		if err == nil {
			fmt.Fprintf(w, `,"stats":%s`, stats)
		}
	}
	// Shape identity and wall-clock stage timings land after stats: the
	// deterministic prefix of the body (everything through stats) stays
	// byte-stable across runs, while the timings tail is allowed to vary.
	if res.Signature != "" {
		fmt.Fprintf(w, `,"signature":%q`, res.Signature)
	}
	if res.Timings != nil {
		if t, err := json.Marshal(res.Timings.Seconds()); err == nil {
			fmt.Fprintf(w, `,"timings":%s`, t)
		}
	}
	io.WriteString(w, "}\n")
	return rows, truncated
}

// writeTables renders a rule result's per-target tables as the
// `,"tables":[{"target":…,"size":…,"rows":[…]},…]` fragment, sorted by
// target variable set — shared by /v1/query responses and watch-stream
// lines so both wire formats agree byte for byte.
func writeTables(w io.Writer, flush *http.ResponseController, st *panda.Stmt, tables map[panda.Set]*panda.Relation, maxRows int) (rows int, truncated bool) {
	targets := make([]panda.Set, 0, len(tables))
	for b := range tables {
		targets = append(targets, b)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	sch := st.Schema()
	io.WriteString(w, `,"tables":[`)
	for i, b := range targets {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, `{"target":%q,"size":%d,"rows":`, "T_"+sch.VarLabel(b), tables[b].Size())
		n, cut := streamRows(w, flush, tables[b].AllSorted(), maxRows)
		rows += n
		truncated = truncated || cut
		io.WriteString(w, "}")
	}
	io.WriteString(w, "]")
	return rows, truncated
}

// streamRows writes a JSON array of tuples, flushing every few thousand
// rows so large results reach the client incrementally. Rows arrive as an
// iterator so the columnar storage decodes straight into the encoder — the
// hot path never materializes a [][]Value copy of the result. max > 0 stops
// after max rows; the second return reports whether rows were dropped.
func streamRows(w io.Writer, flush *http.ResponseController, rows iter.Seq[[]panda.Value], max int) (int, bool) {
	io.WriteString(w, "[")
	written := 0
	truncated := false
	buf := make([]byte, 0, 64)
	for row := range rows {
		if max > 0 && written >= max {
			truncated = true
			break
		}
		buf = buf[:0]
		if written > 0 {
			buf = append(buf, ',')
		}
		buf = appendRow(buf, row)
		w.Write(buf)
		written++
		if flush != nil && written%4096 == 0 {
			flush.Flush()
		}
	}
	io.WriteString(w, "]")
	return written, truncated
}

// appendRow encodes one tuple as a JSON array of integers — byte-identical
// to json.Marshal of the same non-nil slice, without the reflection.
func appendRow(buf []byte, row []panda.Value) []byte {
	buf = append(buf, '[')
	for j, v := range row {
		if j > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return append(buf, ']')
}

// rowSeq adapts a materialized row slice (watch deltas, which are built as
// decoded copies) to the iterator shape streamRows consumes.
func rowSeq(rows [][]panda.Value) iter.Seq[[]panda.Value] {
	return func(yield func([]panda.Value) bool) {
		for _, row := range rows {
			if !yield(row) {
				return
			}
		}
	}
}

// ---- /v1/plan ----

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("q")
	if strings.TrimSpace(src) == "" {
		s.fail(w, errors.New("missing q parameter (the query text)"))
		return
	}
	mode, explicit, err := parseMode(r.URL.Query().Get("mode"))
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := s.stmt(src)
	if err != nil {
		s.fail(w, err)
		return
	}
	var opts []panda.Option
	if explicit {
		opts = append(opts, panda.WithMode(mode))
	}
	info, err := st.ExplainContext(r.Context(), opts...)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := map[string]any{
		"mode":  info.Mode.String(),
		"width": info.Width.RatString(),
	}
	if info.Digest != "" {
		resp["signature"] = info.Digest
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- /v1/shapes ----

// handleShapes reports the per-shape telemetry table as JSON: one entry per
// live signature digest (most-recently-observed first), the "other" rollup
// when shapes have been evicted, and the table's capacity so operators can
// tell how close they run to the cardinality bound.
func (s *Server) handleShapes(w http.ResponseWriter, r *http.Request) {
	shapes, other, evicted := s.metrics.snapshotShapes()
	type latency struct {
		Count      uint64  `json:"count"`
		SumSeconds float64 `json:"sum_seconds"`
		P50Seconds float64 `json:"p50_seconds"`
		P99Seconds float64 `json:"p99_seconds"`
	}
	type shape struct {
		Digest   string            `json:"digest"`
		Requests map[string]uint64 `json:"requests"`
		Total    uint64            `json:"total"`
		Rows     uint64            `json:"rows"`
		Latency  latency           `json:"latency"`
	}
	conv := func(st *shapeStat) shape {
		return shape{
			Digest:   st.digest,
			Requests: st.requests,
			Total:    st.total(),
			Rows:     st.rows,
			Latency: latency{
				Count:      st.exec.count,
				SumSeconds: st.exec.sum,
				P50Seconds: st.exec.quantile(0.50),
				P99Seconds: st.exec.quantile(0.99),
			},
		}
	}
	out := make([]shape, len(shapes))
	for i, st := range shapes {
		out[i] = conv(st)
	}
	body := map[string]any{
		"shapes":   out,
		"capacity": s.metrics.shapeCapacity(),
		"evicted":  evicted,
	}
	if other != nil {
		body["other"] = conv(other)
	}
	writeJSON(w, http.StatusOK, body)
}

// ---- /v1/plans (plan shipping) ----

// handleExportPlans streams the session's plan cache as one
// panda-plan-cache snapshot — the same bytes a pandad -plan-dir snapshot
// writes to disk, so routers and replicas need exactly one format. An
// optional ?since=<clock> exports only the entries installed after that
// cache clock (see /v1/info plan_clock and the envelope's "clock" field);
// the fleet push loop pulls successive deltas with it so each push is
// proportional to what was planned since the last one.
func (s *Server) handleExportPlans(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.fail(w, fmt.Errorf("bad since parameter %q: %w", raw, err))
			return
		}
		since = v
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.db.SavePlansSince(w, since); err != nil {
		// Headers are already out; all we can do is log through the status.
		s.fail(w, err)
	}
}

// maxPlansImportBytes bounds a PUT /v1/plans body; the import buffers the
// snapshot before validating, so an unbounded read would let one request
// balloon the process. Plans are small (a few KB each), so this is roomy.
const maxPlansImportBytes = 64 << 20

// handleImportPlans installs a snapshot into the session planner. The load
// itself is skip-don't-fail, but an importing operator needs to know when
// entries were dropped, so any skip surfaces as 422 (with the loaded/
// skipped split and the first rejection reason); a malformed container is
// a plain 400.
func (s *Server) handleImportPlans(w http.ResponseWriter, r *http.Request) {
	stats, err := s.db.LoadPlans(http.MaxBytesReader(w, r.Body, maxPlansImportBytes))
	if err != nil {
		s.fail(w, err)
		return
	}
	body := map[string]any{"loaded": stats.Loaded, "skipped": stats.Skipped, "duplicates": stats.Duplicates}
	if stats.Skipped > 0 {
		body["error"] = stats.FirstErr.Error()
		body["code"] = codeOf(stats.FirstErr)
		if len(stats.SkippedKeys) > 0 {
			body["skipped_keys"] = stats.SkippedKeys
			// The cross-version migration shim: a FormatVersion mismatch
			// dropped decodable keys, so rebuild them off the request path
			// rather than letting traffic re-pay their LP solves one cold
			// miss at a time. The key list is already bounded by the load
			// stats cap, and Shutdown waits for the rebuild.
			if errors.Is(stats.FirstErr, panda.ErrPlanVersion) {
				s.backgroundReplan(stats.SkippedKeys)
			}
		}
		writeJSON(w, http.StatusUnprocessableEntity, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// backgroundReplan rebuilds the given signature keys asynchronously,
// logging the outcome and counting the work into the /v1/info replan
// stats. Keys already cached are free no-ops, so concurrent or repeated
// imports of the same stale snapshot do not multiply LP work.
func (s *Server) backgroundReplan(keys []string) {
	s.replanWG.Add(1)
	go func() {
		defer s.replanWG.Done()
		done, solves, err := s.db.ReplanSignatures(context.Background(), keys)
		s.replanKeys.Add(uint64(done))
		s.replanSolves.Add(uint64(solves))
		if err != nil {
			log.Printf("pandad: background replan: %d/%d signatures rebuilt (%d LP solves), aborted: %v", done, len(keys), solves, err)
			return
		}
		log.Printf("pandad: background replan: %d signatures rebuilt (%d LP solves)", done, solves)
	}()
}

// ---- /healthz and /v1/info ----

// handleHealthz is the router's readiness probe: 200 while serving. The
// drain path never reaches this handler — wrap answers 503 for every
// endpoint once Shutdown begins — so "reachable and admitted" IS the
// health signal. The body carries the catalog epoch so the router can tell
// a live replica from a live replica whose catalog has diverged.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "catalog_epoch": s.catalogEpoch.Load()})
}

// handleInfo reports process identity for the fleet tier: who this replica
// is, which plan wire format it speaks, how far its plan cache clock has
// advanced (the delta-pull watermark), and the planner counters the router
// e2e asserts on.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	st := s.db.PlannerStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":           s.name,
		"format_version": panda.PlanFormatVersion,
		"catalog_epoch":  s.catalogEpoch.Load(),
		"plan_clock":     s.db.PlanClock(),
		"plans_cached":   s.db.Planner().Len(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"planner": map[string]any{
			"hits":            st.Hits,
			"misses":          st.Misses,
			"evictions":       st.Evictions,
			"lp_solves":       st.LPSolves,
			"lp_solves_saved": st.LPSolvesSaved,
			"plans_built":     st.PlansBuilt,
		},
		"replans": map[string]any{
			"keys":      s.replanKeys.Load(),
			"lp_solves": s.replanSolves.Load(),
		},
	})
}

// ---- Catalog endpoints ----

func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	infos, err := s.db.Relations()
	if err != nil {
		s.fail(w, err)
		return
	}
	type rel struct {
		Name  string `json:"name"`
		Arity int    `json:"arity"`
		Size  int    `json:"size"`
	}
	out := make([]rel, len(infos))
	for i, in := range infos {
		out[i] = rel{in.Name, in.Arity, in.Size}
	}
	writeJSON(w, http.StatusOK, map[string]any{"relations": out})
}

func (s *Server) handleCreateRelation(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name  string `json:"name"`
		Arity int    `json:"arity"`
	}
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.Name == "" {
		s.fail(w, errors.New("missing relation name"))
		return
	}
	if err := s.db.CreateRelation(req.Name, req.Arity); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "arity": req.Arity})
}

func (s *Server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	if err := s.db.DropRelation(r.PathValue("name")); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rows [][]panda.Value `json:"rows"`
	}
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if err := s.db.Insert(r.PathValue("name"), req.Rows...); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": len(req.Rows)})
}

func (s *Server) handleLoadCSV(w http.ResponseWriter, r *http.Request) {
	n, err := s.db.LoadCSVContext(r.Context(), r.PathValue("name"), r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": n})
}

// ---- /metrics ----

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}

// decodeJSON reads one JSON value, rejecting trailing garbage and unknown
// fields so malformed bodies fail loudly instead of half-parsing.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("malformed JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("malformed JSON body: trailing data")
	}
	return nil
}
