package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"panda"
)

// newTestServer stands up a Server over a fresh session and an httptest
// listener; the caller gets both (the Server for white-box access, the URL
// for HTTP traffic).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *panda.DB) {
	t.Helper()
	db := panda.Open(panda.WithPlannerCapacity(32))
	if cfg.DB == nil {
		cfg.DB = db
	} else {
		db = cfg.DB
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		db.Close()
	})
	return s, ts, db
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// queryHTTP posts a /v1/query request and decodes the streamed response.
func queryHTTP(t *testing.T, base, body string) (int, *queryResponseJSON, string) {
	t.Helper()
	code, raw := post(t, base+"/v1/query", body)
	var qr queryResponseJSON
	if code == http.StatusOK {
		if err := json.Unmarshal([]byte(raw), &qr); err != nil {
			t.Fatalf("response is not valid JSON: %v\n%s", err, raw)
		}
	}
	return code, &qr, raw
}

type queryResponseJSON struct {
	Mode    string          `json:"mode"`
	OK      bool            `json:"ok"`
	Width   string          `json:"width"`
	Columns []string        `json:"columns"`
	Rows    [][]panda.Value `json:"rows"`
	Tables  []struct {
		Target string          `json:"target"`
		Size   int             `json:"size"`
		Rows   [][]panda.Value `json:"rows"`
	} `json:"tables"`
	Stats     map[string]any     `json:"stats"`
	Truncated bool               `json:"truncated"`
	Signature string             `json:"signature"`
	Timings   map[string]float64 `json:"timings"`
}

// loadOverHTTP pushes a workload instance into the server through the
// public relation endpoints — the ingest path a real client uses.
func loadOverHTTP(t *testing.T, base string, s *panda.Schema, ins *panda.Instance) {
	t.Helper()
	for i, a := range s.Atoms {
		body := fmt.Sprintf(`{"name":%q,"arity":%d}`, a.Name, a.Vars.Card())
		code, resp := post(t, base+"/v1/relations", body)
		if code == http.StatusConflict {
			continue // self-join: both atoms read one table
		}
		if code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", a.Name, code, resp)
		}
		rows, err := json.Marshal(ins.Relations[i].Rows())
		if err != nil {
			t.Fatal(err)
		}
		code, resp = post(t, base+"/v1/relations/"+a.Name+"/rows", fmt.Sprintf(`{"rows":%s}`, rows))
		if code != http.StatusOK {
			t.Fatalf("insert %s: %d %s", a.Name, code, resp)
		}
	}
}

// loadReference copies the same instance into a plain DB, the reference the
// golden-parity tests compare the HTTP path against.
func loadReference(t *testing.T, db *panda.DB, s *panda.Schema, ins *panda.Instance) {
	t.Helper()
	for i, a := range s.Atoms {
		if err := db.CreateRelation(a.Name, a.Vars.Card()); err != nil && !errors.Is(err, panda.ErrRelationExists) {
			t.Fatal(err)
		}
		if err := db.Insert(a.Name, ins.Relations[i].Rows()...); err != nil {
			t.Fatal(err)
		}
	}
}

// The db_test fixtures, in ascending-variable argument order.
const (
	fourCycleSrc        = `Q(A1,A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`
	booleanFourCycleSrc = `Q() :- R12(A1,A2), R23(A2,A3), R34(A3,A4), R41(A1,A4).`
	triangleSrc         = `Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`
	pathRuleSrc         = `T1(A1,A2,A3) v T2(A2,A3,A4) :- R12(A1,A2), R23(A2,A3), R34(A3,A4).`
)

// TestServerGoldenParity: the HTTP path must return byte-identical rows,
// width and mode to a direct db.Query on the same catalog, for every result
// shape the eval goldens pin — the 4-cycle (full), the triangle (ModeAuto),
// the Boolean 4-cycle and the path rule.
func TestServerGoldenParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		sch  *panda.Schema
		ins  *panda.Instance
	}{
		{"four-cycle", fourCycleSrc, &panda.FourCycleQuery().Schema, panda.CycleWorstCase(panda.FourCycleQuery(), 12)},
		{"boolean-four-cycle", booleanFourCycleSrc, &panda.BooleanFourCycle().Schema, panda.CycleWorstCase(panda.BooleanFourCycle(), 16)},
		{"triangle", triangleSrc, &panda.TriangleQuery().Schema, panda.RandomInstance(8, &panda.TriangleQuery().Schema, 50, 12)},
		{"path-rule", pathRuleSrc, &panda.PathRule().Schema, panda.RandomInstance(5, &panda.PathRule().Schema, 30, 6)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts, _ := newTestServer(t, Config{})
			loadOverHTTP(t, ts.URL, tc.sch, tc.ins)

			ref := panda.Open()
			defer ref.Close()
			loadReference(t, ref, tc.sch, tc.ins)
			stmt, err := ref.Prepare(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := stmt.Query()
			if err != nil {
				t.Fatal(err)
			}

			code, got, raw := queryHTTP(t, ts.URL, fmt.Sprintf(`{"query":%q}`, tc.src))
			if code != http.StatusOK {
				t.Fatalf("query: %d %s", code, raw)
			}
			if got.Mode != want.Mode.String() {
				t.Errorf("mode %q, want %q", got.Mode, want.Mode.String())
			}
			if got.Width != want.Width.RatString() {
				t.Errorf("width %q, want %q", got.Width, want.Width.RatString())
			}
			if got.OK != want.OK {
				t.Errorf("ok %v, want %v", got.OK, want.OK)
			}
			if want.Rel != nil {
				if !reflect.DeepEqual(got.Columns, want.Columns) {
					t.Errorf("columns %v, want %v", got.Columns, want.Columns)
				}
				if !rowsEqual(got.Rows, want.Rows()) {
					t.Errorf("rows diverge: %d vs %d", len(got.Rows), len(want.Rows()))
				}
			}
			if want.Mode == panda.ModeRule {
				if len(got.Tables) != len(want.Tables) {
					t.Fatalf("%d tables, want %d", len(got.Tables), len(want.Tables))
				}
				sch := stmt.Schema()
				i := 0
				for _, b := range sortedTargets(want.Tables) {
					tb := got.Tables[i]
					if tb.Target != "T_"+sch.VarLabel(b) || tb.Size != want.Tables[b].Size() {
						t.Errorf("table %d is %s/%d, want T_%s/%d", i, tb.Target, tb.Size, sch.VarLabel(b), want.Tables[b].Size())
					}
					if !rowsEqual(tb.Rows, want.Tables[b].SortedRows()) {
						t.Errorf("table %s rows diverge", tb.Target)
					}
					i++
				}
			}
		})
	}
}

func sortedTargets(tables map[panda.Set]*panda.Relation) []panda.Set {
	out := make([]panda.Set, 0, len(tables))
	for b := range tables {
		out = append(out, b)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func rowsEqual(a, b [][]panda.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestServerGoldenBytes pins the head of the response body for the CLI
// test fixture (R = {(1,2),(2,3)}, S = {(2,5)}), so the wire format matches
// the `panda eval` goldens field for field: same rows, same exact width
// (2^1), same committed mode.
func TestServerGoldenBytes(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, load := range []string{
		`{"name":"R","arity":2}`, `{"name":"S","arity":2}`,
	} {
		if code, resp := post(t, ts.URL+"/v1/relations", load); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, resp)
		}
	}
	if code, resp := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2],[2,3]]}`); code != http.StatusOK {
		t.Fatalf("insert R: %d %s", code, resp)
	}
	if code, resp := post(t, ts.URL+"/v1/relations/S/csv", "2,5\n# comment\n\n"); code != http.StatusOK {
		t.Fatalf("csv S: %d %s", code, resp)
	}
	for _, tc := range []struct{ src, prefix string }{
		{`Q(A,B,C) :- R(A,B), S(B,C).`,
			`{"mode":"full","ok":true,"width":"1","columns":["A","B","C"],"rows":[[1,2,5]],"stats":`},
		{`Q(A,C) :- R(A,B), S(B,C).`,
			`{"mode":"fhtw","ok":true,"width":"1","columns":["A","C"],"rows":[[1,5]],"stats":`},
		{`Q() :- R(A,B), S(B,C).`,
			`{"mode":"fhtw","ok":true,"width":"1","stats":`},
		{`T1(A,B) v T2(B,C) :- R(A,B), S(B,C).`,
			`{"mode":"rule","ok":true,"width":"0","tables":[{"target":"T_AB","size":2,"rows":[[1,2],[2,3]]},{"target":"T_BC","size":0,"rows":[]}],"stats":`},
	} {
		code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, tc.src))
		if code != http.StatusOK {
			t.Fatalf("query %s: %d %s", tc.src, code, raw)
		}
		if !strings.HasPrefix(raw, tc.prefix) {
			t.Errorf("body for %s:\n got %.200s\nwant prefix %s", tc.src, raw, tc.prefix)
		}
	}
}

// stripTimings removes the wall-clock "timings" object from a /v1/query
// body so deterministic-parity assertions can compare the rest
// byte-for-byte. It insists the field was present: losing it silently
// would hollow out the tests that use this.
func stripTimings(t *testing.T, body string) string {
	t.Helper()
	i := strings.LastIndex(body, `,"timings":{`)
	if i < 0 {
		t.Fatalf("body has no timings object: %s", body)
	}
	return body[:i] + "}\n"
}

// metricValue extracts one un-labelled sample from a Prometheus exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServerRepeatQueryZeroLPSolves: the acceptance criterion — a repeated
// /v1/query request is served from the plan cache with zero additional LP
// solves, observable through /metrics.
func TestServerRepeatQueryZeroLPSolves(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &q.Schema, panda.RandomInstance(11, &q.Schema, 40, 10))

	body := fmt.Sprintf(`{"query":%q}`, triangleSrc)
	if code, raw := post(t, ts.URL+"/v1/query", body); code != http.StatusOK {
		t.Fatalf("first query: %d %s", code, raw)
	}
	_, m1 := get(t, ts.URL+"/metrics")
	solves := metricValue(t, m1, "panda_planner_lp_solves_total")
	if solves == 0 {
		t.Fatalf("first query did not plan:\n%s", m1)
	}
	saved := metricValue(t, m1, "panda_planner_lp_solves_saved_total")

	// Repeat the exact text, then a variable renaming: both must be free.
	if code, raw := post(t, ts.URL+"/v1/query", body); code != http.StatusOK {
		t.Fatalf("repeat query: %d %s", code, raw)
	}
	renamed := fmt.Sprintf(`{"query":%q}`, `Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z).`)
	if code, raw := post(t, ts.URL+"/v1/query", renamed); code != http.StatusOK {
		t.Fatalf("renamed query: %d %s", code, raw)
	}
	_, m2 := get(t, ts.URL+"/metrics")
	if got := metricValue(t, m2, "panda_planner_lp_solves_total"); got != solves {
		t.Errorf("repeated queries ran %v extra LP solves", got-solves)
	}
	if got := metricValue(t, m2, "panda_planner_lp_solves_saved_total"); got <= saved {
		t.Errorf("cache hits credited no saved solves (%v -> %v)", saved, got)
	}
	// The exact repeat is served from the statement's result memo without
	// consulting the planner at all; only the renamed query (a distinct
	// statement) reaches the planner and lands a signature cache hit.
	if hits := metricValue(t, m2, "panda_planner_hits_total"); hits < 1 {
		t.Errorf("planner hits = %v, want >= 1", hits)
	}
	if hits := metricValue(t, m2, "panda_stmt_cache_hits_total"); hits < 1 {
		t.Errorf("stmt cache hits = %v, want >= 1", hits)
	}
	// The middleware counted every request with its status.
	if !strings.Contains(m2, `panda_http_requests_total{endpoint="query",code="200"} 3`) {
		t.Errorf("per-endpoint request counter missing:\n%s", m2)
	}
	if c := metricValue(t, m2, `panda_http_request_duration_seconds_count{endpoint="query"}`); c != 3 {
		t.Errorf("latency count = %v, want 3", c)
	}
}

// TestServerPlanEndpoint: a dry-run prepare reports the committed mode and
// exact width certificate without executing, and warms the plan cache for
// the query that follows.
func TestServerPlanEndpoint(t *testing.T) {
	_, ts, db := newTestServer(t, Config{})
	q := panda.TriangleQuery()
	loadOverHTTP(t, ts.URL, &q.Schema, panda.RandomInstance(11, &q.Schema, 40, 10))

	code, body := get(t, ts.URL+"/v1/plan?q="+urlQuery(triangleSrc))
	if code != http.StatusOK {
		t.Fatalf("plan: %d %s", code, body)
	}
	var resp struct {
		Mode      string `json:"mode"`
		Width     string `json:"width"`
		Signature string `json:"signature"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode == "" || resp.Width == "" || resp.Signature == "" {
		t.Fatalf("hollow plan response: %s", body)
	}
	solves := db.PlannerStats().LPSolves
	if solves == 0 {
		t.Fatal("dry-run prepare did not plan")
	}
	if code, raw := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, triangleSrc)); code != http.StatusOK {
		t.Fatalf("query after plan: %d %s", code, raw)
	}
	if got := db.PlannerStats().LPSolves; got != solves {
		t.Errorf("query after plan re-planned (+%d LP solves)", got-solves)
	}
	// A disjunctive rule reports its polymatroid bound as the width.
	pq := panda.PathRule()
	loadOverHTTP(t, ts.URL, &pq.Schema, panda.RandomInstance(5, &pq.Schema, 30, 6))
	code, body = get(t, ts.URL+"/v1/plan?q="+urlQuery(pathRuleSrc))
	if code != http.StatusOK {
		t.Fatalf("rule plan: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "rule" || resp.Width == "" {
		t.Fatalf("rule plan response: %s", body)
	}
}

func urlQuery(src string) string { return url.QueryEscape(src) }

// TestServerCatalogEndpoints: the relation lifecycle over HTTP — create,
// list, CSV ingest, drop — including the 409 on duplicate create and the
// 404 on dropping a missing relation.
func TestServerCatalogEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusConflict || !strings.Contains(b, "relation_exists") {
		t.Fatalf("duplicate create: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations/R/csv", "1,2\n3,4\n"); code != http.StatusOK || !strings.Contains(b, `"rows":2`) {
		t.Fatalf("csv: %d %s", code, b)
	}
	code, b := get(t, ts.URL+"/v1/relations")
	if code != http.StatusOK || !strings.Contains(b, `{"name":"R","arity":2,"size":2}`) {
		t.Fatalf("list: %d %s", code, b)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/relations/R", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("drop: %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double drop: %d", resp.StatusCode)
	}
}

// TestServerErrorMapping: each structured sentinel surfaces as its own HTTP
// status with a stable machine-readable code, malformed bodies are 400, and
// an overrun per-request deadline is 504 carrying the context error.
func TestServerErrorMapping(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}

	// Sentinel → status over the wire.
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown relation", `{"query":"Q(A,B) :- Missing(A,B)."}`, http.StatusNotFound, "unknown_relation"},
		{"arity mismatch", `{"query":"Q(A,B,C) :- R(A,B,C)."}`, http.StatusUnprocessableEntity, "arity_mismatch"},
		{"mode on rule", `{"query":"T1(A) v T2(B) :- R(A,B).","mode":"subw"}`, http.StatusBadRequest, "not_conjunctive"},
		{"parse error", `{"query":"this is not a query"}`, http.StatusBadRequest, "bad_request"},
		{"malformed JSON", `{"query":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"query":"Q(A,B) :- R(A,B).","mod":"subw"}`, http.StatusBadRequest, "bad_request"},
		{"bad mode", `{"query":"Q(A,B) :- R(A,B).","mode":"fast"}`, http.StatusBadRequest, "bad_request"},
	} {
		code, b := post(t, ts.URL+"/v1/query", tc.body)
		if code != tc.status || !strings.Contains(b, tc.code) {
			t.Errorf("%s: got %d %s, want %d with code %s", tc.name, code, b, tc.status, tc.code)
		}
	}
	if code, b := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2,3]]}`); code != http.StatusUnprocessableEntity || !strings.Contains(b, "arity_mismatch") {
		t.Errorf("wrong-arity insert: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"Z","arity":0}`); code != http.StatusUnprocessableEntity {
		t.Errorf("zero-arity create: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations/Missing/rows", `{"rows":[[1,2]]}`); code != http.StatusNotFound {
		t.Errorf("insert into missing: %d %s", code, b)
	}
	if code, b := get(t, ts.URL+"/v1/plan"); code != http.StatusBadRequest {
		t.Errorf("plan without q: %d %s", code, b)
	}

	// The full sentinel table, including the ones the catalog-bound HTTP
	// path cannot reach (ErrUnboundedLP needs an incomplete constraint
	// set; ErrClosed needs a closed session) — the mapping must still be
	// distinct for them.
	for _, tc := range []struct {
		err    error
		status int
	}{
		{panda.ErrUnknownRelation, http.StatusNotFound},
		{panda.ErrRelationExists, http.StatusConflict},
		{panda.ErrArity, http.StatusUnprocessableEntity},
		{panda.ErrNotConjunctive, http.StatusBadRequest},
		{panda.ErrUnboundedLP, http.StatusFailedDependency},
		{panda.ErrClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
	} {
		if got := statusOf(fmt.Errorf("wrapped: %w", tc.err)); got != tc.status {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.status)
		}
	}
}

// TestServerTimeout: a per-request deadline that expires mid-request is
// reported as 504 with the context error in the body.
func TestServerTimeout(t *testing.T) {
	_, ts, db := newTestServer(t, Config{Timeout: time.Nanosecond})
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []panda.Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	code, b := post(t, ts.URL+"/v1/query", `{"query":"Q(A,B) :- R(A,B)."}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timeout status: %d %s", code, b)
	}
	if !strings.Contains(b, "deadline_exceeded") || !strings.Contains(b, context.DeadlineExceeded.Error()) {
		t.Fatalf("timeout body lacks the context error: %s", b)
	}
}

// TestServerShutdownDrain: Shutdown waits for an in-flight query to finish
// (the client still gets its 200 and full body) while refusing new
// requests with 503.
func TestServerShutdownDrain(t *testing.T) {
	s, ts, db := newTestServer(t, Config{})
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []panda.Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	s.queryStarted = func() {
		close(started)
		<-release
	}

	type result struct {
		code int
		body string
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"query":"Q(A,B) :- R(A,B)."}`))
		if err != nil {
			slow <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		slow <- result{resp.StatusCode, string(b)}
	}()
	<-started

	shdone := make(chan error, 1)
	go func() { shdone <- s.Shutdown(context.Background()) }()

	// Wait for draining to take effect, then confirm new traffic is
	// refused while the slow query is still in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := get(t, ts.URL+"/metrics")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-shdone:
		t.Fatalf("Shutdown returned (%v) with a query still in flight", err)
	case <-slow:
		t.Fatal("in-flight query finished before release")
	default:
	}

	close(release)
	if err := <-shdone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-slow
	if r.code != http.StatusOK || !strings.Contains(r.body, `"rows":[[1,2]]`) {
		t.Fatalf("drained query: %d %s", r.code, r.body)
	}
}

// TestServerParallelismParity: a parallel execution request returns the
// identical body to the sequential one (the executor merge is
// deterministic).
func TestServerParallelismParity(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := panda.BooleanFourCycle()
	loadOverHTTP(t, ts.URL, &q.Schema, panda.CycleWorstCase(q, 16))
	_, seq := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q}`, booleanFourCycleSrc))
	_, par := post(t, ts.URL+"/v1/query", fmt.Sprintf(`{"query":%q,"parallelism":4}`, booleanFourCycleSrc))
	// Everything through "signature" is deterministic; the trailing
	// "timings" object is wall-clock and legitimately varies run to run.
	seq, par = stripTimings(t, seq), stripTimings(t, par)
	if seq != par {
		t.Fatalf("parallel body diverges:\n%s\nvs\n%s", seq, par)
	}
}
