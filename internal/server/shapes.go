package server

import (
	"container/list"
	"sort"
)

// Shape-level telemetry: every successful query is attributed to its plan
// signature digest (the renaming-invariant shape identity the planner caches
// by), so /metrics and /v1/shapes can answer "which query shapes dominate
// traffic and how does latency distribute per shape". Cardinality is bounded
// by a top-K LRU table on the digest; evicted shapes roll up into a single
// "other" bucket, so an adversarial stream of novel shapes can never explode
// the label space of the exposition.

// bucketBounds are the fixed exponential upper bounds (seconds) shared by
// every latency histogram in the exposition; the implicit +Inf bucket is
// counts[len(bucketBounds)].
var bucketBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. It is not goroutine-safe;
// the owning metrics struct serializes access.
type histogram struct {
	counts [len(bucketBounds) + 1]uint64 // per-bucket (non-cumulative); last is +Inf
	count  uint64
	sum    float64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(bucketBounds[:], seconds)
	h.counts[i]++
	h.count++
	h.sum += seconds
}

// merge folds src into h (used when an evicted shape rolls into "other").
func (h *histogram) merge(src *histogram) {
	for i, c := range src.counts {
		h.counts[i] += c
	}
	h.count += src.count
	h.sum += src.sum
}

func (h *histogram) clone() *histogram {
	c := *h
	return &c
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank; the +Inf bucket reports the
// largest finite bound. Zero observations report 0.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(bucketBounds) {
				return bucketBounds[len(bucketBounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + frac*(bucketBounds[i]-lo)
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

// otherShapeLabel is the digest label the evicted tail rolls up into.
const otherShapeLabel = "other"

// shapeStat accumulates one shape's telemetry.
type shapeStat struct {
	digest   string
	requests map[string]uint64 // committed mode → count
	rows     uint64
	exec     histogram
}

func newShapeStat(digest string) *shapeStat {
	return &shapeStat{digest: digest, requests: map[string]uint64{}}
}

func (s *shapeStat) total() uint64 {
	var n uint64
	for _, c := range s.requests {
		n += c
	}
	return n
}

func (s *shapeStat) clone() *shapeStat {
	c := newShapeStat(s.digest)
	for m, n := range s.requests {
		c.requests[m] = n
	}
	c.rows = s.rows
	c.exec = s.exec
	return c
}

// shapeTable is the bounded top-K shape table: an LRU keyed by signature
// digest whose evictions fold into the "other" rollup instead of being
// lost. Not goroutine-safe; the owning metrics struct serializes access.
type shapeTable struct {
	cap      int
	ll       *list.List               // front = most recently observed
	idx      map[string]*list.Element // digest → element holding *shapeStat
	other    *shapeStat               // rollup of every evicted shape
	evicted  uint64                   // digests evicted into other, total
	overflow bool                     // other has absorbed at least one shape
}

// defaultShapeTableSize bounds the per-shape label cardinality when the
// Config does not say otherwise.
const defaultShapeTableSize = 64

func newShapeTable(capacity int) *shapeTable {
	if capacity <= 0 {
		capacity = defaultShapeTableSize
	}
	return &shapeTable{
		cap:   capacity,
		ll:    list.New(),
		idx:   map[string]*list.Element{},
		other: newShapeStat(otherShapeLabel),
	}
}

// observe attributes one served query to its shape, evicting the
// least-recently-observed shape into "other" when the table is full.
func (t *shapeTable) observe(digest, mode string, rows uint64, seconds float64) {
	el, ok := t.idx[digest]
	if !ok {
		if t.ll.Len() >= t.cap {
			lru := t.ll.Back()
			ev := lru.Value.(*shapeStat)
			for m, n := range ev.requests {
				t.other.requests[m] += n
			}
			t.other.rows += ev.rows
			t.other.exec.merge(&ev.exec)
			t.ll.Remove(lru)
			delete(t.idx, ev.digest)
			t.evicted++
			t.overflow = true
		}
		el = t.ll.PushFront(newShapeStat(digest))
		t.idx[digest] = el
	} else {
		t.ll.MoveToFront(el)
	}
	s := el.Value.(*shapeStat)
	s.requests[mode]++
	s.rows += rows
	s.exec.observe(seconds)
}

// snapshot deep-copies the table in most-recently-observed order plus the
// "other" rollup (nil when nothing has been evicted), so rendering can
// happen outside the metrics lock.
func (t *shapeTable) snapshot() (shapes []*shapeStat, other *shapeStat, evicted uint64) {
	shapes = make([]*shapeStat, 0, t.ll.Len())
	for el := t.ll.Front(); el != nil; el = el.Next() {
		shapes = append(shapes, el.Value.(*shapeStat).clone())
	}
	if t.overflow {
		other = t.other.clone()
	}
	return shapes, other, t.evicted
}
