package server

import (
	"container/list"
	"sync"

	"panda"
)

// DefaultStmtCacheSize is the statement capacity of a Server whose config
// leaves StmtCacheSize at zero.
const DefaultStmtCacheSize = 256

// stmtCache is a bounded LRU of prepared statements keyed by raw query
// text. It sits above the planner's signature cache: a stmt hit skips
// parsing and catalog validation, and the Stmt it returns memoizes its
// bound catalog snapshot, so steady-state request handling is parse-free
// and plan-free. Statements self-invalidate against catalog mutations (the
// Stmt rebinds when the catalog version moves), so entries never serve
// stale data and need no explicit invalidation here.
type stmtCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List               // front = most recently used
	index        map[string]*list.Element // query text → element; value is *stmtEntry
	hits, misses uint64
}

type stmtEntry struct {
	src  string
	stmt *panda.Stmt
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = DefaultStmtCacheSize
	}
	return &stmtCache{cap: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

// get returns the cached statement for src, refreshing its recency.
func (c *stmtCache) get(src string) (*panda.Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[src]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*stmtEntry).stmt, true
}

// put caches a statement, evicting the least recently used entry beyond
// capacity. Concurrent misses for the same text may both prepare and put;
// the second put wins, which is harmless — both statements plan through
// the same session planner.
func (c *stmtCache) put(src string, st *panda.Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[src]; ok {
		el.Value.(*stmtEntry).stmt = st
		c.ll.MoveToFront(el)
		return
	}
	c.index[src] = c.ll.PushFront(&stmtEntry{src: src, stmt: st})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.index, back.Value.(*stmtEntry).src)
	}
}

// snapshot reports (entries, hits, misses) for the metrics endpoint.
func (c *stmtCache) snapshot() (int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
