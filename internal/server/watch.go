package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"panda"
)

// POST /v1/watch — the standing-query stream. The request body names a
// query; the response is an unbounded NDJSON stream: first one snapshot
// line carrying the complete materialized result and the catalog tick it
// reflects, then one line per maintenance delta as the catalog mutates.
// Every line is flushed as soon as it is written, so a subscriber sees a
// delta within one maintenance round of the mutation that caused it.
//
//	{"snapshot":true,"tick":3,"mode":"full","ok":true,"width":"3/2","columns":["A","B","C"],"rows":[[1,2,3]]}
//	{"tick":5,"ok":true,"rows":[[2,3,4]]}
//	{"tick":9,"ok":true,"resync":true,"rows":[[1,2,3],[2,3,4]]}
//
// A delta line's rows are the newly added tuples; a line with
// "resync":true instead carries the complete current state and the
// consumer must replace its materialization (sent after a drop/recreate of
// a referenced relation, on delta-queue overflow, and on every round of a
// disjunctive-rule watch, whose lines carry "tables" rather than "rows").
// The stream ends when the client disconnects, the server drains, or the
// watch dies — a terminal error is reported as a final {"error":…,"code":…}
// line.

type watchRequest struct {
	// Query is the standing query text: a conjunctive query or a
	// disjunctive datalog rule, with optional constraint lines.
	Query string `json:"query"`
	// Queue sizes the watch's bounded delta queue; 0 selects the session
	// default. A slow subscriber that overflows it receives a resync line
	// instead of unbounded buffering.
	Queue int `json:"queue,omitempty"`
	// Fallback forces full re-execution per maintenance round instead of
	// semi-naive incremental rounds (same stream, more work per round);
	// useful for A/B-ing the incremental path.
	Fallback bool `json:"fallback,omitempty"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.fail(w, errors.New("missing query text"))
		return
	}
	if req.Queue < 0 {
		s.fail(w, errors.New("queue must be non-negative"))
		return
	}
	st, err := s.stmt(req.Query)
	if err != nil {
		s.fail(w, err)
		return
	}
	var opts []panda.Option
	if req.Queue > 0 {
		opts = append(opts, panda.WithWatchQueue(req.Queue))
	}
	if req.Fallback {
		opts = append(opts, panda.WithWatchFallback(true))
	}
	wch, err := st.Watch(opts...)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer wch.Close()
	s.metrics.watchOpened()
	defer s.metrics.watchClosed()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := http.NewResponseController(w)
	res, tick := wch.Snapshot()
	writeWatchSnapshot(w, st, res, tick)
	flush.Flush()

	for {
		select {
		case <-r.Context().Done():
			// Client went away; the deferred Close tears the maintainer down.
			return
		case <-s.drainCh:
			// Shutdown: end the stream so the in-flight drain can complete.
			return
		case d, ok := <-wch.Deltas():
			if !ok {
				// The watch died underneath us (session closed, maintenance
				// error); report why as the stream's final line.
				if err := wch.Err(); err != nil {
					b, _ := json.Marshal(map[string]string{"error": err.Error(), "code": codeOf(err)})
					w.Write(append(b, '\n'))
					flush.Flush()
				}
				return
			}
			s.metrics.watchDelta(d.Resync)
			writeWatchDelta(w, st, d)
			flush.Flush()
		}
	}
}

// writeWatchSnapshot renders the stream's opening line: the complete
// materialized result plus the catalog tick it reflects. Field spellings
// match the /v1/query body, so one decoder serves both.
func writeWatchSnapshot(w io.Writer, st *panda.Stmt, res *panda.Result, tick uint64) {
	fmt.Fprintf(w, `{"snapshot":true,"tick":%d,"mode":%q,"ok":%t`, tick, res.Mode.String(), res.OK)
	if res.Width != nil {
		fmt.Fprintf(w, `,"width":%q`, res.Width.RatString())
	}
	if res.Signature != "" {
		fmt.Fprintf(w, `,"signature":%q`, res.Signature)
	}
	if res.Rel != nil {
		cols, _ := json.Marshal(res.Columns)
		fmt.Fprintf(w, `,"columns":%s,"rows":`, cols)
		streamRows(w, nil, res.Iter(), 0)
	}
	if res.Mode == panda.ModeRule {
		writeTables(w, nil, st, res.Tables, 0)
	}
	io.WriteString(w, "}\n")
}

// writeWatchDelta renders one maintenance delta as a stream line.
func writeWatchDelta(w io.Writer, st *panda.Stmt, d panda.WatchDelta) {
	fmt.Fprintf(w, `{"tick":%d,"ok":%t`, d.Tick, d.OK)
	if d.Resync {
		io.WriteString(w, `,"resync":true`)
	}
	if d.Tables != nil {
		writeTables(w, nil, st, d.Tables, 0)
	} else if d.Rows != nil || d.Resync {
		// A resync line always spells out rows (possibly empty): the
		// consumer replaces its state with exactly what is printed.
		io.WriteString(w, `,"rows":`)
		streamRows(w, nil, rowSeq(d.Rows), 0)
	}
	io.WriteString(w, "}\n")
}

// ---- NDJSON /v1/query ----

// wantsNDJSON reports whether the client asked for the NDJSON response
// framing (Accept: application/x-ndjson).
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// writeResultNDJSON streams a conjunctive result in the NDJSON framing: a
// header line with the scalar fields and columns, one line per row (a bare
// JSON array), and a trailer line with the row count, truncation flag and
// stats. Line-oriented output lets `curl -N … | jq` and log shippers
// consume large results without buffering the whole body.
func (s *Server) writeResultNDJSON(w http.ResponseWriter, res *panda.Result, maxRows int) (rows int, truncated bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flush := http.NewResponseController(w)
	fmt.Fprintf(w, `{"mode":%q,"ok":%t`, res.Mode.String(), res.OK)
	if res.Width != nil {
		fmt.Fprintf(w, `,"width":%q`, res.Width.RatString())
	}
	if res.Rel != nil {
		cols, _ := json.Marshal(res.Columns)
		fmt.Fprintf(w, `,"columns":%s`, cols)
	}
	if res.Signature != "" {
		fmt.Fprintf(w, `,"signature":%q`, res.Signature)
	}
	io.WriteString(w, "}\n")
	if res.Rel != nil {
		buf := make([]byte, 0, 64)
		for row := range res.Iter() {
			if maxRows > 0 && rows >= maxRows {
				truncated = true
				break
			}
			buf = appendRow(buf[:0], row)
			buf = append(buf, '\n')
			w.Write(buf)
			rows++
			if rows%4096 == 0 {
				flush.Flush()
			}
		}
	}
	fmt.Fprintf(w, `{"rows":%d`, rows)
	if truncated {
		io.WriteString(w, `,"truncated":true`)
	}
	if res.Stats != nil {
		if b, err := json.Marshal(res.Stats); err == nil {
			fmt.Fprintf(w, `,"stats":%s`, b)
		}
	}
	if res.Timings != nil {
		if b, err := json.Marshal(res.Timings.Seconds()); err == nil {
			fmt.Fprintf(w, `,"timings":%s`, b)
		}
	}
	io.WriteString(w, "}\n")
	return rows, truncated
}
