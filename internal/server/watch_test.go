package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"panda"
)

// watchLineJSON decodes any line of a /v1/watch NDJSON stream: the snapshot
// header, a delta, or the terminal error line.
type watchLineJSON struct {
	Snapshot  bool            `json:"snapshot"`
	Tick      uint64          `json:"tick"`
	Mode      string          `json:"mode"`
	OK        bool            `json:"ok"`
	Width     string          `json:"width"`
	Signature string          `json:"signature"`
	Columns   []string        `json:"columns"`
	Rows      [][]panda.Value `json:"rows"`
	Resync    bool            `json:"resync"`
	Tables    []struct {
		Target string          `json:"target"`
		Size   int             `json:"size"`
		Rows   [][]panda.Value `json:"rows"`
	} `json:"tables"`
	Error string `json:"error"`
	Code  string `json:"code"`
}

// watchStream is a test client for the NDJSON stream: a reader goroutine
// pumps lines into a channel so tests can wait with a deadline.
type watchStream struct {
	resp  *http.Response
	lines chan string
}

func openWatch(t *testing.T, base, body string) *watchStream {
	t.Helper()
	resp, err := http.Post(base+"/v1/watch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch: %d %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	ws := &watchStream{resp: resp, lines: make(chan string, 256)}
	go func() {
		defer close(ws.lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			ws.lines <- sc.Text()
		}
	}()
	t.Cleanup(func() { resp.Body.Close() })
	return ws
}

// next returns the next decoded stream line, failing the test after a
// deadline; eof reports a cleanly closed stream instead of failing.
func (ws *watchStream) next(t *testing.T) (line watchLineJSON, raw string, eof bool) {
	t.Helper()
	select {
	case raw, ok := <-ws.lines:
		if !ok {
			return watchLineJSON{}, "", true
		}
		var l watchLineJSON
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("stream line is not valid JSON: %v\n%s", err, raw)
		}
		return l, raw, false
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a watch stream line")
	}
	return watchLineJSON{}, "", false
}

// rowSet keys rows for order-independent set comparison.
func rowSet(rows [][]panda.Value) map[string]bool {
	m := make(map[string]bool, len(rows))
	for _, r := range rows {
		m[fmt.Sprint(r)] = true
	}
	return m
}

// TestServerWatchStreamParity drives the full subscription path: snapshot
// line, then delta lines as the catalog grows over HTTP, with the applied
// stream converging to a direct db.Query — and zero LP solves after the
// watch is open (maintenance runs the pinned plan).
func TestServerWatchStreamParity(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, body := range []string{
		`{"name":"R","arity":2}`, `{"name":"S","arity":2}`, `{"name":"T","arity":2}`,
	} {
		if code, b := post(t, ts.URL+"/v1/relations", body); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, b)
		}
	}
	if code, b := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2]]}`); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations/S/rows", `{"rows":[[2,3]]}`); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, b)
	}

	ws := openWatch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, triangleSrc))
	snap, _, _ := ws.next(t)
	if !snap.Snapshot || snap.OK || len(snap.Rows) != 0 {
		t.Fatalf("bad snapshot line: %+v", snap)
	}
	if !reflect.DeepEqual(snap.Columns, []string{"A", "B", "C"}) {
		t.Fatalf("snapshot columns %v", snap.Columns)
	}
	_, m := get(t, ts.URL+"/metrics")
	if subs := metricValue(t, m, "panda_watch_subscriptions"); subs != 1 {
		t.Fatalf("subscriptions gauge = %v, want 1", subs)
	}
	solves := metricValue(t, m, "panda_planner_lp_solves_total")

	// Complete one triangle, then add a second disjoint one; the watch must
	// converge to exactly the direct-query answer.
	for _, ins := range []struct{ rel, rows string }{
		{"T", `[[1,3]]`},
		{"R", `[[4,5]]`}, {"S", `[[5,6]]`}, {"T", `[[4,6]]`},
	} {
		if code, b := post(t, ts.URL+"/v1/relations/"+ins.rel+"/rows", fmt.Sprintf(`{"rows":%s}`, ins.rows)); code != http.StatusOK {
			t.Fatalf("insert %s: %d %s", ins.rel, code, b)
		}
	}
	// Reference on a separate session: a direct query here would replan
	// (grown catalog → new constraint values) and muddy the zero-LP assert.
	ref := panda.Open()
	defer ref.Close()
	for rel, rows := range map[string][][]panda.Value{
		"R": {{1, 2}, {4, 5}}, "S": {{2, 3}, {5, 6}}, "T": {{1, 3}, {4, 6}},
	} {
		if err := ref.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		if err := ref.Insert(rel, rows...); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := rowSet(want.Rows())
	applied := rowSet(snap.Rows)
	tick := snap.Tick
	for !reflect.DeepEqual(applied, wantSet) {
		l, raw, eof := ws.next(t)
		if eof {
			t.Fatalf("stream closed before converging: have %v want %v", applied, wantSet)
		}
		if l.Tick < tick {
			t.Fatalf("tick went backwards (%d -> %d): %s", tick, l.Tick, raw)
		}
		tick = l.Tick
		if l.Resync {
			applied = rowSet(l.Rows)
			continue
		}
		for k := range rowSet(l.Rows) {
			applied[k] = true
		}
	}

	_, m = get(t, ts.URL+"/metrics")
	if got := metricValue(t, m, "panda_planner_lp_solves_total"); got != solves {
		t.Errorf("watch maintenance ran %v extra LP solves", got-solves)
	}
	if d := metricValue(t, m, "panda_watch_deltas_total"); d < 1 {
		t.Errorf("deltas counter = %v, want >= 1", d)
	}
}

// TestServerWatchDisconnect: a client that drops its connection tears the
// watch down server-side — the subscriptions gauge returns to zero.
func TestServerWatchDisconnect(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}
	ws := openWatch(t, ts.URL, `{"query":"Q(A,B) :- R(A,B)."}`)
	if snap, _, _ := ws.next(t); !snap.Snapshot {
		t.Fatalf("bad snapshot line: %+v", snap)
	}
	ws.resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, m := get(t, ts.URL+"/metrics")
		if metricValue(t, m, "panda_watch_subscriptions") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch subscription never cleaned up after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerWatchShutdownDrain: Shutdown must terminate open watch streams
// (they would otherwise hold the in-flight drain forever) and the client
// sees a clean end of stream.
func TestServerWatchShutdownDrain(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	if code, b := post(t, ts.URL+"/v1/relations", `{"name":"R","arity":2}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, b)
	}
	ws := openWatch(t, ts.URL, `{"query":"Q(A,B) :- R(A,B)."}`)
	if snap, _, _ := ws.next(t); !snap.Snapshot {
		t.Fatalf("bad snapshot line: %+v", snap)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with an open watch: %v", err)
	}
	if _, raw, eof := ws.next(t); !eof {
		t.Fatalf("stream still open after shutdown: %s", raw)
	}
}

// TestServerWatchRuleStream: a disjunctive-rule watch streams complete
// models — every delta line carries resync with the full tables, matching
// a direct query on the same catalog.
func TestServerWatchRuleStream(t *testing.T) {
	_, ts, db := newTestServer(t, Config{})
	for _, body := range []string{
		`{"name":"R12","arity":2}`, `{"name":"R23","arity":2}`, `{"name":"R34","arity":2}`,
	} {
		if code, b := post(t, ts.URL+"/v1/relations", body); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, b)
		}
	}
	ws := openWatch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, pathRuleSrc))
	snap, _, _ := ws.next(t)
	if !snap.Snapshot || snap.Mode != "rule" || snap.Tables == nil {
		t.Fatalf("bad rule snapshot line: %+v", snap)
	}

	for _, ins := range []struct{ rel, rows string }{
		{"R12", `[[1,2]]`}, {"R23", `[[2,3]]`}, {"R34", `[[3,4]]`},
	} {
		if code, b := post(t, ts.URL+"/v1/relations/"+ins.rel+"/rows", fmt.Sprintf(`{"rows":%s}`, ins.rows)); code != http.StatusOK {
			t.Fatalf("insert %s: %d %s", ins.rel, code, b)
		}
	}
	want, err := db.Query(pathRuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(pathRuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	sch := st.Schema()

	// Every rule line is a resync; wait for one matching the final model.
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, raw, eof := ws.next(t)
		if eof || time.Now().After(deadline) {
			t.Fatalf("stream ended before reaching the final model (eof=%v)", eof)
		}
		if !l.Resync || l.Tables == nil {
			t.Fatalf("rule delta line without resync tables: %s", raw)
		}
		match := len(l.Tables) == len(want.Tables)
		if match {
			i := 0
			for _, b := range sortedTargets(want.Tables) {
				tb := l.Tables[i]
				if tb.Target != "T_"+sch.VarLabel(b) || !rowsEqual(tb.Rows, want.Tables[b].SortedRows()) {
					match = false
					break
				}
				i++
			}
		}
		if match {
			break
		}
	}
}

// TestServerWatchErrors: request validation surfaces as plain JSON errors
// before any stream starts.
func TestServerWatchErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"missing query", `{}`, http.StatusBadRequest, "bad_request"},
		{"unknown relation", `{"query":"Q(A,B) :- Missing(A,B)."}`, http.StatusNotFound, "unknown_relation"},
		{"negative queue", `{"query":"Q(A,B) :- R(A,B).","queue":-1}`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"query":"Q(A,B) :- R(A,B).","mode":"subw"}`, http.StatusBadRequest, "bad_request"},
	} {
		code, b := post(t, ts.URL+"/v1/watch", tc.body)
		if code != tc.status || !strings.Contains(b, tc.code) {
			t.Errorf("%s: got %d %s, want %d with code %s", tc.name, code, b, tc.status, tc.code)
		}
	}
}

// TestServerQueryNDJSON pins the NDJSON wire format for /v1/query: a header
// line, one bare-array line per row, and a trailer line with the row count
// and stats — and that rules ignore the Accept header (tables don't fit a
// single row stream).
func TestServerQueryNDJSON(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, load := range []string{`{"name":"R","arity":2}`, `{"name":"S","arity":2}`} {
		if code, b := post(t, ts.URL+"/v1/relations", load); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, b)
		}
	}
	if code, b := post(t, ts.URL+"/v1/relations/R/rows", `{"rows":[[1,2],[2,3]]}`); code != http.StatusOK {
		t.Fatalf("insert R: %d %s", code, b)
	}
	if code, b := post(t, ts.URL+"/v1/relations/S/rows", `{"rows":[[2,5]]}`); code != http.StatusOK {
		t.Fatalf("insert S: %d %s", code, b)
	}

	ndjson := func(body string) (*http.Response, []string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		raw := strings.TrimSuffix(string(b), "\n")
		return resp, strings.Split(raw, "\n")
	}

	resp, lines := ndjson(`{"query":"Q(A,B,C) :- R(A,B), S(B,C)."}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("ndjson query: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if len(lines) != 3 {
		t.Fatalf("ndjson framing: %d lines\n%s", len(lines), strings.Join(lines, "\n"))
	}
	wantHeader := `{"mode":"full","ok":true,"width":"1","columns":["A","B","C"],"signature":"`
	if !strings.HasPrefix(lines[0], wantHeader) {
		t.Errorf("header line:\n got %s\nwant prefix %s", lines[0], wantHeader)
	}
	if lines[1] != `[1,2,5]` {
		t.Errorf("row line: %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], `{"rows":1,"stats":`) {
		t.Errorf("trailer line: %s", lines[2])
	}

	// max_rows truncation is reported in the trailer.
	_, lines = ndjson(`{"query":"Q(A,B) :- R(A,B).","max_rows":1}`)
	if len(lines) != 3 || !strings.HasPrefix(lines[2], `{"rows":1,"truncated":true`) {
		t.Errorf("truncated trailer:\n%s", strings.Join(lines, "\n"))
	}

	// A rule answers with the buffered JSON object even under the header.
	resp, lines = ndjson(`{"query":"T1(A,B) v T2(B,C) :- R(A,B), S(B,C)."}`)
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("rule content type %q", resp.Header.Get("Content-Type"))
	}
	if len(lines) != 1 || !strings.HasPrefix(lines[0], `{"mode":"rule",`) {
		t.Errorf("rule body:\n%s", strings.Join(lines, "\n"))
	}
}
