// Package setfunc implements exact rational set functions h : 2^[n] → Q and
// the function classes of the paper's Section 2: modular (Mn), entropic-like,
// submodular/polymatroid (Γn) and subadditive (SAn) functions, together with
// the closure-defined polymatroids of Figures 5 and 6 and samplers used by
// property-based tests.
//
// A set function is stored as a dense vector indexed by bitmask, following
// the paper's identification of set functions with vectors in R^{2^n}.
package setfunc

import (
	"fmt"
	"math/big"
	"math/rand"

	"panda/internal/bitset"
)

// Func is a set function on [n] with exact rational values.
// The zero value is not usable; construct with New.
type Func struct {
	N int
	V []*big.Rat // indexed by bitmask; V[0] must be 0
}

// New returns the all-zero set function on [n].
func New(n int) *Func {
	v := make([]*big.Rat, 1<<uint(n))
	for i := range v {
		v[i] = new(big.Rat)
	}
	return &Func{N: n, V: v}
}

// Clone returns a deep copy of h.
func (h *Func) Clone() *Func {
	g := New(h.N)
	for i, v := range h.V {
		g.V[i].Set(v)
	}
	return g
}

// At returns h(S).
func (h *Func) At(s bitset.Set) *big.Rat { return h.V[s] }

// Set assigns h(S) = v.
func (h *Func) Set(s bitset.Set, v *big.Rat) { h.V[s].Set(v) }

// Cond returns the conditional value h(Y|X) = h(Y) − h(X).
func (h *Func) Cond(y, x bitset.Set) *big.Rat {
	return new(big.Rat).Sub(h.V[y], h.V[x])
}

// Scale returns s·h.
func (h *Func) Scale(s *big.Rat) *Func {
	g := New(h.N)
	for i, v := range h.V {
		g.V[i].Mul(v, s)
	}
	return g
}

// IsNonNegative reports whether h(S) ≥ 0 for all S and h(∅) = 0.
func (h *Func) IsNonNegative() bool {
	if h.V[0].Sign() != 0 {
		return false
	}
	for _, v := range h.V {
		if v.Sign() < 0 {
			return false
		}
	}
	return true
}

// IsMonotone reports whether h(X) ≤ h(Y) whenever X ⊆ Y. It checks the
// elemental inequalities h(S) ≤ h(S ∪ {i}), which generate all of them.
func (h *Func) IsMonotone() bool {
	full := bitset.Full(h.N)
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < h.N; i++ {
			if s.Contains(i) {
				continue
			}
			if h.V[s].Cmp(h.V[s.Add(i)]) > 0 {
				return false
			}
		}
	}
	return true
}

// IsSubmodular reports whether h(X∪Y) + h(X∩Y) ≤ h(X) + h(Y) for all X, Y.
// It checks the elemental inequalities
// h(S∪{i}) + h(S∪{j}) ≥ h(S∪{i,j}) + h(S), which generate all of them.
func (h *Func) IsSubmodular() bool {
	full := bitset.Full(h.N)
	lhs, rhs := new(big.Rat), new(big.Rat)
	for s := bitset.Set(0); s <= full; s++ {
		for i := 0; i < h.N; i++ {
			if s.Contains(i) {
				continue
			}
			for j := i + 1; j < h.N; j++ {
				if s.Contains(j) {
					continue
				}
				lhs.Add(h.V[s.Add(i)], h.V[s.Add(j)])
				rhs.Add(h.V[s.Add(i).Add(j)], h.V[s])
				if lhs.Cmp(rhs) < 0 {
					return false
				}
			}
		}
	}
	return true
}

// IsPolymatroid reports membership in Γn: non-negative, monotone,
// submodular, with h(∅) = 0.
func (h *Func) IsPolymatroid() bool {
	return h.IsNonNegative() && h.IsMonotone() && h.IsSubmodular()
}

// IsModular reports whether h(S) = Σ_{v∈S} h({v}) for all S.
func (h *Func) IsModular() bool {
	full := bitset.Full(h.N)
	sum := new(big.Rat)
	for s := bitset.Set(0); s <= full; s++ {
		sum.SetInt64(0)
		for _, v := range s.Vars() {
			sum.Add(sum, h.V[bitset.Singleton(v)])
		}
		if sum.Cmp(h.V[s]) != 0 {
			return false
		}
	}
	return true
}

// IsSubadditive reports whether h(X∪Y) ≤ h(X) + h(Y) for all X, Y
// (checked exhaustively; subadditivity has no small elemental basis).
func (h *Func) IsSubadditive() bool {
	full := bitset.Full(h.N)
	sum := new(big.Rat)
	for x := bitset.Set(0); x <= full; x++ {
		for y := x; y <= full; y++ {
			sum.Add(h.V[x], h.V[y])
			if h.V[x|y].Cmp(sum) > 0 {
				return false
			}
		}
	}
	return true
}

// EdgeDominated reports whether h(F) ≤ bound for every F in edges — the
// paper's ED set (Definition 2.4) with an explicit bound (1 for the
// normalized version, log N for the scaled version).
func (h *Func) EdgeDominated(edges []bitset.Set, bound *big.Rat) bool {
	for _, f := range edges {
		if h.V[f].Cmp(bound) > 0 {
			return false
		}
	}
	return true
}

// VertexDominated reports whether h({v}) ≤ bound for every v ∈ [n] — the
// paper's VD set (Definition 2.4).
func (h *Func) VertexDominated(bound *big.Rat) bool {
	for v := 0; v < h.N; v++ {
		if h.V[bitset.Singleton(v)].Cmp(bound) > 0 {
			return false
		}
	}
	return true
}

// Modular builds the modular function with the given singleton weights.
func Modular(weights []*big.Rat) *Func {
	h := New(len(weights))
	full := bitset.Full(len(weights))
	for s := bitset.Set(1); s <= full; s++ {
		sum := h.V[s]
		for _, v := range s.Vars() {
			sum.Add(sum, weights[v])
		}
	}
	return h
}

// Closure builds a set function from a family of closed sets with values, as
// in Figures 5 and 6 of the paper: h(Z) is the value of the smallest closed
// set containing Z (implemented as the minimum value over closed supersets,
// which coincides when values are monotone on the closure lattice).
// The family must contain the full set [n]; ∅ is implicitly closed with
// value 0.
func Closure(n int, closed map[bitset.Set]*big.Rat) (*Func, error) {
	full := bitset.Full(n)
	if _, ok := closed[full]; !ok {
		return nil, fmt.Errorf("setfunc: closure family must contain the full set")
	}
	h := New(n)
	for z := bitset.Set(1); z <= full; z++ {
		var best *big.Rat
		for c, v := range closed {
			if z.SubsetOf(c) && (best == nil || v.Cmp(best) < 0) {
				best = v
			}
		}
		h.V[z].Set(best)
	}
	return h, nil
}

// Figure5 returns the 5-variable polymatroid of Figure 5 over the variables
// A, B, X, Y, C (indices 0..4). Its closed sets are the singletons with
// value 2, the pairs AX, BX, XY, AY, BY with value 3 and the full set with
// value 4. Scaled by log N it satisfies all Zhang–Yeung query constraints
// while achieving h(ABXYC) = 4·log N (proof of Theorem 1.3, Claim 2).
func Figure5() *Func {
	const a, b, x, y, c = 0, 1, 2, 3, 4
	two, three, four := big.NewRat(2, 1), big.NewRat(3, 1), big.NewRat(4, 1)
	closed := map[bitset.Set]*big.Rat{
		bitset.Of(a):             two,
		bitset.Of(b):             two,
		bitset.Of(x):             two,
		bitset.Of(y):             two,
		bitset.Of(c):             two,
		bitset.Of(a, x):          three,
		bitset.Of(b, x):          three,
		bitset.Of(x, y):          three,
		bitset.Of(a, y):          three,
		bitset.Of(b, y):          three,
		bitset.Of(a, b, x, y, c): four,
	}
	h, err := Closure(5, closed)
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return h
}

// Figure6Vars is the variable order used by Figure6:
// A, B, X, Y, A', B', X', Y' at indices 0..7.
var Figure6Vars = []string{"A", "B", "X", "Y", "A'", "B'", "X'", "Y'"}

// Figure6 returns the 8-variable polymatroid of Figure 6: two disjoint
// copies of the Figure 5 core (without C) glued under a common full set of
// value 4. Scaled by log N it certifies
// LogSizeBound_{Γ8∩HCC}(P) ≥ 4·log N for the rule (65) (proof of
// Lemma 4.5).
func Figure6() *Func {
	const a, b, x, y, a2, b2, x2, y2 = 0, 1, 2, 3, 4, 5, 6, 7
	two, three, four := big.NewRat(2, 1), big.NewRat(3, 1), big.NewRat(4, 1)
	closed := map[bitset.Set]*big.Rat{
		bitset.Of(a): two, bitset.Of(b): two, bitset.Of(x): two, bitset.Of(y): two,
		bitset.Of(a2): two, bitset.Of(b2): two, bitset.Of(x2): two, bitset.Of(y2): two,
		bitset.Of(a, x): three, bitset.Of(b, x): three, bitset.Of(x, y): three,
		bitset.Of(a, y): three, bitset.Of(b, y): three,
		bitset.Of(a2, x2): three, bitset.Of(b2, x2): three, bitset.Of(x2, y2): three,
		bitset.Of(a2, y2): three, bitset.Of(b2, y2): three,
		bitset.Full(8): four,
	}
	h, err := Closure(8, closed)
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return h
}

// RandomCoverage samples a random coverage function on [n]: a ground set of
// k weighted items, each variable owning a random subset of items, with
// h(S) = total weight covered by S. Coverage functions are polymatroids
// with rational values, making them ideal for exact property tests.
func RandomCoverage(rng *rand.Rand, n, k int) *Func {
	weights := make([]*big.Rat, k)
	owner := make([]bitset.Set, k) // owner[item] = set of variables covering it
	for i := range weights {
		weights[i] = big.NewRat(int64(rng.Intn(5)+1), int64(rng.Intn(3)+1))
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				owner[i] = owner[i].Add(v)
			}
		}
	}
	h := New(n)
	full := bitset.Full(n)
	for s := bitset.Set(1); s <= full; s++ {
		sum := h.V[s]
		for i, w := range weights {
			if owner[i].Intersect(s) != 0 {
				sum.Add(sum, w)
			}
		}
	}
	return h
}

// RandomMatroidRank samples the rank function of a random uniform-ish
// matroid: h(S) = min(|S|, k) scaled by a positive rational.
func RandomMatroidRank(rng *rand.Rand, n int) *Func {
	k := 1 + rng.Intn(n)
	scale := big.NewRat(int64(1+rng.Intn(4)), int64(1+rng.Intn(3)))
	h := New(n)
	full := bitset.Full(n)
	for s := bitset.Set(1); s <= full; s++ {
		r := s.Card()
		if r > k {
			r = k
		}
		h.V[s].Mul(scale, big.NewRat(int64(r), 1))
	}
	return h
}
