package setfunc

import (
	"math/big"
	"math/rand"
	"testing"

	"panda/internal/bitset"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestModularIsPolymatroid(t *testing.T) {
	h := Modular([]*big.Rat{rat(1, 1), rat(2, 1), rat(1, 2)})
	if !h.IsModular() {
		t.Fatal("Modular() not modular")
	}
	if !h.IsPolymatroid() {
		t.Fatal("modular function must be a polymatroid")
	}
	if !h.IsSubadditive() {
		t.Fatal("modular function must be subadditive")
	}
	if got := h.At(bitset.Of(0, 2)); got.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("h({0,2}) = %v, want 3/2", got)
	}
}

func TestCondAndScale(t *testing.T) {
	h := Modular([]*big.Rat{rat(1, 1), rat(3, 1)})
	if got := h.Cond(bitset.Of(0, 1), bitset.Of(0)); got.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("h(01|0) = %v, want 3", got)
	}
	g := h.Scale(rat(2, 1))
	if got := g.At(bitset.Of(0, 1)); got.Cmp(rat(8, 1)) != 0 {
		t.Fatalf("scaled h(01) = %v, want 8", got)
	}
}

func TestNonPolymatroidDetected(t *testing.T) {
	// Non-monotone.
	h := New(2)
	h.Set(bitset.Of(0), rat(2, 1))
	h.Set(bitset.Of(0, 1), rat(1, 1))
	h.Set(bitset.Of(1), rat(1, 1))
	if h.IsMonotone() {
		t.Fatal("non-monotone function accepted")
	}
	// Non-submodular: h(∅)=0, h({0})=h({1})=1, h({0,1})=3.
	g := New(2)
	g.Set(bitset.Of(0), rat(1, 1))
	g.Set(bitset.Of(1), rat(1, 1))
	g.Set(bitset.Of(0, 1), rat(3, 1))
	if g.IsSubmodular() {
		t.Fatal("supermodular function accepted as submodular")
	}
	if g.IsSubadditive() {
		t.Fatal("3 > 1+1 accepted as subadditive")
	}
}

// TestSubadditiveNotSubmodular exhibits the strictness Γn ⊂ SAn (Prop 2.3):
// h(S) = 1 for all non-empty S is subadditive; but with n ≥ 2 the function
// h(S) = min(|S|, 2) − [|S| ≥ 1]·0 ... we use the classic witness
// h(∅)=0, h singletons 1, h pairs 1, full 2 on n=3 — subadditive but not
// submodular.
func TestSubadditiveNotSubmodular(t *testing.T) {
	h := New(3)
	full := bitset.Full(3)
	for s := bitset.Set(1); s <= full; s++ {
		switch s.Card() {
		case 1, 2:
			h.Set(s, rat(1, 1))
		case 3:
			h.Set(s, rat(2, 1))
		}
	}
	if !h.IsSubadditive() {
		t.Fatal("witness should be subadditive")
	}
	if h.IsSubmodular() {
		t.Fatal("witness should not be submodular: h(12)+h(13) = 2 < h(123)+h(1) = 3")
	}
	if !h.IsMonotone() || !h.IsNonNegative() {
		t.Fatal("witness should be monotone and non-negative")
	}
}

func TestFigure5IsPolymatroid(t *testing.T) {
	h := Figure5()
	if !h.IsPolymatroid() {
		t.Fatal("Figure 5 function is not a polymatroid")
	}
	const a, b, x, y, c = 0, 1, 2, 3, 4
	// Spot values from the figure and the proof of Theorem 1.3, Claim 2.
	cases := []struct {
		s    bitset.Set
		want int64
	}{
		{bitset.Of(x), 2}, {bitset.Of(a), 2}, {bitset.Of(c), 2},
		{bitset.Of(a, x), 3}, {bitset.Of(x, y), 3}, {bitset.Of(b, y), 3},
		{bitset.Of(a, b), 4},       // closed hull is the full set
		{bitset.Of(a, x, y), 4},    // key AXY
		{bitset.Of(b, x, y), 4},    // key BXY
		{bitset.Of(a, c), 4},       // key AC
		{bitset.Of(x, c), 4},       // key XC
		{bitset.Of(y, c), 4},       // key YC
		{bitset.Of(a, b, x, y), 4}, // h(AB+) = h(ABXYC)
		{bitset.Full(5), 4},
	}
	for _, tc := range cases {
		if got := h.At(tc.s); got.Cmp(rat(tc.want, 1)) != 0 {
			t.Errorf("h(%v) = %v, want %d", tc.s, got, tc.want)
		}
	}
	// FD constraints of the Zhang–Yeung query: each key K → everything
	// means h(key) = h(full).
	keys := []bitset.Set{
		bitset.Of(a, b), bitset.Of(a, x, y), bitset.Of(b, x, y),
		bitset.Of(a, c), bitset.Of(x, c), bitset.Of(y, c),
	}
	for _, k := range keys {
		if h.At(k).Cmp(h.At(bitset.Full(5))) != 0 {
			t.Errorf("FD violated at key %v: h=%v", k, h.At(k))
		}
	}
}

// TestFigure5ViolatesZhangYeung verifies that the Figure 5 polymatroid
// violates the Zhang–Yeung non-Shannon inequality (51), certifying
// Γ*₄ ⊊ Γ₄ computationally (and hence the Theorem 1.3 gap).
// Inequality (51) (restricted to the 4 variables A,B,X,Y):
// h(AB) + 4h(AXY) + h(BXY) ≤ 3h(XY) + 3h(AX) + 3h(AY) + h(BX) + h(BY)
//
//	− h(A) − 2h(X) − 2h(Y).
func TestFigure5ViolatesZhangYeung(t *testing.T) {
	h := Figure5()
	const a, b, x, y = 0, 1, 2, 3
	lhs := new(big.Rat)
	lhs.Add(lhs, h.At(bitset.Of(a, b)))
	lhs.Add(lhs, new(big.Rat).Mul(rat(4, 1), h.At(bitset.Of(a, x, y))))
	lhs.Add(lhs, h.At(bitset.Of(b, x, y)))
	rhs := new(big.Rat)
	rhs.Add(rhs, new(big.Rat).Mul(rat(3, 1), h.At(bitset.Of(x, y))))
	rhs.Add(rhs, new(big.Rat).Mul(rat(3, 1), h.At(bitset.Of(a, x))))
	rhs.Add(rhs, new(big.Rat).Mul(rat(3, 1), h.At(bitset.Of(a, y))))
	rhs.Add(rhs, h.At(bitset.Of(b, x)))
	rhs.Add(rhs, h.At(bitset.Of(b, y)))
	rhs.Sub(rhs, h.At(bitset.Of(a)))
	rhs.Sub(rhs, new(big.Rat).Mul(rat(2, 1), h.At(bitset.Of(x))))
	rhs.Sub(rhs, new(big.Rat).Mul(rat(2, 1), h.At(bitset.Of(y))))
	// lhs = 4 + 16 + 4 = 24; rhs = 9+9+9+3+3 − 2 − 4 − 4 = 23.
	if lhs.Cmp(rhs) <= 0 {
		t.Fatalf("Figure 5 polymatroid satisfies ZY inequality: lhs=%v rhs=%v (want violation)", lhs, rhs)
	}
	if lhs.Cmp(rat(24, 1)) != 0 || rhs.Cmp(rat(23, 1)) != 0 {
		t.Fatalf("lhs=%v rhs=%v, want 24 and 23", lhs, rhs)
	}
}

func TestFigure6IsPolymatroid(t *testing.T) {
	h := Figure6()
	if !h.IsPolymatroid() {
		t.Fatal("Figure 6 function is not a polymatroid")
	}
	// All 15 targets of rule (65) have value 4.
	const a, b, x, y, a2, b2, x2, y2 = 0, 1, 2, 3, 4, 5, 6, 7
	targets := []bitset.Set{
		bitset.Of(a, b), bitset.Of(a, x, y), bitset.Of(b, x, y),
		bitset.Of(a2, b2), bitset.Of(a2, x2, y2), bitset.Of(b2, x2, y2),
		bitset.Of(a2, a), bitset.Of(x2, a), bitset.Of(y2, a),
		bitset.Of(a2, x), bitset.Of(x2, x), bitset.Of(y2, x),
		bitset.Of(a2, y), bitset.Of(x2, y), bitset.Of(y2, y),
	}
	for _, s := range targets {
		if h.At(s).Cmp(rat(4, 1)) != 0 {
			t.Errorf("h(%v) = %v, want 4", s, h.At(s))
		}
	}
	// All 10 input edges have value 3 (cardinality N³ after scaling).
	edges := []bitset.Set{
		bitset.Of(x, y), bitset.Of(a, x), bitset.Of(a, y), bitset.Of(b, x), bitset.Of(b, y),
		bitset.Of(x2, y2), bitset.Of(a2, x2), bitset.Of(a2, y2), bitset.Of(b2, x2), bitset.Of(b2, y2),
	}
	for _, s := range edges {
		if h.At(s).Cmp(rat(3, 1)) != 0 {
			t.Errorf("edge h(%v) = %v, want 3", s, h.At(s))
		}
	}
}

func TestClosureErrors(t *testing.T) {
	if _, err := Closure(2, map[bitset.Set]*big.Rat{bitset.Of(0): rat(1, 1)}); err == nil {
		t.Fatal("Closure without full set should error")
	}
}

func TestRandomCoverageIsPolymatroid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		h := RandomCoverage(rng, 4, 6)
		if !h.IsPolymatroid() {
			t.Fatalf("trial %d: coverage function not a polymatroid", trial)
		}
	}
}

func TestRandomMatroidRankIsPolymatroid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		h := RandomMatroidRank(rng, 5)
		if !h.IsPolymatroid() {
			t.Fatalf("trial %d: matroid rank not a polymatroid", trial)
		}
	}
}

// TestHierarchyStrict reproduces Figure 3 / Proposition 2.3 strictness at
// the polymatroid levels we can certify exactly:
//   - Mn ⊊ Γn: a matroid rank that is not modular;
//   - Γ*n ⊊ Γn: Figure 5 violates Zhang–Yeung (see dedicated test);
//   - Γn ⊊ SAn: the subadditive-not-submodular witness above.
func TestHierarchyStrict(t *testing.T) {
	// Rank of uniform matroid U(2,4): submodular, not modular.
	h := New(4)
	full := bitset.Full(4)
	for s := bitset.Set(1); s <= full; s++ {
		r := s.Card()
		if r > 2 {
			r = 2
		}
		h.Set(s, rat(int64(r), 1))
	}
	if !h.IsPolymatroid() || h.IsModular() {
		t.Fatal("U(2,4) rank should be a non-modular polymatroid")
	}
}

func TestEdgeVertexDominated(t *testing.T) {
	h := Modular([]*big.Rat{rat(1, 2), rat(1, 2), rat(1, 2)})
	edges := []bitset.Set{bitset.Of(0, 1), bitset.Of(1, 2)}
	if !h.EdgeDominated(edges, rat(1, 1)) {
		t.Fatal("h(edge) = 1 should be edge-dominated by 1")
	}
	if h.EdgeDominated(edges, rat(1, 2)) {
		t.Fatal("bound 1/2 should fail")
	}
	if !h.VertexDominated(rat(1, 2)) {
		t.Fatal("vertex domination should hold")
	}
	if h.VertexDominated(rat(1, 3)) {
		t.Fatal("vertex bound 1/3 should fail")
	}
}
