// Package wcoj implements a generic worst-case optimal join in the style of
// NPRR / Generic-Join [42, 43]: variables are eliminated one at a time, and
// at each level the candidate set is the intersection of the matching
// values across all relations covering the variable, seeded from the
// relation with the fewest candidates. Under cardinality constraints its
// runtime is Õ(AGM(Q)) — the baseline PANDA is compared against for full
// conjunctive queries.
package wcoj

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

// Join computes the natural join of all atoms of the query over the
// instance using the generic worst-case optimal algorithm. The variable
// order is chosen greedily (most-covered variables first) unless order is
// supplied.
func Join(s *query.Schema, ins *query.Instance, order []int) (*relation.Relation, error) {
	if len(ins.Relations) != len(s.Atoms) {
		return nil, fmt.Errorf("wcoj: instance/atom mismatch")
	}
	n := s.NumVars
	if order == nil {
		order = defaultOrder(s)
	}
	if len(order) != n {
		return nil, fmt.Errorf("wcoj: order has %d variables, want %d", len(order), n)
	}
	out := relation.New("Q", bitset.Full(n))
	assignment := make([]relation.Value, n)

	// Per relation, per prefix-depth we filter tuple lists lazily: we keep,
	// for each relation, the set of rows consistent with the current
	// partial assignment (semi-naive but worst-case-optimal per level
	// because candidates come from intersections).
	type relState struct {
		rel  *relation.Relation
		rows [][]relation.Value
	}
	states := make([]*relState, len(ins.Relations))
	for i, r := range ins.Relations {
		states[i] = &relState{rel: r, rows: r.Rows()}
	}

	var rec func(depth int, states []*relState) error
	rec = func(depth int, states []*relState) error {
		if depth == n {
			t := make([]relation.Value, n)
			copy(t, assignment)
			out.Insert(t)
			return nil
		}
		v := order[depth]
		// Relations covering v.
		var covering []*relState
		for _, st := range states {
			if st.rel.Attrs().Contains(v) {
				covering = append(covering, st)
			}
		}
		if len(covering) == 0 {
			return fmt.Errorf("wcoj: variable %d not covered by any atom", v)
		}
		// Candidate values: intersect over covering relations, seeded from
		// the smallest.
		sort.Slice(covering, func(i, j int) bool { return len(covering[i].rows) < len(covering[j].rows) })
		pos0 := colPos(covering[0].rel, v)
		cand := map[relation.Value]bool{}
		for _, row := range covering[0].rows {
			cand[row[pos0]] = true
		}
		for _, st := range covering[1:] {
			p := colPos(st.rel, v)
			seen := map[relation.Value]bool{}
			for _, row := range st.rows {
				seen[row[p]] = true
			}
			for val := range cand {
				if !seen[val] {
					delete(cand, val)
				}
			}
		}
		vals := make([]relation.Value, 0, len(cand))
		for val := range cand {
			vals = append(vals, val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, val := range vals {
			assignment[v] = val
			// Filter each covering relation's rows to those matching val.
			next := make([]*relState, len(states))
			for i, st := range states {
				if !st.rel.Attrs().Contains(v) {
					next[i] = st
					continue
				}
				p := colPos(st.rel, v)
				var rows [][]relation.Value
				for _, row := range st.rows {
					if row[p] == val {
						rows = append(rows, row)
					}
				}
				next[i] = &relState{rel: st.rel, rows: rows}
			}
			if err := rec(depth+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, states); err != nil {
		return nil, err
	}
	return out, nil
}

// Boolean answers the Boolean query: does the join have any tuple?
func Boolean(s *query.Schema, ins *query.Instance) (bool, error) {
	// Early exit by joining with a row cap would be faster; for baseline
	// purposes the full join suffices on test scales.
	out, err := Join(s, ins, nil)
	if err != nil {
		return false, err
	}
	return out.Size() > 0, nil
}

func defaultOrder(s *query.Schema) []int {
	type vc struct{ v, c int }
	counts := make([]vc, s.NumVars)
	for v := range counts {
		counts[v].v = v
	}
	for _, a := range s.Atoms {
		for _, v := range a.Vars.Vars() {
			counts[v].c++
		}
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].c != counts[j].c {
			return counts[i].c > counts[j].c
		}
		return counts[i].v < counts[j].v
	})
	order := make([]int, s.NumVars)
	for i, x := range counts {
		order[i] = x.v
	}
	return order
}

func colPos(r *relation.Relation, v int) int {
	for i, c := range r.Cols() {
		if c == v {
			return i
		}
	}
	return -1
}

// ParallelJoin computes the same natural join as Join by hash-partitioning
// the instance on the schema's partition key (query.PartitionInstance) into
// k co-partitioned sub-instances and running Join once per partition
// through a bounded pool of workers. Every output tuple fixes a value for
// the partition key, so the per-partition outputs are disjoint and their
// union — merged in partition-index order, hence deterministic — is
// exactly Join's output. It degrades to a single sequential Join when k ≤ 1
// or the schema admits no partition key, and aborts early with ctx.Err()
// on cancellation.
func ParallelJoin(ctx context.Context, s *query.Schema, ins *query.Instance, order []int, k, workers int) (*relation.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	subs := query.PartitionInstance(s, ins, k)
	if subs == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return Join(s, ins, order)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	outs := make([]*relation.Relation, len(subs))
	errs := make([]error, len(subs))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range idx {
				if err := cctx.Err(); err != nil {
					errs[j] = err
					continue
				}
				out, err := Join(s, subs[j], order)
				if err != nil {
					errs[j] = err
					cancel()
					continue
				}
				outs[j] = out
			}
		}()
	}
	for j := range subs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := relation.New("Q", bitset.Full(s.NumVars))
	for _, part := range outs {
		for _, row := range part.Rows() {
			out.Insert(row)
		}
	}
	return out, nil
}
