// Package wcoj implements a generic worst-case optimal join in the style of
// NPRR / Generic-Join [42, 43]: variables are eliminated one at a time, and
// at each level the candidate set is the intersection of the matching
// values across all relations covering the variable, seeded from the
// relation with the fewest candidates. Under cardinality constraints its
// runtime is Õ(AGM(Q)) — the baseline PANDA is compared against for full
// conjunctive queries.
//
// The join runs entirely on the interned id plane: candidate sets intersect
// uint32 ids against the relations' column vectors and output rows are
// emitted as id-tuples, so no value is decoded except to order candidates
// deterministically.
package wcoj

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

// Join computes the natural join of all atoms of the query over the
// instance using the generic worst-case optimal algorithm. The variable
// order is chosen greedily (most-covered variables first) unless order is
// supplied.
func Join(s *query.Schema, ins *query.Instance, order []int) (*relation.Relation, error) {
	if len(ins.Relations) != len(s.Atoms) {
		return nil, fmt.Errorf("wcoj: instance/atom mismatch")
	}
	n := s.NumVars
	if order == nil {
		order = defaultOrder(s)
	}
	if len(order) != n {
		return nil, fmt.Errorf("wcoj: order has %d variables, want %d", len(order), n)
	}
	out := relation.New("Q", bitset.Full(n))
	itn := out.Interner()
	assignment := make([]uint32, n)

	// Per relation, per prefix-depth we filter the surviving row-index list
	// lazily: we keep, for each relation, the rows consistent with the
	// current partial assignment (semi-naive but worst-case-optimal per
	// level because candidates come from intersections).
	type relState struct {
		rel  *relation.Relation
		cols [][]uint32 // column id vectors
		rows []int32    // surviving row indices
	}
	states := make([]*relState, len(ins.Relations))
	for i, r := range ins.Relations {
		st := &relState{rel: r, cols: make([][]uint32, len(r.Cols()))}
		for c := range st.cols {
			st.cols[c] = r.Column(c)
		}
		st.rows = make([]int32, r.Size())
		for j := range st.rows {
			st.rows[j] = int32(j)
		}
		states[i] = st
	}

	var rec func(depth int, states []*relState) error
	rec = func(depth int, states []*relState) error {
		if depth == n {
			out.InsertIDs(assignment)
			return nil
		}
		v := order[depth]
		// Relations covering v.
		var covering []*relState
		for _, st := range states {
			if st.rel.Attrs().Contains(v) {
				covering = append(covering, st)
			}
		}
		if len(covering) == 0 {
			return fmt.Errorf("wcoj: variable %d not covered by any atom", v)
		}
		// Candidate ids: intersect over covering relations, seeded from the
		// smallest.
		sort.Slice(covering, func(i, j int) bool { return len(covering[i].rows) < len(covering[j].rows) })
		col0 := covering[0].cols[colPos(covering[0].rel, v)]
		cand := map[uint32]bool{}
		for _, ri := range covering[0].rows {
			cand[col0[ri]] = true
		}
		for _, st := range covering[1:] {
			col := st.cols[colPos(st.rel, v)]
			seen := map[uint32]bool{}
			for _, ri := range st.rows {
				seen[col[ri]] = true
			}
			for id := range cand {
				if !seen[id] {
					delete(cand, id)
				}
			}
		}
		ids := make([]uint32, 0, len(cand))
		for id := range cand {
			ids = append(ids, id)
		}
		// Order candidates by decoded value so the output row order — and
		// with it every downstream trace — is a function of the data, not of
		// id-assignment history.
		sort.Slice(ids, func(i, j int) bool { return itn.ValueOf(ids[i]) < itn.ValueOf(ids[j]) })
		for _, id := range ids {
			assignment[v] = id
			// Filter each covering relation's rows to those matching id.
			next := make([]*relState, len(states))
			for i, st := range states {
				if !st.rel.Attrs().Contains(v) {
					next[i] = st
					continue
				}
				col := st.cols[colPos(st.rel, v)]
				var rows []int32
				for _, ri := range st.rows {
					if col[ri] == id {
						rows = append(rows, ri)
					}
				}
				next[i] = &relState{rel: st.rel, cols: st.cols, rows: rows}
			}
			if err := rec(depth+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, states); err != nil {
		return nil, err
	}
	return out, nil
}

// Boolean answers the Boolean query: does the join have any tuple?
func Boolean(s *query.Schema, ins *query.Instance) (bool, error) {
	// Early exit by joining with a row cap would be faster; for baseline
	// purposes the full join suffices on test scales.
	out, err := Join(s, ins, nil)
	if err != nil {
		return false, err
	}
	return out.Size() > 0, nil
}

func defaultOrder(s *query.Schema) []int {
	type vc struct{ v, c int }
	counts := make([]vc, s.NumVars)
	for v := range counts {
		counts[v].v = v
	}
	for _, a := range s.Atoms {
		for _, v := range a.Vars.Vars() {
			counts[v].c++
		}
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].c != counts[j].c {
			return counts[i].c > counts[j].c
		}
		return counts[i].v < counts[j].v
	})
	order := make([]int, s.NumVars)
	for i, x := range counts {
		order[i] = x.v
	}
	return order
}

func colPos(r *relation.Relation, v int) int {
	for i, c := range r.Cols() {
		if c == v {
			return i
		}
	}
	return -1
}

// ParallelJoin computes the same natural join as Join by hash-partitioning
// the instance on the schema's partition key (query.PartitionInstance) into
// k co-partitioned sub-instances and running Join once per partition
// through a bounded pool of workers. Every output tuple fixes a value for
// the partition key, so the per-partition outputs are disjoint and their
// union — merged in partition-index order, hence deterministic — is
// exactly Join's output. It degrades to a single sequential Join when k ≤ 1
// or the schema admits no partition key, and aborts early with ctx.Err()
// on cancellation.
func ParallelJoin(ctx context.Context, s *query.Schema, ins *query.Instance, order []int, k, workers int) (*relation.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	subs := query.PartitionInstance(s, ins, k)
	if subs == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return Join(s, ins, order)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	outs := make([]*relation.Relation, len(subs))
	errs := make([]error, len(subs))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range idx {
				if err := cctx.Err(); err != nil {
					errs[j] = err
					continue
				}
				out, err := Join(s, subs[j], order)
				if err != nil {
					errs[j] = err
					cancel()
					continue
				}
				outs[j] = out
			}
		}()
	}
	for j := range subs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := relation.New("Q", bitset.Full(s.NumVars))
	for _, part := range outs {
		out.InsertAll(part)
	}
	return out, nil
}
