package wcoj

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
	"panda/internal/relation"
)

func triangleSchema() *query.Schema {
	return &query.Schema{
		NumVars: 3,
		Atoms: []query.Atom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
			{Name: "T", Vars: bitset.Of(0, 2)},
		},
	}
}

func TestTriangleJoin(t *testing.T) {
	s := triangleSchema()
	ins := query.NewInstance(s)
	ins.Relations[0].Insert([]relation.Value{1, 2})
	ins.Relations[1].Insert([]relation.Value{2, 3})
	ins.Relations[2].Insert([]relation.Value{1, 3})
	ins.Relations[2].Insert([]relation.Value{1, 4}) // no matching S
	out, err := Join(s, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 || !out.Contains([]relation.Value{1, 2, 3}) {
		t.Fatalf("join = %v", out.SortedRows())
	}
}

func TestAgainstFullJoinRandom(t *testing.T) {
	s := triangleSchema()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		ins := query.NewInstance(s)
		for i := range ins.Relations {
			for k := 0; k < 30; k++ {
				ins.Relations[i].Insert([]relation.Value{
					relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6))})
			}
		}
		got, err := Join(s, ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ins.FullJoin()) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestExplicitOrder(t *testing.T) {
	s := triangleSchema()
	ins := query.NewInstance(s)
	for i := range ins.Relations {
		ins.Relations[i].Insert([]relation.Value{1, 1})
	}
	out, err := Join(s, ins, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 {
		t.Fatalf("size %d", out.Size())
	}
	if _, err := Join(s, ins, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestBoolean(t *testing.T) {
	s := triangleSchema()
	ins := query.NewInstance(s)
	ok, err := Boolean(s, ins)
	if err != nil || ok {
		t.Fatalf("empty instance: %v %v", ok, err)
	}
	ins.Relations[0].Insert([]relation.Value{1, 1})
	ins.Relations[1].Insert([]relation.Value{1, 1})
	ins.Relations[2].Insert([]relation.Value{1, 1})
	ok, err = Boolean(s, ins)
	if err != nil || !ok {
		t.Fatalf("self-loop triangle: %v %v", ok, err)
	}
}

func TestUncoveredVariable(t *testing.T) {
	s := &query.Schema{NumVars: 2, Atoms: []query.Atom{{Name: "R", Vars: bitset.Of(0)}}}
	ins := query.NewInstance(s)
	ins.Relations[0].Insert([]relation.Value{1})
	if _, err := Join(s, ins, nil); err == nil {
		t.Fatal("uncovered variable accepted")
	}
}

// TestParallelJoinMatchesJoin: the data-parallel partitioned join must
// produce exactly the sequential join's tuple set on random triangle
// instances, for several partition counts and worker counts, and must
// degrade to the sequential join when no partitioning applies.
func TestParallelJoinMatchesJoin(t *testing.T) {
	s := triangleSchema()
	rng := rand.New(rand.NewSource(42))
	ins := query.NewInstance(s)
	for i := 0; i < 3; i++ {
		for n := 0; n < 200; n++ {
			ins.Relations[i].Insert([]relation.Value{
				relation.Value(rng.Intn(16)), relation.Value(rng.Intn(16)),
			})
		}
	}
	want, err := Join(s, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 4} {
			got, err := ParallelJoin(context.Background(), s, ins, nil, k, workers)
			if err != nil {
				t.Fatalf("k=%d w=%d: %v", k, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("k=%d w=%d: %d tuples, want %d", k, workers, got.Size(), want.Size())
			}
		}
	}
	// A cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelJoin(ctx, s, ins, nil, 4, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel join: got %v", err)
	}
}
