// Package widths implements the width parameters of Sections 2.1.3 and 7
// under the unified minimax/maximin framework of Definition 7.1:
//
//	tw   — s-width, s(B) = |B| − 1                       (minimax)
//	ghtw — ρ-width, integral edge cover per bag          (minimax)
//	fhtw — ρ*-width, fractional edge cover per bag       (minimax)
//	subw — max_{h∈ED∩Γn} min_TD max_bag h(bag)           (maximin)
//	adw  — same with modular h                            (maximin)
//
// and their degree-aware generalizations of Definition 7.6 (da-fhtw,
// da-subw), where the inner optimization is the exact polymatroid LP of
// internal/flow. Maximin widths use Lemma 7.12: the min over tree
// decompositions becomes a max over inclusion-minimal bag transversals.
package widths

import (
	"fmt"
	"math/big"
	"sort"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
	"panda/internal/lp"
)

// edDCs builds the normalized edge-domination constraints h(F) ≤ 1 of
// Definition 2.4, the Y-axis level "ED" of Figure 9.
func edDCs(h *hypergraph.Hypergraph) []flow.DC {
	one := big.NewRat(1, 1)
	out := make([]flow.DC, 0, len(h.Edges))
	for _, e := range h.Edges {
		out = append(out, flow.DC{X: 0, Y: e, LogN: one})
	}
	return out
}

// plan bundles the decomposition machinery shared by all widths.
type plan struct {
	h      *hypergraph.Hypergraph
	tds    []*hypergraph.Decomposition
	bags   []bitset.Set
	bagIdx map[bitset.Set]int
	tdBags [][]int
}

func newPlan(h *hypergraph.Hypergraph) (*plan, error) {
	tds, err := h.AllDecompositions()
	if err != nil {
		return nil, err
	}
	if len(tds) == 0 {
		return nil, fmt.Errorf("widths: no tree decompositions")
	}
	p := &plan{h: h, tds: tds, bagIdx: map[bitset.Set]int{}}
	for _, d := range tds {
		var idxs []int
		for _, b := range d.Bags {
			i, ok := p.bagIdx[b]
			if !ok {
				i = len(p.bags)
				p.bagIdx[b] = i
				p.bags = append(p.bags, b)
			}
			idxs = append(idxs, i)
		}
		p.tdBags = append(p.tdBags, idxs)
	}
	return p, nil
}

// minimax computes min over decompositions of max over bags of cost.
func (p *plan) minimax(cost func(bitset.Set) (*big.Rat, error)) (*big.Rat, error) {
	cache := make([]*big.Rat, len(p.bags))
	for i, b := range p.bags {
		c, err := cost(b)
		if err != nil {
			return nil, err
		}
		cache[i] = c
	}
	var best *big.Rat
	for ti := range p.tds {
		worst := new(big.Rat)
		for _, bi := range p.tdBags[ti] {
			if cache[bi].Cmp(worst) > 0 {
				worst = cache[bi]
			}
		}
		if best == nil || worst.Cmp(best) < 0 {
			best = worst
		}
	}
	return best, nil
}

// Treewidth returns tw(H) (the classic value: max bag size − 1, minimized
// over decompositions).
func Treewidth(h *hypergraph.Hypergraph) (int, error) {
	p, err := newPlan(h)
	if err != nil {
		return 0, err
	}
	v, err := p.minimax(func(b bitset.Set) (*big.Rat, error) {
		return big.NewRat(int64(b.Card()), 1), nil
	})
	if err != nil {
		return 0, err
	}
	return int(v.Num().Int64()) - 1, nil
}

// integralCover computes ρ(H_B): the minimum number of edges whose
// restrictions to B cover B (exact bitmask set-cover DP).
func integralCover(h *hypergraph.Hypergraph, b bitset.Set) (int, error) {
	vars := b.Vars()
	pos := map[int]int{}
	for i, v := range vars {
		pos[v] = i
	}
	m := len(vars)
	var masks []uint32
	for _, e := range h.Edges {
		var mask uint32
		for _, v := range e.Intersect(b).Vars() {
			mask |= 1 << uint(pos[v])
		}
		if mask != 0 {
			masks = append(masks, mask)
		}
	}
	full := uint32(1<<uint(m)) - 1
	const inf = 1 << 30
	dp := make([]int, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for s := uint32(0); s <= full; s++ {
		if dp[s] == inf {
			continue
		}
		for _, mask := range masks {
			t := s | mask
			if dp[s]+1 < dp[t] {
				dp[t] = dp[s] + 1
			}
		}
	}
	if dp[full] == inf {
		return 0, fmt.Errorf("widths: bag %v not coverable by edges", b)
	}
	return dp[full], nil
}

// GHTW returns the generalized hypertree width: min over decompositions of
// max over bags of ρ(H_bag).
func GHTW(h *hypergraph.Hypergraph) (int, error) {
	p, err := newPlan(h)
	if err != nil {
		return 0, err
	}
	v, err := p.minimax(func(b bitset.Set) (*big.Rat, error) {
		c, err := integralCover(h, b)
		if err != nil {
			return nil, err
		}
		return big.NewRat(int64(c), 1), nil
	})
	if err != nil {
		return 0, err
	}
	return int(v.Num().Int64()), nil
}

// FractionalCover computes ρ*(H_B) exactly: the fractional edge cover LP of
// Eq. (33) restricted to B.
func FractionalCover(h *hypergraph.Hypergraph, b bitset.Set) (*big.Rat, error) {
	prob := lp.NewProblem(len(h.Edges), false)
	one := big.NewRat(1, 1)
	for j := range h.Edges {
		prob.SetObj(j, one)
	}
	for _, v := range b.Vars() {
		row := map[int]*big.Rat{}
		for j, e := range h.Edges {
			if e.Contains(v) {
				row[j] = one
			}
		}
		if len(row) == 0 {
			return nil, fmt.Errorf("widths: vertex %d uncovered", v)
		}
		prob.AddConstraint(row, lp.Ge, one)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("widths: cover LP %v", sol.Status)
	}
	return sol.Objective, nil
}

// FHTW returns the fractional hypertree width fhtw(H) exactly.
func FHTW(h *hypergraph.Hypergraph) (*big.Rat, error) {
	p, err := newPlan(h)
	if err != nil {
		return nil, err
	}
	return p.minimax(func(b bitset.Set) (*big.Rat, error) {
		return FractionalCover(h, b)
	})
}

// DaFhtw returns the degree-aware fractional hypertree width of
// Definition 7.6: min over decompositions of max over bags of the exact
// polymatroid bound max{h(B) | h ∈ Γn ∩ HDC}.
func DaFhtw(h *hypergraph.Hypergraph, dcs []flow.DC) (*big.Rat, error) {
	p, err := newPlan(h)
	if err != nil {
		return nil, err
	}
	return p.minimax(func(b bitset.Set) (*big.Rat, error) {
		r, err := flow.MaximinBound(h.N, dcs, []bitset.Set{b})
		if err != nil {
			return nil, err
		}
		return r.Bound, nil
	})
}

// maximin computes max over inclusion-minimal bag transversals of
// inner(targets) — the Lemma 7.12 reformulation shared by subw, adw and
// da-subw. When bagUB is non-nil it must return an upper bound on
// inner(targets) for the single-bag transversal {b}; since
// max_h min_B h(B) ≤ min_B max_h h(B), the minimum of bagUB over a
// transversal's bags bounds its value, letting dominated transversals be
// skipped without solving their LP.
func (p *plan) maximin(inner func([]bitset.Set) (*big.Rat, error), bagUB func(bitset.Set) (*big.Rat, error)) (*big.Rat, error) {
	trs, err := hypergraph.MinimalTransversals(p.bags, p.tdBags)
	if err != nil {
		return nil, err
	}
	var ubs []*big.Rat
	if bagUB != nil {
		ubs = make([]*big.Rat, len(p.bags))
		for i, b := range p.bags {
			if ubs[i], err = bagUB(b); err != nil {
				return nil, err
			}
		}
	}
	trUB := func(tr []int) *big.Rat {
		if ubs == nil {
			return nil
		}
		var m *big.Rat
		for _, bi := range tr {
			if m == nil || ubs[bi].Cmp(m) < 0 {
				m = ubs[bi]
			}
		}
		return m
	}
	// Visit transversals in decreasing upper-bound order so pruning bites
	// early.
	order := make([]int, len(trs))
	for i := range order {
		order[i] = i
	}
	if ubs != nil {
		sort.Slice(order, func(a, b int) bool {
			return trUB(trs[order[a]]).Cmp(trUB(trs[order[b]])) > 0
		})
	}
	var best *big.Rat
	for _, oi := range order {
		tr := trs[oi]
		if best != nil {
			if ub := trUB(tr); ub != nil && ub.Cmp(best) <= 0 {
				continue
			}
		}
		targets := make([]bitset.Set, len(tr))
		for i, bi := range tr {
			targets[i] = p.bags[bi]
		}
		v, err := inner(targets)
		if err != nil {
			return nil, err
		}
		if best == nil || v.Cmp(best) > 0 {
			best = v
		}
	}
	if best == nil {
		return nil, fmt.Errorf("widths: no transversals")
	}
	return best, nil
}

// Subw returns the submodular width subw(H) exactly (Definition 2.8 via
// Lemma 7.12 and the exact polymatroid LP).
func Subw(h *hypergraph.Hypergraph) (*big.Rat, error) {
	return DaSubw(h, edDCs(h))
}

// DaSubw returns the degree-aware submodular width of Definition 7.6.
func DaSubw(h *hypergraph.Hypergraph, dcs []flow.DC) (*big.Rat, error) {
	p, err := newPlan(h)
	if err != nil {
		return nil, err
	}
	inner := func(targets []bitset.Set) (*big.Rat, error) {
		r, err := flow.MaximinBound(h.N, dcs, targets)
		if err != nil {
			return nil, err
		}
		return r.Bound, nil
	}
	return p.maximin(inner, func(b bitset.Set) (*big.Rat, error) {
		return inner([]bitset.Set{b})
	})
}

// Adw returns the adaptive width adw(H): the maximin width over modular
// edge-dominated functions (Definition 2.8). For a fixed transversal the
// inner problem is the small LP
// max w s.t. w ≤ Σ_{v∈B} x_v (per target), Σ_{v∈F} x_v ≤ 1 (per edge).
func Adw(h *hypergraph.Hypergraph) (*big.Rat, error) {
	p, err := newPlan(h)
	if err != nil {
		return nil, err
	}
	one := big.NewRat(1, 1)
	inner := func(targets []bitset.Set) (*big.Rat, error) {
		// Variables: x_0..x_{n−1}, w at index n.
		prob := lp.NewProblem(h.N+1, true)
		prob.SetObj(h.N, one)
		for _, b := range targets {
			row := map[int]*big.Rat{h.N: one}
			for _, v := range b.Vars() {
				row[v] = big.NewRat(-1, 1)
			}
			prob.AddConstraint(row, lp.Le, new(big.Rat))
		}
		for _, e := range h.Edges {
			row := map[int]*big.Rat{}
			for _, v := range e.Vars() {
				row[v] = one
			}
			prob.AddConstraint(row, lp.Le, one)
		}
		sol, err := prob.Solve()
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("widths: adw LP %v", sol.Status)
		}
		return sol.Objective, nil
	}
	return p.maximin(inner, func(b bitset.Set) (*big.Rat, error) {
		return inner([]bitset.Set{b})
	})
}

// Summary computes the whole classic hierarchy for a hypergraph; used by
// the Figure 4 / Corollary 7.5 experiment.
type Summary struct {
	TW      int
	GHTW    int
	FHTW    *big.Rat
	Subw    *big.Rat
	Adw     *big.Rat
	NumTDs  int
	NumBags int
}

// Summarize computes all classic widths of h.
func Summarize(h *hypergraph.Hypergraph) (*Summary, error) {
	p, err := newPlan(h)
	if err != nil {
		return nil, err
	}
	s := &Summary{NumTDs: len(p.tds), NumBags: len(p.bags)}
	if s.TW, err = Treewidth(h); err != nil {
		return nil, err
	}
	if s.GHTW, err = GHTW(h); err != nil {
		return nil, err
	}
	if s.FHTW, err = FHTW(h); err != nil {
		return nil, err
	}
	if s.Subw, err = Subw(h); err != nil {
		return nil, err
	}
	if s.Adw, err = Adw(h); err != nil {
		return nil, err
	}
	return s, nil
}
