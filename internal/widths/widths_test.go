package widths

import (
	"math/big"
	"testing"

	"panda/internal/bitset"
	"panda/internal/flow"
	"panda/internal/hypergraph"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func cycle(n int) *hypergraph.Hypergraph {
	var edges []bitset.Set
	for i := 0; i < n; i++ {
		edges = append(edges, bitset.Of(i, (i+1)%n))
	}
	return hypergraph.New(n, edges...)
}

func triangle() *hypergraph.Hypergraph { return cycle(3) }

// TestExample78 reproduces Example 7.8: for the 4-cycle C4,
// subw = 3/2 and fhtw = 2 (da-variants with log N = 1 coincide).
func TestExample78(t *testing.T) {
	h := cycle(4)
	f, err := FHTW(h)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("fhtw(C4) = %v, want 2", f)
	}
	s, err := Subw(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("subw(C4) = %v, want 3/2", s)
	}
	// da-versions with unit logs coincide with the classic ones.
	one := big.NewRat(1, 1)
	var dcs []flow.DC
	for _, e := range h.Edges {
		dcs = append(dcs, flow.DC{X: 0, Y: e, LogN: one})
	}
	df, err := DaFhtw(h, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if df.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("da-fhtw(C4) = %v, want 2", df)
	}
	ds, err := DaSubw(h, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Cmp(rat(3, 2)) != 0 {
		t.Fatalf("da-subw(C4) = %v, want 3/2", ds)
	}
}

// TestProposition73Triangle: for the triangle, every width equals its known
// value: tw = 2, ghtw = 2, fhtw = 3/2, subw = 3/2, adw = 3/2.
func TestProposition73Triangle(t *testing.T) {
	s, err := Summarize(triangle())
	if err != nil {
		t.Fatal(err)
	}
	if s.TW != 2 {
		t.Errorf("tw = %d, want 2", s.TW)
	}
	if s.GHTW != 2 {
		t.Errorf("ghtw = %d, want 2 (one edge covers only 2 of 3 vertices)", s.GHTW)
	}
	if s.FHTW.Cmp(rat(3, 2)) != 0 {
		t.Errorf("fhtw = %v, want 3/2", s.FHTW)
	}
	if s.Subw.Cmp(rat(3, 2)) != 0 {
		t.Errorf("subw = %v, want 3/2", s.Subw)
	}
	if s.Adw.Cmp(rat(3, 2)) != 0 {
		t.Errorf("adw = %v, want 3/2", s.Adw)
	}
}

// TestCorollary75Hierarchy: 1+tw ≥ ghtw ≥ fhtw ≥ subw ≥ adw on several
// graphs (Corollary 7.5).
func TestCorollary75Hierarchy(t *testing.T) {
	graphs := map[string]*hypergraph.Hypergraph{
		"triangle": triangle(),
		"C4":       cycle(4),
		"C5":       cycle(5),
		"path4": hypergraph.New(4,
			bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3)),
		"K4": hypergraph.New(4,
			bitset.Of(0, 1), bitset.Of(0, 2), bitset.Of(0, 3),
			bitset.Of(1, 2), bitset.Of(1, 3), bitset.Of(2, 3)),
	}
	for name, h := range graphs {
		s, err := Summarize(h)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tw1 := rat(int64(s.TW+1), 1)
		ghtw := rat(int64(s.GHTW), 1)
		if tw1.Cmp(ghtw) < 0 {
			t.Errorf("%s: 1+tw = %v < ghtw = %v", name, tw1, ghtw)
		}
		if ghtw.Cmp(s.FHTW) < 0 {
			t.Errorf("%s: ghtw = %v < fhtw = %v", name, ghtw, s.FHTW)
		}
		if s.FHTW.Cmp(s.Subw) < 0 {
			t.Errorf("%s: fhtw = %v < subw = %v", name, s.FHTW, s.Subw)
		}
		if s.Subw.Cmp(s.Adw) < 0 {
			t.Errorf("%s: subw = %v < adw = %v", name, s.Subw, s.Adw)
		}
	}
}

// TestExample74CycleGap instantiates Example 7.4 with m = 1 (independent
// sets of size 1), where the construction degenerates to the 2k-cycle:
// fhtw = 2m = 2 while subw ≤ m(2 − 1/k). For C6 (k = 3): subw ≤ 5/3.
func TestExample74CycleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("C6 submodular width solves ~174 exact LPs; skipped in -short")
	}
	h := cycle(6)
	f, err := FHTW(h)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("fhtw(C6) = %v, want 2", f)
	}
	s, err := Subw(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(rat(5, 3)) > 0 {
		t.Fatalf("subw(C6) = %v, want ≤ 5/3 (Example 7.4 with m=1, k=3)", s)
	}
	if s.Cmp(f) >= 0 {
		t.Fatalf("subw(C6) = %v should be strictly below fhtw = %v", s, f)
	}
}

// TestAcyclicWidthsAreOne: acyclic queries have ghtw = fhtw = subw = 1.
func TestAcyclicWidthsAreOne(t *testing.T) {
	h := hypergraph.New(4, bitset.Of(0, 1), bitset.Of(1, 2), bitset.Of(2, 3))
	s, err := Summarize(h)
	if err != nil {
		t.Fatal(err)
	}
	if s.GHTW != 1 || s.FHTW.Cmp(rat(1, 1)) != 0 || s.Subw.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("path widths: ghtw=%d fhtw=%v subw=%v, want all 1", s.GHTW, s.FHTW, s.Subw)
	}
}

// TestDaSubwWithFDs: FDs reduce the degree-aware widths below their classic
// values — the 4-cycle with A1 ↔ A2 has da-subw ≤ da-fhtw... and in fact
// da-fhtw drops to 3/2 (the bag A1A2A3 costs 3/2·... with the FD the bag
// {A1,A2,A3} has bound h ≤ ... ). We assert the strict improvement over the
// FD-free value 2 for da-fhtw and ≤ 3/2 for da-subw.
func TestDaSubwWithFDs(t *testing.T) {
	h := cycle(4)
	one := big.NewRat(1, 1)
	zero := new(big.Rat)
	dcs := []flow.DC{
		{X: 0, Y: bitset.Of(0, 1), LogN: one},
		{X: 0, Y: bitset.Of(1, 2), LogN: one},
		{X: 0, Y: bitset.Of(2, 3), LogN: one},
		{X: 0, Y: bitset.Of(3, 0), LogN: one},
		{X: bitset.Of(0), Y: bitset.Of(0, 1), LogN: zero},
		{X: bitset.Of(1), Y: bitset.Of(0, 1), LogN: zero},
	}
	df, err := DaFhtw(h, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if df.Cmp(rat(2, 1)) >= 0 {
		t.Fatalf("da-fhtw with FDs = %v, want < 2", df)
	}
	ds, err := DaSubw(h, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Cmp(df) > 0 {
		t.Fatalf("da-subw = %v > da-fhtw = %v", ds, df)
	}
	if ds.Cmp(rat(3, 2)) > 0 {
		t.Fatalf("da-subw with FDs = %v, want ≤ 3/2", ds)
	}
}

func TestIntegralCoverErrors(t *testing.T) {
	h := hypergraph.New(3, bitset.Of(0, 1))
	if _, err := integralCover(h, bitset.Of(0, 2)); err == nil {
		t.Fatal("uncoverable bag accepted")
	}
	if _, err := FractionalCover(h, bitset.Of(2)); err == nil {
		t.Fatal("uncovered vertex accepted")
	}
}
