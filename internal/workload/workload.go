// Package workload builds the queries, rules, and database instances used
// across the paper's examples and our experiment harness: the 4-cycle query
// of Example 1.2 with its Appendix-A tight instances, the disjunctive rule
// of Example 1.4, the Example 7.4 bipartite-cycle graphs, the Zhang–Yeung
// query shape, and random instances.
package workload

import (
	"math/rand"

	"panda/internal/bitset"
	"panda/internal/hypergraph"
	"panda/internal/query"
	"panda/internal/relation"
)

// FourCycleQuery returns the full 4-cycle query Q(A1..A4) of Example 1.2.
func FourCycleQuery() *query.Conjunctive {
	s := query.Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []query.Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
			{Name: "R41", Vars: bitset.Of(3, 0)},
		},
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(4)}
}

// BooleanFourCycle returns the Boolean variant of Example 1.10.
func BooleanFourCycle() *query.Conjunctive {
	q := FourCycleQuery()
	q.Free = 0
	return q
}

// PathRule returns the disjunctive rule of Example 1.4:
// T123 ∨ T234 ← R12, R23, R34.
func PathRule() *query.Disjunctive {
	s := query.Schema{
		NumVars:  4,
		VarNames: []string{"A1", "A2", "A3", "A4"},
		Atoms: []query.Atom{
			{Name: "R12", Vars: bitset.Of(0, 1)},
			{Name: "R23", Vars: bitset.Of(1, 2)},
			{Name: "R34", Vars: bitset.Of(2, 3)},
		},
	}
	return &query.Disjunctive{
		Schema:  s,
		Targets: []bitset.Set{bitset.Of(0, 1, 2), bitset.Of(1, 2, 3)},
	}
}

// CycleWorstCase builds the Example 1.10 adversarial instance for the
// 4-cycle: R12 = R34 = [m]×[1], R23 = R41 = [1]×[m]. The join holds m²
// cycles (a1, 0, a3, 0).
func CycleWorstCase(q *query.Conjunctive, m int) *query.Instance {
	ins := query.NewInstance(&q.Schema)
	for i := 0; i < m; i++ {
		v := relation.Value(i)
		ins.Relations[0].Insert([]relation.Value{v, 0}) // R12(A1,A2)
		ins.Relations[1].Insert([]relation.Value{0, v}) // R23(A2,A3)
		ins.Relations[2].Insert([]relation.Value{v, 0}) // R34(A3,A4)
		ins.Relations[3].Insert([]relation.Value{v, 0}) // R41 cols (A1,A4): A4 = 0
	}
	return ins
}

// PathWorstCase restricts CycleWorstCase to the three path atoms of
// Example 1.4/1.8.
func PathWorstCase(p *query.Disjunctive, m int) *query.Instance {
	ins := query.NewInstance(&p.Schema)
	for i := 0; i < m; i++ {
		v := relation.Value(i)
		ins.Relations[0].Insert([]relation.Value{v, 0})
		ins.Relations[1].Insert([]relation.Value{0, v})
		ins.Relations[2].Insert([]relation.Value{v, 0})
	}
	return ins
}

// AppendixABoundA is the tight instance for Example 1.2 bound (a):
// R12 = R34 = [m]×[1], R23 = R41 = [1]×[m]; output m².
func AppendixABoundA(q *query.Conjunctive, m int) *query.Instance {
	return CycleWorstCase(q, m)
}

// AppendixABoundC is the tight instance for bound (c) (with FDs A1 ↔ A2):
// K = ⌊√N⌋, R12 = {(i,i)}, R23 = R34 = R41 = [K]×[K]; output K³ = N^{3/2}.
func AppendixABoundC(q *query.Conjunctive, k int) *query.Instance {
	ins := query.NewInstance(&q.Schema)
	for i := 0; i < k; i++ {
		ins.Relations[0].Insert([]relation.Value{relation.Value(i), relation.Value(i)})
		for j := 0; j < k; j++ {
			ins.Relations[1].Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			ins.Relations[2].Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			ins.Relations[3].Insert([]relation.Value{relation.Value(j), relation.Value(i)}) // cols (A1,A4)
		}
	}
	return ins
}

// AppendixABoundB generalizes bound (b): R12 = {(i,j) : (j−i) mod K < D}.
func AppendixABoundB(q *query.Conjunctive, k, d int) *query.Instance {
	ins := AppendixABoundC(q, k)
	// Replace R12 with the banded relation.
	r12 := relation.New("R12", bitset.Of(0, 1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if (j-i%k+k)%k < d {
				r12.Insert([]relation.Value{relation.Value(i), relation.Value(j)})
			}
		}
	}
	ins.Relations[0] = r12
	return ins
}

// RandomBinary fills every atom of the schema with n random binary tuples
// over [dom].
func RandomBinary(rng *rand.Rand, s *query.Schema, n, dom int) *query.Instance {
	ins := query.NewInstance(s)
	for i, a := range s.Atoms {
		k := a.Vars.Card()
		for t := 0; t < n; t++ {
			row := make([]relation.Value, k)
			for j := range row {
				row[j] = relation.Value(rng.Intn(dom))
			}
			ins.Relations[i].Insert(row)
		}
	}
	return ins
}

// Example74Graph builds the Example 7.4 hypergraph: 2k independent sets of
// m vertices arranged in a cycle with complete bipartite graphs between
// consecutive sets. With m = 1 it degenerates to the 2k-cycle.
func Example74Graph(m, k int) *hypergraph.Hypergraph {
	n := 2 * k * m
	set := func(block, i int) int { return block*m + i }
	var edges []bitset.Set
	for b := 0; b < 2*k; b++ {
		nb := (b + 1) % (2 * k)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				edges = append(edges, bitset.Of(set(b, i), set(nb, j)))
			}
		}
	}
	return hypergraph.New(n, edges...)
}

// CycleQuery builds the n-cycle conjunctive query.
func CycleQuery(n int) *query.Conjunctive {
	s := query.Schema{NumVars: n}
	for i := 0; i < n; i++ {
		s.Atoms = append(s.Atoms, query.Atom{
			Name: "R" + string(rune('0'+i)),
			Vars: bitset.Of(i, (i+1)%n),
		})
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(n)}
}

// TriangleQuery builds the triangle query.
func TriangleQuery() *query.Conjunctive {
	s := query.Schema{
		NumVars:  3,
		VarNames: []string{"A", "B", "C"},
		Atoms: []query.Atom{
			{Name: "R", Vars: bitset.Of(0, 1)},
			{Name: "S", Vars: bitset.Of(1, 2)},
			{Name: "T", Vars: bitset.Of(0, 2)},
		},
	}
	return &query.Conjunctive{Schema: s, Free: bitset.Full(3)}
}

// MinModelLowerBound returns the counting lower bound on |P(D)| (Eq. 5):
// every body tuple must be covered by some target projection, and a single
// B-tuple covers at most cover_B body tuples, so
// max_B |T_B| ≥ |J| / Σ_B cover_B for any model.
func MinModelLowerBound(p *query.Disjunctive, ins *query.Instance) int {
	join := ins.FullJoin()
	if join.Size() == 0 {
		return 0
	}
	total := 0
	for _, b := range p.Targets {
		// cover_B = max body tuples per B-projection.
		cover := 0
		counts := map[string]int{}
		pos := make([]int, 0, b.Card())
		for i, c := range join.Cols() {
			if b.Contains(c) {
				pos = append(pos, i)
			}
		}
		for row := range join.All() {
			k := ""
			for _, pi := range pos {
				k += string(rune(row[pi])) + "|"
			}
			counts[k]++
			if counts[k] > cover {
				cover = counts[k]
			}
		}
		total += cover
	}
	if total == 0 {
		return 0
	}
	return (join.Size() + total - 1) / total
}
