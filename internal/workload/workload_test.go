package workload

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/query"
)

func TestCycleWorstCaseShape(t *testing.T) {
	q := FourCycleQuery()
	m := 10
	ins := CycleWorstCase(q, m)
	for i, r := range ins.Relations {
		if r.Size() != m {
			t.Fatalf("relation %d has %d tuples, want %d", i, r.Size(), m)
		}
	}
	join := ins.FullJoin()
	if join.Size() != m*m {
		t.Fatalf("join size %d, want m² = %d (Example 1.10)", join.Size(), m*m)
	}
}

// TestAppendixATightness verifies the Appendix A claims: bound (a) instance
// achieves N², bound (c) instance achieves ~N^{3/2}, bound (b) instance
// achieves ~D·N^{3/2}.
func TestAppendixATightness(t *testing.T) {
	q := FourCycleQuery()
	// (a): |Q| = m² with N = m.
	insA := AppendixABoundA(q, 12)
	if got := insA.FullJoin().Size(); got != 144 {
		t.Fatalf("(a): |Q| = %d, want 144", got)
	}
	// (c): K = 6 → N = K² = 36, |Q| = K³ = 216 = N^{3/2}; FDs hold.
	k := 6
	insC := AppendixABoundC(q, k)
	dcs := []query.DegreeConstraint{
		query.FD(bitset.Of(0), bitset.Of(1), 0),
		query.FD(bitset.Of(1), bitset.Of(0), 0),
	}
	if err := insC.Check(&q.Schema, dcs); err != nil {
		t.Fatalf("(c) instance violates FDs: %v", err)
	}
	if got := insC.FullJoin().Size(); got != k*k*k {
		t.Fatalf("(c): |Q| = %d, want K³ = %d", got, k*k*k)
	}
	// (b): D = 2 → |Q| = D·K³.
	d := 2
	insB := AppendixABoundB(q, k, d)
	dcsB := []query.DegreeConstraint{
		query.Degree(bitset.Of(0), bitset.Of(0, 1), int64(d), 0),
		query.Degree(bitset.Of(1), bitset.Of(0, 1), int64(d), 0),
	}
	if err := insB.Check(&q.Schema, dcsB); err != nil {
		t.Fatalf("(b) instance violates degree bounds: %v", err)
	}
	if got := insB.FullJoin().Size(); got != d*k*k*k {
		t.Fatalf("(b): |Q| = %d, want D·K³ = %d", got, d*k*k*k)
	}
}

func TestExample74Graph(t *testing.T) {
	h := Example74Graph(1, 2) // degenerate: the 4-cycle
	if h.N != 4 || len(h.Edges) != 4 {
		t.Fatalf("m=1,k=2 should give C4: n=%d edges=%d", h.N, len(h.Edges))
	}
	h2 := Example74Graph(2, 2)
	if h2.N != 8 || len(h2.Edges) != 16 {
		t.Fatalf("m=2,k=2: n=%d edges=%d, want 8 and 16", h2.N, len(h2.Edges))
	}
	if !h2.CoversAll() {
		t.Fatal("uncovered vertices")
	}
}

func TestCycleQuery(t *testing.T) {
	q := CycleQuery(6)
	if q.NumVars != 6 || len(q.Atoms) != 6 {
		t.Fatalf("bad 6-cycle: %+v", q.Schema)
	}
	h := q.Hypergraph()
	if !h.CoversAll() {
		t.Fatal("cycle query uncovered")
	}
}

func TestRandomBinary(t *testing.T) {
	q := TriangleQuery()
	ins := RandomBinary(rand.New(rand.NewSource(1)), &q.Schema, 20, 4)
	for _, r := range ins.Relations {
		if r.Size() == 0 || r.Size() > 20 {
			t.Fatalf("size %d", r.Size())
		}
	}
}

// TestMinModelLowerBound: on the PathRule with complete bipartite inputs of
// side m (all four variables over [m]... here A2, A3 ∈ [m], A1, A4 ∈ [m]),
// the bound must be ≥ m³/2m = m²·…; we check the documented counting
// inequality holds against an explicit model.
func TestMinModelLowerBound(t *testing.T) {
	p := PathRule()
	m := 4
	ins := query.NewInstance(&p.Schema)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			ins.Relations[0].Insert([]int64{int64(i), int64(j)})
			ins.Relations[1].Insert([]int64{int64(i), int64(j)})
			ins.Relations[2].Insert([]int64{int64(i), int64(j)})
		}
	}
	lb := MinModelLowerBound(p, ins)
	// Join = m⁴ tuples; each target triple covers m of them; two targets →
	// max |T_B| ≥ m⁴/(2m) = m³/2.
	if lb < m*m*m/2 {
		t.Fatalf("lower bound %d < m³/2 = %d", lb, m*m*m/2)
	}
	// And the trivial full model T123 = [m]³ has size m³ ≥ lb.
	if lb > m*m*m {
		t.Fatalf("lower bound %d exceeds the trivial model size %d", lb, m*m*m)
	}
}

func TestMinModelLowerBoundEmpty(t *testing.T) {
	p := PathRule()
	if lb := MinModelLowerBound(p, query.NewInstance(&p.Schema)); lb != 0 {
		t.Fatalf("empty instance lower bound %d", lb)
	}
}

func TestPathWorstCase(t *testing.T) {
	p := PathRule()
	ins := PathWorstCase(p, 8)
	if ins.FullJoin().Size() != 64 {
		t.Fatalf("path worst case join %d, want 64", ins.FullJoin().Size())
	}
}
