// Package yannakakis implements Yannakakis's algorithm [48] for acyclic
// joins: the two-pass semijoin full reducer and the bottom-up join, used by
// the width-based PANDA plans (Corollaries 7.11 and 7.13) and by the
// tree-decomposition baseline.
package yannakakis

import (
	"context"
	"fmt"

	"panda/internal/relation"
)

// order returns node indices so that every child precedes its parent
// (children-first traversal of the forest described by parent[]).
func order(parent []int) ([]int, error) {
	n := len(parent)
	children := make([][]int, n)
	roots := []int{}
	for i, p := range parent {
		switch {
		case p == -1:
			roots = append(roots, i)
		case p < -1 || p >= n:
			return nil, fmt.Errorf("yannakakis: bad parent %d", p)
		default:
			children[p] = append(children[p], i)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("yannakakis: no root")
	}
	out := make([]int, 0, n)
	var rec func(i int)
	rec = func(i int) {
		for _, c := range children[i] {
			rec(c)
		}
		out = append(out, i)
	}
	for _, r := range roots {
		rec(r)
	}
	if len(out) != n {
		// Nodes unreachable from any root indicate a parent cycle.
		return nil, fmt.Errorf("yannakakis: parent array has a cycle")
	}
	return out, nil
}

// FullReduce runs the two semijoin passes over the join tree, returning
// globally consistent copies of the relations. rels[i]'s parent is
// rels[parent[i]]; parent[root] = −1. It is FullReduceContext without
// cancellation.
func FullReduce(rels []*relation.Relation, parent []int) ([]*relation.Relation, error) {
	return FullReduceContext(context.Background(), rels, parent)
}

// FullReduceContext is FullReduce checking ctx between semijoins, so a
// cancelled context aborts a large reduction between relational operations
// rather than only at pass boundaries.
func FullReduceContext(ctx context.Context, rels []*relation.Relation, parent []int) ([]*relation.Relation, error) {
	if len(rels) != len(parent) {
		return nil, fmt.Errorf("yannakakis: %d relations but %d parents", len(rels), len(parent))
	}
	post, err := order(parent)
	if err != nil {
		return nil, err
	}
	out := make([]*relation.Relation, len(rels))
	copy(out, rels)
	// Leaf → root: parent ⋉ child.
	for _, i := range post {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p := parent[i]; p >= 0 {
			out[p] = out[p].Semijoin(out[i])
		}
	}
	// Root → leaf: child ⋉ parent.
	for k := len(post) - 1; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i := post[k]
		if p := parent[i]; p >= 0 {
			out[i] = out[i].Semijoin(out[p])
		}
	}
	return out, nil
}

// Join computes the full acyclic join: FullReduce then bottom-up joins.
// With the reducer applied first, every intermediate result stays within
// input + output size (Yannakakis's guarantee). It is JoinContext without
// cancellation.
func Join(rels []*relation.Relation, parent []int) (*relation.Relation, error) {
	return JoinContext(context.Background(), rels, parent)
}

// JoinContext is Join checking ctx between relational operations.
func JoinContext(ctx context.Context, rels []*relation.Relation, parent []int) (*relation.Relation, error) {
	red, err := FullReduceContext(ctx, rels, parent)
	if err != nil {
		return nil, err
	}
	post, err := order(parent)
	if err != nil {
		return nil, err
	}
	acc := make([]*relation.Relation, len(red))
	copy(acc, red)
	var root *relation.Relation
	for _, i := range post {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p := parent[i]; p >= 0 {
			acc[p] = acc[p].Join(acc[i])
		} else {
			if root != nil {
				// Forest with several roots: cross product.
				acc[i] = root.Join(acc[i])
			}
			root = acc[i]
		}
	}
	return root, nil
}

// NonEmpty reports whether the acyclic join is non-empty, using only the
// reducer (linear time, no output materialization). It is NonEmptyContext
// without cancellation.
func NonEmpty(rels []*relation.Relation, parent []int) (bool, error) {
	return NonEmptyContext(context.Background(), rels, parent)
}

// NonEmptyContext is NonEmpty checking ctx between relational operations.
func NonEmptyContext(ctx context.Context, rels []*relation.Relation, parent []int) (bool, error) {
	red, err := FullReduceContext(ctx, rels, parent)
	if err != nil {
		return false, err
	}
	for _, r := range red {
		if r.Size() == 0 {
			return false, nil
		}
	}
	return true, nil
}
