package yannakakis

import (
	"math/rand"
	"testing"

	"panda/internal/bitset"
	"panda/internal/relation"
)

func path3() ([]*relation.Relation, []int) {
	r := relation.New("R", bitset.Of(0, 1))
	s := relation.New("S", bitset.Of(1, 2))
	t := relation.New("T", bitset.Of(2, 3))
	r.Insert([]relation.Value{1, 2})
	r.Insert([]relation.Value{9, 9}) // dangling
	s.Insert([]relation.Value{2, 3})
	t.Insert([]relation.Value{3, 4})
	t.Insert([]relation.Value{8, 8}) // dangling
	// Join tree: R → S ← T (S is root).
	return []*relation.Relation{r, s, t}, []int{1, -1, 1}
}

func TestFullReduce(t *testing.T) {
	rels, parent := path3()
	red, err := FullReduce(rels, parent)
	if err != nil {
		t.Fatal(err)
	}
	if red[0].Size() != 1 || red[1].Size() != 1 || red[2].Size() != 1 {
		t.Fatalf("sizes after reduction: %d %d %d, want 1 1 1",
			red[0].Size(), red[1].Size(), red[2].Size())
	}
	if red[0].Contains([]relation.Value{9, 9}) {
		t.Fatal("dangling tuple survived reduction")
	}
	// Originals untouched.
	if rels[0].Size() != 2 {
		t.Fatal("FullReduce mutated input")
	}
}

func TestJoin(t *testing.T) {
	rels, parent := path3()
	out, err := Join(rels, parent)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 || !out.Contains([]relation.Value{1, 2, 3, 4}) {
		t.Fatalf("join = %v", out.SortedRows())
	}
}

func TestNonEmpty(t *testing.T) {
	rels, parent := path3()
	ok, err := NonEmpty(rels, parent)
	if err != nil || !ok {
		t.Fatalf("NonEmpty = %v, %v", ok, err)
	}
	// Remove the matching S tuple → empty join.
	s := relation.New("S", bitset.Of(1, 2))
	s.Insert([]relation.Value{7, 7})
	rels[1] = s
	ok, err = NonEmpty(rels, parent)
	if err != nil || ok {
		t.Fatalf("NonEmpty on empty join = %v, %v", ok, err)
	}
}

func TestErrors(t *testing.T) {
	rels, _ := path3()
	if _, err := FullReduce(rels, []int{-1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FullReduce(rels, []int{1, 2, 1}); err == nil {
		t.Fatal("cycle accepted (no root)")
	}
	if _, err := FullReduce(rels, []int{-1, 2, 1}); err == nil {
		t.Fatal("unreachable cycle accepted")
	}
}

// TestJoinEqualsBruteForce compares Yannakakis output with a direct join on
// random acyclic (path) instances.
func TestJoinEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		r := relation.New("R", bitset.Of(0, 1))
		s := relation.New("S", bitset.Of(1, 2))
		u := relation.New("U", bitset.Of(2, 3))
		for i := 0; i < 25; i++ {
			r.Insert([]relation.Value{relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4))})
			s.Insert([]relation.Value{relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4))})
			u.Insert([]relation.Value{relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4))})
		}
		got, err := Join([]*relation.Relation{r, s, u}, []int{1, -1, 1})
		if err != nil {
			t.Fatal(err)
		}
		want := r.Join(s).Join(u)
		if !got.Equal(want) {
			t.Fatalf("trial %d: yannakakis %d tuples, direct %d", trial, got.Size(), want.Size())
		}
	}
}

// TestIntermediateSizesBounded: after reduction, the bottom-up join's
// intermediates never exceed |output| (on instances with non-empty output).
func TestIntermediateSizesBounded(t *testing.T) {
	// Star schema where unreduced join would blow up: R(0,1) with heavy 9s.
	r := relation.New("R", bitset.Of(0, 1))
	s := relation.New("S", bitset.Of(1, 2))
	for i := 0; i < 50; i++ {
		r.Insert([]relation.Value{relation.Value(i), 9})
	}
	r.Insert([]relation.Value{0, 1})
	s.Insert([]relation.Value{1, 5})
	red, err := FullReduce([]*relation.Relation{r, s}, []int{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if red[0].Size() != 1 {
		t.Fatalf("reducer kept %d tuples of R, want 1", red[0].Size())
	}
}
