// Package panda is a from-scratch reproduction of
//
//	“What do Shannon-type Inequalities, Submodular Width, and Disjunctive
//	Datalog have to do with one another?” — M. Abo Khamis, H. Q. Ngo,
//	D. Suciu, PODS 2017 (arXiv:1612.02503).
//
// It provides, as a library:
//
//   - exact output-size bounds for conjunctive queries and disjunctive
//     datalog rules under cardinality constraints, functional dependencies
//     and general degree constraints (AGM, integral cover, polymatroid /
//     DAPB — all solved by exact rational LP);
//   - Shannon-flow inequalities with machine-checked proof sequences
//     (Theorem 5.9) and truncation (Lemma 5.11);
//   - the PANDA algorithm (Algorithm 1), which evaluates disjunctive
//     datalog rules in time governed by the polymatroid bound, plus the
//     width-based plans of Corollaries 7.10/7.11/7.13 that evaluate full
//     and Boolean conjunctive queries at the degree-aware fractional
//     hypertree width and submodular width (Theorem 1.9);
//   - the width-parameter zoo of Section 7: tw, ghtw, fhtw, subw, adw and
//     their degree-aware generalizations, all exact;
//   - prepared queries (Prepare / PreparedQuery.Eval): the data-independent
//     planning phase — LP solves, proof-sequence construction, tree
//     decomposition choice — runs once, is reified as a QueryPlan, and is
//     cached in a concurrency-safe LRU keyed by a canonical,
//     renaming-invariant signature, so repeated traffic pays planning once.
//
// # The DB session API
//
// The recommended surface is DB, a long-lived session in the spirit of
// database/sql: it owns a catalog of named relations (CreateRelation,
// Insert, LoadCSV/LoadCSVDir, DropRelation) and a shared Planner, and runs
// every query shape through one path:
//
//	db := panda.Open()
//	db.CreateRelation("R", 2)
//	db.Insert("R", []panda.Value{1, 2})
//	stmt, err := db.Prepare("Q(A,C) :- R(A,B), R(B,C).")
//	res, err := stmt.QueryContext(ctx) // or db.QueryContext(ctx, src) in one call
//
// Full, Boolean and projection conjunctive queries and disjunctive datalog
// rules all return one *Result (output relation, Boolean answer, width
// certificate, per-rule tables, stats). Errors wrap structured sentinels
// (ErrUnknownRelation, ErrArity, ErrUnboundedLP, …) for errors.Is
// dispatch, and functional options (WithMode, WithTrace, WithParallelism,
// WithPlannerCapacity, …) replace the bare Options struct. Repeated
// traffic — including queries that merely rename variables — hits the
// session's plan cache and executes with zero LP solves.
//
// Execution is context-first: QueryContext/EvalContext/EvalRuleContext
// check cancellation between the engine's proof steps, so deadlines and
// cancellation abort long-running queries promptly with ctx.Err(); the
// context-free forms delegate with context.Background(). WithParallelism
// fans a plan's independent per-bag / per-transversal rule executions out
// across a bounded worker pool with a deterministic merge — the answer is
// byte-identical to a sequential run.
//
// # Migrating from the Eval* functions
//
// The historical free functions survive as thin deprecated wrappers over a
// shared default session:
//
//	EvalFull(q, ins, dcs, opt)  →  db.Eval(q, ins, dcs, WithMode(ModeFull))  // out = res.Rel, rule = res.Tables/res.Bound
//	EvalFhtw(q, ins, dcs, opt)  →  db.Eval(q, ins, dcs, WithMode(ModeFhtw))  // out, ok = res.Rel, res.OK
//	EvalSubw(q, ins, dcs, opt)  →  db.Eval(q, ins, dcs, WithMode(ModeSubw))  // out, ok = res.Rel, res.OK
//	Eval(q, ins, dcs, opt)      →  db.Eval(q, ins, dcs)                      // ModeAuto dispatch
//	EvalRule(p, ins, dcs, opt)  →  db.EvalRule(p, ins, dcs)                  // model = res.Tables, bound = res.Bound
//	Prepare / PrepareFor        →  db.Prepare(src) (textual) or db.Planner() (programmatic)
//	Options{Trace: true}        →  WithTrace(true); CheckInvariants → WithCheckInvariants(true)
//
// The subpackages under internal/ hold the substrates (exact simplex,
// relational algebra, hypergraph/tree-decomposition machinery, entropy and
// group systems); this package is the stable facade.
package panda

import (
	"math/rand"

	"panda/internal/bitset"
	"panda/internal/core"
	"panda/internal/query"
	"panda/internal/relation"
	"panda/internal/workload"
)

// Set is a set of query variables (a bitmask over the variable universe).
type Set = bitset.Set

// Vars builds a variable set from indices.
func Vars(vs ...int) Set { return bitset.Of(vs...) }

// AllVars returns the full variable set {0, …, n−1}.
func AllVars(n int) Set { return bitset.Full(n) }

// Schema declares the body atoms of a query or rule.
type Schema = query.Schema

// Atom is a single body atom R(A_F).
type Atom = query.Atom

// Query is a conjunctive query; Free = AllVars(n) makes it full, Free = 0
// Boolean.
type Query = query.Conjunctive

// Rule is a disjunctive datalog rule ⋁ T_B(A_B) ← ⋀ R_F(A_F).
type Rule = query.Disjunctive

// Instance binds one relation per atom.
type Instance = query.Instance

// Relation is an in-memory relation with set semantics.
type Relation = relation.Relation

// Value is an attribute value.
type Value = relation.Value

// Constraint is a degree constraint (X, Y, N_{Y|X}); cardinality
// constraints and FDs are special cases.
type Constraint = query.DegreeConstraint

// Options tunes PANDA runs (tracing, invariant checking).
type Options = core.Options

// RuleResult is the outcome of evaluating a disjunctive rule.
type RuleResult = core.Result

// Stats reports what a run did.
type Stats = core.Stats

// NewInstance allocates empty relations for a schema.
func NewInstance(s *Schema) *Instance { return query.NewInstance(s) }

// NewRelation creates an empty relation over the given attributes.
func NewRelation(name string, attrs Set) *Relation { return relation.New(name, attrs) }

// Cardinality builds the constraint |R_Y| ≤ n guarded by atom g.
func Cardinality(y Set, n int64, guard int) Constraint { return query.Cardinality(y, n, guard) }

// FD builds the functional dependency X → Y guarded by atom g.
func FD(x, y Set, guard int) Constraint { return query.FD(x, y, guard) }

// Degree builds deg(A_Y | A_X) ≤ n guarded by atom g.
func Degree(x, y Set, n int64, guard int) Constraint { return query.Degree(x, y, n, guard) }

// Parse reads the textual query format (see internal/query.Parse).
func Parse(src string) (*query.ParseResult, error) { return query.Parse(src) }

// EvalRule runs PANDA on a disjunctive datalog rule, returning a model
// whose tables respect the polymatroid bound (Theorem 1.7).
//
// Deprecated: use DB.EvalRule (or DB.Query with a disjunctive head); the
// model lives in Result.Tables and the bound in Result.Bound.
func EvalRule(p *Rule, ins *Instance, dcs []Constraint, opt Options) (*RuleResult, error) {
	res, err := pkgDB().EvalRule(p, ins, dcs, withOptions(opt))
	if err != nil {
		return nil, err
	}
	return &RuleResult{Tables: res.Tables, Bound: res.Bound, Stats: res.Stats}, nil
}

// EvalFull answers a full conjunctive query exactly via PANDA + semijoin
// reduction (Corollary 7.10).
//
// Deprecated: use DB.Eval with WithMode(ModeFull); the output is
// Result.Rel and the rule outcome Result.Tables/Result.Bound.
func EvalFull(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, *RuleResult, error) {
	res, err := pkgDB().Eval(q, ins, dcs, WithMode(ModeFull), withOptions(opt))
	if err != nil {
		return nil, nil, err
	}
	return res.Rel, &RuleResult{Tables: res.Tables, Bound: res.Bound, Stats: res.Stats}, nil
}

// EvalFhtw evaluates a full or Boolean query with the degree-aware
// fractional-hypertree-width plan (Corollary 7.11).
//
// Deprecated: use DB.Eval with WithMode(ModeFhtw).
func EvalFhtw(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, bool, *Stats, error) {
	res, err := pkgDB().Eval(q, ins, dcs, WithMode(ModeFhtw), withOptions(opt))
	if err != nil {
		return nil, false, nil, err
	}
	return res.Rel, res.OK, res.Stats, nil
}

// EvalSubw evaluates a full or Boolean query at the degree-aware
// submodular width (Theorem 1.9 / Corollary 7.13) — the paper's headline
// algorithm.
//
// Deprecated: use DB.Eval with WithMode(ModeSubw).
func EvalSubw(q *Query, ins *Instance, dcs []Constraint, opt Options) (*Relation, bool, *Stats, error) {
	res, err := pkgDB().Eval(q, ins, dcs, WithMode(ModeSubw), withOptions(opt))
	if err != nil {
		return nil, false, nil, err
	}
	return res.Rel, res.OK, res.Stats, nil
}

// Workload re-exports: the paper's running examples.

// FourCycleQuery is Example 1.2's query.
func FourCycleQuery() *Query { return workload.FourCycleQuery() }

// BooleanFourCycle is Example 1.10's query.
func BooleanFourCycle() *Query { return workload.BooleanFourCycle() }

// PathRule is Example 1.4's disjunctive rule.
func PathRule() *Rule { return workload.PathRule() }

// TriangleQuery is the triangle join.
func TriangleQuery() *Query { return workload.TriangleQuery() }

// CycleWorstCase is the Example 1.10 adversarial instance.
func CycleWorstCase(q *Query, m int) *Instance { return workload.CycleWorstCase(q, m) }

// RandomInstance fills a schema with random tuples.
func RandomInstance(seed int64, s *Schema, n, dom int) *Instance {
	return workload.RandomBinary(rand.New(rand.NewSource(seed)), s, n, dom)
}
