package panda

import (
	"math/big"
	"testing"
)

// TestFacadeFourCycle drives the public API end to end on the paper's
// running example.
func TestFacadeFourCycle(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 12)
	out, res, err := EvalFull(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 144 {
		t.Fatalf("|Q| = %d, want 144", out.Size())
	}
	if res.Bound == nil {
		t.Fatal("missing bound")
	}
}

func TestFacadeBounds(t *testing.T) {
	q := FourCycleQuery()
	var dcs []Constraint
	for i, a := range q.Atoms {
		dcs = append(dcs, Cardinality(a.Vars, 1024, i)) // log N = 10 exactly
	}
	rep, err := Bounds(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	twenty := big.NewRat(20, 1)
	if rep.AGM.Cmp(twenty) != 0 {
		t.Fatalf("AGM = %v, want 20 (N² with log N = 10)", rep.AGM)
	}
	if rep.Polymatroid.Cmp(rep.AGM) != 0 {
		t.Fatalf("polymatroid %v ≠ AGM %v under CC (Prop 3.2)", rep.Polymatroid, rep.AGM)
	}
	if rep.IntegralCover.Cmp(twenty) != 0 {
		t.Fatalf("ρ = %v, want 20", rep.IntegralCover)
	}
	if rep.Vertex.Cmp(big.NewRat(40, 1)) != 0 {
		t.Fatalf("VB = %v, want 40", rep.Vertex)
	}
}

func TestFacadeWidths(t *testing.T) {
	rep, err := Widths(FourCycleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Treewidth != 2 || rep.FHTW.Cmp(big.NewRat(2, 1)) != 0 || rep.Subw.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("widths: %+v", rep)
	}
}

func TestFacadeRule(t *testing.T) {
	p := PathRule()
	ins := RandomInstance(5, &p.Schema, 30, 6)
	res, err := EvalRule(p, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ins.IsModel(p, res.Tables)
	if err != nil || !ok {
		t.Fatalf("model: %v %v", ok, err)
	}
	b, err := RuleBound(p, InstanceCardinalities(&p.Schema, ins))
	if err != nil {
		t.Fatal(err)
	}
	if b.Sign() <= 0 {
		t.Fatalf("bound %v", b)
	}
}

func TestFacadeZhangYeung(t *testing.T) {
	poly, ent, err := ZhangYeungGap()
	if err != nil {
		t.Fatal(err)
	}
	if poly.Cmp(big.NewRat(4, 1)) != 0 || ent.Cmp(big.NewRat(43, 11)) != 0 {
		t.Fatalf("gap: %v vs %v", poly, ent)
	}
}

func TestFacadeParseAndEval(t *testing.T) {
	res, err := Parse(`Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`)
	if err != nil {
		t.Fatal(err)
	}
	ins := RandomInstance(9, &res.Rule.Schema, 25, 5)
	out, _, err := EvalFull(res.Conj, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(ins.FullJoin()) {
		t.Fatal("parsed triangle evaluation mismatch")
	}
}

func TestFacadeBooleanSubw(t *testing.T) {
	q := BooleanFourCycle()
	ins := CycleWorstCase(q, 16)
	_, ans, stats, err := EvalSubw(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Fatal("cycle exists")
	}
	if stats.MaxIntermediate > 16*16 {
		t.Fatalf("intermediate %d reached the quadratic regime", stats.MaxIntermediate)
	}
}
