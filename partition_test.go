package panda

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// Tests for data-parallel partitioned execution: the determinism contract
// is layered. For a FIXED partition count K the run is fully deterministic
// — rows, OK, width, mode, stats and the operator trace are byte-identical
// at any parallelism (the merge is in rule-index-then-partition-index
// order). ACROSS partition counts the output contract holds — rows, OK,
// width and mode are identical — while intermediate stats may legitimately
// differ (a partitioned proof does different, smaller work). The -race runs
// of this suite double as the data-race check on the shared memoized
// relation structures the partition workers hit concurrently.

func partitionFixtures() []struct {
	name string
	src  string
	load func(t *testing.T, db *DB)
	opts []Option
} {
	return []struct {
		name string
		src  string
		load func(t *testing.T, db *DB)
		opts []Option
	}{
		{
			name: "triangle full",
			src:  triangleSrc,
			load: func(t *testing.T, db *DB) {
				q := TriangleQuery()
				loadCatalog(t, db, &q.Schema, RandomInstance(8, &q.Schema, 400, 24))
			},
		},
		{
			name: "triangle fhtw",
			src:  triangleSrc,
			load: func(t *testing.T, db *DB) {
				q := TriangleQuery()
				loadCatalog(t, db, &q.Schema, RandomInstance(9, &q.Schema, 400, 24))
			},
			opts: []Option{WithMode(ModeFhtw)},
		},
		{
			name: "4-cycle full",
			src:  fourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := FourCycleQuery()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 24))
			},
		},
		{
			name: "4-cycle fhtw",
			src:  fourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := FourCycleQuery()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 24))
			},
			opts: []Option{WithMode(ModeFhtw)},
		},
		{
			name: "4-cycle subw",
			src:  fourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := FourCycleQuery()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 24))
			},
			opts: []Option{WithMode(ModeSubw)},
		},
		{
			name: "boolean 4-cycle subw",
			src:  booleanFourCycleSrc,
			load: func(t *testing.T, db *DB) {
				q := BooleanFourCycle()
				loadCatalog(t, db, &q.Schema, CycleWorstCase(q, 32))
			},
		},
	}
}

// TestPartitionedGoldenParity: for every fixture × partition count, the
// partitioned run must reproduce the sequential output (rows, OK, width,
// mode), and at a fixed partition count the P=1 and P=NumCPU runs must be
// byte-identical end to end, stats and operator trace included.
func TestPartitionedGoldenParity(t *testing.T) {
	cores := runtime.NumCPU()
	if cores < 4 {
		cores = 4
	}
	for _, fx := range partitionFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			db := Open(WithTrace(true))
			defer db.Close()
			fx.load(t, db)
			seq, err := db.Query(fx.src, fx.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 5} {
				p1, err := db.QueryContext(context.Background(), fx.src,
					append([]Option{WithPartitions(k)}, fx.opts...)...)
				if err != nil {
					t.Fatalf("K=%d P=1: %v", k, err)
				}
				pn, err := db.QueryContext(context.Background(), fx.src,
					append([]Option{WithPartitions(k), WithParallelism(cores)}, fx.opts...)...)
				if err != nil {
					t.Fatalf("K=%d P=%d: %v", k, cores, err)
				}
				// Across partition counts: the output contract.
				if !reflect.DeepEqual(seq.Rows(), p1.Rows()) {
					t.Fatalf("K=%d rows diverge from sequential: %d vs %d",
						k, len(p1.Rows()), len(seq.Rows()))
				}
				if seq.OK != p1.OK {
					t.Fatalf("K=%d OK diverges: %v vs %v", k, p1.OK, seq.OK)
				}
				if seq.Width.Cmp(p1.Width) != 0 || seq.Mode != p1.Mode {
					t.Fatalf("K=%d certificate diverges: %v/%v vs %v/%v",
						k, p1.Width, p1.Mode, seq.Width, seq.Mode)
				}
				// At fixed K: byte identity between parallelism levels.
				if !reflect.DeepEqual(p1.Rows(), pn.Rows()) || p1.OK != pn.OK {
					t.Fatalf("K=%d: P=1 and P=%d outputs diverge", k, cores)
				}
				if p1.Stats.MaxIntermediate != pn.Stats.MaxIntermediate {
					t.Fatalf("K=%d: max intermediate diverges: %d vs %d",
						k, p1.Stats.MaxIntermediate, pn.Stats.MaxIntermediate)
				}
				if !reflect.DeepEqual(p1.Stats.Trace, pn.Stats.Trace) {
					t.Fatalf("K=%d: operator traces diverge — the partition merge is not deterministic", k)
				}
			}
		})
	}
}

// TestPartitionedRuleParity: disjunctive rules execute per-partition too.
// At a fixed K the model tables are byte-identical across parallelism; the
// merged per-partition tables form a model of the full instance (the union
// of models is a model), verified with IsModel. Across K the models may
// legitimately differ — only model-hood and the bound are stable.
func TestPartitionedRuleParity(t *testing.T) {
	cores := runtime.NumCPU()
	if cores < 4 {
		cores = 4
	}
	p := PathRule()
	ins := RandomInstance(3, &p.Schema, 60, 10)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &p.Schema, ins)
	seq, err := db.Query(pathRuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 5} {
		p1, err := db.Query(pathRuleSrc, WithPartitions(k))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		pn, err := db.Query(pathRuleSrc, WithPartitions(k), WithParallelism(cores))
		if err != nil {
			t.Fatalf("K=%d P=%d: %v", k, cores, err)
		}
		if p1.Bound.Cmp(seq.Bound) != 0 {
			t.Fatalf("K=%d bound diverges: %v vs %v", k, p1.Bound, seq.Bound)
		}
		if len(p1.Tables) != len(pn.Tables) {
			t.Fatalf("K=%d: table counts diverge across parallelism", k)
		}
		for b, tb := range p1.Tables {
			if !tb.Equal(pn.Tables[b]) {
				t.Fatalf("K=%d: table %v diverges across parallelism", k, b)
			}
		}
		ok, err := ins.IsModel(p, p1.Tables)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("K=%d: merged per-partition tables are not a model", k)
		}
	}
}

// TestPartitionHintDrivesExecution: a partition hint recorded on a catalog
// relation makes queries execute partitioned by default — byte-identical to
// the same query with an explicit WithPartitions of the hint — and an
// explicit WithPartitions(1) overrides the hint back to sequential.
func TestPartitionHintDrivesExecution(t *testing.T) {
	q := TriangleQuery()
	db := Open(WithTrace(true))
	defer db.Close()
	loadCatalog(t, db, &q.Schema, RandomInstance(8, &q.Schema, 400, 24))

	seq, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := db.Query(triangleSrc, WithPartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetPartitionHint("R", 3); err != nil {
		t.Fatal(err)
	}
	if err := db.SetPartitionHint("missing", 3); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("hint on unknown relation: got %v", err)
	}
	hinted, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hinted.Rows(), explicit.Rows()) ||
		hinted.Stats.MaxIntermediate != explicit.Stats.MaxIntermediate ||
		!reflect.DeepEqual(hinted.Stats.Trace, explicit.Stats.Trace) {
		t.Fatal("hinted run is not byte-identical to the explicit WithPartitions(3) run")
	}
	// An explicit partition count of 1 overrides the hint: byte-identical
	// to the pre-hint sequential run.
	forced, err := db.Query(triangleSrc, WithPartitions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forced.Rows(), seq.Rows()) ||
		!reflect.DeepEqual(forced.Stats.Trace, seq.Stats.Trace) {
		t.Fatal("WithPartitions(1) did not override the catalog hint")
	}
	// Clearing the hint restores sequential-by-default.
	if err := db.SetPartitionHint("R", 0); err != nil {
		t.Fatal(err)
	}
	cleared, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cleared.Stats.Trace, seq.Stats.Trace) {
		t.Fatal("clearing the hint did not restore sequential execution")
	}
}

// TestPartitionedCancellation: cancelling mid-run aborts the per-partition
// worker pool and surfaces ctx.Err(). The fixture is the full 4-cycle worst
// case split across partitions — each partition still materializes a large
// intermediate, so the run cannot finish before the cancel.
func TestPartitionedCancellation(t *testing.T) {
	q := FourCycleQuery()
	ins := CycleWorstCase(q, 400)
	db := Open()
	defer db.Close()
	loadCatalog(t, db, &q.Schema, ins)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := db.QueryContext(ctx, fourCycleSrc,
		WithParallelism(4), WithPartitions(8), WithMode(ModeFhtw))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("partitioned cancel: got %v, want context.Canceled", err)
	}
}
